file(REMOVE_RECURSE
  "CMakeFiles/view_sync_study.dir/view_sync_study.cpp.o"
  "CMakeFiles/view_sync_study.dir/view_sync_study.cpp.o.d"
  "view_sync_study"
  "view_sync_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_sync_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

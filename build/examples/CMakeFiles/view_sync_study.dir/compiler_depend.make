# Empty compiler generated dependencies file for view_sync_study.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig9_view_trace.
# This may be replaced when dependencies are built.

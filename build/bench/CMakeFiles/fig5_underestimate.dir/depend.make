# Empty dependencies file for fig5_underestimate.
# This may be replaced when dependencies are built.

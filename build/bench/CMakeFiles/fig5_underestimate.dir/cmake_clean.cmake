file(REMOVE_RECURSE
  "CMakeFiles/fig5_underestimate.dir/fig5_underestimate.cpp.o"
  "CMakeFiles/fig5_underestimate.dir/fig5_underestimate.cpp.o.d"
  "fig5_underestimate"
  "fig5_underestimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_underestimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ablation_pacemaker.dir/ablation_pacemaker.cpp.o"
  "CMakeFiles/ablation_pacemaker.dir/ablation_pacemaker.cpp.o.d"
  "ablation_pacemaker"
  "ablation_pacemaker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pacemaker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

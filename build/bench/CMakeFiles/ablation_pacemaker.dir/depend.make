# Empty dependencies file for ablation_pacemaker.
# This may be replaced when dependencies are built.

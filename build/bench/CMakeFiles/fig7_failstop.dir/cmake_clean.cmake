file(REMOVE_RECURSE
  "CMakeFiles/fig7_failstop.dir/fig7_failstop.cpp.o"
  "CMakeFiles/fig7_failstop.dir/fig7_failstop.cpp.o.d"
  "fig7_failstop"
  "fig7_failstop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_failstop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

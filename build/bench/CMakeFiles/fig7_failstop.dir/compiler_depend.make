# Empty compiler generated dependencies file for fig7_failstop.
# This may be replaced when dependencies are built.

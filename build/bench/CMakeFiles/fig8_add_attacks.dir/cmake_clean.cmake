file(REMOVE_RECURSE
  "CMakeFiles/fig8_add_attacks.dir/fig8_add_attacks.cpp.o"
  "CMakeFiles/fig8_add_attacks.dir/fig8_add_attacks.cpp.o.d"
  "fig8_add_attacks"
  "fig8_add_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_add_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

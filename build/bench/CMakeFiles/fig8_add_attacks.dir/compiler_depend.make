# Empty compiler generated dependencies file for fig8_add_attacks.
# This may be replaced when dependencies are built.

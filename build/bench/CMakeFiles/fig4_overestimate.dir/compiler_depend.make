# Empty compiler generated dependencies file for fig4_overestimate.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig4_overestimate.dir/fig4_overestimate.cpp.o"
  "CMakeFiles/fig4_overestimate.dir/fig4_overestimate.cpp.o.d"
  "fig4_overestimate"
  "fig4_overestimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_overestimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

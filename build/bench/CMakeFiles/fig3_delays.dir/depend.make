# Empty dependencies file for fig3_delays.
# This may be replaced when dependencies are built.

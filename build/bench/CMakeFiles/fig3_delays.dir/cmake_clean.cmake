file(REMOVE_RECURSE
  "CMakeFiles/fig3_delays.dir/fig3_delays.cpp.o"
  "CMakeFiles/fig3_delays.dir/fig3_delays.cpp.o.d"
  "fig3_delays"
  "fig3_delays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_delays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig3_delays.cpp" "bench/CMakeFiles/fig3_delays.dir/fig3_delays.cpp.o" "gcc" "bench/CMakeFiles/fig3_delays.dir/fig3_delays.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bftsim_validator.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bftsim_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bftsim_runner.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bftsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bftsim_attacker.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bftsim_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bftsim_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

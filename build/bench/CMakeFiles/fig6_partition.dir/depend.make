# Empty dependencies file for fig6_partition.
# This may be replaced when dependencies are built.

# Empty dependencies file for bftsim_attacker.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bftsim_attacker.dir/attacker/attacks.cpp.o"
  "CMakeFiles/bftsim_attacker.dir/attacker/attacks.cpp.o.d"
  "libbftsim_attacker.a"
  "libbftsim_attacker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bftsim_attacker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libbftsim_attacker.a"
)

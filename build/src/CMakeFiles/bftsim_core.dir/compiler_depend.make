# Empty compiler generated dependencies file for bftsim_core.
# This may be replaced when dependencies are built.

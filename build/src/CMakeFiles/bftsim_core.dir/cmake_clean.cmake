file(REMOVE_RECURSE
  "CMakeFiles/bftsim_core.dir/core/config.cpp.o"
  "CMakeFiles/bftsim_core.dir/core/config.cpp.o.d"
  "CMakeFiles/bftsim_core.dir/core/json.cpp.o"
  "CMakeFiles/bftsim_core.dir/core/json.cpp.o.d"
  "CMakeFiles/bftsim_core.dir/core/log.cpp.o"
  "CMakeFiles/bftsim_core.dir/core/log.cpp.o.d"
  "CMakeFiles/bftsim_core.dir/core/metrics.cpp.o"
  "CMakeFiles/bftsim_core.dir/core/metrics.cpp.o.d"
  "CMakeFiles/bftsim_core.dir/core/rng.cpp.o"
  "CMakeFiles/bftsim_core.dir/core/rng.cpp.o.d"
  "CMakeFiles/bftsim_core.dir/core/stats.cpp.o"
  "CMakeFiles/bftsim_core.dir/core/stats.cpp.o.d"
  "CMakeFiles/bftsim_core.dir/core/trace.cpp.o"
  "CMakeFiles/bftsim_core.dir/core/trace.cpp.o.d"
  "libbftsim_core.a"
  "libbftsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bftsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

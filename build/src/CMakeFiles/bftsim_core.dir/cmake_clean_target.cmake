file(REMOVE_RECURSE
  "libbftsim_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bftsim_validator.dir/validator/validator.cpp.o"
  "CMakeFiles/bftsim_validator.dir/validator/validator.cpp.o.d"
  "libbftsim_validator.a"
  "libbftsim_validator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bftsim_validator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libbftsim_validator.a"
)

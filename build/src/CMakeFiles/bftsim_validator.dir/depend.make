# Empty dependencies file for bftsim_validator.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bftsim_sim.
# This may be replaced when dependencies are built.

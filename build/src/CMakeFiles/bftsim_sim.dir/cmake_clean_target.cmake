file(REMOVE_RECURSE
  "libbftsim_sim.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/controller.cpp" "src/CMakeFiles/bftsim_sim.dir/sim/controller.cpp.o" "gcc" "src/CMakeFiles/bftsim_sim.dir/sim/controller.cpp.o.d"
  "/root/repo/src/sim/result.cpp" "src/CMakeFiles/bftsim_sim.dir/sim/result.cpp.o" "gcc" "src/CMakeFiles/bftsim_sim.dir/sim/result.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "src/CMakeFiles/bftsim_sim.dir/sim/simulation.cpp.o" "gcc" "src/CMakeFiles/bftsim_sim.dir/sim/simulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bftsim_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bftsim_attacker.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bftsim_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

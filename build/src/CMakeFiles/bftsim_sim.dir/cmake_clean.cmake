file(REMOVE_RECURSE
  "CMakeFiles/bftsim_sim.dir/sim/controller.cpp.o"
  "CMakeFiles/bftsim_sim.dir/sim/controller.cpp.o.d"
  "CMakeFiles/bftsim_sim.dir/sim/result.cpp.o"
  "CMakeFiles/bftsim_sim.dir/sim/result.cpp.o.d"
  "CMakeFiles/bftsim_sim.dir/sim/simulation.cpp.o"
  "CMakeFiles/bftsim_sim.dir/sim/simulation.cpp.o.d"
  "libbftsim_sim.a"
  "libbftsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bftsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libbftsim_runner.a"
)

# Empty compiler generated dependencies file for bftsim_runner.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bftsim_runner.dir/runner/export.cpp.o"
  "CMakeFiles/bftsim_runner.dir/runner/export.cpp.o.d"
  "CMakeFiles/bftsim_runner.dir/runner/runner.cpp.o"
  "CMakeFiles/bftsim_runner.dir/runner/runner.cpp.o.d"
  "libbftsim_runner.a"
  "libbftsim_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bftsim_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libbftsim_baseline.a"
)

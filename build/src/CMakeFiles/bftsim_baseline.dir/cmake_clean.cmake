file(REMOVE_RECURSE
  "CMakeFiles/bftsim_baseline.dir/baseline/baseline.cpp.o"
  "CMakeFiles/bftsim_baseline.dir/baseline/baseline.cpp.o.d"
  "libbftsim_baseline.a"
  "libbftsim_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bftsim_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

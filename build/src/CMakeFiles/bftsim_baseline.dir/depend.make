# Empty dependencies file for bftsim_baseline.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/add/add.cpp" "src/CMakeFiles/bftsim_protocols.dir/protocols/add/add.cpp.o" "gcc" "src/CMakeFiles/bftsim_protocols.dir/protocols/add/add.cpp.o.d"
  "/root/repo/src/protocols/algorand/algorand.cpp" "src/CMakeFiles/bftsim_protocols.dir/protocols/algorand/algorand.cpp.o" "gcc" "src/CMakeFiles/bftsim_protocols.dir/protocols/algorand/algorand.cpp.o.d"
  "/root/repo/src/protocols/asyncba/asyncba.cpp" "src/CMakeFiles/bftsim_protocols.dir/protocols/asyncba/asyncba.cpp.o" "gcc" "src/CMakeFiles/bftsim_protocols.dir/protocols/asyncba/asyncba.cpp.o.d"
  "/root/repo/src/protocols/hotstuff/core.cpp" "src/CMakeFiles/bftsim_protocols.dir/protocols/hotstuff/core.cpp.o" "gcc" "src/CMakeFiles/bftsim_protocols.dir/protocols/hotstuff/core.cpp.o.d"
  "/root/repo/src/protocols/hotstuff/hotstuff_ns.cpp" "src/CMakeFiles/bftsim_protocols.dir/protocols/hotstuff/hotstuff_ns.cpp.o" "gcc" "src/CMakeFiles/bftsim_protocols.dir/protocols/hotstuff/hotstuff_ns.cpp.o.d"
  "/root/repo/src/protocols/librabft/librabft.cpp" "src/CMakeFiles/bftsim_protocols.dir/protocols/librabft/librabft.cpp.o" "gcc" "src/CMakeFiles/bftsim_protocols.dir/protocols/librabft/librabft.cpp.o.d"
  "/root/repo/src/protocols/pbft/pbft.cpp" "src/CMakeFiles/bftsim_protocols.dir/protocols/pbft/pbft.cpp.o" "gcc" "src/CMakeFiles/bftsim_protocols.dir/protocols/pbft/pbft.cpp.o.d"
  "/root/repo/src/protocols/registry.cpp" "src/CMakeFiles/bftsim_protocols.dir/protocols/registry.cpp.o" "gcc" "src/CMakeFiles/bftsim_protocols.dir/protocols/registry.cpp.o.d"
  "/root/repo/src/protocols/synchotstuff/synchotstuff.cpp" "src/CMakeFiles/bftsim_protocols.dir/protocols/synchotstuff/synchotstuff.cpp.o" "gcc" "src/CMakeFiles/bftsim_protocols.dir/protocols/synchotstuff/synchotstuff.cpp.o.d"
  "/root/repo/src/protocols/tendermint/tendermint.cpp" "src/CMakeFiles/bftsim_protocols.dir/protocols/tendermint/tendermint.cpp.o" "gcc" "src/CMakeFiles/bftsim_protocols.dir/protocols/tendermint/tendermint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bftsim_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bftsim_protocols.dir/protocols/add/add.cpp.o"
  "CMakeFiles/bftsim_protocols.dir/protocols/add/add.cpp.o.d"
  "CMakeFiles/bftsim_protocols.dir/protocols/algorand/algorand.cpp.o"
  "CMakeFiles/bftsim_protocols.dir/protocols/algorand/algorand.cpp.o.d"
  "CMakeFiles/bftsim_protocols.dir/protocols/asyncba/asyncba.cpp.o"
  "CMakeFiles/bftsim_protocols.dir/protocols/asyncba/asyncba.cpp.o.d"
  "CMakeFiles/bftsim_protocols.dir/protocols/hotstuff/core.cpp.o"
  "CMakeFiles/bftsim_protocols.dir/protocols/hotstuff/core.cpp.o.d"
  "CMakeFiles/bftsim_protocols.dir/protocols/hotstuff/hotstuff_ns.cpp.o"
  "CMakeFiles/bftsim_protocols.dir/protocols/hotstuff/hotstuff_ns.cpp.o.d"
  "CMakeFiles/bftsim_protocols.dir/protocols/librabft/librabft.cpp.o"
  "CMakeFiles/bftsim_protocols.dir/protocols/librabft/librabft.cpp.o.d"
  "CMakeFiles/bftsim_protocols.dir/protocols/pbft/pbft.cpp.o"
  "CMakeFiles/bftsim_protocols.dir/protocols/pbft/pbft.cpp.o.d"
  "CMakeFiles/bftsim_protocols.dir/protocols/registry.cpp.o"
  "CMakeFiles/bftsim_protocols.dir/protocols/registry.cpp.o.d"
  "CMakeFiles/bftsim_protocols.dir/protocols/synchotstuff/synchotstuff.cpp.o"
  "CMakeFiles/bftsim_protocols.dir/protocols/synchotstuff/synchotstuff.cpp.o.d"
  "CMakeFiles/bftsim_protocols.dir/protocols/tendermint/tendermint.cpp.o"
  "CMakeFiles/bftsim_protocols.dir/protocols/tendermint/tendermint.cpp.o.d"
  "libbftsim_protocols.a"
  "libbftsim_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bftsim_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

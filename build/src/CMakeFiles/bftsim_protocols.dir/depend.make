# Empty dependencies file for bftsim_protocols.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libbftsim_protocols.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/protocols/add_test.cpp" "tests/CMakeFiles/protocol_tests.dir/protocols/add_test.cpp.o" "gcc" "tests/CMakeFiles/protocol_tests.dir/protocols/add_test.cpp.o.d"
  "/root/repo/tests/protocols/add_unit_test.cpp" "tests/CMakeFiles/protocol_tests.dir/protocols/add_unit_test.cpp.o" "gcc" "tests/CMakeFiles/protocol_tests.dir/protocols/add_unit_test.cpp.o.d"
  "/root/repo/tests/protocols/algorand_test.cpp" "tests/CMakeFiles/protocol_tests.dir/protocols/algorand_test.cpp.o" "gcc" "tests/CMakeFiles/protocol_tests.dir/protocols/algorand_test.cpp.o.d"
  "/root/repo/tests/protocols/algorand_unit_test.cpp" "tests/CMakeFiles/protocol_tests.dir/protocols/algorand_unit_test.cpp.o" "gcc" "tests/CMakeFiles/protocol_tests.dir/protocols/algorand_unit_test.cpp.o.d"
  "/root/repo/tests/protocols/asyncba_test.cpp" "tests/CMakeFiles/protocol_tests.dir/protocols/asyncba_test.cpp.o" "gcc" "tests/CMakeFiles/protocol_tests.dir/protocols/asyncba_test.cpp.o.d"
  "/root/repo/tests/protocols/asyncba_unit_test.cpp" "tests/CMakeFiles/protocol_tests.dir/protocols/asyncba_unit_test.cpp.o" "gcc" "tests/CMakeFiles/protocol_tests.dir/protocols/asyncba_unit_test.cpp.o.d"
  "/root/repo/tests/protocols/hotstuff_test.cpp" "tests/CMakeFiles/protocol_tests.dir/protocols/hotstuff_test.cpp.o" "gcc" "tests/CMakeFiles/protocol_tests.dir/protocols/hotstuff_test.cpp.o.d"
  "/root/repo/tests/protocols/hotstuff_unit_test.cpp" "tests/CMakeFiles/protocol_tests.dir/protocols/hotstuff_unit_test.cpp.o" "gcc" "tests/CMakeFiles/protocol_tests.dir/protocols/hotstuff_unit_test.cpp.o.d"
  "/root/repo/tests/protocols/librabft_test.cpp" "tests/CMakeFiles/protocol_tests.dir/protocols/librabft_test.cpp.o" "gcc" "tests/CMakeFiles/protocol_tests.dir/protocols/librabft_test.cpp.o.d"
  "/root/repo/tests/protocols/librabft_unit_test.cpp" "tests/CMakeFiles/protocol_tests.dir/protocols/librabft_unit_test.cpp.o" "gcc" "tests/CMakeFiles/protocol_tests.dir/protocols/librabft_unit_test.cpp.o.d"
  "/root/repo/tests/protocols/pbft_test.cpp" "tests/CMakeFiles/protocol_tests.dir/protocols/pbft_test.cpp.o" "gcc" "tests/CMakeFiles/protocol_tests.dir/protocols/pbft_test.cpp.o.d"
  "/root/repo/tests/protocols/pbft_unit_test.cpp" "tests/CMakeFiles/protocol_tests.dir/protocols/pbft_unit_test.cpp.o" "gcc" "tests/CMakeFiles/protocol_tests.dir/protocols/pbft_unit_test.cpp.o.d"
  "/root/repo/tests/protocols/registry_test.cpp" "tests/CMakeFiles/protocol_tests.dir/protocols/registry_test.cpp.o" "gcc" "tests/CMakeFiles/protocol_tests.dir/protocols/registry_test.cpp.o.d"
  "/root/repo/tests/protocols/synchotstuff_test.cpp" "tests/CMakeFiles/protocol_tests.dir/protocols/synchotstuff_test.cpp.o" "gcc" "tests/CMakeFiles/protocol_tests.dir/protocols/synchotstuff_test.cpp.o.d"
  "/root/repo/tests/protocols/synchotstuff_unit_test.cpp" "tests/CMakeFiles/protocol_tests.dir/protocols/synchotstuff_unit_test.cpp.o" "gcc" "tests/CMakeFiles/protocol_tests.dir/protocols/synchotstuff_unit_test.cpp.o.d"
  "/root/repo/tests/protocols/tendermint_test.cpp" "tests/CMakeFiles/protocol_tests.dir/protocols/tendermint_test.cpp.o" "gcc" "tests/CMakeFiles/protocol_tests.dir/protocols/tendermint_test.cpp.o.d"
  "/root/repo/tests/protocols/tendermint_unit_test.cpp" "tests/CMakeFiles/protocol_tests.dir/protocols/tendermint_unit_test.cpp.o" "gcc" "tests/CMakeFiles/protocol_tests.dir/protocols/tendermint_unit_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bftsim_validator.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bftsim_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bftsim_runner.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bftsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bftsim_attacker.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bftsim_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bftsim_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

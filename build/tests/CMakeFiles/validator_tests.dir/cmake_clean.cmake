file(REMOVE_RECURSE
  "CMakeFiles/validator_tests.dir/validator/validator_test.cpp.o"
  "CMakeFiles/validator_tests.dir/validator/validator_test.cpp.o.d"
  "validator_tests"
  "validator_tests.pdb"
  "validator_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validator_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for validator_tests.
# This may be replaced when dependencies are built.

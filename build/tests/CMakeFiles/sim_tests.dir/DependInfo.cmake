
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/controller_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/controller_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/controller_test.cpp.o.d"
  "/root/repo/tests/sim/costmodel_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/costmodel_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/costmodel_test.cpp.o.d"
  "/root/repo/tests/sim/delay_model_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/delay_model_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/delay_model_test.cpp.o.d"
  "/root/repo/tests/sim/quorum_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/quorum_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/quorum_test.cpp.o.d"
  "/root/repo/tests/sim/topology_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/topology_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/topology_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bftsim_validator.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bftsim_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bftsim_runner.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bftsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bftsim_attacker.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bftsim_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bftsim_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

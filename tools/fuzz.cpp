// Deterministic fuzzing campaign driver.
//
// Three modes:
//
//   fuzz [--seed S] [--scenarios N] [--jobs J] [--canary]
//        [--config FILE] [--out FILE] [--repro-dir DIR]
//     Runs a campaign: N scenarios drawn from the default space (every
//     builtin protocol) or, with --canary, from the canary-hunt space
//     (the deliberately unsound "pbft-canary" variant — used to prove the
//     pipeline finds and shrinks real violations). --config reads
//     campaign options from the "$.explore" clause of a JSON file. Every
//     finding is shrunk; with --repro-dir each shrunk reproducer is also
//     written to DIR/<campaign>-<scenario>.json. Exit code: 0 when the
//     campaign is clean, 1 when it found violations or crashes.
//
//   fuzz --replay FILE...
//     Replays reproducer files: re-runs each recorded config and checks
//     that the recorded oracle fires again AND the trace fingerprint is
//     bit-identical. Exit 0 only when every file replays exactly.
//
//   fuzz --replay-dir DIR
//     Replays every *.json under DIR (the fuzz-corpus regression mode).
//
// The campaign report is deterministic: same seed and scenario count give
// byte-identical --out files for any --jobs value. See docs/FUZZING.md.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "core/json.hpp"
#include "explore/campaign.hpp"
#include "explore/canary.hpp"
#include "explore/reproducer.hpp"
#include "runner/export.hpp"

namespace {

using namespace bftsim;
using namespace bftsim::explore;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed S] [--scenarios N] [--jobs J] [--canary]\n"
      "          [--config FILE] [--out FILE] [--repro-dir DIR]\n"
      "       %s --replay FILE...\n"
      "       %s --replay-dir DIR\n",
      argv0, argv0, argv0);
  std::exit(2);
}

int replay_files(const std::vector<std::string>& files) {
  int bad = 0;
  for (const std::string& file : files) {
    try {
      const Reproducer repro = Reproducer::from_file(file);
      const ReplayOutcome outcome = replay_reproducer(repro);
      if (outcome.ok()) {
        std::fprintf(stderr, "OK   %s: %s reproduces, fingerprint %s\n",
                     file.c_str(), std::string(to_string(repro.oracle)).c_str(),
                     fingerprint_to_hex(outcome.trace_fingerprint).c_str());
        continue;
      }
      ++bad;
      if (!outcome.verdict_matches) {
        std::fprintf(stderr, "FAIL %s: expected %s violation, got %s\n",
                     file.c_str(), std::string(to_string(repro.oracle)).c_str(),
                     outcome.report.to_string().c_str());
      }
      if (!outcome.fingerprint_matches) {
        std::fprintf(stderr,
                     "FAIL %s: trace fingerprint %s (%llu records), recorded "
                     "%s (%llu records)\n",
                     file.c_str(),
                     fingerprint_to_hex(outcome.trace_fingerprint).c_str(),
                     static_cast<unsigned long long>(outcome.trace_records),
                     fingerprint_to_hex(repro.trace_fingerprint).c_str(),
                     static_cast<unsigned long long>(repro.trace_records));
      }
    } catch (const std::exception& e) {
      ++bad;
      std::fprintf(stderr, "FAIL %s: %s\n", file.c_str(), e.what());
    }
  }
  std::fprintf(stderr, "replayed %zu reproducer(s), %d failure(s)\n",
               files.size(), bad);
  return bad == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CampaignOptions options;
  options.scenario_count = 0;  // 0 = not set on the command line
  std::uint64_t seed = 0;
  bool seed_set = false;
  bool canary = false;
  std::string config_path;
  std::string out_path;
  std::string repro_dir;
  std::vector<std::string> replay_list;
  std::string replay_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
      seed_set = true;
    } else if (arg == "--scenarios") {
      options.scenario_count = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--jobs") {
      options.jobs = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--canary") {
      canary = true;
    } else if (arg == "--config") {
      config_path = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--repro-dir") {
      repro_dir = next();
    } else if (arg == "--replay") {
      while (i + 1 < argc && argv[i + 1][0] != '-') replay_list.push_back(argv[++i]);
      if (replay_list.empty()) usage(argv[0]);
    } else if (arg == "--replay-dir") {
      replay_dir = next();
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(argv[0]);
    }
  }

  if (!replay_dir.empty()) {
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(replay_dir, ec)) {
      if (entry.path().extension() == ".json") {
        replay_list.push_back(entry.path().string());
      }
    }
    if (ec) {
      std::fprintf(stderr, "%s: %s\n", replay_dir.c_str(), ec.message().c_str());
      return 2;
    }
    if (replay_list.empty()) {
      std::fprintf(stderr, "%s: no reproducer files\n", replay_dir.c_str());
      return 2;
    }
    std::sort(replay_list.begin(), replay_list.end());
  }
  if (!replay_list.empty()) return replay_files(replay_list);

  try {
    if (!config_path.empty()) {
      const json::Value doc = json::parse_file(config_path);
      const json::Value* clause = doc.as_object().find("explore");
      if (clause == nullptr) {
        std::fprintf(stderr, "%s: no \"explore\" clause\n", config_path.c_str());
        return 2;
      }
      const std::uint64_t count_override = options.scenario_count;
      const std::size_t jobs_override = options.jobs;
      options = CampaignOptions::from_json(*clause, "$.explore");
      if (count_override != 0) options.scenario_count = count_override;
      options.jobs = jobs_override;
    }
    if (canary) options.space = ScenarioSpace::canary();
    if (seed_set) options.seed = seed;
    if (options.scenario_count == 0) options.scenario_count = 100;

    const CampaignReport report = run_campaign(options);

    std::fprintf(stderr,
                 "campaign seed %llu: %llu scenarios (%zu decided, %zu "
                 "horizon, %zu event-budget, %zu drained, %zu crashed), "
                 "%zu finding(s)\n",
                 static_cast<unsigned long long>(report.seed),
                 static_cast<unsigned long long>(report.scenario_count),
                 report.tally.decided, report.tally.horizon,
                 report.tally.event_budget, report.tally.queue_drained,
                 report.tally.failed, report.findings.size());
    for (const CampaignFinding& finding : report.findings) {
      std::fprintf(stderr, "FINDING %s: %s (shrunk in %zu steps / %zu runs)\n",
                   finding.reproducer.scenario_id.c_str(),
                   finding.reproducer.diagnosis.c_str(),
                   finding.reproducer.shrink_steps,
                   finding.reproducer.shrink_runs);
      if (!repro_dir.empty()) {
        std::filesystem::create_directories(repro_dir);
        std::string name = finding.reproducer.scenario_id;
        std::replace(name.begin(), name.end(), '/', '-');
        const std::string file = repro_dir + "/" + name + ".json";
        finding.reproducer.save(file);
        std::fprintf(stderr, "  reproducer written to %s\n", file.c_str());
      }
    }
    for (const RunFailure& crash : report.crashes) {
      std::fprintf(stderr, "CRASH %s: %s\n", crash.label.c_str(),
                   crash.error.c_str());
    }

    const json::Value doc = report.to_json();
    if (out_path.empty()) {
      std::printf("%s\n", doc.dump(2).c_str());
    } else {
      write_json_file(out_path, doc);
      std::fprintf(stderr, "report written to %s\n", out_path.c_str());
    }
    return report.clean() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fuzz: %s\n", e.what());
    return 2;
  }
}

// Fault-matrix smoke: one scenario per fault kind (crash/recover, link
// flap, corruption, clock skew, and a combined schedule), each against one
// protocol, run under watchdog budgets so a livelocked combination
// terminates with a recorded reason instead of hanging CI. Every run is
// checked with check_run_safety (agreement + validity + completeness);
// the tool exits nonzero on any safety violation or run failure, which is
// what the CI job gates on.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "runner/runner.hpp"
#include "sim/simulation.hpp"
#include "validator/validator.hpp"

namespace {

using namespace bftsim;

struct Scenario {
  std::string name;
  SimConfig cfg;
};

std::vector<Scenario> scenarios() {
  const auto base = [](const char* protocol) {
    SimConfig cfg = experiment_config(protocol, 7, 1000, DelaySpec::normal(250, 50));
    // Watchdog budgets: bound the worst case so the smoke job cannot hang.
    cfg.max_time_ms = 300'000;
    cfg.max_events = 5'000'000;
    cfg.seed = 17;
    return cfg;
  };
  std::vector<Scenario> out;

  SimConfig cfg = base("pbft");
  cfg.faults.crashes.push_back({1, 300.0, 2000.0});
  out.push_back({"crash-recover/pbft", cfg});

  cfg = base("hotstuff-ns");
  cfg.faults.link_flaps.push_back({0, 1, 200.0, 1500.0});
  cfg.faults.link_flaps.push_back({2, 3, 900.0, 1200.0});
  out.push_back({"link-flap/hotstuff-ns", cfg});

  cfg = base("tendermint");
  cfg.faults.corruption = {0.05, 0.0, 0.0};
  out.push_back({"corruption/tendermint", cfg});

  cfg = base("librabft");
  cfg.faults.clock = {25.0, 0.02};
  out.push_back({"clock-skew/librabft", cfg});

  cfg = base("algorand");
  cfg.faults.random_crashes = {1, 0.0, 5000.0, 500.0, 1500.0};
  cfg.faults.random_link_flaps = {2, 0.0, 5000.0, 200.0, 1000.0};
  cfg.faults.corruption = {0.02, 0.0, 0.0};
  out.push_back({"combined/algorand", cfg});

  return out;
}

}  // namespace

int main() {
  Table table({"scenario", "reason", "drops", "corrupt", "safety"}, 24);
  table.print_header(std::cout);

  bool ok = true;
  for (const Scenario& scenario : scenarios()) {
    std::string reason;
    std::string safety_cell;
    RunResult result;
    try {
      result = run_simulation(scenario.cfg);
      reason = to_string(result.termination_reason);
      const SafetyReport safety = check_run_safety(result);
      safety_cell = safety.ok ? "ok" : safety.diagnosis;
      if (!safety.ok) ok = false;
    } catch (const std::exception& e) {
      reason = "threw";
      safety_cell = e.what();
      ok = false;
    }
    table.print_row(std::cout,
                    {scenario.name, reason,
                     std::to_string(result.messages_dropped),
                     std::to_string(result.messages_corrupted), safety_cell});
  }

  if (!ok) {
    std::fprintf(stderr, "fault matrix: safety violation or run failure\n");
    return 1;
  }
  std::printf("fault matrix: all scenarios safe\n");
  return 0;
}

// Bench regression gate for CI.
//
// Compares a fresh `micro_engine --json` report against the recorded
// reference medians in BENCH_engine.json, workload by workload (matched on
// protocol + n). The reference value is the median of the recorded
// `new_samples` (falling back to `new_events_per_sec`); the gate fails
// when any measured events/sec drops more than --tolerance (default 0.25,
// i.e. 25%) below its reference. Faster-than-reference results always
// pass — the gate only guards against regressions.
//
// When both files carry a "scaling" array (the n-scaling curve, see
// docs/SCALING.md), each matched point is gated twice: events/sec must
// stay above the --tolerance floor, and bytes_per_node must stay below
// the --mem-tolerance ceiling (default 0.35). Memory points whose
// reference is under 4 KiB/node are skipped — at that size the reading is
// page-granularity noise, not a budget. The events/sec floor is likewise
// skipped for points whose reference run lasted under 0.1 s: a
// tens-of-milliseconds run flaps well past any sane tolerance on a busy
// machine, and small-n speed is already gated by the engine_throughput
// workloads (whose runs are repeated, not one-shot). Memory stays gated
// at every size — the allocation sequence is deterministic, so bytes/node
// is stable even when the wall clock is not. Files without a scaling
// section gate workloads only, so the two checks roll out independently.
//
// Thread-count honesty: every micro_engine record carries the machine's
// actual "hardware_threads". When both files declare a thread count and
// they differ, the gate refuses to compare (exit 2) — events/sec and
// speedup figures from different machines are not comparable evidence.
// --allow-thread-mismatch downgrades the refusal to a warning and gates
// only the thread-count-insensitive records (serial throughput, memory),
// skipping parallel speedup comparisons entirely.
//
// When both files carry an "intra_speedup" record (the windowed-parallel
// driver vs its serial per-node-RNG baseline; see docs/PARALLELISM.md),
// each matched workload's speedup must stay above the --tolerance floor,
// and the run must have been bit-identical ("identical": true) — a
// divergent parallel run fails regardless of speed.
//
// When both files carry an "attacker_hook" record (the passive fast path
// vs a no-op attack on the same workload), the current run must have been
// equivalent ("identical": true) and its overhead ratio must stay below
// (1 + tolerance) x max(reference ratio, 1.0).
//
// When both files carry a "wan_backend" record (the WAN transport backend
// vs direct broadcast on the same workload; see docs/NETWORKING.md), every
// matched mode must have been deterministic ("deterministic": true — two
// same-seed runs produced equivalent aggregates) and its
// relative_throughput (mode events/sec over direct events/sec, a
// machine-portable per-event-cost ratio) must stay above the --tolerance
// floor of the reference ratio.
//
// When both files carry a "client_workload" record (the request generator
// vs request-free runs on the same base config; see docs/WORKLOADS.md),
// every matched mode must have been deterministic ("deterministic": true)
// and its relative_throughput (mode events/sec over no-workload
// events/sec) must stay above the --tolerance floor of the reference
// ratio.
//
// Usage:
//   bench_gate --current micro.json --reference BENCH_engine.json
//              [--tolerance 0.25] [--mem-tolerance 0.35]
//              [--allow-thread-mismatch]
//
// Exit codes: 0 pass, 1 regression detected, 2 usage/input error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "core/json.hpp"

namespace {

using bftsim::json::Value;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --current micro.json --reference BENCH_engine.json\n"
               "          [--tolerance 0.25] [--mem-tolerance 0.35]\n"
               "          [--allow-thread-mismatch]\n",
               argv0);
  std::exit(2);
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

struct Reference {
  std::string protocol;
  std::int64_t n = 0;
  double events_per_sec = 0.0;
};

/// One point of the n-scaling curve (reference or measured).
struct ScalePoint {
  std::string protocol;
  std::int64_t n = 0;
  double events_per_sec = 0.0;
  double bytes_per_node = 0.0;
  double wall_seconds = 0.0;
};

/// Memory references below this are page-granularity noise, not budgets.
constexpr double kMinGatedBytesPerNode = 4096.0;

/// Speed references from runs shorter than this are scheduling noise;
/// only their memory side is gated.
constexpr double kMinGatedWallSeconds = 0.1;

std::vector<ScalePoint> parse_scaling(const Value& doc) {
  std::vector<ScalePoint> points;
  const Value* rows = doc.as_object().find("scaling");
  if (rows == nullptr || !rows->is_array()) return points;
  for (const Value& row : rows->as_array()) {
    ScalePoint p;
    p.protocol = row.get_string("protocol", "");
    p.n = row.get_int("n", 0);
    p.events_per_sec = row.get_number("events_per_sec", 0.0);
    p.bytes_per_node = row.get_number("bytes_per_node", 0.0);
    p.wall_seconds = row.get_number("wall_seconds", 0.0);
    if (!p.protocol.empty() && p.n > 0) points.push_back(std::move(p));
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  std::string current_path;
  std::string reference_path;
  double tolerance = 0.25;
  double mem_tolerance = 0.35;
  bool allow_thread_mismatch = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--current") {
      current_path = next();
    } else if (arg == "--reference") {
      reference_path = next();
    } else if (arg == "--tolerance") {
      tolerance = std::strtod(next(), nullptr);
    } else if (arg == "--mem-tolerance") {
      mem_tolerance = std::strtod(next(), nullptr);
    } else if (arg == "--allow-thread-mismatch") {
      allow_thread_mismatch = true;
    } else {
      usage(argv[0]);
    }
  }
  if (current_path.empty() || reference_path.empty()) usage(argv[0]);
  if (tolerance <= 0.0 || tolerance >= 1.0) {
    std::fprintf(stderr, "tolerance must be in (0, 1)\n");
    return 2;
  }
  if (mem_tolerance <= 0.0) {
    std::fprintf(stderr, "mem-tolerance must be positive\n");
    return 2;
  }

  try {
    const Value reference_doc = bftsim::json::parse_file(reference_path);
    const Value current_doc = bftsim::json::parse_file(current_path);

    // Refuse cross-machine comparisons: a record's events/sec and speedup
    // figures only mean something against a reference taken with the same
    // hardware thread count.
    const std::int64_t ref_threads =
        reference_doc.get_int("hardware_threads", 0);
    const std::int64_t cur_threads = current_doc.get_int("hardware_threads", 0);
    bool threads_match = true;
    if (ref_threads > 0 && cur_threads > 0 && ref_threads != cur_threads) {
      threads_match = false;
      if (!allow_thread_mismatch) {
        std::fprintf(stderr,
                     "thread-count mismatch: reference recorded with %lld "
                     "hardware threads, current with %lld — results are not "
                     "comparable (pass --allow-thread-mismatch to gate only "
                     "thread-count-insensitive records)\n",
                     static_cast<long long>(ref_threads),
                     static_cast<long long>(cur_threads));
        return 2;
      }
      std::printf("WARN  thread-count mismatch (ref %lld, current %lld): "
                  "skipping parallel speedup comparisons\n",
                  static_cast<long long>(ref_threads),
                  static_cast<long long>(cur_threads));
    }

    std::vector<Reference> references;
    const Value* workloads = reference_doc.as_object().find("workloads");
    if (workloads == nullptr) {
      std::fprintf(stderr, "%s: no \"workloads\" array\n",
                   reference_path.c_str());
      return 2;
    }
    for (const Value& w : workloads->as_array()) {
      Reference ref;
      ref.protocol = w.get_string("protocol", "");
      ref.n = w.get_int("n", 0);
      std::vector<double> samples;
      if (const Value* s = w.as_object().find("new_samples")) {
        for (const Value& x : s->as_array()) samples.push_back(x.as_number());
      }
      ref.events_per_sec = samples.empty()
                               ? w.get_number("new_events_per_sec", 0.0)
                               : median(std::move(samples));
      if (!ref.protocol.empty() && ref.events_per_sec > 0.0) {
        references.push_back(std::move(ref));
      }
    }

    // A current file may carry engine_throughput rows, a scaling curve, or
    // both (micro_engine --only-scaling records just the curve); gate
    // whatever is present and fail only when there is nothing to compare.
    const Value* rows = current_doc.as_object().find("engine_throughput");
    const bftsim::json::Array empty_rows;
    const bftsim::json::Array& throughput_rows =
        rows != nullptr ? rows->as_array() : empty_rows;

    int regressions = 0;
    int compared = 0;
    for (const Value& row : throughput_rows) {
      const std::string protocol = row.get_string("protocol", "");
      const std::int64_t n = row.get_int("n", 0);
      const double measured = row.get_number("events_per_sec", 0.0);
      const auto ref = std::find_if(
          references.begin(), references.end(), [&](const Reference& r) {
            return r.protocol == protocol && r.n == n;
          });
      if (ref == references.end()) {
        std::printf("SKIP  %-12s n=%-4lld %12.0f ev/s (no reference)\n",
                    protocol.c_str(), static_cast<long long>(n), measured);
        continue;
      }
      ++compared;
      const double floor = (1.0 - tolerance) * ref->events_per_sec;
      const double ratio = measured / ref->events_per_sec;
      if (measured < floor) {
        ++regressions;
        std::printf("FAIL  %-12s n=%-4lld %12.0f ev/s vs ref %.0f (%.0f%%)\n",
                    protocol.c_str(), static_cast<long long>(n), measured,
                    ref->events_per_sec, 100.0 * ratio);
      } else {
        std::printf("OK    %-12s n=%-4lld %12.0f ev/s vs ref %.0f (%.0f%%)\n",
                    protocol.c_str(), static_cast<long long>(n), measured,
                    ref->events_per_sec, 100.0 * ratio);
      }
    }

    // --- n-scaling curve: throughput floor + bytes/node ceiling ----------
    const std::vector<ScalePoint> scale_refs = parse_scaling(reference_doc);
    const std::vector<ScalePoint> scale_cur = parse_scaling(current_doc);
    int scale_compared = 0;
    if (!scale_refs.empty() && !scale_cur.empty()) {
      for (const ScalePoint& cur : scale_cur) {
        const auto ref = std::find_if(
            scale_refs.begin(), scale_refs.end(), [&](const ScalePoint& r) {
              return r.protocol == cur.protocol && r.n == cur.n;
            });
        if (ref == scale_refs.end()) {
          std::printf("SKIP  scale %-12s n=%-5lld (no reference)\n",
                      cur.protocol.c_str(), static_cast<long long>(cur.n));
          continue;
        }
        ++scale_compared;
        bool ok = true;
        const bool speed_gated = ref->events_per_sec > 0.0 &&
                                 ref->wall_seconds >= kMinGatedWallSeconds;
        if (speed_gated &&
            cur.events_per_sec < (1.0 - tolerance) * ref->events_per_sec) {
          ok = false;
          ++regressions;
          std::printf("FAIL  scale %-12s n=%-5lld %10.0f ev/s vs ref %.0f "
                      "(%.0f%%)\n",
                      cur.protocol.c_str(), static_cast<long long>(cur.n),
                      cur.events_per_sec, ref->events_per_sec,
                      100.0 * cur.events_per_sec / ref->events_per_sec);
        }
        if (ref->bytes_per_node >= kMinGatedBytesPerNode &&
            cur.bytes_per_node > (1.0 + mem_tolerance) * ref->bytes_per_node) {
          ok = false;
          ++regressions;
          std::printf("FAIL  scale %-12s n=%-5lld %10.0f bytes/node vs ref "
                      "%.0f (%.0f%%)\n",
                      cur.protocol.c_str(), static_cast<long long>(cur.n),
                      cur.bytes_per_node, ref->bytes_per_node,
                      100.0 * cur.bytes_per_node / ref->bytes_per_node);
        }
        if (ok) {
          std::printf("OK    scale %-12s n=%-5lld %10.0f ev/s%s, %8.0f "
                      "bytes/node\n",
                      cur.protocol.c_str(), static_cast<long long>(cur.n),
                      cur.events_per_sec,
                      speed_gated ? "" : " (ungated: ref run < 0.1 s)",
                      cur.bytes_per_node);
        }
      }
    }

    // --- windowed intra-run speedup: floor + bit-identity -----------------
    // Bit-identity is machine-independent and always gated; the speedup
    // floor only makes sense against a reference from the same hardware.
    int intra_compared = 0;
    const Value* intra_ref = reference_doc.as_object().find("intra_speedup");
    const Value* intra_cur = current_doc.as_object().find("intra_speedup");
    if (intra_ref != nullptr && intra_cur != nullptr &&
        intra_ref->is_object() && intra_cur->is_object()) {
      const Value* ref_rows = intra_ref->as_object().find("workloads");
      const Value* cur_rows = intra_cur->as_object().find("workloads");
      if (ref_rows != nullptr && cur_rows != nullptr && ref_rows->is_array() &&
          cur_rows->is_array()) {
        for (const Value& cur : cur_rows->as_array()) {
          const std::string protocol = cur.get_string("protocol", "");
          const std::int64_t n = cur.get_int("n", 0);
          const double measured = cur.get_number("speedup", 0.0);
          const bool identical = cur.as_object().find("identical") != nullptr &&
                                 cur.as_object().at("identical").as_bool();
          const bftsim::json::Array& refs = ref_rows->as_array();
          const auto ref = std::find_if(
              refs.begin(), refs.end(), [&](const Value& r) {
                return r.get_string("protocol", "") == protocol &&
                       r.get_int("n", 0) == n;
              });
          if (ref == refs.end()) {
            std::printf("SKIP  intra %-12s n=%-5lld %.2fx (no reference)\n",
                        protocol.c_str(), static_cast<long long>(n), measured);
            continue;
          }
          ++intra_compared;
          const double ref_speedup = ref->get_number("speedup", 0.0);
          bool ok = true;
          if (!identical) {
            ok = false;
            ++regressions;
            std::printf("FAIL  intra %-12s n=%-5lld parallel run diverged "
                        "from serial baseline\n",
                        protocol.c_str(), static_cast<long long>(n));
          }
          if (threads_match && ref_speedup > 0.0 &&
              measured < (1.0 - tolerance) * ref_speedup) {
            ok = false;
            ++regressions;
            std::printf("FAIL  intra %-12s n=%-5lld %.2fx vs ref %.2fx "
                        "(%.0f%%)\n",
                        protocol.c_str(), static_cast<long long>(n), measured,
                        ref_speedup, 100.0 * measured / ref_speedup);
          }
          if (ok) {
            std::printf("OK    intra %-12s n=%-5lld %.2fx vs ref %.2fx%s\n",
                        protocol.c_str(), static_cast<long long>(n), measured,
                        ref_speedup,
                        threads_match ? "" : " (speedup ungated: thread-count "
                                             "mismatch; identity checked)");
          }
        }
      }
    }

    // --- attacker hook overhead: equivalence + overhead-ratio ceiling ------
    // The ratio (hooked/passive wall time on the same machine, back to
    // back) is largely thread-count-insensitive, so it is gated even under
    // --allow-thread-mismatch; equivalence is gated unconditionally.
    int hook_compared = 0;
    const Value* hook_ref = reference_doc.as_object().find("attacker_hook");
    const Value* hook_cur = current_doc.as_object().find("attacker_hook");
    if (hook_ref != nullptr && hook_cur != nullptr && hook_ref->is_object() &&
        hook_cur->is_object()) {
      ++hook_compared;
      const double ref_ratio = hook_ref->get_number("overhead_ratio", 0.0);
      const double cur_ratio = hook_cur->get_number("overhead_ratio", 0.0);
      const bool identical =
          hook_cur->as_object().find("identical") != nullptr &&
          hook_cur->as_object().at("identical").as_bool();
      bool ok = true;
      if (!identical) {
        ok = false;
        ++regressions;
        std::printf("FAIL  attacker-hook run diverged from the passive "
                    "baseline\n");
      }
      // Ratios below 1.0 are timer noise; the ceiling is anchored at the
      // reference ratio but never below parity.
      const double ceiling =
          (1.0 + tolerance) * std::max(ref_ratio, 1.0);
      if (ref_ratio > 0.0 && cur_ratio > ceiling) {
        ok = false;
        ++regressions;
        std::printf("FAIL  attacker-hook overhead %.2fx vs ref %.2fx "
                    "(ceiling %.2fx)\n",
                    cur_ratio, ref_ratio, ceiling);
      }
      if (ok) {
        std::printf("OK    attacker-hook overhead %.2fx vs ref %.2fx\n",
                    cur_ratio, ref_ratio);
      }
    }

    // --- WAN backend: per-mode determinism + relative-throughput floor ----
    // relative_throughput is a same-machine, same-moment ratio of two
    // serial runs, so it is gated even under --allow-thread-mismatch.
    int wan_compared = 0;
    const Value* wan_ref = reference_doc.as_object().find("wan_backend");
    const Value* wan_cur = current_doc.as_object().find("wan_backend");
    if (wan_ref != nullptr && wan_cur != nullptr && wan_ref->is_object() &&
        wan_cur->is_object()) {
      const Value* ref_rows = wan_ref->as_object().find("modes");
      const Value* cur_rows = wan_cur->as_object().find("modes");
      if (ref_rows != nullptr && cur_rows != nullptr && ref_rows->is_array() &&
          cur_rows->is_array()) {
        for (const Value& cur : cur_rows->as_array()) {
          const std::string mode = cur.get_string("mode", "");
          const double measured = cur.get_number("relative_throughput", 0.0);
          const bool deterministic =
              cur.as_object().find("deterministic") != nullptr &&
              cur.as_object().at("deterministic").as_bool();
          const bftsim::json::Array& refs = ref_rows->as_array();
          const auto ref = std::find_if(
              refs.begin(), refs.end(),
              [&](const Value& r) { return r.get_string("mode", "") == mode; });
          if (ref == refs.end()) {
            std::printf("SKIP  wan   %-9s %.2fx direct (no reference)\n",
                        mode.c_str(), measured);
            continue;
          }
          ++wan_compared;
          const double ref_relative = ref->get_number("relative_throughput", 0.0);
          bool ok = true;
          if (!deterministic) {
            ok = false;
            ++regressions;
            std::printf("FAIL  wan   %-9s same-seed runs diverged\n",
                        mode.c_str());
          }
          if (ref_relative > 0.0 &&
              measured < (1.0 - tolerance) * ref_relative) {
            ok = false;
            ++regressions;
            std::printf("FAIL  wan   %-9s %.2fx direct vs ref %.2fx (%.0f%%)\n",
                        mode.c_str(), measured, ref_relative,
                        100.0 * measured / ref_relative);
          }
          if (ok) {
            std::printf("OK    wan   %-9s %.2fx direct vs ref %.2fx\n",
                        mode.c_str(), measured, ref_relative);
          }
        }
      }
    }

    // --- Client workload: per-mode determinism + relative-throughput floor.
    // Like the WAN gate, relative_throughput compares two serial runs on
    // the same machine, so it holds under --allow-thread-mismatch too.
    int workload_compared = 0;
    const Value* wl_ref = reference_doc.as_object().find("client_workload");
    const Value* wl_cur = current_doc.as_object().find("client_workload");
    if (wl_ref != nullptr && wl_cur != nullptr && wl_ref->is_object() &&
        wl_cur->is_object()) {
      const Value* ref_rows = wl_ref->as_object().find("modes");
      const Value* cur_rows = wl_cur->as_object().find("modes");
      if (ref_rows != nullptr && cur_rows != nullptr && ref_rows->is_array() &&
          cur_rows->is_array()) {
        for (const Value& cur : cur_rows->as_array()) {
          const std::string mode = cur.get_string("mode", "");
          const double measured = cur.get_number("relative_throughput", 0.0);
          const bool deterministic =
              cur.as_object().find("deterministic") != nullptr &&
              cur.as_object().at("deterministic").as_bool();
          const bftsim::json::Array& refs = ref_rows->as_array();
          const auto ref = std::find_if(
              refs.begin(), refs.end(),
              [&](const Value& r) { return r.get_string("mode", "") == mode; });
          if (ref == refs.end()) {
            std::printf("SKIP  wload %-12s %.2fx baseline (no reference)\n",
                        mode.c_str(), measured);
            continue;
          }
          ++workload_compared;
          const double ref_relative =
              ref->get_number("relative_throughput", 0.0);
          bool ok = true;
          if (!deterministic) {
            ok = false;
            ++regressions;
            std::printf("FAIL  wload %-12s same-seed runs diverged\n",
                        mode.c_str());
          }
          if (ref_relative > 0.0 &&
              measured < (1.0 - tolerance) * ref_relative) {
            ok = false;
            ++regressions;
            std::printf(
                "FAIL  wload %-12s %.2fx baseline vs ref %.2fx (%.0f%%)\n",
                mode.c_str(), measured, ref_relative,
                100.0 * measured / ref_relative);
          }
          if (ok) {
            std::printf("OK    wload %-12s %.2fx baseline vs ref %.2fx\n",
                        mode.c_str(), measured, ref_relative);
          }
        }
      }
    }

    if (compared == 0 && scale_compared == 0 && intra_compared == 0 &&
        hook_compared == 0 && wan_compared == 0 && workload_compared == 0) {
      std::fprintf(stderr, "nothing matched between %s and %s\n",
                   current_path.c_str(), reference_path.c_str());
      return 2;
    }
    if (regressions > 0) {
      std::fprintf(stderr, "%d of %d comparisons regressed (>%.0f%% slower "
                   "or >%.0f%% more memory)\n",
                   regressions,
                   compared + scale_compared + intra_compared + hook_compared +
                       wan_compared + workload_compared,
                   100.0 * tolerance, 100.0 * mem_tolerance);
      return 1;
    }
    std::printf("all %d workloads, %d scaling points, %d intra-speedup, "
                "%d attacker-hook, %d wan-backend and %d client-workload "
                "records within tolerance\n",
                compared, scale_compared, intra_compared, hook_compared,
                wan_compared, workload_compared);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_gate: %s\n", e.what());
    return 2;
  }
}

// Bench regression gate for CI.
//
// Compares a fresh `micro_engine --json` report against the recorded
// reference medians in BENCH_engine.json, workload by workload (matched on
// protocol + n). The reference value is the median of the recorded
// `new_samples` (falling back to `new_events_per_sec`); the gate fails
// when any measured events/sec drops more than --tolerance (default 0.25,
// i.e. 25%) below its reference. Faster-than-reference results always
// pass — the gate only guards against regressions.
//
// Usage:
//   bench_gate --current micro.json --reference BENCH_engine.json
//              [--tolerance 0.25]
//
// Exit codes: 0 pass, 1 regression detected, 2 usage/input error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "core/json.hpp"

namespace {

using bftsim::json::Value;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --current micro.json --reference BENCH_engine.json\n"
               "          [--tolerance 0.25]\n",
               argv0);
  std::exit(2);
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

struct Reference {
  std::string protocol;
  std::int64_t n = 0;
  double events_per_sec = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string current_path;
  std::string reference_path;
  double tolerance = 0.25;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--current") {
      current_path = next();
    } else if (arg == "--reference") {
      reference_path = next();
    } else if (arg == "--tolerance") {
      tolerance = std::strtod(next(), nullptr);
    } else {
      usage(argv[0]);
    }
  }
  if (current_path.empty() || reference_path.empty()) usage(argv[0]);
  if (tolerance <= 0.0 || tolerance >= 1.0) {
    std::fprintf(stderr, "tolerance must be in (0, 1)\n");
    return 2;
  }

  try {
    const Value reference_doc = bftsim::json::parse_file(reference_path);
    const Value current_doc = bftsim::json::parse_file(current_path);

    std::vector<Reference> references;
    const Value* workloads = reference_doc.as_object().find("workloads");
    if (workloads == nullptr) {
      std::fprintf(stderr, "%s: no \"workloads\" array\n",
                   reference_path.c_str());
      return 2;
    }
    for (const Value& w : workloads->as_array()) {
      Reference ref;
      ref.protocol = w.get_string("protocol", "");
      ref.n = w.get_int("n", 0);
      std::vector<double> samples;
      if (const Value* s = w.as_object().find("new_samples")) {
        for (const Value& x : s->as_array()) samples.push_back(x.as_number());
      }
      ref.events_per_sec = samples.empty()
                               ? w.get_number("new_events_per_sec", 0.0)
                               : median(std::move(samples));
      if (!ref.protocol.empty() && ref.events_per_sec > 0.0) {
        references.push_back(std::move(ref));
      }
    }

    const Value* rows = current_doc.as_object().find("engine_throughput");
    if (rows == nullptr) {
      std::fprintf(stderr, "%s: no \"engine_throughput\" array\n",
                   current_path.c_str());
      return 2;
    }

    int regressions = 0;
    int compared = 0;
    for (const Value& row : rows->as_array()) {
      const std::string protocol = row.get_string("protocol", "");
      const std::int64_t n = row.get_int("n", 0);
      const double measured = row.get_number("events_per_sec", 0.0);
      const auto ref = std::find_if(
          references.begin(), references.end(), [&](const Reference& r) {
            return r.protocol == protocol && r.n == n;
          });
      if (ref == references.end()) {
        std::printf("SKIP  %-12s n=%-4lld %12.0f ev/s (no reference)\n",
                    protocol.c_str(), static_cast<long long>(n), measured);
        continue;
      }
      ++compared;
      const double floor = (1.0 - tolerance) * ref->events_per_sec;
      const double ratio = measured / ref->events_per_sec;
      if (measured < floor) {
        ++regressions;
        std::printf("FAIL  %-12s n=%-4lld %12.0f ev/s vs ref %.0f (%.0f%%)\n",
                    protocol.c_str(), static_cast<long long>(n), measured,
                    ref->events_per_sec, 100.0 * ratio);
      } else {
        std::printf("OK    %-12s n=%-4lld %12.0f ev/s vs ref %.0f (%.0f%%)\n",
                    protocol.c_str(), static_cast<long long>(n), measured,
                    ref->events_per_sec, 100.0 * ratio);
      }
    }

    if (compared == 0) {
      std::fprintf(stderr, "no workloads matched between %s and %s\n",
                   current_path.c_str(), reference_path.c_str());
      return 2;
    }
    if (regressions > 0) {
      std::fprintf(stderr, "%d of %d workloads regressed >%.0f%%\n",
                   regressions, compared, 100.0 * tolerance);
      return 1;
    }
    std::printf("all %d workloads within %.0f%% of reference\n", compared,
                100.0 * tolerance);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_gate: %s\n", e.what());
    return 2;
  }
}

// Crash-safe sweep driver for unattended scenario batches.
//
// Reads either a single simulation config or a sweep file of the form
//   {"repeats": R, "points": [<config>, <config>, ...]}
// and runs every point through run_sweep_guarded: each run executes under
// a try/catch, so one throwing configuration becomes a structured
// RunFailure record (config + seed, replayable with a single run) while
// the rest of the sweep completes. Optional watchdog budgets bound every
// run so a livelocked configuration terminates with a recorded
// termination_reason instead of hanging the batch.
//
// Usage:
//   run_sweep <config.json> [--repeats R] [--jobs J] [--intra-jobs N]
//             [--out FILE] [--max-events N] [--max-time-ms T] [--fail-fast]
//             [--zero-wall]
//
// --zero-wall zeroes every aggregate's wall_seconds_total before export.
// Wall clock is the one field `equivalent()` excludes from bit-identity;
// zeroing it makes the outcome file byte-for-byte comparable across job
// counts and machines (CI's wan-matrix job diffs --jobs 1 vs --jobs 4).
//
// --intra-jobs N overrides every point's engine.intra_jobs, running each
// run through the windowed-parallel driver (per-node RNG semantics; see
// docs/PARALLELISM.md). Points whose config already sets an engine section
// keep their own values unless the flag is given.
//
// The full SweepOutcome (per-point aggregates, termination tallies, and
// failure records) is written as JSON to --out, or to stdout when no
// output file is given. The exit code is nonzero only when failures
// occurred AND --fail-fast was requested; without it a partially failed
// sweep still exits 0 so batch schedulers collect the outcome file.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "core/json.hpp"
#include "runner/export.hpp"
#include "runner/runner.hpp"

namespace {

using namespace bftsim;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <config.json> [--repeats R] [--jobs J]\n"
               "          [--intra-jobs N] [--out FILE] [--max-events N]\n"
               "          [--max-time-ms T] [--fail-fast] [--zero-wall]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string input_path;
  std::string out_path;
  std::size_t repeats = 0;    // 0 = from sweep file, default 3
  std::size_t jobs = 0;       // 0 = ThreadPool default
  std::uint32_t intra_jobs = 0;  // 0 = leave each point's engine config alone
  Watchdog watchdog;
  bool fail_fast = false;
  bool zero_wall = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--repeats") {
      repeats = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--jobs") {
      jobs = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--intra-jobs") {
      intra_jobs = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--max-events") {
      watchdog.max_events = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--max-time-ms") {
      watchdog.max_time_ms = std::strtod(next(), nullptr);
    } else if (arg == "--fail-fast") {
      fail_fast = true;
    } else if (arg == "--zero-wall") {
      zero_wall = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(argv[0]);
    } else if (input_path.empty()) {
      input_path = arg;
    } else {
      usage(argv[0]);
    }
  }
  if (input_path.empty()) usage(argv[0]);

  std::vector<SimConfig> points;
  try {
    const json::Value doc = json::parse_file(input_path);
    if (const json::Value* p = doc.as_object().find("points")) {
      for (const json::Value& point : p->as_array()) {
        points.push_back(SimConfig::from_json(point));
      }
      if (repeats == 0) {
        repeats = static_cast<std::size_t>(doc.get_int("repeats", 3));
      }
    } else {
      points.push_back(SimConfig::from_json(doc));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", input_path.c_str(), e.what());
    return 2;
  }
  if (repeats == 0) repeats = 3;
  if (points.empty()) {
    std::fprintf(stderr, "%s: no points to run\n", input_path.c_str());
    return 2;
  }
  if (intra_jobs > 0) {
    for (SimConfig& point : points) {
      point.engine.intra_jobs = intra_jobs;
      try {
        point.validate();
      } catch (const std::exception& e) {
        std::fprintf(stderr, "--intra-jobs %u: %s\n", intra_jobs, e.what());
        return 2;
      }
    }
  }

  SweepOutcome outcome = run_sweep_guarded(points, repeats, jobs, watchdog);
  if (zero_wall) {
    for (PointOutcome& po : outcome.points) po.aggregate.wall_seconds_total = 0.0;
  }

  for (std::size_t i = 0; i < outcome.points.size(); ++i) {
    const PointOutcome& po = outcome.points[i];
    std::fprintf(stderr,
                 "point %zu (%s, n=%u): %zu runs, %zu decided, %zu horizon, "
                 "%zu event-budget, %zu failed\n",
                 i, points[i].protocol.c_str(), points[i].n, po.aggregate.runs,
                 po.tally.decided, po.tally.horizon, po.tally.event_budget,
                 po.tally.failed);
  }
  for (const RunFailure& failure : outcome.failures) {
    std::fprintf(stderr, "FAILURE %s (seed %llu): %s\n", failure.label.c_str(),
                 static_cast<unsigned long long>(failure.seed),
                 failure.error.c_str());
  }

  const json::Value report = sweep_outcome_to_json(outcome);
  if (out_path.empty()) {
    std::printf("%s\n", report.dump(2).c_str());
  } else {
    write_json_file(out_path, report);
    std::fprintf(stderr, "outcome written to %s\n", out_path.c_str());
  }

  return (!outcome.ok() && fail_fast) ? 1 : 0;
}

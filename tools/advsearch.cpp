// Adversary strategy search driver.
//
// Two modes:
//
//   advsearch [--seed S] [--jobs J] [--protocols a,b,c] [--n N] [--grid G]
//             [--rounds R] [--shrink-runs K] [--max-events E]
//             [--max-time-ms T] [--out FILE] [--repro-dir DIR]
//     Runs the worst-case attack search over every (protocol, attack
//     space) cell and prints the ranked resilience table on stdout. The
//     table and the --out JSON report are byte-identical for every --jobs
//     value (candidate batches fold up in index order; see
//     src/adversary/search.hpp). With --repro-dir each worst case's
//     replayable reproducer is written to DIR/<protocol>-<attack>.json.
//     Exit code: 0 when every nonzero cell shipped a replay-verified
//     reproducer, 1 when any cell was refused (replay divergence — a
//     determinism bug), 2 on usage or setup errors.
//
//   advsearch --replay FILE...
//   advsearch --replay-dir DIR
//     Replays adversary reproducer files: re-runs each recorded config and
//     its derived attack-free baseline, recomputes the damage, and checks
//     score (exact), verdict flags, and both trace fingerprints. Exit 0
//     only when every file replays exactly.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "adversary/reproducer.hpp"
#include "adversary/search.hpp"
#include "core/json.hpp"
#include "runner/export.hpp"

namespace {

using namespace bftsim;
using namespace bftsim::adversary;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed S] [--jobs J] [--protocols a,b,c] [--n N]\n"
      "          [--grid G] [--rounds R] [--shrink-runs K] [--max-events E]\n"
      "          [--max-time-ms T] [--out FILE] [--repro-dir DIR]\n"
      "       %s --replay FILE...\n"
      "       %s --replay-dir DIR\n",
      argv0, argv0, argv0);
  std::exit(2);
}

[[nodiscard]] std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::string token;
  for (const char c : csv) {
    if (c == ',') {
      if (!token.empty()) out.push_back(token);
      token.clear();
    } else {
      token += c;
    }
  }
  if (!token.empty()) out.push_back(token);
  return out;
}

int replay_files(const std::vector<std::string>& files) {
  int bad = 0;
  for (const std::string& file : files) {
    try {
      const AdvReproducer repro = AdvReproducer::from_file(file);
      const AdvReplayOutcome outcome = replay_adv_reproducer(repro);
      if (outcome.ok()) {
        std::fprintf(stderr, "OK   %s: score %s reproduces (%s)\n",
                     file.c_str(), json::Value{repro.damage.score}.dump().c_str(),
                     repro.damage.describe().c_str());
        continue;
      }
      ++bad;
      if (!outcome.score_matches) {
        std::fprintf(stderr, "FAIL %s: score %s, recorded %s\n", file.c_str(),
                     json::Value{outcome.damage.score}.dump().c_str(),
                     json::Value{repro.damage.score}.dump().c_str());
      }
      if (!outcome.verdict_matches) {
        std::fprintf(stderr, "FAIL %s: verdict \"%s\", recorded \"%s\"\n",
                     file.c_str(), outcome.damage.describe().c_str(),
                     repro.damage.describe().c_str());
      }
      if (!outcome.fingerprints_match) {
        std::fprintf(
            stderr,
            "FAIL %s: fingerprints attacked %s/%llu baseline %s/%llu, "
            "recorded attacked %s/%llu baseline %s/%llu\n",
            file.c_str(),
            fingerprint_to_hex(outcome.attacked_fingerprint).c_str(),
            static_cast<unsigned long long>(outcome.attacked_records),
            fingerprint_to_hex(outcome.baseline_fingerprint).c_str(),
            static_cast<unsigned long long>(outcome.baseline_records),
            fingerprint_to_hex(repro.attacked_fingerprint).c_str(),
            static_cast<unsigned long long>(repro.attacked_records),
            fingerprint_to_hex(repro.baseline_fingerprint).c_str(),
            static_cast<unsigned long long>(repro.baseline_records));
      }
    } catch (const std::exception& e) {
      ++bad;
      std::fprintf(stderr, "FAIL %s: %s\n", file.c_str(), e.what());
    }
  }
  std::fprintf(stderr, "replayed %zu reproducer(s), %d failure(s)\n",
               files.size(), bad);
  return bad == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  SearchOptions options;
  std::string out_path;
  std::string repro_dir;
  std::vector<std::string> replay_list;
  std::string replay_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--seed") {
      options.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--jobs") {
      options.jobs = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--protocols") {
      options.protocols = split_csv(next());
      if (options.protocols.empty()) usage(argv[0]);
    } else if (arg == "--n") {
      options.n = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--grid") {
      options.grid = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--rounds") {
      options.rounds = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--shrink-runs") {
      options.shrink_runs =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--max-events") {
      options.watchdog.max_events = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--max-time-ms") {
      options.watchdog.max_time_ms = std::strtod(next(), nullptr);
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--repro-dir") {
      repro_dir = next();
    } else if (arg == "--replay") {
      // Replay mode takes no further options: every remaining argv entry is
      // a reproducer path, including names that begin with '-'.
      while (i + 1 < argc) replay_list.push_back(argv[++i]);
      if (replay_list.empty()) usage(argv[0]);
    } else if (arg == "--replay-dir") {
      replay_dir = next();
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(argv[0]);
    }
  }

  if (!replay_dir.empty()) {
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(replay_dir, ec)) {
      if (entry.path().extension() == ".json") {
        replay_list.push_back(entry.path().string());
      }
    }
    if (ec) {
      std::fprintf(stderr, "%s: %s\n", replay_dir.c_str(), ec.message().c_str());
      return 2;
    }
    if (replay_list.empty()) {
      std::fprintf(stderr, "%s: no reproducer files\n", replay_dir.c_str());
      return 2;
    }
    std::sort(replay_list.begin(), replay_list.end());
  }
  if (!replay_list.empty()) return replay_files(replay_list);

  if (options.seed >= (1ULL << 53)) {
    std::fprintf(stderr, "advsearch: --seed must be below 2^53 "
                         "(reproducer JSON round-trip)\n");
    return 2;
  }

  try {
    const SearchReport report = run_search(options);

    std::fputs(report.table().c_str(), stdout);

    if (!repro_dir.empty()) {
      std::filesystem::create_directories(repro_dir);
      for (const WorstCase& w : report.worst) {
        if (!w.has_reproducer) continue;
        const std::string file =
            repro_dir + "/" + w.protocol + "-" + w.attack + ".json";
        w.reproducer.save(file);
        std::fprintf(stderr, "reproducer written to %s\n", file.c_str());
      }
    }
    if (!out_path.empty()) {
      write_json_file(out_path, report.to_json());
      std::fprintf(stderr, "report written to %s\n", out_path.c_str());
    }
    return report.refused.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "advsearch: %s\n", e.what());
    return 2;
  }
}

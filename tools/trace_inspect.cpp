// Inspector CLI for recorded trace files (either streaming format: JSONL
// or the compact binary format; auto-detected).
//
// Subcommands:
//   summary <trace>                  per-kind / per-type counts, time span,
//                                    record count and fingerprint
//   summary <config.json>            run the configured simulation and
//                                    print its outcome, attacker activity
//                                    counters, and run warnings
//   fingerprint <trace>              the 16-hex-digit trace fingerprint
//   filter <trace> [--kind K] [--node N] [--type T]
//                  [--from-ms X] [--to-ms Y] [--limit N]
//                                    print matching records, one per line
//   diff <a> <b>                     first differing record; exit 1 when
//                                    the traces differ
//   record <config.json> --out FILE [--sink jsonl|binary]
//                                    run the simulation and stream its
//                                    trace to FILE; prints the fingerprint
//
// `record` + `fingerprint`/`diff` is what the CI trace-determinism job
// uses: run the same seed twice through each sink backend and require
// identical fingerprints.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <map>
#include <string>
#include <vector>

#include "core/json.hpp"
#include "core/trace.hpp"
#include "obs/trace_sink.hpp"
#include "runner/export.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace bftsim;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s summary <trace|config.json>\n"
      "       %s fingerprint <trace>\n"
      "       %s filter <trace> [--kind K] [--node N] [--type T]\n"
      "                 [--from-ms X] [--to-ms Y] [--limit N]\n"
      "       %s diff <a> <b>\n"
      "       %s record <config.json> --out FILE [--sink jsonl|binary]\n",
      argv0, argv0, argv0, argv0, argv0);
  std::exit(2);
}

/// Streams a trace file once, returning (fingerprint, record count).
struct TraceDigest {
  std::uint64_t fingerprint = kTraceFingerprintSeed;
  std::uint64_t records = 0;
};

TraceDigest digest_file(const std::string& path) {
  obs::TraceReader reader(path);
  TraceDigest d;
  TraceRecord rec;
  while (reader.next(rec)) {
    d.fingerprint = hash_combine(d.fingerprint, rec.fingerprint());
    ++d.records;
  }
  return d;
}

/// Summary of a run executed from a config file: headline outcome plus the
/// attacker activity counters (how many messages the attack dropped,
/// delayed, modified, duplicated) and any structured run warnings.
int cmd_summary_config(const std::string& path, const json::Value& doc) {
  const SimConfig cfg = SimConfig::from_json(doc);
  const RunResult result = run_simulation(cfg);
  std::printf("config:      %s\n", path.c_str());
  std::printf("protocol:    %s (n=%u)\n", cfg.protocol.c_str(), cfg.n);
  std::printf("attack:      %s\n",
              cfg.attack.empty() ? "(none)" : cfg.attack.c_str());
  std::printf("terminated:  %s\n", result.terminated ? "yes" : "no");
  std::printf("records:     %llu\n",
              static_cast<unsigned long long>(result.trace_records));
  std::printf("fingerprint: %s\n",
              fingerprint_to_hex(result.trace_fingerprint).c_str());
  if (result.attacker_dropped != 0 || result.attacker_delayed != 0 ||
      result.attacker_modified != 0 || result.attacker_duplicated != 0) {
    std::printf("attacker activity:\n");
    std::printf("  dropped      %llu\n",
                static_cast<unsigned long long>(result.attacker_dropped));
    std::printf("  delayed      %llu\n",
                static_cast<unsigned long long>(result.attacker_delayed));
    std::printf("  modified     %llu\n",
                static_cast<unsigned long long>(result.attacker_modified));
    std::printf("  duplicated   %llu\n",
                static_cast<unsigned long long>(result.attacker_duplicated));
  }
  for (const RunWarning& warning : result.warnings) {
    std::printf("warning:     %s: %s\n", warning.code.c_str(),
                warning.detail.c_str());
  }
  return 0;
}

int cmd_summary(const std::string& path) {
  // A simulation config is also a valid summary target: run it and report
  // the outcome (incl. attacker activity). Trace files are never a single
  // JSON object with a "protocol" key, so sniffing is unambiguous.
  bool is_config = false;
  json::Value doc;
  try {
    doc = json::parse_file(path);
    is_config = doc.is_object() && doc.as_object().find("protocol") != nullptr;
  } catch (const std::exception&) {
    // not a single JSON document; fall through to the trace reader
  }
  // Outside the sniffing try: a config that fails to parse or run must
  // surface its own error, not a confusing trace-reader one.
  if (is_config) return cmd_summary_config(path, doc);
  obs::TraceReader reader(path);
  TraceDigest d;
  std::map<std::string, std::uint64_t> by_kind;
  std::map<std::string, std::uint64_t> by_type;
  Time first = 0, last = 0;
  NodeId max_node = 0;
  TraceRecord rec;
  while (reader.next(rec)) {
    if (d.records == 0) first = rec.at;
    last = rec.at;
    d.fingerprint = hash_combine(d.fingerprint, rec.fingerprint());
    ++d.records;
    ++by_kind[std::string(to_string(rec.kind))];
    if (!rec.type.empty()) ++by_type[rec.type];
    if (rec.a != kNoNode) max_node = std::max(max_node, rec.a);
    if (rec.b != kNoNode) max_node = std::max(max_node, rec.b);
  }
  std::printf("file:        %s\n", path.c_str());
  std::printf("format:      %s\n",
              std::string(to_string(reader.format())).c_str());
  std::printf("records:     %llu\n",
              static_cast<unsigned long long>(d.records));
  std::printf("fingerprint: %s\n", fingerprint_to_hex(d.fingerprint).c_str());
  if (d.records > 0) {
    std::printf("span:        %.3f ms .. %.3f ms\n", to_ms(first), to_ms(last));
    std::printf("max node id: %u\n", max_node);
    std::printf("by kind:\n");
    for (const auto& [kind, count] : by_kind) {
      std::printf("  %-12s %llu\n", kind.c_str(),
                  static_cast<unsigned long long>(count));
    }
    if (!by_type.empty()) {
      std::printf("by payload type:\n");
      for (const auto& [type, count] : by_type) {
        std::printf("  %-12s %llu\n", type.c_str(),
                    static_cast<unsigned long long>(count));
      }
    }
  }
  return 0;
}

int cmd_fingerprint(const std::string& path) {
  const TraceDigest d = digest_file(path);
  std::printf("%s %llu\n", fingerprint_to_hex(d.fingerprint).c_str(),
              static_cast<unsigned long long>(d.records));
  return 0;
}

struct Filter {
  std::string kind;
  std::string type;
  NodeId node = kNoNode;
  double from_ms = -1.0;
  double to_ms = -1.0;
  std::uint64_t limit = 0;  ///< 0 = unlimited

  [[nodiscard]] bool matches(const TraceRecord& rec) const {
    if (!kind.empty() && kind != to_string(rec.kind)) return false;
    if (!type.empty() && type != rec.type) return false;
    if (node != kNoNode && rec.a != node && rec.b != node) return false;
    if (from_ms >= 0.0 && bftsim::to_ms(rec.at) < from_ms) return false;
    if (to_ms >= 0.0 && bftsim::to_ms(rec.at) > to_ms) return false;
    return true;
  }
};

int cmd_filter(const std::string& path, const Filter& filter) {
  obs::TraceReader reader(path);
  TraceRecord rec;
  std::uint64_t printed = 0;
  while (reader.next(rec)) {
    if (!filter.matches(rec)) continue;
    std::printf("%s\n", rec.to_string().c_str());
    if (filter.limit != 0 && ++printed >= filter.limit) break;
  }
  return 0;
}

int cmd_diff(const std::string& path_a, const std::string& path_b) {
  obs::TraceReader a(path_a);
  obs::TraceReader b(path_b);
  TraceRecord ra, rb;
  std::uint64_t index = 0;
  for (;; ++index) {
    const bool more_a = a.next(ra);
    const bool more_b = b.next(rb);
    if (!more_a && !more_b) {
      std::printf("identical: %llu records\n",
                  static_cast<unsigned long long>(index));
      return 0;
    }
    if (more_a != more_b) {
      std::printf("length mismatch at record %llu: %s ended first\n",
                  static_cast<unsigned long long>(index),
                  (more_a ? path_b : path_a).c_str());
      return 1;
    }
    if (ra.fingerprint() != rb.fingerprint()) {
      std::printf("differ at record %llu:\n  a: %s\n  b: %s\n",
                  static_cast<unsigned long long>(index),
                  ra.to_string().c_str(), rb.to_string().c_str());
      return 1;
    }
  }
}

int cmd_record(const std::string& config_path, const std::string& out_path,
               const std::string& sink_name) {
  const json::Value doc = json::parse_file(config_path);
  SimConfig cfg = SimConfig::from_json(doc);
  cfg.obs.sink =
      sink_name == "binary" ? TraceSinkKind::kBinary : TraceSinkKind::kJsonl;
  cfg.obs.trace_path = out_path;
  const RunResult result = run_simulation(cfg);
  std::printf("%s %llu\n", fingerprint_to_hex(result.trace_fingerprint).c_str(),
              static_cast<unsigned long long>(result.trace_records));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) usage(argv[0]);
  const std::string command = argv[1];
  try {
    if (command == "summary") {
      return cmd_summary(argv[2]);
    }
    if (command == "fingerprint") {
      return cmd_fingerprint(argv[2]);
    }
    if (command == "filter") {
      Filter filter;
      const std::string path = argv[2];
      for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
          if (i + 1 >= argc) usage(argv[0]);
          return argv[++i];
        };
        if (arg == "--kind") {
          filter.kind = next();
        } else if (arg == "--node") {
          filter.node =
              static_cast<NodeId>(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--type") {
          filter.type = next();
        } else if (arg == "--from-ms") {
          filter.from_ms = std::strtod(next(), nullptr);
        } else if (arg == "--to-ms") {
          filter.to_ms = std::strtod(next(), nullptr);
        } else if (arg == "--limit") {
          filter.limit = std::strtoull(next(), nullptr, 10);
        } else {
          usage(argv[0]);
        }
      }
      return cmd_filter(path, filter);
    }
    if (command == "diff") {
      if (argc < 4) usage(argv[0]);
      return cmd_diff(argv[2], argv[3]);
    }
    if (command == "record") {
      const std::string config_path = argv[2];
      std::string out_path;
      std::string sink_name = "jsonl";
      for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
          if (i + 1 >= argc) usage(argv[0]);
          return argv[++i];
        };
        if (arg == "--out") {
          out_path = next();
        } else if (arg == "--sink") {
          sink_name = next();
        } else {
          usage(argv[0]);
        }
      }
      if (out_path.empty()) usage(argv[0]);
      if (sink_name != "jsonl" && sink_name != "binary") usage(argv[0]);
      return cmd_record(config_path, out_path, sink_name);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", command.c_str(), e.what());
    return 2;
  }
  usage(argv[0]);
}

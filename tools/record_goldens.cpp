// Records golden engine aggregates for the determinism regression suite.
//
// Runs a fixed list of configuration points — two protocols (or engine
// variants) per figure/ablation bench, small n and repeat counts so the
// replay stays test-sized — and writes their aggregates to a JSON file
// (default tests/data/engine_goldens.json). The checked-in goldens were
// produced by the pre-overhaul engine; tests/sim/engine_goldens_test.cpp
// replays every point against the current engine and requires equivalent()
// aggregates, which is what keeps hot-path rewrites bit-identical.
//
// Regenerate (only when an intentional behavior change is being made):
//   cmake --build build -j --target record_goldens
//   ./build/tools/record_goldens tests/data/engine_goldens.json
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "baseline/baseline.hpp"
#include "core/json.hpp"
#include "runner/export.hpp"
#include "runner/runner.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace bftsim;

struct AggregatePoint {
  std::string name;
  SimConfig cfg;
  std::size_t repeats = 3;
};

json::Value partition_params(double resolve_ms, int subnets) {
  json::Object params;
  params["resolve_ms"] = resolve_ms;
  params["mode"] = "drop";
  if (subnets > 0) params["subnets"] = static_cast<std::int64_t>(subnets);
  return json::Value{std::move(params)};
}

/// One spot-check pair per bench (fig2-fig9, ablations, beyond-paper),
/// mirroring the exact configurations those benches run, at test-sized
/// repeat counts.
std::vector<AggregatePoint> aggregate_points() {
  std::vector<AggregatePoint> points;
  const auto add = [&points](std::string name, SimConfig cfg,
                             std::size_t repeats = 3) {
    points.push_back(AggregatePoint{std::move(name), std::move(cfg), repeats});
  };

  {  // fig2: PBFT scalability (message-level engine rows).
    SimConfig cfg;
    cfg.protocol = "pbft";
    cfg.n = 16;
    cfg.lambda_ms = 1000;
    cfg.delay = DelaySpec::normal(250, 50);
    cfg.decisions = 1;
    add("fig2/pbft/n=16", cfg);
    cfg.n = 32;
    add("fig2/pbft/n=32", cfg);
  }
  {  // fig3: protocol comparison across network environments.
    add("fig3/hotstuff-ns/N(500,100)",
        experiment_config("hotstuff-ns", 16, 1000, DelaySpec::normal(500, 100)));
    add("fig3/asyncba/N(1000,300)",
        experiment_config("asyncba", 16, 1000, DelaySpec::normal(1000, 300)));
  }
  {  // fig4: overestimated lambda.
    add("fig4/pbft/lambda=2000",
        experiment_config("pbft", 16, 2000, DelaySpec::normal(250, 50)));
    add("fig4/librabft/lambda=1500",
        experiment_config("librabft", 16, 1500, DelaySpec::normal(250, 50)));
  }
  {  // fig5: underestimated lambda.
    add("fig5/hotstuff-ns/lambda=150",
        experiment_config("hotstuff-ns", 16, 150, DelaySpec::normal(250, 50)));
    add("fig5/pbft/lambda=250",
        experiment_config("pbft", 16, 250, DelaySpec::normal(250, 50)));
  }
  {  // fig6: network partition, two subnets, resolves at 33 s.
    for (const char* protocol : {"algorand", "pbft"}) {
      SimConfig cfg =
          experiment_config(protocol, 16, 1000, DelaySpec::normal(250, 50));
      cfg.decisions = 1;
      cfg.attack = "partition";
      cfg.attack_params = partition_params(33'000, 2);
      cfg.max_time_ms = 600'000;
      add(std::string("fig6/") + protocol + "/partition", cfg);
    }
  }
  {  // fig7: fail-stop resilience.
    SimConfig cfg =
        experiment_config("hotstuff-ns", 16, 1000, DelaySpec::normal(1000, 300));
    cfg.honest = 14;
    cfg.max_time_ms = 600'000;
    add("fig7/hotstuff-ns/f=2", cfg);
    cfg = experiment_config("addv2", 16, 1000, DelaySpec::normal(1000, 300));
    cfg.honest = 13;
    cfg.max_time_ms = 600'000;
    add("fig7/addv2/f=3", cfg);
  }
  {  // fig8: ADD+ variants under attacks.
    SimConfig cfg = experiment_config("addv1", 16, 1000, DelaySpec::normal(250, 50));
    cfg.attack = "add-static";
    cfg.max_time_ms = 600'000;
    add("fig8/addv1/add-static", cfg);
    cfg = experiment_config("addv3", 16, 1000, DelaySpec::normal(250, 50));
    cfg.attack = "add-adaptive";
    cfg.max_time_ms = 600'000;
    add("fig8/addv3/add-adaptive", cfg);
  }
  {  // ablation_pacemaker: crashed leaders and a healed partition.
    SimConfig cfg =
        experiment_config("librabft", 16, 1000, DelaySpec::normal(1000, 300));
    cfg.honest = 14;
    add("ablation_pacemaker/librabft/f=2", cfg);
    cfg = experiment_config("tendermint", 16, 1000, DelaySpec::normal(250, 50));
    cfg.decisions = 1;
    cfg.attack = "partition";
    cfg.attack_params = partition_params(33'000, 0);
    add("ablation_pacemaker/tendermint/healed-partition", cfg);
  }
  {  // ablation_costmodel: verification-cost sweep points.
    SimConfig cfg = experiment_config("pbft", 16, 1000, DelaySpec::normal(250, 50));
    cfg.decisions = 10;
    cfg.cost.verify_ms = 2.0;
    cfg.cost.sign_ms = 1.0;
    add("ablation_costmodel/pbft/verify=2", cfg);
    cfg = experiment_config("tendermint", 16, 1000, DelaySpec::normal(250, 50));
    cfg.decisions = 10;
    cfg.cost.verify_ms = 5.0;
    cfg.cost.sign_ms = 2.5;
    add("ablation_costmodel/tendermint/verify=5", cfg);
  }
  {  // beyond_paper: extension protocols.
    add("beyond/sync-hotstuff/N(250,50)",
        experiment_config("sync-hotstuff", 16, 1000, DelaySpec::normal(250, 50)));
    add("beyond/tendermint/N(1000,300)",
        experiment_config("tendermint", 16, 1000, DelaySpec::normal(1000, 300)));
  }
  {  // fault layer: one point per fault kind plus a combined schedule and a
     // watchdog budget. Small n, 2 repeats — these pin the fault RNG stream
     // (fork order, window expansion, corruption coin) in addition to the
     // engine hot path.
    SimConfig cfg = experiment_config("pbft", 8, 1000, DelaySpec::normal(250, 50));
    cfg.max_time_ms = 600'000;
    cfg.faults.crashes.push_back({2, 300.0, 2000.0});
    add("faults/pbft/crash-recover", cfg, 2);

    cfg = experiment_config("hotstuff-ns", 8, 1000, DelaySpec::normal(250, 50));
    cfg.max_time_ms = 600'000;
    cfg.faults.link_flaps.push_back({0, 1, 200.0, 1500.0});
    cfg.faults.link_flaps.push_back({2, 3, 900.0, 1200.0});
    add("faults/hotstuff-ns/link-flap", cfg, 2);

    cfg = experiment_config("tendermint", 8, 1000, DelaySpec::normal(250, 50));
    cfg.max_time_ms = 600'000;
    cfg.faults.corruption = {0.05, 0.0, 0.0};
    add("faults/tendermint/corruption", cfg, 2);

    cfg = experiment_config("librabft", 8, 1000, DelaySpec::normal(250, 50));
    cfg.max_time_ms = 600'000;
    cfg.faults.clock = {25.0, 0.02};
    add("faults/librabft/clock-skew", cfg, 2);

    cfg = experiment_config("algorand", 8, 1000, DelaySpec::normal(250, 50));
    cfg.max_time_ms = 600'000;
    cfg.faults.random_crashes = {1, 0.0, 5000.0, 500.0, 1500.0};
    cfg.faults.random_link_flaps = {2, 0.0, 5000.0, 200.0, 1000.0};
    cfg.faults.corruption = {0.02, 0.0, 0.0};
    add("faults/algorand/combined", cfg, 2);

    cfg = experiment_config("pbft", 8, 1000, DelaySpec::normal(250, 50));
    cfg.max_events = 500;  // watchdog: run stops on the event budget
    cfg.faults.crashes.push_back({1, 100.0, 1000.0});
    add("faults/pbft/event-budget", cfg, 2);
  }
  return points;
}

/// WAN transport backend points (net/wan/; see docs/NETWORKING.md): one
/// aggregate pair per backend piece — RTT matrix, bandwidth queues, gossip
/// dissemination, the three combined — plus a windowed-parallel matrix run.
/// These pin the WAN delay arithmetic, the FIFO next-free-time scalars, the
/// overlay construction and the duplicate-suppression order; the CI
/// wan-matrix job replays them under ASan/UBSan.
std::vector<AggregatePoint> wan_points() {
  std::vector<AggregatePoint> points;
  const auto net = [](const char* json_text) {
    return WanSpec::from_json(json::parse(json_text));
  };

  SimConfig cfg = experiment_config("pbft", 16, 1000, DelaySpec::normal(50, 10));
  cfg.decisions = 1;
  cfg.net = net(R"({"rtt": {"matrix": "geo8"}})");
  points.push_back(AggregatePoint{"wan/pbft/geo8-matrix", cfg, 3});

  cfg = experiment_config("hotstuff-ns", 16, 1000, DelaySpec::normal(50, 10));
  cfg.decisions = 5;
  cfg.net = net(R"({"uplink_mbps": 20, "downlink_mbps": 20})");
  points.push_back(AggregatePoint{"wan/hotstuff-ns/bandwidth", cfg, 3});

  cfg = experiment_config("pbft", 16, 1000, DelaySpec::normal(50, 10));
  cfg.decisions = 1;
  cfg.net = net(R"({"backend": "gossip", "fanout": 3})");
  points.push_back(AggregatePoint{"wan/pbft/gossip-fanout3", cfg, 3});

  cfg = experiment_config("tendermint", 16, 1000, DelaySpec::normal(50, 10));
  cfg.decisions = 1;
  cfg.net = net(
      R"({"backend": "gossip", "fanout": 4,
          "uplink_mbps": 100, "downlink_mbps": 100,
          "rtt": {"matrix": "geo8",
                  "regions": ["us-east", "eu-west", "ap-northeast"]}})");
  points.push_back(AggregatePoint{"wan/tendermint/gossip-bw-matrix", cfg, 3});

  // Matrix-only stays legal on the windowed-parallel driver: this point
  // runs two lanes with the WAN infimum folded into the lookahead.
  cfg = experiment_config("librabft", 16, 1000, DelaySpec::normal(50, 10));
  cfg.decisions = 2;
  cfg.net = net(R"({"rtt": {"matrix": "geo8"}})");
  cfg.engine.intra_jobs = 2;
  points.push_back(AggregatePoint{"wan/librabft/geo8-windowed", cfg, 2});

  return points;
}

/// Client workload points (src/workload/; see docs/WORKLOADS.md): one
/// aggregate pair per generator mode — open-loop Poisson, open-loop fixed
/// with a batching timeout, closed-loop (serial fallback), and an open-loop
/// windowed-parallel run. These pin the "wl" RNG fork, the per-node arrival
/// streams, the batch digests and the request-latency percentile math; the
/// CI workload-matrix job replays them under ASan/UBSan.
std::vector<AggregatePoint> workload_points() {
  std::vector<AggregatePoint> points;

  // decisions=10: pbft proposes sequence k+1 only after k decides, and the
  // seq-1 proposal at t=0 predates every open-loop arrival — later
  // sequences are what carry batches.
  SimConfig cfg =
      experiment_config("pbft", 16, 1000, DelaySpec::normal(250, 50));
  cfg.decisions = 10;
  cfg.workload.rate_rps = 200.0;
  cfg.workload.max_batch = 16;
  points.push_back(AggregatePoint{"workload/pbft/open-poisson", cfg, 2});

  cfg = experiment_config("hotstuff-ns", 16, 1000, DelaySpec::normal(250, 50));
  cfg.workload.rate_rps = 100.0;
  cfg.workload.arrival = WorkloadSpec::Arrival::kFixed;
  cfg.workload.max_batch = 8;
  cfg.workload.max_wait_ms = 50.0;
  points.push_back(
      AggregatePoint{"workload/hotstuff-ns/open-fixed-wait", cfg, 2});

  cfg = experiment_config("tendermint", 16, 1000, DelaySpec::normal(250, 50));
  cfg.workload.mode = WorkloadSpec::Mode::kClosed;
  cfg.workload.clients = 1000;
  cfg.workload.window = 2;
  cfg.workload.think_ms = 100.0;
  points.push_back(AggregatePoint{"workload/tendermint/closed-loop", cfg, 2});

  // Open-loop workloads stay legal on the windowed-parallel driver; this
  // point pins the merge-barrier decide order feeding the latency vector.
  cfg = experiment_config("librabft", 16, 1000, DelaySpec::normal(250, 50));
  cfg.workload.rate_rps = 150.0;
  cfg.engine.intra_jobs = 2;
  points.push_back(AggregatePoint{"workload/librabft/open-windowed", cfg, 2});

  return points;
}

struct SinglePoint {
  std::string name;
  SimConfig cfg;
  bool baseline = false;  ///< run the packet-level engine instead
};

/// Single-run points: the fig9 view-trace panels (record_views on) and one
/// packet-level baseline row from fig2 (the baseline engine shares the
/// controller dispatch path, so it must stay bit-identical too).
std::vector<SinglePoint> single_points() {
  std::vector<SinglePoint> points;

  SimConfig cfg = experiment_config("hotstuff-ns", 16, 150, DelaySpec::normal(250, 50));
  cfg.seed = 4;
  cfg.record_views = true;
  cfg.max_time_ms = 600'000;
  points.push_back(SinglePoint{"fig9/paper", cfg, false});

  cfg = experiment_config("hotstuff-ns", 16, 1000, DelaySpec::normal(1000, 300));
  cfg.seed = 4;
  cfg.honest = 12;
  cfg.record_views = true;
  cfg.max_time_ms = 600'000;
  points.push_back(SinglePoint{"fig9/stress", cfg, false});

  cfg = SimConfig{};
  cfg.protocol = "pbft";
  cfg.n = 8;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.decisions = 1;
  cfg.seed = 1;
  points.push_back(SinglePoint{"fig2/baseline/pbft/n=8", cfg, true});

  return points;
}

/// WAN single-run points: a gossip run recorded with its dissemination
/// counters, pinning relay fan-out and duplicate suppression exactly.
std::vector<SinglePoint> wan_single_points() {
  std::vector<SinglePoint> points;
  SimConfig cfg = experiment_config("pbft", 16, 1000, DelaySpec::normal(50, 10));
  cfg.decisions = 1;
  cfg.seed = 5;
  cfg.net = WanSpec::from_json(
      json::parse(R"({"backend": "gossip", "fanout": 3})"));
  points.push_back(SinglePoint{"wan/pbft/gossip-counters", cfg, false});
  return points;
}

/// Workload single-run points: one open-loop run recorded with its full
/// request-level record (conservation counters and latency percentiles),
/// pinning batch formation and decide-order latency accounting exactly.
std::vector<SinglePoint> workload_single_points() {
  std::vector<SinglePoint> points;
  SimConfig cfg =
      experiment_config("pbft", 16, 1000, DelaySpec::normal(250, 50));
  cfg.seed = 7;
  cfg.decisions = 10;
  cfg.workload.rate_rps = 300.0;
  cfg.workload.max_batch = 32;
  points.push_back(SinglePoint{"workload/pbft/open-counters", cfg, false});
  return points;
}

json::Value single_result_to_json(const RunResult& r) {
  json::Object o;
  o["terminated"] = r.terminated;
  o["termination_time"] = static_cast<std::int64_t>(r.termination_time);
  o["events_processed"] = static_cast<std::int64_t>(r.events_processed);
  o["messages_sent"] = static_cast<std::int64_t>(r.messages_sent);
  o["messages_delivered"] = static_cast<std::int64_t>(r.messages_delivered);
  o["messages_dropped"] = static_cast<std::int64_t>(r.messages_dropped);
  o["bytes_sent"] = static_cast<std::int64_t>(r.bytes_sent);
  o["timers_fired"] = static_cast<std::int64_t>(r.timers_fired);
  o["decision_count"] = static_cast<std::int64_t>(r.decisions.size());
  o["view_count"] = static_cast<std::int64_t>(r.views.size());
  return json::Value{std::move(o)};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "tests/data/engine_goldens.json";

  json::Array aggregate_array;
  for (const AggregatePoint& point : aggregate_points()) {
    std::printf("recording %-45s ...", point.name.c_str());
    std::fflush(stdout);
    const Aggregate agg = run_repeated(point.cfg, point.repeats);
    json::Object o;
    o["name"] = point.name;
    o["repeats"] = static_cast<std::int64_t>(point.repeats);
    o["config"] = point.cfg.to_json();
    o["aggregate"] = aggregate_to_json(agg);
    aggregate_array.push_back(json::Value{std::move(o)});
    std::printf(" done (%zu runs, %.0f events mean)\n", agg.runs, agg.events.mean);
  }

  json::Array single_array;
  for (const SinglePoint& point : single_points()) {
    std::printf("recording %-45s ...", point.name.c_str());
    std::fflush(stdout);
    const RunResult r = point.baseline
                            ? baseline::run_baseline_simulation(point.cfg)
                            : run_simulation(point.cfg);
    json::Object o;
    o["name"] = point.name;
    o["baseline"] = point.baseline;
    o["config"] = point.cfg.to_json();
    o["result"] = single_result_to_json(r);
    single_array.push_back(json::Value{std::move(o)});
    std::printf(" done (%llu events)\n",
                static_cast<unsigned long long>(r.events_processed));
  }

  json::Array wan_array;
  for (const AggregatePoint& point : wan_points()) {
    std::printf("recording %-45s ...", point.name.c_str());
    std::fflush(stdout);
    const Aggregate agg = run_repeated(point.cfg, point.repeats);
    json::Object o;
    o["name"] = point.name;
    o["repeats"] = static_cast<std::int64_t>(point.repeats);
    o["config"] = point.cfg.to_json();
    o["aggregate"] = aggregate_to_json(agg);
    wan_array.push_back(json::Value{std::move(o)});
    std::printf(" done (%zu runs, %.0f events mean)\n", agg.runs, agg.events.mean);
  }

  json::Array wan_single_array;
  for (const SinglePoint& point : wan_single_points()) {
    std::printf("recording %-45s ...", point.name.c_str());
    std::fflush(stdout);
    const RunResult r = run_simulation(point.cfg);
    json::Object o;
    o["name"] = point.name;
    o["config"] = point.cfg.to_json();
    json::Value result = single_result_to_json(r);
    result.as_object()["gossip_relayed"] =
        static_cast<std::int64_t>(r.gossip_relayed);
    result.as_object()["gossip_duplicates"] =
        static_cast<std::int64_t>(r.gossip_duplicates);
    o["result"] = std::move(result);
    wan_single_array.push_back(json::Value{std::move(o)});
    std::printf(" done (%llu events, %llu relays)\n",
                static_cast<unsigned long long>(r.events_processed),
                static_cast<unsigned long long>(r.gossip_relayed));
  }

  json::Array workload_array;
  for (const AggregatePoint& point : workload_points()) {
    std::printf("recording %-45s ...", point.name.c_str());
    std::fflush(stdout);
    const Aggregate agg = run_repeated(point.cfg, point.repeats);
    json::Object o;
    o["name"] = point.name;
    o["repeats"] = static_cast<std::int64_t>(point.repeats);
    o["config"] = point.cfg.to_json();
    o["aggregate"] = aggregate_to_json(agg);
    workload_array.push_back(json::Value{std::move(o)});
    std::printf(" done (%zu runs, %llu requests decided)\n", agg.runs,
                static_cast<unsigned long long>(agg.workload_decided));
  }

  json::Array workload_single_array;
  for (const SinglePoint& point : workload_single_points()) {
    std::printf("recording %-45s ...", point.name.c_str());
    std::fflush(stdout);
    const RunResult r = run_simulation(point.cfg);
    json::Object o;
    o["name"] = point.name;
    o["config"] = point.cfg.to_json();
    json::Value result = single_result_to_json(r);
    result.as_object()["workload"] = workload_to_json(r.workload);
    o["result"] = std::move(result);
    workload_single_array.push_back(json::Value{std::move(o)});
    std::printf(" done (%llu events, %llu requests decided)\n",
                static_cast<unsigned long long>(r.events_processed),
                static_cast<unsigned long long>(r.workload.decided));
  }

  json::Object top;
  top["generated_by"] = "tools/record_goldens";
  top["aggregate_points"] = json::Value{std::move(aggregate_array)};
  top["single_points"] = json::Value{std::move(single_array)};
  top["wan_points"] = json::Value{std::move(wan_array)};
  top["wan_single_points"] = json::Value{std::move(wan_single_array)};
  top["workload_points"] = json::Value{std::move(workload_array)};
  top["workload_single_points"] = json::Value{std::move(workload_single_array)};
  write_json_file(out_path, json::Value{std::move(top)});
  std::printf("goldens written to %s\n", out_path.c_str());
  return 0;
}

// HotStuff with a Naive Synchronizer (the paper's "HotStuff+NS").
//
// Chained HotStuff whose PaceMaker is the view-doubling synchronizer of
// Naor et al. ("Cogsworth"): entirely message-free. The duration of view v
// is base * 2^(v-1) (base = 2λ) — doubling per view, never reset. A node
// advances exactly two ways:
//   - optimistically, when it learns a QC for its *current* view (from a
//     proposal's justification or by assembling votes itself), or
//   - when its view timer expires.
// Nodes never jump views and never vote outside their current view; that
// is the "naive" part, and precisely what the paper studies: views only
// re-align because exponentially growing durations eventually dominate any
// offset. When λ underestimates the real delay the system repeatedly
// desynchronizes and pays multi-second stalls (Figs. 5 and 9); after a
// partition it must wait out a doubled view duration before progressing
// again (Fig. 6). A replica stuck behind still learns committed values
// passively from received proposals (certified three-chains commit
// regardless of the local view), so termination does not require it to
// climb back.
#pragma once

#include <memory>

#include "core/config.hpp"
#include "protocols/hotstuff/core.hpp"
#include "protocols/node.hpp"

namespace bftsim::hotstuff {

class HotStuffNsNode final : public Node {
 public:
  HotStuffNsNode(NodeId id, const SimConfig& cfg);

  void on_start(Context& ctx) override;
  void on_message(const Message& msg, Context& ctx) override;
  void on_timer(const TimerEvent& ev, Context& ctx) override;

  /// Base view duration as a multiple of λ (one proposal + one vote hop).
  static constexpr int kBaseFactor = 2;
  /// Cap on the doubling exponent (max dwell 2^4 * base = 32λ). Without a
  /// cap, a stretch of crashed leaders inflates view durations past any
  /// horizon; the cap preserves the pacemaker's doubling behaviour at the
  /// time scales the experiments exercise.
  static constexpr int kMaxDoubling = 4;

 private:
  [[nodiscard]] NodeId leader_of(View v, Context& ctx) const noexcept {
    return static_cast<NodeId>(v % ctx.n());
  }
  /// Exponential back-off anchored at the newest QC this replica knows:
  /// the view duration doubles for every view entered without progress and
  /// snaps back to the base when a certificate lands. In a well-configured
  /// network the base never binds; with underestimated λ the base is
  /// smaller than a view actually needs, so every reset causes fresh
  /// timeouts — the oscillation behind Figs. 5 and 9 — and after an outage
  /// the accumulated doubling must be waited out (Fig. 6).
  [[nodiscard]] Time duration_of(View v) const noexcept {
    const View anchor = core_.high_qc().view;
    const View since = v > anchor + 1 ? v - 1 - anchor : 0;
    return base_duration_ << std::min<View>(since, kMaxDoubling);
  }

  void enter_view(View v, Context& ctx);
  void propose(Context& ctx);
  void try_vote(const Block& block, Context& ctx);
  void handle_proposal(const Message& msg, Context& ctx);
  void handle_vote(const Message& msg, Context& ctx);

  NodeId id_;
  Core core_;
  View cur_view_ = 1;
  View last_voted_ = 0;
  Time base_duration_ = 0;
  TimerId timer_ = 0;
};

[[nodiscard]] std::unique_ptr<Node> make_hotstuff_ns_node(NodeId id,
                                                          const SimConfig& cfg);

}  // namespace bftsim::hotstuff

#include "protocols/hotstuff/core.hpp"

#include <algorithm>

#include "core/log.hpp"

namespace bftsim::hotstuff {

Core::Core(NodeId id) : id_(id) {
  Block genesis;
  genesis.id = kGenesisId;
  genesis.parent = kGenesisId;
  genesis.view = 0;
  genesis.value = 0;
  genesis.height = 0;
  genesis.justify = QuorumCert{0, kGenesisId, {}};
  blocks_.emplace(genesis.id, genesis);
  high_qc_ = QuorumCert{0, kGenesisId, {}};
  locked_qc_ = high_qc_;
}

const Block* Core::find(Value id) const noexcept {
  const auto it = blocks_.find(id);
  return it == blocks_.end() ? nullptr : &it->second;
}

Block Core::make_block(View view, Context& ctx) {
  const Block* parent = find(high_qc_.block);
  Block b;
  b.parent = high_qc_.block;
  b.view = view;
  b.height = (parent != nullptr ? parent->height : 0) + 1;
  b.justify = high_qc_;
  // Fresh mint: let the workload layer batch pending client requests into
  // the block (shared by the hotstuff-ns and librabft pacemakers).
  const ProposalBatch batch =
      ctx.next_proposal(b.height, hash_words({0x76616cULL, view, id_}));
  b.value = batch.value;
  b.body_bytes = batch.body_bytes;
  b.id = hash_words({0x626c6bULL, b.parent, b.view, b.value, b.height});
  return b;
}

void Core::store(const Block& b) { blocks_.emplace(b.id, b); }

bool Core::extends(const Block& descendant, Value ancestor_id) const noexcept {
  const Block* cur = &descendant;
  while (cur != nullptr) {
    if (cur->id == ancestor_id) return true;
    if (cur->id == kGenesisId) return false;
    cur = find(cur->parent);
  }
  return false;
}

bool Core::safe_to_vote(const Block& b) const noexcept {
  // Liveness branch: the proposal's justification is newer than our lock.
  if (b.justify.view > locked_qc_.view) return true;
  // Safety branch: the proposal extends the block we are locked on.
  return extends(b, locked_qc_.block);
}

bool Core::missing_ancestor(const Block& b) const noexcept {
  const Block* cur = find(b.parent);
  Value id = b.parent;
  while (true) {
    if (cur == nullptr) return id != kGenesisId;
    if (cur->id == kGenesisId || cur->height <= last_reported_height_) return false;
    id = cur->parent;
    cur = find(id);
  }
}

bool Core::process_qc(const QuorumCert& qc, Context& ctx) {
  const bool genesis_qc = qc.view == 0 && qc.block == kGenesisId;
  if (!genesis_qc && !qc.valid(quorum(ctx))) return false;

  bool advanced = false;
  if (qc.view > high_qc_.view) {
    high_qc_ = qc;
    advanced = true;
  }
  // Two-chain lock: lock on the parent QC of the newly certified block.
  if (const Block* b1 = find(qc.block); b1 != nullptr) {
    if (b1->justify.view > locked_qc_.view) locked_qc_ = b1->justify;
  }
  try_commit(qc, ctx);
  return advanced;
}

void Core::try_commit(const QuorumCert& qc, Context& ctx) {
  // Three-chain rule: qc certifies b1; b1.justify certifies b2;
  // b2.justify certifies b3. If the three views are consecutive, b3 and
  // all its uncommitted ancestors are committed.
  const Block* b1 = find(qc.block);
  if (b1 == nullptr) return;
  const Block* b2 = find(b1->justify.block);
  if (b2 == nullptr) return;
  const Block* b3 = find(b2->justify.block);
  if (b3 == nullptr) return;
  if (b1->view != b2->view + 1 || b2->view != b3->view + 1) return;
  if (b3->height <= last_reported_height_) return;

  // Collect the chain from b3 down to the last reported height; if a block
  // is missing we cannot report contiguous heights yet (catch-up pending).
  std::vector<const Block*> chain;
  const Block* cur = b3;
  while (cur != nullptr && cur->height > last_reported_height_) {
    chain.push_back(cur);
    cur = find(cur->parent);
  }
  if (cur == nullptr) return;  // gap: wait for block responses

  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    ctx.report_decision((*it)->value);
  }
  last_reported_height_ = b3->height;
  last_committed_view_ = std::max(last_committed_view_, b3->view);
}

std::optional<QuorumCert> Core::add_vote(View view, Value block_id, NodeId voter,
                                         Context& ctx) {
  const std::pair<View, Value> key{view, block_id};
  if (qc_formed_.contains(key)) return std::nullopt;
  if (!votes_.add_reaches(key, voter, quorum(ctx))) return std::nullopt;
  qc_formed_.mark(key);
  QuorumCert qc;
  qc.view = view;
  qc.block = block_id;
  const auto& voters = votes_.voters(key);
  qc.signers.assign(voters.begin(), voters.end());
  return qc;
}

void Core::request_block(Value block_id, NodeId from, Context& ctx) {
  if (from == id_ || !requested_.mark(block_id)) return;
  ctx.send(from, ctx.make_payload<BlockRequest>(block_id));
}

bool Core::handle_catchup(const Message& msg, Context& ctx) {
  if (const auto* req = msg.as<BlockRequest>()) {
    std::vector<Block> out;
    const Block* cur = find(req->block_id);
    while (cur != nullptr && cur->id != kGenesisId &&
           out.size() < BlockResponse::kChunk) {
      out.push_back(*cur);
      cur = find(cur->parent);
    }
    if (!out.empty()) ctx.send(msg.src, ctx.make_payload<BlockResponse>(std::move(out)));
    return true;
  }
  if (const auto* resp = msg.as<BlockResponse>()) {
    for (const Block& b : resp->blocks) store(b);
    if (!resp->blocks.empty()) {
      const Block& oldest = resp->blocks.back();
      if (oldest.height > last_reported_height_ + 1 && !has(oldest.parent)) {
        requested_ = OnceSet<Value>{};  // allow re-requesting deeper chains
        request_block(oldest.parent, msg.src, ctx);
      }
      // Re-run the commit rule; filled gaps may release pending commits.
      try_commit(high_qc_, ctx);
    }
    return true;
  }
  return false;
}

}  // namespace bftsim::hotstuff

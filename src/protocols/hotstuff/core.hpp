// Chained HotStuff core (Yin et al., PODC '19) — the safety machinery
// shared by HotStuff+NS and LibraBFT, which differ only in their
// PaceMaker (view-synchronization) strategy:
//
//   - block tree with quorum-certificate justifications,
//   - the voting safety rule (extends locked block, or justify newer than
//     the lock),
//   - the two-chain locking rule and three-chain (consecutive views)
//     commit rule,
//   - vote aggregation into QCs by the next leader,
//   - block catch-up for lagging replicas (request/response), so that a
//     replica that missed proposals can still learn committed values.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <memory>
#include <optional>
#include <vector>

#include "crypto/certificate.hpp"
#include "crypto/signature.hpp"
#include "net/message.hpp"
#include "protocols/common/quorum.hpp"
#include "protocols/node.hpp"

namespace bftsim::hotstuff {

/// A block in the chained-HotStuff block tree.
struct Block {
  Value id = 0;
  Value parent = 0;
  View view = 0;
  Value value = 0;          ///< the decided payload
  std::uint64_t height = 0; ///< chain height (genesis = 0)
  /// Wire weight of the batched client requests the block carries
  /// (0 without a workload). Not part of the digest: the batch is
  /// identified by `value`.
  std::uint32_t body_bytes = 0;
  QuorumCert justify;       ///< QC for `parent`

  [[nodiscard]] std::uint64_t digest() const noexcept {
    return hash_words({0x424cULL, id, parent, view, value, height, justify.digest()});
  }
};

inline constexpr Value kGenesisId = 0x67656e65736973ULL;  // "genesis"

// --- messages ---------------------------------------------------------------

struct Proposal final : Payload {
  static constexpr PayloadType kType = PayloadType::kHotStuffProposal;
  Block block;
  Signature sig;

  Proposal(Block b, Signature s) : Payload(kType), block(b), sig(s) {}
  std::string_view type() const noexcept override { return "hotstuff/proposal"; }
  std::uint64_t digest() const noexcept override { return block.digest(); }
  std::size_t wire_size() const noexcept override {
    return 512 + block.body_bytes;
  }
};

struct Vote final : Payload {
  static constexpr PayloadType kType = PayloadType::kHotStuffVote;
  View view = 0;
  Value block_id = 0;
  Signature sig;

  Vote(View v, Value b, Signature s) : Payload(kType), view(v), block_id(b), sig(s) {}
  std::string_view type() const noexcept override { return "hotstuff/vote"; }
  std::uint64_t digest() const noexcept override {
    return hash_words({0x564fULL, view, block_id});
  }
  std::size_t wire_size() const noexcept override { return 96; }
};

/// Request for missing ancestor blocks, sent to the peer whose message
/// referenced an unknown block.
struct BlockRequest final : Payload {
  static constexpr PayloadType kType = PayloadType::kHotStuffBlockRequest;
  Value block_id = 0;

  explicit BlockRequest(Value b) : Payload(kType), block_id(b) {}
  std::string_view type() const noexcept override { return "hotstuff/block-req"; }
  std::uint64_t digest() const noexcept override {
    return hash_words({0x4252ULL, block_id});
  }
  std::size_t wire_size() const noexcept override { return 64; }
};

struct BlockResponse final : Payload {
  static constexpr PayloadType kType = PayloadType::kHotStuffBlockResponse;
  std::vector<Block> blocks;  ///< requested block and up to kChunk ancestors

  explicit BlockResponse(std::vector<Block> b) : Payload(kType), blocks(std::move(b)) {}
  std::string_view type() const noexcept override { return "hotstuff/block-resp"; }
  std::uint64_t digest() const noexcept override {
    std::uint64_t h = 0x4253ULL;
    for (const Block& b : blocks) h = hash_combine(h, b.digest());
    return h;
  }
  std::size_t wire_size() const noexcept override {
    std::size_t bodies = 0;
    for (const Block& b : blocks) bodies += b.body_bytes;
    return 128 + 256 * blocks.size() + bodies;
  }

  static constexpr std::size_t kChunk = 16;
};

// --- core -------------------------------------------------------------------

/// The chained-HotStuff replica state shared by both pacemakers. Hosted by
/// a Node implementation; all methods take the Context of that node.
class Core {
 public:
  explicit Core(NodeId id);

  [[nodiscard]] const QuorumCert& high_qc() const noexcept { return high_qc_; }
  [[nodiscard]] const QuorumCert& locked_qc() const noexcept { return locked_qc_; }
  [[nodiscard]] std::uint64_t committed_height() const noexcept {
    return last_reported_height_;
  }
  /// View of the newest block this replica has committed (0 = genesis).
  [[nodiscard]] View last_committed_view() const noexcept {
    return last_committed_view_;
  }

  /// Creates the block a leader proposes in `view`, extending high_qc.
  [[nodiscard]] Block make_block(View view, Context& ctx);

  /// Stores a block (id-keyed; duplicates ignored).
  void store(const Block& b);
  [[nodiscard]] bool has(Value id) const noexcept { return blocks_.contains(id); }
  [[nodiscard]] const Block* find(Value id) const noexcept;

  /// Incorporates a QC: updates high-qc, the lock, and runs the commit
  /// rule (reporting any newly committed values through `ctx`). Returns
  /// true when high_qc_ advanced.
  bool process_qc(const QuorumCert& qc, Context& ctx);

  /// Safety rule: may this replica vote for `b` (justified by b.justify)?
  [[nodiscard]] bool safe_to_vote(const Block& b) const noexcept;

  /// Records `voter`'s vote for (view, block); returns the freshly formed
  /// QC when this vote completes a quorum of n-f distinct votes.
  [[nodiscard]] std::optional<QuorumCert> add_vote(View view, Value block_id,
                                                   NodeId voter, Context& ctx);

  /// True when some ancestor needed for voting/committing on `b` is
  /// missing locally.
  [[nodiscard]] bool missing_ancestor(const Block& b) const noexcept;

  /// Handles catch-up messages. Returns true if the message was consumed.
  bool handle_catchup(const Message& msg, Context& ctx);

  /// Asks `from` for the chain ending at `block_id` (deduplicated).
  void request_block(Value block_id, NodeId from, Context& ctx);

  /// Quorum size used for QCs/TCs: n - f.
  [[nodiscard]] static std::uint32_t quorum(const Context& ctx) noexcept {
    return ctx.n() - ctx.f();
  }

 private:
  /// Runs the three-chain commit rule starting from `qc` and reports any
  /// newly committed values in height order.
  void try_commit(const QuorumCert& qc, Context& ctx);

  /// True iff `descendant` has `ancestor_id` on its parent chain.
  [[nodiscard]] bool extends(const Block& descendant, Value ancestor_id) const noexcept;

  NodeId id_;
  /// Block ids are uniform 64-bit hashes, looked up on every proposal /
  /// ancestry walk and never iterated — a hash map keeps the walk O(1)
  /// per hop instead of a tree descent per hop.
  std::unordered_map<Value, Block> blocks_;
  QuorumCert high_qc_;
  QuorumCert locked_qc_;
  std::uint64_t last_reported_height_ = 0;  ///< genesis is height 0
  View last_committed_view_ = 0;
  QuorumTracker<std::pair<View, Value>> votes_;
  OnceSet<std::pair<View, Value>> qc_formed_;
  OnceSet<Value> requested_;
};

}  // namespace bftsim::hotstuff

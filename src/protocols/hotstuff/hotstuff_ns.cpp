#include "protocols/hotstuff/hotstuff_ns.hpp"

#include <algorithm>

#include "core/log.hpp"

namespace bftsim::hotstuff {

namespace {
constexpr std::uint64_t kViewTimerTag = 1;
}

HotStuffNsNode::HotStuffNsNode(NodeId id, const SimConfig& cfg)
    : id_(id), core_(id) {
  base_duration_ = from_ms(cfg.lambda_ms) * kBaseFactor;
}

void HotStuffNsNode::on_start(Context& ctx) { enter_view(1, ctx); }

void HotStuffNsNode::enter_view(View v, Context& ctx) {
  cur_view_ = v;
  ctx.record_view(cur_view_);
  if (timer_ != 0) ctx.cancel_timer(timer_);
  timer_ = ctx.set_timer(duration_of(cur_view_), kViewTimerTag);
  if (leader_of(cur_view_, ctx) == id_) propose(ctx);
}

void HotStuffNsNode::propose(Context& ctx) {
  Block b = core_.make_block(cur_view_, ctx);
  core_.store(b);
  const Signature sig = ctx.signer().sign(id_, b.digest());
  ctx.broadcast(ctx.make_payload<Proposal>(b, sig));
}

void HotStuffNsNode::on_message(const Message& msg, Context& ctx) {
  if (core_.handle_catchup(msg, ctx)) return;
  switch (msg.type_id()) {
    case PayloadType::kHotStuffProposal: handle_proposal(msg, ctx); break;
    case PayloadType::kHotStuffVote: handle_vote(msg, ctx); break;
    default: break;
  }
}

void HotStuffNsNode::try_vote(const Block& block, Context& ctx) {
  if (block.view != cur_view_ || block.view <= last_voted_) return;
  if (core_.missing_ancestor(block) || !core_.safe_to_vote(block)) return;
  last_voted_ = block.view;
  const Signature vote_sig =
      ctx.signer().sign(id_, hash_words({0x564fULL, block.view, block.id}));
  ctx.send(leader_of(block.view + 1, ctx),
           ctx.make_payload<Vote>(block.view, block.id, vote_sig));
}

void HotStuffNsNode::handle_proposal(const Message& msg, Context& ctx) {
  const auto& m = *msg.as<Proposal>();
  if (!ctx.signer().verify(m.sig) || m.sig.signer != msg.src) return;
  if (leader_of(m.block.view, ctx) != msg.src) return;

  core_.store(m.block);
  if (core_.missing_ancestor(m.block)) {
    core_.request_block(m.block.parent, msg.src, ctx);
  }

  // Process the justification first: commits apply regardless of view
  // (passive catch-up), and a QC for our current view advances us into the
  // proposal's view (optimistic responsiveness).
  const View justify_view = m.block.justify.view;
  core_.process_qc(m.block.justify, ctx);
  if (justify_view == cur_view_) enter_view(cur_view_ + 1, ctx);

  try_vote(m.block, ctx);
}

void HotStuffNsNode::handle_vote(const Message& msg, Context& ctx) {
  const auto& m = *msg.as<Vote>();
  if (!ctx.signer().verify(m.sig) || m.sig.signer != msg.src) return;
  if (leader_of(m.view + 1, ctx) != id_) return;  // votes go to the next leader

  const auto qc = core_.add_vote(m.view, m.block_id, msg.src, ctx);
  if (!qc.has_value()) return;
  core_.process_qc(*qc, ctx);
  // Advance (and propose — we lead qc.view + 1) only when the certificate
  // is for our current view; if our timer already pushed us past it the
  // certificate is wasted for liveness. This is the naive synchronizer's
  // weakness under underestimated λ.
  if (qc->view == cur_view_) enter_view(cur_view_ + 1, ctx);
}

void HotStuffNsNode::on_timer(const TimerEvent& ev, Context& ctx) {
  if (ev.tag != kViewTimerTag || ev.id != timer_) return;
  enter_view(cur_view_ + 1, ctx);
}

std::unique_ptr<Node> make_hotstuff_ns_node(NodeId id, const SimConfig& cfg) {
  return std::make_unique<HotStuffNsNode>(id, cfg);
}

}  // namespace bftsim::hotstuff

// Bracha's asynchronous Byzantine agreement (Information & Computation '87).
//
// Binary consensus for f < n/3 in a fully asynchronous network. Every
// value exchanged is disseminated via Bracha's reliable broadcast
// (init / echo / ready with amplification), which prevents equivocation;
// rounds consist of three steps (value, lock, decide) and the decide step
// falls back to a local coin, yielding probabilistic termination (the FLP
// result rules out deterministic termination).
//
// The protocol ignores λ entirely — there are no timers — which is why its
// performance is unaffected by timeout configuration in Figs. 4 and 5.
//
// Workload note: asyncba decides single bits, not proposer-minted values,
// so it never calls Context::next_proposal — a configured client workload
// runs its arrival streams but every decision counts as an empty decision
// (requests stay pending; see docs/WORKLOADS.md).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <tuple>

#include "core/config.hpp"
#include "net/message.hpp"
#include "protocols/common/quorum.hpp"
#include "protocols/node.hpp"

namespace bftsim::asyncba {

/// Identifies one reliable-broadcast instance: (round, step, originator).
using RbcKey = std::tuple<std::uint64_t, std::uint8_t, NodeId>;

struct BrachaInit final : Payload {
  static constexpr PayloadType kType = PayloadType::kBrachaInit;
  std::uint64_t round = 0;
  std::uint8_t step = 1;
  Value value = 0;

  BrachaInit(std::uint64_t r, std::uint8_t s, Value v)
      : Payload(kType), round(r), step(s), value(v) {}
  std::string_view type() const noexcept override { return "asyncba/init"; }
  std::uint64_t digest() const noexcept override {
    return hash_words({0x494eULL, round, step, value});
  }
  std::size_t wire_size() const noexcept override { return 80; }
};

struct BrachaEcho final : Payload {
  static constexpr PayloadType kType = PayloadType::kBrachaEcho;
  std::uint64_t round = 0;
  std::uint8_t step = 1;
  NodeId origin = kNoNode;
  Value value = 0;

  BrachaEcho(std::uint64_t r, std::uint8_t s, NodeId o, Value v)
      : Payload(kType), round(r), step(s), origin(o), value(v) {}
  std::string_view type() const noexcept override { return "asyncba/echo"; }
  std::uint64_t digest() const noexcept override {
    return hash_words({0x4543ULL, round, step, origin, value});
  }
  std::size_t wire_size() const noexcept override { return 88; }
};

struct BrachaReady final : Payload {
  static constexpr PayloadType kType = PayloadType::kBrachaReady;
  std::uint64_t round = 0;
  std::uint8_t step = 1;
  NodeId origin = kNoNode;
  Value value = 0;

  BrachaReady(std::uint64_t r, std::uint8_t s, NodeId o, Value v)
      : Payload(kType), round(r), step(s), origin(o), value(v) {}
  std::string_view type() const noexcept override { return "asyncba/ready"; }
  std::uint64_t digest() const noexcept override {
    return hash_words({0x5244ULL, round, step, origin, value});
  }
  std::size_t wire_size() const noexcept override { return 88; }
};

class AsyncBaNode final : public Node {
 public:
  /// Inputs are configured via SimConfig::protocol_params "input":
  /// "ones" (default), "zeros", "split" (id parity), "random".
  AsyncBaNode(NodeId id, const SimConfig& cfg);

  /// Retransmission interval as a multiple of λ. The asynchronous model
  /// assumes reliable eventual delivery; over a lossy/partitioned link the
  /// standard engineering answer is periodic retransmission of the current
  /// protocol state, which is what keeps async BA live through the Fig. 6
  /// partition (λ serves only as a convenient engineering time scale —
  /// protocol logic never depends on it).
  static constexpr int kRetransmitFactor = 4;

  void on_start(Context& ctx) override;
  void on_message(const Message& msg, Context& ctx) override;
  void on_timer(const TimerEvent& ev, Context& ctx) override;

 private:
  [[nodiscard]] std::uint32_t echo_quorum(Context& ctx) const noexcept {
    return (ctx.n() + ctx.f()) / 2 + 1;
  }

  void rbc_broadcast(Context& ctx);  ///< RBCs `value_` for (round_, step_)
  void retransmit(Context& ctx);
  void try_accept(const RbcKey& key, Value value, Context& ctx);
  void try_process(Context& ctx);
  void process_step(const std::map<NodeId, Value>& accepted, Context& ctx);

  NodeId id_;
  Value input_ = 1;
  Value value_ = 1;           ///< current working value (kBottom = ⊥)
  std::uint64_t round_ = 1;
  std::uint8_t step_ = 1;
  bool decided_ = false;

  QuorumTracker<std::pair<RbcKey, Value>> echoes_;
  QuorumTracker<std::pair<RbcKey, Value>> readies_;
  OnceSet<RbcKey> echo_sent_;
  OnceSet<RbcKey> ready_sent_;
  std::map<RbcKey, Value> echoed_;   ///< what we echoed, for retransmission
  std::map<RbcKey, Value> readied_;  ///< what we readied, for retransmission
  OnceSet<RbcKey> accepted_once_;
  std::map<std::pair<std::uint64_t, std::uint8_t>, std::map<NodeId, Value>> accepted_;
  OnceSet<std::pair<std::uint64_t, std::uint8_t>> processed_;
};

[[nodiscard]] std::unique_ptr<Node> make_asyncba_node(NodeId id, const SimConfig& cfg);

}  // namespace bftsim::asyncba

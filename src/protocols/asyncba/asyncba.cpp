#include "protocols/asyncba/asyncba.hpp"

#include <algorithm>

#include "core/log.hpp"

namespace bftsim::asyncba {

AsyncBaNode::AsyncBaNode(NodeId id, const SimConfig& cfg) : id_(id) {
  std::string mode = "ones";
  if (cfg.protocol_params.is_object()) {
    mode = cfg.protocol_params.get_string("input", mode);
  }
  if (mode == "zeros") {
    input_ = 0;
  } else if (mode == "split") {
    input_ = id % 2;
  } else if (mode == "random") {
    input_ = kBottom;  // resolved from the node's RNG stream in on_start
  } else {
    input_ = 1;
  }
}

void AsyncBaNode::on_start(Context& ctx) {
  if (input_ == kBottom) input_ = ctx.rng().next_bool() ? 1 : 0;
  value_ = input_;
  ctx.record_view(round_);
  rbc_broadcast(ctx);
  ctx.set_timer(kRetransmitFactor * ctx.lambda(), 0);
}

void AsyncBaNode::rbc_broadcast(Context& ctx) {
  ctx.broadcast(ctx.make_payload<BrachaInit>(round_, step_, value_));
}

void AsyncBaNode::on_message(const Message& msg, Context& ctx) {
  switch (msg.type_id()) {
    case PayloadType::kBrachaInit: {
      const auto* init = msg.as<BrachaInit>();
      // Echo the originator's value (first value only: conflicting inits from
      // an equivocating origin are ignored, which is RBC's whole point).
      const RbcKey key{init->round, init->step, msg.src};
      if (echo_sent_.mark(key)) {
        echoed_[key] = init->value;
        ctx.broadcast(
            ctx.make_payload<BrachaEcho>(init->round, init->step, msg.src, init->value));
      }
      break;
    }
    case PayloadType::kBrachaEcho: {
      const auto* echo = msg.as<BrachaEcho>();
      const RbcKey key{echo->round, echo->step, echo->origin};
      if (echoes_.add_reaches({key, echo->value}, msg.src, echo_quorum(ctx)) &&
          ready_sent_.mark(key)) {
        readied_[key] = echo->value;
        ctx.broadcast(
            ctx.make_payload<BrachaReady>(echo->round, echo->step, echo->origin, echo->value));
      }
      break;
    }
    case PayloadType::kBrachaReady: {
      const auto* ready = msg.as<BrachaReady>();
      const RbcKey key{ready->round, ready->step, ready->origin};
      readies_.add(std::pair{key, ready->value}, msg.src);
      // Amplification: f+1 readies are proof enough to join the broadcast.
      if (readies_.count({key, ready->value}) >= ctx.f() + 1 && ready_sent_.mark(key)) {
        readied_[key] = ready->value;
        ctx.broadcast(
            ctx.make_payload<BrachaReady>(ready->round, ready->step, ready->origin, ready->value));
      }
      if (readies_.count({key, ready->value}) >= 2 * ctx.f() + 1) {
        try_accept(key, ready->value, ctx);
      }
      break;
    }
    default: break;
  }
}

void AsyncBaNode::try_accept(const RbcKey& key, Value value, Context& ctx) {
  if (!accepted_once_.mark(key)) return;
  const auto& [round, step, origin] = key;
  accepted_[{round, step}][origin] = value;
  try_process(ctx);
}

void AsyncBaNode::try_process(Context& ctx) {
  // Process as many of our own pending steps as have enough accepted RBCs.
  while (true) {
    const auto it = accepted_.find({round_, step_});
    if (it == accepted_.end() || it->second.size() < ctx.n() - ctx.f()) return;
    if (!processed_.mark({round_, step_})) return;
    process_step(it->second, ctx);
  }
}

void AsyncBaNode::process_step(const std::map<NodeId, Value>& accepted, Context& ctx) {
  const std::uint32_t n = ctx.n();
  const std::uint32_t f = ctx.f();

  std::map<Value, std::uint32_t> tally;
  for (const auto& [origin, v] : accepted) ++tally[v];
  const auto count_of = [&](Value v) {
    const auto t = tally.find(v);
    return t == tally.end() ? 0u : t->second;
  };

  switch (step_) {
    case 1: {
      // Majority of the accepted values (ties broken toward 1).
      value_ = count_of(1) >= count_of(0) ? 1 : 0;
      step_ = 2;
      break;
    }
    case 2: {
      // Lock a value seen in a strict majority of all n nodes, else ⊥.
      value_ = kBottom;
      for (const auto& [v, c] : tally) {
        if (v != kBottom && c > n / 2) value_ = v;
      }
      step_ = 3;
      break;
    }
    case 3: {
      Value locked = kBottom;
      std::uint32_t locked_count = 0;
      for (const auto& [v, c] : tally) {
        if (v != kBottom && c > locked_count) {
          locked = v;
          locked_count = c;
        }
      }
      if (locked != kBottom && locked_count >= 2 * f + 1) {
        value_ = locked;
        if (!decided_) {
          decided_ = true;
          ctx.report_decision(value_);
        }
      } else if (locked != kBottom && locked_count >= f + 1) {
        value_ = locked;
      } else {
        value_ = ctx.rng().next_bool() ? 1 : 0;  // Bracha's local coin
      }
      step_ = 1;
      ++round_;
      ctx.record_view(round_);
      break;
    }
    default: break;
  }
  rbc_broadcast(ctx);
}

void AsyncBaNode::retransmit(Context& ctx) {
  // Re-broadcast everything we have said about the step we are stuck on;
  // duplicate receptions are idempotent (vote trackers are per-sender).
  ctx.broadcast(ctx.make_payload<BrachaInit>(round_, step_, value_));
  for (const auto& [key, value] : echoed_) {
    if (std::get<0>(key) == round_ && std::get<1>(key) == step_) {
      ctx.broadcast(ctx.make_payload<BrachaEcho>(round_, step_, std::get<2>(key), value));
    }
  }
  for (const auto& [key, value] : readied_) {
    if (std::get<0>(key) == round_ && std::get<1>(key) == step_) {
      ctx.broadcast(ctx.make_payload<BrachaReady>(round_, step_, std::get<2>(key), value));
    }
  }
}

void AsyncBaNode::on_timer(const TimerEvent&, Context& ctx) {
  // The protocol logic is purely asynchronous (no timeouts); this timer
  // only drives retransmission, which the "reliable eventual delivery"
  // assumption otherwise provides for free.
  if (!decided_) retransmit(ctx);
  ctx.set_timer(kRetransmitFactor * ctx.lambda(), 0);
}

std::unique_ptr<Node> make_asyncba_node(NodeId id, const SimConfig& cfg) {
  return std::make_unique<AsyncBaNode>(id, cfg);
}

}  // namespace bftsim::asyncba

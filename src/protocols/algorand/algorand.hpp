// Algorand Agreement (Chen, Gorbunov, Micali, Vlachos — ePrint 2018/377).
//
// A synchronous, partition-resilient Byzantine agreement. Execution is
// organized in periods; within a period, nodes (1) broadcast value
// proposals carrying VRF credentials (the minimum credential is the
// period's leader), (2) soft-vote the leader's value after waiting 2λ,
// (3) cert-vote upon a soft-vote quorum — a cert-vote quorum decides —
// and (4) next-vote after 4λ to move the system into the next period.
// All period transitions are certificate-driven (2f+1 next-votes), never
// timer-driven, which is what makes the protocol partition-resilient:
// after a partition heals, the first next-vote quorum to assemble pulls
// every node into the same period (Fig. 6). Periodic retransmission of
// the latest votes guarantees those quorums eventually assemble.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "core/config.hpp"
#include "crypto/vrf.hpp"
#include "net/message.hpp"
#include "protocols/common/quorum.hpp"
#include "protocols/node.hpp"

namespace bftsim::algorand {

struct AlgoProposal final : Payload {
  static constexpr PayloadType kType = PayloadType::kAlgorandProposal;
  std::uint64_t period = 1;
  Value value = 0;
  std::uint32_t body_bytes = 0;  ///< batched client requests (0 w/o workload)
  VrfOutput credential;

  AlgoProposal(std::uint64_t p, Value v, VrfOutput c, std::uint32_t body = 0)
      : Payload(kType), period(p), value(v), body_bytes(body), credential(c) {}
  std::string_view type() const noexcept override { return "algorand/proposal"; }
  std::uint64_t digest() const noexcept override {
    return hash_words({0x4150ULL, period, value, credential.value});
  }
  std::size_t wire_size() const noexcept override { return 160 + body_bytes; }
};

struct AlgoSoftVote final : Payload {
  static constexpr PayloadType kType = PayloadType::kAlgorandSoftVote;
  std::uint64_t period = 1;
  Value value = 0;

  AlgoSoftVote(std::uint64_t p, Value v) : Payload(kType), period(p), value(v) {}
  std::string_view type() const noexcept override { return "algorand/soft-vote"; }
  std::uint64_t digest() const noexcept override {
    return hash_words({0x4153ULL, period, value});
  }
  std::size_t wire_size() const noexcept override { return 80; }
};

struct AlgoCertVote final : Payload {
  static constexpr PayloadType kType = PayloadType::kAlgorandCertVote;
  std::uint64_t period = 1;
  Value value = 0;

  AlgoCertVote(std::uint64_t p, Value v) : Payload(kType), period(p), value(v) {}
  std::string_view type() const noexcept override { return "algorand/cert-vote"; }
  std::uint64_t digest() const noexcept override {
    return hash_words({0x4143ULL, period, value});
  }
  std::size_t wire_size() const noexcept override { return 80; }
};

struct AlgoNextVote final : Payload {
  static constexpr PayloadType kType = PayloadType::kAlgorandNextVote;
  std::uint64_t period = 1;
  Value value = kBottom;  ///< kBottom encodes ⊥

  AlgoNextVote(std::uint64_t p, Value v) : Payload(kType), period(p), value(v) {}
  std::string_view type() const noexcept override { return "algorand/next-vote"; }
  std::uint64_t digest() const noexcept override {
    return hash_words({0x414eULL, period, value});
  }
  std::size_t wire_size() const noexcept override { return 80; }
};

class AlgorandNode final : public Node {
 public:
  AlgorandNode(NodeId id, const SimConfig& cfg);

  void on_start(Context& ctx) override;
  void on_message(const Message& msg, Context& ctx) override;
  void on_timer(const TimerEvent& ev, Context& ctx) override;

 private:
  enum class Step : std::uint64_t { kSoft = 0, kNext = 1, kRepeat = 2 };

  [[nodiscard]] static std::uint64_t tag_of(std::uint64_t period, Step s) noexcept {
    return period * 4 + static_cast<std::uint64_t>(s);
  }
  [[nodiscard]] std::uint32_t quorum(Context& ctx) const noexcept {
    return 2 * ctx.f() + 1;
  }

  void enter_period(std::uint64_t period, Value starting, Context& ctx);
  void broadcast_proposal(Context& ctx);
  void do_soft_vote(Context& ctx);
  void do_next_vote(Context& ctx);
  void retransmit(Context& ctx);

  NodeId id_;
  std::uint64_t period_ = 1;
  Value starting_ = kBottom;
  bool decided_ = false;

  /// Minimum credential proposal seen per period: (credential, value).
  std::map<std::uint64_t, std::pair<std::uint64_t, Value>> best_proposal_;
  QuorumTracker<std::pair<std::uint64_t, Value>> soft_votes_;
  QuorumTracker<std::pair<std::uint64_t, Value>> cert_votes_;
  QuorumTracker<std::pair<std::uint64_t, Value>> next_votes_;
  OnceSet<std::uint64_t> soft_voted_;
  OnceSet<std::uint64_t> cert_voted_;
  OnceSet<std::uint64_t> next_voted_;
  std::map<std::uint64_t, Value> cert_value_;  ///< value cert-voted per period
  std::map<std::uint64_t, Value> soft_value_;  ///< value soft-voted per period
  std::map<std::uint64_t, Value> next_value_;  ///< value next-voted per period
};

[[nodiscard]] std::unique_ptr<Node> make_algorand_node(NodeId id,
                                                       const SimConfig& cfg);

}  // namespace bftsim::algorand

#include "protocols/algorand/algorand.hpp"

#include "core/log.hpp"

namespace bftsim::algorand {

AlgorandNode::AlgorandNode(NodeId id, const SimConfig&) : id_(id) {}

void AlgorandNode::on_start(Context& ctx) {
  ctx.record_view(period_);
  broadcast_proposal(ctx);
  ctx.set_timer(2 * ctx.lambda(), tag_of(period_, Step::kSoft));
  ctx.set_timer(4 * ctx.lambda(), tag_of(period_, Step::kNext));
}

void AlgorandNode::broadcast_proposal(Context& ctx) {
  // Re-propose the period's starting value when one is locked in; only a
  // fresh mint carries a batch of this node's pending client requests.
  Value value = starting_;
  std::uint32_t body = 0;
  if (value == kBottom) {
    const ProposalBatch batch =
        ctx.next_proposal(period_, hash_words({0x414cULL, period_, id_}));
    value = batch.value;
    body = batch.body_bytes;
  }
  ctx.broadcast(ctx.make_payload<AlgoProposal>(
      period_, value, ctx.vrf().evaluate(id_, period_), body));
}

void AlgorandNode::enter_period(std::uint64_t period, Value starting, Context& ctx) {
  if (period <= period_) return;
  period_ = period;
  starting_ = starting;
  ctx.record_view(period_);
  broadcast_proposal(ctx);
  ctx.set_timer(2 * ctx.lambda(), tag_of(period_, Step::kSoft));
  ctx.set_timer(4 * ctx.lambda(), tag_of(period_, Step::kNext));
}

void AlgorandNode::do_soft_vote(Context& ctx) {
  if (soft_voted_.contains(period_)) return;
  Value value = starting_;
  if (value == kBottom) {
    const auto it = best_proposal_.find(period_);
    // Saw no proposals yet: stay eligible — the retransmission timer
    // retries once (re-sent) proposals arrive.
    if (it == best_proposal_.end()) return;
    value = it->second.second;
  }
  soft_voted_.mark(period_);
  soft_value_[period_] = value;
  ctx.broadcast(ctx.make_payload<AlgoSoftVote>(period_, value));
}

void AlgorandNode::do_next_vote(Context& ctx) {
  if (!next_voted_.mark(period_)) return;
  Value value = kBottom;
  if (const auto it = cert_value_.find(period_); it != cert_value_.end()) {
    value = it->second;  // help the decided value spread
  } else if (starting_ != kBottom) {
    value = starting_;
  }
  next_value_[period_] = value;
  ctx.broadcast(ctx.make_payload<AlgoNextVote>(period_, value));
  // Keep retransmitting until the system leaves this period (liveness
  // through partitions and message loss).
  ctx.set_timer(2 * ctx.lambda(), tag_of(period_, Step::kRepeat));
}

void AlgorandNode::retransmit(Context& ctx) {
  broadcast_proposal(ctx);
  do_soft_vote(ctx);  // catch up if the 2λ mark passed before any proposal
  if (const auto it = soft_value_.find(period_); it != soft_value_.end()) {
    ctx.broadcast(ctx.make_payload<AlgoSoftVote>(period_, it->second));
  }
  if (const auto it = next_value_.find(period_); it != next_value_.end()) {
    ctx.broadcast(ctx.make_payload<AlgoNextVote>(period_, it->second));
  }
  ctx.set_timer(2 * ctx.lambda(), tag_of(period_, Step::kRepeat));
}

void AlgorandNode::on_timer(const TimerEvent& ev, Context& ctx) {
  const std::uint64_t period = ev.tag / 4;
  if (period != period_) return;  // stale timer from an earlier period
  switch (static_cast<Step>(ev.tag % 4)) {
    case Step::kSoft: do_soft_vote(ctx); break;
    case Step::kNext: do_next_vote(ctx); break;
    case Step::kRepeat: retransmit(ctx); break;
  }
}

void AlgorandNode::on_message(const Message& msg, Context& ctx) {
  switch (msg.type_id()) {
    case PayloadType::kAlgorandProposal: {
      const auto* prop = msg.as<AlgoProposal>();
      if (!ctx.vrf().verify(msg.src, prop->period, prop->credential)) return;
      const auto it = best_proposal_.find(prop->period);
      if (it == best_proposal_.end() || prop->credential.value < it->second.first) {
        best_proposal_[prop->period] = {prop->credential.value, prop->value};
      }
      break;
    }
    case PayloadType::kAlgorandSoftVote: {
      const auto* soft = msg.as<AlgoSoftVote>();
      if (soft_votes_.add_reaches({soft->period, soft->value}, msg.src, quorum(ctx)) &&
          soft->period == period_ && cert_voted_.mark(soft->period)) {
        cert_value_[soft->period] = soft->value;
        ctx.broadcast(ctx.make_payload<AlgoCertVote>(soft->period, soft->value));
      }
      break;
    }
    case PayloadType::kAlgorandCertVote: {
      const auto* cert = msg.as<AlgoCertVote>();
      if (cert_votes_.add_reaches({cert->period, cert->value}, msg.src, quorum(ctx)) &&
          !decided_) {
        decided_ = true;
        ctx.report_decision(cert->value);
      }
      break;
    }
    case PayloadType::kAlgorandNextVote: {
      const auto* next = msg.as<AlgoNextVote>();
      if (next_votes_.add_reaches({next->period, next->value}, msg.src, quorum(ctx)) &&
          next->period >= period_) {
        enter_period(next->period + 1, next->value, ctx);
      }
      break;
    }
    default: break;
  }
}

std::unique_ptr<Node> make_algorand_node(NodeId id, const SimConfig& cfg) {
  return std::make_unique<AlgorandNode>(id, cfg);
}

}  // namespace bftsim::algorand

#include "protocols/registry.hpp"

#include <stdexcept>

#include "protocols/add/add.hpp"
#include "protocols/algorand/algorand.hpp"
#include "protocols/asyncba/asyncba.hpp"
#include "protocols/hotstuff/hotstuff_ns.hpp"
#include "protocols/librabft/librabft.hpp"
#include "protocols/pbft/pbft.hpp"
#include "protocols/synchotstuff/synchotstuff.hpp"
#include "protocols/tendermint/tendermint.hpp"

namespace bftsim {

std::string_view to_string(NetModel model) noexcept {
  switch (model) {
    case NetModel::kSync: return "synchronous";
    case NetModel::kPartialSync: return "partially-synchronous";
    case NetModel::kAsync: return "asynchronous";
  }
  return "?";
}

ProtocolRegistry& ProtocolRegistry::instance() {
  static ProtocolRegistry registry = [] {
    ProtocolRegistry r;
    register_builtin_protocols(r);
    return r;
  }();
  return registry;
}

void ProtocolRegistry::add(ProtocolInfo info) {
  if (contains(info.name)) {
    throw std::invalid_argument("protocol already registered: " + info.name);
  }
  protocols_.push_back(std::move(info));
}

const ProtocolInfo& ProtocolRegistry::get(const std::string& name) const {
  for (const ProtocolInfo& info : protocols_) {
    if (info.name == name) return info;
  }
  throw std::invalid_argument("unknown protocol: " + name);
}

bool ProtocolRegistry::contains(const std::string& name) const noexcept {
  for (const ProtocolInfo& info : protocols_) {
    if (info.name == name) return true;
  }
  return false;
}

std::vector<std::string> ProtocolRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(protocols_.size());
  for (const ProtocolInfo& info : protocols_) out.push_back(info.name);
  return out;
}

void register_builtin_protocols(ProtocolRegistry& registry) {
  if (registry.contains("pbft")) return;  // already registered

  registry.add(ProtocolInfo{
      "addv1", NetModel::kSync, byzantine_half, 1,
      [](NodeId id, const SimConfig& cfg) {
        return add::make_add_node(id, add::Variant::kV1, cfg);
      }});
  registry.add(ProtocolInfo{
      "addv2", NetModel::kSync, byzantine_half, 1,
      [](NodeId id, const SimConfig& cfg) {
        return add::make_add_node(id, add::Variant::kV2, cfg);
      }});
  registry.add(ProtocolInfo{
      "addv3", NetModel::kSync, byzantine_half, 1,
      [](NodeId id, const SimConfig& cfg) {
        return add::make_add_node(id, add::Variant::kV3, cfg);
      }});
  registry.add(ProtocolInfo{"algorand", NetModel::kSync, byzantine_third, 1,
                            algorand::make_algorand_node});
  registry.add(ProtocolInfo{"asyncba", NetModel::kAsync, byzantine_third, 1,
                            asyncba::make_asyncba_node});
  registry.add(ProtocolInfo{"pbft", NetModel::kPartialSync, byzantine_third, 1,
                            pbft::make_pbft_node});
  registry.add(ProtocolInfo{"hotstuff-ns", NetModel::kPartialSync, byzantine_third,
                            10, hotstuff::make_hotstuff_ns_node});
  registry.add(ProtocolInfo{"librabft", NetModel::kPartialSync, byzantine_third,
                            10, librabft::make_librabft_node});

  // Extensions beyond the paper's eight (see DESIGN.md).
  registry.add(ProtocolInfo{"tendermint", NetModel::kPartialSync, byzantine_third,
                            1, tendermint::make_tendermint_node});
  registry.add(ProtocolInfo{"sync-hotstuff", NetModel::kSync, byzantine_half, 1,
                            synchotstuff::make_sync_hotstuff_node});
}

}  // namespace bftsim

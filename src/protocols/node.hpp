// The protocol-author API (the consensus module of §III-A3).
//
// To simulate a custom protocol a user implements one class deriving from
// Node, overriding the paper's three entry points:
//   - on_message  (the paper's onMsgEvent),
//   - on_timer    (the paper's onTimeEvent),
//   - and reports results via Context::report_decision (reportToSystem).
//
// The Context is the node's handle to the simulator: sending/broadcasting
// messages through the network module, registering time events with the
// controller, reading protocol parameters (n, f, lambda) and run services
// (per-node RNG stream, the VRF, the signing oracle).
#pragma once

#include <memory>
#include <utility>

#include "core/arena.hpp"
#include "core/event.hpp"
#include "core/rng.hpp"
#include "core/types.hpp"
#include "crypto/signature.hpp"
#include "crypto/vrf.hpp"
#include "net/message.hpp"
#include "workload/proposal_batch.hpp"

namespace bftsim {

/// Per-node simulator handle, implemented by the controller.
class Context {
 public:
  virtual ~Context() = default;

  // --- identity and parameters -------------------------------------------
  [[nodiscard]] virtual NodeId id() const noexcept = 0;
  [[nodiscard]] virtual std::uint32_t n() const noexcept = 0;
  /// The fault threshold the protocol was configured with (derived from n
  /// per protocol family; see protocol headers).
  [[nodiscard]] virtual std::uint32_t f() const noexcept = 0;
  /// The protocol's configured network-delay bound λ.
  [[nodiscard]] virtual Time lambda() const noexcept = 0;
  [[nodiscard]] virtual Time now() const noexcept = 0;

  // --- communication ------------------------------------------------------
  /// Sends `payload` to `dst` through the network module.
  virtual void send(NodeId dst, PayloadPtr payload) = 0;
  /// Sends `payload` to every node (including self iff `include_self`).
  /// Self-delivery is immediate and does not count as a network message.
  virtual void broadcast(PayloadPtr payload, bool include_self = true) = 0;

  // --- time events ---------------------------------------------------------
  /// Registers a timer firing `delay` from now; `tag` is returned in the
  /// TimerEvent so the protocol can multiplex timers.
  virtual TimerId set_timer(Time delay, std::uint64_t tag) = 0;
  /// Cancels a pending timer (no-op if already fired or unknown).
  virtual void cancel_timer(TimerId id) = 0;

  // --- reporting -----------------------------------------------------------
  /// Asks the workload layer what to put in this node's next *fresh*
  /// proposal for `slot` (sequence number / height / iteration). With a
  /// client workload configured, returns a batch of this node's pending
  /// requests (value = batch digest, body_bytes the batch's wire weight);
  /// otherwise — or when no request is ready — returns the protocol's own
  /// minted `fresh` value with an empty body. Protocols call this only
  /// when minting a fresh value, never when re-proposing a prepared or
  /// locked one.
  [[nodiscard]] virtual ProposalBatch next_proposal(std::uint64_t /*slot*/,
                                                    Value fresh) {
    return ProposalBatch{fresh, 0, 0};
  }

  /// Reports that this node decided `value` (next height). The controller
  /// stops the run once every live honest node reported the configured
  /// number of decisions.
  virtual void report_decision(Value value) = 0;
  /// Records that this node entered `view` (view-synchronization analysis).
  virtual void record_view(View view) = 0;

  // --- run services ----------------------------------------------------------
  [[nodiscard]] virtual Rng& rng() noexcept = 0;
  [[nodiscard]] virtual const Vrf& vrf() const noexcept = 0;
  [[nodiscard]] virtual const Signer& signer() const noexcept = 0;
  /// Run-scoped arena: everything allocated from it lives until the run's
  /// controller is destroyed. Protocol code normally reaches it through
  /// make_payload() below rather than directly.
  [[nodiscard]] virtual Arena& arena() noexcept = 0;

  /// Constructs a payload of type T in the run arena. One bump allocation
  /// covers the payload and its shared_ptr control block; broadcast fan-out
  /// then shares that single allocation across all n-1 recipients. Prefer
  /// this over the free make_payload() wherever a Context is in reach.
  template <typename T, typename... Args>
  [[nodiscard]] PayloadPtr make_payload(Args&&... args) {
    return std::allocate_shared<T>(ArenaAllocator<T>(&arena()),
                                   std::forward<Args>(args)...);
  }
};

/// Base class for protocol node implementations.
class Node {
 public:
  Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;
  virtual ~Node() = default;

  /// Called once at simulated time 0, before any message/timer.
  virtual void on_start(Context& ctx) = 0;
  /// Called when a message addressed to this node is delivered.
  virtual void on_message(const Message& msg, Context& ctx) = 0;
  /// Called when a timer registered by this node fires.
  virtual void on_timer(const TimerEvent& ev, Context& ctx) = 0;
};

}  // namespace bftsim

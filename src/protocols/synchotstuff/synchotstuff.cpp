#include "protocols/synchotstuff/synchotstuff.hpp"

#include "core/log.hpp"

namespace bftsim::synchotstuff {

namespace {
/// Timer tags: kind in the low bits, height/view above.
[[nodiscard]] constexpr std::uint64_t tag_of(std::uint64_t index,
                                             std::uint64_t kind) noexcept {
  return index * 2 + kind;
}
}  // namespace

SyncHotStuffNode::SyncHotStuffNode(NodeId id, const SimConfig&) : id_(id) {}

void SyncHotStuffNode::on_start(Context& ctx) { enter_view(0, ctx); }

void SyncHotStuffNode::enter_view(View view, Context& ctx) {
  view_ = view;
  view_quit_ = false;
  ctx.record_view(view_);
  // Status resync: everything above the committed frontier was provisional
  // (commits only finalize after 2Δ without equivocation evidence, and the
  // evidence that triggered this view change cancelled them everywhere
  // within the synchrony bound). The new leader re-proposes from there.
  next_height_ = committed_;
  chain_.erase(chain_.lower_bound(committed_), chain_.end());
  for (auto& [height, timer] : commit_timers_) ctx.cancel_timer(timer);
  commit_timers_.clear();
  restart_blame_timer(ctx);
  if (leader_of(view_, ctx) == id_) propose(ctx);
}

void SyncHotStuffNode::restart_blame_timer(Context& ctx) {
  if (blame_timer_ != 0) ctx.cancel_timer(blame_timer_);
  blame_timer_ = ctx.set_timer(
      kBlameFactor * ctx.lambda(),
      tag_of(view_, static_cast<std::uint64_t>(TimerKind::kBlame)));
}

void SyncHotStuffNode::propose(Context& ctx) {
  const std::uint64_t height = next_height_;
  const ProposalBatch batch =
      ctx.next_proposal(height, hash_words({0x534850ULL, view_, height, id_}));
  const Value value = batch.value;
  const Signature sig =
      ctx.signer().sign(id_, hash_words({0x5348ULL, height, view_, value}));
  ctx.broadcast(ctx.make_payload<ShsProposal>(height, view_, value, sig,
                                              batch.body_bytes));
}

void SyncHotStuffNode::on_message(const Message& msg, Context& ctx) {
  switch (msg.type_id()) {
    case PayloadType::kSyncHotStuffProposal: handle_proposal(msg, ctx); break;
    case PayloadType::kSyncHotStuffVote: handle_vote(msg, ctx); break;
    case PayloadType::kSyncHotStuffBlame: handle_blame(msg, ctx); break;
    default: break;
  }
}

void SyncHotStuffNode::handle_proposal(const Message& msg, Context& ctx) {
  const auto& m = *msg.as<ShsProposal>();
  // Proposals are authenticated by the leader's signature and travel both
  // directly and as replica echoes, so equivocating proposals reach every
  // replica within one extra delay (the detection synchrony relies on it).
  if (!ctx.signer().verify(m.sig)) return;
  if (m.sig.signer != leader_of(m.view, ctx)) return;
  if (m.view != view_ || view_quit_) return;

  const auto [it, fresh] = accepted_.emplace(std::pair{m.view, m.height}, m.value);
  if (!fresh && it->second != m.value) {
    // Equivocation: two signed proposals for the same (view, height).
    // Cancel pending commits of this view's blocks and force a view change.
    for (auto& [height, timer] : commit_timers_) ctx.cancel_timer(timer);
    commit_timers_.clear();
    if (blamed_.mark(view_)) {
      const Signature sig = ctx.signer().sign(id_, hash_words({0x5342ULL, view_}));
      ctx.broadcast(ctx.make_payload<ShsBlame>(view_, sig));
    }
    return;
  }
  if (!fresh) return;               // duplicate of the accepted proposal
  // Echo the signed proposal so conflicting ones cannot stay hidden from
  // part of the network.
  if (msg.src == leader_of(m.view, ctx)) ctx.broadcast(msg.payload, false);
  if (m.height != next_height_) return;  // only vote in order
  if (!voted_height_.mark({m.view, m.height})) return;

  chain_[m.height] = m.value;
  ++next_height_;
  restart_blame_timer(ctx);  // leader made progress

  const Signature vote_sig =
      ctx.signer().sign(id_, hash_words({0x5356ULL, m.height, m.view, m.value}));
  ctx.broadcast(ctx.make_payload<ShsVote>(m.height, m.view, m.value, vote_sig));

  // The 2Δ commit rule: commit unless equivocation surfaces in time.
  commit_timers_[m.height] = ctx.set_timer(
      kCommitFactor * ctx.lambda(),
      tag_of(m.height, static_cast<std::uint64_t>(TimerKind::kCommit)));
}

void SyncHotStuffNode::handle_vote(const Message& msg, Context& ctx) {
  const auto& m = *msg.as<ShsVote>();
  if (!ctx.signer().verify(m.sig) || m.sig.signer != msg.src) return;
  if (m.view != view_ || view_quit_) return;
  if (!votes_.add_reaches({m.view, m.height, m.value}, msg.src, quorum(ctx))) {
    return;
  }
  // A certificate for the tip justifies the leader's next proposal.
  if (leader_of(view_, ctx) == id_ && m.height + 1 == next_height_) {
    propose(ctx);
  }
}

void SyncHotStuffNode::handle_blame(const Message& msg, Context& ctx) {
  const auto& m = *msg.as<ShsBlame>();
  if (!ctx.signer().verify(m.sig) || m.sig.signer != msg.src) return;
  if (m.view < view_) return;
  if (!blames_.add_reaches(m.view, msg.src, quorum(ctx))) return;
  // Quit-view certificate: move every replica to the next leader.
  if (m.view >= view_) enter_view(m.view + 1, ctx);
}

void SyncHotStuffNode::on_timer(const TimerEvent& ev, Context& ctx) {
  const std::uint64_t index = ev.tag / 2;
  const auto kind = static_cast<TimerKind>(ev.tag % 2);

  if (kind == TimerKind::kCommit) {
    const auto it = commit_timers_.find(index);
    if (it == commit_timers_.end() || it->second != ev.id) return;
    commit_timers_.erase(it);
    commit_up_to(index, ctx);
    return;
  }

  // Blame timer: the leader made no progress for 3Δ. Blames are
  // re-broadcast every period so quit-view certificates eventually form
  // even over lossy links.
  if (ev.id != blame_timer_ || index != view_) return;
  blamed_.mark(view_);
  const Signature sig = ctx.signer().sign(id_, hash_words({0x5342ULL, view_}));
  ctx.broadcast(ctx.make_payload<ShsBlame>(view_, sig));
  restart_blame_timer(ctx);  // re-blame if the view refuses to die
}

void SyncHotStuffNode::commit_up_to(std::uint64_t height, Context& ctx) {
  // Committing a block commits its whole prefix.
  while (committed_ <= height) {
    const auto it = chain_.find(committed_);
    if (it == chain_.end()) break;
    ctx.report_decision(it->second);
    ++committed_;
  }
}

std::unique_ptr<Node> make_sync_hotstuff_node(NodeId id, const SimConfig& cfg) {
  return std::make_unique<SyncHotStuffNode>(id, cfg);
}

}  // namespace bftsim::synchotstuff

// Sync HotStuff (Abraham, Malkhi, Nayak, Ren, Yin — S&P 2020), simplified
// steady state + blame-based view change.
//
// A synchronous SMR protocol with optimal honest-majority resilience
// (f < n/2) whose commit rule is a *timer*: a replica that votes for a
// block commits it 2Δ later unless it observed leader equivocation in the
// meantime (within 2Δ every honest vote has arrived, so a conflicting
// certificate is impossible). Leaders pipeline: each certificate (f+1
// votes) immediately justifies the next proposal, so the steady-state
// commit rate is one block per ~2 message delays while each commit
// individually waits its 2Δ.
//
// View change: replicas blame a silent leader after 3Δ without progress;
// f+1 blame messages form a quit-view certificate carried to the next
// leader. Equivocation (two signed proposals for the same height and
// view) is broadcast as evidence and also triggers the view change —
// that is the detection mechanism the "sync-hotstuff-equivocation" attack
// exercises.
//
// Like Tendermint, this protocol is an extension beyond the paper's eight
// (registered as "sync-hotstuff"); the paper's related work discusses an
// attack on it (Momose's force-locking attack), and its 2Δ commit timer
// makes it the most λ-sensitive protocol in the suite — a useful extreme
// for the Fig. 4-style responsiveness experiments.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "core/config.hpp"
#include "net/message.hpp"
#include "protocols/common/quorum.hpp"
#include "protocols/node.hpp"

namespace bftsim::synchotstuff {

struct ShsProposal final : Payload {
  static constexpr PayloadType kType = PayloadType::kSyncHotStuffProposal;
  std::uint64_t height = 0;
  View view = 0;
  Value value = 0;
  std::uint32_t body_bytes = 0;  ///< batched client requests (0 w/o workload)
  Signature sig;

  ShsProposal(std::uint64_t h, View v, Value val, Signature s,
              std::uint32_t body = 0)
      : Payload(kType), height(h), view(v), value(val), body_bytes(body),
        sig(s) {}
  std::string_view type() const noexcept override { return "sync-hs/proposal"; }
  std::uint64_t digest() const noexcept override {
    return hash_words({0x5348ULL, height, view, value});
  }
  std::size_t wire_size() const noexcept override { return 256 + body_bytes; }
};

struct ShsVote final : Payload {
  static constexpr PayloadType kType = PayloadType::kSyncHotStuffVote;
  std::uint64_t height = 0;
  View view = 0;
  Value value = 0;
  Signature sig;

  ShsVote(std::uint64_t h, View v, Value val, Signature s)
      : Payload(kType), height(h), view(v), value(val), sig(s) {}
  std::string_view type() const noexcept override { return "sync-hs/vote"; }
  std::uint64_t digest() const noexcept override {
    return hash_words({0x5356ULL, height, view, value});
  }
  std::size_t wire_size() const noexcept override { return 96; }
};

struct ShsBlame final : Payload {
  static constexpr PayloadType kType = PayloadType::kSyncHotStuffBlame;
  View view = 0;
  Signature sig;

  ShsBlame(View v, Signature s) : Payload(kType), view(v), sig(s) {}
  std::string_view type() const noexcept override { return "sync-hs/blame"; }
  std::uint64_t digest() const noexcept override {
    return hash_words({0x5342ULL, view});
  }
  std::size_t wire_size() const noexcept override { return 80; }
};

class SyncHotStuffNode final : public Node {
 public:
  SyncHotStuffNode(NodeId id, const SimConfig& cfg);

  void on_start(Context& ctx) override;
  void on_message(const Message& msg, Context& ctx) override;
  void on_timer(const TimerEvent& ev, Context& ctx) override;

  /// Commit delay as a multiple of Δ (= λ): the protocol's 2Δ rule.
  static constexpr int kCommitFactor = 2;
  /// Blame a leader after this many Δ without progress.
  static constexpr int kBlameFactor = 3;

 private:
  enum class TimerKind : std::uint64_t { kCommit = 0, kBlame = 1 };

  [[nodiscard]] NodeId leader_of(View v, Context& ctx) const noexcept {
    return static_cast<NodeId>(v % ctx.n());
  }
  [[nodiscard]] std::uint32_t quorum(Context& ctx) const noexcept {
    return ctx.f() + 1;  // honest majority
  }

  void enter_view(View view, Context& ctx);
  void propose(Context& ctx);
  void restart_blame_timer(Context& ctx);
  void handle_proposal(const Message& msg, Context& ctx);
  void handle_vote(const Message& msg, Context& ctx);
  void handle_blame(const Message& msg, Context& ctx);
  void commit_up_to(std::uint64_t height, Context& ctx);

  NodeId id_;
  View view_ = 0;
  bool view_quit_ = false;      ///< stopped participating, awaiting next view
  std::uint64_t next_height_ = 0;  ///< next height this node expects
  std::uint64_t committed_ = 0;    ///< heights strictly below are committed

  /// Proposal accepted per (view, height): value (first one wins;
  /// a different second one is equivocation evidence).
  std::map<std::pair<View, std::uint64_t>, Value> accepted_;
  std::map<std::uint64_t, Value> chain_;  ///< height -> voted value
  QuorumTracker<std::tuple<View, std::uint64_t, Value>> votes_;
  QuorumTracker<View> blames_;
  OnceSet<std::pair<View, std::uint64_t>> voted_height_;
  OnceSet<View> blamed_;
  std::map<std::uint64_t, TimerId> commit_timers_;  ///< height -> pending timer
  TimerId blame_timer_ = 0;
};

[[nodiscard]] std::unique_ptr<Node> make_sync_hotstuff_node(NodeId id,
                                                            const SimConfig& cfg);

}  // namespace bftsim::synchotstuff

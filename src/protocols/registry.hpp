// Protocol registry: maps protocol names to factories and static traits,
// so that configurations can select protocols by name (as in the paper's
// configuration files).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/types.hpp"
#include "protocols/node.hpp"

namespace bftsim {

/// The network model a protocol is designed for (Table I).
enum class NetModel : std::uint8_t { kSync, kPartialSync, kAsync };

[[nodiscard]] std::string_view to_string(NetModel model) noexcept;

/// Static description of a registered protocol.
struct ProtocolInfo {
  std::string name;
  NetModel model = NetModel::kPartialSync;
  /// Fault threshold f as a function of n (n-1)/3 or (n-1)/2 etc.
  std::function<std::uint32_t(std::uint32_t)> fault_threshold;
  /// Decisions to average over when measuring, per §IV (pipelined: 10).
  std::uint32_t measured_decisions = 1;
  /// Creates the node with the given id for a run with this config.
  std::function<std::unique_ptr<Node>(NodeId, const SimConfig&)> create;
};

/// Global protocol registry (builtins are registered on first access).
class ProtocolRegistry {
 public:
  /// The singleton registry, with all builtin protocols registered.
  [[nodiscard]] static ProtocolRegistry& instance();

  /// Registers a protocol; throws std::invalid_argument on duplicate name.
  void add(ProtocolInfo info);

  /// Finds a protocol by name; throws std::invalid_argument when unknown.
  [[nodiscard]] const ProtocolInfo& get(const std::string& name) const;

  [[nodiscard]] bool contains(const std::string& name) const noexcept;

  /// Names of all registered protocols, in registration order.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  ProtocolRegistry() = default;
  std::vector<ProtocolInfo> protocols_;
};

/// Registers the eight builtin protocols (idempotent).
void register_builtin_protocols(ProtocolRegistry& registry);

/// Fault thresholds of the two protocol families.
[[nodiscard]] constexpr std::uint32_t byzantine_third(std::uint32_t n) noexcept {
  return (n - 1) / 3;
}
[[nodiscard]] constexpr std::uint32_t byzantine_half(std::uint32_t n) noexcept {
  return (n - 1) / 2;
}

}  // namespace bftsim

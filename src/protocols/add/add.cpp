#include "protocols/add/add.hpp"

#include "core/log.hpp"

namespace bftsim::add {

namespace {
/// Timer tags encode (iteration, round-within-iteration).
[[nodiscard]] constexpr std::uint64_t tag_of(std::uint64_t iter,
                                             std::uint64_t round) noexcept {
  return iter * 8 + round;
}
}  // namespace

AddNode::AddNode(NodeId id, Variant variant, const SimConfig&)
    : id_(id), variant_(variant) {}

void AddNode::on_start(Context& ctx) { enter_iteration(0, ctx); }

void AddNode::enter_iteration(std::uint64_t iter, Context& ctx) {
  iter_ = iter;
  ctx.record_view(iter);
  // Lock-step rounds: all nodes schedule the same absolute round times, so
  // iterations stay aligned without any synchronization messages.
  const int rounds = rounds_per_iteration();
  for (int r = 0; r <= rounds; ++r) {
    ctx.set_timer(static_cast<Time>(r) * ctx.lambda(), tag_of(iter, r));
  }
  step(iter, 0, ctx);  // round 0 actions happen on entry
}

void AddNode::on_timer(const TimerEvent& ev, Context& ctx) {
  const std::uint64_t iter = ev.tag / 8;
  const std::uint64_t round = ev.tag % 8;
  if (iter != iter_ || decided_) return;
  if (round == 0) return;  // already executed on entry
  step(iter, round, ctx);
}

void AddNode::step(std::uint64_t iter, std::uint64_t round, Context& ctx) {
  switch (variant_) {
    case Variant::kV1:
      // rounds: 0 propose (leader), 1 vote, 2 commit happens on quorum,
      // 3 iteration end.
      if (round == 0) {
        if (ctx.id() == iter % ctx.n()) {
          const ProposalBatch batch = own_proposal(iter, ctx);
          ctx.broadcast(ctx.make_payload<AddPropose>(iter, batch.value,
                                                     batch.body_bytes));
        }
      } else if (round == 1) {
        do_vote(iter, ctx);
      } else if (round == 3) {
        enter_iteration(iter + 1, ctx);
      }
      break;

    case Variant::kV2:
      // rounds: 0 elect, 1 propose (winner), 2 vote, 3 commit on quorum,
      // 4 iteration end.
      if (round == 0) {
        ctx.broadcast(ctx.make_payload<AddElect>(iter, ctx.vrf().evaluate(id_, iter)));
      } else if (round == 1) {
        const auto it = min_elect_.find(iter);
        if (it != min_elect_.end() && it->second.second == id_) {
          const ProposalBatch batch = own_proposal(iter, ctx);
          ctx.broadcast(ctx.make_payload<AddPropose>(iter, batch.value,
                                                     batch.body_bytes));
        }
      } else if (round == 2) {
        do_vote(iter, ctx);
      } else if (round == 4) {
        enter_iteration(iter + 1, ctx);
      }
      break;

    case Variant::kV3:
      // rounds: 0 propose (everyone, credential attached), 1 prepare the
      // minimum-credential value, 2 commit on quorum, 3 iteration end.
      if (round == 0) {
        const ProposalBatch batch = own_proposal(iter, ctx);
        ctx.broadcast(ctx.make_payload<AddPropose>(
            iter, batch.value, ctx.vrf().evaluate(id_, iter),
            batch.body_bytes));
      } else if (round == 1) {
        do_vote(iter, ctx);
      } else if (round == 3) {
        enter_iteration(iter + 1, ctx);
      }
      break;
  }
}

void AddNode::do_vote(std::uint64_t iter, Context& ctx) {
  // Determine the leader's value for this iteration, per variant.
  Value value = kBottom;
  switch (variant_) {
    case Variant::kV1:
    case Variant::kV2: {
      const auto it = leader_proposal_.find(iter);
      if (it == leader_proposal_.end() || !it->second.has_value()) {
        // v2: the proposal may have arrived before the elect quorum
        // identified the leader; re-check the stored proposals now.
        if (variant_ == Variant::kV2) {
          const auto elect = min_elect_.find(iter);
          const auto props = proposals_.find(iter);
          if (elect != min_elect_.end() && props != proposals_.end()) {
            const auto p = props->second.find(elect->second.second);
            if (p != props->second.end()) value = p->second;
          }
        }
      } else {
        value = *it->second;
      }
      break;
    }
    case Variant::kV3: {
      const auto it = best_proposal_.find(iter);
      if (it != best_proposal_.end()) value = it->second.second;
      break;
    }
  }
  if (value == kBottom) return;  // silent / corrupted leader: skip iteration
  if (lock_ != kBottom && lock_ != value) return;  // never vote against a lock
  const auto payload = variant_ == Variant::kV3
                           ? PayloadPtr(ctx.make_payload<AddPrepare>(iter, value))
                           : PayloadPtr(ctx.make_payload<AddVote>(iter, value));
  ctx.broadcast(payload);
}

void AddNode::try_commit_phase(std::uint64_t iter, Value value, Context& ctx) {
  if (!votes_.reached({iter, value}, quorum(ctx))) return;
  if (!commit_sent_.mark(iter)) return;
  lock_ = value;
  ctx.broadcast(ctx.make_payload<AddCommit>(iter, value));
}

void AddNode::on_message(const Message& msg, Context& ctx) {
  switch (msg.type_id()) {
    case PayloadType::kAddElect: handle_elect(msg, ctx); break;
    case PayloadType::kAddPropose: handle_propose(msg, ctx); break;
    case PayloadType::kAddPrepare: handle_prepare(msg, ctx); break;
    case PayloadType::kAddVote: handle_vote(msg, ctx); break;
    case PayloadType::kAddCommit: handle_commit(msg, ctx); break;
    default: break;
  }
}

void AddNode::handle_elect(const Message& msg, Context& ctx) {
  const auto* elect = msg.as<AddElect>();
  if (variant_ != Variant::kV2) return;
  if (!ctx.vrf().verify(msg.src, elect->iter, elect->credential)) return;
  const auto it = min_elect_.find(elect->iter);
  if (it == min_elect_.end() || elect->credential.value < it->second.first) {
    min_elect_[elect->iter] = {elect->credential.value, msg.src};
  }
}

void AddNode::handle_propose(const Message& msg, Context& ctx) {
  const auto* prop = msg.as<AddPropose>();
  switch (variant_) {
    case Variant::kV1:
      if (msg.src == prop->iter % ctx.n()) {
        auto& slot = leader_proposal_[prop->iter];
        if (!slot.has_value()) slot = prop->value;
        // A different second value would be equivocation; first wins.
      }
      break;
    case Variant::kV2: {
      proposals_[prop->iter][msg.src] = prop->value;
      const auto elect = min_elect_.find(prop->iter);
      if (elect != min_elect_.end() && elect->second.second == msg.src) {
        auto& slot = leader_proposal_[prop->iter];
        if (!slot.has_value()) slot = prop->value;
      }
      break;
    }
    case Variant::kV3: {
      if (!prop->has_credential ||
          !ctx.vrf().verify(msg.src, prop->iter, prop->credential)) {
        return;
      }
      const auto it = best_proposal_.find(prop->iter);
      if (it == best_proposal_.end() ||
          prop->credential.value < it->second.first) {
        best_proposal_[prop->iter] = {prop->credential.value, prop->value};
      }
      break;
    }
  }
}

void AddNode::handle_prepare(const Message& msg, Context& ctx) {
  const auto* prep = msg.as<AddPrepare>();
  if (variant_ != Variant::kV3) return;
  votes_.add({prep->iter, prep->value}, msg.src);
  try_commit_phase(prep->iter, prep->value, ctx);
}

void AddNode::handle_vote(const Message& msg, Context& ctx) {
  const auto* vote = msg.as<AddVote>();
  if (variant_ == Variant::kV3) return;
  votes_.add({vote->iter, vote->value}, msg.src);
  try_commit_phase(vote->iter, vote->value, ctx);
}

void AddNode::handle_commit(const Message& msg, Context& ctx) {
  const auto* commit = msg.as<AddCommit>();
  if (commits_.add_reaches({commit->iter, commit->value}, msg.src, quorum(ctx)) &&
      !decided_) {
    decided_ = true;
    lock_ = commit->value;
    ctx.report_decision(commit->value);
  }
}

std::unique_ptr<Node> make_add_node(NodeId id, Variant variant,
                                    const SimConfig& cfg) {
  return std::make_unique<AddNode>(id, variant, cfg);
}

}  // namespace bftsim::add

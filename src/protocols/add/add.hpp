// ADD+ Byzantine agreement (Abraham, Devadas, Dolev, Nayak, Ren —
// "Synchronous Byzantine Agreement with Expected O(1) Rounds, Expected
// O(n^2) Communication, and Optimal Resilience", ePrint 2018/1028).
//
// A synchronous, honest-majority (f < n/2) one-shot BA run in lock-step
// iterations of λ-long rounds. Three variants, as in the paper's Table I:
//
//   v1 — deterministic round-robin leaders. A static attacker that
//        fail-stops the first f leaders delays termination by f
//        iterations (Fig. 8 left).
//   v2 — v1 plus VRF leader election: an extra elect round in which every
//        node broadcasts a VRF credential; the minimum credential wins.
//        Static attackers can no longer predict leaders, restoring
//        expected-constant-iteration termination — but a rushing adaptive
//        attacker can corrupt the winner the moment its credential is
//        revealed, before it proposes (Fig. 8 right).
//   v3 — credentials are revealed *together with* the proposal, and a
//        prepare round locks the leader's value. By the time an adaptive
//        attacker learns who won, the winning proposal is already in
//        flight to everyone (messages sent while honest are delivered),
//        so corruption comes too late: expected-constant iterations even
//        under rushing adaptive attacks.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "core/config.hpp"
#include "crypto/vrf.hpp"
#include "net/message.hpp"
#include "protocols/common/quorum.hpp"
#include "protocols/node.hpp"

namespace bftsim::add {

enum class Variant : std::uint8_t { kV1, kV2, kV3 };

struct AddElect final : Payload {  // v2 only
  static constexpr PayloadType kType = PayloadType::kAddElect;
  std::uint64_t iter = 0;
  VrfOutput credential;

  AddElect(std::uint64_t i, VrfOutput c) : Payload(kType), iter(i), credential(c) {}
  std::string_view type() const noexcept override { return "add/elect"; }
  std::uint64_t digest() const noexcept override {
    return hash_words({0x454cULL, iter, credential.value});
  }
  std::size_t wire_size() const noexcept override { return 112; }
};

struct AddPropose final : Payload {
  static constexpr PayloadType kType = PayloadType::kAddPropose;
  std::uint64_t iter = 0;
  Value value = 0;
  std::uint32_t body_bytes = 0;  ///< batched client requests (0 w/o workload)
  bool has_credential = false;  // v3 carries the credential in the proposal
  VrfOutput credential;

  AddPropose(std::uint64_t i, Value v, std::uint32_t body = 0)
      : Payload(kType), iter(i), value(v), body_bytes(body) {}
  AddPropose(std::uint64_t i, Value v, VrfOutput c, std::uint32_t body = 0)
      : Payload(kType), iter(i), value(v), body_bytes(body),
        has_credential(true), credential(c) {}
  std::string_view type() const noexcept override { return "add/propose"; }
  std::uint64_t digest() const noexcept override {
    return hash_words({0x5052ULL, iter, value, credential.value});
  }
  std::size_t wire_size() const noexcept override { return 160 + body_bytes; }
};

struct AddPrepare final : Payload {  // v3 only
  static constexpr PayloadType kType = PayloadType::kAddPrepare;
  std::uint64_t iter = 0;
  Value value = 0;

  AddPrepare(std::uint64_t i, Value v) : Payload(kType), iter(i), value(v) {}
  std::string_view type() const noexcept override { return "add/prepare"; }
  std::uint64_t digest() const noexcept override {
    return hash_words({0x5245ULL, iter, value});
  }
  std::size_t wire_size() const noexcept override { return 80; }
};

struct AddVote final : Payload {
  static constexpr PayloadType kType = PayloadType::kAddVote;
  std::uint64_t iter = 0;
  Value value = 0;

  AddVote(std::uint64_t i, Value v) : Payload(kType), iter(i), value(v) {}
  std::string_view type() const noexcept override { return "add/vote"; }
  std::uint64_t digest() const noexcept override {
    return hash_words({0x564fULL, iter, value});
  }
  std::size_t wire_size() const noexcept override { return 80; }
};

struct AddCommit final : Payload {
  static constexpr PayloadType kType = PayloadType::kAddCommit;
  std::uint64_t iter = 0;
  Value value = 0;

  AddCommit(std::uint64_t i, Value v) : Payload(kType), iter(i), value(v) {}
  std::string_view type() const noexcept override { return "add/commit"; }
  std::uint64_t digest() const noexcept override {
    return hash_words({0x434fULL, iter, value});
  }
  std::size_t wire_size() const noexcept override { return 80; }
};

class AddNode final : public Node {
 public:
  AddNode(NodeId id, Variant variant, const SimConfig& cfg);

  void on_start(Context& ctx) override;
  void on_message(const Message& msg, Context& ctx) override;
  void on_timer(const TimerEvent& ev, Context& ctx) override;

  /// Rounds per iteration: v1 propose/vote/commit, v2 adds elect, v3
  /// propose(all)/prepare/commit.
  [[nodiscard]] int rounds_per_iteration() const noexcept {
    return variant_ == Variant::kV2 ? 4 : 3;
  }

 private:
  [[nodiscard]] std::uint32_t quorum(Context& ctx) const noexcept {
    return ctx.f() + 1;  // honest majority: f+1 of n = 2f+1
  }
  /// Re-proposes the locked value (digest only); a fresh mint batches this
  /// node's pending client requests into the proposal.
  [[nodiscard]] ProposalBatch own_proposal(std::uint64_t iter, Context& ctx) {
    if (lock_ != kBottom) return ProposalBatch{lock_, 0, 0};
    return ctx.next_proposal(iter, hash_words({0x414444ULL, iter, ctx.id()}));
  }

  void enter_iteration(std::uint64_t iter, Context& ctx);
  void step(std::uint64_t iter, std::uint64_t round, Context& ctx);
  void do_vote(std::uint64_t iter, Context& ctx);
  void try_commit_phase(std::uint64_t iter, Value value, Context& ctx);
  void handle_elect(const Message& msg, Context& ctx);
  void handle_propose(const Message& msg, Context& ctx);
  void handle_prepare(const Message& msg, Context& ctx);
  void handle_vote(const Message& msg, Context& ctx);
  void handle_commit(const Message& msg, Context& ctx);

  NodeId id_;
  Variant variant_;
  std::uint64_t iter_ = 0;
  Value lock_ = kBottom;
  bool decided_ = false;

  /// v1/v2: the designated leader's proposal for an iteration.
  std::map<std::uint64_t, std::optional<Value>> leader_proposal_;
  /// v2: minimum elect credential seen: (credential, node).
  std::map<std::uint64_t, std::pair<std::uint64_t, NodeId>> min_elect_;
  /// v2: proposals by node (validated against the elected leader later).
  std::map<std::uint64_t, std::map<NodeId, Value>> proposals_;
  /// v3: minimum-credential proposal seen: (credential, value).
  std::map<std::uint64_t, std::pair<std::uint64_t, Value>> best_proposal_;

  QuorumTracker<std::pair<std::uint64_t, Value>> votes_;    // votes / prepares
  QuorumTracker<std::pair<std::uint64_t, Value>> commits_;
  OnceSet<std::uint64_t> commit_sent_;
};

[[nodiscard]] std::unique_ptr<Node> make_add_node(NodeId id, Variant variant,
                                                  const SimConfig& cfg);

}  // namespace bftsim::add

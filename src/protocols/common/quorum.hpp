// Vote-counting utilities shared by the protocol implementations.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/types.hpp"

namespace bftsim {

/// Sorted, duplicate-free voter list. Vote sets are quorum-sized (tens of
/// entries), so a flat vector with ordered insertion beats a node-based
/// std::set on every operation; iteration stays ascending, which is what
/// keeps certificate signer lists — and therefore digests and message
/// contents — identical to the std::set it replaced.
class VoterSet {
 public:
  /// Inserts `voter`; returns false on duplicates.
  bool insert(NodeId voter) {
    const auto it = std::lower_bound(ids_.begin(), ids_.end(), voter);
    if (it != ids_.end() && *it == voter) return false;
    ids_.insert(it, voter);
    return true;
  }

  [[nodiscard]] std::size_t size() const noexcept { return ids_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ids_.empty(); }
  [[nodiscard]] bool contains(NodeId voter) const noexcept {
    return std::binary_search(ids_.begin(), ids_.end(), voter);
  }
  [[nodiscard]] auto begin() const noexcept { return ids_.begin(); }
  [[nodiscard]] auto end() const noexcept { return ids_.end(); }

 private:
  std::vector<NodeId> ids_;
};

/// Counts distinct voters per key (e.g. per (view, value) pair) and reports
/// when a quorum is first reached.
template <typename Key>
class QuorumTracker {
 public:
  /// Records `voter`'s vote for `key`; returns false on duplicate votes.
  bool add(const Key& key, NodeId voter) {
    return votes_[key].insert(voter);
  }

  [[nodiscard]] std::size_t count(const Key& key) const noexcept {
    const auto it = votes_.find(key);
    return it == votes_.end() ? 0 : it->second.size();
  }

  [[nodiscard]] bool reached(const Key& key, std::uint32_t quorum) const noexcept {
    return count(key) >= quorum;
  }

  /// Records a vote and returns true exactly when this vote makes the
  /// quorum transition from unreached to reached.
  bool add_reaches(const Key& key, NodeId voter, std::uint32_t quorum) {
    auto& voters = votes_[key];
    const bool was_reached = voters.size() >= quorum;
    voters.insert(voter);
    return !was_reached && voters.size() >= quorum;
  }

  /// The distinct voters recorded for `key`, in ascending id order.
  [[nodiscard]] const VoterSet& voters(const Key& key) const {
    static const VoterSet kEmpty;
    const auto it = votes_.find(key);
    return it == votes_.end() ? kEmpty : it->second;
  }

  void clear() noexcept { votes_.clear(); }

 private:
  std::map<Key, VoterSet> votes_;
};

/// Remembers keys for which an action was already performed (e.g. "already
/// broadcast my echo for this value"), so handlers stay idempotent.
template <typename Key>
class OnceSet {
 public:
  /// Returns true the first time `key` is marked, false afterwards.
  bool mark(const Key& key) { return seen_.insert(key).second; }
  [[nodiscard]] bool contains(const Key& key) const noexcept {
    return seen_.contains(key);
  }

 private:
  std::set<Key> seen_;
};

}  // namespace bftsim

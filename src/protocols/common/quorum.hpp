// Vote-counting utilities shared by the protocol implementations.
#pragma once

#include <bit>
#include <cstdint>
#include <iterator>
#include <map>
#include <set>
#include <vector>

#include "core/types.hpp"

namespace bftsim {

/// Duplicate-free voter set over dense node ids, stored as a word-array
/// bit set. Insertion and membership are O(1) — the sorted flat vector it
/// replaces paid an O(size) shift per insert, which at n=4096 made
/// filling one quorum set O(n²) and a full PBFT round O(n³). Iteration
/// walks the words in order and yields voters strictly ascending, exactly
/// the order the sorted vector produced, so certificate signer lists —
/// and therefore digests and message contents — are unchanged. Memory is
/// n/8 bytes once grown (grown lazily to the highest voter seen), an
/// order of magnitude below the 4-byte-per-entry vector at scale.
class VoterSet {
 public:
  /// Forward iterator over the set bits, ascending. Dereferences to the
  /// voter's NodeId.
  class const_iterator {
   public:
    using value_type = NodeId;
    using difference_type = std::ptrdiff_t;
    using reference = NodeId;
    using pointer = const NodeId*;
    using iterator_category = std::forward_iterator_tag;

    const_iterator() = default;
    const_iterator(const std::vector<std::uint64_t>* words, std::size_t word)
        : words_(words), word_(word) {
      if (words_ != nullptr && word_ < words_->size()) {
        bits_ = (*words_)[word_];
        advance_to_nonzero();
      }
    }

    [[nodiscard]] NodeId operator*() const noexcept {
      return static_cast<NodeId>(word_ * 64 +
                                 static_cast<unsigned>(std::countr_zero(bits_)));
    }
    const_iterator& operator++() noexcept {
      bits_ &= bits_ - 1;  // clear lowest set bit
      advance_to_nonzero();
      return *this;
    }
    const_iterator operator++(int) noexcept {
      const_iterator tmp = *this;
      ++*this;
      return tmp;
    }
    [[nodiscard]] bool operator==(const const_iterator& o) const noexcept {
      return word_ == o.word_ && bits_ == o.bits_;
    }

   private:
    void advance_to_nonzero() noexcept {
      while (bits_ == 0) {
        if (++word_ >= words_->size()) {
          word_ = words_->size();
          return;
        }
        bits_ = (*words_)[word_];
      }
    }

    const std::vector<std::uint64_t>* words_ = nullptr;
    std::size_t word_ = 0;
    std::uint64_t bits_ = 0;
  };

  /// Inserts `voter`; returns false on duplicates.
  bool insert(NodeId voter) {
    const std::size_t word = voter >> 6;
    if (word >= words_.size()) words_.resize(word + 1, 0);
    const std::uint64_t mask = std::uint64_t{1} << (voter & 63);
    if ((words_[word] & mask) != 0) return false;
    words_[word] |= mask;
    ++count_;
    return true;
  }

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] bool contains(NodeId voter) const noexcept {
    const std::size_t word = voter >> 6;
    return word < words_.size() &&
           (words_[word] & (std::uint64_t{1} << (voter & 63))) != 0;
  }
  [[nodiscard]] const_iterator begin() const noexcept {
    return const_iterator{&words_, 0};
  }
  [[nodiscard]] const_iterator end() const noexcept {
    return const_iterator{&words_, words_.size()};
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t count_ = 0;
};

/// Counts distinct voters per key (e.g. per (view, value) pair) and reports
/// when a quorum is first reached.
template <typename Key>
class QuorumTracker {
 public:
  /// Records `voter`'s vote for `key`; returns false on duplicate votes.
  bool add(const Key& key, NodeId voter) {
    return votes_[key].insert(voter);
  }

  [[nodiscard]] std::size_t count(const Key& key) const noexcept {
    const auto it = votes_.find(key);
    return it == votes_.end() ? 0 : it->second.size();
  }

  [[nodiscard]] bool reached(const Key& key, std::uint32_t quorum) const noexcept {
    return count(key) >= quorum;
  }

  /// Records a vote and returns true exactly when this vote makes the
  /// quorum transition from unreached to reached.
  bool add_reaches(const Key& key, NodeId voter, std::uint32_t quorum) {
    auto& voters = votes_[key];
    const bool was_reached = voters.size() >= quorum;
    voters.insert(voter);
    return !was_reached && voters.size() >= quorum;
  }

  /// The distinct voters recorded for `key`, in ascending id order.
  [[nodiscard]] const VoterSet& voters(const Key& key) const {
    static const VoterSet kEmpty;
    const auto it = votes_.find(key);
    return it == votes_.end() ? kEmpty : it->second;
  }

  void clear() noexcept { votes_.clear(); }

 private:
  std::map<Key, VoterSet> votes_;
};

/// Remembers keys for which an action was already performed (e.g. "already
/// broadcast my echo for this value"), so handlers stay idempotent.
template <typename Key>
class OnceSet {
 public:
  /// Returns true the first time `key` is marked, false afterwards.
  bool mark(const Key& key) { return seen_.insert(key).second; }
  [[nodiscard]] bool contains(const Key& key) const noexcept {
    return seen_.contains(key);
  }

 private:
  std::set<Key> seen_;
};

}  // namespace bftsim

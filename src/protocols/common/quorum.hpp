// Vote-counting utilities shared by the protocol implementations.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "core/types.hpp"

namespace bftsim {

/// Counts distinct voters per key (e.g. per (view, value) pair) and reports
/// when a quorum is first reached.
template <typename Key>
class QuorumTracker {
 public:
  /// Records `voter`'s vote for `key`; returns false on duplicate votes.
  bool add(const Key& key, NodeId voter) {
    return votes_[key].insert(voter).second;
  }

  [[nodiscard]] std::size_t count(const Key& key) const noexcept {
    const auto it = votes_.find(key);
    return it == votes_.end() ? 0 : it->second.size();
  }

  [[nodiscard]] bool reached(const Key& key, std::uint32_t quorum) const noexcept {
    return count(key) >= quorum;
  }

  /// Records a vote and returns true exactly when this vote makes the
  /// quorum transition from unreached to reached.
  bool add_reaches(const Key& key, NodeId voter, std::uint32_t quorum) {
    auto& voters = votes_[key];
    const bool was_reached = voters.size() >= quorum;
    voters.insert(voter);
    return !was_reached && voters.size() >= quorum;
  }

  /// The distinct voters recorded for `key`.
  [[nodiscard]] const std::set<NodeId>& voters(const Key& key) const {
    static const std::set<NodeId> kEmpty;
    const auto it = votes_.find(key);
    return it == votes_.end() ? kEmpty : it->second;
  }

  void clear() noexcept { votes_.clear(); }

 private:
  std::map<Key, std::set<NodeId>> votes_;
};

/// Remembers keys for which an action was already performed (e.g. "already
/// broadcast my echo for this value"), so handlers stay idempotent.
template <typename Key>
class OnceSet {
 public:
  /// Returns true the first time `key` is marked, false afterwards.
  bool mark(const Key& key) { return seen_.insert(key).second; }
  [[nodiscard]] bool contains(const Key& key) const noexcept {
    return seen_.contains(key);
  }

 private:
  std::set<Key> seen_;
};

}  // namespace bftsim

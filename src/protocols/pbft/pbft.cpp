#include "protocols/pbft/pbft.hpp"

#include <algorithm>

#include "core/log.hpp"

namespace bftsim::pbft {

namespace {
constexpr std::uint64_t kViewTimerTag = 1;

/// Deterministic proposal value for (view, seq, proposer).
[[nodiscard]] Value proposal_value(View view, std::uint64_t seq, NodeId proposer) {
  return hash_words({0x70726f70ULL, view, seq, proposer});
}
}  // namespace

PbftNode::PbftNode(NodeId id, const SimConfig& cfg, std::uint32_t quorum_slack)
    : id_(id), quorum_slack_(quorum_slack) {
  base_timeout_ = from_ms(cfg.lambda_ms) * kTimeoutFactor;
  timeout_ = base_timeout_;
  fault_catch_up_ = cfg.faults.enabled();
}

void PbftNode::on_start(Context& ctx) {
  ctx.record_view(0);
  start_view_timer(ctx);
  if (leader_of(view_, ctx) == id_) propose(ctx);
}

void PbftNode::start_view_timer(Context& ctx) {
  if (view_timer_ != 0) ctx.cancel_timer(view_timer_);
  view_timer_ = ctx.set_timer(timeout_, kViewTimerTag);
}

void PbftNode::propose(Context& ctx) {
  // Re-propose the prepared value if one exists for this sequence (we may
  // be re-proposing after a view change); otherwise mint a fresh proposal,
  // letting the workload layer batch pending client requests into it.
  Value value;
  std::uint32_t body = 0;
  if (const auto it = prepared_at_.find(working_seq_); it != prepared_at_.end()) {
    value = it->second.second;  // digest-only re-proposal: no body re-shipped
  } else {
    const ProposalBatch batch = ctx.next_proposal(
        working_seq_, proposal_value(view_, working_seq_, id_));
    value = batch.value;
    body = batch.body_bytes;
  }
  const auto payload = ctx.make_payload<PrePrepare>(
      view_, working_seq_, value,
      ctx.signer().sign(id_,
                        hash_words({0x5050ULL, view_, working_seq_, value})),
      body);
  ctx.broadcast(payload);
}

void PbftNode::on_message(const Message& msg, Context& ctx) {
  switch (msg.type_id()) {
    case PayloadType::kPbftPrePrepare: handle_pre_prepare(msg, ctx); break;
    case PayloadType::kPbftPrepare: handle_prepare(msg, ctx); break;
    case PayloadType::kPbftCommit: handle_commit(msg, ctx); break;
    case PayloadType::kPbftViewChange: handle_view_change(msg, ctx); break;
    case PayloadType::kPbftNewView: handle_new_view(msg, ctx); break;
    default: break;
  }
}

void PbftNode::handle_pre_prepare(const Message& msg, Context& ctx) {
  const auto& m = *msg.as<PrePrepare>();
  if (!ctx.signer().verify(m.sig) || m.sig.signer != msg.src) return;
  if (msg.src != leader_of(m.view, ctx)) return;
  if (m.view < view_) return;
  if (m.seq < working_seq_) return;  // already decided

  Instance& inst = instance(m.view, m.seq);
  if (inst.pre_prepared.has_value()) {
    if (*inst.pre_prepared != m.value) return;  // leader equivocation
  } else {
    inst.pre_prepared = m.value;
  }
  // Only participate when the pre-prepare is for our active view; a
  // pre-prepare that raced ahead of its new-view message is kept in the
  // instance and acted on in enter_view().
  if (m.view != view_ || in_view_change_) return;
  send_prepare(m.view, m.seq, m.value, ctx);
  maybe_prepare(m.view, m.seq, ctx);
}

void PbftNode::send_prepare(View view, std::uint64_t seq, Value value, Context& ctx) {
  Instance& inst = instance(view, seq);
  if (inst.sent_prepare) return;
  inst.sent_prepare = true;
  const auto prepare = ctx.make_payload<Prepare>(
      view, seq, value,
      ctx.signer().sign(id_, hash_words({0x5052ULL, view, seq, value})));
  ctx.broadcast(prepare);
}

void PbftNode::handle_prepare(const Message& msg, Context& ctx) {
  const auto& m = *msg.as<Prepare>();
  if (!ctx.signer().verify(m.sig) || m.sig.signer != msg.src) return;
  if (m.view < view_) return;
  instance(m.view, m.seq).prepares.add(m.value, msg.src);
  if (m.view != view_ || in_view_change_) return;  // counted; acted on later
  maybe_prepare(m.view, m.seq, ctx);
}

void PbftNode::maybe_prepare(View view, std::uint64_t seq, Context& ctx) {
  Instance& inst = instance(view, seq);
  if (inst.prepared || !inst.pre_prepared.has_value()) return;
  const Value value = *inst.pre_prepared;
  if (!inst.prepares.reached(value, quorum(ctx))) return;
  inst.prepared = true;
  // Remember the highest view in which this sequence prepared, for VCs.
  auto& slot = prepared_at_[seq];
  if (view >= slot.first) slot = {view, value};

  if (!inst.sent_commit) {
    inst.sent_commit = true;
    const auto commit = ctx.make_payload<Commit>(
        view, seq, value,
        ctx.signer().sign(id_, hash_words({0x434dULL, view, seq, value})));
    ctx.broadcast(commit);
  }
  maybe_commit(view, seq, value, ctx);
}

void PbftNode::handle_commit(const Message& msg, Context& ctx) {
  const auto& m = *msg.as<Commit>();
  if (!ctx.signer().verify(m.sig) || m.sig.signer != msg.src) return;
  // Commits are accepted for any view: a 2f+1 commit certificate is final
  // regardless of the receiver's local view (this lets laggards catch up).
  instance(m.view, m.seq).commits.add(m.value, msg.src);
  maybe_commit(m.view, m.seq, m.value, ctx);
}

void PbftNode::maybe_commit(View view, std::uint64_t seq, Value value, Context& ctx) {
  Instance& inst = instance(view, seq);
  if (inst.committed.has_value()) return;
  if (!inst.commits.reached(value, quorum(ctx))) return;
  inst.committed = value;
  try_decide(seq, value, ctx);
}

void PbftNode::try_decide(std::uint64_t seq, Value value, Context& ctx) {
  if (seq != working_seq_) return;  // decide in order; later seqs flush below
  ctx.report_decision(value);
  ++working_seq_;
  // Progress: reset the view-change back-off and re-arm the view timer.
  timeout_ = base_timeout_;
  in_view_change_ = false;
  start_view_timer(ctx);
  if (leader_of(view_, ctx) == id_) propose(ctx);

  // Flush any sequences that already committed out of order.
  for (const auto& [key, inst] : instances_) {
    if (key.second == working_seq_ && inst.committed.has_value()) {
      try_decide(working_seq_, *inst.committed, ctx);
      break;
    }
  }
}

void PbftNode::on_timer(const TimerEvent& ev, Context& ctx) {
  if (ev.tag != kViewTimerTag || ev.id != view_timer_) return;
  initiate_view_change(std::max(view_, target_view_) + 1, ctx);
}

void PbftNode::initiate_view_change(View target, Context& ctx) {
  in_view_change_ = true;
  target_view_ = target;
  // PBFT doubles its timeout on every view change, capped so view-change
  // messages keep being retransmitted at a bounded interval.
  timeout_ = std::min(timeout_ * 2, base_timeout_ << kMaxTimeoutDoublings);
  start_view_timer(ctx);

  VcInfo info;
  info.seq = working_seq_;
  if (const auto it = prepared_at_.find(working_seq_); it != prepared_at_.end()) {
    info.has_prepared = true;
    info.prepared_view = it->second.first;
    info.prepared_value = it->second.second;
  }
  const auto vc = ctx.make_payload<ViewChange>(
      target, info.seq, info.has_prepared, info.prepared_view, info.prepared_value,
      ctx.signer().sign(id_, hash_words({0x5643ULL, target, info.seq,
                                         static_cast<std::uint64_t>(info.has_prepared),
                                         info.prepared_view, info.prepared_value})));
  ctx.broadcast(vc);
}

void PbftNode::handle_view_change(const Message& msg, Context& ctx) {
  const auto& m = *msg.as<ViewChange>();
  if (!ctx.signer().verify(m.sig) || m.sig.signer != msg.src) return;
  // A view-change whose working sequence trails ours marks the sender as a
  // laggard (typically a node recovering from a crash or partition); hand
  // it the commits it slept through before the usual view bookkeeping.
  if (fault_catch_up_ && m.seq < working_seq_) send_catch_up(msg.src, m.seq, ctx);
  if (m.new_view <= view_) return;

  view_changes_[m.new_view][msg.src] =
      VcInfo{m.has_prepared, m.prepared_view, m.prepared_value, m.seq};
  latest_vc_of_[msg.src] = std::max(latest_vc_of_[msg.src], m.new_view);

  // Join rule: if f+1 nodes are trying to move past our target view, join
  // the smallest such view (keeps laggards from stalling the view change).
  const View my_target = in_view_change_ ? target_view_ : view_;
  std::vector<View> ahead;
  for (const auto& [node, v] : latest_vc_of_) {
    if (v > my_target) ahead.push_back(v);
  }
  if (ahead.size() >= ctx.f() + 1) {
    const View join = *std::min_element(ahead.begin(), ahead.end());
    if (!in_view_change_ || join > target_view_) initiate_view_change(join, ctx);
  }

  maybe_complete_view_change(m.new_view, ctx);
}

void PbftNode::send_catch_up(NodeId dst, std::uint64_t from_seq, Context& ctx) {
  // Re-send our commit for every decided sequence the laggard is missing.
  // Commit certificates are final in any view (see handle_commit), so once
  // 2f+1 peers answer, the laggard decides and flushes forward.
  for (const auto& [key, inst] : instances_) {
    const auto& [view, seq] = key;
    if (seq < from_seq || seq >= working_seq_) continue;
    if (!inst.committed.has_value()) continue;
    const Value value = *inst.committed;
    ctx.send(dst, ctx.make_payload<Commit>(
                      view, seq, value,
                      ctx.signer().sign(
                          id_, hash_words({0x434dULL, view, seq, value}))));
  }
}

void PbftNode::maybe_complete_view_change(View target, Context& ctx) {
  if (leader_of(target, ctx) != id_) return;
  const auto it = view_changes_.find(target);
  if (it == view_changes_.end() || it->second.size() < quorum(ctx)) return;
  if (!new_view_sent_.mark(target)) return;

  // Choose the value prepared in the highest view among the certificates,
  // for the highest working sequence reported.
  std::uint64_t seq = working_seq_;
  for (const auto& [node, info] : it->second) seq = std::max(seq, info.seq);
  bool has_prepared = false;
  View best_view = 0;
  Value best_value = kBottom;
  for (const auto& [node, info] : it->second) {
    if (info.has_prepared && info.seq == seq &&
        (!has_prepared || info.prepared_view > best_view)) {
      has_prepared = true;
      best_view = info.prepared_view;
      best_value = info.prepared_value;
    }
  }
  const auto nv = ctx.make_payload<NewView>(
      target, seq, has_prepared, best_value,
      ctx.signer().sign(id_, hash_words({0x4e56ULL, target, seq,
                                         static_cast<std::uint64_t>(has_prepared),
                                         best_value})));
  ctx.broadcast(nv);
}

void PbftNode::handle_new_view(const Message& msg, Context& ctx) {
  const auto& m = *msg.as<NewView>();
  if (!ctx.signer().verify(m.sig) || m.sig.signer != msg.src) return;
  if (msg.src != leader_of(m.new_view, ctx)) return;
  if (m.new_view <= view_) return;
  enter_view(m.new_view, ctx);
  if (m.has_prepared && m.seq >= working_seq_) {
    prepared_at_[m.seq] = {m.new_view, m.prepared_value};
  }
  if (leader_of(view_, ctx) == id_) propose(ctx);
}

void PbftNode::enter_view(View v, Context& ctx) {
  view_ = v;
  in_view_change_ = false;
  target_view_ = std::max(target_view_, v);
  ctx.record_view(v);
  start_view_timer(ctx);
  // Act on any pre-prepares/prepares that arrived for this view while we
  // were still completing the view change.
  for (auto& [key, inst] : instances_) {
    if (key.first != v || !inst.pre_prepared.has_value()) continue;
    if (key.second < working_seq_) continue;
    send_prepare(v, key.second, *inst.pre_prepared, ctx);
    maybe_prepare(v, key.second, ctx);
  }
}

std::unique_ptr<Node> make_pbft_node(NodeId id, const SimConfig& cfg) {
  return std::make_unique<PbftNode>(id, cfg);
}

}  // namespace bftsim::pbft

// Practical Byzantine Fault Tolerance (Castro & Liskov, OSDI '99).
//
// Partially-synchronous SMR with f < n/3. The implementation follows the
// classic three-phase structure (pre-prepare / prepare / commit, quorum
// 2f+1) with a view-change sub-protocol whose timeout doubles on every
// view change (the doubling is what makes PBFT live under partial
// synchrony) and resets after progress. Sequence numbers are decided in
// order; the leader of the current view proposes the next sequence as soon
// as the previous one decides.
//
// Simplifications relative to a production deployment (documented in
// DESIGN.md): clients and request batching are modeled as a built-in
// stream of proposals; checkpoints/garbage collection are unnecessary at
// simulation scale; the new-view message carries the single highest
// prepared value rather than full prepared-certificate sets (equivalent
// here because sequences are decided one at a time).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "core/config.hpp"
#include "crypto/signature.hpp"
#include "net/message.hpp"
#include "protocols/common/quorum.hpp"
#include "protocols/node.hpp"

namespace bftsim::pbft {

// --- messages ---------------------------------------------------------------

struct PrePrepare final : Payload {
  static constexpr PayloadType kType = PayloadType::kPbftPrePrepare;
  View view = 0;
  std::uint64_t seq = 0;
  Value value = kBottom;
  /// Wire weight of the batched client requests the proposal carries
  /// (0 without a workload, and on digest-only re-proposals).
  std::uint32_t body_bytes = 0;
  Signature sig;

  PrePrepare(View v, std::uint64_t s, Value val, Signature signature,
             std::uint32_t body = 0)
      : Payload(kType), view(v), seq(s), value(val), body_bytes(body),
        sig(signature) {}
  std::string_view type() const noexcept override { return "pbft/pre-prepare"; }
  std::uint64_t digest() const noexcept override {
    return hash_words({0x5050ULL, view, seq, value});
  }
  std::size_t wire_size() const noexcept override { return 192 + body_bytes; }
};

struct Prepare final : Payload {
  static constexpr PayloadType kType = PayloadType::kPbftPrepare;
  View view = 0;
  std::uint64_t seq = 0;
  Value value = kBottom;
  Signature sig;

  Prepare(View v, std::uint64_t s, Value val, Signature signature)
      : Payload(kType), view(v), seq(s), value(val), sig(signature) {}
  std::string_view type() const noexcept override { return "pbft/prepare"; }
  std::uint64_t digest() const noexcept override {
    return hash_words({0x5052ULL, view, seq, value});
  }
  std::size_t wire_size() const noexcept override { return 96; }
};

struct Commit final : Payload {
  static constexpr PayloadType kType = PayloadType::kPbftCommit;
  View view = 0;
  std::uint64_t seq = 0;
  Value value = kBottom;
  Signature sig;

  Commit(View v, std::uint64_t s, Value val, Signature signature)
      : Payload(kType), view(v), seq(s), value(val), sig(signature) {}
  std::string_view type() const noexcept override { return "pbft/commit"; }
  std::uint64_t digest() const noexcept override {
    return hash_words({0x434dULL, view, seq, value});
  }
  std::size_t wire_size() const noexcept override { return 96; }
};

struct ViewChange final : Payload {
  static constexpr PayloadType kType = PayloadType::kPbftViewChange;
  View new_view = 0;
  std::uint64_t seq = 0;  ///< the sender's working sequence number
  bool has_prepared = false;
  View prepared_view = 0;
  Value prepared_value = kBottom;
  Signature sig;

  ViewChange(View nv, std::uint64_t s, bool hp, View pv, Value pval, Signature signature)
      : Payload(kType), new_view(nv), seq(s), has_prepared(hp), prepared_view(pv),
        prepared_value(pval), sig(signature) {}
  std::string_view type() const noexcept override { return "pbft/view-change"; }
  std::uint64_t digest() const noexcept override {
    return hash_words({0x5643ULL, new_view, seq,
                       static_cast<std::uint64_t>(has_prepared), prepared_view,
                       prepared_value});
  }
  std::size_t wire_size() const noexcept override { return 256; }
};

struct NewView final : Payload {
  static constexpr PayloadType kType = PayloadType::kPbftNewView;
  View new_view = 0;
  std::uint64_t seq = 0;
  bool has_prepared = false;
  Value prepared_value = kBottom;
  Signature sig;

  NewView(View nv, std::uint64_t s, bool hp, Value pval, Signature signature)
      : Payload(kType), new_view(nv), seq(s), has_prepared(hp), prepared_value(pval),
        sig(signature) {}
  std::string_view type() const noexcept override { return "pbft/new-view"; }
  std::uint64_t digest() const noexcept override {
    return hash_words({0x4e56ULL, new_view, seq,
                       static_cast<std::uint64_t>(has_prepared), prepared_value});
  }
  std::size_t wire_size() const noexcept override { return 320; }
};

// --- node -------------------------------------------------------------------

class PbftNode final : public Node {
 public:
  /// `quorum_slack` is subtracted from every 2f+1 quorum (prepare, commit,
  /// view change). It exists solely so the fuzzer's canary variant
  /// ("pbft-canary", quorum 2f — see src/explore/canary.hpp) can exercise
  /// the safety oracles against a known-unsound protocol; production
  /// configurations always run with slack 0.
  PbftNode(NodeId id, const SimConfig& cfg, std::uint32_t quorum_slack = 0);

  void on_start(Context& ctx) override;
  void on_message(const Message& msg, Context& ctx) override;
  void on_timer(const TimerEvent& ev, Context& ctx) override;

  /// Multiple of λ used as the base view timeout (pre-prepare + prepare +
  /// commit is three one-way delays; 6 leaves headroom for quorum tails).
  static constexpr int kTimeoutFactor = 6;
  /// Upper bound on the doubled timeout, as production deployments use
  /// (Castro & Liskov prescribe doubling; implementations cap the retry
  /// interval so view changes keep being retransmitted after outages).
  static constexpr int kMaxTimeoutDoublings = 2;

 private:
  struct Instance {
    std::optional<Value> pre_prepared;
    QuorumTracker<Value> prepares;
    QuorumTracker<Value> commits;
    bool prepared = false;
    bool sent_prepare = false;
    bool sent_commit = false;
    std::optional<Value> committed;  ///< set when 2f+1 commits seen
  };

  [[nodiscard]] NodeId leader_of(View v, Context& ctx) const noexcept {
    return static_cast<NodeId>(v % ctx.n());
  }
  [[nodiscard]] std::uint32_t quorum(Context& ctx) const noexcept {
    return 2 * ctx.f() + 1 - quorum_slack_;
  }
  [[nodiscard]] Instance& instance(View view, std::uint64_t seq) {
    return instances_[{view, seq}];
  }

  void start_view_timer(Context& ctx);
  void propose(Context& ctx);
  void send_prepare(View view, std::uint64_t seq, Value value, Context& ctx);
  void handle_pre_prepare(const Message& msg, Context& ctx);
  void handle_prepare(const Message& msg, Context& ctx);
  void handle_commit(const Message& msg, Context& ctx);
  void handle_view_change(const Message& msg, Context& ctx);
  void handle_new_view(const Message& msg, Context& ctx);
  void maybe_prepare(View view, std::uint64_t seq, Context& ctx);
  void maybe_commit(View view, std::uint64_t seq, Value value, Context& ctx);
  void try_decide(std::uint64_t seq, Value value, Context& ctx);
  void initiate_view_change(View target, Context& ctx);
  void maybe_complete_view_change(View target, Context& ctx);
  void enter_view(View v, Context& ctx);
  void send_catch_up(NodeId dst, std::uint64_t from_seq, Context& ctx);

  NodeId id_;
  std::uint32_t quorum_slack_ = 0;  ///< nonzero only in the fuzzer canary
  View view_ = 0;
  bool in_view_change_ = false;
  View target_view_ = 0;
  std::uint64_t working_seq_ = 0;  ///< next sequence to decide
  Time timeout_ = 0;               ///< current view timeout (doubles on VC)
  Time base_timeout_ = 0;
  TimerId view_timer_ = 0;
  // Commit retransmission toward laggards (PBFT's state-transfer mechanism,
  // reduced to what the simulation needs). Without it a node that slept
  // through a sequence can never rebuild the 2f+1 commit certificate —
  // nobody re-sends commits — so crash/recover would permanently forfeit
  // liveness for the recovered node. Only enabled when fault injection is
  // active, which keeps fault-free runs byte-identical to the goldens.
  bool fault_catch_up_ = false;

  std::map<std::pair<View, std::uint64_t>, Instance> instances_;

  // View-change bookkeeping.
  struct VcInfo {
    bool has_prepared = false;
    View prepared_view = 0;
    Value prepared_value = kBottom;
    std::uint64_t seq = 0;
  };
  std::map<View, std::map<NodeId, VcInfo>> view_changes_;
  std::map<NodeId, View> latest_vc_of_;  ///< join rule bookkeeping
  OnceSet<View> new_view_sent_;

  // Highest prepared value for the working sequence (carried in VCs).
  std::map<std::uint64_t, std::pair<View, Value>> prepared_at_;
};

[[nodiscard]] std::unique_ptr<Node> make_pbft_node(NodeId id, const SimConfig& cfg);

}  // namespace bftsim::pbft

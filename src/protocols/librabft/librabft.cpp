#include "protocols/librabft/librabft.hpp"

#include <algorithm>

#include "core/log.hpp"

namespace bftsim::librabft {

namespace {
constexpr std::uint64_t kViewTimerTag = 1;

using hotstuff::Proposal;
using hotstuff::Vote;
}  // namespace

LibraBftNode::LibraBftNode(NodeId id, const SimConfig& cfg) : id_(id), core_(id) {
  base_duration_ = from_ms(cfg.lambda_ms) * kBaseFactor;
}

void LibraBftNode::on_start(Context& ctx) {
  ctx.record_view(cur_view_);
  restart_timer(ctx);
  if (leader_of(cur_view_, ctx) == id_) propose(ctx);
}

void LibraBftNode::restart_timer(Context& ctx) {
  if (timer_ != 0) ctx.cancel_timer(timer_);
  const Time duration = base_duration_
                        << std::min(backoff_, kMaxBackoff);
  timer_ = ctx.set_timer(duration, kViewTimerTag);
}

void LibraBftNode::advance_to(View v, bool progress, Context& ctx) {
  if (v <= cur_view_) return;
  cur_view_ = v;
  if (progress) backoff_ = 0;
  ctx.record_view(cur_view_);
  restart_timer(ctx);
  if (leader_of(cur_view_, ctx) == id_) propose(ctx);
  pending_.erase(pending_.begin(), pending_.lower_bound(cur_view_));
  if (const auto it = pending_.find(cur_view_); it != pending_.end()) {
    const Block block = it->second;
    pending_.erase(it);
    try_vote(block, ctx);
  }
}

void LibraBftNode::try_vote(const Block& block, Context& ctx) {
  if (block.view != cur_view_ || block.view <= last_voted_) return;
  if (core_.missing_ancestor(block) || !core_.safe_to_vote(block)) return;
  last_voted_ = block.view;
  const Signature vote_sig =
      ctx.signer().sign(id_, hash_words({0x564fULL, block.view, block.id}));
  ctx.send(leader_of(block.view + 1, ctx),
           ctx.make_payload<Vote>(block.view, block.id, vote_sig));
}

void LibraBftNode::propose(Context& ctx) {
  Block b = core_.make_block(cur_view_, ctx);
  core_.store(b);
  ctx.broadcast(ctx.make_payload<Proposal>(b, ctx.signer().sign(id_, b.digest())));
}

void LibraBftNode::on_message(const Message& msg, Context& ctx) {
  if (core_.handle_catchup(msg, ctx)) return;
  switch (msg.type_id()) {
    case PayloadType::kHotStuffProposal: handle_proposal(msg, ctx); break;
    case PayloadType::kHotStuffVote: handle_vote(msg, ctx); break;
    case PayloadType::kLibraTimeout: handle_timeout(msg, ctx); break;
    case PayloadType::kLibraTimeoutCertificate:
      handle_tc(msg.as<TcMsg>()->tc, ctx);
      break;
    default: break;
  }
}

void LibraBftNode::handle_proposal(const Message& msg, Context& ctx) {
  const auto& m = *msg.as<Proposal>();
  if (!ctx.signer().verify(m.sig) || m.sig.signer != msg.src) return;
  if (leader_of(m.block.view, ctx) != msg.src) return;

  core_.store(m.block);
  if (core_.missing_ancestor(m.block)) {
    core_.request_block(m.block.parent, msg.src, ctx);
  }

  // Certificate-driven synchronization: a QC for view v moves us to v+1.
  const View justify_view = m.block.justify.view;
  core_.process_qc(m.block.justify, ctx);
  if (justify_view >= cur_view_) advance_to(justify_view + 1, /*progress=*/true, ctx);

  if (m.block.view > cur_view_) {
    // Behind (e.g. the TC that advanced the proposer is still in flight):
    // park the proposal until a certificate moves us there.
    pending_.emplace(m.block.view, m.block);
    return;
  }
  try_vote(m.block, ctx);
}

void LibraBftNode::handle_vote(const Message& msg, Context& ctx) {
  const auto& m = *msg.as<Vote>();
  if (!ctx.signer().verify(m.sig) || m.sig.signer != msg.src) return;
  if (leader_of(m.view + 1, ctx) != id_) return;

  const auto qc = core_.add_vote(m.view, m.block_id, msg.src, ctx);
  if (!qc.has_value()) return;
  core_.process_qc(*qc, ctx);
  if (qc->view >= cur_view_) advance_to(qc->view + 1, /*progress=*/true, ctx);
}

void LibraBftNode::handle_timeout(const Message& msg, Context& ctx) {
  const auto& m = *msg.as<TimeoutMsg>();
  if (!ctx.signer().verify(m.sig) || m.sig.signer != msg.src) return;
  if (m.view < cur_view_) return;
  if (!timeout_votes_.add_reaches(m.view, msg.src, Core::quorum(ctx))) return;
  if (!tc_formed_.mark(m.view)) return;

  TimeoutCert tc;
  tc.view = m.view;
  const auto& voters = timeout_votes_.voters(m.view);
  tc.signers.assign(voters.begin(), voters.end());
  // Rebroadcast the certificate so laggards jump with us.
  ctx.broadcast(ctx.make_payload<TcMsg>(tc), /*include_self=*/false);
  handle_tc(tc, ctx);
}

void LibraBftNode::handle_tc(const TimeoutCert& tc, Context& ctx) {
  if (!tc.valid(Core::quorum(ctx))) return;
  if (tc.view < cur_view_) return;
  advance_to(tc.view + 1, /*progress=*/false, ctx);
}

void LibraBftNode::on_timer(const TimerEvent& ev, Context& ctx) {
  if (ev.tag != kViewTimerTag || ev.id != timer_) return;
  ++backoff_;  // exponential back-off until a QC resets it
  restart_timer(ctx);
  const Signature sig =
      ctx.signer().sign(id_, hash_words({0x544fULL, cur_view_}));
  ctx.broadcast(ctx.make_payload<TimeoutMsg>(cur_view_, sig));
}

std::unique_ptr<Node> make_librabft_node(NodeId id, const SimConfig& cfg) {
  return std::make_unique<LibraBftNode>(id, cfg);
}

}  // namespace bftsim::librabft

// LibraBFT (the Libra/Diem consensus protocol).
//
// Chained HotStuff with a message-driven PaceMaker: when a node's view
// timer expires it broadcasts a timeout message; on collecting a quorum of
// timeouts for a view it forms a TimeoutCertificate (TC), rebroadcasts it,
// and every node that sees the TC advances — so views re-synchronize
// within one message delay after GST. This is the difference the paper
// highlights against HotStuff+NS: LibraBFT guarantees a time bound on
// termination after GST and recovers quickly from partitions and
// underestimated timeouts (Figs. 5 and 6).
#pragma once

#include <map>
#include <memory>

#include "core/config.hpp"
#include "protocols/hotstuff/core.hpp"
#include "protocols/node.hpp"

namespace bftsim::librabft {

using hotstuff::Block;
using hotstuff::Core;

struct TimeoutMsg final : Payload {
  static constexpr PayloadType kType = PayloadType::kLibraTimeout;
  View view = 0;
  Signature sig;

  TimeoutMsg(View v, Signature s) : Payload(kType), view(v), sig(s) {}
  std::string_view type() const noexcept override { return "librabft/timeout"; }
  std::uint64_t digest() const noexcept override {
    return hash_words({0x544fULL, view});
  }
  std::size_t wire_size() const noexcept override { return 96; }
};

struct TcMsg final : Payload {
  static constexpr PayloadType kType = PayloadType::kLibraTimeoutCertificate;
  TimeoutCert tc;

  explicit TcMsg(TimeoutCert t) : Payload(kType), tc(std::move(t)) {}
  std::string_view type() const noexcept override { return "librabft/tc"; }
  std::uint64_t digest() const noexcept override { return tc.digest(); }
  std::size_t wire_size() const noexcept override { return 256; }
};

class LibraBftNode final : public Node {
 public:
  LibraBftNode(NodeId id, const SimConfig& cfg);

  void on_start(Context& ctx) override;
  void on_message(const Message& msg, Context& ctx) override;
  void on_timer(const TimerEvent& ev, Context& ctx) override;

  /// Base view duration as a multiple of λ.
  static constexpr int kBaseFactor = 2;
  /// Cap on the local back-off exponent: bounded retry intervals keep
  /// timeout messages flowing, so views re-synchronize within seconds of a
  /// partition healing (the contrast with HotStuff+NS in Fig. 6).
  static constexpr int kMaxBackoff = 2;

 private:
  [[nodiscard]] NodeId leader_of(View v, Context& ctx) const noexcept {
    return static_cast<NodeId>(v % ctx.n());
  }

  void restart_timer(Context& ctx);
  void advance_to(View v, bool progress, Context& ctx);
  void propose(Context& ctx);
  void try_vote(const Block& block, Context& ctx);
  void handle_proposal(const Message& msg, Context& ctx);
  void handle_vote(const Message& msg, Context& ctx);
  void handle_timeout(const Message& msg, Context& ctx);
  void handle_tc(const TimeoutCert& tc, Context& ctx);

  NodeId id_;
  Core core_;
  View cur_view_ = 1;
  View last_voted_ = 0;
  Time base_duration_ = 0;
  int backoff_ = 0;  ///< consecutive local timeouts without progress
  TimerId timer_ = 0;
  QuorumTracker<View> timeout_votes_;
  OnceSet<View> tc_formed_;
  /// Proposals for views we have not entered yet (a TC/QC that lets us
  /// enter may still be in flight).
  std::map<View, Block> pending_;
};

[[nodiscard]] std::unique_ptr<Node> make_librabft_node(NodeId id,
                                                       const SimConfig& cfg);

}  // namespace bftsim::librabft

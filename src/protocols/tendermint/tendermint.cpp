#include "protocols/tendermint/tendermint.hpp"

#include "core/log.hpp"

namespace bftsim::tendermint {

TendermintNode::TendermintNode(NodeId id, const SimConfig&) : id_(id) {}

void TendermintNode::on_start(Context& ctx) { start_round(0, ctx); }

void TendermintNode::start_round(std::uint64_t round, Context& ctx) {
  round_ = round;
  step_ = Step::kPropose;
  ctx.record_view(height_ * 64 + round);  // height-dominant view trace

  if (proposer_of(height_, round_, ctx) == id_) {
    // Propose validValue if a newer prevote quorum certified one, else mint
    // fresh — batching pending client requests into the fresh proposal.
    Value value = valid_value_;
    std::uint32_t body = 0;
    if (value == kBottom) {
      const ProposalBatch batch = ctx.next_proposal(
          height_, hash_words({0x544dULL, height_, round_, id_}));
      value = batch.value;
      body = batch.body_bytes;
    }
    const Signature sig = ctx.signer().sign(
        id_, hash_words({0x5450ULL, height_, round_, value,
                         static_cast<std::uint64_t>(valid_round_)}));
    ctx.broadcast(ctx.make_payload<TmProposal>(height_, round_, value,
                                               valid_round_, sig, body));
  }
  // timeout_propose: prevote nil if the proposer stays silent.
  ctx.set_timer(timeout_of(round_, ctx), tag_of(round_, Step::kPropose));
}

void TendermintNode::broadcast_prevote(Value value, Context& ctx) {
  if (!prevoted_.mark(round_)) return;
  step_ = Step::kPrevote;
  const Signature sig =
      ctx.signer().sign(id_, hash_words({0x5456ULL, height_, round_, value}));
  ctx.broadcast(ctx.make_payload<TmPrevote>(height_, round_, value, sig));
  // timeout_prevote: precommit nil if no quorum materializes.
  ctx.set_timer(timeout_of(round_, ctx), tag_of(round_, Step::kPrevote));
}

void TendermintNode::broadcast_precommit(Value value, Context& ctx) {
  if (!precommitted_.mark(round_)) return;
  step_ = Step::kPrecommit;
  if (value != kBottom) {
    locked_value_ = value;
    locked_round_ = static_cast<std::int64_t>(round_);
  }
  const Signature sig =
      ctx.signer().sign(id_, hash_words({0x5443ULL, height_, round_, value}));
  ctx.broadcast(ctx.make_payload<TmPrecommit>(height_, round_, value, sig));
  // timeout_precommit: advance to the next round if the height stalls.
  ctx.set_timer(timeout_of(round_, ctx), tag_of(round_, Step::kPrecommit));
}

void TendermintNode::on_timer(const TimerEvent& ev, Context& ctx) {
  const std::uint64_t round = ev.tag / 4;
  const auto step = static_cast<Step>(ev.tag % 4);
  if (round != round_ || decided_this_height_) return;

  switch (step) {
    case Step::kPropose:
      // Silent/slow proposer: prevote nil (unless we already prevoted).
      if (step_ == Step::kPropose) broadcast_prevote(kBottom, ctx);
      break;
    case Step::kPrevote:
      if (step_ == Step::kPrevote) broadcast_precommit(kBottom, ctx);
      break;
    case Step::kPrecommit:
      if (step_ == Step::kPrecommit) start_round(round_ + 1, ctx);
      break;
  }
}

void TendermintNode::on_message(const Message& msg, Context& ctx) {
  switch (msg.type_id()) {
    case PayloadType::kTendermintProposal: handle_proposal(msg, ctx); break;
    case PayloadType::kTendermintPrevote: handle_prevote(msg, ctx); break;
    case PayloadType::kTendermintPrecommit: handle_precommit(msg, ctx); break;
    default: break;
  }
}

void TendermintNode::handle_proposal(const Message& msg, Context& ctx) {
  const auto& m = *msg.as<TmProposal>();
  if (!ctx.signer().verify(m.sig) || m.sig.signer != msg.src) return;
  if (m.height != height_) return;
  if (msg.src != proposer_of(m.height, m.round, ctx)) return;
  proposals_.emplace(m.round, std::pair{m.value, m.valid_round});
  try_prevote(ctx);
}

void TendermintNode::try_prevote(Context& ctx) {
  if (step_ != Step::kPropose) return;
  const auto it = proposals_.find(round_);
  if (it == proposals_.end()) return;
  const auto [value, valid_round] = it->second;

  // Locking rule: accept a fresh proposal only if we are not locked on a
  // different value; accept a re-proposal when its valid-round quorum is
  // at least as new as our lock.
  bool acceptable = false;
  if (valid_round < 0) {
    acceptable = locked_round_ == -1 || locked_value_ == value;
  } else {
    acceptable = locked_round_ <= valid_round || locked_value_ == value;
    // The valid-round prevote quorum itself should be visible.
    acceptable = acceptable &&
                 prevotes_.reached({static_cast<std::uint64_t>(valid_round), value},
                                   quorum(ctx));
  }
  broadcast_prevote(acceptable ? value : kBottom, ctx);
}

void TendermintNode::handle_prevote(const Message& msg, Context& ctx) {
  const auto& m = *msg.as<TmPrevote>();
  if (!ctx.signer().verify(m.sig) || m.sig.signer != msg.src) return;
  if (m.height != height_) return;
  prevotes_.add({m.round, m.value}, msg.src);
  if (m.value != kBottom) maybe_precommit(m.round, m.value, ctx);
  // A nil-prevote quorum lets the prevote step conclude early with nil.
  if (m.round == round_ && step_ == Step::kPrevote &&
      prevotes_.reached({m.round, kBottom}, quorum(ctx))) {
    broadcast_precommit(kBottom, ctx);
  }
  try_prevote(ctx);  // a late valid-round quorum may unblock the proposal
}

void TendermintNode::maybe_precommit(std::uint64_t round, Value value,
                                     Context& ctx) {
  if (!prevotes_.reached({round, value}, quorum(ctx))) return;
  // 2f+1 prevotes for v: v becomes the valid value of this height.
  if (static_cast<std::int64_t>(round) > valid_round_) {
    valid_value_ = value;
    valid_round_ = static_cast<std::int64_t>(round);
  }
  if (round == round_ &&
      (step_ == Step::kPrevote ||
       (step_ == Step::kPropose && proposals_.contains(round_)))) {
    broadcast_precommit(value, ctx);
  }
}

void TendermintNode::handle_precommit(const Message& msg, Context& ctx) {
  const auto& m = *msg.as<TmPrecommit>();
  if (!ctx.signer().verify(m.sig) || m.sig.signer != msg.src) return;
  if (m.height != height_) return;
  precommits_.add({m.round, m.value}, msg.src);
  any_precommits_.add(m.round, msg.src);
  if (m.value != kBottom) maybe_decide(m.round, m.value, ctx);
  // 2f+1 precommits of any kind mean a quorum has finished this round: if
  // nothing decided, move on (regardless of our own step — the peers have
  // already moved past it; this is what timeout_precommit + the jump rule
  // achieve in the spec, without waiting out the timer).
  if (m.round == round_ && any_precommits_.reached(m.round, quorum(ctx)) &&
      !decided_this_height_ &&
      (m.value == kBottom || !precommits_.reached({m.round, m.value}, quorum(ctx)))) {
    start_round(round_ + 1, ctx);
  }
}

void TendermintNode::maybe_decide(std::uint64_t round, Value value, Context& ctx) {
  if (decided_this_height_) return;
  if (!precommits_.reached({round, value}, quorum(ctx))) return;
  decided_this_height_ = true;
  ctx.report_decision(value);
  advance_height(value, ctx);
}

void TendermintNode::advance_height(Value, Context& ctx) {
  ++height_;
  decided_this_height_ = false;
  locked_value_ = kBottom;
  locked_round_ = -1;
  valid_value_ = kBottom;
  valid_round_ = -1;
  proposals_.clear();
  prevotes_.clear();
  precommits_.clear();
  any_precommits_.clear();
  prevoted_ = OnceSet<std::uint64_t>{};
  precommitted_ = OnceSet<std::uint64_t>{};
  start_round(0, ctx);
}

std::unique_ptr<Node> make_tendermint_node(NodeId id, const SimConfig& cfg) {
  return std::make_unique<TendermintNode>(id, cfg);
}

}  // namespace bftsim::tendermint

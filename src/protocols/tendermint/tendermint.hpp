// Tendermint (Buchman, Kwon, Milosevic — "The latest gossip on BFT
// consensus", 2018; the paper's refs [24]/[26]).
//
// Partially-synchronous SMR with f < n/3, organized per height into rounds
// of three steps (propose / prevote / precommit) with rotating proposers.
// Liveness comes from *linearly* growing round timeouts (initial + r·Δ) —
// a third pacemaker design point between HotStuff+NS's message-free
// exponential back-off and LibraBFT's timeout certificates. Safety comes
// from the locking rules: a validator that precommits v locks on it and
// only prevotes something else when the proposal carries a valid-round
// proof that a newer 2f+1 prevote quorum exists (validValue/validRound).
//
// This protocol is an extension beyond the paper's eight (registered as
// "tendermint"), included because the paper cites Tendermint twice and it
// slots naturally into the comparative experiments.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "core/config.hpp"
#include "net/message.hpp"
#include "protocols/common/quorum.hpp"
#include "protocols/node.hpp"

namespace bftsim::tendermint {

/// Round identifier within a height; nil votes carry kBottom as value.
struct TmProposal final : Payload {
  static constexpr PayloadType kType = PayloadType::kTendermintProposal;
  std::uint64_t height = 0;
  std::uint64_t round = 0;
  Value value = 0;
  std::int64_t valid_round = -1;  ///< -1 = fresh proposal
  std::uint32_t body_bytes = 0;  ///< batched client requests (0 w/o workload)
  Signature sig;

  TmProposal(std::uint64_t h, std::uint64_t r, Value v, std::int64_t vr,
             Signature s, std::uint32_t body = 0)
      : Payload(kType), height(h), round(r), value(v), valid_round(vr),
        body_bytes(body), sig(s) {}
  std::string_view type() const noexcept override { return "tendermint/proposal"; }
  std::uint64_t digest() const noexcept override {
    return hash_words({0x5450ULL, height, round, value,
                       static_cast<std::uint64_t>(valid_round)});
  }
  std::size_t wire_size() const noexcept override { return 256 + body_bytes; }
};

struct TmPrevote final : Payload {
  static constexpr PayloadType kType = PayloadType::kTendermintPrevote;
  std::uint64_t height = 0;
  std::uint64_t round = 0;
  Value value = kBottom;  ///< kBottom = nil
  Signature sig;

  TmPrevote(std::uint64_t h, std::uint64_t r, Value v, Signature s)
      : Payload(kType), height(h), round(r), value(v), sig(s) {}
  std::string_view type() const noexcept override { return "tendermint/prevote"; }
  std::uint64_t digest() const noexcept override {
    return hash_words({0x5456ULL, height, round, value});
  }
  std::size_t wire_size() const noexcept override { return 96; }
};

struct TmPrecommit final : Payload {
  static constexpr PayloadType kType = PayloadType::kTendermintPrecommit;
  std::uint64_t height = 0;
  std::uint64_t round = 0;
  Value value = kBottom;  ///< kBottom = nil
  Signature sig;

  TmPrecommit(std::uint64_t h, std::uint64_t r, Value v, Signature s)
      : Payload(kType), height(h), round(r), value(v), sig(s) {}
  std::string_view type() const noexcept override { return "tendermint/precommit"; }
  std::uint64_t digest() const noexcept override {
    return hash_words({0x5443ULL, height, round, value});
  }
  std::size_t wire_size() const noexcept override { return 96; }
};

class TendermintNode final : public Node {
 public:
  TendermintNode(NodeId id, const SimConfig& cfg);

  void on_start(Context& ctx) override;
  void on_message(const Message& msg, Context& ctx) override;
  void on_timer(const TimerEvent& ev, Context& ctx) override;

  /// Initial step timeout as a multiple of λ; grows by λ/2 per round.
  static constexpr int kInitialFactor = 2;

 private:
  enum class Step : std::uint8_t { kPropose, kPrevote, kPrecommit };

  [[nodiscard]] NodeId proposer_of(std::uint64_t height, std::uint64_t round,
                                   Context& ctx) const noexcept {
    return static_cast<NodeId>((height + round) % ctx.n());
  }
  [[nodiscard]] std::uint32_t quorum(Context& ctx) const noexcept {
    return 2 * ctx.f() + 1;
  }
  [[nodiscard]] Time timeout_of(std::uint64_t round, Context& ctx) const noexcept {
    return kInitialFactor * ctx.lambda() +
           static_cast<Time>(round) * ctx.lambda() / 2;
  }
  [[nodiscard]] std::uint64_t tag_of(std::uint64_t round, Step step) const noexcept {
    return round * 4 + static_cast<std::uint64_t>(step);
  }

  void start_round(std::uint64_t round, Context& ctx);
  void broadcast_prevote(Value value, Context& ctx);
  void broadcast_precommit(Value value, Context& ctx);
  void handle_proposal(const Message& msg, Context& ctx);
  void handle_prevote(const Message& msg, Context& ctx);
  void handle_precommit(const Message& msg, Context& ctx);
  void try_prevote(Context& ctx);
  void maybe_precommit(std::uint64_t round, Value value, Context& ctx);
  void maybe_decide(std::uint64_t round, Value value, Context& ctx);
  void advance_height(Value decided, Context& ctx);

  NodeId id_;
  std::uint64_t height_ = 0;
  std::uint64_t round_ = 0;
  Step step_ = Step::kPropose;

  // Locking state (per height).
  Value locked_value_ = kBottom;
  std::int64_t locked_round_ = -1;
  Value valid_value_ = kBottom;
  std::int64_t valid_round_ = -1;

  /// Proposals received, keyed by round (first valid proposal wins).
  std::map<std::uint64_t, std::pair<Value, std::int64_t>> proposals_;
  QuorumTracker<std::pair<std::uint64_t, Value>> prevotes_;
  QuorumTracker<std::pair<std::uint64_t, Value>> precommits_;
  QuorumTracker<std::uint64_t> any_precommits_;  ///< distinct voters per round
  OnceSet<std::uint64_t> prevoted_;
  OnceSet<std::uint64_t> precommitted_;
  bool decided_this_height_ = false;
};

[[nodiscard]] std::unique_ptr<Node> make_tendermint_node(NodeId id,
                                                         const SimConfig& cfg);

}  // namespace bftsim::tendermint

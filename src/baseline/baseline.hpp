// Packet-level baseline simulator — the Fig. 2 comparator.
//
// BFTSim (Singh et al., NSDI '08) ran BFT protocols over the ns-2 network
// simulator, modeling the physical and link layers packet by packet; the
// paper attributes BFTSim's poor scalability (32 nodes max, 19.4 s for a
// PBFT run our simulator finishes in 38 ms) to exactly that. BFTSim itself
// is unavailable (the P2 language and ns-2 toolchain are dead), so this
// module reproduces the *mechanism* behind the comparison: a drop-in
// engine that runs the same protocol logic, but where every message is
//   - fragmented into MTU-sized packets, each a heap-allocated frame
//     object (ns-2 allocates a Packet per fragment),
//   - carried hop by hop through a star topology (sender uplink -> core
//     switch -> receiver downlink) with per-link serialization, FIFO
//     queueing, and per-layer header processing at every hop,
//   - acknowledged per packet (transport-layer events), and
//   - charged a cryptographic-verification event at the receiver,
// so one protocol message costs dozens of simulation events (plus per-
// packet allocation and header churn) instead of one. The total
// propagation budget per message still follows the configured delay
// distribution, so protocol behaviour is comparable — only the simulation
// cost differs, which is the point of Fig. 2.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "sim/controller.hpp"
#include "sim/result.hpp"

namespace bftsim::baseline {

/// Link and packetization parameters of the modeled network.
struct LinkModel {
  std::size_t mtu_bytes = 32;        ///< fragment size
  double link_mbps = 100.0;          ///< per-link serialization rate
  double crypto_verify_ms = 0.05;    ///< per-message receiver-side check
  double switch_latency_ms = 0.01;   ///< fixed per-packet switching cost
};

/// Controller whose network path is simulated packet by packet.
class PacketLevelController final : public Controller {
 public:
  explicit PacketLevelController(SimConfig cfg, LinkModel link = {});

  /// Packet-level events generated so far — the cost multiplier Fig. 2
  /// measures.
  [[nodiscard]] std::uint64_t packet_events() const noexcept {
    return packet_events_;
  }
  /// Frames allocated so far.
  [[nodiscard]] std::uint64_t frames_allocated() const noexcept {
    return frames_allocated_;
  }

 protected:
  void schedule_network_delivery(Message msg, Time delay) override;
  void on_system_event(std::uint64_t tag) override;

 private:
  enum class Stage : std::uint8_t {
    kUplink,    ///< frame leaves the sender's access link
    kSwitch,    ///< frame traverses the core switch
    kDownlink,  ///< frame arrives at the receiver's access link
    kAck,       ///< transport acknowledgment returns to the sender
    kCrypto,    ///< receiver verifies the reassembled message
  };

  /// One in-flight message (reassembly state).
  struct Transit {
    Message msg;
    Time hop_propagation = 0;  ///< per-hop share of the sampled delay
    std::uint32_t packets_total = 0;
    std::uint32_t packets_arrived = 0;
    bool done = false;
  };

  /// One in-flight fragment, allocated per packet as ns-2 does.
  struct Frame {
    std::size_t transit = 0;
    std::uint32_t seq = 0;
    std::array<char, 64> header_and_payload{};
    std::uint64_t checksum = 0;
  };

  [[nodiscard]] static std::uint64_t tag_of(std::size_t frame, Stage stage) noexcept {
    return frame * 8 + static_cast<std::uint64_t>(stage);
  }

  [[nodiscard]] Time serialization_time(std::size_t bytes) const noexcept;
  void schedule_frame(std::size_t frame, Stage stage, Time at);
  /// Simulates layered header processing (app/transport/IP/MAC/PHY): each
  /// layer rewrites part of the frame header and refreshes the checksum.
  void process_layers(Frame& frame) noexcept;

  LinkModel link_;
  Time per_packet_serialize_ = 0;
  Time switch_latency_ = 0;
  Time crypto_verify_ = 0;

  std::vector<Transit> transits_;
  std::vector<std::unique_ptr<Frame>> frames_;
  std::vector<Time> uplink_free_;    ///< per-node uplink availability
  std::vector<Time> downlink_free_;  ///< per-node downlink availability
  std::uint64_t packet_events_ = 0;
  std::uint64_t frames_allocated_ = 0;
};

/// Runs one simulation on the packet-level engine (wall clock included).
[[nodiscard]] RunResult run_baseline_simulation(const SimConfig& cfg,
                                                LinkModel link = {});

}  // namespace bftsim::baseline

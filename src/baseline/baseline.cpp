#include "baseline/baseline.hpp"

#include <algorithm>
#include <chrono>
#include <string_view>

#include "crypto/hash.hpp"

namespace bftsim::baseline {

PacketLevelController::PacketLevelController(SimConfig cfg, LinkModel link)
    : Controller(std::move(cfg)), link_(link) {
  custom_delivery_hook_ = true;
  per_packet_serialize_ = serialization_time(link_.mtu_bytes);
  switch_latency_ = from_ms(link_.switch_latency_ms);
  crypto_verify_ = from_ms(link_.crypto_verify_ms);
  uplink_free_.assign(config().n, 0);
  downlink_free_.assign(config().n, 0);
}

Time PacketLevelController::serialization_time(std::size_t bytes) const noexcept {
  // mbps -> bytes per microsecond: rate/8; time = bytes / rate.
  const double bytes_per_us = link_.link_mbps / 8.0;
  return std::max<Time>(1, static_cast<Time>(static_cast<double>(bytes) / bytes_per_us));
}

void PacketLevelController::schedule_frame(std::size_t frame, Stage stage, Time at) {
  ++packet_events_;
  schedule_system_event(at, tag_of(frame, stage));
}

void PacketLevelController::process_layers(Frame& frame) noexcept {
  // Five protocol layers each rewrite a slice of the header and refresh
  // the frame checksum — the per-packet work a layered simulator performs
  // at every hop.
  for (int layer = 0; layer < 5; ++layer) {
    frame.header_and_payload[static_cast<std::size_t>(layer)] =
        static_cast<char>(frame.seq + layer);
    frame.checksum = hash_combine(
        frame.checksum,
        fnv1a64(std::string_view(frame.header_and_payload.data(),
                                 frame.header_and_payload.size())));
  }
}

void PacketLevelController::schedule_network_delivery(Message msg, Time delay) {
  const std::size_t bytes = msg.payload != nullptr ? msg.payload->wire_size() : 64;
  const auto packets = static_cast<std::uint32_t>(
      (bytes + link_.mtu_bytes - 1) / link_.mtu_bytes);

  Transit transit;
  const NodeId src = msg.src;
  transit.msg = std::move(msg);
  transit.hop_propagation = std::max<Time>(1, delay / 2);
  transit.packets_total = packets;
  transits_.push_back(std::move(transit));
  const std::size_t transit_index = transits_.size() - 1;

  // Fragment: allocate one frame per MTU-sized packet and enqueue it on
  // the sender's access link (FIFO with serialization).
  Time& uplink = uplink_free_[src];
  for (std::uint32_t p = 0; p < packets; ++p) {
    auto frame = std::make_unique<Frame>();
    frame->transit = transit_index;
    frame->seq = p;
    ++frames_allocated_;
    frames_.push_back(std::move(frame));
    const std::size_t frame_index = frames_.size() - 1;

    uplink = std::max(uplink, now()) + per_packet_serialize_;
    schedule_frame(frame_index, Stage::kUplink, uplink);
  }
}

void PacketLevelController::on_system_event(std::uint64_t tag) {
  const std::size_t frame_index = tag / 8;
  const auto stage = static_cast<Stage>(tag % 8);
  if (frames_[frame_index] == nullptr) return;  // fragment already retired
  Frame& frame = *frames_[frame_index];
  Transit& transit = transits_[frame.transit];

  switch (stage) {
    case Stage::kUplink:
      process_layers(frame);
      schedule_frame(frame_index, Stage::kSwitch,
                     now() + transit.hop_propagation + switch_latency_);
      break;

    case Stage::kSwitch: {
      process_layers(frame);
      Time& downlink = downlink_free_[transit.msg.dst];
      downlink = std::max(downlink, now()) + per_packet_serialize_;
      schedule_frame(frame_index, Stage::kDownlink,
                     downlink + transit.hop_propagation);
      break;
    }

    case Stage::kDownlink: {
      process_layers(frame);
      ++transit.packets_arrived;
      // Transport-level acknowledgment travels back to the sender.
      schedule_frame(frame_index, Stage::kAck,
                     now() + 2 * transit.hop_propagation + switch_latency_);
      if (transit.packets_arrived == transit.packets_total) {
        schedule_frame(frame_index, Stage::kCrypto, now() + crypto_verify_);
      }
      break;
    }

    case Stage::kAck:
      process_layers(frame);
      frames_[frame_index].reset();  // fragment fully processed
      break;

    case Stage::kCrypto:
      if (!transit.done) {
        transit.done = true;
        // deliver_now() runs protocol code that may send new messages,
        // growing transits_/frames_ and invalidating our references — move
        // the message out first and touch nothing afterwards.
        const Message msg = std::move(transit.msg);
        deliver_now(msg);
      }
      break;
  }
}

RunResult run_baseline_simulation(const SimConfig& cfg, LinkModel link) {
  const auto start = std::chrono::steady_clock::now();
  PacketLevelController controller{cfg, link};
  RunResult result = controller.run();
  const auto end = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(end - start).count();
  return result;
}

}  // namespace bftsim::baseline

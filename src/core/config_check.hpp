// Shared helpers for strict, path-aware configuration parsing.
//
// Every parse error is a single line naming the JSON path of the offending
// value ("config error at $.faults.corruption.rate: must be within [0, 1]"),
// so a malformed sweep file points straight at the bad key instead of
// failing somewhere deep inside a run.
#pragma once

#include <initializer_list>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/json.hpp"

namespace bftsim::cfgcheck {

/// Throws the canonical single-line config error for `path`.
[[noreturn]] inline void fail(const std::string& path, const std::string& what) {
  throw std::invalid_argument("config error at " + path + ": " + what);
}

/// Rejects keys of object `v` that are not in `allowed` (typo guard).
inline void require_keys(const json::Value& v, const std::string& path,
                         std::initializer_list<std::string_view> allowed) {
  for (const auto& [key, value] : v.as_object()) {
    bool known = false;
    for (const std::string_view candidate : allowed) {
      if (key == candidate) {
        known = true;
        break;
      }
    }
    if (!known) fail(path + "." + key, "unknown key");
  }
}

/// Reads an optional number at `key`, requiring `lo <= value <= hi`.
inline double number_in(const json::Value& v, const std::string& path,
                        const std::string& key, double fallback, double lo,
                        double hi) {
  const double value = v.get_number(key, fallback);
  if (value < lo || value > hi) {
    fail(path + "." + key,
         "must be within [" + std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return value;
}

/// Reads an optional integer at `key`, requiring `lo <= value <= hi`.
inline std::int64_t int_in(const json::Value& v, const std::string& path,
                           const std::string& key, std::int64_t fallback,
                           std::int64_t lo, std::int64_t hi) {
  const std::int64_t value = v.get_int(key, fallback);
  if (value < lo || value > hi) {
    fail(path + "." + key,
         "must be within [" + std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return value;
}

}  // namespace bftsim::cfgcheck

#include "core/metrics.hpp"

#include <algorithm>

namespace bftsim {

std::map<std::string, std::uint64_t> Metrics::per_type() const {
  std::map<std::string, std::uint64_t> out = untyped_counts_;
  const PayloadTypeRegistry& registry = PayloadTypeRegistry::instance();
  for (std::size_t i = 0; i < typed_counts_.size(); ++i) {
    if (typed_counts_[i] == 0) continue;
    out[registry.name(static_cast<PayloadType>(i))] += typed_counts_[i];
  }
  return out;
}

std::uint64_t Metrics::decision_count(NodeId node) const noexcept {
  return static_cast<std::uint64_t>(
      std::count_if(decisions_.begin(), decisions_.end(),
                    [node](const Decision& d) { return d.node == node; }));
}

Time Metrics::completion_time(const std::vector<NodeId>& nodes,
                              std::uint64_t k) const noexcept {
  Time latest = kNoTime;
  for (const NodeId node : nodes) {
    std::uint64_t seen = 0;
    Time at = kNoTime;
    for (const Decision& d : decisions_) {
      if (d.node != node) continue;
      if (++seen == k) {
        at = d.at;
        break;
      }
    }
    if (at == kNoTime) return kNoTime;  // this node has not reached k yet
    latest = std::max(latest, at);
  }
  return latest;
}

}  // namespace bftsim

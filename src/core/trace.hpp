// Execution traces.
//
// A trace is the ordered record of everything observable that happened in a
// run: message sends/deliveries/drops, timer firings, decisions, view
// changes and corruptions. Traces serve three purposes:
//   1. debugging / logging,
//   2. determinism checks (same seed => identical trace fingerprint),
//   3. ground truth for the validator module (§III-D of the paper), which
//      replays a trace and cross-checks the decisions produced.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "crypto/hash.hpp"

namespace bftsim {

enum class TraceKind : std::uint8_t {
  kSend,        ///< node a sent a message to node b
  kDeliver,     ///< message from a delivered to b
  kDrop,        ///< message from a to b dropped (attacker or dead node)
  kTimerFire,   ///< timer fired at node a
  kDecide,      ///< node a decided `value` (its `view` field holds height)
  kViewChange,  ///< node a entered view `view`
  kCorrupt,     ///< attacker corrupted node a
};

/// Human-readable name of a trace kind.
[[nodiscard]] std::string_view to_string(TraceKind kind) noexcept;

struct TraceRecord {
  TraceKind kind = TraceKind::kSend;
  Time at = 0;
  NodeId a = kNoNode;
  NodeId b = kNoNode;
  std::string type;            ///< payload type tag (message records)
  std::uint64_t digest = 0;    ///< payload digest (message records)
  std::uint64_t msg_id = 0;    ///< unique message id (message records)
  View view = 0;               ///< view/height where applicable
  Value value = 0;             ///< decided value where applicable

  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    return hash_words({static_cast<std::uint64_t>(kind),
                       static_cast<std::uint64_t>(at), a, b, fnv1a64(type),
                       digest, msg_id, view, value});
  }

  [[nodiscard]] std::string to_string() const;
};

/// Initial value of the order-sensitive trace fingerprint. Shared with the
/// streaming trace sinks (src/obs/), whose running fingerprint must equal
/// Trace::fingerprint() over the same record sequence.
inline constexpr std::uint64_t kTraceFingerprintSeed = 0x51ed270b74a4d9c3ULL;

/// An in-memory trace. Recording granularity is controlled by the
/// controller; by default only message + decision records are kept.
class Trace {
 public:
  void add(TraceRecord rec) { records_.push_back(std::move(rec)); }
  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  void clear() noexcept { records_.clear(); }

  /// Order-sensitive fingerprint of the whole trace.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    std::uint64_t h = kTraceFingerprintSeed;
    for (const auto& r : records_) h = hash_combine(h, r.fingerprint());
    return h;
  }

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace bftsim

#include "core/rng.hpp"

#include <cmath>
#include <numbers>

namespace bftsim {

double Rng::normal(double mean, double stddev) noexcept {
  // Box-Muller, using the cosine branch only so that exactly two raw draws
  // are consumed per sample regardless of caller interleaving.
  double u1 = next_double();
  const double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;  // guard log(0)
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::exponential(double mean) noexcept {
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

}  // namespace bftsim

#include "core/config.hpp"

#include <sstream>
#include <stdexcept>

namespace bftsim {

namespace {

[[nodiscard]] std::string kind_name(DelaySpec::Kind kind) {
  switch (kind) {
    case DelaySpec::Kind::kConstant: return "constant";
    case DelaySpec::Kind::kUniform: return "uniform";
    case DelaySpec::Kind::kNormal: return "normal";
    case DelaySpec::Kind::kExponential: return "exponential";
  }
  return "?";
}

[[nodiscard]] DelaySpec::Kind kind_from_name(const std::string& name) {
  if (name == "constant") return DelaySpec::Kind::kConstant;
  if (name == "uniform") return DelaySpec::Kind::kUniform;
  if (name == "normal") return DelaySpec::Kind::kNormal;
  if (name == "exponential") return DelaySpec::Kind::kExponential;
  throw std::invalid_argument("unknown delay kind: " + name);
}

}  // namespace

std::string DelaySpec::describe() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kConstant: os << "C(" << a << ")"; break;
    case Kind::kUniform: os << "U(" << a << "," << b << ")"; break;
    case Kind::kNormal: os << "N(" << a << "," << b << ")"; break;
    case Kind::kExponential: os << "Exp(" << a << ")"; break;
  }
  return os.str();
}

json::Value DelaySpec::to_json() const {
  json::Object o;
  o["kind"] = kind_name(kind);
  o["a"] = a;
  o["b"] = b;
  o["min_ms"] = min_ms;
  o["max_ms"] = max_ms;
  return json::Value{std::move(o)};
}

DelaySpec DelaySpec::from_json(const json::Value& v) {
  DelaySpec spec;
  spec.kind = kind_from_name(v.get_string("kind", "normal"));
  spec.a = v.get_number("a", spec.a);
  spec.b = v.get_number("b", spec.b);
  spec.min_ms = v.get_number("min_ms", spec.min_ms);
  spec.max_ms = v.get_number("max_ms", spec.max_ms);
  return spec;
}

json::Value CostModel::to_json() const {
  json::Object o;
  o["verify_ms"] = verify_ms;
  o["sign_ms"] = sign_ms;
  return json::Value{std::move(o)};
}

CostModel CostModel::from_json(const json::Value& v) {
  CostModel cost;
  cost.verify_ms = v.get_number("verify_ms", cost.verify_ms);
  cost.sign_ms = v.get_number("sign_ms", cost.sign_ms);
  return cost;
}

void SimConfig::validate() const {
  if (n == 0) throw std::invalid_argument("config: n must be positive");
  if (honest > n) throw std::invalid_argument("config: honest > n");
  if (lambda_ms <= 0) throw std::invalid_argument("config: lambda_ms must be positive");
  if (decisions == 0) throw std::invalid_argument("config: decisions must be positive");
  if (max_time_ms <= 0) throw std::invalid_argument("config: max_time_ms must be positive");
  if (protocol.empty()) throw std::invalid_argument("config: protocol missing");
  if (delay.min_ms < 0) throw std::invalid_argument("config: delay.min_ms negative");
  if (delay.max_ms != 0 && delay.max_ms < delay.min_ms) {
    throw std::invalid_argument("config: delay.max_ms < delay.min_ms");
  }
  if (delay.kind == DelaySpec::Kind::kUniform && delay.b < delay.a) {
    throw std::invalid_argument("config: uniform delay hi < lo");
  }
  if (cost.verify_ms < 0 || cost.sign_ms < 0) {
    throw std::invalid_argument("config: negative computation cost");
  }
}

json::Value SimConfig::to_json() const {
  json::Object o;
  o["protocol"] = protocol;
  o["n"] = static_cast<std::int64_t>(n);
  o["honest"] = static_cast<std::int64_t>(honest);
  o["lambda_ms"] = lambda_ms;
  o["delay"] = delay.to_json();
  o["seed"] = static_cast<std::int64_t>(seed);
  o["decisions"] = static_cast<std::int64_t>(decisions);
  o["max_time_ms"] = max_time_ms;
  o["max_events"] = static_cast<std::int64_t>(max_events);
  o["attack"] = attack;
  if (attack_params.is_object()) o["attack_params"] = attack_params;
  if (cost.enabled()) o["cost"] = cost.to_json();
  if (topology.is_object()) o["topology"] = topology;
  if (protocol_params.is_object()) o["protocol_params"] = protocol_params;
  o["record_trace"] = record_trace;
  o["record_views"] = record_views;
  return json::Value{std::move(o)};
}

SimConfig SimConfig::from_json(const json::Value& v) {
  SimConfig cfg;
  cfg.protocol = v.get_string("protocol", cfg.protocol);
  cfg.n = static_cast<std::uint32_t>(v.get_int("n", cfg.n));
  cfg.honest = static_cast<std::uint32_t>(v.get_int("honest", cfg.honest));
  cfg.lambda_ms = v.get_number("lambda_ms", cfg.lambda_ms);
  if (const json::Value* d = v.as_object().find("delay")) {
    cfg.delay = DelaySpec::from_json(*d);
  }
  cfg.seed = static_cast<std::uint64_t>(v.get_int("seed", static_cast<std::int64_t>(cfg.seed)));
  cfg.decisions = static_cast<std::uint32_t>(v.get_int("decisions", cfg.decisions));
  cfg.max_time_ms = v.get_number("max_time_ms", cfg.max_time_ms);
  cfg.max_events = static_cast<std::uint64_t>(
      v.get_int("max_events", static_cast<std::int64_t>(cfg.max_events)));
  cfg.attack = v.get_string("attack", cfg.attack);
  if (const json::Value* p = v.as_object().find("attack_params")) {
    cfg.attack_params = *p;
  }
  if (const json::Value* p = v.as_object().find("protocol_params")) {
    cfg.protocol_params = *p;
  }
  if (const json::Value* c = v.as_object().find("cost")) {
    cfg.cost = CostModel::from_json(*c);
  }
  if (const json::Value* t = v.as_object().find("topology")) {
    cfg.topology = *t;
  }
  cfg.record_trace = v.get_bool("record_trace", cfg.record_trace);
  cfg.record_views = v.get_bool("record_views", cfg.record_views);
  cfg.validate();
  return cfg;
}

SimConfig SimConfig::from_file(const std::string& path) {
  return from_json(json::parse_file(path));
}

}  // namespace bftsim

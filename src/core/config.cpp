#include "core/config.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

#include "core/config_check.hpp"

namespace bftsim {

namespace {

using cfgcheck::fail;
using cfgcheck::number_in;
using cfgcheck::require_keys;

[[nodiscard]] std::string kind_name(DelaySpec::Kind kind) {
  switch (kind) {
    case DelaySpec::Kind::kConstant: return "constant";
    case DelaySpec::Kind::kUniform: return "uniform";
    case DelaySpec::Kind::kNormal: return "normal";
    case DelaySpec::Kind::kExponential: return "exponential";
  }
  return "?";
}

[[nodiscard]] DelaySpec::Kind kind_from_name(const std::string& name,
                                             const std::string& path) {
  if (name == "constant") return DelaySpec::Kind::kConstant;
  if (name == "uniform") return DelaySpec::Kind::kUniform;
  if (name == "normal") return DelaySpec::Kind::kNormal;
  if (name == "exponential") return DelaySpec::Kind::kExponential;
  fail(path + ".kind", "unknown delay kind \"" + name + "\"");
}

}  // namespace

std::string DelaySpec::describe() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kConstant: os << "C(" << a << ")"; break;
    case Kind::kUniform: os << "U(" << a << "," << b << ")"; break;
    case Kind::kNormal: os << "N(" << a << "," << b << ")"; break;
    case Kind::kExponential: os << "Exp(" << a << ")"; break;
  }
  return os.str();
}

json::Value DelaySpec::to_json() const {
  json::Object o;
  o["kind"] = kind_name(kind);
  o["a"] = a;
  o["b"] = b;
  o["min_ms"] = min_ms;
  o["max_ms"] = max_ms;
  return json::Value{std::move(o)};
}

DelaySpec DelaySpec::from_json(const json::Value& v, const std::string& path) {
  require_keys(v, path, {"kind", "a", "b", "min_ms", "max_ms"});
  DelaySpec spec;
  spec.kind = kind_from_name(v.get_string("kind", "normal"), path);
  spec.a = number_in(v, path, "a", spec.a, 0.0, 1e12);
  spec.b = number_in(v, path, "b", spec.b, 0.0, 1e12);
  spec.min_ms = number_in(v, path, "min_ms", spec.min_ms, 0.0, 1e12);
  spec.max_ms = number_in(v, path, "max_ms", spec.max_ms, 0.0, 1e12);
  return spec;
}

json::Value CostModel::to_json() const {
  json::Object o;
  o["verify_ms"] = verify_ms;
  o["sign_ms"] = sign_ms;
  return json::Value{std::move(o)};
}

CostModel CostModel::from_json(const json::Value& v, const std::string& path) {
  require_keys(v, path, {"verify_ms", "sign_ms"});
  CostModel cost;
  cost.verify_ms = number_in(v, path, "verify_ms", cost.verify_ms, 0.0, 1e9);
  cost.sign_ms = number_in(v, path, "sign_ms", cost.sign_ms, 0.0, 1e9);
  return cost;
}

json::Value EngineConfig::to_json() const {
  json::Object o;
  o["intra_jobs"] = static_cast<std::int64_t>(intra_jobs);
  switch (rng) {
    case RngMode::kAuto: o["rng"] = std::string("auto"); break;
    case RngMode::kStream: o["rng"] = std::string("stream"); break;
    case RngMode::kPerNode: o["rng"] = std::string("per_node"); break;
  }
  return json::Value{std::move(o)};
}

EngineConfig EngineConfig::from_json(const json::Value& v,
                                     const std::string& path) {
  require_keys(v, path, {"intra_jobs", "rng"});
  EngineConfig engine;
  engine.intra_jobs = static_cast<std::uint32_t>(cfgcheck::int_in(
      v, path, "intra_jobs", engine.intra_jobs, 1, kMaxIntraJobs));
  const std::string mode = v.get_string("rng", "auto");
  if (mode == "auto") {
    engine.rng = RngMode::kAuto;
  } else if (mode == "stream") {
    engine.rng = RngMode::kStream;
  } else if (mode == "per_node") {
    engine.rng = RngMode::kPerNode;
  } else {
    fail(path + ".rng", "unknown rng mode \"" + mode + "\"");
  }
  return engine;
}

void SimConfig::validate() const {
  if (n == 0) throw std::invalid_argument("config: n must be positive");
  if (honest > n) throw std::invalid_argument("config: honest > n");
  if (lambda_ms <= 0) throw std::invalid_argument("config: lambda_ms must be positive");
  if (decisions == 0) throw std::invalid_argument("config: decisions must be positive");
  if (max_time_ms <= 0) throw std::invalid_argument("config: max_time_ms must be positive");
  if (protocol.empty()) throw std::invalid_argument("config: protocol missing");
  if (delay.min_ms < 0) throw std::invalid_argument("config: delay.min_ms negative");
  if (delay.max_ms != 0 && delay.max_ms < delay.min_ms) {
    throw std::invalid_argument("config: delay.max_ms < delay.min_ms");
  }
  if (delay.kind == DelaySpec::Kind::kUniform && delay.b < delay.a) {
    throw std::invalid_argument("config: uniform delay hi < lo");
  }
  if (cost.verify_ms < 0 || cost.sign_ms < 0) {
    throw std::invalid_argument("config: negative computation cost");
  }
  if (engine.intra_jobs < 1 || engine.intra_jobs > EngineConfig::kMaxIntraJobs) {
    throw std::invalid_argument("config: engine.intra_jobs out of [1, 128]");
  }
  if (engine.rng == EngineConfig::RngMode::kStream && engine.intra_jobs > 1) {
    throw std::invalid_argument(
        "config: engine.rng \"stream\" is serial-only; use \"auto\" or "
        "\"per_node\" with engine.intra_jobs > 1");
  }
  // Note: engine.per_node_rng() combined with a configured attack is NOT
  // rejected here — a global attacker's observation order is not
  // lane-independent, so the controller deterministically falls back to
  // the serial engine for such runs and records an "engine-serial-fallback"
  // warning on the RunResult. Rejecting the combination used to kill whole
  // sweeps that set a global engine.intra_jobs at their attack points.
  if (engine.per_node_rng() && obs.timeline_enabled()) {
    throw std::invalid_argument(
        "config: the run timeline sampler is serial-only; disable "
        "obs.timeline_tick_ms or engine parallelism");
  }
  net.validate();
  if (net.enabled() && topology.is_object()) {
    cfgcheck::fail("$.net",
                   "cannot combine with $.topology: the WAN backend replaces "
                   "the cross-region transform (move the regions into "
                   "$.net.rtt)");
  }
  if (engine.per_node_rng() && (net.gossip() || net.bandwidth_enabled())) {
    // Gossip relays and FIFO bandwidth queues are inherently order-dependent
    // across sending nodes, so they have no lane-invariant per-node RNG
    // form. Matrix-only WAN runs are pure per-pair delay offsets and stay
    // windowed-parallel safe.
    cfgcheck::fail("$.net",
                   "gossip/bandwidth backends are serial-only; drop "
                   "engine.intra_jobs > 1 / rng \"per_node\" or keep only the "
                   "RTT matrix");
  }
  if (net.gossip() && !attack.empty()) {
    cfgcheck::fail("$.net.backend",
                   "gossip cannot combine with an attack scenario: the "
                   "global attacker observes direct transmissions only");
  }
  faults.validate(n);
  workload.validate();
  // Note: engine.per_node_rng() combined with a closed-loop workload is
  // likewise NOT rejected: resubmission timing depends on decision order,
  // which only the serial engine provides, so the controller falls back
  // serially with an "engine-serial-fallback" warning (open-loop workloads
  // are per-node streams and stay windowed-parallel safe).
  obs.validate();
}

json::Value SimConfig::to_json() const {
  json::Object o;
  o["protocol"] = protocol;
  o["n"] = static_cast<std::int64_t>(n);
  o["honest"] = static_cast<std::int64_t>(honest);
  o["lambda_ms"] = lambda_ms;
  o["delay"] = delay.to_json();
  o["seed"] = static_cast<std::int64_t>(seed);
  o["decisions"] = static_cast<std::int64_t>(decisions);
  o["max_time_ms"] = max_time_ms;
  o["max_events"] = static_cast<std::int64_t>(max_events);
  o["attack"] = attack;
  if (attack_params.is_object()) o["attack_params"] = attack_params;
  if (cost.enabled()) o["cost"] = cost.to_json();
  if (topology.is_object()) o["topology"] = topology;
  if (net.enabled()) o["net"] = net.to_json();
  if (protocol_params.is_object()) o["protocol_params"] = protocol_params;
  if (faults.enabled()) o["faults"] = faults.to_json();
  if (workload.enabled()) o["workload"] = workload.to_json();
  o["record_trace"] = record_trace;
  o["record_views"] = record_views;
  if (obs.enabled()) o["obs"] = obs.to_json();
  if (engine.active()) o["engine"] = engine.to_json();
  return json::Value{std::move(o)};
}

SimConfig SimConfig::from_json(const json::Value& v) {
  require_keys(v, "$",
               {"protocol", "n", "honest", "lambda_ms", "delay", "seed",
                "decisions", "max_time_ms", "max_events", "attack",
                "attack_params", "protocol_params", "cost", "topology", "net",
                "faults", "workload", "record_trace", "record_views", "obs",
                "engine"});
  SimConfig cfg;
  cfg.protocol = v.get_string("protocol", cfg.protocol);
  cfg.n = static_cast<std::uint32_t>(cfgcheck::int_in(v, "$", "n", cfg.n, 1, 1'000'000));
  cfg.honest = static_cast<std::uint32_t>(
      cfgcheck::int_in(v, "$", "honest", cfg.honest, 0, cfg.n));
  cfg.lambda_ms = number_in(v, "$", "lambda_ms", cfg.lambda_ms, 1e-6, 1e12);
  if (const json::Value* d = v.as_object().find("delay")) {
    cfg.delay = DelaySpec::from_json(*d, "$.delay");
  }
  cfg.seed = static_cast<std::uint64_t>(cfgcheck::int_in(
      v, "$", "seed", static_cast<std::int64_t>(cfg.seed), 0,
      std::numeric_limits<std::int64_t>::max()));
  cfg.decisions = static_cast<std::uint32_t>(
      cfgcheck::int_in(v, "$", "decisions", cfg.decisions, 1, 1'000'000'000));
  cfg.max_time_ms = number_in(v, "$", "max_time_ms", cfg.max_time_ms, 1e-6, 1e12);
  cfg.max_events = static_cast<std::uint64_t>(cfgcheck::int_in(
      v, "$", "max_events", static_cast<std::int64_t>(cfg.max_events), 1,
      std::numeric_limits<std::int64_t>::max()));
  cfg.attack = v.get_string("attack", cfg.attack);
  if (const json::Value* p = v.as_object().find("attack_params")) {
    cfg.attack_params = *p;
  }
  if (const json::Value* p = v.as_object().find("protocol_params")) {
    cfg.protocol_params = *p;
  }
  if (const json::Value* c = v.as_object().find("cost")) {
    cfg.cost = CostModel::from_json(*c, "$.cost");
  }
  if (const json::Value* t = v.as_object().find("topology")) {
    // The spec itself is parsed by TopologySpec::from_json in the network
    // layer; the structural checks are mirrored here so a typo fails at
    // config-load time with a "$.topology..." path like every other key.
    require_keys(*t, "$.topology", {"regions", "cross_factor", "cross_extra_ms"});
    (void)cfgcheck::int_in(*t, "$.topology", "regions", 1, 1, 1'000'000);
    (void)number_in(*t, "$.topology", "cross_factor", 1.0, 0.0, 1e6);
    (void)number_in(*t, "$.topology", "cross_extra_ms", 0.0, 0.0, 1e9);
    cfg.topology = *t;
  }
  if (const json::Value* nv = v.as_object().find("net")) {
    cfg.net = WanSpec::from_json(*nv, "$.net");
  }
  if (const json::Value* f = v.as_object().find("faults")) {
    cfg.faults = FaultConfig::from_json(*f, "$.faults");
  }
  if (const json::Value* w = v.as_object().find("workload")) {
    cfg.workload = WorkloadSpec::from_json(*w, "$.workload");
  }
  cfg.record_trace = v.get_bool("record_trace", cfg.record_trace);
  cfg.record_views = v.get_bool("record_views", cfg.record_views);
  if (const json::Value* o = v.as_object().find("obs")) {
    cfg.obs = ObsConfig::from_json(*o, "$.obs");
  }
  if (const json::Value* e = v.as_object().find("engine")) {
    cfg.engine = EngineConfig::from_json(*e, "$.engine");
  }
  cfg.validate();
  return cfg;
}

SimConfig SimConfig::from_file(const std::string& path) {
  return from_json(json::parse_file(path));
}

}  // namespace bftsim

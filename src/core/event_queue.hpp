// The simulator's event queue: a binary min-heap ordered by
// (timestamp, insertion sequence number).
#pragma once

#include <cstddef>
#include <queue>
#include <vector>

#include "core/event.hpp"

namespace bftsim {

/// Priority queue of simulation events, deterministic under ties.
class EventQueue {
 public:
  /// Schedules `body` at absolute time `at`; returns the assigned sequence
  /// number (unique per queue, usable as a stable event identity).
  template <typename Body>
  std::uint64_t push(Time at, Body&& body) {
    const std::uint64_t seq = next_seq_++;
    heap_.push(Event{at, seq, std::forward<Body>(body)});
    return seq;
  }

  /// True when no events remain.
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }

  /// Number of pending events.
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Timestamp of the earliest pending event. Precondition: !empty().
  [[nodiscard]] Time next_time() const { return heap_.top().at; }

  /// Removes and returns the earliest pending event. Precondition: !empty().
  [[nodiscard]] Event pop() {
    Event ev = heap_.top();
    heap_.pop();
    return ev;
  }

  /// Total number of events ever scheduled on this queue.
  [[nodiscard]] std::uint64_t total_scheduled() const noexcept { return next_seq_; }

 private:
  struct Later {
    [[nodiscard]] bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace bftsim

// The simulator's event queue: a 4-ary min-heap ordered by
// (timestamp, insertion sequence number), with lazy deletion of cancelled
// timers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/dary_heap.hpp"
#include "core/event.hpp"

namespace bftsim {

/// Priority queue of simulation events, deterministic under ties.
///
/// Timer cancellation is lazy: a cancelled timer's fire event stays in the
/// heap (removing it eagerly would be O(n)) and its id is tombstoned until
/// the dispatcher consumes the mark when the event pops. The queue tracks
/// which timer ids are actually pending, so cancelling a timer that already
/// fired — or was never scheduled — leaves no tombstone behind; both counts
/// stay bounded by the number of in-flight timers no matter how long the
/// run churns (see Controller::cancel_timer).
///
/// Timer state lives in a flat byte array indexed by TimerId. The
/// controller assigns ids sequentially from 1, so the array stays dense and
/// every state transition is one cache line touch instead of a hash-set
/// operation on the pop hot path.
class EventQueue {
 public:
  /// Schedules `body` at absolute time `at`; returns the assigned sequence
  /// number (unique per queue, usable as a stable event identity).
  template <typename Body>
  std::uint64_t push(Time at, Body&& body) {
    const std::uint64_t seq = next_seq_++;
    if constexpr (std::is_same_v<std::decay_t<Body>, TimerFire>) {
      mark_pending(body.timer);
    }
    heap_.emplace(Event{at, seq, std::forward<Body>(body)});
    return seq;
  }

  /// True when no events remain.
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }

  /// Number of pending events.
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Timestamp of the earliest pending event. Precondition: !empty().
  [[nodiscard]] Time next_time() const { return heap_.top().at; }

  /// Removes and returns the earliest pending event by move (the event
  /// body embeds a shared payload pointer; copying the top would churn its
  /// refcount twice per pop). Precondition: !empty().
  [[nodiscard]] Event pop() {
    Event ev = heap_.pop();
    if (const auto* fire = std::get_if<TimerFire>(&ev.body)) {
      if (fire->timer < timer_state_.size() &&
          timer_state_[fire->timer] == kPending) {
        timer_state_[fire->timer] = kIdle;
        --pending_timers_;
      }
    }
    return ev;
  }

  /// Marks a pending timer as cancelled (lazy deletion: its fire event
  /// stays queued until it pops). Returns false — and records nothing —
  /// when `id` is not pending (already fired, already cancelled, or never
  /// scheduled), which is what keeps the tombstone count bounded.
  bool cancel_timer(TimerId id) {
    if (id >= timer_state_.size() || timer_state_[id] != kPending) return false;
    timer_state_[id] = kCancelled;
    --pending_timers_;
    ++tombstones_;
    return true;
  }

  /// True (consuming the tombstone) when timer `id` was cancelled. The
  /// dispatcher calls this for every popped TimerFire; a hit means the
  /// firing must be dropped.
  [[nodiscard]] bool consume_cancellation(TimerId id) {
    if (id >= timer_state_.size() || timer_state_[id] != kCancelled) return false;
    timer_state_[id] = kIdle;
    --tombstones_;
    return true;
  }

  /// Sizes the heap's backing vector (and the timer bookkeeping) for a run
  /// expected to hold up to `expected_events` events in flight.
  void reserve(std::size_t expected_events) {
    heap_.reserve(expected_events);
    timer_state_.reserve(expected_events / 4);
  }

  /// Total number of events ever scheduled on this queue.
  [[nodiscard]] std::uint64_t total_scheduled() const noexcept { return next_seq_; }

  /// Number of timers currently scheduled and not cancelled (test hook).
  [[nodiscard]] std::size_t pending_timer_count() const noexcept {
    return pending_timers_;
  }

  /// Number of outstanding cancellation tombstones (test hook).
  [[nodiscard]] std::size_t tombstone_count() const noexcept {
    return tombstones_;
  }

 private:
  enum : std::uint8_t { kIdle = 0, kPending = 1, kCancelled = 2 };

  void mark_pending(TimerId id) {
    if (id >= timer_state_.size()) {
      // Ids arrive in near-sequential order; geometric growth keeps the
      // amortized cost of the one-byte-per-timer ledger negligible.
      std::size_t grown = timer_state_.empty() ? 64 : timer_state_.size() * 2;
      if (grown < id + 1) grown = id + 1;
      timer_state_.resize(grown, kIdle);
    }
    if (timer_state_[id] != kPending) {
      if (timer_state_[id] == kCancelled) --tombstones_;
      timer_state_[id] = kPending;
      ++pending_timers_;
    }
  }

  struct Earlier {
    [[nodiscard]] bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at < b.at;
      return a.seq < b.seq;
    }
  };

  DaryHeap<Event, 4, Earlier> heap_;
  std::uint64_t next_seq_ = 0;
  std::vector<std::uint8_t> timer_state_;  ///< indexed by TimerId
  std::size_t pending_timers_ = 0;
  std::size_t tombstones_ = 0;
};

}  // namespace bftsim

// Lightweight leveled logging. Off by default; enabled by examples and by
// debugging sessions. Not used on simulation hot paths unless enabled.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>

namespace bftsim {

enum class LogLevel : int { kOff = 0, kError = 1, kInfo = 2, kDebug = 3 };

/// Global log configuration.
class Log {
 public:
  static void set_level(LogLevel level) noexcept { level_ = level; }
  static void set_sink(std::ostream* sink) noexcept { sink_ = sink; }
  [[nodiscard]] static bool enabled(LogLevel level) noexcept {
    return static_cast<int>(level) <= static_cast<int>(level_) && sink_ != nullptr;
  }
  static void write(LogLevel level, const std::string& line);

 private:
  static LogLevel level_;
  static std::ostream* sink_;
};

}  // namespace bftsim

/// Usage: BFTSIM_LOG(kDebug, "node " << id << " entered view " << v);
#define BFTSIM_LOG(level, expr)                                        \
  do {                                                                 \
    if (::bftsim::Log::enabled(::bftsim::LogLevel::level)) {           \
      std::ostringstream bftsim_log_os__;                              \
      bftsim_log_os__ << expr;                                         \
      ::bftsim::Log::write(::bftsim::LogLevel::level,                  \
                           bftsim_log_os__.str());                     \
    }                                                                  \
  } while (false)

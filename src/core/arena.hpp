// A chunked bump (arena / slab) allocator for run-scoped allocations.
//
// One simulation run allocates hundreds of thousands of small, immutable
// objects — message payloads above all — whose lifetimes all end together
// when the run's controller is destroyed. A general-purpose heap pays
// per-object malloc/free and scatters those objects across memory; the
// arena instead hands out pointers by bumping a cursor through large
// chunks, so allocation is a compare and an add, objects allocated
// together sit together (the broadcast fan-out reads them together), and
// the whole population is released wholesale by destroying (or
// reset()-ing) the arena.
//
// The arena does not run destructors: it is a memory allocator, not an
// object pool. Users that need destruction (e.g. std::allocate_shared
// control blocks) still get it — the shared_ptr machinery invokes the
// destructor as usual and the subsequent deallocate() is a no-op.
//
// Not thread-safe by design: an arena belongs to exactly one run, and a
// run executes on one thread (cross-run parallelism gives each run its
// own controller and therefore its own arena).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace bftsim {

class Arena {
 public:
  /// Default size of the first chunk. Subsequent chunks double (capped),
  /// so a run that outgrows the default pays O(log n) chunk allocations.
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;
  /// Chunk growth stops doubling here; larger demands get exact-fit chunks.
  static constexpr std::size_t kMaxChunkBytes = 8 * 1024 * 1024;

  explicit Arena(std::size_t first_chunk_bytes = kDefaultChunkBytes)
      : first_chunk_bytes_(first_chunk_bytes == 0 ? kDefaultChunkBytes
                                                  : first_chunk_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` bytes aligned to `align` (a power of two). Never
  /// returns nullptr: growth allocates a new chunk, a request larger than
  /// the chunk cap gets its own exact-fit chunk, and allocation failure
  /// throws std::bad_alloc like operator new.
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    if (bytes == 0) bytes = 1;
    std::uintptr_t p = align_up(cursor_, align);
    if (p + bytes > limit_) {
      grow(bytes, align);
      p = align_up(cursor_, align);
    }
    cursor_ = p + bytes;
    bytes_allocated_ += bytes;
    if (bytes_allocated_ > high_water_) high_water_ = bytes_allocated_;
    return reinterpret_cast<void*>(p);
  }

  /// Rewinds the arena to empty, keeping every chunk it already owns for
  /// reuse: a reset arena replays an identical allocation sequence at
  /// identical addresses, which keeps run-over-run behavior deterministic
  /// and allocation-free after the first run. Does not run destructors —
  /// callers must not reset while arena-backed objects are still alive.
  void reset() noexcept {
    bytes_allocated_ = 0;
    next_chunk_ = 0;
    if (chunks_.empty()) {
      cursor_ = limit_ = 0;
    } else {
      cursor_ = reinterpret_cast<std::uintptr_t>(chunks_[0].data.get());
      limit_ = cursor_ + chunks_[0].size;
      next_chunk_ = 1;
    }
  }

  /// Live bytes handed out since construction / the last reset()
  /// (excludes alignment padding).
  [[nodiscard]] std::size_t bytes_allocated() const noexcept {
    return bytes_allocated_;
  }
  /// Total bytes of chunk capacity owned by the arena.
  [[nodiscard]] std::size_t bytes_reserved() const noexcept {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }
  /// Largest bytes_allocated() ever observed (survives reset()).
  [[nodiscard]] std::size_t high_water() const noexcept { return high_water_; }
  [[nodiscard]] std::size_t chunk_count() const noexcept { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  [[nodiscard]] static std::uintptr_t align_up(std::uintptr_t p,
                                               std::size_t align) noexcept {
    return (p + (align - 1)) & ~static_cast<std::uintptr_t>(align - 1);
  }

  /// Makes the cursor point into a chunk with room for `bytes` @ `align`.
  /// After reset() this walks the retained chunk list before allocating,
  /// which is what makes reset-reuse deterministic and allocation-free.
  void grow(std::size_t bytes, std::size_t align) {
    const std::size_t need = bytes + align;
    while (next_chunk_ < chunks_.size()) {
      const Chunk& c = chunks_[next_chunk_++];
      if (c.size >= need) {
        cursor_ = reinterpret_cast<std::uintptr_t>(c.data.get());
        limit_ = cursor_ + c.size;
        return;
      }
    }
    std::size_t size = chunks_.empty() ? first_chunk_bytes_
                                       : std::min(chunks_.back().size * 2,
                                                  kMaxChunkBytes);
    if (size < need) size = need;
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(size), size});
    next_chunk_ = chunks_.size();
    cursor_ = reinterpret_cast<std::uintptr_t>(chunks_.back().data.get());
    limit_ = cursor_ + size;
  }

  std::size_t first_chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t next_chunk_ = 0;  ///< next retained chunk grow() may reuse
  std::uintptr_t cursor_ = 0;
  std::uintptr_t limit_ = 0;
  std::size_t bytes_allocated_ = 0;
  std::size_t high_water_ = 0;
};

/// STL allocator adapter over an Arena, usable with std::allocate_shared
/// (payloads + their control blocks in one bump allocation each) and
/// standard containers. deallocate() is a no-op: memory returns to the
/// system when the arena does.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) noexcept {}

  [[nodiscard]] Arena* arena() const noexcept { return arena_; }

  template <typename U>
  [[nodiscard]] bool operator==(const ArenaAllocator<U>& o) const noexcept {
    return arena_ == o.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace bftsim

// Performance metrics collected during a run (§II-C of the paper):
// time usage and message usage, plus per-node decision timestamps, view
// trajectories (for view-synchronization analysis, Fig. 9) and event counts.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "net/payload_type.hpp"

namespace bftsim {

/// One decision reported by one node.
struct Decision {
  NodeId node = kNoNode;
  Time at = 0;
  std::uint64_t height = 0;  ///< 0-based index of this node's decisions
  Value value = kBottom;
};

/// One view-entry record (node `node` entered `view` at time `at`).
struct ViewRecord {
  NodeId node = kNoNode;
  Time at = 0;
  View view = 0;
};

/// Mutable metrics sink owned by the controller.
class Metrics {
 public:
  void on_send() noexcept { ++messages_sent_; }
  void on_bytes(std::uint64_t bytes) noexcept { bytes_sent_ += bytes; }
  void on_deliver() noexcept { ++messages_delivered_; }
  void on_drop() noexcept { ++messages_dropped_; }
  void on_inject() noexcept { ++messages_injected_; }
  void on_corrupt() noexcept { ++messages_corrupted_; }
  void on_timer() noexcept { ++timers_fired_; }
  void on_event() noexcept { ++events_processed_; }

  // Attacker activity counters. Only the controller's attacker hook path
  // calls these (never the passive-attacker fast path), so attack-free
  // runs pay nothing for them.
  void on_attacker_drop() noexcept { ++attacker_dropped_; }
  void on_attacker_delay() noexcept { ++attacker_delayed_; }
  void on_attacker_modify() noexcept { ++attacker_modified_; }
  void on_attacker_duplicate() noexcept { ++attacker_duplicated_; }

  // WAN gossip backend counters (net/wan/): copies forwarded by non-origin
  // relayers, and received copies suppressed as duplicates. Serial-engine
  // only, but absorbed like every other counter for uniformity.
  void on_gossip_relay() noexcept { ++gossip_relayed_; }
  void on_gossip_duplicate() noexcept { ++gossip_duplicates_; }

  /// Per-kind message counting, hot path: one flat-array increment. The
  /// branch only fires for user-defined tags above the builtin range.
  void count_type(PayloadType t) {
    const std::size_t index = to_index(t);
    if (index >= typed_counts_.size()) [[unlikely]] {
      typed_counts_.resize(index + 1, 0);
    }
    ++typed_counts_[index];
  }

  /// Fallback for untagged payloads (PayloadType::kUnknown): counts under
  /// the payload's type() string. Allocates; not on the builtin hot path.
  void count_type(const std::string& type) { ++untyped_counts_[type]; }

  void on_decision(Decision d) { decisions_.push_back(d); }
  void on_view(ViewRecord v) { views_.push_back(v); }

  /// Adds another Metrics' counters and per-type counts into this one. The
  /// windowed-parallel driver accumulates per-lane deltas and folds them in
  /// at each window barrier (sums commute, so the result is lane-count
  /// independent). Ordered records (decisions_/views_) are deliberately NOT
  /// merged — they need deterministic ordering, which the driver provides
  /// by sorting its own product buffers before calling on_decision/on_view.
  void absorb(const Metrics& delta) {
    messages_sent_ += delta.messages_sent_;
    bytes_sent_ += delta.bytes_sent_;
    messages_delivered_ += delta.messages_delivered_;
    messages_dropped_ += delta.messages_dropped_;
    messages_injected_ += delta.messages_injected_;
    messages_corrupted_ += delta.messages_corrupted_;
    timers_fired_ += delta.timers_fired_;
    events_processed_ += delta.events_processed_;
    attacker_dropped_ += delta.attacker_dropped_;
    attacker_delayed_ += delta.attacker_delayed_;
    attacker_modified_ += delta.attacker_modified_;
    attacker_duplicated_ += delta.attacker_duplicated_;
    gossip_relayed_ += delta.gossip_relayed_;
    gossip_duplicates_ += delta.gossip_duplicates_;
    if (typed_counts_.size() < delta.typed_counts_.size()) {
      typed_counts_.resize(delta.typed_counts_.size(), 0);
    }
    for (std::size_t i = 0; i < delta.typed_counts_.size(); ++i) {
      typed_counts_[i] += delta.typed_counts_[i];
    }
    for (const auto& [type, count] : delta.untyped_counts_) {
      untyped_counts_[type] += count;
    }
  }

  [[nodiscard]] std::uint64_t messages_sent() const noexcept { return messages_sent_; }
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }
  [[nodiscard]] std::uint64_t messages_delivered() const noexcept { return messages_delivered_; }
  [[nodiscard]] std::uint64_t messages_dropped() const noexcept { return messages_dropped_; }
  [[nodiscard]] std::uint64_t messages_injected() const noexcept { return messages_injected_; }
  [[nodiscard]] std::uint64_t messages_corrupted() const noexcept { return messages_corrupted_; }
  [[nodiscard]] std::uint64_t timers_fired() const noexcept { return timers_fired_; }
  [[nodiscard]] std::uint64_t events_processed() const noexcept { return events_processed_; }
  [[nodiscard]] std::uint64_t attacker_dropped() const noexcept { return attacker_dropped_; }
  [[nodiscard]] std::uint64_t attacker_delayed() const noexcept { return attacker_delayed_; }
  [[nodiscard]] std::uint64_t attacker_modified() const noexcept { return attacker_modified_; }
  [[nodiscard]] std::uint64_t attacker_duplicated() const noexcept { return attacker_duplicated_; }
  [[nodiscard]] std::uint64_t gossip_relayed() const noexcept { return gossip_relayed_; }
  [[nodiscard]] std::uint64_t gossip_duplicates() const noexcept { return gossip_duplicates_; }
  /// Per-kind send counts keyed by human-readable name, rebuilt on demand
  /// from the flat tag array (via PayloadTypeRegistry) plus the untagged
  /// fallback map. Only report/teardown code calls this.
  [[nodiscard]] std::map<std::string, std::uint64_t> per_type() const;
  [[nodiscard]] const std::vector<Decision>& decisions() const noexcept {
    return decisions_;
  }
  [[nodiscard]] const std::vector<ViewRecord>& views() const noexcept {
    return views_;
  }

  /// Number of decisions reported so far by `node`.
  [[nodiscard]] std::uint64_t decision_count(NodeId node) const noexcept;

  /// Time at which every node in `nodes` had reported at least `k`
  /// decisions, or kNoTime if some node has not.
  [[nodiscard]] Time completion_time(const std::vector<NodeId>& nodes,
                                     std::uint64_t k) const noexcept;

 private:
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t messages_dropped_ = 0;
  std::uint64_t messages_injected_ = 0;
  std::uint64_t messages_corrupted_ = 0;
  std::uint64_t timers_fired_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t attacker_dropped_ = 0;
  std::uint64_t attacker_delayed_ = 0;
  std::uint64_t attacker_modified_ = 0;
  std::uint64_t attacker_duplicated_ = 0;
  std::uint64_t gossip_relayed_ = 0;
  std::uint64_t gossip_duplicates_ = 0;
  /// Indexed by to_index(PayloadType); pre-sized so builtin tags never grow it.
  std::vector<std::uint64_t> typed_counts_ =
      std::vector<std::uint64_t>(to_index(PayloadType::kBuiltinSentinel), 0);
  std::map<std::string, std::uint64_t> untyped_counts_;
  std::vector<Decision> decisions_;
  std::vector<ViewRecord> views_;
};

}  // namespace bftsim

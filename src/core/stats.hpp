// Small descriptive-statistics helpers used by the experiment runner and
// the figure-reproduction benches (mean, standard deviation, percentiles).
#pragma once

#include <cstddef>
#include <vector>

namespace bftsim {

/// Summary statistics of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Computes summary statistics of `sample` (empty input yields all zeros).
[[nodiscard]] Summary summarize(std::vector<double> sample);

/// Linear-interpolation percentile of a sorted sample, q in [0, 1].
[[nodiscard]] double percentile_sorted(const std::vector<double>& sorted, double q);

/// Incremental mean/variance accumulator (Welford's algorithm).
class Accumulator {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;  ///< sample variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace bftsim

// Simulation configuration.
//
// Mirrors the paper's usage: a user describes the network model and
// parameters, the BFT protocol, and optionally an attack scenario — either
// programmatically or as a JSON file (see examples/configs/).
#pragma once

#include <cstdint>
#include <string>

#include "core/json.hpp"
#include "core/types.hpp"
#include "faults/fault_config.hpp"
#include "net/wan/wan_spec.hpp"
#include "workload/workload_spec.hpp"
#include "obs/obs_config.hpp"

namespace bftsim {

/// Specification of the message-delay distribution (the paper's N(mu,sigma)
/// notation and friends). All parameters are in milliseconds.
struct DelaySpec {
  enum class Kind : std::uint8_t { kConstant, kUniform, kNormal, kExponential };

  Kind kind = Kind::kNormal;
  double a = 250.0;  ///< constant: value; uniform: lo; normal: mu; exp: mean
  double b = 50.0;   ///< uniform: hi; normal: sigma; otherwise unused
  double min_ms = 1.0;    ///< sampled delays are clamped below by this
  double max_ms = 0.0;    ///< optional upper clamp; 0 = unbounded

  [[nodiscard]] static DelaySpec constant(double ms) {
    return DelaySpec{Kind::kConstant, ms, 0.0, 1.0, 0.0};
  }
  [[nodiscard]] static DelaySpec uniform(double lo, double hi) {
    return DelaySpec{Kind::kUniform, lo, hi, 1.0, 0.0};
  }
  [[nodiscard]] static DelaySpec normal(double mu, double sigma) {
    return DelaySpec{Kind::kNormal, mu, sigma, 1.0, 0.0};
  }
  [[nodiscard]] static DelaySpec exponential(double mean) {
    return DelaySpec{Kind::kExponential, mean, 0.0, 1.0, 0.0};
  }

  [[nodiscard]] std::string describe() const;
  [[nodiscard]] json::Value to_json() const;
  /// Strict parse: unknown keys / out-of-range values throw a single-line
  /// error naming the JSON path (rooted at `path`).
  [[nodiscard]] static DelaySpec from_json(const json::Value& v,
                                           const std::string& path = "$.delay");
};

/// Computation-cost model (the paper's §III-A3 future-work note: estimate
/// computation time by counting computationally expensive operations such
/// as cryptography). When enabled, each node owns one simulated CPU:
/// verifying an incoming message and signing outgoing traffic occupy it,
/// so message processing serializes and throughput becomes measurable.
/// All costs in milliseconds; zero (the default) disables the model.
struct CostModel {
  double verify_ms = 0.0;  ///< per received network message
  double sign_ms = 0.0;    ///< per send/broadcast call (one signature)

  [[nodiscard]] bool enabled() const noexcept {
    return verify_ms > 0.0 || sign_ms > 0.0;
  }
  [[nodiscard]] json::Value to_json() const;
  [[nodiscard]] static CostModel from_json(const json::Value& v,
                                           const std::string& path = "$.cost");
};

/// Execution-engine knobs: how a run executes, never what it computes.
/// intra_jobs > 1 selects the windowed-parallel driver (sim/windowed.cpp),
/// which partitions nodes across lanes and executes bounded-lookahead time
/// windows concurrently. Results are bit-identical for every intra_jobs
/// value >= 1 under the per-node RNG mode; they differ from the legacy
/// single-stream mode only in which RNG stream each delay draw comes from
/// (see docs/PARALLELISM.md).
struct EngineConfig {
  /// Where network-delay / corruption draws come from.
  ///  - kAuto:    stream when intra_jobs == 1, per-node otherwise (default);
  ///  - kStream:  the legacy single shared stream (serial only);
  ///  - kPerNode: one forked stream per sending node — the windowed
  ///    algorithm even at intra_jobs == 1, giving a serial baseline that is
  ///    bit-identical to every parallel lane count.
  enum class RngMode : std::uint8_t { kAuto, kStream, kPerNode };
  static constexpr std::uint32_t kMaxIntraJobs = 128;

  std::uint32_t intra_jobs = 1;  ///< worker lanes for one run; 1 = serial
  RngMode rng = RngMode::kAuto;

  /// True when the run uses per-node RNG streams (and thus the windowed
  /// driver), either explicitly or via kAuto + intra_jobs > 1.
  [[nodiscard]] bool per_node_rng() const noexcept {
    return rng == RngMode::kPerNode ||
           (rng == RngMode::kAuto && intra_jobs > 1);
  }
  /// True when any knob differs from the defaults (gates JSON emission).
  [[nodiscard]] bool active() const noexcept {
    return intra_jobs != 1 || rng != RngMode::kAuto;
  }

  [[nodiscard]] json::Value to_json() const;
  [[nodiscard]] static EngineConfig from_json(const json::Value& v,
                                              const std::string& path = "$.engine");
};

/// Full configuration of one simulation run.
struct SimConfig {
  /// Registered protocol name: "addv1", "addv2", "addv3", "algorand",
  /// "asyncba", "pbft", "hotstuff-ns", "librabft".
  std::string protocol = "pbft";

  std::uint32_t n = 16;       ///< total number of nodes the protocol assumes
  std::uint32_t honest = 0;   ///< number of live honest nodes; 0 means n.
                              ///< n - honest nodes are fail-stopped (§III-C)
  double lambda_ms = 1000.0;  ///< the protocol's configured delay bound λ
  DelaySpec delay = DelaySpec::normal(250.0, 50.0);

  std::uint64_t seed = 1;          ///< master seed; everything derives from it
  std::uint32_t decisions = 1;     ///< stop after this many decided values
  double max_time_ms = 600'000.0;  ///< simulated-time horizon (liveness guard)
  std::uint64_t max_events = 50'000'000;  ///< event-count guard

  std::string attack;         ///< "", "partition", "add-static", "add-adaptive"
  json::Value attack_params;  ///< attack-specific parameters (JSON object)
  json::Value protocol_params;  ///< protocol-specific knobs (JSON object)

  CostModel cost;             ///< optional computation-cost model
  /// Geo-distribution: regions > 1 applies cross-region delay penalties
  /// (declared in net/topology.hpp; stored as JSON here to keep layering).
  json::Value topology;

  /// Topology-aware WAN transport backend: geo RTT matrices, per-node
  /// bandwidth queues, gossip dissemination. Disabled by default; mutually
  /// exclusive with the simpler $.topology transform. See docs/NETWORKING.md.
  WanSpec net;

  /// Deterministic fault scenario (crash/recover windows, link flaps,
  /// message corruption, clock skew); disabled by default. See docs/FAULTS.md.
  FaultConfig faults;

  /// Client workload generator: open/closed-loop request arrivals batched
  /// into proposals, request-level latency percentiles. Disabled by
  /// default. See docs/WORKLOADS.md.
  WorkloadSpec workload;

  bool record_trace = false;  ///< record full message trace (validator input)
  bool record_views = true;   ///< record per-node view changes (Fig. 9)

  /// Observability: trace sink selection (memory/jsonl/binary) and the
  /// run-timeline sampler; all default-off. See docs/OBSERVABILITY.md.
  ObsConfig obs;

  /// Execution engine: intra-run parallelism and RNG layout. Changing these
  /// never changes which protocol states are reachable — see EngineConfig.
  EngineConfig engine;

  /// Number of live (non-fail-stopped) nodes.
  [[nodiscard]] std::uint32_t live_nodes() const noexcept {
    return honest == 0 ? n : honest;
  }

  /// Throws std::invalid_argument when inconsistent.
  void validate() const;

  [[nodiscard]] json::Value to_json() const;
  [[nodiscard]] static SimConfig from_json(const json::Value& v);
  [[nodiscard]] static SimConfig from_file(const std::string& path);
};

}  // namespace bftsim

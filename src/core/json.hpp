// Minimal JSON support for configuration files and result dumps.
//
// Implements the subset of RFC 8259 the simulator needs: objects, arrays,
// strings (with \uXXXX escapes for the BMP), numbers, booleans and null.
// Parsing is strict (trailing garbage is an error); serialization is
// deterministic (object keys keep insertion order).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace bftsim::json {

class Value;

using Array = std::vector<Value>;

/// Order-preserving string->Value map (configs are small; linear is fine).
class Object {
 public:
  [[nodiscard]] bool contains(const std::string& key) const noexcept;
  [[nodiscard]] const Value* find(const std::string& key) const noexcept;
  Value& operator[](const std::string& key);  ///< inserts null if absent
  [[nodiscard]] const Value& at(const std::string& key) const;  ///< throws
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] auto begin() const noexcept { return entries_.begin(); }
  [[nodiscard]] auto end() const noexcept { return entries_.end(); }

 private:
  std::vector<std::pair<std::string, Value>> entries_;
};

enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

/// Error thrown on parse failures and type mismatches.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A JSON value (tagged union with value semantics).
class Value {
 public:
  Value() : kind_(Kind::kNull) {}
  Value(std::nullptr_t) : kind_(Kind::kNull) {}
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  Value(double d) : kind_(Kind::kNumber), num_(d) {}
  Value(int i) : kind_(Kind::kNumber), num_(i) {}
  Value(std::int64_t i) : kind_(Kind::kNumber), num_(static_cast<double>(i)) {}
  Value(std::uint64_t u) : kind_(Kind::kNumber), num_(static_cast<double>(u)) {}
  Value(const char* s) : kind_(Kind::kString), str_(s) {}
  Value(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  Value(Array a) : kind_(Kind::kArray), arr_(std::make_shared<Array>(std::move(a))) {}
  Value(Object o) : kind_(Kind::kObject), obj_(std::make_shared<Object>(std::move(o))) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] Object& as_object();

  /// Typed lookups with defaults, for config reading.
  [[nodiscard]] double get_number(const std::string& key, double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;

  /// Serializes this value. `indent` > 0 pretty-prints.
  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::shared_ptr<Array> arr_;   // shared for cheap copies; treated as value
  std::shared_ptr<Object> obj_;  // (copy-on-write is unnecessary for configs)
};

/// Parses a complete JSON document; throws json::Error on malformed input.
[[nodiscard]] Value parse(std::string_view text);

/// Parses the JSON document in file `path`; throws json::Error on failure.
[[nodiscard]] Value parse_file(const std::string& path);

}  // namespace bftsim::json

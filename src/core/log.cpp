#include "core/log.hpp"

#include <iostream>
#include <mutex>

namespace bftsim {

LogLevel Log::level_ = LogLevel::kOff;
std::ostream* Log::sink_ = &std::cerr;

void Log::write(LogLevel level, const std::string& line) {
  if (!enabled(level)) return;
  // Parallel experiment runs share the sink; serialize whole lines.
  static std::mutex mutex;
  const std::lock_guard<std::mutex> lock(mutex);
  const char* tag = "";
  switch (level) {
    case LogLevel::kError: tag = "[error] "; break;
    case LogLevel::kInfo: tag = "[info]  "; break;
    case LogLevel::kDebug: tag = "[debug] "; break;
    case LogLevel::kOff: return;
  }
  (*sink_) << tag << line << '\n';
}

}  // namespace bftsim

// Deterministic random number generation.
//
// The simulator must be bit-for-bit reproducible across runs and platforms,
// so we do not use <random>'s distribution objects (whose output is
// implementation-defined). Instead we provide our own engine (xoshiro256++)
// and our own samplers (uniform, normal via Box-Muller, exponential).
//
// Every stochastic component (network, attacker, each node, the VRF) gets an
// independent stream derived from the run seed via SplitMix64, so adding a
// random draw to one component never perturbs another component's sequence.
#pragma once

#include <cstdint>

namespace bftsim {

/// SplitMix64 step: the standard 64-bit seed expander / mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// A deterministic, high-quality PRNG (xoshiro256++) with explicit samplers.
class Rng {
 public:
  /// Constructs a stream from a 64-bit seed (expanded via SplitMix64).
  explicit Rng(std::uint64_t seed = 0) noexcept { reseed(seed); }

  /// Re-initializes the stream from `seed`.
  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Next raw 64-bit output.
  [[nodiscard]] std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Lemire's nearly-divisionless bounded sampling, debiased.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Fair coin flip.
  [[nodiscard]] bool next_bool() noexcept { return (next_u64() >> 63) != 0; }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Normally distributed double with the given mean / standard deviation
  /// (Box-Muller; one value per call for cross-platform determinism).
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Exponentially distributed double with the given mean (= 1/rate).
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Derives an independent child stream; deterministic in (this stream's
  /// current state, `salt`).
  [[nodiscard]] Rng fork(std::uint64_t salt) noexcept {
    std::uint64_t sm = next_u64() ^ (salt * 0x9e3779b97f4a7c15ULL);
    return Rng{splitmix64(sm)};
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace bftsim

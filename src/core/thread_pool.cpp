#include "core/thread_pool.hpp"

#include <cstdlib>
#include <exception>
#include <utility>

namespace bftsim {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  stop_flag_.store(true, std::memory_order_release);
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  ready_.fetch_add(1, std::memory_order_release);
  work_cv_.notify_one();
}

void ThreadPool::submit_batch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::function<void()>& task : tasks) {
      queue_.push_back(std::move(task));
    }
  }
  ready_.fetch_add(tasks.size(), std::memory_order_release);
  work_cv_.notify_all();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    // The first exception is rethrown unchanged; record how many later
    // failures are being discarded with it so callers can report them
    // instead of silently losing the information.
    last_suppressed_ = std::exchange(suppressed_errors_, 0);
    lock.unlock();
    std::rethrow_exception(error);
  }
  last_suppressed_ = 0;
  suppressed_errors_ = 0;
}

void ThreadPool::worker_loop() {
  for (;;) {
    // Spin-then-park: watch the lock-free mirrors briefly before taking the
    // mutex, so a barrier-cadenced producer (the windowed engine) re-wakes
    // workers without a futex round trip per window.
    for (int spin = 0; spin < kSpinIters; ++spin) {
      if (ready_.load(std::memory_order_acquire) > 0 ||
          stop_flag_.load(std::memory_order_acquire)) {
        break;
      }
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#elif defined(__aarch64__)
      asm volatile("yield");
#endif
    }
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ready_.fetch_sub(1, std::memory_order_relaxed);
      ++in_flight_;
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (error != nullptr) {
        if (first_error_ == nullptr) {
          first_error_ = std::move(error);
        } else {
          ++suppressed_errors_;
        }
      }
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

std::size_t ThreadPool::default_workers() {
  if (const char* env = std::getenv("BFTSIM_JOBS")) {
    const long value = std::strtol(env, nullptr, 10);
    if (value > 0) return static_cast<std::size_t>(value);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;

  struct Shared {
    std::mutex mutex;
    std::condition_variable done_cv;
    std::size_t done = 0;
    std::vector<std::exception_ptr> errors;
  } shared;
  shared.errors.resize(count);

  std::vector<std::function<void()>> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    batch.push_back([&shared, &fn, i, count] {
      try {
        fn(i);
      } catch (...) {
        shared.errors[i] = std::current_exception();
      }
      const std::lock_guard<std::mutex> lock(shared.mutex);
      if (++shared.done == count) shared.done_cv.notify_all();
    });
  }
  pool.submit_batch(std::move(batch));

  std::unique_lock<std::mutex> lock(shared.mutex);
  shared.done_cv.wait(lock, [&shared, count] { return shared.done == count; });
  lock.unlock();

  for (std::exception_ptr& error : shared.errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace bftsim

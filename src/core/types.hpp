// Fundamental value types shared by every subsystem of the simulator.
//
// The simulator measures time in integer microseconds ("Time") so that event
// ordering is exact and runs are bit-for-bit reproducible; configuration
// surfaces use floating-point milliseconds, matching the units of the paper.
#pragma once

#include <cstdint>
#include <limits>

namespace bftsim {

/// Identifier of a simulated node. Nodes are numbered 0..n-1.
using NodeId = std::uint32_t;

/// Simulated time in integer microseconds since the start of the run.
using Time = std::int64_t;

/// A view / round number of a view-based protocol.
using View = std::uint64_t;

/// An opaque proposed/decided value (e.g. a block or request digest).
using Value = std::uint64_t;

/// Identifier of a pending timer registration.
using TimerId = std::uint64_t;

/// One microsecond, expressed in Time units.
inline constexpr Time kMicrosecond = 1;
/// One millisecond, expressed in Time units.
inline constexpr Time kMillisecond = 1000;
/// One second, expressed in Time units.
inline constexpr Time kSecond = 1000 * kMillisecond;

/// Sentinel meaning "no time" / "unset".
inline constexpr Time kNoTime = std::numeric_limits<Time>::min();

/// Sentinel meaning "no node" (used for e.g. broadcast origins).
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Sentinel for an undecided / bottom value (Bracha's "⊥").
inline constexpr Value kBottom = std::numeric_limits<Value>::max();

/// Converts floating-point milliseconds (config units) to simulated Time.
[[nodiscard]] constexpr Time from_ms(double ms) noexcept {
  return static_cast<Time>(ms * static_cast<double>(kMillisecond));
}

/// Converts simulated Time to floating-point milliseconds (report units).
[[nodiscard]] constexpr double to_ms(Time t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

/// Converts simulated Time to floating-point seconds (report units).
[[nodiscard]] constexpr double to_sec(Time t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

}  // namespace bftsim

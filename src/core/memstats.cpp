#include "core/memstats.hpp"

#include <cstdio>
#include <cstring>

#if defined(__linux__)
#include <malloc.h>
#endif

namespace bftsim {

namespace {

/// Reads a "<key>:   <value> kB" line from /proc/self/status; 0 on any
/// failure (non-Linux, locked-down /proc, renamed field).
std::size_t read_status_kb(const char* key) {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  const std::size_t key_len = std::strlen(key);
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) != 0 || line[key_len] != ':') continue;
    unsigned long long value = 0;
    if (std::sscanf(line + key_len + 1, "%llu", &value) == 1) {
      kb = static_cast<std::size_t>(value);
    }
    break;
  }
  std::fclose(f);
  return kb;
#else
  (void)key;
  return 0;
#endif
}

}  // namespace

std::size_t current_rss_bytes() { return read_status_kb("VmRSS") * 1024; }

std::size_t peak_rss_bytes() { return read_status_kb("VmHWM") * 1024; }

bool reset_peak_rss() noexcept {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return false;
  const bool ok = std::fputs("5", f) >= 0;
  return (std::fclose(f) == 0) && ok;
#else
  return false;
#endif
}

void trim_heap() noexcept {
#if defined(__linux__) && defined(__GLIBC__)
  malloc_trim(0);
#endif
}

}  // namespace bftsim

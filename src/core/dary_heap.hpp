// A d-ary min-heap over a flat vector.
//
// The simulator's event queue is the single hottest data structure: every
// scheduled message and timer passes through one push and one pop. A 4-ary
// layout halves the tree depth of a binary heap (fewer cache lines touched
// per sift), the flat vector recycles its capacity across the whole run
// (no per-event allocation once warm), and pop() moves the root out
// instead of copying it — for event bodies holding shared_ptr payloads the
// classic top()-then-pop() double-handles every refcount.
//
// Determinism: for a strict-weak ordering whose keys are unique (the event
// queue orders by (time, seq) with seq unique), the pop sequence is the
// sorted order regardless of the heap's internal layout, so replacing the
// heap implementation cannot change simulation results.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace bftsim {

/// Min-heap: `Less(a, b)` true means `a` pops before `b`.
template <typename T, unsigned Arity = 4, typename Less = std::less<T>>
class DaryHeap {
  static_assert(Arity >= 2, "a heap needs at least two children per node");

 public:
  DaryHeap() = default;
  explicit DaryHeap(Less less) : less_(std::move(less)) {}

  void reserve(std::size_t n) { slots_.reserve(n); }

  [[nodiscard]] bool empty() const noexcept { return slots_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.capacity(); }

  /// The minimum element. Precondition: !empty().
  [[nodiscard]] const T& top() const noexcept { return slots_.front(); }

  void push(T value) {
    slots_.push_back(std::move(value));
    sift_up(slots_.size() - 1);
  }

  template <typename... Args>
  void emplace(Args&&... args) {
    slots_.emplace_back(std::forward<Args>(args)...);
    sift_up(slots_.size() - 1);
  }

  /// Removes and returns the minimum element by move. Precondition: !empty().
  [[nodiscard]] T pop() {
    T out = std::move(slots_.front());
    if (slots_.size() > 1) {
      slots_.front() = std::move(slots_.back());
      slots_.pop_back();
      sift_down(0);
    } else {
      slots_.pop_back();
    }
    return out;
  }

  void clear() noexcept { slots_.clear(); }

 private:
  /// Bubbles the element at `index` toward the root ("hole" technique: the
  /// element is held aside and parents shift down, one move per level
  /// instead of a three-move swap).
  void sift_up(std::size_t index) {
    T value = std::move(slots_[index]);
    while (index > 0) {
      const std::size_t parent = (index - 1) / Arity;
      if (!less_(value, slots_[parent])) break;
      slots_[index] = std::move(slots_[parent]);
      index = parent;
    }
    slots_[index] = std::move(value);
  }

  /// Sifts the element at `index` down into its position (hole technique).
  void sift_down(std::size_t index) {
    T value = std::move(slots_[index]);
    const std::size_t count = slots_.size();
    for (;;) {
      const std::size_t first_child = index * Arity + 1;
      if (first_child >= count) break;
      const std::size_t last_child =
          first_child + Arity <= count ? first_child + Arity : count;
      std::size_t best = first_child;
      for (std::size_t child = first_child + 1; child < last_child; ++child) {
        if (less_(slots_[child], slots_[best])) best = child;
      }
      if (!less_(slots_[best], value)) break;
      slots_[index] = std::move(slots_[best]);
      index = best;
    }
    slots_[index] = std::move(value);
  }

  std::vector<T> slots_;
  [[no_unique_address]] Less less_;
};

}  // namespace bftsim

// Simulation events.
//
// The simulator is a classic discrete-event system (Law, "Simulation
// Modeling and Analysis"): a priority queue of timestamped events drives a
// virtual clock. Two event kinds exist, mirroring the paper's design:
//   - message events: a node receives a message;
//   - time events:    a previously registered timer fires.
#pragma once

#include <cstdint>
#include <variant>

#include "core/types.hpp"
#include "net/message.hpp"

namespace bftsim {

/// Who registered a timer (and therefore who receives its firing).
/// kFault timers carry a fault-timeline index in their tag and drive the
/// fault injector's crash/recover and link up/down transitions.
enum class TimerOwner : std::uint8_t { kNode, kAttacker, kSystem, kFault };

/// A message event: the envelope at store index `env` materializes into a
/// Message and is delivered to `dst`. The 8-byte handle replaces the full
/// Message the event used to carry — the payload, source, send time and id
/// live once per transmission in the controller's EnvelopeStore (a
/// broadcast's n-1 deliveries share one envelope; see net/envelope.hpp).
/// Windowed-parallel runs pack the owning lane into the handle's high bits
/// (see sim/windowed.cpp).
struct MessageDelivery {
  std::uint32_t env = 0;
  NodeId dst = kNoNode;
};

/// A time event: timer `timer` with user `tag` fires for its owner.
struct TimerFire {
  TimerOwner owner = TimerOwner::kNode;
  NodeId node = kNoNode;  ///< meaningful when owner == kNode
  TimerId timer = 0;
  std::uint64_t tag = 0;
};

/// The timer-firing view handed to Node / Attacker callbacks.
struct TimerEvent {
  TimerId id = 0;
  std::uint64_t tag = 0;
  Time fired_at = 0;
};

/// A queued simulation event. `seq` is a global monotonically increasing
/// tie-breaker so that events with equal timestamps pop in insertion order,
/// making every run fully deterministic.
struct Event {
  Time at = 0;
  std::uint64_t seq = 0;
  std::variant<MessageDelivery, TimerFire> body;
};

}  // namespace bftsim

#include "core/stats.hpp"

#include <algorithm>
#include <cmath>

namespace bftsim {

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::vector<double> sample) {
  Summary s;
  if (sample.empty()) return s;
  std::sort(sample.begin(), sample.end());
  s.count = sample.size();
  s.min = sample.front();
  s.max = sample.back();
  s.median = percentile_sorted(sample, 0.5);
  s.p90 = percentile_sorted(sample, 0.9);
  s.p99 = percentile_sorted(sample, 0.99);
  Accumulator acc;
  for (double x : sample) acc.add(x);
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  return s;
}

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace bftsim

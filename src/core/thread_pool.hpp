// Fixed-size worker pool for fanning independent simulation runs across
// cores. Deliberately minimal — one shared FIFO task queue, no work
// stealing, no futures: the experiment runner derives all seeds up front,
// so tasks are uniform and a single queue keeps execution order (and thus
// aggregation order) easy to reason about. Destruction drains the queue
// and joins every worker.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bftsim {

/// A fixed set of worker threads consuming one FIFO queue of tasks.
class ThreadPool {
 public:
  /// Spawns `workers` threads (0 is treated as 1).
  explicit ThreadPool(std::size_t workers);

  /// Drains the remaining queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker. An exception escaping
  /// the task is captured (it never terminates the worker or the process)
  /// and rethrown from the next wait_idle() call; parallel_for() offers
  /// deterministic per-index propagation for batch work.
  void submit(std::function<void()> task);

  /// Enqueues every task in `tasks` under ONE queue lock and one
  /// notify_all. The windowed-parallel engine submits a lane batch at
  /// every window barrier; per-task submit() would take the lock (and wake
  /// the workers) once per lane per window.
  void submit_batch(std::vector<std::function<void()>> tasks);

  /// Blocks until every task submitted so far has finished (the queue is
  /// empty and no worker is mid-task). If any task threw since the last
  /// call, rethrows the first captured exception; how many further task
  /// exceptions were discarded alongside it is reported by
  /// last_suppressed_failures() until the next wait_idle() call.
  void wait_idle();

  /// Number of task exceptions discarded by the most recent wait_idle()
  /// that rethrew (every captured failure beyond the first). Zero when the
  /// last wait_idle() returned cleanly.
  [[nodiscard]] std::size_t last_suppressed_failures() const noexcept {
    return last_suppressed_;
  }

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }

  /// Worker count to use when the caller does not specify one: the
  /// BFTSIM_JOBS environment variable if set to a positive integer, else
  /// std::thread::hardware_concurrency() (at least 1).
  [[nodiscard]] static std::size_t default_workers();

 private:
  void worker_loop();

  /// Bounded spin iterations an idle worker burns watching ready_ before
  /// parking on the condition variable. Windowed-parallel barriers resubmit
  /// work within microseconds; a short spin turns the park/unpark round
  /// trip (two syscalls per lane per window) into a pair of atomic loads.
  /// Small enough that a genuinely idle pool parks almost immediately.
  static constexpr int kSpinIters = 4096;

  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< signals workers: task or shutdown
  std::condition_variable idle_cv_;  ///< signals wait_idle(): drained
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;  ///< tasks popped but not yet finished
  bool stopping_ = false;
  /// Lock-free mirrors of queue_.size() / stopping_ for the spin phase.
  std::atomic<std::size_t> ready_{0};
  std::atomic<bool> stop_flag_{false};
  std::exception_ptr first_error_;  ///< first escaped task exception
  std::size_t suppressed_errors_ = 0;  ///< escaped exceptions after the first
  std::size_t last_suppressed_ = 0;    ///< suppressed count of last rethrow
};

/// Runs `fn(i)` for every i in [0, count) on `pool` and blocks until all
/// calls return. Exceptions are caught per index; after completion the one
/// with the lowest index is rethrown on the calling thread (so failures
/// are deterministic regardless of scheduling).
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

}  // namespace bftsim

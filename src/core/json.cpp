#include "core/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace bftsim::json {

bool Object::contains(const std::string& key) const noexcept {
  return find(key) != nullptr;
}

const Value* Object::find(const std::string& key) const noexcept {
  for (const auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value& Object::operator[](const std::string& key) {
  for (auto& [k, v] : entries_) {
    if (k == key) return v;
  }
  entries_.emplace_back(key, Value{});
  return entries_.back().second;
}

const Value& Object::at(const std::string& key) const {
  if (const Value* v = find(key)) return *v;
  throw Error("json: missing key '" + key + "'");
}

bool Value::as_bool() const {
  if (!is_bool()) throw Error("json: not a bool");
  return bool_;
}

double Value::as_number() const {
  if (!is_number()) throw Error("json: not a number");
  return num_;
}

std::int64_t Value::as_int() const {
  if (!is_number()) throw Error("json: not a number");
  return static_cast<std::int64_t>(std::llround(num_));
}

const std::string& Value::as_string() const {
  if (!is_string()) throw Error("json: not a string");
  return str_;
}

const Array& Value::as_array() const {
  if (!is_array()) throw Error("json: not an array");
  return *arr_;
}

const Object& Value::as_object() const {
  if (!is_object()) throw Error("json: not an object");
  return *obj_;
}

Array& Value::as_array() {
  if (!is_array()) throw Error("json: not an array");
  return *arr_;
}

Object& Value::as_object() {
  if (!is_object()) throw Error("json: not an object");
  return *obj_;
}

double Value::get_number(const std::string& key, double fallback) const {
  const Value* v = as_object().find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

std::int64_t Value::get_int(const std::string& key, std::int64_t fallback) const {
  const Value* v = as_object().find(key);
  return (v != nullptr && v->is_number()) ? v->as_int() : fallback;
}

bool Value::get_bool(const std::string& key, bool fallback) const {
  const Value* v = as_object().find(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : fallback;
}

std::string Value::get_string(const std::string& key,
                              const std::string& fallback) const {
  const Value* v = as_object().find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : fallback;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double d) {
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    out += std::to_string(static_cast<std::int64_t>(d));
  } else {
    std::ostringstream os;
    os.precision(17);
    os << d;
    out += os.str();
  }
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Value::dump_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: append_number(out, num_); break;
    case Kind::kString: append_escaped(out, str_); break;
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Value& v : *arr_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      if (!first) newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : *obj_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        append_escaped(out, k);
        out += indent > 0 ? ": " : ":";
        v.dump_to(out, indent, depth + 1);
      }
      if (!first) newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw Error("json: " + why + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  [[nodiscard]] char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) fail(std::string("expected '") + c + "'");
  }

  void expect_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) fail("invalid literal");
    pos_ += word.size();
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value{parse_string()};
      case 't': expect_word("true"); return Value{true};
      case 'f': expect_word("false"); return Value{false};
      case 'n': expect_word("null"); return Value{nullptr};
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value{std::move(obj)};
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      const char c = take();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return Value{std::move(obj)};
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value{std::move(arr)};
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return Value{std::move(arr)};
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') break;
      if (c == '\\') {
        const char esc = take();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // Encode the BMP code point as UTF-8 (surrogates unsupported).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("bad escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character");
      } else {
        out += c;
      }
    }
    return out;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double out = 0.0;
    const auto* first = text_.data() + start;
    const auto* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, out);
    if (ec != std::errc{} || ptr != last || first == last) fail("bad number");
    return Value{out};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser{text}.parse_document(); }

Value parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("json: cannot open file '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

}  // namespace bftsim::json

#include "core/trace.hpp"

#include <sstream>

namespace bftsim {

std::string_view to_string(TraceKind kind) noexcept {
  switch (kind) {
    case TraceKind::kSend: return "send";
    case TraceKind::kDeliver: return "deliver";
    case TraceKind::kDrop: return "drop";
    case TraceKind::kTimerFire: return "timer";
    case TraceKind::kDecide: return "decide";
    case TraceKind::kViewChange: return "view";
    case TraceKind::kCorrupt: return "corrupt";
  }
  return "?";
}

std::string TraceRecord::to_string() const {
  std::ostringstream os;
  os << "[" << to_ms(at) << "ms] " << bftsim::to_string(kind);
  switch (kind) {
    case TraceKind::kSend:
    case TraceKind::kDeliver:
    case TraceKind::kDrop:
      os << " " << a << "->" << b << " " << type << " #" << msg_id;
      break;
    case TraceKind::kTimerFire:
      os << " node " << a;
      break;
    case TraceKind::kDecide:
      os << " node " << a << " height " << view << " value " << value;
      break;
    case TraceKind::kViewChange:
      os << " node " << a << " view " << view;
      break;
    case TraceKind::kCorrupt:
      os << " node " << a;
      break;
  }
  return os.str();
}

}  // namespace bftsim

// Process-memory introspection for the scaling bench and the large-n
// smoke tests: resident-set readings from /proc/self/status on Linux,
// zeros elsewhere (callers must treat 0 as "unavailable", never as a
// measurement).
#pragma once

#include <cstddef>

namespace bftsim {

/// Current resident set size (VmRSS) in bytes; 0 when unavailable.
[[nodiscard]] std::size_t current_rss_bytes();

/// Peak resident set size (VmHWM) in bytes; 0 when unavailable.
[[nodiscard]] std::size_t peak_rss_bytes();

/// Resets the kernel's peak-RSS watermark (VmHWM) to the current RSS by
/// writing "5" to /proc/self/clear_refs, so per-phase peaks can be
/// attributed (measure: reset, run the phase, read peak_rss_bytes()).
/// Returns false when unsupported; peak readings then cover the whole
/// process lifetime instead of the phase.
bool reset_peak_rss() noexcept;

/// Asks the allocator to return freed heap pages to the OS (malloc_trim
/// on glibc, no-op elsewhere), so a current_rss_bytes() baseline taken
/// between phases reflects live data rather than allocator caches.
void trim_heap() noexcept;

}  // namespace bftsim

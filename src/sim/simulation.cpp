#include "sim/simulation.hpp"

#include <chrono>

#include "sim/controller.hpp"

namespace bftsim {

RunResult run_simulation(const SimConfig& cfg) {
  const auto start = std::chrono::steady_clock::now();
  Controller controller{cfg};
  RunResult result = controller.run();
  const auto end = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(end - start).count();
  return result;
}

}  // namespace bftsim

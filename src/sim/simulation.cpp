// The run facade: builds a Controller for one configuration, runs it to
// termination, and stamps the host wall-clock cost onto the result. Each
// call owns its Controller (and thus its event queue, RNG streams and
// metrics), so concurrent calls from the parallel runner never share
// mutable state.
#include "sim/simulation.hpp"

#include <chrono>

#include "sim/controller.hpp"

namespace bftsim {

RunResult run_simulation(const SimConfig& cfg) {
  const auto start = std::chrono::steady_clock::now();
  Controller controller{cfg};
  RunResult result = controller.run();
  const auto end = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(end - start).count();
  return result;
}

}  // namespace bftsim

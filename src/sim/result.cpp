// Derived metrics over one run's recorded outcome: k-th decision
// completion times, round complexity (§II-C), and the cross-node
// decision-consistency (safety) check used by the tests.
#include "sim/result.hpp"

#include <algorithm>
#include <limits>
#include <map>

namespace bftsim {

Time RunResult::kth_completion(std::uint64_t k) const noexcept {
  if (k == 0) return 0;
  Time latest = kNoTime;
  for (const NodeId node : honest) {
    std::uint64_t seen = 0;
    Time at = kNoTime;
    for (const Decision& d : decisions) {
      if (d.node != node) continue;
      if (++seen == k) {
        at = d.at;
        break;
      }
    }
    if (at == kNoTime) return kNoTime;
    latest = std::max(latest, at);
  }
  return latest;
}

View RunResult::rounds_used() const noexcept {
  View highest = 0;
  const Time end = termination_time == kNoTime
                       ? std::numeric_limits<Time>::max()
                       : termination_time;
  for (const ViewRecord& rec : views) {
    if (rec.at <= end) highest = std::max(highest, rec.view);
  }
  return highest;
}

bool RunResult::decisions_consistent() const noexcept {
  std::map<std::uint64_t, Value> first_at_height;
  for (const Decision& d : decisions) {
    if (std::find(honest.begin(), honest.end(), d.node) == honest.end()) continue;
    const auto [it, inserted] = first_at_height.emplace(d.height, d.value);
    if (!inserted && it->second != d.value) return false;
  }
  return true;
}

}  // namespace bftsim

// Windowed-parallel run driver. See windowed.hpp for the scheme and the
// determinism argument; this file mirrors the serial controller paths
// (network_send / network_broadcast / deliver_now / dispatch) with three
// systematic substitutions: now_ -> the lane clock, next_msg_id_ /
// next_timer_id_ -> per-origin key counters, and direct metric / trace /
// decision emission -> per-lane buffers merged at window barriers.
#include "sim/windowed.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/log.hpp"
#include "faults/fault_injector.hpp"
#include "sim/controller.hpp"
#include "workload/workload_manager.hpp"

namespace bftsim {

namespace {

// Timer-ledger states, per (node, key counter): the same lazy-deletion
// scheme as EventQueue's ledger, but per node so lanes never share it.
constexpr std::uint8_t kIdle = 0;
constexpr std::uint8_t kPending = 1;
constexpr std::uint8_t kCancelled = 2;

}  // namespace

Time compute_lookahead(const SimConfig& cfg) noexcept {
  const DelaySpec& d = cfg.delay;
  // Infimum of the sampled delay before clamping: constant and uniform have
  // a hard lower edge at `a`; normal and exponential can sample arbitrarily
  // low and rely entirely on the min_ms clamp.
  double lo_ms = 0.0;
  switch (d.kind) {
    case DelaySpec::Kind::kConstant:
    case DelaySpec::Kind::kUniform:
      lo_ms = d.a;
      break;
    case DelaySpec::Kind::kNormal:
    case DelaySpec::Kind::kExponential:
      lo_ms = 0.0;
      break;
  }
  if (lo_ms < d.min_ms) lo_ms = d.min_ms;
  if (d.max_ms > 0.0 && lo_ms > d.max_ms) lo_ms = d.max_ms;
  Time lo = from_ms(lo_ms);

  // The topology transformation applies per destination pair; with
  // cross_factor < 1 a cross-region delay can undercut the flat bound, so
  // take the minimum over both forms.
  if (cfg.topology.is_object()) {
    const TopologySpec topo = TopologySpec::from_json(cfg.topology);
    if (topo.enabled()) {
      const double scaled =
          static_cast<double>(lo) * topo.cross_factor + topo.cross_extra_ms * 1000.0;
      lo = std::min(lo, static_cast<Time>(scaled));
    }
  }

  // The WAN backend's RTT matrix adds a pure per-region-pair propagation
  // base on top of every sampled draw, so the infimum grows by the smallest
  // one-way entry. Bandwidth serialization only ever adds further delay, so
  // ignoring it keeps the result a valid lower bound (and gossip/bandwidth
  // runs are serial-only anyway — see SimConfig::validate).
  if (cfg.net.has_matrix()) lo += from_ms(cfg.net.min_one_way_ms());

  // Conservative safety margin for configured clock imperfection: skewed
  // timers are node-local and never cross lanes, but shrinking the window
  // by the worst-case skew keeps the bound defensible even if a future
  // fault kind lets skew leak into message timing.
  if (cfg.faults.clock.enabled()) {
    const double skewed = static_cast<double>(lo) -
                          cfg.faults.clock.max_skew_ms * 1000.0 -
                          static_cast<double>(lo) * cfg.faults.clock.max_drift;
    lo = static_cast<Time>(skewed);
  }
  return std::max<Time>(lo, 0);
}

std::uint32_t effective_lanes(const SimConfig& cfg) noexcept {
  if (compute_lookahead(cfg) <= 0) return 1;  // no safe window: self-degrade
  const std::uint32_t lanes =
      std::min(cfg.engine.intra_jobs, EngineConfig::kMaxIntraJobs);
  return std::max(1u, std::min(lanes, cfg.n));
}

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

WindowedEngine::WindowedEngine(Controller& c) : c_(c) {
  const SimConfig& cfg = c_.cfg_;
  lanes_n_ = effective_lanes(cfg);
  lookahead_ = compute_lookahead(cfg);

  // The gated semantic change: one delay/corruption stream per sending
  // node, forked off the shared streams in node order (so the layout is a
  // function of the seed alone, never of the lane count).
  net_rngs_.reserve(cfg.n);
  for (NodeId i = 0; i < cfg.n; ++i) net_rngs_.push_back(c_.net_rng_.fork(i));
  if (c_.faults_ != nullptr) c_.faults_->fork_corruption_streams(cfg.n);

  wctr_.assign(cfg.n, 0);
  tstate_.resize(cfg.n);

  const std::size_t per_lane_reserve =
      std::min(static_cast<std::size_t>(cfg.n) * cfg.n,
               std::size_t{1} << 18) / lanes_n_ + 256;
  c_.lane_arenas_.reserve(lanes_n_);
  lanes_.reserve(lanes_n_);
  for (std::uint32_t l = 0; l < lanes_n_; ++l) {
    c_.lane_arenas_.push_back(std::make_unique<Arena>());
    auto lane = std::make_unique<Lane>();
    lane->heap.reserve(per_lane_reserve);
    lane->outbox.resize(lanes_n_);
    lanes_.push_back(std::move(lane));
  }

  if (c_.faults_ != nullptr) {
    // The timeline is sorted by time; the prefix within the horizon is the
    // exact set the serial engine schedules as kFault timers.
    const auto& timeline = c_.faults_->events();
    while (fault_count_ < timeline.size() &&
           timeline[fault_count_].at <= c_.horizon_) {
      ++fault_count_;
    }
  }
  for (NodeId i = 0; i < cfg.n; ++i) {
    if (c_.is_live(i)) ++honest_total_;
  }
  if (lanes_n_ > 1) pool_ = std::make_unique<ThreadPool>(lanes_n_);
}

WindowedEngine::~WindowedEngine() = default;

// ---------------------------------------------------------------------------
// Context entry points
// ---------------------------------------------------------------------------

Arena& WindowedEngine::ctx_arena(NodeId node) noexcept {
  return *c_.lane_arenas_[lane_index(node)];
}

Time WindowedEngine::wcharge_cpu(NodeId node, Time cost) noexcept {
  const Time lnow = lanes_[lane_index(node)]->now;
  if (node >= c_.cpu_free_.size()) return lnow;
  if (cost <= 0) return std::max(c_.cpu_free_[node], lnow);
  c_.cpu_free_[node] = std::max(c_.cpu_free_[node], lnow) + cost;
  return c_.cpu_free_[node];
}

std::uint32_t WindowedEngine::make_env(std::uint32_t lane_id, PayloadPtr payload,
                                       Time send_time, std::uint64_t base_id,
                                       NodeId src, bool broadcast,
                                       std::int32_t remaining) {
  const std::uint32_t index = lanes_[lane_id]->store.create(
      std::move(payload), send_time, base_id, src, broadcast, remaining);
  return (lane_id << kLaneShift) | index;
}

void WindowedEngine::route(std::uint32_t src_lane, Event ev, NodeId dst) {
  const std::uint32_t dst_lane = lane_index(dst);
  if (dst_lane == src_lane) {
    lanes_[dst_lane]->heap.push(std::move(ev));
  } else {
    lanes_[src_lane]->outbox[dst_lane].push_back(std::move(ev));
  }
}

void WindowedEngine::ctx_send(NodeId src, NodeId dst, PayloadPtr payload) {
  const Time wire_at = wcharge_cpu(src, c_.sign_cost_);
  if (dst == src) {
    wdeliver_self(src, std::move(payload));
  } else {
    wnetwork_send(src, dst, std::move(payload),
                  wire_at - lanes_[lane_index(src)]->now);
  }
}

void WindowedEngine::wnetwork_send(NodeId src, NodeId dst, PayloadPtr payload,
                                   Time extra) {
  Lane& ln = lane(src);
  const std::uint64_t id = draw_key(src);

  ln.delta.on_send();
  ln.delta.on_bytes(payload->wire_size());
  const PayloadType tid = payload->type_id();
  if (tid != PayloadType::kUnknown) {
    ln.delta.count_type(tid);
  } else {
    ln.delta.count_type(std::string(payload->type()));
  }
  if (c_.trace_sink_ != nullptr) {
    ln.trace.push_back(
        {ln.now, ln.cur_key,
         TraceRecord{TraceKind::kSend, ln.now, src, dst,
                     std::string(payload->type()), payload->digest(), id, 0, 0}});
  }

  const Time draw = c_.delay_sampler_.sample(net_rngs_[src]);
  // Matrix-only WAN runs are windowed-safe: the base is a pure function of
  // the pair, drawn from no stream (gossip/bandwidth never reach here).
  const Time sampled = c_.wan_ != nullptr
                           ? draw + c_.wan_->base_delay(src, dst)
                           : c_.topology_.adjust(draw, src, dst);
  if (c_.faults_ != nullptr && c_.faults_->any_link_down() &&
      c_.faults_->link_down(src, dst)) {
    ln.delta.on_drop();
    if (c_.trace_sink_ != nullptr) {
      ln.trace.push_back({ln.now, ln.cur_key,
                          TraceRecord{TraceKind::kDrop, ln.now, src, dst,
                                      std::string(payload->type()),
                                      payload->digest(), id, 0, 0}});
    }
    return;
  }
  if (c_.faults_ != nullptr && c_.faults_->maybe_corrupt_from(ln.now, src)) {
    payload = std::allocate_shared<CorruptedPayload>(
        ArenaAllocator<CorruptedPayload>(c_.lane_arenas_[lane_index(src)].get()),
        std::move(payload));
    ln.delta.on_corrupt();
  }
  const std::uint32_t env =
      make_env(lane_index(src), std::move(payload), ln.now, id, src, false, 1);
  route(lane_index(src),
        Event{ln.now + std::max<Time>(extra + sampled, 0), id,
              MessageDelivery{env, dst}},
        dst);
}

void WindowedEngine::ctx_broadcast(NodeId src, PayloadPtr payload,
                                   bool include_self) {
  const Time wire_at = wcharge_cpu(src, c_.sign_cost_);
  Lane& ln = lane(src);
  const std::uint32_t src_lane = lane_index(src);
  const Time extra = wire_at - ln.now;

  const std::size_t wire = payload->wire_size();
  const PayloadType tid = payload->type_id();
  const bool tagged = tid != PayloadType::kUnknown;
  std::string trace_type;
  std::uint64_t trace_digest = 0;
  if (c_.trace_sink_ != nullptr) {
    trace_type = std::string(payload->type());
    trace_digest = payload->digest();
  }

  // Shared fan-out envelope, created lazily; per-destination ids derive
  // from the first copy's key by loop position, matching the counter's
  // assignment order exactly (see Envelope::message_id).
  constexpr std::uint32_t kNoEnvelope = 0xffffffffu;
  std::uint32_t env = kNoEnvelope;
  const std::uint64_t base_id =
      ((static_cast<std::uint64_t>(src) + 1) << kOriginShift) | wctr_[src];

  for (NodeId dst = 0; dst < c_.cfg_.n; ++dst) {
    if (dst == src) continue;
    const std::uint64_t id = draw_key(src);

    ln.delta.on_send();
    ln.delta.on_bytes(wire);
    if (tagged) {
      ln.delta.count_type(tid);
    } else {
      ln.delta.count_type(std::string(payload->type()));
    }
    if (c_.trace_sink_ != nullptr) {
      ln.trace.push_back({ln.now, ln.cur_key,
                          TraceRecord{TraceKind::kSend, ln.now, src, dst,
                                      trace_type, trace_digest, id, 0, 0}});
    }

    const Time draw = c_.delay_sampler_.sample(net_rngs_[src]);
    const Time sampled = c_.wan_ != nullptr
                             ? draw + c_.wan_->base_delay(src, dst)
                             : c_.topology_.adjust(draw, src, dst);
    if (c_.faults_ != nullptr && c_.faults_->any_link_down() &&
        c_.faults_->link_down(src, dst)) {
      ln.delta.on_drop();
      if (c_.trace_sink_ != nullptr) {
        ln.trace.push_back({ln.now, ln.cur_key,
                            TraceRecord{TraceKind::kDrop, ln.now, src, dst,
                                        trace_type, trace_digest, id, 0, 0}});
      }
      continue;
    }

    if (c_.faults_ != nullptr && c_.faults_->maybe_corrupt_from(ln.now, src)) {
      PayloadPtr wrapped = std::allocate_shared<CorruptedPayload>(
          ArenaAllocator<CorruptedPayload>(c_.lane_arenas_[src_lane].get()),
          PayloadPtr(payload));
      ln.delta.on_corrupt();
      const std::uint32_t solo =
          make_env(src_lane, std::move(wrapped), ln.now, id, src, false, 1);
      route(src_lane,
            Event{ln.now + std::max<Time>(extra + sampled, 0), id,
                  MessageDelivery{solo, dst}},
            dst);
      continue;
    }
    if (env == kNoEnvelope) {
      env = make_env(src_lane, payload, ln.now, base_id, src, true, 0);
    }
    lanes_[src_lane]->store.add_pending(env & kEnvMask, 1);
    route(src_lane,
          Event{ln.now + std::max<Time>(extra + sampled, 0), id,
                MessageDelivery{env, dst}},
          dst);
  }
  if (include_self) wdeliver_self(src, std::move(payload));
}

void WindowedEngine::wdeliver_self(NodeId id, PayloadPtr payload) {
  Lane& ln = lane(id);
  const std::uint64_t key = draw_key(id);
  const std::uint32_t env =
      make_env(lane_index(id), std::move(payload), ln.now, key, id, false, 1);
  ln.heap.push(Event{ln.now, key, MessageDelivery{env, id}});
}

TimerId WindowedEngine::ctx_set_timer(NodeId node, Time delay,
                                      std::uint64_t tag) {
  if (c_.faults_ != nullptr) delay = c_.faults_->adjust_timer_delay(node, delay);
  const std::uint64_t key = draw_key(node);
  const std::uint64_t ctr = key & kCtrMask;
  auto& ledger = tstate_[node];
  if (ctr >= ledger.size()) ledger.resize(ctr + 1, kIdle);
  ledger[ctr] = kPending;
  Lane& ln = lane(node);
  ln.heap.push(Event{ln.now + std::max<Time>(delay, 0), key,
                     TimerFire{TimerOwner::kNode, node, key, tag}});
  return key;
}

void WindowedEngine::ctx_cancel_timer(NodeId node, TimerId id) {
  (void)node;  // the key encodes its origin; nodes only cancel their own
  const std::uint64_t origin = id >> kOriginShift;
  if (origin == 0 || origin - 1 >= c_.cfg_.n) return;
  auto& ledger = tstate_[origin - 1];
  const std::uint64_t ctr = id & kCtrMask;
  if (ctr < ledger.size() && ledger[ctr] == kPending) ledger[ctr] = kCancelled;
}

void WindowedEngine::ctx_report_decision(NodeId node, Value value) {
  Lane& ln = lane(node);
  const std::uint64_t height = c_.decided_count_[node]++;
  ln.decisions.push_back({ln.now, ln.cur_key, node, height, value});
  if (c_.trace_sink_ != nullptr) {
    ln.trace.push_back({ln.now, ln.cur_key,
                        TraceRecord{TraceKind::kDecide, ln.now, node, kNoNode,
                                    {}, 0, 0, height, value}});
  }
}

void WindowedEngine::ctx_record_view(NodeId node, View view) {
  Lane& ln = lane(node);
  if (c_.cfg_.record_views) ln.views.push_back({ln.now, ln.cur_key, node, view});
  if (c_.trace_sink_ != nullptr) {
    ln.trace.push_back({ln.now, ln.cur_key,
                        TraceRecord{TraceKind::kViewChange, ln.now, node,
                                    kNoNode, {}, 0, 0, view, 0}});
  }
}

// ---------------------------------------------------------------------------
// Window execution (per lane, concurrent)
// ---------------------------------------------------------------------------

void WindowedEngine::wdeliver_now(Lane& ln, const Message& msg) {
  if (!c_.is_live(msg.dst)) {
    ln.delta.on_drop();
    return;
  }
  if (c_.faults_ != nullptr && c_.faults_->is_crashed(msg.dst)) {
    ln.delta.on_drop();
    if (c_.cost_model_on_) ln.cpu_charged.erase(msg.id);
    if (c_.trace_sink_ != nullptr && msg.payload != nullptr) {
      ln.trace.push_back({ln.now, ln.cur_key,
                          TraceRecord{TraceKind::kDrop, ln.now, msg.src,
                                      msg.dst, std::string(msg.payload->type()),
                                      msg.payload->digest(), msg.id, 0, 0}});
    }
    return;
  }
  if (c_.cost_model_on_ && msg.src != msg.dst &&
      !ln.cpu_charged.contains(msg.id)) {
    ln.cpu_charged.insert(msg.id);
    (void)wcharge_cpu(msg.dst, c_.verify_cost_);
    if (c_.cpu_free_[msg.dst] > ln.now) {
      // Redeliver when the CPU frees up. The re-interned envelope keeps the
      // original message identity; the fresh key is drawn from the
      // destination's counter, whose state is lane-count-invariant.
      const std::uint32_t env = make_env(lane_index(msg.dst), msg.payload,
                                         msg.send_time, msg.id, msg.src,
                                         false, 1);
      ln.heap.push(Event{c_.cpu_free_[msg.dst], draw_key(msg.dst),
                         MessageDelivery{env, msg.dst}});
      return;
    }
  }
  if (c_.cost_model_on_) ln.cpu_charged.erase(msg.id);
  if (msg.src != msg.dst) ln.delta.on_deliver();
  if (c_.trace_sink_ != nullptr && msg.payload != nullptr) {
    ln.trace.push_back({ln.now, ln.cur_key,
                        TraceRecord{TraceKind::kDeliver, ln.now, msg.src,
                                    msg.dst, std::string(msg.payload->type()),
                                    msg.payload->digest(), msg.id, 0, 0}});
  }
  if (c_.is_corrupt(msg.dst)) return;
  c_.nodes_[msg.dst]->on_message(msg, c_.node_ctx(msg.dst));
}

void WindowedEngine::wdispatch(Lane& ln, std::uint32_t lane_id, Event& ev) {
  ln.cur_key = ev.seq;
  if (const auto* delivery = std::get_if<MessageDelivery>(&ev.body)) {
    const std::uint32_t owner = delivery->env >> kLaneShift;
    EnvelopeStore& store = lanes_[owner]->store;
    const std::uint32_t index = delivery->env & kEnvMask;
    const Message msg = store.materialize(index, delivery->dst);
    wdeliver_now(ln, msg);
    if (owner == lane_id) {
      store.release(index);
    } else if (store.release_remote(index)) {
      ln.retired.push_back(delivery->env);
    }
    return;
  }
  const auto& fire = std::get<TimerFire>(ev.body);
  const std::uint64_t ctr = fire.timer & kCtrMask;
  auto& ledger = tstate_[fire.node];
  if (ctr < ledger.size()) {
    if (ledger[ctr] == kCancelled) {
      ledger[ctr] = kIdle;
      return;
    }
    ledger[ctr] = kIdle;
  }
  // Crashed node: defer the fire to the recovery instant (the kRecover
  // fault transition lands at a window barrier before that instant's
  // window executes, so the node is back up when the timer re-fires).
  if (c_.faults_ != nullptr && c_.faults_->is_crashed(fire.node)) {
    if (ctr < ledger.size()) ledger[ctr] = kPending;
    ln.heap.push(Event{c_.faults_->recovery_time(fire.node), fire.timer,
                       TimerFire{fire.owner, fire.node, fire.timer, fire.tag}});
    return;
  }
  ln.delta.on_timer();
  const TimerEvent te{fire.timer, fire.tag, ln.now};
  if (c_.is_live(fire.node) && !c_.is_corrupt(fire.node)) {
    c_.nodes_[fire.node]->on_timer(te, c_.node_ctx(fire.node));
  }
}

void WindowedEngine::run_window(std::uint32_t lane_id, Time w1,
                                std::uint64_t event_cap) {
  Lane& ln = *lanes_[lane_id];
  ln.window_events = 0;
  while (!ln.heap.empty() && ln.heap.top().at < w1 &&
         ln.window_events < event_cap) {
    Event ev = ln.heap.pop();
    ln.now = ev.at;
    ++ln.window_events;
    ln.delta.on_event();
    wdispatch(ln, lane_id, ev);
  }
}

// ---------------------------------------------------------------------------
// Barriers
// ---------------------------------------------------------------------------

bool WindowedEngine::apply_faults_at(Time w0) {
  if (c_.faults_ == nullptr) return true;
  const auto& timeline = c_.faults_->events();
  while (fault_cursor_ < fault_count_ && timeline[fault_cursor_].at == w0) {
    // Mirrors the serial engine's dispatch of a kFault timer: one event,
    // one timer firing, then the transition.
    c_.metrics_.on_event();
    if (c_.metrics_.events_processed() > c_.cfg_.max_events) return false;
    c_.metrics_.on_timer();
    c_.faults_->apply(fault_cursor_);
    ++fault_cursor_;
  }
  return true;
}

bool WindowedEngine::merge_window() {
  // 1. Hand fully-released cross-lane envelopes back to their owners.
  for (auto& lp : lanes_) {
    for (const std::uint32_t handle : lp->retired) {
      lanes_[handle >> kLaneShift]->store.recycle(handle & kEnvMask);
    }
    lp->retired.clear();
  }
  // 2. Publish cross-lane sends. Heap order is (at, key) with unique keys,
  // so insertion timing cannot affect pop order.
  for (auto& lp : lanes_) {
    for (std::uint32_t dst_lane = 0; dst_lane < lanes_n_; ++dst_lane) {
      for (Event& ev : lp->outbox[dst_lane]) {
        lanes_[dst_lane]->heap.push(std::move(ev));
      }
      lp->outbox[dst_lane].clear();
    }
  }
  // 3. Fold counter deltas into the run metrics.
  for (auto& lp : lanes_) {
    c_.metrics_.absorb(lp->delta);
    lp->delta = Metrics{};
  }
  // 4. Merge ordered products. Equal (at, key) pairs only occur within one
  // lane's buffer (a key names one dispatch of one node), so the stable
  // sort reproduces emission order and is lane-count-invariant.
  const auto by_time_key = [](const auto& a, const auto& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.key < b.key;
  };
  if (c_.trace_sink_ != nullptr) {
    std::vector<TraceProduct> records;
    for (auto& lp : lanes_) {
      records.insert(records.end(), std::make_move_iterator(lp->trace.begin()),
                     std::make_move_iterator(lp->trace.end()));
      lp->trace.clear();
    }
    std::stable_sort(records.begin(), records.end(), by_time_key);
    for (const TraceProduct& p : records) c_.trace_sink_->on_record(p.rec);
  }
  {
    std::vector<DecisionProduct> decisions;
    for (auto& lp : lanes_) {
      decisions.insert(decisions.end(), lp->decisions.begin(),
                       lp->decisions.end());
      lp->decisions.clear();
    }
    std::stable_sort(decisions.begin(), decisions.end(), by_time_key);
    for (const DecisionProduct& d : decisions) {
      // The workload decide hook runs at the barrier in merged order — the
      // same (at, key) order the serial engine produces — so request-level
      // latencies are lane-count-invariant like every other product.
      if (c_.workload_ != nullptr) c_.workload_->on_decide(d.value, d.at);
      c_.metrics_.on_decision(Decision{d.node, d.at, d.height, d.value});
      BFTSIM_LOG(kDebug, "node " << d.node << " decided height " << d.height
                                 << " value " << d.value << " at "
                                 << to_ms(d.at) << "ms");
      if (d.height + 1 == c_.cfg_.decisions && c_.is_honest(d.node)) {
        ++nodes_done_;
        if (nodes_done_ == honest_total_ && !c_.stopped_) {
          c_.stopped_ = true;
          c_.termination_time_ = d.at;
        }
      }
    }
  }
  {
    std::vector<ViewProduct> views;
    for (auto& lp : lanes_) {
      views.insert(views.end(), lp->views.begin(), lp->views.end());
      lp->views.clear();
    }
    std::stable_sort(views.begin(), views.end(), by_time_key);
    for (const ViewProduct& v : views) {
      c_.metrics_.on_view(ViewRecord{v.node, v.at, v.view});
    }
  }
  return c_.metrics_.events_processed() <= c_.cfg_.max_events;
}

// ---------------------------------------------------------------------------
// Run loop
// ---------------------------------------------------------------------------

RunResult WindowedEngine::run() {
  if (ran_) throw std::logic_error("WindowedEngine::run() called twice");
  ran_ = true;

  // Serial start phase: on_start callbacks in node order, exactly like the
  // serial engine. Products carry the node's base key so the merge keeps
  // node order; sends route through the same mailboxes as window sends.
  c_.attacker_->on_start(c_.attacker_ctx());
  for (NodeId i = 0; i < c_.cfg_.n; ++i) {
    if (!c_.is_live(i)) continue;
    lane(i).cur_key = (static_cast<std::uint64_t>(i) + 1) << kOriginShift;
    c_.nodes_[i]->on_start(c_.node_ctx(i));
  }
  bool within_budget = merge_window();

  TerminationReason reason = TerminationReason::kQueueDrained;
  if (!within_budget) reason = TerminationReason::kEventBudget;
  while (within_budget && !c_.stopped_) {
    // W0: the earliest pending instant across every lane and the fault
    // timeline — the same instant the serial engine would pop next.
    Time w0 = 0;
    bool any = false;
    for (const auto& lp : lanes_) {
      if (lp->heap.empty()) continue;
      const Time t = lp->heap.top().at;
      if (!any || t < w0) {
        w0 = t;
        any = true;
      }
    }
    if (c_.faults_ != nullptr && fault_cursor_ < fault_count_) {
      const Time t = c_.faults_->events()[fault_cursor_].at;
      if (!any || t < w0) {
        w0 = t;
        any = true;
      }
    }
    if (!any) break;  // kQueueDrained
    if (w0 > c_.horizon_) {
      c_.now_ = c_.horizon_;
      reason = TerminationReason::kHorizon;
      break;
    }
    c_.now_ = w0;
    if (!apply_faults_at(w0)) {
      reason = TerminationReason::kEventBudget;
      break;
    }

    // W1: never wider than the lookahead (cross-lane safety), cut at the
    // next fault transition (fault state is frozen inside a window) and at
    // the horizon. The formula never reads lane state, so the window
    // sequence is identical for every lane count — the determinism anchor.
    Time w1 = w0 + std::max<Time>(lookahead_, 1);
    if (c_.faults_ != nullptr && fault_cursor_ < fault_count_) {
      w1 = std::min(w1, c_.faults_->events()[fault_cursor_].at);
    }
    w1 = std::min(w1, c_.horizon_ + 1);

    // Per-lane runaway valve: a single lane may overshoot the remaining
    // budget by at most one window before the barrier converts the
    // overshoot into kEventBudget.
    std::uint64_t cap =
        c_.cfg_.max_events + 1 - c_.metrics_.events_processed();
    // Zero-lookahead runs (always a single lane) deliver same-instant
    // messages into the window being executed, so a protocol that keeps
    // talking after its last decision never drains the instant — and the
    // termination check only runs at barriers. The serial engine stops
    // mid-instant at its inline check; with no parallelism at stake, match
    // that cadence by forcing a barrier every few thousand events. The
    // quota is a constant, so the event sequence stays deterministic.
    if (lookahead_ <= 0) cap = std::min<std::uint64_t>(cap, 4096);
    if (lanes_n_ == 1) {
      run_window(0, w1, cap);
    } else {
      parallel_for(*pool_, lanes_n_,
                   [this, w1, cap](std::size_t l) {
                     run_window(static_cast<std::uint32_t>(l), w1, cap);
                   });
    }
    within_budget = merge_window();
    if (!within_budget) reason = TerminationReason::kEventBudget;
  }
  if (c_.stopped_) reason = TerminationReason::kDecided;
  return c_.make_result(reason);
}

}  // namespace bftsim

// The outcome of one simulation run.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/metrics.hpp"
#include "core/trace.hpp"
#include "core/types.hpp"
#include "obs/profile.hpp"
#include "obs/timeline.hpp"
#include "workload/workload_stats.hpp"

namespace bftsim {

/// Why the controller's event loop stopped. Anything other than kDecided
/// means the run did not reach its decision target: the horizon or event
/// budget acted as a watchdog, or the event queue simply drained (a
/// deadlocked protocol with no pending timers).
enum class TerminationReason : std::uint8_t {
  kDecided,       ///< every live honest node reached the decision target
  kHorizon,       ///< simulated-time horizon (max_time_ms) reached
  kEventBudget,   ///< event-count budget (max_events) exhausted
  kQueueDrained,  ///< no events left to process
};

[[nodiscard]] constexpr std::string_view to_string(TerminationReason r) noexcept {
  switch (r) {
    case TerminationReason::kDecided: return "decided";
    case TerminationReason::kHorizon: return "horizon";
    case TerminationReason::kEventBudget: return "event-budget";
    case TerminationReason::kQueueDrained: return "queue-drained";
  }
  return "?";
}

/// A structured, non-fatal deviation from the requested configuration —
/// e.g. the controller falling back to the serial engine because the run
/// carries an attack that the windowed-parallel driver cannot order
/// deterministically. Warnings never change run semantics retroactively;
/// they record a decision the engine already made deterministically.
struct RunWarning {
  std::string code;    ///< stable machine-readable tag, e.g. "engine-serial-fallback"
  std::string detail;  ///< human-readable explanation
};

/// Result of a single run, as produced by Simulation::run().
struct RunResult {
  bool terminated = false;          ///< all live honest nodes reached the target
  Time termination_time = kNoTime;  ///< when the last of them did
  TerminationReason termination_reason = TerminationReason::kQueueDrained;
  std::uint32_t decisions_target = 1;

  std::uint64_t messages_sent = 0;  ///< protocol messages transmitted
  std::uint64_t bytes_sent = 0;     ///< estimated wire bytes (§II-C)
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_injected = 0;  ///< attacker-forged messages
  std::uint64_t messages_corrupted = 0;  ///< fault-layer payload corruptions
  std::uint64_t events_processed = 0;
  std::uint64_t timers_fired = 0;

  // Attacker activity: what the configured attacker actually did to the
  // message stream. All zero on attack-free runs (the passive-attacker
  // fast path never touches these counters).
  std::uint64_t attacker_dropped = 0;    ///< messages the attacker discarded
  std::uint64_t attacker_delayed = 0;    ///< deliveries re-timed (rush/stall/hold)
  /// Messages rewritten in flight: payload replaced or src/dst rerouted.
  /// Payloads are immutable behind shared_ptr<const Payload>, so replacement
  /// and rerouting are the only modification channels the hook can see.
  std::uint64_t attacker_modified = 0;
  std::uint64_t attacker_duplicated = 0; ///< duplicate copies injected (flooding)

  // WAN gossip backend activity (net/wan/): both zero unless the run
  // selected $.net.backend = "gossip".
  std::uint64_t gossip_relayed = 0;    ///< copies forwarded by relayers
  std::uint64_t gossip_duplicates = 0; ///< received copies suppressed

  /// Request-level workload results (conservation counters, requests/sec,
  /// latency percentiles); `workload.enabled` is false unless the run
  /// selected $.workload. See workload/workload_stats.hpp.
  WorkloadStats workload;

  /// Non-fatal configuration deviations (see RunWarning); empty for runs
  /// that executed exactly as configured.
  std::vector<RunWarning> warnings;

  std::vector<Decision> decisions;  ///< every (node, time, height, value)
  std::vector<ViewRecord> views;    ///< per-node view trajectory (Fig. 9)
  std::vector<NodeId> honest;       ///< nodes live and honest at run end
  std::vector<NodeId> failstopped;  ///< nodes that never ran
  std::vector<NodeId> corrupted;    ///< nodes corrupted by the attacker

  Trace trace;  ///< full message trace when record_trace was set (memory sink)

  /// Order-sensitive fingerprint over every trace record emitted, from
  /// whichever sink the run used. Equal to trace.fingerprint() for the
  /// memory sink; the only in-RAM trace evidence for streaming sinks.
  std::uint64_t trace_fingerprint = kTraceFingerprintSeed;
  std::uint64_t trace_records = 0;  ///< records emitted through the sink

  /// Periodic engine-state samples; empty unless obs.timeline_tick_ms > 0.
  std::vector<obs::TimelineSample> timeline;
  Time timeline_tick = 0;  ///< sampling period backing `timeline` (us)

  /// Per-component hot-path time breakdown; all-zero unless the build was
  /// configured with -DBFTSIM_PROFILING=ON.
  obs::ProfileBreakdown profile;

  double wall_seconds = 0.0;  ///< host wall-clock cost of this run

  /// Latency (ms) until termination, or negative if never terminated.
  [[nodiscard]] double latency_ms() const noexcept {
    return termination_time == kNoTime ? -1.0 : to_ms(termination_time);
  }

  /// Average per-decision latency (ms) over the whole run — the paper's
  /// measurement for pipelined protocols (termination time / #decisions).
  [[nodiscard]] double per_decision_latency_ms() const noexcept {
    if (!terminated || decisions_target == 0) return -1.0;
    return to_ms(termination_time) / static_cast<double>(decisions_target);
  }

  /// Average per-decision message count over the whole run.
  [[nodiscard]] double per_decision_messages() const noexcept {
    if (decisions_target == 0) return 0.0;
    return static_cast<double>(messages_sent) / static_cast<double>(decisions_target);
  }

  /// Timestamp at which every node in `honest` had at least k decisions
  /// (kNoTime if some never did).
  [[nodiscard]] Time kth_completion(std::uint64_t k) const noexcept;

  /// True when no two honest nodes decided different values at any height —
  /// the safety property checked by tests.
  [[nodiscard]] bool decisions_consistent() const noexcept;

  /// Round complexity (§II-C): the highest view/round/iteration any honest
  /// node entered before termination — the theoretical-analysis metric the
  /// paper supports alongside wall time.
  [[nodiscard]] View rounds_used() const noexcept;

  /// Average per-decision wire bytes (reconstructed from per-message size
  /// estimates, as §II-C suggests).
  [[nodiscard]] double per_decision_bytes() const noexcept {
    if (decisions_target == 0) return 0.0;
    return static_cast<double>(bytes_sent) / static_cast<double>(decisions_target);
  }
};

}  // namespace bftsim

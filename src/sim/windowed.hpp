// Deterministic windowed-parallel execution of a single run.
//
// The serial controller processes one global event queue. This driver
// partitions the nodes across `engine.intra_jobs` lanes (node id mod lane
// count), gives each lane its own event heap, arena and envelope store, and
// executes bounded time windows [W0, W1) concurrently — a conservative
// parallel discrete-event scheme in the Chandy–Misra tradition, with the
// lookahead derived from the network model's minimum delay:
//
//   every cross-node message generated at time g is delivered at or after
//   g + lookahead, and W1 - W0 <= lookahead, so an event generated during
//   a window for *another* lane always lands at or after W1 — the next
//   barrier publishes it before any lane advances past W1. Within a lane,
//   execution is plain sequential DES over a set of events that is fully
//   known at the window start.
//
// Determinism across lane counts: every scheduled artifact carries an
// explicit ordering key ((origin node + 1) << 40 | per-origin counter)
// instead of the serial queue's global insertion sequence. A node's own
// event subsequence — and therefore its state trajectory, its RNG draws
// and the keys it assigns — depends only on that node's inbound events,
// which are identical for every partitioning. Run products (trace records,
// decisions, view records) are buffered per lane and merged at each
// barrier in (time, key) order, so RunResult is bit-identical for every
// intra_jobs value, 1 included.
//
// The one semantic divergence from the serial engine is gated behind this
// mode: network-delay sampling and fault-corruption coins draw from
// per-sending-node RNG forks instead of one shared stream (a shared stream
// would make draw order depend on the interleaving). Windowed runs
// therefore have their own goldens; `engine.intra_jobs = 1` with
// `engine.rng = "per_node"` is the serial baseline those goldens pin.
// See docs/PARALLELISM.md for the full argument and the exclusions
// (attacks, the run timeline sampler, subclassed delivery hooks).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/arena.hpp"
#include "core/config.hpp"
#include "core/dary_heap.hpp"
#include "core/event.hpp"
#include "core/metrics.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "core/trace.hpp"
#include "core/types.hpp"
#include "net/envelope.hpp"
#include "net/message.hpp"
#include "sim/result.hpp"

namespace bftsim {

class Controller;

/// The largest safe window width for `cfg`, in Time units: the infimum of
/// the network-delay distribution (after clamping and the topology's
/// cross-region transformation), minus the maximum configured clock skew
/// as a conservative safety margin. Zero means no parallel window exists
/// (e.g. a constant-0 delay model) and the driver self-degrades to one
/// lane. Free function so the window math is unit-testable in isolation.
[[nodiscard]] Time compute_lookahead(const SimConfig& cfg) noexcept;

/// The lane count a windowed run actually uses: intra_jobs clamped to the
/// node count, forced to 1 when no safe lookahead exists.
[[nodiscard]] std::uint32_t effective_lanes(const SimConfig& cfg) noexcept;

/// Drives one windowed-parallel run over a Controller's state. Constructed
/// by Controller::run() when the engine config selects per-node RNG mode;
/// lives until the controller is destroyed (its lane stores anchor payload
/// references).
class WindowedEngine {
 public:
  explicit WindowedEngine(Controller& c);
  WindowedEngine(const WindowedEngine&) = delete;
  WindowedEngine& operator=(const WindowedEngine&) = delete;
  ~WindowedEngine();

  /// Runs the simulation to termination; call at most once.
  [[nodiscard]] RunResult run();

  // --- Context entry points (Controller::NodeCtx routes here) --------------
  [[nodiscard]] Time ctx_now(NodeId node) const noexcept {
    return lanes_[lane_index(node)]->now;
  }
  [[nodiscard]] Arena& ctx_arena(NodeId node) noexcept;
  void ctx_send(NodeId src, NodeId dst, PayloadPtr payload);
  void ctx_broadcast(NodeId src, PayloadPtr payload, bool include_self);
  [[nodiscard]] TimerId ctx_set_timer(NodeId node, Time delay, std::uint64_t tag);
  void ctx_cancel_timer(NodeId node, TimerId id);
  void ctx_report_decision(NodeId node, Value value);
  void ctx_record_view(NodeId node, View view);

 private:
  // Ordering keys: (origin + 1) << 40 | per-origin counter. Origin slot 0
  // is reserved (nothing queues under it today; global artifacts would
  // sort first at ties). The counter doubles as the message/timer id
  // space, so ids stay unique and per-origin monotone.
  static constexpr unsigned kOriginShift = 40;
  static constexpr std::uint64_t kCtrMask = (std::uint64_t{1} << kOriginShift) - 1;
  // Envelope handles pack the owning lane into the high bits; a lane's
  // slab indexes stay below 1 << 24 by EnvelopeStore's capacity cap.
  static constexpr unsigned kLaneShift = 24;
  static constexpr std::uint32_t kEnvMask = (1u << kLaneShift) - 1;

  struct EventOrder {
    [[nodiscard]] bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at < b.at;
      return a.seq < b.seq;
    }
  };

  /// A run product buffered during a window and merged at the barrier in
  /// (at, key) order. Keys repeat only within one dispatch of one node, so
  /// a stable sort reproduces the in-dispatch emission order.
  struct TraceProduct {
    Time at = 0;
    std::uint64_t key = 0;
    TraceRecord rec;
  };
  struct DecisionProduct {
    Time at = 0;
    std::uint64_t key = 0;
    NodeId node = kNoNode;
    std::uint64_t height = 0;
    Value value = 0;
  };
  struct ViewProduct {
    Time at = 0;
    std::uint64_t key = 0;
    NodeId node = kNoNode;
    View view = 0;
  };

  /// Everything one lane touches while a window executes. Shared state a
  /// lane may read concurrently (fault flags, config, published envelopes)
  /// is frozen between barriers; everything it writes lives here or in
  /// per-node slots owned by the lane (RNGs, counters, cpu_free, ledgers).
  struct Lane {
    DaryHeap<Event, 4, EventOrder> heap;
    EnvelopeStore store;
    Time now = 0;
    std::uint64_t cur_key = 0;       ///< key of the event being dispatched
    std::uint64_t window_events = 0;  ///< events processed this window
    Metrics delta;                    ///< counter deltas, absorbed at barrier
    std::vector<TraceProduct> trace;
    std::vector<DecisionProduct> decisions;
    std::vector<ViewProduct> views;
    /// Cross-lane envelopes this lane fully released; the barrier returns
    /// them to their owner's free list.
    std::vector<std::uint32_t> retired;
    /// Cost-model: deliveries whose verify cost this lane already charged.
    std::unordered_set<std::uint64_t> cpu_charged;
    /// Cross-lane sends buffered until the barrier, indexed by dest lane.
    std::vector<std::vector<Event>> outbox;
  };

  [[nodiscard]] std::uint32_t lane_index(NodeId node) const noexcept {
    return node % lanes_n_;
  }
  [[nodiscard]] Lane& lane(NodeId node) noexcept {
    return *lanes_[lane_index(node)];
  }
  [[nodiscard]] std::uint64_t draw_key(NodeId origin) noexcept {
    return ((static_cast<std::uint64_t>(origin) + 1) << kOriginShift) |
           wctr_[origin]++;
  }
  [[nodiscard]] std::uint32_t make_env(std::uint32_t lane_id, PayloadPtr payload,
                                       Time send_time, std::uint64_t base_id,
                                       NodeId src, bool broadcast,
                                       std::int32_t remaining);

  [[nodiscard]] Time wcharge_cpu(NodeId node, Time cost) noexcept;
  void wnetwork_send(NodeId src, NodeId dst, PayloadPtr payload, Time extra);
  void wdeliver_self(NodeId id, PayloadPtr payload);
  void route(std::uint32_t src_lane, Event ev, NodeId dst);
  void wdispatch(Lane& ln, std::uint32_t lane_id, Event& ev);
  void wdeliver_now(Lane& ln, const Message& msg);
  void run_window(std::uint32_t lane_id, Time w1, std::uint64_t event_cap);
  /// Applies fault transitions scheduled exactly at `w0`; returns false
  /// when the event budget was exhausted mid-application.
  [[nodiscard]] bool apply_faults_at(Time w0);
  /// Drains outboxes/retire lists and merges window products into the
  /// controller's metrics/sink; returns false when the event budget is
  /// exhausted. Sets stopped_/termination on the completing decision.
  [[nodiscard]] bool merge_window();

  Controller& c_;
  std::uint32_t lanes_n_ = 1;
  Time lookahead_ = 0;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<Rng> net_rngs_;                   ///< per sending node
  std::vector<std::uint64_t> wctr_;             ///< per-origin key counters
  /// Per-node timer ledgers indexed by the timer key's counter bits
  /// (idle/pending/cancelled, same lazy-deletion scheme as EventQueue).
  std::vector<std::vector<std::uint8_t>> tstate_;
  std::size_t fault_cursor_ = 0;     ///< next unapplied fault-timeline index
  std::size_t fault_count_ = 0;      ///< timeline entries within the horizon
  std::uint64_t honest_total_ = 0;   ///< live honest nodes (fixed: no attacker)
  std::uint64_t nodes_done_ = 0;     ///< honest nodes at the decision target
  std::unique_ptr<ThreadPool> pool_;  ///< non-null only when lanes_n_ > 1
  bool ran_ = false;
};

}  // namespace bftsim

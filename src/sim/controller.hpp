// The controller (§III-A1): owns the event queue, the simulation clock, the
// consensus module (the n node instances), the network module and the
// attacker module; dispatches events; collects metrics; and decides when
// the run terminates.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "attacker/attacker.hpp"
#include "core/arena.hpp"
#include "core/config.hpp"
#include "core/event_queue.hpp"
#include "core/metrics.hpp"
#include "core/rng.hpp"
#include "core/trace.hpp"
#include "crypto/signature.hpp"
#include "crypto/vrf.hpp"
#include "net/delay_model.hpp"
#include "net/envelope.hpp"
#include "net/topology.hpp"
#include "net/wan/wan_model.hpp"
#include "obs/profile.hpp"
#include "obs/timeline.hpp"
#include "obs/trace_sink.hpp"
#include "protocols/node.hpp"
#include "sim/result.hpp"

namespace bftsim {

class FaultInjector;
class WindowedEngine;
class WorkloadManager;

/// Drives one simulation run. Construct with a validated SimConfig, call
/// run() once. The packet-level baseline simulator subclasses this and
/// overrides the network-delivery hook (see src/baseline/).
class Controller {
 public:
  explicit Controller(SimConfig cfg);
  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;
  virtual ~Controller();

  /// Runs the simulation to termination / horizon; call at most once.
  RunResult run();

  [[nodiscard]] const SimConfig& config() const noexcept { return cfg_; }

 protected:
  /// Network-delivery hook: schedules the delivery event for a message that
  /// passed the attacker with final `delay`. The default implementation
  /// models message-level delivery (one event). The baseline simulator
  /// overrides this with per-packet, per-hop event cascades. A subclass
  /// that overrides it must set custom_delivery_hook_ = true in its
  /// constructor: that routes every transmission through the hook as a
  /// materialized Message instead of the envelope fast path (and excludes
  /// the subclass from windowed-parallel execution).
  virtual void schedule_network_delivery(Message msg, Time delay);

  /// Set by subclasses that override schedule_network_delivery (see above).
  bool custom_delivery_hook_ = false;

  /// Schedules delivery of a fully-formed message at absolute time `at`
  /// (clamped to now). For subclasses that bypass delay sampling entirely
  /// (e.g. the trace-replay validator).
  void schedule_message_at(Message msg, Time at);

  /// Hook for subclass-defined system events (e.g. baseline packet hops).
  virtual void on_system_event(std::uint64_t /*tag*/) {}

  /// Schedules a system event (owner kSystem) at absolute time `at`.
  void schedule_system_event(Time at, std::uint64_t tag);

  [[nodiscard]] Time now() const noexcept { return now_; }
  [[nodiscard]] Metrics& metrics() noexcept { return metrics_; }
  [[nodiscard]] EventQueue& queue() noexcept { return queue_; }
  [[nodiscard]] Rng& net_rng() noexcept { return net_rng_; }

  /// Final-delivery step shared with subclasses: counts, traces and hands
  /// the message to its destination node (if live and honest).
  void deliver_now(const Message& msg);

 private:
  class NodeCtx;
  class AtkCtx;

  // --- network module -------------------------------------------------------
  /// `extra_delay` models sender-side cost (e.g. signing) already incurred
  /// before the message reaches the wire.
  void network_send(NodeId src, NodeId dst, PayloadPtr payload,
                    Time extra_delay = 0);
  /// Fan-out path for Context::broadcast: sends `payload` to every node but
  /// `src`, hoisting the per-payload work (wire size, tag, trace fields)
  /// out of the per-destination loop. Observable behavior is identical to
  /// n-1 network_send calls in destination order.
  void network_broadcast(NodeId src, const PayloadPtr& payload, Time extra_delay);
  void deliver_self(NodeId id, PayloadPtr payload);
  void inject_message(Message msg, Time delay);

  // --- WAN backend (net/wan/) -------------------------------------------------
  /// Gossip origination: Context::broadcast under the gossip backend sends
  /// to the origin's overlay peers instead of all n-1 destinations.
  void gossip_broadcast(NodeId origin, const PayloadPtr& payload,
                        Time extra_delay);
  /// Schedules one gossip copy on the wire from `relayer` to `peer`. The
  /// envelope keeps `origin` as the protocol-visible source; delays and
  /// bandwidth are charged to the (relayer, peer) link.
  void gossip_send_copy(NodeId relayer, NodeId peer, NodeId origin,
                        const PayloadPtr& payload, std::uint64_t gid,
                        Time extra_delay);
  /// Duplicate suppression + relay fan-out on gossip arrival, then the
  /// shared deliver_now step.
  void gossip_deliver(const Message& msg, std::uint64_t gid);

  // --- timers ---------------------------------------------------------------
  TimerId set_timer(TimerOwner owner, NodeId node, Time delay, std::uint64_t tag);
  void cancel_timer(TimerId id);

  /// Charges `cost` of CPU time to `node` (computation-cost model).
  /// Returns when the node's CPU becomes free again.
  Time charge_cpu(NodeId node, Time cost);

  // --- reporting --------------------------------------------------------------
  void report_decision(NodeId node, Value value);
  void record_view(NodeId node, View view);
  bool corrupt(NodeId node);
  void check_termination();

  // --- run loop ---------------------------------------------------------------
  void dispatch(Event& ev);
  /// Assembles the RunResult from the run's final state; shared by the
  /// serial loop and the windowed-parallel driver.
  RunResult make_result(TerminationReason reason);
  /// Snapshots engine state into the timeline (timeline_ must be set).
  void sample_timeline(bool final_sample);
  [[nodiscard]] bool is_live(NodeId id) const noexcept;
  [[nodiscard]] bool is_honest(NodeId id) const noexcept;
  /// Context accessors for the windowed driver (NodeCtx/AtkCtx are
  /// incomplete types outside controller.cpp; these erase to the bases).
  [[nodiscard]] Context& node_ctx(NodeId id) noexcept;
  [[nodiscard]] AttackerContext& attacker_ctx() noexcept;
  [[nodiscard]] bool is_corrupt(NodeId id) const noexcept {
    return id < corrupt_flags_.size() && corrupt_flags_[id] != 0;
  }

  SimConfig cfg_;
  /// Run-scoped arena backing payload allocations. Declared before every
  /// member that can hold a PayloadPtr (queue_, nodes_, attacker_, faults_,
  /// metrics sinks) so that it is destroyed after all of them — arena-backed
  /// payloads must outlive their last shared_ptr.
  Arena arena_;
  /// Windowed-parallel runs give each lane its own arena (Arena is
  /// single-threaded by design). Owned here rather than by the engine so
  /// the destruction-order guarantee above extends to lane-allocated
  /// payloads; empty for serial runs.
  std::vector<std::unique_ptr<Arena>> lane_arenas_;
  /// In-flight transmission state; delivery events carry 8-byte handles
  /// into this store (see net/envelope.hpp). Declared after the arenas
  /// (payload pointers release before any arena dies) and before the queue.
  EnvelopeStore env_store_;
  std::uint32_t f_ = 0;       ///< protocol fault threshold (= attacker budget)
  Time lambda_ = 0;           ///< cfg.lambda_ms in Time units
  Time horizon_ = 0;          ///< cfg.max_time_ms in Time units

  EventQueue queue_;
  Time now_ = 0;
  bool stopped_ = false;
  Time termination_time_ = kNoTime;

  Rng run_rng_;   ///< master stream (seeds everything else)
  Rng net_rng_;   ///< network delay sampling
  Rng atk_rng_;   ///< attacker randomness
  Vrf vrf_;
  Signer signer_;
  DelaySampler delay_sampler_;
  TopologySpec topology_;

  std::vector<std::unique_ptr<Node>> nodes_;  ///< nullptr => fail-stopped
  /// Parallel to nodes_. Stored flat (struct-of-arrays style) rather than
  /// as n separate heap allocations: NodeCtx is small and trivially
  /// relocatable, and at n=4096 the flat layout saves 4096 mallocs and
  /// keeps the contexts on a handful of cache lines. NodeCtx is an
  /// incomplete type here; the ctor/dtor instantiating the vector's
  /// members live in controller.cpp.
  std::vector<NodeCtx> ctxs_;
  std::vector<Rng> node_rngs_;
  std::unique_ptr<Attacker> attacker_;
  std::unique_ptr<AtkCtx> atk_ctx_;
  /// Cached attacker_->is_passive(): with a passive attacker (and the
  /// default delivery hook) sends take the envelope fast path and never
  /// materialize a MessageInFlight.
  bool attacker_passive_ = false;
  /// Fault-injection state; nullptr unless cfg.faults is enabled, so the
  /// fault hooks cost one null check on fault-free runs.
  std::unique_ptr<FaultInjector> faults_;

  /// WAN transport backend; nullptr unless cfg.net is enabled, so the
  /// classic network path costs one null check per send.
  std::unique_ptr<WanModel> wan_;
  /// Client workload generator; nullptr unless cfg.workload is enabled, so
  /// workload-free proposals cost one null check in next_proposal.
  std::unique_ptr<WorkloadManager> workload_;
  /// Per-node sets of gossip ids already accepted (duplicate suppression);
  /// sized only under the gossip backend.
  std::vector<std::unordered_set<std::uint64_t>> gossip_seen_;
  std::uint64_t next_gossip_id_ = 1;

  // Computation-cost model state: per-node CPU availability and the set of
  // deliveries whose verification cost has already been paid.
  Time verify_cost_ = 0;
  Time sign_cost_ = 0;
  bool cost_model_on_ = false;
  std::vector<Time> cpu_free_;
  std::unordered_set<std::uint64_t> cpu_charged_;

  std::vector<NodeId> failstopped_;
  std::vector<std::uint8_t> corrupt_flags_;  ///< indexed by NodeId; hot-path check
  std::vector<NodeId> corrupted_order_;
  std::vector<std::uint32_t> decided_count_;

  Metrics metrics_;
  Trace trace_;
  /// Trace destination; nullptr unless tracing is on (record_trace or a
  /// streaming obs sink), so every emission site costs one null check —
  /// exactly what the `record_trace` flag used to cost.
  std::unique_ptr<obs::TraceSink> trace_sink_;
  /// Timeline collector; nullptr unless obs.timeline_tick_ms > 0. Sampled
  /// inline from the run loop — never schedules events or consumes RNG.
  std::unique_ptr<obs::Timeline> timeline_;
  std::vector<View> current_view_;  ///< per-node view, timeline runs only
  obs::ProfileBreakdown profile_;   ///< populated only under BFTSIM_PROFILING
  std::uint64_t next_msg_id_ = 1;
  std::uint64_t next_timer_id_ = 1;
  bool ran_ = false;
  /// Non-fatal configuration deviations surfaced on the RunResult (e.g.
  /// the serial fallback for attack-carrying windowed configs).
  std::vector<RunWarning> warnings_;

  /// Windowed-parallel driver (sim/windowed.cpp); non-null only while a
  /// windowed run executes. Declared last so it is destroyed first — its
  /// lane queues and envelope stores hold payload pointers that must
  /// release before lane_arenas_/arena_ die. The engine needs the same
  /// deep access to the run state as the member functions above.
  friend class WindowedEngine;
  std::unique_ptr<WindowedEngine> win_;
};

}  // namespace bftsim

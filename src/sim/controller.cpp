// The simulation controller's event loop (§III-A1): node/attacker Context
// implementations, the network send path (delay sampling, topology
// penalties, attacker interception), timer management, the optional
// per-node CPU cost model, and run-termination bookkeeping.
#include "sim/controller.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "attacker/attacks.hpp"
#include "core/log.hpp"
#include "faults/fault_injector.hpp"
#include "protocols/registry.hpp"
#include "sim/windowed.hpp"
#include "workload/workload_manager.hpp"

namespace bftsim {

// ---------------------------------------------------------------------------
// Contexts
// ---------------------------------------------------------------------------

class Controller::NodeCtx final : public Context {
 public:
  NodeCtx(Controller& c, NodeId id) : c_(c), id_(id) {}

  NodeId id() const noexcept override { return id_; }
  std::uint32_t n() const noexcept override { return c_.cfg_.n; }
  std::uint32_t f() const noexcept override { return c_.f_; }
  Time lambda() const noexcept override { return c_.lambda_; }
  Time now() const noexcept override {
    // Windowed-parallel runs keep one clock per lane; the serial clock is
    // otherwise authoritative. One predictable branch on the hot path.
    return c_.win_ != nullptr ? c_.win_->ctx_now(id_) : c_.now_;
  }

  void send(NodeId dst, PayloadPtr payload) override {
    if (c_.win_ != nullptr) {
      c_.win_->ctx_send(id_, dst, std::move(payload));
      return;
    }
    // One signature per send call: the message leaves once the CPU is done.
    const Time wire_at = c_.charge_cpu(id_, c_.sign_cost_);
    if (dst == id_) {
      c_.deliver_self(id_, std::move(payload));
    } else {
      c_.network_send(id_, dst, std::move(payload), wire_at - c_.now_);
    }
  }

  void broadcast(PayloadPtr payload, bool include_self) override {
    if (c_.win_ != nullptr) {
      c_.win_->ctx_broadcast(id_, std::move(payload), include_self);
      return;
    }
    // One signature covers the whole fan-out.
    const Time wire_at = c_.charge_cpu(id_, c_.sign_cost_);
    c_.network_broadcast(id_, payload, wire_at - c_.now_);
    if (include_self) c_.deliver_self(id_, std::move(payload));
  }

  TimerId set_timer(Time delay, std::uint64_t tag) override {
    if (c_.win_ != nullptr) return c_.win_->ctx_set_timer(id_, delay, tag);
    return c_.set_timer(TimerOwner::kNode, id_, delay, tag);
  }
  void cancel_timer(TimerId id) override {
    if (c_.win_ != nullptr) {
      c_.win_->ctx_cancel_timer(id_, id);
      return;
    }
    c_.cancel_timer(id);
  }

  ProposalBatch next_proposal(std::uint64_t slot, Value fresh) override {
    // on_propose touches only this node's arrival stream (client
    // affinity), so the call is lane-safe under the windowed engine.
    if (c_.workload_ == nullptr) return ProposalBatch{fresh, 0, 0};
    return c_.workload_->on_propose(id_, slot, fresh, now());
  }

  void report_decision(Value value) override {
    if (c_.win_ != nullptr) {
      c_.win_->ctx_report_decision(id_, value);
      return;
    }
    c_.report_decision(id_, value);
  }
  void record_view(View view) override {
    if (c_.win_ != nullptr) {
      c_.win_->ctx_record_view(id_, view);
      return;
    }
    c_.record_view(id_, view);
  }

  Rng& rng() noexcept override { return c_.node_rngs_[id_]; }
  const Vrf& vrf() const noexcept override { return c_.vrf_; }
  const Signer& signer() const noexcept override { return c_.signer_; }
  Arena& arena() noexcept override {
    return c_.win_ != nullptr ? c_.win_->ctx_arena(id_) : c_.arena_;
  }

 private:
  Controller& c_;
  NodeId id_;
};

class Controller::AtkCtx final : public AttackerContext {
 public:
  explicit AtkCtx(Controller& c) : c_(c) {}

  std::uint32_t n() const noexcept override { return c_.cfg_.n; }
  std::uint32_t f() const noexcept override { return c_.f_; }
  Time now() const noexcept override { return c_.now_; }

  void inject(Message msg, Time delay) override {
    c_.inject_message(std::move(msg), delay);
  }

  void inject_duplicate(Message msg, Time delay) override {
    c_.metrics_.on_attacker_duplicate();
    c_.inject_message(std::move(msg), delay);
  }

  bool corrupt(NodeId node) override { return c_.corrupt(node); }

  bool is_corrupt(NodeId node) const noexcept override {
    return c_.is_corrupt(node);
  }

  std::uint32_t corrupted_count() const noexcept override {
    return static_cast<std::uint32_t>(c_.corrupted_order_.size());
  }

  Signature sign_as(NodeId node, std::uint64_t digest) override {
    if (!c_.is_corrupt(node)) {
      return Signature{node, digest, 0};  // unforgeable: invalid tag
    }
    return c_.signer_.sign(node, digest);
  }

  TimerId set_timer(Time delay, std::uint64_t tag) override {
    return c_.set_timer(TimerOwner::kAttacker, kNoNode, delay, tag);
  }

  Rng& rng() noexcept override { return c_.atk_rng_; }

 private:
  Controller& c_;
};

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

Controller::Controller(SimConfig cfg)
    : cfg_(std::move(cfg)),
      run_rng_(0),
      net_rng_(0),
      atk_rng_(0),
      vrf_(0),
      signer_(0),
      delay_sampler_(cfg_.delay) {
  cfg_.validate();
  const ProtocolInfo& info = ProtocolRegistry::instance().get(cfg_.protocol);

  f_ = info.fault_threshold(cfg_.n);
  lambda_ = from_ms(cfg_.lambda_ms);
  horizon_ = from_ms(cfg_.max_time_ms);

  run_rng_.reseed(cfg_.seed);
  net_rng_ = run_rng_.fork(0x6e6574);            // "net"
  atk_rng_ = run_rng_.fork(0x61746b);            // "atk"
  const std::uint64_t crypto_seed = run_rng_.next_u64();
  vrf_ = Vrf{crypto_seed};
  signer_ = Signer{crypto_seed ^ 0x736967ULL};

  // Choose which nodes are fail-stopped: a random subset of size n - live.
  const std::uint32_t live = cfg_.live_nodes();
  std::vector<NodeId> ids(cfg_.n);
  for (NodeId i = 0; i < cfg_.n; ++i) ids[i] = i;
  Rng pick = run_rng_.fork(0x6673);  // "fs"
  for (std::uint32_t i = 0; i + 1 < cfg_.n; ++i) {  // Fisher-Yates
    const auto j = i + static_cast<std::uint32_t>(pick.next_below(cfg_.n - i));
    std::swap(ids[i], ids[j]);
  }
  std::unordered_set<NodeId> dead;
  for (std::uint32_t i = live; i < cfg_.n; ++i) {
    dead.insert(ids[i]);
    failstopped_.push_back(ids[i]);
  }
  std::sort(failstopped_.begin(), failstopped_.end());

  nodes_.resize(cfg_.n);
  ctxs_.reserve(cfg_.n);
  node_rngs_.reserve(cfg_.n);
  Rng node_seed = run_rng_.fork(0x6e6f6465);  // "node"
  for (NodeId i = 0; i < cfg_.n; ++i) {
    node_rngs_.push_back(node_seed.fork(i));
    ctxs_.emplace_back(*this, i);
    if (!dead.contains(i)) nodes_[i] = info.create(i, cfg_);
  }
  decided_count_.assign(cfg_.n, 0);

  if (cfg_.topology.is_object()) {
    topology_ = TopologySpec::from_json(cfg_.topology);
  }
  verify_cost_ = from_ms(cfg_.cost.verify_ms);
  sign_cost_ = from_ms(cfg_.cost.sign_ms);
  cost_model_on_ = cfg_.cost.enabled();
  cpu_free_.assign(cfg_.n, 0);
  corrupt_flags_.assign(cfg_.n, 0);

  // Size the event queue for the steady-state backlog: every node can have
  // a broadcast in flight (n-1 deliveries each) plus timers; the heap's
  // backing vector then recycles its slots for the rest of the run. The n²
  // estimate is capped — at n=4096 it would pin ~1 GB of heap before the
  // first event; beyond the cap the vector grows geometrically on demand,
  // which changes nothing observable (heap order is capacity-independent).
  constexpr std::size_t kMaxQueueReserve = std::size_t{1} << 18;
  queue_.reserve(
      std::min(static_cast<std::size_t>(cfg_.n) * cfg_.n, kMaxQueueReserve) +
      256);
  if (cost_model_on_) cpu_charged_.reserve(256);

  attacker_ = make_attacker(cfg_);
  attacker_passive_ = attacker_->is_passive();
  atk_ctx_ = std::make_unique<AtkCtx>(*this);

  // Trace sink: selecting a streaming sink implies tracing (a jsonl/binary
  // sink with nothing flowing through it would be a silent no-op). With the
  // defaults (record_trace off, memory sink) there is no sink at all and
  // every emission site is one null check.
  if (cfg_.record_trace || cfg_.obs.streaming()) {
    trace_sink_ = obs::make_trace_sink(cfg_.obs, trace_);
  }
  if (cfg_.obs.timeline_enabled()) {
    timeline_ = std::make_unique<obs::Timeline>(
        std::max<Time>(from_ms(cfg_.obs.timeline_tick_ms), 1),
        cfg_.obs.timeline_views);
    current_view_.assign(cfg_.n, 0);
  }

  // Fault layer. The fault RNG is forked off run_rng_ last, and only when
  // faults are enabled, so every other stream (net, atk, crypto, fs, node)
  // is untouched and fault-free runs stay bit-identical to the goldens.
  if (cfg_.faults.enabled()) {
    faults_ = std::make_unique<FaultInjector>(cfg_.faults, cfg_.n,
                                              run_rng_.fork(0x666c74));  // "flt"
    const auto& timeline = faults_->events();
    for (std::size_t i = 0; i < timeline.size(); ++i) {
      if (timeline[i].at > horizon_) continue;
      queue_.push(timeline[i].at,
                  TimerFire{TimerOwner::kFault, kNoNode, next_timer_id_++, i});
    }
  }

  // WAN transport backend. Like the fault RNG, the overlay RNG is forked
  // off run_rng_ only when the backend is selected, so classic runs keep
  // every other stream aligned with the recorded goldens.
  if (cfg_.net.enabled()) {
    wan_ = std::make_unique<WanModel>(cfg_.net, cfg_.n,
                                      run_rng_.fork(0x77616e));  // "wan"
    if (wan_->gossip()) gossip_seen_.resize(cfg_.n);
  }

  // Client workload generator. Like the fault and WAN RNGs, the workload
  // RNG is forked off run_rng_ only when a workload is selected, so
  // workload-free runs keep every stream aligned with the recorded goldens.
  if (cfg_.workload.enabled()) {
    workload_ = std::make_unique<WorkloadManager>(
        cfg_.workload, cfg_.n, run_rng_.fork(0x776c));  // "wl"
  }
}

Controller::~Controller() = default;

// ---------------------------------------------------------------------------
// Network module
// ---------------------------------------------------------------------------

void Controller::network_send(NodeId src, NodeId dst, PayloadPtr payload,
                              Time extra_delay) {
  assert(payload != nullptr);
  const std::uint64_t id = next_msg_id_++;
  const std::size_t wire = payload->wire_size();

  metrics_.on_send();
  metrics_.on_bytes(wire);
  const PayloadType tid = payload->type_id();
  if (tid != PayloadType::kUnknown) {
    metrics_.count_type(tid);
  } else {
    metrics_.count_type(std::string(payload->type()));
  }
  if (trace_sink_) {
    trace_sink_->on_record(TraceRecord{TraceKind::kSend, now_, src, dst,
                                       std::string(payload->type()),
                                       payload->digest(), id, 0, 0});
  }

  const Time sampled = [&] {
    BFTSIM_PROFILE_SCOPE(profile_, obs::ProfileComponent::kDelaySample);
    const Time draw = delay_sampler_.sample(net_rng_);
    // The WAN matrix adds a pure per-region-pair base on top of the same
    // single draw the classic path makes, so disabled-backend runs keep
    // net_rng_ bit-aligned with the goldens.
    return wan_ != nullptr ? draw + wan_->base_delay(src, dst)
                           : topology_.adjust(draw, src, dst);
  }();
  // Link flaps sit below the attacker: the delay is sampled first (keeping
  // net_rng_ aligned with fault-free runs) and a down link drops the
  // message before the attacker ever sees it.
  if (faults_ != nullptr && faults_->any_link_down() &&
      faults_->link_down(src, dst)) {
    metrics_.on_drop();
    if (trace_sink_) {
      trace_sink_->on_record(TraceRecord{TraceKind::kDrop, now_, src, dst,
                                         std::string(payload->type()),
                                         payload->digest(), id, 0, 0});
    }
    return;
  }

  if (attacker_passive_ && !custom_delivery_hook_) {
    // Fast path (no attack scenario, no subclass hook): no Message is
    // materialized — the envelope interns the transmission and the delivery
    // event carries an 8-byte handle. Bit-identical to the hook path below:
    // a passive attacker's attack() observes and changes nothing.
    if (faults_ != nullptr && faults_->maybe_corrupt(now_)) {
      payload = std::allocate_shared<CorruptedPayload>(
          ArenaAllocator<CorruptedPayload>(&arena_), std::move(payload));
      metrics_.on_corrupt();
    }
    const std::uint32_t env =
        env_store_.create(std::move(payload), now_, id, src, false, 1);
    const Time at =
        wan_ != nullptr && wan_->bandwidth_enabled()
            ? wan_->delivery_time(src, dst, wire, now_ + extra_delay, sampled)
            : now_ + std::max<Time>(extra_delay + sampled, 0);
    queue_.push(at, MessageDelivery{env, dst});
    return;
  }

  Message msg;
  msg.src = src;
  msg.dst = dst;
  msg.send_time = now_;
  msg.id = id;
  msg.payload = std::move(payload);
  MessageInFlight in_flight{std::move(msg), extra_delay + sampled};
  // Snapshot the pre-attack state so the attacker's edits are countable by
  // comparison — no per-action instrumentation inside attack() needed.
  // Payloads are immutable (shared_ptr<const Payload>), so replacement and
  // rerouting are the only modification channels an attacker has.
  const Time assigned_delay = in_flight.delay;
  const Payload* original_payload = in_flight.msg.payload.get();
  const NodeId original_src = in_flight.msg.src;
  const NodeId original_dst = in_flight.msg.dst;
  const Disposition verdict = [&] {
    BFTSIM_PROFILE_SCOPE(profile_, obs::ProfileComponent::kAttackerHook);
    return attacker_->attack(in_flight, *atk_ctx_);
  }();
  if (verdict == Disposition::kDrop) {
    metrics_.on_drop();
    metrics_.on_attacker_drop();
    if (trace_sink_) {
      trace_sink_->on_record(
          TraceRecord{TraceKind::kDrop, now_, in_flight.msg.src,
                      in_flight.msg.dst,
                      std::string(in_flight.msg.payload->type()),
                      in_flight.msg.payload->digest(), in_flight.msg.id, 0, 0});
    }
    return;
  }
  if (in_flight.delay != assigned_delay) metrics_.on_attacker_delay();
  if (in_flight.msg.payload.get() != original_payload ||
      in_flight.msg.src != original_src || in_flight.msg.dst != original_dst) {
    metrics_.on_attacker_modify();
  }
  if (faults_ != nullptr && faults_->maybe_corrupt(now_)) {
    in_flight.msg.payload = std::allocate_shared<CorruptedPayload>(
        ArenaAllocator<CorruptedPayload>(&arena_),
        std::move(in_flight.msg.payload));
    metrics_.on_corrupt();
  }
  Time final_delay = std::max<Time>(in_flight.delay, 0);
  if (wan_ != nullptr && wan_->bandwidth_enabled()) {
    // Bandwidth queuing applies after the attacker's verdict, on the link
    // the message actually takes (an attacker may have rerouted it).
    final_delay = wan_->delivery_time(in_flight.msg.src, in_flight.msg.dst,
                                      wire, now_, final_delay) -
                  now_;
  }
  schedule_network_delivery(std::move(in_flight.msg), final_delay);
}

void Controller::network_broadcast(NodeId src, const PayloadPtr& payload,
                                   Time extra_delay) {
  assert(payload != nullptr);
  if (wan_ != nullptr && wan_->gossip()) {
    gossip_broadcast(src, payload, extra_delay);
    return;
  }
  // Hoist everything that depends only on the payload out of the fan-out
  // loop: the virtual wire_size()/type_id() calls, and (when tracing) the
  // type string and digest. The per-destination sequence — message id,
  // delay sample, attacker verdict, scheduling — is unchanged, so a run is
  // bit-identical to one using n-1 network_send calls.
  const std::size_t wire = payload->wire_size();
  const PayloadType tid = payload->type_id();
  const bool tagged = tid != PayloadType::kUnknown;
  std::string trace_type;
  std::uint64_t trace_digest = 0;
  if (trace_sink_) {
    trace_type = std::string(payload->type());
    trace_digest = payload->digest();
  }

  const bool fast = attacker_passive_ && !custom_delivery_hook_;
  // The shared fan-out envelope, created lazily at the first scheduled
  // destination. Its base_id is the id the first destination in the loop
  // gets (dropped or not), so per-destination ids derive by position
  // exactly as next_msg_id_++ assigned them.
  constexpr std::uint32_t kNoEnvelope = 0xffffffffu;
  std::uint32_t env = kNoEnvelope;
  const std::uint64_t base_id = next_msg_id_;

  for (NodeId dst = 0; dst < cfg_.n; ++dst) {
    if (dst == src) continue;
    const std::uint64_t id = next_msg_id_++;

    metrics_.on_send();
    metrics_.on_bytes(wire);
    if (tagged) {
      metrics_.count_type(tid);
    } else {
      metrics_.count_type(std::string(payload->type()));
    }
    if (trace_sink_) {
      trace_sink_->on_record(TraceRecord{TraceKind::kSend, now_, src, dst,
                                         trace_type, trace_digest, id, 0, 0});
    }

    const Time sampled = [&] {
      BFTSIM_PROFILE_SCOPE(profile_, obs::ProfileComponent::kDelaySample);
      const Time draw = delay_sampler_.sample(net_rng_);
      // The WAN matrix adds a pure per-region-pair base on top of the same
      // single draw the classic path makes, so disabled-backend runs keep
      // net_rng_ bit-aligned with the goldens.
      return wan_ != nullptr ? draw + wan_->base_delay(src, dst)
                             : topology_.adjust(draw, src, dst);
    }();
    if (faults_ != nullptr && faults_->any_link_down() &&
        faults_->link_down(src, dst)) {
      metrics_.on_drop();
      if (trace_sink_) {
        trace_sink_->on_record(TraceRecord{TraceKind::kDrop, now_, src, dst,
                                           trace_type, trace_digest, id, 0,
                                           0});
      }
      continue;
    }

    if (fast) {
      if (faults_ != nullptr && faults_->maybe_corrupt(now_)) {
        // A corrupted copy diverges from the shared body: it gets its own
        // single-delivery envelope carrying the wrapped payload.
        PayloadPtr wrapped = std::allocate_shared<CorruptedPayload>(
            ArenaAllocator<CorruptedPayload>(&arena_), PayloadPtr(payload));
        metrics_.on_corrupt();
        const std::uint32_t solo =
            env_store_.create(std::move(wrapped), now_, id, src, false, 1);
        const Time at =
            wan_ != nullptr && wan_->bandwidth_enabled()
                ? wan_->delivery_time(src, dst, wire, now_ + extra_delay,
                                      sampled)
                : now_ + std::max<Time>(extra_delay + sampled, 0);
        queue_.push(at, MessageDelivery{solo, dst});
        continue;
      }
      if (env == kNoEnvelope) {
        env = env_store_.create(payload, now_, base_id, src, true, 0);
      }
      env_store_.add_pending(env, 1);
      const Time at =
          wan_ != nullptr && wan_->bandwidth_enabled()
              ? wan_->delivery_time(src, dst, wire, now_ + extra_delay, sampled)
              : now_ + std::max<Time>(extra_delay + sampled, 0);
      queue_.push(at, MessageDelivery{env, dst});
      continue;
    }

    Message msg;
    msg.src = src;
    msg.dst = dst;
    msg.send_time = now_;
    msg.id = id;
    msg.payload = payload;
    MessageInFlight in_flight{std::move(msg), extra_delay + sampled};
    const Time assigned_delay = in_flight.delay;
    const Payload* original_payload = in_flight.msg.payload.get();
    const NodeId original_src = in_flight.msg.src;
    const NodeId original_dst = in_flight.msg.dst;
    const Disposition verdict = [&] {
      BFTSIM_PROFILE_SCOPE(profile_, obs::ProfileComponent::kAttackerHook);
      return attacker_->attack(in_flight, *atk_ctx_);
    }();
    if (verdict == Disposition::kDrop) {
      metrics_.on_drop();
      metrics_.on_attacker_drop();
      if (trace_sink_) {
        trace_sink_->on_record(
            TraceRecord{TraceKind::kDrop, now_, in_flight.msg.src,
                        in_flight.msg.dst,
                        std::string(in_flight.msg.payload->type()),
                        in_flight.msg.payload->digest(), in_flight.msg.id, 0,
                        0});
      }
      continue;
    }
    if (in_flight.delay != assigned_delay) metrics_.on_attacker_delay();
    if (in_flight.msg.payload.get() != original_payload ||
        in_flight.msg.src != original_src || in_flight.msg.dst != original_dst) {
      metrics_.on_attacker_modify();
    }
    if (faults_ != nullptr && faults_->maybe_corrupt(now_)) {
      in_flight.msg.payload = std::allocate_shared<CorruptedPayload>(
          ArenaAllocator<CorruptedPayload>(&arena_),
          std::move(in_flight.msg.payload));
      metrics_.on_corrupt();
    }
    Time final_delay = std::max<Time>(in_flight.delay, 0);
    if (wan_ != nullptr && wan_->bandwidth_enabled()) {
      final_delay = wan_->delivery_time(in_flight.msg.src, in_flight.msg.dst,
                                        wire, now_, final_delay) -
                    now_;
    }
    schedule_network_delivery(std::move(in_flight.msg), final_delay);
  }
}

// ---------------------------------------------------------------------------
// WAN gossip backend
// ---------------------------------------------------------------------------
//
// A broadcast under the gossip backend is disseminated epidemically: the
// origin sends to its fanout overlay peers; every node relays the first
// copy it accepts to its own peers and drops subsequent copies (counted as
// gossip duplicates). The overlay's ring edge keeps the digraph strongly
// connected, so every live node is reached. Gossip is serial-engine-only
// and incompatible with attack scenarios (SimConfig::validate) — the
// envelope fast path is therefore always available here.

void Controller::gossip_broadcast(NodeId origin, const PayloadPtr& payload,
                                  Time extra_delay) {
  const std::uint64_t gid = next_gossip_id_++;
  gossip_seen_[origin].insert(gid);  // never re-deliver to the origin
  for (const NodeId peer : wan_->peers_of(origin)) {
    gossip_send_copy(origin, peer, origin, payload, gid, extra_delay);
  }
}

void Controller::gossip_send_copy(NodeId relayer, NodeId peer, NodeId origin,
                                  const PayloadPtr& payload, std::uint64_t gid,
                                  Time extra_delay) {
  const std::uint64_t id = next_msg_id_++;
  const std::size_t wire = payload->wire_size();

  metrics_.on_send();
  metrics_.on_bytes(wire);
  const PayloadType tid = payload->type_id();
  if (tid != PayloadType::kUnknown) {
    metrics_.count_type(tid);
  } else {
    metrics_.count_type(std::string(payload->type()));
  }
  if (trace_sink_) {
    // The trace keeps the protocol-level source (the origin) so Send and
    // Deliver records pair up by message id like on the classic path; the
    // physical relayer shows up in the gossip counters instead.
    trace_sink_->on_record(TraceRecord{TraceKind::kSend, now_, origin, peer,
                                       std::string(payload->type()),
                                       payload->digest(), id, 0, 0});
  }

  const Time sampled = [&] {
    BFTSIM_PROFILE_SCOPE(profile_, obs::ProfileComponent::kDelaySample);
    return delay_sampler_.sample(net_rng_) + wan_->base_delay(relayer, peer);
  }();
  if (faults_ != nullptr && faults_->any_link_down() &&
      faults_->link_down(relayer, peer)) {
    metrics_.on_drop();
    if (trace_sink_) {
      trace_sink_->on_record(TraceRecord{TraceKind::kDrop, now_, origin, peer,
                                         std::string(payload->type()),
                                         payload->digest(), id, 0, 0});
    }
    return;
  }

  PayloadPtr body = payload;
  if (faults_ != nullptr && faults_->maybe_corrupt(now_)) {
    body = std::allocate_shared<CorruptedPayload>(
        ArenaAllocator<CorruptedPayload>(&arena_), std::move(body));
    metrics_.on_corrupt();
  }
  const std::uint32_t env =
      env_store_.create(std::move(body), now_, id, origin, false, 1);
  env_store_.get(env).gossip_id = gid;
  const Time at =
      wan_->bandwidth_enabled()
          ? wan_->delivery_time(relayer, peer, wire, now_ + extra_delay,
                                sampled)
          : now_ + std::max<Time>(extra_delay + sampled, 0);
  queue_.push(at, MessageDelivery{env, peer});
}

void Controller::gossip_deliver(const Message& msg, std::uint64_t gid) {
  // Fail-stopped / crashed destinations drop the copy exactly like the
  // classic path — without marking it seen, so a copy arriving after a
  // crash recovery can still be the accepted one.
  if (!is_live(msg.dst) ||
      (faults_ != nullptr && faults_->is_crashed(msg.dst))) {
    deliver_now(msg);
    return;
  }
  if (!gossip_seen_[msg.dst].insert(gid).second) {
    metrics_.on_drop();
    metrics_.on_gossip_duplicate();
    if (trace_sink_ != nullptr && msg.payload != nullptr) {
      trace_sink_->on_record(TraceRecord{TraceKind::kDrop, now_, msg.src,
                                         msg.dst,
                                         std::string(msg.payload->type()),
                                         msg.payload->digest(), msg.id, 0, 0});
    }
    return;
  }
  // First accepted copy: relay before local processing, so the CPU cost
  // model (which can defer on_message) never slows dissemination down.
  // Relaying forwards the bytes as received — including a fault-corrupted
  // wrapper — and skips the origin, which has the payload by definition.
  if (msg.payload != nullptr) {
    for (const NodeId peer : wan_->peers_of(msg.dst)) {
      if (peer == msg.src) continue;
      metrics_.on_gossip_relay();
      gossip_send_copy(msg.dst, peer, msg.src, msg.payload, gid, 0);
    }
  }
  deliver_now(msg);
}

void Controller::schedule_network_delivery(Message msg, Time delay) {
  const std::uint32_t env = env_store_.create(
      std::move(msg.payload), msg.send_time, msg.id, msg.src, false, 1);
  queue_.push(now_ + delay, MessageDelivery{env, msg.dst});
}

void Controller::schedule_message_at(Message msg, Time at) {
  const std::uint32_t env = env_store_.create(
      std::move(msg.payload), msg.send_time, msg.id, msg.src, false, 1);
  queue_.push(std::max(at, now_), MessageDelivery{env, msg.dst});
}

void Controller::deliver_self(NodeId id, PayloadPtr payload) {
  // A node's message to itself does not traverse the network or the
  // attacker and is not counted as a transmitted message; it is scheduled
  // (rather than dispatched inline) so handlers never re-enter.
  const std::uint64_t msg_id = next_msg_id_++;
  const std::uint32_t env =
      env_store_.create(std::move(payload), now_, msg_id, id, false, 1);
  queue_.push(now_, MessageDelivery{env, id});
}

void Controller::inject_message(Message msg, Time delay) {
  msg.id = next_msg_id_++;
  msg.send_time = now_;
  metrics_.on_inject();
  if (trace_sink_ != nullptr && msg.payload != nullptr) {
    trace_sink_->on_record(TraceRecord{TraceKind::kSend, now_, msg.src,
                                       msg.dst, std::string(msg.payload->type()),
                                       msg.payload->digest(), msg.id, 0, 0});
  }
  const std::uint32_t env = env_store_.create(
      std::move(msg.payload), msg.send_time, msg.id, msg.src, false, 1);
  queue_.push(now_ + std::max<Time>(delay, 0), MessageDelivery{env, msg.dst});
}

Time Controller::charge_cpu(NodeId node, Time cost) {
  if (node >= cpu_free_.size()) return now_;
  if (cost <= 0) return std::max(cpu_free_[node], now_);
  cpu_free_[node] = std::max(cpu_free_[node], now_) + cost;
  return cpu_free_[node];
}

void Controller::deliver_now(const Message& msg) {
  if (!is_live(msg.dst)) {
    metrics_.on_drop();
    return;
  }
  // A crashed node drops everything that arrives during its outage window
  // (it will resync via the protocol's own catch-up paths after recovery).
  if (faults_ != nullptr && faults_->is_crashed(msg.dst)) {
    metrics_.on_drop();
    if (cost_model_on_) cpu_charged_.erase(msg.id);
    if (trace_sink_ != nullptr && msg.payload != nullptr) {
      trace_sink_->on_record(TraceRecord{TraceKind::kDrop, now_, msg.src,
                                         msg.dst,
                                         std::string(msg.payload->type()),
                                         msg.payload->digest(), msg.id, 0, 0});
    }
    return;
  }
  // Computation-cost model: verifying a network message occupies the
  // receiver's CPU, and a CPU still busy (verifying or signing) defers the
  // processing of new arrivals — messages queue behind each other, which
  // is what makes throughput saturate. Self-deliveries are internal and
  // free.
  if (cost_model_on_ && msg.src != msg.dst && !cpu_charged_.contains(msg.id)) {
    cpu_charged_.insert(msg.id);
    charge_cpu(msg.dst, verify_cost_);
    if (cpu_free_[msg.dst] > now_) {
      schedule_message_at(msg, cpu_free_[msg.dst]);  // redeliver when free
      return;
    }
  }
  cpu_charged_.erase(msg.id);
  if (msg.src != msg.dst) metrics_.on_deliver();  // self-delivery is free
  if (trace_sink_ != nullptr && msg.payload != nullptr) {
    trace_sink_->on_record(TraceRecord{TraceKind::kDeliver, now_, msg.src,
                                       msg.dst,
                                       std::string(msg.payload->type()),
                                       msg.payload->digest(), msg.id, 0, 0});
  }
  if (is_corrupt(msg.dst)) return;  // attacker swallows its nodes' input
  BFTSIM_PROFILE_SCOPE(profile_, obs::ProfileComponent::kOnMessage);
  nodes_[msg.dst]->on_message(msg, ctxs_[msg.dst]);
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

TimerId Controller::set_timer(TimerOwner owner, NodeId node, Time delay,
                              std::uint64_t tag) {
  // Clock skew/drift distorts the node's view of how long `delay` is.
  if (faults_ != nullptr && owner == TimerOwner::kNode) {
    delay = faults_->adjust_timer_delay(node, delay);
  }
  const TimerId id = next_timer_id_++;
  queue_.push(now_ + std::max<Time>(delay, 0), TimerFire{owner, node, id, tag});
  return id;
}

void Controller::cancel_timer(TimerId id) { queue_.cancel_timer(id); }

void Controller::schedule_system_event(Time at, std::uint64_t tag) {
  queue_.push(std::max(at, now_),
              TimerFire{TimerOwner::kSystem, kNoNode, next_timer_id_++, tag});
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

void Controller::report_decision(NodeId node, Value value) {
  const std::uint64_t height = decided_count_[node]++;
  if (workload_ != nullptr) workload_->on_decide(value, now_);
  metrics_.on_decision(Decision{node, now_, height, value});
  if (trace_sink_) {
    trace_sink_->on_record(TraceRecord{TraceKind::kDecide, now_, node, kNoNode,
                                       {}, 0, 0, height, value});
  }
  BFTSIM_LOG(kDebug, "node " << node << " decided height " << height
                             << " value " << value << " at " << to_ms(now_) << "ms");
  check_termination();
}

void Controller::record_view(NodeId node, View view) {
  if (cfg_.record_views) metrics_.on_view(ViewRecord{node, now_, view});
  if (trace_sink_) {
    trace_sink_->on_record(TraceRecord{TraceKind::kViewChange, now_, node,
                                       kNoNode, {}, 0, 0, view, 0});
  }
  if (!current_view_.empty() && node < current_view_.size()) {
    current_view_[node] = view;
  }
}

bool Controller::corrupt(NodeId node) {
  if (node >= cfg_.n) return false;
  if (is_corrupt(node)) return false;
  if (corrupted_order_.size() + failstopped_.size() >= f_) return false;
  corrupt_flags_[node] = 1;
  corrupted_order_.push_back(node);
  if (trace_sink_) {
    trace_sink_->on_record(
        TraceRecord{TraceKind::kCorrupt, now_, node, kNoNode, {}, 0, 0, 0, 0});
  }
  BFTSIM_LOG(kInfo, "attacker corrupted node " << node << " at " << to_ms(now_) << "ms");
  check_termination();
  return true;
}

void Controller::check_termination() {
  if (stopped_) return;
  for (NodeId i = 0; i < cfg_.n; ++i) {
    if (!is_honest(i)) continue;
    if (decided_count_[i] < cfg_.decisions) return;
  }
  stopped_ = true;
  termination_time_ = now_;
}

bool Controller::is_live(NodeId id) const noexcept {
  return id < cfg_.n && nodes_[id] != nullptr;
}

Context& Controller::node_ctx(NodeId id) noexcept { return ctxs_[id]; }

AttackerContext& Controller::attacker_ctx() noexcept { return *atk_ctx_; }

bool Controller::is_honest(NodeId id) const noexcept {
  return is_live(id) && !is_corrupt(id);
}

// ---------------------------------------------------------------------------
// Run loop
// ---------------------------------------------------------------------------

void Controller::dispatch(Event& ev) {
  if (const auto* delivery = std::get_if<MessageDelivery>(&ev.body)) {
    const std::uint64_t gid = env_store_.get(delivery->env).gossip_id;
    const Message msg = env_store_.materialize(delivery->env, delivery->dst);
    if (gid != 0) {
      gossip_deliver(msg, gid);
    } else {
      deliver_now(msg);
    }
    env_store_.release(delivery->env);
    return;
  }
  auto& fire = std::get<TimerFire>(ev.body);
  if (queue_.consume_cancellation(fire.timer)) return;
  // A crashed node's timers are suspended, not lost: the fire is deferred
  // to the recovery instant (the kRecover fault timer carries an earlier
  // sequence number, so at that tie the node is already back up). Dropping
  // them instead could leave a recovered node with no pending timers — a
  // guaranteed deadlock.
  if (faults_ != nullptr && fire.owner == TimerOwner::kNode &&
      faults_->is_crashed(fire.node)) {
    queue_.push(faults_->recovery_time(fire.node),
                TimerFire{fire.owner, fire.node, fire.timer, fire.tag});
    return;
  }
  metrics_.on_timer();
  const TimerEvent te{fire.timer, fire.tag, now_};
  switch (fire.owner) {
    case TimerOwner::kNode:
      if (is_live(fire.node) && !is_corrupt(fire.node)) {
        BFTSIM_PROFILE_SCOPE(profile_, obs::ProfileComponent::kOnTimer);
        nodes_[fire.node]->on_timer(te, ctxs_[fire.node]);
      }
      break;
    case TimerOwner::kAttacker: {
      BFTSIM_PROFILE_SCOPE(profile_, obs::ProfileComponent::kAttackerHook);
      attacker_->on_timer(te, *atk_ctx_);
      break;
    }
    case TimerOwner::kSystem:
      on_system_event(fire.tag);
      break;
    case TimerOwner::kFault: {
      BFTSIM_PROFILE_SCOPE(profile_, obs::ProfileComponent::kFaultHook);
      faults_->apply(fire.tag);
      break;
    }
  }
}

RunResult Controller::run() {
  if (ran_) throw std::logic_error("Controller::run() called twice");
  ran_ = true;

  if (custom_delivery_hook_ && wan_ != nullptr) {
    throw std::invalid_argument(
        "config error at $.net: the WAN backend requires the default "
        "delivery path (controllers overriding schedule_network_delivery "
        "model the wire themselves)");
  }

  if (cfg_.engine.per_node_rng()) {
    if (custom_delivery_hook_) {
      throw std::invalid_argument(
          "engine: windowed-parallel execution requires the default delivery "
          "path (controllers overriding schedule_network_delivery are "
          "serial-only)");
    }
    // Closed-loop workloads resubmit requests at decision times, which only
    // the serial engine observes in order; open-loop workloads are per-node
    // streams and stay windowed-parallel safe.
    const bool workload_serial =
        workload_ != nullptr && workload_->serial_only();
    if (attacker_passive_ && !workload_serial) {
      win_ = std::make_unique<WindowedEngine>(*this);
      return win_->run();
    }
    // Graceful degradation: a global attacker's observation order (and a
    // closed-loop workload's resubmission order) is not lane-independent,
    // so such a run cannot execute on the windowed driver. Instead of
    // refusing the config (which would kill whole sweeps that set a global
    // engine.intra_jobs), deterministically fall back to the serial engine
    // for this run and record the decision.
    warnings_.push_back(RunWarning{
        "engine-serial-fallback",
        attacker_passive_
            ? "closed-loop workload is serial-only: engine.intra_jobs=" +
                  std::to_string(cfg_.engine.intra_jobs) +
                  " ignored, run executed on the serial engine"
            : "attack \"" + cfg_.attack +
                  "\" is serial-only: engine.intra_jobs=" +
                  std::to_string(cfg_.engine.intra_jobs) +
                  " ignored, run executed on the serial engine"});
  }

  attacker_->on_start(*atk_ctx_);
  for (NodeId i = 0; i < cfg_.n; ++i) {
    if (is_live(i)) nodes_[i]->on_start(ctxs_[i]);
  }
  check_termination();  // degenerate configs (decisions == 0 is rejected)

  TerminationReason reason = TerminationReason::kQueueDrained;
  while (!stopped_ && !queue_.empty()) {
    Event ev = [&] {
      BFTSIM_PROFILE_SCOPE(profile_, obs::ProfileComponent::kEventPop);
      return queue_.pop();
    }();
    if (ev.at > horizon_) {
      now_ = horizon_;
      reason = TerminationReason::kHorizon;
      break;
    }
    now_ = ev.at;
    // Timeline sampling: reads engine counters only (no events, no RNG), so
    // a sampled run stays bit-identical to an unsampled one.
    if (timeline_ != nullptr && now_ >= timeline_->next_sample_at()) {
      sample_timeline(/*final_sample=*/false);
    }
    metrics_.on_event();
    if (metrics_.events_processed() > cfg_.max_events) {
      reason = TerminationReason::kEventBudget;
      break;
    }
    dispatch(ev);
  }
  if (stopped_) reason = TerminationReason::kDecided;
  return make_result(reason);
}

RunResult Controller::make_result(TerminationReason reason) {
  RunResult result;
  result.terminated = stopped_;
  result.termination_time = termination_time_;
  result.termination_reason = reason;
  result.decisions_target = cfg_.decisions;
  result.messages_sent = metrics_.messages_sent();
  result.bytes_sent = metrics_.bytes_sent();
  result.messages_delivered = metrics_.messages_delivered();
  result.messages_dropped = metrics_.messages_dropped();
  result.messages_injected = metrics_.messages_injected();
  result.messages_corrupted = metrics_.messages_corrupted();
  result.events_processed = metrics_.events_processed();
  result.timers_fired = metrics_.timers_fired();
  result.attacker_dropped = metrics_.attacker_dropped();
  result.attacker_delayed = metrics_.attacker_delayed();
  result.attacker_modified = metrics_.attacker_modified();
  result.attacker_duplicated = metrics_.attacker_duplicated();
  result.gossip_relayed = metrics_.gossip_relayed();
  result.gossip_duplicates = metrics_.gossip_duplicates();
  result.warnings = warnings_;
  result.decisions = metrics_.decisions();
  result.views = metrics_.views();
  result.failstopped = failstopped_;
  result.corrupted = corrupted_order_;
  for (NodeId i = 0; i < cfg_.n; ++i) {
    if (is_honest(i)) result.honest.push_back(i);
  }
  result.trace = std::move(trace_);
  if (workload_ != nullptr) {
    // Books close at the termination time, or at the horizon for every
    // non-decided outcome — a config constant, so the measured span is
    // identical whichever engine executed the run.
    result.workload =
        workload_->finalize(stopped_ ? termination_time_ : horizon_);
  }
  if (trace_sink_ != nullptr) {
    trace_sink_->flush();  // throws when a streaming sink's storage failed
    result.trace_fingerprint = trace_sink_->fingerprint();
    result.trace_records = trace_sink_->count();
  }
  if (timeline_ != nullptr) {
    sample_timeline(/*final_sample=*/true);
    result.timeline = timeline_->samples();
    result.timeline_tick = timeline_->tick();
  }
  result.profile = profile_;
  return result;
}

void Controller::sample_timeline(bool final_sample) {
  const std::size_t depth = queue_.size();
  const std::size_t timers = queue_.pending_timer_count();
  const std::size_t tombstones = queue_.tombstone_count();

  obs::TimelineSample s;
  s.at = now_;
  s.events_processed = metrics_.events_processed();
  s.queue_depth = depth;
  s.in_flight_messages = depth - timers - tombstones;
  s.timers_pending = timers;
  s.messages_sent = metrics_.messages_sent();
  s.messages_delivered = metrics_.messages_delivered();
  if (!current_view_.empty()) {
    s.min_view = *std::min_element(current_view_.begin(), current_view_.end());
    s.max_view = *std::max_element(current_view_.begin(), current_view_.end());
    if (timeline_->record_views()) s.node_views = current_view_;
  }
  if (final_sample) {
    timeline_->add_final(std::move(s));
  } else {
    timeline_->add(std::move(s));
  }
}

}  // namespace bftsim

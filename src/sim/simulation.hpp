// High-level facade: configure, run, get results.
#pragma once

#include "core/config.hpp"
#include "sim/result.hpp"

namespace bftsim {

/// Runs one simulation described by `cfg` and returns its result
/// (wall-clock cost included). Throws std::invalid_argument for bad
/// configurations and unknown protocol/attack names.
[[nodiscard]] RunResult run_simulation(const SimConfig& cfg);

}  // namespace bftsim

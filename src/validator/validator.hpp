// The validator module (§III-D): replays message events according to a
// ground-truth event sequence and cross-checks that the consensus module
// produces the same result (which node decides which value).
//
// The ground truth is a Trace — recorded by this simulator, by another
// simulator, or converted from logs of a real BFT deployment. Replay keeps
// the consensus module's logic live (nodes run, timers fire) but replaces
// the network module's delay sampling with the recorded delivery times:
// each sent message is matched FIFO against the ground-truth deliveries of
// the same (source, destination, payload type) and scheduled at the
// recorded timestamp; unmatched sends correspond to recorded drops.
//
// Traces of attack-free runs and of attacks that only drop or delay
// messages (fail-stop, partition) replay exactly; attacks that inject
// forged messages cannot be reproduced by replay and are reported as
// leftover deliveries.
#pragma once

#include <cstdint>
#include <string>

#include "core/config.hpp"
#include "core/trace.hpp"
#include "sim/result.hpp"

namespace bftsim {

/// Outcome of one validation replay.
struct ValidationResult {
  bool ok = false;                ///< decisions match and replay was exact
  bool decisions_match = false;   ///< same (node, height, value) decisions
  std::size_t replayed = 0;       ///< deliveries taken from the ground truth
  std::size_t unmatched_sends = 0;      ///< sends with no recorded delivery
  std::size_t ground_truth_drops = 0;   ///< drops recorded in the ground truth
  std::size_t leftover_deliveries = 0;  ///< recorded deliveries never produced
  std::size_t digest_mismatches = 0;    ///< payload digests disagreed
  std::string diagnosis;          ///< human-readable summary

  [[nodiscard]] std::string to_string() const;
};

/// Re-executes the protocol configured by `cfg` against the ground-truth
/// trace (which must have been recorded with record_trace = true, i.e.
/// contain kSend/kDeliver/kDecide records) and cross-validates decisions.
[[nodiscard]] ValidationResult validate_against_trace(const SimConfig& cfg,
                                                      const Trace& ground_truth);

/// Safety verdict over one run's decision log, used by the fault-matrix
/// harness: checks the classic properties directly on the RunResult
/// instead of replaying a trace.
struct SafetyReport {
  bool agreement = false;  ///< no two honest nodes decided differently at a height
  bool validity = false;   ///< per-node decision heights are contiguous from 0
  bool complete = false;   ///< terminated implies every honest node hit the target
  bool ok = false;         ///< all of the above
  std::string diagnosis;   ///< first violation found, empty when ok
};

/// Checks agreement / validity / completeness over the honest nodes of
/// `result` (crashed-and-recovered nodes are honest; attacker-corrupted
/// and fail-stopped ones are excluded via result.honest).
[[nodiscard]] SafetyReport check_run_safety(const RunResult& result);

}  // namespace bftsim

// The validator module (§III-D): replays message events according to a
// ground-truth event sequence and cross-checks that the consensus module
// produces the same result (which node decides which value).
//
// The ground truth is a Trace — recorded by this simulator, by another
// simulator, or converted from logs of a real BFT deployment. Replay keeps
// the consensus module's logic live (nodes run, timers fire) but replaces
// the network module's delay sampling with the recorded delivery times:
// each sent message is matched FIFO against the ground-truth deliveries of
// the same (source, destination, payload type) and scheduled at the
// recorded timestamp; unmatched sends correspond to recorded drops.
//
// Traces of attack-free runs and of attacks that only drop or delay
// messages (fail-stop, partition) replay exactly; attacks that inject
// forged messages cannot be reproduced by replay and are reported as
// leftover deliveries.
#pragma once

#include <cstdint>
#include <string>

#include "core/config.hpp"
#include "core/trace.hpp"

namespace bftsim {

/// Outcome of one validation replay.
struct ValidationResult {
  bool ok = false;                ///< decisions match and replay was exact
  bool decisions_match = false;   ///< same (node, height, value) decisions
  std::size_t replayed = 0;       ///< deliveries taken from the ground truth
  std::size_t unmatched_sends = 0;      ///< sends with no recorded delivery
  std::size_t ground_truth_drops = 0;   ///< drops recorded in the ground truth
  std::size_t leftover_deliveries = 0;  ///< recorded deliveries never produced
  std::size_t digest_mismatches = 0;    ///< payload digests disagreed
  std::string diagnosis;          ///< human-readable summary

  [[nodiscard]] std::string to_string() const;
};

/// Re-executes the protocol configured by `cfg` against the ground-truth
/// trace (which must have been recorded with record_trace = true, i.e.
/// contain kSend/kDeliver/kDecide records) and cross-validates decisions.
[[nodiscard]] ValidationResult validate_against_trace(const SimConfig& cfg,
                                                      const Trace& ground_truth);

}  // namespace bftsim

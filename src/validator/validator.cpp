#include "validator/validator.hpp"

#include <deque>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "sim/controller.hpp"

namespace bftsim {

namespace {

/// Key identifying a message stream between two nodes: matching is
/// content-aware (payload digest), so protocols that interleave many
/// same-type messages (e.g. echoes for different origins) replay exactly
/// even when their network delays crossed in the ground truth.
using StreamKey = std::tuple<NodeId, NodeId, std::uint64_t>;

/// A controller whose network module delivers messages at the ground
/// truth's recorded times instead of sampling delays.
class ReplayController final : public Controller {
 public:
  ReplayController(SimConfig cfg, const Trace& ground_truth)
      : Controller(std::move(cfg)) {
    custom_delivery_hook_ = true;
    for (const TraceRecord& rec : ground_truth.records()) {
      if (rec.kind == TraceKind::kDeliver) {
        // Self-deliveries never traverse the network module; the replay
        // reproduces them natively, so they are not matched against sends.
        if (rec.a != rec.b) {
          pending_[{rec.a, rec.b, rec.digest}].push_back(rec.at);
        }
      } else if (rec.kind == TraceKind::kDrop) {
        ++recorded_drops_;
      }
    }
  }

  [[nodiscard]] std::size_t replayed() const noexcept { return replayed_; }
  [[nodiscard]] std::size_t unmatched_sends() const noexcept {
    return unmatched_sends_;
  }
  [[nodiscard]] std::size_t recorded_drops() const noexcept {
    return recorded_drops_;
  }
  /// Recorded deliveries whose content the replay never produced — the
  /// signature of a tampered or foreign trace (benign truncation leaves
  /// matching digests behind, tampering leaves alien ones).
  [[nodiscard]] std::size_t digest_mismatches() const noexcept {
    std::size_t mismatches = 0;
    for (const auto& [key, queue] : pending_) {
      if (!queue.empty() && !sent_digests_.contains(std::get<2>(key))) {
        mismatches += queue.size();
      }
    }
    return mismatches;
  }

  [[nodiscard]] std::size_t leftover_deliveries() const noexcept {
    std::size_t leftover = 0;
    for (const auto& [key, queue] : pending_) leftover += queue.size();
    return leftover;
  }

 protected:
  void schedule_network_delivery(Message msg, Time /*sampled_delay*/) override {
    sent_digests_.insert(msg.payload->digest());
    const StreamKey key{msg.src, msg.dst, msg.payload->digest()};
    const auto it = pending_.find(key);
    if (it == pending_.end() || it->second.empty()) {
      // The ground truth never delivered this message: a recorded drop or
      // a message still in flight when the ground truth terminated.
      ++unmatched_sends_;
      return;
    }
    const Time at = it->second.front();
    it->second.pop_front();
    ++replayed_;
    schedule_message_at(std::move(msg), at);
  }

 private:
  std::map<StreamKey, std::deque<Time>> pending_;
  std::set<std::uint64_t> sent_digests_;
  std::size_t replayed_ = 0;
  std::size_t unmatched_sends_ = 0;
  std::size_t recorded_drops_ = 0;
};

using DecisionKey = std::tuple<NodeId, std::uint64_t, Value>;

[[nodiscard]] std::multiset<DecisionKey> trace_decisions(const Trace& trace) {
  std::multiset<DecisionKey> out;
  for (const TraceRecord& rec : trace.records()) {
    if (rec.kind == TraceKind::kDecide) out.insert({rec.a, rec.view, rec.value});
  }
  return out;
}

}  // namespace

std::string ValidationResult::to_string() const {
  std::ostringstream os;
  os << (ok ? "VALID" : "MISMATCH") << ": " << replayed << " deliveries replayed, "
     << unmatched_sends << " unmatched sends (ground truth drops: "
     << ground_truth_drops << "), " << leftover_deliveries
     << " leftover deliveries, " << digest_mismatches << " digest mismatches; "
     << "decisions " << (decisions_match ? "match" : "DIFFER");
  if (!diagnosis.empty()) os << " — " << diagnosis;
  return os.str();
}

SafetyReport check_run_safety(const RunResult& result) {
  SafetyReport report;
  report.agreement = true;
  report.validity = true;
  report.complete = true;

  const std::set<NodeId> honest(result.honest.begin(), result.honest.end());
  std::ostringstream os;

  // Agreement: at every height, all honest deciders chose the same value.
  std::map<std::uint64_t, std::pair<NodeId, Value>> chosen;
  std::map<NodeId, std::uint64_t> counts;
  for (const Decision& d : result.decisions) {
    if (!honest.contains(d.node)) continue;
    ++counts[d.node];
    const auto [it, inserted] = chosen.emplace(d.height, std::pair{d.node, d.value});
    if (!inserted && it->second.second != d.value && report.agreement) {
      report.agreement = false;
      os << "agreement violated at height " << d.height << ": node "
         << it->second.first << " decided " << it->second.second << ", node "
         << d.node << " decided " << d.value << "; ";
    }
  }

  // Validity: each node's decision heights are exactly 0..count-1 (the
  // height counter is assigned per node by the controller, so a gap or a
  // duplicate means the decision log itself is corrupt).
  std::map<NodeId, std::set<std::uint64_t>> heights;
  for (const Decision& d : result.decisions) {
    if (!honest.contains(d.node)) continue;
    if (!heights[d.node].insert(d.height).second && report.validity) {
      report.validity = false;
      os << "node " << d.node << " decided height " << d.height << " twice; ";
    }
  }
  for (const auto& [node, set] : heights) {
    if (!report.validity) break;
    if (*set.rbegin() != set.size() - 1) {
      report.validity = false;
      os << "node " << node << " has a gap in its decision heights; ";
    }
  }

  // Completeness: a run reported as terminated must have every honest node
  // at the decision target.
  if (result.terminated) {
    for (const NodeId node : result.honest) {
      if (counts[node] < result.decisions_target) {
        report.complete = false;
        os << "terminated but node " << node << " only decided "
           << counts[node] << "/" << result.decisions_target << "; ";
        break;
      }
    }
  }

  report.ok = report.agreement && report.validity && report.complete;
  report.diagnosis = os.str();
  return report;
}

ValidationResult validate_against_trace(const SimConfig& cfg,
                                        const Trace& ground_truth) {
  SimConfig replay_cfg = cfg;
  replay_cfg.attack.clear();  // attack effects are encoded in the trace
  replay_cfg.record_trace = false;

  ReplayController controller{replay_cfg, ground_truth};
  const RunResult result = controller.run();

  ValidationResult out;
  out.replayed = controller.replayed();
  out.unmatched_sends = controller.unmatched_sends();
  out.ground_truth_drops = controller.recorded_drops();
  out.leftover_deliveries = controller.leftover_deliveries();
  out.digest_mismatches = controller.digest_mismatches();

  std::multiset<DecisionKey> expected = trace_decisions(ground_truth);
  std::multiset<DecisionKey> actual;
  for (const Decision& d : result.decisions) {
    actual.insert({d.node, d.height, d.value});
  }
  out.decisions_match = expected == actual;

  out.ok = out.decisions_match && out.digest_mismatches == 0 &&
           out.leftover_deliveries == 0;
  if (!out.decisions_match) {
    std::ostringstream os;
    os << "expected " << expected.size() << " decisions, replay produced "
       << actual.size();
    out.diagnosis = os.str();
  }
  return out;
}

}  // namespace bftsim

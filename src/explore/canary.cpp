#include "explore/canary.hpp"

#include <memory>

#include "protocols/pbft/pbft.hpp"
#include "protocols/registry.hpp"

namespace bftsim::explore {

void register_fuzz_canary() {
  ProtocolRegistry& registry = ProtocolRegistry::instance();
  if (registry.contains(kCanaryProtocol)) return;
  registry.add(ProtocolInfo{
      kCanaryProtocol, NetModel::kPartialSync, byzantine_third, 1,
      [](NodeId id, const SimConfig& cfg) -> std::unique_ptr<Node> {
        // Quorum slack 1: every 2f+1 certificate becomes 2f.
        return std::make_unique<pbft::PbftNode>(id, cfg, /*quorum_slack=*/1);
      }});
}

}  // namespace bftsim::explore

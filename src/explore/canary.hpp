// The fuzzer's canary: a deliberately unsound PBFT variant used to prove,
// end to end, that the campaign engine can find a protocol bug and shrink
// it to a small reproducer.
//
// "pbft-canary" is PBFT with every 2f+1 quorum weakened to 2f (prepare,
// commit and view-change certificates). Two 2f quorums of an n = 3f+1
// system need not intersect in any node, so a network partition that lets
// both sides run view changes independently can commit conflicting values
// at the same height — exactly the class of violation the agreement and
// certificate-validity oracles exist to detect.
//
// The variant is NOT part of the builtin registry: nothing registers it
// unless register_fuzz_canary() is called, which only the fuzzer tests and
// `tools/fuzz --canary` do. Production configurations can never select it
// by accident.
#pragma once

namespace bftsim::explore {

/// Registry name of the canary protocol.
inline constexpr const char* kCanaryProtocol = "pbft-canary";

/// Registers "pbft-canary" in the global ProtocolRegistry (idempotent).
void register_fuzz_canary();

}  // namespace bftsim::explore

#include "explore/shrink.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "explore/canary.hpp"
#include "explore/scenario.hpp"
#include "sim/simulation.hpp"

namespace bftsim::explore {

namespace {

/// Removes fault windows that reference nodes outside [0, cfg.n).
void prune_faults_for_n(SimConfig& cfg) {
  const std::uint32_t n = cfg.n;
  auto& crashes = cfg.faults.crashes;
  crashes.erase(std::remove_if(crashes.begin(), crashes.end(),
                               [n](const CrashWindow& w) { return w.node >= n; }),
                crashes.end());
  auto& flaps = cfg.faults.link_flaps;
  flaps.erase(std::remove_if(flaps.begin(), flaps.end(),
                             [n](const LinkFlapWindow& w) {
                               return w.a >= n || w.b >= n;
                             }),
              flaps.end());
}

/// The fixed-order candidate list for one shrinking round. Ordered from
/// most to least simplifying, so the restart-after-acceptance loop removes
/// big pieces (the whole attack, whole fault windows, excess nodes) before
/// polishing numbers.
[[nodiscard]] std::vector<SimConfig> candidates(const SimConfig& cfg,
                                                const ShrinkPolicy& policy) {
  std::vector<SimConfig> out;

  if (!policy.keep_attack && !cfg.attack.empty()) {
    SimConfig c = cfg;
    c.attack.clear();
    c.attack_params = json::Value{};
    out.push_back(std::move(c));
  }
  for (std::size_t i = 0; i < cfg.faults.crashes.size(); ++i) {
    SimConfig c = cfg;
    c.faults.crashes.erase(c.faults.crashes.begin() +
                           static_cast<std::ptrdiff_t>(i));
    out.push_back(std::move(c));
  }
  for (std::size_t i = 0; i < cfg.faults.link_flaps.size(); ++i) {
    SimConfig c = cfg;
    c.faults.link_flaps.erase(c.faults.link_flaps.begin() +
                              static_cast<std::ptrdiff_t>(i));
    out.push_back(std::move(c));
  }
  if (cfg.faults.corruption.enabled()) {
    SimConfig c = cfg;
    c.faults.corruption = CorruptionSpec{};
    out.push_back(std::move(c));
  }
  if (cfg.faults.clock.enabled()) {
    SimConfig c = cfg;
    c.faults.clock = ClockSpec{};
    out.push_back(std::move(c));
  }
  for (const std::uint32_t m : {4U, 7U, 10U}) {  // the generator's ladder
    if (m >= cfg.n) continue;
    SimConfig c = cfg;
    c.n = m;
    prune_faults_for_n(c);
    out.push_back(std::move(c));
  }
  if (cfg.decisions > 1) {
    SimConfig c = cfg;
    c.decisions = 1;
    out.push_back(std::move(c));
  }
  if (cfg.delay.kind != DelaySpec::Kind::kConstant) {
    SimConfig c = cfg;
    // Representative constant: the distribution's central value.
    const double center = cfg.delay.kind == DelaySpec::Kind::kUniform
                              ? (cfg.delay.a + cfg.delay.b) / 2.0
                              : cfg.delay.a;  // normal mu / exponential mean
    c.delay = DelaySpec::constant(quantize_eighth_ms(std::max(center, 1.0)));
    out.push_back(std::move(c));
  }
  if (cfg.attack == "partition" && cfg.attack_params.is_object()) {
    const double resolve = cfg.attack_params.get_number("resolve_ms", 0.0);
    if (resolve > 2'000.0) {
      SimConfig c = cfg;
      // json::Value copies share their underlying object, so mutating the
      // candidate through as_object() would rewrite `cfg` (and every
      // sibling candidate) too. Rebuild the params object instead.
      json::Object params;
      for (const auto& [key, value] : cfg.attack_params.as_object()) {
        params[key] = value;
      }
      params["resolve_ms"] = quantize_eighth_ms(resolve / 2.0);
      c.attack_params = json::Value{std::move(params)};
      out.push_back(std::move(c));
    }
  }
  // Halving the horizon is degenerate for liveness-style properties
  // ("still times out with less time" is always true); see the header.
  if (!policy.skip_horizon && cfg.max_time_ms > 2'000.0) {
    SimConfig c = cfg;
    c.max_time_ms = quantize_eighth_ms(cfg.max_time_ms / 2.0);
    out.push_back(std::move(c));
  }
  return out;
}

struct Probe {
  bool violates = false;
  OracleReport report;
  std::uint64_t trace_fingerprint = 0;
  std::uint64_t trace_records = 0;
};

[[nodiscard]] Probe probe(const SimConfig& cfg, Oracle expected) {
  Probe p;
  const RunResult result = run_simulation(cfg);
  p.report = check_oracles(cfg, result);
  p.violates = !p.report.ok && p.report.violated == expected;
  p.trace_fingerprint = result.trace_fingerprint;
  p.trace_records = result.trace_records;
  return p;
}

}  // namespace

ConfigShrink shrink_config(
    const SimConfig& start,
    const std::function<bool(const SimConfig&)>& interesting,
    const ShrinkPolicy& policy) {
  ConfigShrink best;
  best.config = start;

  bool improved = true;
  while (improved && best.probes < policy.max_probes) {
    improved = false;
    for (SimConfig& candidate : candidates(best.config, policy)) {
      if (best.probes >= policy.max_probes) break;
      try {
        candidate.validate();
      } catch (const std::exception&) {
        continue;  // transformation produced an inconsistent config
      }
      ++best.probes;
      bool accept = false;
      try {
        accept = interesting(candidate);
      } catch (const std::exception&) {
        continue;  // a crashing candidate is a different bug; keep shrinking
      }
      if (!accept) continue;
      best.config = std::move(candidate);
      ++best.steps;
      improved = true;
      break;  // restart from the most simplifying transformation
    }
  }
  return best;
}

ShrinkResult shrink_scenario(const SimConfig& failing, Oracle expected,
                             const ShrinkOptions& options) {
  if (failing.protocol == kCanaryProtocol) register_fuzz_canary();

  ShrinkResult best;
  best.config = failing;
  const Probe reference = probe(failing, expected);
  best.runs = 1;
  if (!reference.violates) {
    throw std::invalid_argument(
        "shrink_scenario: input run does not violate the " +
        std::string(to_string(expected)) + " oracle (got: " +
        reference.report.to_string() + ")");
  }
  best.report = reference.report;
  best.trace_fingerprint = reference.trace_fingerprint;
  best.trace_records = reference.trace_records;

  // The oracle acceptance test on top of the generic core: a candidate is
  // interesting when the SAME oracle still fires. The probe products of
  // the accepted candidate are captured on the side — the core only tracks
  // configs — and re-synced after every acceptance.
  Probe accepted;
  ShrinkPolicy policy;
  policy.keep_attack = false;
  policy.skip_horizon = expected == Oracle::kLiveness;
  policy.max_probes = options.max_runs > 0 ? options.max_runs - 1 : 0;
  const ConfigShrink shrunk = shrink_config(
      failing,
      [&](const SimConfig& candidate) {
        const Probe p = probe(candidate, expected);
        if (p.violates) accepted = p;
        return p.violates;
      },
      policy);

  best.runs += shrunk.probes;
  best.steps = shrunk.steps;
  if (shrunk.steps > 0) {
    best.config = shrunk.config;
    best.report = accepted.report;
    best.trace_fingerprint = accepted.trace_fingerprint;
    best.trace_records = accepted.trace_records;
  }
  return best;
}

}  // namespace bftsim::explore

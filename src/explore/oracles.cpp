#include "explore/oracles.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "protocols/registry.hpp"
#include "validator/validator.hpp"

namespace bftsim::explore {

std::string_view to_string(Oracle oracle) noexcept {
  switch (oracle) {
    case Oracle::kAgreement: return "agreement";
    case Oracle::kValidity: return "validity";
    case Oracle::kCompleteness: return "completeness";
    case Oracle::kCertificate: return "certificate";
    case Oracle::kLiveness: return "liveness";
  }
  return "?";
}

Oracle oracle_from_string(std::string_view name) {
  for (const Oracle oracle :
       {Oracle::kAgreement, Oracle::kValidity, Oracle::kCompleteness,
        Oracle::kCertificate, Oracle::kLiveness}) {
    if (name == to_string(oracle)) return oracle;
  }
  throw std::invalid_argument("unknown oracle name: " + std::string(name));
}

std::string OracleReport::to_string() const {
  if (ok) return "ok";
  return std::string(explore::to_string(violated)) + ": " + diagnosis;
}

bool is_quiescent(const SimConfig& cfg) noexcept {
  return cfg.attack.empty() && !cfg.faults.enabled() && cfg.honest == 0;
}

std::optional<CertificateRule> certificate_rule(const std::string& protocol,
                                                std::uint32_t n) {
  const std::uint32_t f =
      ProtocolRegistry::instance().get(protocol).fault_threshold(n);
  // min_senders is the protocol's commit quorum minus the certificate
  // contributions that never cross the wire: in leader-collected protocols
  // (the HotStuff family) the leader's own vote reaches it locally, so one
  // sender fewer than the quorum is provably on the wire.
  if (protocol == "pbft" || protocol == "pbft-canary") {
    return CertificateRule{"pbft/commit", 2 * f + 1};
  }
  if (protocol == "tendermint") {
    return CertificateRule{"tendermint/precommit", 2 * f + 1};
  }
  if (protocol == "hotstuff-ns" || protocol == "librabft") {
    return CertificateRule{"hotstuff/vote", 2 * f};
  }
  if (protocol == "sync-hotstuff") {
    return CertificateRule{"sync-hs/vote", f};
  }
  return std::nullopt;  // add*/algorand/asyncba: no fixed vote quorum
}

namespace {

/// Certificate-validity check; empty string means no violation.
[[nodiscard]] std::string check_certificate(const SimConfig& cfg,
                                            const RunResult& result) {
  const auto rule = certificate_rule(cfg.protocol, cfg.n);
  if (!rule || result.decisions.empty() || result.trace.empty()) return {};

  const std::unordered_set<NodeId> honest(result.honest.begin(),
                                          result.honest.end());
  bool found = false;
  Time first_decide = 0;
  for (const Decision& d : result.decisions) {
    if (honest.count(d.node) == 0) continue;
    if (!found || d.at < first_decide) first_decide = d.at;
    found = true;
  }
  if (!found) return {};

  std::unordered_set<NodeId> senders;
  for (const TraceRecord& rec : result.trace.records()) {
    if (rec.kind == TraceKind::kSend && rec.at <= first_decide &&
        rec.type == rule->vote_type) {
      senders.insert(rec.a);
    }
  }
  if (senders.size() >= rule->min_senders) return {};
  return "first decide at " + std::to_string(to_ms(first_decide)) +
         "ms backed by only " + std::to_string(senders.size()) + " distinct " +
         rule->vote_type + " senders (certificate needs >= " +
         std::to_string(rule->min_senders) + ")";
}

}  // namespace

OracleReport check_oracles(const SimConfig& cfg, const RunResult& result) {
  OracleReport report;

  const SafetyReport safety = check_run_safety(result);
  if (!safety.agreement) {
    report.ok = false;
    report.violated = Oracle::kAgreement;
    report.diagnosis = safety.diagnosis;
    return report;
  }
  if (!safety.validity) {
    report.ok = false;
    report.violated = Oracle::kValidity;
    report.diagnosis = safety.diagnosis;
    return report;
  }
  if (!safety.complete) {
    report.ok = false;
    report.violated = Oracle::kCompleteness;
    report.diagnosis = safety.diagnosis;
    return report;
  }

  if (std::string cert = check_certificate(cfg, result); !cert.empty()) {
    report.ok = false;
    report.violated = Oracle::kCertificate;
    report.diagnosis = std::move(cert);
    return report;
  }

  if (is_quiescent(cfg) &&
      result.termination_reason != TerminationReason::kDecided) {
    report.ok = false;
    report.violated = Oracle::kLiveness;
    report.diagnosis =
        "quiescent scenario ended with \"" +
        std::string(bftsim::to_string(result.termination_reason)) +
        "\" instead of deciding";
    return report;
  }

  return report;
}

}  // namespace bftsim::explore

#include "explore/scenario.hpp"

#include <stdexcept>

#include "core/config_check.hpp"
#include "core/rng.hpp"
#include "crypto/hash.hpp"
#include "protocols/registry.hpp"

namespace bftsim::explore {

namespace {

using cfgcheck::number_in;
using cfgcheck::require_keys;

[[nodiscard]] double sample_ms(Rng& rng, double lo, double hi) noexcept {
  return quantize_eighth_ms(rng.uniform(lo, hi));
}

template <typename T>
[[nodiscard]] const T& choice(Rng& rng, const std::vector<T>& options) {
  return options[static_cast<std::size_t>(rng.next_below(options.size()))];
}

[[nodiscard]] DelaySpec sample_delay(Rng& rng) {
  DelaySpec delay;
  switch (rng.next_below(4)) {
    case 0:
      delay = DelaySpec::constant(sample_ms(rng, 50.0, 400.0));
      break;
    case 1: {
      const double lo = sample_ms(rng, 10.0, 250.0);
      delay = DelaySpec::uniform(lo, lo + sample_ms(rng, 50.0, 300.0));
      break;
    }
    case 2:
      delay = DelaySpec::normal(sample_ms(rng, 100.0, 400.0),
                                sample_ms(rng, 10.0, 150.0));
      break;
    default:
      delay = DelaySpec::exponential(sample_ms(rng, 50.0, 300.0));
      break;
  }
  return delay;
}

/// Attacks applicable to `protocol` without violating its model
/// assumptions: a partition is temporary asynchrony (safe for partial-sync
/// and async protocols, a modeled environment violation for sync ones);
/// the equivocation and ADD attacks are budgeted Byzantine corruptions,
/// which every protocol claims to tolerate.
[[nodiscard]] std::vector<std::string> applicable_attacks(
    const std::string& protocol) {
  std::vector<std::string> attacks;
  const auto& info = ProtocolRegistry::instance().get(protocol);
  if (info.model != NetModel::kSync) attacks.push_back("partition");
  if (protocol == "pbft" || protocol == "pbft-canary") {
    attacks.push_back("pbft-equivocation");
  }
  if (protocol == "sync-hotstuff") attacks.push_back("sync-hotstuff-equivocation");
  if (protocol == "addv1" || protocol == "addv2" || protocol == "addv3") {
    attacks.push_back("add-static");
    if (protocol != "addv1") attacks.push_back("add-adaptive");
  }
  return attacks;
}

void sample_attack(Rng& rng, SimConfig& cfg) {
  const std::vector<std::string> attacks = applicable_attacks(cfg.protocol);
  if (attacks.empty()) return;
  cfg.attack = choice(rng, attacks);
  if (cfg.attack == "partition") {
    json::Object params;
    params["subnets"] = static_cast<std::int64_t>(2);
    params["resolve_ms"] = sample_ms(rng, 4'000.0, 40'000.0);
    params["mode"] = "drop";
    cfg.attack_params = json::Value{std::move(params)};
  }
}

void sample_faults(Rng& rng, SimConfig& cfg) {
  const std::uint32_t n = cfg.n;
  const std::uint64_t crash_count = rng.next_below(3);  // 0..2
  for (std::uint64_t i = 0; i < crash_count; ++i) {
    CrashWindow w;
    w.node = static_cast<NodeId>(rng.next_below(n));
    w.at_ms = sample_ms(rng, 0.0, 30'000.0);
    w.duration_ms = sample_ms(rng, 500.0, 15'000.0);
    cfg.faults.crashes.push_back(w);
  }
  const std::uint64_t flap_count = rng.next_below(3);  // 0..2
  for (std::uint64_t i = 0; i < flap_count; ++i) {
    LinkFlapWindow w;
    w.a = static_cast<NodeId>(rng.next_below(n));
    w.b = static_cast<NodeId>(rng.next_below(n - 1));
    if (w.b >= w.a) ++w.b;  // distinct endpoints
    w.at_ms = sample_ms(rng, 0.0, 30'000.0);
    w.duration_ms = sample_ms(rng, 500.0, 15'000.0);
    cfg.faults.link_flaps.push_back(w);
  }
  if (rng.next_below(4) == 0) {  // message corruption, bounded window
    cfg.faults.corruption.rate =
        static_cast<double>(1 + rng.next_below(12)) / 256.0;  // ~0.4%..4.7%
    cfg.faults.corruption.start_ms = 0.0;
    cfg.faults.corruption.end_ms = sample_ms(rng, 10'000.0, 60'000.0);
  }
  if (rng.next_below(4) == 0) {  // modest clock imperfection
    cfg.faults.clock.max_skew_ms = sample_ms(rng, 1.0, 30.0);
    cfg.faults.clock.max_drift =
        static_cast<double>(rng.next_below(21)) / 1024.0;  // 0..~2%
  }
}

}  // namespace

ScenarioSpace ScenarioSpace::defaults() {
  ScenarioSpace space;
  space.protocols = ProtocolRegistry::instance().names();
  return space;
}

ScenarioSpace ScenarioSpace::canary() {
  ScenarioSpace space;
  space.protocols = {"pbft-canary"};
  space.attack_rate = 0.75;
  return space;
}

json::Value ScenarioSpace::to_json() const {
  json::Object o;
  json::Array protos;
  for (const std::string& p : protocols) protos.emplace_back(p);
  o["protocols"] = json::Value{std::move(protos)};
  json::Array counts;
  for (const std::uint32_t n : node_counts) {
    counts.emplace_back(static_cast<std::int64_t>(n));
  }
  o["node_counts"] = json::Value{std::move(counts)};
  json::Array lambdas;
  for (const double l : lambdas_ms) lambdas.emplace_back(l);
  o["lambdas_ms"] = json::Value{std::move(lambdas)};
  o["attack_rate"] = attack_rate;
  o["fault_rate"] = fault_rate;
  o["max_time_ms"] = max_time_ms;
  return json::Value{std::move(o)};
}

ScenarioSpace ScenarioSpace::from_json(const json::Value& v,
                                       const std::string& path) {
  require_keys(v, path,
               {"protocols", "node_counts", "lambdas_ms", "attack_rate",
                "fault_rate", "max_time_ms"});
  ScenarioSpace space = ScenarioSpace::defaults();
  if (const json::Value* p = v.as_object().find("protocols")) {
    space.protocols.clear();
    for (const json::Value& name : p->as_array()) {
      space.protocols.push_back(name.as_string());
    }
  }
  if (const json::Value* p = v.as_object().find("node_counts")) {
    space.node_counts.clear();
    for (const json::Value& n : p->as_array()) {
      const std::int64_t count = n.as_int();
      if (count < 4 || count > 1000) {
        cfgcheck::fail(path + ".node_counts", "entries must be in [4, 1000]");
      }
      space.node_counts.push_back(static_cast<std::uint32_t>(count));
    }
  }
  if (const json::Value* p = v.as_object().find("lambdas_ms")) {
    space.lambdas_ms.clear();
    for (const json::Value& l : p->as_array()) {
      space.lambdas_ms.push_back(l.as_number());
    }
  }
  space.attack_rate = number_in(v, path, "attack_rate", space.attack_rate, 0.0, 1.0);
  space.fault_rate = number_in(v, path, "fault_rate", space.fault_rate, 0.0, 1.0);
  space.max_time_ms =
      number_in(v, path, "max_time_ms", space.max_time_ms, 1.0, 1e12);
  if (space.protocols.empty()) cfgcheck::fail(path + ".protocols", "must be non-empty");
  if (space.node_counts.empty()) {
    cfgcheck::fail(path + ".node_counts", "must be non-empty");
  }
  if (space.lambdas_ms.empty()) {
    cfgcheck::fail(path + ".lambdas_ms", "must be non-empty");
  }
  return space;
}

std::string Scenario::id() const {
  return "campaign-" + std::to_string(campaign_seed) + "/scenario-" +
         std::to_string(index);
}

Scenario generate_scenario(const ScenarioSpace& space,
                           std::uint64_t campaign_seed, std::uint64_t index) {
  if (space.protocols.empty()) {
    throw std::invalid_argument("scenario space has no protocols");
  }
  // The stream depends only on (campaign seed, index): scenario i is the
  // same whether generated first, last, or alone.
  Rng rng(hash_words({0x66757a7aULL /* "fuzz" */, campaign_seed, index}));

  Scenario scenario;
  scenario.campaign_seed = campaign_seed;
  scenario.index = index;
  SimConfig& cfg = scenario.config;

  cfg.protocol = choice(rng, space.protocols);
  const ProtocolInfo& info = ProtocolRegistry::instance().get(cfg.protocol);
  cfg.n = choice(rng, space.node_counts);
  cfg.lambda_ms = choice(rng, space.lambdas_ms);
  cfg.delay = sample_delay(rng);
  // Synchronous-model protocols are only safe when the network honors the
  // λ bound they are configured with; an unbounded delay tail would "find"
  // the textbook synchrony violation, not a bug. Clamp their delays at λ.
  if (info.model == NetModel::kSync) cfg.delay.max_ms = cfg.lambda_ms;
  // Keep run seeds below 2^53 so they survive the double-backed JSON layer
  // exactly — reproducers must round-trip bit-identically.
  cfg.seed = rng.next_u64() >> 11;
  // Multi-decision targets only make sense for pipelined protocols; the
  // one-shot ones (ADD, Algorand's single height, AsyncBA, this repo's
  // per-height PBFT) never reach a target above 1 and would read as
  // liveness violations. The draw happens unconditionally so the rest of
  // the stream does not depend on the protocol's traits.
  const auto extra_decisions = static_cast<std::uint32_t>(rng.next_below(3));
  cfg.decisions = info.measured_decisions > 1 ? 1 + extra_decisions : 1;
  cfg.max_time_ms = space.max_time_ms;
  if (rng.next_double() < space.attack_rate) sample_attack(rng, cfg);
  if (rng.next_double() < space.fault_rate) sample_faults(rng, cfg);
  cfg.record_trace = true;  // the oracles read the trace

  cfg.validate();
  return scenario;
}

}  // namespace bftsim::explore

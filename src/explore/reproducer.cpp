#include "explore/reproducer.hpp"

#include <fstream>
#include <stdexcept>

#include "core/config_check.hpp"
#include "explore/canary.hpp"
#include "runner/export.hpp"
#include "sim/simulation.hpp"

namespace bftsim::explore {

namespace {

[[nodiscard]] std::uint64_t parse_hex64(const std::string& s,
                                        const std::string& path) {
  if (s.empty() || s.size() > 16) {
    cfgcheck::fail(path, "expected a hex string of 1..16 digits");
  }
  std::uint64_t value = 0;
  for (const char c : s) {
    value <<= 4;
    if (c >= '0' && c <= '9') value |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') value |= static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') value |= static_cast<std::uint64_t>(c - 'A' + 10);
    else cfgcheck::fail(path, "bad hex digit in \"" + s + "\"");
  }
  return value;
}

}  // namespace

json::Value Reproducer::to_json() const {
  json::Object o;
  o["schema"] = kReproducerSchema;
  o["scenario"] = scenario_id;
  o["campaign_seed"] = campaign_seed;
  o["index"] = index;
  o["oracle"] = std::string(explore::to_string(oracle));
  o["diagnosis"] = diagnosis;
  o["trace_fingerprint"] = fingerprint_to_hex(trace_fingerprint);
  o["trace_records"] = trace_records;
  o["shrink_steps"] = static_cast<std::uint64_t>(shrink_steps);
  o["shrink_runs"] = static_cast<std::uint64_t>(shrink_runs);
  o["config"] = config.to_json();
  return json::Value{std::move(o)};
}

Reproducer Reproducer::from_json(const json::Value& v, const std::string& path) {
  cfgcheck::require_keys(v, path,
                         {"schema", "scenario", "campaign_seed", "index",
                          "oracle", "diagnosis", "trace_fingerprint",
                          "trace_records", "shrink_steps", "shrink_runs",
                          "config"});
  const std::string schema = v.get_string("schema", "");
  if (schema != kReproducerSchema) {
    cfgcheck::fail(path + ".schema",
                   "expected \"" + std::string(kReproducerSchema) + "\", got \"" +
                       schema + "\"");
  }
  Reproducer repro;
  repro.scenario_id = v.get_string("scenario", "");
  repro.campaign_seed =
      static_cast<std::uint64_t>(v.get_int("campaign_seed", 0));
  repro.index = static_cast<std::uint64_t>(v.get_int("index", 0));
  repro.oracle = oracle_from_string(v.get_string("oracle", ""));
  repro.diagnosis = v.get_string("diagnosis", "");
  repro.trace_fingerprint = parse_hex64(v.get_string("trace_fingerprint", "0"),
                                        path + ".trace_fingerprint");
  repro.trace_records =
      static_cast<std::uint64_t>(v.get_int("trace_records", 0));
  repro.shrink_steps = static_cast<std::size_t>(v.get_int("shrink_steps", 0));
  repro.shrink_runs = static_cast<std::size_t>(v.get_int("shrink_runs", 0));
  const json::Value* cfg = v.as_object().find("config");
  if (cfg == nullptr) cfgcheck::fail(path + ".config", "missing");
  repro.config = SimConfig::from_json(*cfg);
  return repro;
}

Reproducer Reproducer::from_file(const std::string& file) {
  return from_json(json::parse_file(file));
}

void Reproducer::save(const std::string& file) const {
  std::ofstream out(file);
  if (!out) throw std::runtime_error("cannot write reproducer: " + file);
  out << to_json().dump(2) << '\n';
}

ReplayOutcome replay_reproducer(const Reproducer& repro) {
  if (repro.config.protocol == kCanaryProtocol) register_fuzz_canary();

  const RunResult result = run_simulation(repro.config);

  ReplayOutcome outcome;
  outcome.report = check_oracles(repro.config, result);
  outcome.trace_fingerprint = result.trace_fingerprint;
  outcome.trace_records = result.trace_records;
  outcome.verdict_matches =
      !outcome.report.ok && outcome.report.violated == repro.oracle;
  outcome.fingerprint_matches =
      result.trace_fingerprint == repro.trace_fingerprint &&
      result.trace_records == repro.trace_records;
  return outcome;
}

}  // namespace bftsim::explore

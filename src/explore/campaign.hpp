// The fuzzing campaign engine.
//
// A campaign is `scenario_count` scenarios drawn from a ScenarioSpace by
// generate_scenario(space, seed, i), each executed once and checked
// against the invariant oracles. Violations are shrunk (serially, in
// scenario order) into replayable reproducers; runs that throw become
// labeled RunFailure records instead of aborting the campaign.
//
// Determinism contract: the whole CampaignReport — which scenarios exist,
// which violate, what each shrinks to, every fingerprint — is a pure
// function of (space, seed, scenario_count, watchdog, shrink budget).
// Scenarios fan out across a thread pool but land in per-index slots and
// are aggregated in index order, so the report is identical for every
// `jobs` value, and contains no wall-clock or host-dependent data.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/json.hpp"
#include "explore/oracles.hpp"
#include "explore/reproducer.hpp"
#include "explore/scenario.hpp"
#include "explore/shrink.hpp"
#include "runner/runner.hpp"

namespace bftsim::explore {

struct CampaignOptions {
  ScenarioSpace space = ScenarioSpace::defaults();
  std::uint64_t seed = 1;            ///< campaign seed (not a run seed)
  std::uint64_t scenario_count = 100;
  std::size_t jobs = 0;              ///< 0 = ThreadPool::default_workers()
  /// Budget cap baked into every scenario config BEFORE running, so
  /// reproducers are self-contained (replaying one needs no campaign
  /// context to terminate the same way).
  Watchdog watchdog{/*max_events=*/2'000'000, /*max_time_ms=*/0.0};
  ShrinkOptions shrink;              ///< per-finding shrink budget

  /// Parses the optional "$.explore" clause of a config file (strict;
  /// unknown keys throw). Recognized keys: "space" (ScenarioSpace),
  /// "seed", "scenarios", "max_events", "shrink_runs".
  [[nodiscard]] static CampaignOptions from_json(const json::Value& v,
                                                 const std::string& path);
};

/// One oracle violation found by a campaign, with its shrunk reproducer.
struct CampaignFinding {
  std::uint64_t index = 0;        ///< scenario index within the campaign
  OracleReport original;          ///< verdict of the unshrunk scenario
  Reproducer reproducer;          ///< shrunk, replayable counterexample
};

/// Full outcome of one campaign.
struct CampaignReport {
  std::uint64_t seed = 0;
  std::uint64_t scenario_count = 0;
  TerminationTally tally;              ///< how the scenario runs ended
  std::vector<CampaignFinding> findings;  ///< scenario-index order
  std::vector<RunFailure> crashes;        ///< runs that threw, index order

  [[nodiscard]] bool clean() const noexcept {
    return findings.empty() && crashes.empty();
  }
  [[nodiscard]] json::Value to_json() const;
};

/// Runs the campaign. Registers the canary protocol automatically when
/// the space contains it.
[[nodiscard]] CampaignReport run_campaign(const CampaignOptions& options);

}  // namespace bftsim::explore

// Invariant oracles: the properties every fuzzed run is checked against.
//
// Three come straight from the validator module (agreement, validity,
// completeness — see check_run_safety). Two are new here:
//
//  * liveness-under-quiescence: a scenario with no attacker and no fault
//    windows ("quiescent") must terminate with every honest node decided.
//    Protocols are only required to be live when their environment behaves,
//    so the oracle deliberately says nothing about runs with attacks,
//    crashes, flaps or corruption — those may legitimately time out.
//
//  * certificate validity: by the time the first honest node decides, the
//    protocol's quorum certificate must actually have been formed on the
//    wire — at least `min_senders` distinct nodes must appear as senders of
//    the protocol's vote-type messages in the trace. A decide backed by
//    fewer votes than any valid certificate can contain (the pbft-canary
//    bug, for instance) is flagged even when, by luck, no disagreement
//    materialized in this particular run.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/config.hpp"
#include "sim/result.hpp"

namespace bftsim::explore {

/// The invariant a run violated. Order matters: a run is checked against
/// the oracles in enumerator order and the first violation is reported, so
/// shrinking preserves the most fundamental property broken.
enum class Oracle : std::uint8_t {
  kAgreement,    ///< two honest nodes decided different values at a height
  kValidity,     ///< a node's decision heights are not contiguous from 0
  kCompleteness, ///< run terminated but an honest node missed the target
  kCertificate,  ///< first decide happened before a full quorum hit the wire
  kLiveness,     ///< quiescent scenario failed to decide within the horizon
};

[[nodiscard]] std::string_view to_string(Oracle oracle) noexcept;

/// Inverse of to_string; throws std::invalid_argument on unknown names
/// (used when parsing recorded corpus verdicts).
[[nodiscard]] Oracle oracle_from_string(std::string_view name);

/// Verdict of checking one run against every applicable oracle.
struct OracleReport {
  bool ok = true;
  Oracle violated = Oracle::kAgreement;  ///< meaningful only when !ok
  std::string diagnosis;                 ///< empty when ok

  /// "agreement: node 1 decided ..." — the line campaign reports carry.
  [[nodiscard]] std::string to_string() const;
};

/// True when the scenario exercises no adversarial or faulty behavior at
/// all (no attacker, no fault windows, no fail-stopped nodes) — the
/// precondition of the liveness oracle.
[[nodiscard]] bool is_quiescent(const SimConfig& cfg) noexcept;

/// The certificate expectation for `protocol`: which vote-type payloads
/// form its commit certificate and how many distinct senders of them must
/// exist by the first decide. Protocols whose decide is not driven by a
/// fixed vote quorum (the ADD family, Algorand's sampled committees,
/// AsyncBA's randomized rounds) have no entry and are not checked.
struct CertificateRule {
  std::string vote_type;      ///< trace payload type tag, e.g. "pbft/commit"
  std::uint32_t min_senders;  ///< distinct kSend sources required
};

[[nodiscard]] std::optional<CertificateRule> certificate_rule(
    const std::string& protocol, std::uint32_t n);

/// Checks `result` against every applicable oracle, in enumerator order,
/// and reports the first violation. `cfg` must be the config that produced
/// the run (the oracles need the scenario's quiescence and protocol).
[[nodiscard]] OracleReport check_oracles(const SimConfig& cfg,
                                         const RunResult& result);

}  // namespace bftsim::explore

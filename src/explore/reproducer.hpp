// Replayable counterexamples.
//
// When a campaign finds an oracle violation and shrinks it, the result is
// written as one self-contained JSON document: the full (already
// watchdog-capped) SimConfig, the oracle that fired, the diagnosis, and
// the trace fingerprint of the shrunk run. Replaying the file re-executes
// that exact simulation and checks both the verdict (same oracle fires
// with the same diagnosis) and the fingerprint (the run is bit-identical),
// so a reproducer doubles as a regression test — the fuzz corpus under
// tests/data/fuzz_corpus/ is exactly these files.
#pragma once

#include <cstdint>
#include <string>

#include "core/config.hpp"
#include "core/json.hpp"
#include "explore/oracles.hpp"

namespace bftsim::explore {

/// Schema tag every reproducer document carries.
inline constexpr const char* kReproducerSchema = "bftsim-fuzz-reproducer-v1";

/// One shrunk, replayable counterexample.
struct Reproducer {
  std::string scenario_id;         ///< "campaign-<seed>/scenario-<index>"
  std::uint64_t campaign_seed = 0;
  std::uint64_t index = 0;         ///< scenario index within the campaign
  Oracle oracle = Oracle::kAgreement;  ///< the invariant that fired
  std::string diagnosis;           ///< oracle diagnosis of the shrunk run
  SimConfig config;                ///< shrunk config; replays standalone
  std::uint64_t trace_fingerprint = 0;  ///< fingerprint of the shrunk run
  std::uint64_t trace_records = 0;      ///< record count of the shrunk run
  std::size_t shrink_steps = 0;    ///< accepted shrinking transformations
  std::size_t shrink_runs = 0;     ///< simulations the shrinker executed

  [[nodiscard]] json::Value to_json() const;
  /// Strict parse; throws std::invalid_argument / json::Error naming the
  /// offending path. `path` roots error messages (default "$").
  [[nodiscard]] static Reproducer from_json(const json::Value& v,
                                            const std::string& path = "$");
  [[nodiscard]] static Reproducer from_file(const std::string& file);
  void save(const std::string& file) const;
};

/// Outcome of replaying a reproducer.
struct ReplayOutcome {
  OracleReport report;           ///< verdict of the replayed run
  std::uint64_t trace_fingerprint = 0;
  std::uint64_t trace_records = 0;
  bool verdict_matches = false;      ///< same oracle fired
  bool fingerprint_matches = false;  ///< bit-identical trace

  [[nodiscard]] bool ok() const noexcept {
    return verdict_matches && fingerprint_matches;
  }
};

/// Re-executes the reproducer's config (needs "pbft-canary" registered
/// when the reproducer targets it — call register_fuzz_canary() first)
/// and compares verdict + fingerprint against the recorded ones.
[[nodiscard]] ReplayOutcome replay_reproducer(const Reproducer& repro);

}  // namespace bftsim::explore

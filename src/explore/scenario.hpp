// Deterministic scenario generation for fuzzing campaigns.
//
// A scenario is one randomly drawn SimConfig — protocol x n x network
// model x delay spec x attacker x fault windows x run seed — produced by a
// pure function of (space, campaign seed, scenario index). Re-generating
// scenario i of a campaign always yields the identical configuration, no
// matter how many scenarios ran before it or on how many threads, which is
// what makes whole campaigns replayable and their failures shrinkable.
//
// The space is model-aware: attacks are only paired with protocols whose
// network model tolerates them safely (a partition is temporary asynchrony,
// which partially-synchronous protocols must survive; pairing it with a
// synchronous protocol would "find" the textbook violation of the sync
// assumption rather than a bug). See docs/FUZZING.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/json.hpp"

namespace bftsim::explore {

/// Quantizes milliseconds to 1/8 ms. Dyadic values are exactly
/// representable as doubles AND print compactly, so every sampled or
/// shrunk parameter round-trips bit-identically through reproducer JSON.
[[nodiscard]] inline double quantize_eighth_ms(double ms) noexcept {
  return static_cast<double>(static_cast<std::int64_t>(ms * 8.0 + 0.5)) / 8.0;
}

/// The parameter domain a campaign samples scenarios from.
struct ScenarioSpace {
  /// Protocols scenarios may select (registry names). Empty is invalid;
  /// use defaults() / canary() for the stock spaces.
  std::vector<std::string> protocols;
  std::vector<std::uint32_t> node_counts{4, 7, 10, 16};
  std::vector<double> lambdas_ms{500.0, 1000.0};
  double attack_rate = 0.35;  ///< probability a scenario carries an attacker
  double fault_rate = 0.5;    ///< probability a scenario carries fault windows
  double max_time_ms = 600'000.0;  ///< horizon given to every scenario

  /// The stock space over every builtin protocol.
  [[nodiscard]] static ScenarioSpace defaults();

  /// The canary-hunt space: only "pbft-canary" (see canary.hpp), with an
  /// attack rate high enough that small smoke campaigns reliably draw the
  /// partition scenarios that expose the weakened quorum.
  [[nodiscard]] static ScenarioSpace canary();

  [[nodiscard]] json::Value to_json() const;
  /// Strict parse rooted at `path`; unknown keys throw.
  [[nodiscard]] static ScenarioSpace from_json(const json::Value& v,
                                               const std::string& path);
};

/// One generated scenario: the config plus its campaign coordinates.
struct Scenario {
  std::uint64_t campaign_seed = 0;
  std::uint64_t index = 0;
  SimConfig config;

  /// Stable identifier, e.g. "campaign-7/scenario-42" — the label attached
  /// to RunFailure records and reproducers.
  [[nodiscard]] std::string id() const;
};

/// Generates scenario `index` of the campaign with seed `campaign_seed`:
/// a pure, order-independent function of its arguments. The returned
/// config always validates, always records a trace (the oracles need it),
/// and derives its run seed from the campaign coordinates.
[[nodiscard]] Scenario generate_scenario(const ScenarioSpace& space,
                                         std::uint64_t campaign_seed,
                                         std::uint64_t index);

}  // namespace bftsim::explore

#include "explore/campaign.hpp"

#include <algorithm>
#include <utility>

#include "core/config_check.hpp"
#include "core/thread_pool.hpp"
#include "explore/canary.hpp"
#include "sim/simulation.hpp"

namespace bftsim::explore {

CampaignOptions CampaignOptions::from_json(const json::Value& v,
                                           const std::string& path) {
  cfgcheck::require_keys(
      v, path, {"space", "seed", "scenarios", "max_events", "shrink_runs"});
  CampaignOptions options;
  if (const json::Value* space = v.as_object().find("space")) {
    options.space = ScenarioSpace::from_json(*space, path + ".space");
  }
  options.seed = static_cast<std::uint64_t>(
      cfgcheck::int_in(v, path, "seed", 1, 0, (1LL << 53)));
  options.scenario_count = static_cast<std::uint64_t>(
      cfgcheck::int_in(v, path, "scenarios", 100, 1, 1'000'000));
  options.watchdog.max_events = static_cast<std::uint64_t>(cfgcheck::int_in(
      v, path, "max_events", 2'000'000, 10'000, 1'000'000'000));
  options.shrink.max_runs = static_cast<std::size_t>(
      cfgcheck::int_in(v, path, "shrink_runs", 200, 1, 100'000));
  return options;
}

json::Value CampaignReport::to_json() const {
  json::Object o;
  o["schema"] = "bftsim-fuzz-campaign-v1";
  o["seed"] = seed;
  o["scenarios"] = scenario_count;
  json::Object t;
  t["decided"] = static_cast<std::uint64_t>(tally.decided);
  t["horizon"] = static_cast<std::uint64_t>(tally.horizon);
  t["event_budget"] = static_cast<std::uint64_t>(tally.event_budget);
  t["queue_drained"] = static_cast<std::uint64_t>(tally.queue_drained);
  t["failed"] = static_cast<std::uint64_t>(tally.failed);
  o["tally"] = json::Value{std::move(t)};
  json::Array finds;
  for (const CampaignFinding& f : findings) {
    json::Object fo;
    fo["index"] = f.index;
    fo["original_verdict"] = f.original.to_string();
    fo["reproducer"] = f.reproducer.to_json();
    finds.emplace_back(json::Value{std::move(fo)});
  }
  o["findings"] = json::Value{std::move(finds)};
  json::Array crash_list;
  for (const RunFailure& c : crashes) {
    json::Object co;
    co["label"] = c.label;
    co["error"] = c.error;
    co["config"] = c.config.to_json();
    crash_list.emplace_back(json::Value{std::move(co)});
  }
  o["crashes"] = json::Value{std::move(crash_list)};
  return json::Value{std::move(o)};
}

CampaignReport run_campaign(const CampaignOptions& options) {
  if (std::find(options.space.protocols.begin(), options.space.protocols.end(),
                std::string(kCanaryProtocol)) != options.space.protocols.end()) {
    register_fuzz_canary();
  }

  // Scenario configs are generated up front (cheap, deterministic) with
  // the watchdog budgets baked in, so the config a reproducer records is
  // the config that actually ran.
  const std::uint64_t count = options.scenario_count;
  std::vector<Scenario> scenarios;
  scenarios.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Scenario s = generate_scenario(options.space, options.seed, i);
    s.config = options.watchdog.apply(std::move(s.config));
    scenarios.push_back(std::move(s));
  }

  // Fan out one run per scenario; every outcome lands in its own slot and
  // is folded up in index order below, which is what makes the report
  // independent of the job count and of scheduling.
  struct Slot {
    bool failed = false;
    std::string error;
    OracleReport report;
    TerminationReason reason = TerminationReason::kQueueDrained;
  };
  std::vector<Slot> slots(scenarios.size());
  {
    ThreadPool pool(options.jobs == 0 ? ThreadPool::default_workers()
                                      : options.jobs);
    parallel_for(pool, scenarios.size(), [&scenarios, &slots](std::size_t i) {
      Slot& slot = slots[i];
      try {
        const RunResult result = run_simulation(scenarios[i].config);
        slot.report = check_oracles(scenarios[i].config, result);
        slot.reason = result.termination_reason;
      } catch (const std::exception& e) {
        slot.failed = true;
        slot.error = e.what();
      } catch (...) {
        slot.failed = true;
        slot.error = "unknown exception";
      }
    });
  }

  CampaignReport report;
  report.seed = options.seed;
  report.scenario_count = count;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    Slot& slot = slots[i];
    const Scenario& scenario = scenarios[i];
    if (slot.failed) {
      ++report.tally.failed;
      RunFailure failure;
      failure.point = i;
      failure.seed = scenario.config.seed;
      failure.label = scenario.id();
      failure.error = std::move(slot.error);
      failure.config = scenario.config;
      report.crashes.push_back(std::move(failure));
      continue;
    }
    switch (slot.reason) {
      case TerminationReason::kDecided: ++report.tally.decided; break;
      case TerminationReason::kHorizon: ++report.tally.horizon; break;
      case TerminationReason::kEventBudget: ++report.tally.event_budget; break;
      case TerminationReason::kQueueDrained: ++report.tally.queue_drained; break;
    }
    if (slot.report.ok) continue;

    // Shrink serially, in scenario order: shrinking re-runs simulations,
    // and doing it off the pool keeps the transformation sequence (and
    // with it the reproducer) deterministic.
    const ShrinkResult shrunk = shrink_scenario(
        scenario.config, slot.report.violated, options.shrink);

    CampaignFinding finding;
    finding.index = scenario.index;
    finding.original = std::move(slot.report);
    finding.reproducer.scenario_id = scenario.id();
    finding.reproducer.campaign_seed = scenario.campaign_seed;
    finding.reproducer.index = scenario.index;
    finding.reproducer.oracle = shrunk.report.violated;
    finding.reproducer.diagnosis = shrunk.report.diagnosis;
    finding.reproducer.config = shrunk.config;
    finding.reproducer.trace_fingerprint = shrunk.trace_fingerprint;
    finding.reproducer.trace_records = shrunk.trace_records;
    finding.reproducer.shrink_steps = shrunk.steps;
    finding.reproducer.shrink_runs = shrunk.runs;
    report.findings.push_back(std::move(finding));
  }
  return report;
}

}  // namespace bftsim::explore

// Counterexample shrinking (delta debugging over SimConfig).
//
// Given a config whose run violates an oracle, the shrinker repeatedly
// tries simpler variants — drop a fault window, shrink n, flatten the
// delay distribution to a constant, reduce the decision target, shorten
// the attack, halve the horizon — re-running each candidate
// deterministically and keeping it only when the SAME oracle still fires.
// Candidates are generated in a fixed order and the loop restarts from the
// first transformation after every acceptance (classic ddmin structure),
// so the result is a deterministic function of the input config alone.
//
// The horizon-halving transformation is skipped when shrinking liveness
// violations: "still times out with half the time" is trivially true and
// would shrink every liveness counterexample into an uninteresting
// microscopic horizon.
#pragma once

#include <cstddef>
#include <functional>

#include "core/config.hpp"
#include "explore/oracles.hpp"
#include "sim/result.hpp"

namespace bftsim::explore {

struct ShrinkOptions {
  /// Cap on simulations the shrinker may execute (the acceptance test is
  /// one run per candidate). The loop stops at the cap and reports the
  /// best config found so far.
  std::size_t max_runs = 200;
};

/// Knobs for the generic predicate-driven ddmin core below.
struct ShrinkPolicy {
  /// Never propose dropping the attack. The adversary search shrinks
  /// *damage-maximizing* attack configs, where removing the attack is the
  /// one transformation that must not be on the table.
  bool keep_attack = false;
  /// Skip the horizon-halving transformation ("still fails with less
  /// time" is trivially true for liveness-style properties and would
  /// shrink every such case into a microscopic horizon).
  bool skip_horizon = false;
  /// Cap on predicate evaluations.
  std::size_t max_probes = 200;
};

/// Outcome of the generic core: the smallest config the budget allowed for
/// which the predicate still held.
struct ConfigShrink {
  SimConfig config;
  std::size_t steps = 0;   ///< accepted transformations
  std::size_t probes = 0;  ///< predicate evaluations (incl. throwing ones)
};

/// The ddmin core shared by shrink_scenario and the adversary search:
/// repeatedly proposes simpler variants of `start` in a fixed order,
/// accepts a candidate when `interesting(candidate)` returns true, and
/// restarts from the most simplifying transformation after every
/// acceptance. The predicate decides what "still interesting" means (same
/// oracle fires, damage score maintained, ...); a predicate that throws
/// rejects its candidate but still consumes a probe. Candidates that fail
/// SimConfig::validate() are skipped for free. `start` itself is never
/// probed — the caller establishes that it is interesting.
[[nodiscard]] ConfigShrink shrink_config(
    const SimConfig& start,
    const std::function<bool(const SimConfig&)>& interesting,
    const ShrinkPolicy& policy);

/// Outcome of shrinking one failing config.
struct ShrinkResult {
  SimConfig config;      ///< smallest violating config found
  OracleReport report;   ///< verdict of `config`'s run (same oracle kind)
  std::uint64_t trace_fingerprint = 0;  ///< fingerprint of `config`'s run
  std::uint64_t trace_records = 0;
  std::size_t steps = 0;  ///< accepted transformations
  std::size_t runs = 0;   ///< simulations executed
};

/// Shrinks `failing` (whose run must violate `expected`) and returns the
/// smallest config the budget allowed that still violates `expected`.
/// Deterministic: same input -> same transformation sequence -> same
/// result. The input config is re-run once up front to record the
/// reference verdict; if it does not violate `expected`, throws
/// std::invalid_argument.
[[nodiscard]] ShrinkResult shrink_scenario(const SimConfig& failing,
                                           Oracle expected,
                                           const ShrinkOptions& options = {});

}  // namespace bftsim::explore

// FaultConfig JSON (de)serialization and validation. Compiled into
// bftsim_core (not bftsim_faults) because SimConfig embeds a FaultConfig;
// the plan/injector machinery that depends on the event queue stays in the
// faults library.
#include "faults/fault_config.hpp"

#include <string>

#include "core/config_check.hpp"

namespace bftsim {

namespace {

using cfgcheck::fail;
using cfgcheck::number_in;
using cfgcheck::require_keys;

/// A window's duration must be positive and its start non-negative.
void check_window(const std::string& path, double at_ms, double duration_ms) {
  if (at_ms < 0) fail(path + ".at_ms", "must be >= 0");
  if (duration_ms <= 0) fail(path + ".duration_ms", "must be > 0");
}

RandomWindowSpec random_spec_from_json(const json::Value& v,
                                       const std::string& path) {
  require_keys(v, path,
               {"count", "start_ms", "end_ms", "min_duration_ms", "max_duration_ms"});
  RandomWindowSpec spec;
  spec.count = static_cast<std::uint32_t>(
      cfgcheck::int_in(v, path, "count", 0, 0, 100'000));
  spec.start_ms = number_in(v, path, "start_ms", 0.0, 0.0, 1e12);
  spec.end_ms = number_in(v, path, "end_ms", 0.0, 0.0, 1e12);
  spec.min_duration_ms = number_in(v, path, "min_duration_ms", 0.0, 0.0, 1e12);
  spec.max_duration_ms =
      number_in(v, path, "max_duration_ms", spec.min_duration_ms, 0.0, 1e12);
  if (spec.count > 0) {
    if (spec.end_ms <= spec.start_ms) fail(path + ".end_ms", "must be > start_ms");
    if (spec.min_duration_ms <= 0) fail(path + ".min_duration_ms", "must be > 0");
    if (spec.max_duration_ms < spec.min_duration_ms) {
      fail(path + ".max_duration_ms", "must be >= min_duration_ms");
    }
  }
  return spec;
}

json::Value random_spec_to_json(const RandomWindowSpec& spec) {
  json::Object o;
  o["count"] = static_cast<std::int64_t>(spec.count);
  o["start_ms"] = spec.start_ms;
  o["end_ms"] = spec.end_ms;
  o["min_duration_ms"] = spec.min_duration_ms;
  o["max_duration_ms"] = spec.max_duration_ms;
  return json::Value{std::move(o)};
}

}  // namespace

void FaultConfig::validate(std::uint32_t n) const {
  for (std::size_t i = 0; i < crashes.size(); ++i) {
    if (crashes[i].node >= n) {
      fail("$.faults.crashes[" + std::to_string(i) + "].node",
           "must be < n (" + std::to_string(n) + ")");
    }
  }
  for (std::size_t i = 0; i < link_flaps.size(); ++i) {
    const std::string path = "$.faults.link_flaps[" + std::to_string(i) + "]";
    if (link_flaps[i].a >= n) fail(path + ".a", "must be < n (" + std::to_string(n) + ")");
    if (link_flaps[i].b >= n) fail(path + ".b", "must be < n (" + std::to_string(n) + ")");
    if (link_flaps[i].a == link_flaps[i].b) fail(path + ".b", "must differ from a");
  }
  if (random_link_flaps.enabled() && n < 2) {
    fail("$.faults.random_link_flaps.count", "needs n >= 2");
  }
}

json::Value FaultConfig::to_json() const {
  json::Object o;
  if (!crashes.empty()) {
    json::Array arr;
    for (const CrashWindow& w : crashes) {
      json::Object e;
      e["node"] = static_cast<std::int64_t>(w.node);
      e["at_ms"] = w.at_ms;
      e["duration_ms"] = w.duration_ms;
      arr.push_back(json::Value{std::move(e)});
    }
    o["crashes"] = json::Value{std::move(arr)};
  }
  if (random_crashes.enabled()) {
    o["random_crashes"] = random_spec_to_json(random_crashes);
  }
  if (!link_flaps.empty()) {
    json::Array arr;
    for (const LinkFlapWindow& w : link_flaps) {
      json::Object e;
      e["a"] = static_cast<std::int64_t>(w.a);
      e["b"] = static_cast<std::int64_t>(w.b);
      e["at_ms"] = w.at_ms;
      e["duration_ms"] = w.duration_ms;
      arr.push_back(json::Value{std::move(e)});
    }
    o["link_flaps"] = json::Value{std::move(arr)};
  }
  if (random_link_flaps.enabled()) {
    o["random_link_flaps"] = random_spec_to_json(random_link_flaps);
  }
  if (corruption.enabled()) {
    json::Object c;
    c["rate"] = corruption.rate;
    c["start_ms"] = corruption.start_ms;
    c["end_ms"] = corruption.end_ms;
    o["corruption"] = json::Value{std::move(c)};
  }
  if (clock.enabled()) {
    json::Object c;
    c["max_skew_ms"] = clock.max_skew_ms;
    c["max_drift"] = clock.max_drift;
    o["clock"] = json::Value{std::move(c)};
  }
  return json::Value{std::move(o)};
}

FaultConfig FaultConfig::from_json(const json::Value& v, const std::string& path) {
  require_keys(v, path,
               {"crashes", "random_crashes", "link_flaps", "random_link_flaps",
                "corruption", "clock"});
  FaultConfig cfg;

  if (const json::Value* arr = v.as_object().find("crashes")) {
    std::size_t i = 0;
    for (const json::Value& e : arr->as_array()) {
      const std::string entry = path + ".crashes[" + std::to_string(i++) + "]";
      require_keys(e, entry, {"node", "at_ms", "duration_ms"});
      CrashWindow w;
      w.node = static_cast<NodeId>(
          cfgcheck::int_in(e, entry, "node", 0, 0, 1'000'000));
      w.at_ms = e.get_number("at_ms", 0.0);
      w.duration_ms = e.get_number("duration_ms", 0.0);
      check_window(entry, w.at_ms, w.duration_ms);
      cfg.crashes.push_back(w);
    }
  }
  if (const json::Value* spec = v.as_object().find("random_crashes")) {
    cfg.random_crashes = random_spec_from_json(*spec, path + ".random_crashes");
  }
  if (const json::Value* arr = v.as_object().find("link_flaps")) {
    std::size_t i = 0;
    for (const json::Value& e : arr->as_array()) {
      const std::string entry = path + ".link_flaps[" + std::to_string(i++) + "]";
      require_keys(e, entry, {"a", "b", "at_ms", "duration_ms"});
      LinkFlapWindow w;
      w.a = static_cast<NodeId>(cfgcheck::int_in(e, entry, "a", 0, 0, 1'000'000));
      w.b = static_cast<NodeId>(cfgcheck::int_in(e, entry, "b", 0, 0, 1'000'000));
      w.at_ms = e.get_number("at_ms", 0.0);
      w.duration_ms = e.get_number("duration_ms", 0.0);
      check_window(entry, w.at_ms, w.duration_ms);
      cfg.link_flaps.push_back(w);
    }
  }
  if (const json::Value* spec = v.as_object().find("random_link_flaps")) {
    cfg.random_link_flaps =
        random_spec_from_json(*spec, path + ".random_link_flaps");
  }
  if (const json::Value* c = v.as_object().find("corruption")) {
    const std::string entry = path + ".corruption";
    require_keys(*c, entry, {"rate", "start_ms", "end_ms"});
    cfg.corruption.rate = number_in(*c, entry, "rate", 0.0, 0.0, 1.0);
    cfg.corruption.start_ms = number_in(*c, entry, "start_ms", 0.0, 0.0, 1e12);
    cfg.corruption.end_ms = number_in(*c, entry, "end_ms", 0.0, 0.0, 1e12);
    if (cfg.corruption.end_ms != 0 &&
        cfg.corruption.end_ms <= cfg.corruption.start_ms) {
      fail(entry + ".end_ms", "must be > start_ms (or 0 for open-ended)");
    }
  }
  if (const json::Value* c = v.as_object().find("clock")) {
    const std::string entry = path + ".clock";
    require_keys(*c, entry, {"max_skew_ms", "max_drift"});
    cfg.clock.max_skew_ms = number_in(*c, entry, "max_skew_ms", 0.0, 0.0, 1e6);
    cfg.clock.max_drift = number_in(*c, entry, "max_drift", 0.0, 0.0, 0.5);
  }
  return cfg;
}

}  // namespace bftsim

#include "faults/fault_plan.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "crypto/hash.hpp"

namespace bftsim {

namespace {

using Window = std::pair<Time, Time>;  // [start, end)

/// Merges overlapping or touching windows in place; input need not be sorted.
void merge_windows(std::vector<Window>& windows) {
  if (windows.size() < 2) return;
  std::sort(windows.begin(), windows.end());
  std::vector<Window> merged;
  merged.push_back(windows.front());
  for (std::size_t i = 1; i < windows.size(); ++i) {
    if (windows[i].first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, windows[i].second);
    } else {
      merged.push_back(windows[i]);
    }
  }
  windows = std::move(merged);
}

Window sample_window(const RandomWindowSpec& spec, Rng& rng) {
  const Time start = from_ms(rng.uniform(spec.start_ms, spec.end_ms));
  const Time duration =
      from_ms(rng.uniform(spec.min_duration_ms, spec.max_duration_ms));
  return {start, start + std::max<Time>(duration, 1)};
}

}  // namespace

std::string_view to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRecover: return "recover";
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kLinkUp: return "link-up";
  }
  return "?";
}

FaultPlan FaultPlan::build(const FaultConfig& cfg, std::uint32_t n, Rng rng) {
  // Per-target window collection. std::map keys keep the emission order
  // deterministic (ascending node / pair id), independent of config order.
  std::map<NodeId, std::vector<Window>> crash_windows;
  std::map<std::pair<NodeId, NodeId>, std::vector<Window>> link_windows;

  for (const CrashWindow& w : cfg.crashes) {
    const Time start = from_ms(w.at_ms);
    crash_windows[w.node].push_back({start, start + from_ms(w.duration_ms)});
  }
  for (std::uint32_t i = 0; i < cfg.random_crashes.count; ++i) {
    const auto node = static_cast<NodeId>(rng.next_below(n));
    crash_windows[node].push_back(sample_window(cfg.random_crashes, rng));
  }

  for (const LinkFlapWindow& w : cfg.link_flaps) {
    const Time start = from_ms(w.at_ms);
    const auto key = std::minmax(w.a, w.b);
    link_windows[{key.first, key.second}].push_back(
        {start, start + from_ms(w.duration_ms)});
  }
  for (std::uint32_t i = 0; i < cfg.random_link_flaps.count; ++i) {
    const auto a = static_cast<NodeId>(rng.next_below(n));
    auto b = static_cast<NodeId>(rng.next_below(n - 1));
    if (b >= a) ++b;  // uniform over the n-1 other nodes
    const auto key = std::minmax(a, b);
    link_windows[{key.first, key.second}].push_back(
        sample_window(cfg.random_link_flaps, rng));
  }

  FaultPlan plan;
  for (auto& [node, windows] : crash_windows) {
    merge_windows(windows);
    for (const Window& w : windows) {
      plan.events_.push_back({w.first, FaultKind::kCrash, node, kNoNode, w.second});
      plan.events_.push_back({w.second, FaultKind::kRecover, node, kNoNode, 0});
    }
  }
  for (auto& [link, windows] : link_windows) {
    merge_windows(windows);
    for (const Window& w : windows) {
      plan.events_.push_back(
          {w.first, FaultKind::kLinkDown, link.first, link.second, w.second});
      plan.events_.push_back(
          {w.second, FaultKind::kLinkUp, link.first, link.second, 0});
    }
  }

  // Stable sort by time: equal-time events keep the deterministic emission
  // order above (crashes by node, then links by pair), so the timeline —
  // and thus every downstream state transition — is a pure function of
  // (cfg, n, rng state).
  std::stable_sort(plan.events_.begin(), plan.events_.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     return x.at < y.at;
                   });
  return plan;
}

std::uint64_t FaultPlan::fingerprint() const noexcept {
  std::uint64_t h = hash_words({0x464c54ULL, events_.size()});  // "FLT"
  for (const FaultEvent& ev : events_) {
    h = hash_combine(h, static_cast<std::uint64_t>(ev.at));
    h = hash_combine(h, static_cast<std::uint64_t>(ev.kind));
    h = hash_combine(h, ev.a);
    h = hash_combine(h, ev.b);
    h = hash_combine(h, static_cast<std::uint64_t>(ev.until));
  }
  return h;
}

}  // namespace bftsim

// Deterministic expansion of a FaultConfig into a concrete fault timeline.
//
// FaultPlan::build turns the scenario description (explicit windows plus
// random-window generators) into a sorted list of FaultEvents, sampling
// every random choice from one dedicated RNG stream forked off the run
// seed. The same (config, seed) pair therefore always yields the same
// timeline — fault scenarios replay bit-identically, which is what lets
// fault results be pinned by the golden suite like engine results.
//
// Overlapping windows for the same node (or the same link) are merged at
// build time, so the runtime state machine in FaultInjector only ever sees
// well-nested down/up transitions.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/rng.hpp"
#include "core/types.hpp"
#include "faults/fault_config.hpp"

namespace bftsim {

/// Kind of one scheduled fault transition.
enum class FaultKind : std::uint8_t { kCrash, kRecover, kLinkDown, kLinkUp };

[[nodiscard]] std::string_view to_string(FaultKind kind) noexcept;

/// One fault transition on the timeline. For kCrash/kLinkDown, `until` is
/// the matching recovery time (the window end), which the controller uses
/// to defer a crashed node's timers.
struct FaultEvent {
  Time at = 0;
  FaultKind kind = FaultKind::kCrash;
  NodeId a = kNoNode;  ///< crashed node, or one link endpoint
  NodeId b = kNoNode;  ///< other link endpoint (links only)
  Time until = 0;      ///< window end (kCrash / kLinkDown)
};

/// The expanded, sorted fault timeline of one run.
class FaultPlan {
 public:
  /// Expands `cfg` for an `n`-node run. `rng` must be a stream dedicated
  /// to fault sampling (the controller forks it off the run seed); the
  /// result is deterministic in (cfg, n, rng state).
  [[nodiscard]] static FaultPlan build(const FaultConfig& cfg, std::uint32_t n,
                                       Rng rng);

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }

  /// Order-sensitive digest of the timeline (determinism tests).
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace bftsim

#include "faults/fault_injector.hpp"

#include <algorithm>
#include <cassert>

namespace bftsim {

namespace {

// Fork salts for the injector's sub-streams. Fixed constants so that a
// given fault stream always splits the same way regardless of which fault
// kinds a scenario enables.
constexpr std::uint64_t kPlanSalt = 1;
constexpr std::uint64_t kCorruptSalt = 2;
constexpr std::uint64_t kClockSalt = 3;

}  // namespace

FaultInjector::FaultInjector(const FaultConfig& cfg, std::uint32_t n,
                             Rng fault_rng)
    : plan_(FaultPlan::build(cfg, n, fault_rng.fork(kPlanSalt))),
      crashed_(n, 0),
      recovery_time_(n, kNoTime),
      links_(n),
      corruption_(cfg.corruption),
      corrupt_rng_(fault_rng.fork(kCorruptSalt)) {
  if (corruption_.enabled()) {
    corrupt_start_ = from_ms(corruption_.start_ms);
    corrupt_end_ =
        corruption_.end_ms > 0 ? from_ms(corruption_.end_ms) : kNoTime;
  }
  if (cfg.clock.enabled()) {
    clock_enabled_ = true;
    Rng clock_rng = fault_rng.fork(kClockSalt);
    clock_skew_.reserve(n);
    clock_drift_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      clock_skew_.push_back(
          from_ms(clock_rng.uniform(-cfg.clock.max_skew_ms, cfg.clock.max_skew_ms)));
      clock_drift_.push_back(
          1.0 + clock_rng.uniform(-cfg.clock.max_drift, cfg.clock.max_drift));
    }
  }
}

void FaultInjector::apply(std::size_t index) {
  assert(index < plan_.events().size());
  const FaultEvent& ev = plan_.events()[index];
  switch (ev.kind) {
    case FaultKind::kCrash:
      crashed_[ev.a] = 1;
      recovery_time_[ev.a] = ev.until;
      break;
    case FaultKind::kRecover:
      crashed_[ev.a] = 0;
      recovery_time_[ev.a] = kNoTime;
      break;
    case FaultKind::kLinkDown:
      links_.set_down(ev.a, ev.b);
      break;
    case FaultKind::kLinkUp:
      links_.set_up(ev.a, ev.b);
      break;
  }
}

bool FaultInjector::maybe_corrupt(Time now) {
  if (!corruption_.enabled()) return false;
  if (now < corrupt_start_) return false;
  if (corrupt_end_ != kNoTime && now >= corrupt_end_) return false;
  return corrupt_rng_.next_double() < corruption_.rate;
}

void FaultInjector::fork_corruption_streams(std::uint32_t n) {
  if (!corruption_.enabled()) return;
  corrupt_streams_.clear();
  corrupt_streams_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    corrupt_streams_.push_back(corrupt_rng_.fork(i));
  }
}

bool FaultInjector::maybe_corrupt_from(Time now, NodeId src) {
  if (!corruption_.enabled()) return false;
  if (now < corrupt_start_) return false;
  if (corrupt_end_ != kNoTime && now >= corrupt_end_) return false;
  assert(src < corrupt_streams_.size());
  return corrupt_streams_[src].next_double() < corruption_.rate;
}

Time FaultInjector::adjust_timer_delay(NodeId node, Time delay) const noexcept {
  if (!clock_enabled_) return delay;
  const double drifted = static_cast<double>(delay) * clock_drift_[node];
  const Time adjusted = static_cast<Time>(drifted) + clock_skew_[node];
  return std::max<Time>(adjusted, 0);
}

}  // namespace bftsim

// Fault-scenario configuration (the benign-but-nasty counterpart of the
// attacker module): crash/recover windows, link flaps, probabilistic
// message corruption and per-node clock skew/drift.
//
// A FaultConfig only *describes* a scenario; the deterministic expansion
// into a concrete timeline (random windows sampled from the run's RNG
// streams) happens in FaultPlan::build (src/faults/fault_plan.hpp), and the
// runtime state the controller queries lives in FaultInjector. The struct
// is part of SimConfig, so fault scenarios travel inside the same JSON
// config files as everything else, under the "faults" key (schema:
// docs/FAULTS.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/json.hpp"
#include "core/types.hpp"

namespace bftsim {

/// One scheduled crash window: `node` is dead (drops inbound messages,
/// timers are deferred) during [at_ms, at_ms + duration_ms).
struct CrashWindow {
  NodeId node = 0;
  double at_ms = 0.0;
  double duration_ms = 0.0;
};

/// One scheduled link outage: messages between `a` and `b` (both
/// directions) are dropped during [at_ms, at_ms + duration_ms).
struct LinkFlapWindow {
  NodeId a = 0;
  NodeId b = 0;
  double at_ms = 0.0;
  double duration_ms = 0.0;
};

/// Generator for randomly placed windows (crash or link flap): `count`
/// windows start uniformly in [start_ms, end_ms) and last uniformly
/// between min_duration_ms and max_duration_ms; targets are drawn
/// uniformly from the node (or node-pair) space.
struct RandomWindowSpec {
  std::uint32_t count = 0;
  double start_ms = 0.0;
  double end_ms = 0.0;
  double min_duration_ms = 0.0;
  double max_duration_ms = 0.0;

  [[nodiscard]] bool enabled() const noexcept { return count > 0; }
};

/// Probabilistic message corruption: each network message sent inside
/// [start_ms, end_ms) is, with probability `rate`, delivered with a
/// perturbed payload digest, which simulated signature/QC verification
/// rejects (the receiving node discards it). end_ms == 0 means "until the
/// end of the run".
struct CorruptionSpec {
  double rate = 0.0;
  double start_ms = 0.0;
  double end_ms = 0.0;

  [[nodiscard]] bool enabled() const noexcept { return rate > 0.0; }
};

/// Per-node clock imperfection applied to timer registration: each node
/// draws a fixed skew in [-max_skew_ms, +max_skew_ms] (added to every
/// timer delay) and a drift factor in [1 - max_drift, 1 + max_drift]
/// (multiplied into every timer delay).
struct ClockSpec {
  double max_skew_ms = 0.0;
  double max_drift = 0.0;

  [[nodiscard]] bool enabled() const noexcept {
    return max_skew_ms > 0.0 || max_drift > 0.0;
  }
};

/// Full fault scenario for one run. Disabled (the default) means every
/// controller fault hook is compiled out of the hot path via one null
/// check, keeping attack-free runs bit-identical to the recorded goldens.
struct FaultConfig {
  std::vector<CrashWindow> crashes;
  RandomWindowSpec random_crashes;
  std::vector<LinkFlapWindow> link_flaps;
  RandomWindowSpec random_link_flaps;
  CorruptionSpec corruption;
  ClockSpec clock;

  [[nodiscard]] bool enabled() const noexcept {
    return !crashes.empty() || random_crashes.enabled() ||
           !link_flaps.empty() || random_link_flaps.enabled() ||
           corruption.enabled() || clock.enabled();
  }

  /// Cross-checks the scenario against the run's node count; throws
  /// std::invalid_argument with the offending JSON path.
  void validate(std::uint32_t n) const;

  [[nodiscard]] json::Value to_json() const;

  /// Strict parse: unknown keys and out-of-range values throw a single-line
  /// error naming the JSON path (rooted at `path`, default "$.faults").
  [[nodiscard]] static FaultConfig from_json(const json::Value& v,
                                             const std::string& path = "$.faults");
};

}  // namespace bftsim

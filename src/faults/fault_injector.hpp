// Runtime fault state for one run.
//
// The controller constructs a FaultInjector when the config's fault section
// is enabled, schedules each planned FaultEvent as a kFault timer on the
// event queue, and calls apply() when one fires. Between transitions the
// injector answers the hot-path queries: is this node crashed (drop the
// delivery / defer the timer), is this link down (drop the send), should
// this send be corrupted, and how does this node's clock distort a timer
// delay.
//
// All randomness — the plan expansion, the per-send corruption coin and the
// per-node clock parameters — comes from sub-streams forked off one fault
// RNG that the controller forks off the run seed, so the whole fault
// behavior of a run is a deterministic function of (config, seed).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "core/rng.hpp"
#include "core/types.hpp"
#include "faults/fault_config.hpp"
#include "faults/fault_plan.hpp"
#include "net/link_state.hpp"
#include "net/message.hpp"

namespace bftsim {

/// Payload wrapper modelling in-flight corruption: it carries the kUnknown
/// dispatch tag (so every protocol's tag switch ignores it, exactly as a
/// node would discard a message whose signature/QC fails verification) and
/// perturbs the wrapped payload's digest (so trace digests and the
/// validator see the corruption).
class CorruptedPayload final : public Payload {
 public:
  /// XORed into the original digest; any nonzero constant works, this one
  /// is recognizable in trace dumps.
  static constexpr std::uint64_t kPerturbation = 0xBADC0DEBADC0DEull;

  explicit CorruptedPayload(PayloadPtr original) noexcept
      : Payload(PayloadType::kUnknown), original_(std::move(original)) {}

  [[nodiscard]] std::string_view type() const noexcept override {
    return "corrupt";
  }
  [[nodiscard]] std::uint64_t digest() const noexcept override {
    return (original_ != nullptr ? original_->digest() : 0) ^ kPerturbation;
  }
  [[nodiscard]] std::size_t wire_size() const noexcept override {
    return original_ != nullptr ? original_->wire_size()
                                : Payload::wire_size();
  }

  [[nodiscard]] const PayloadPtr& original() const noexcept { return original_; }

 private:
  PayloadPtr original_;
};

/// Per-run fault state machine; see file comment.
class FaultInjector {
 public:
  /// `fault_rng` must be the dedicated fault stream forked off the run
  /// seed. `cfg` must already be validated against `n`.
  FaultInjector(const FaultConfig& cfg, std::uint32_t n, Rng fault_rng);

  /// The expanded timeline the controller schedules as kFault timers.
  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return plan_.events();
  }

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// Applies the transition at timeline position `index` (fired kFault
  /// timers carry the index as their node tag).
  void apply(std::size_t index);

  [[nodiscard]] bool is_crashed(NodeId node) const noexcept {
    return crashed_[node];
  }

  /// Recovery time of a currently crashed node (kNoTime when not crashed).
  [[nodiscard]] Time recovery_time(NodeId node) const noexcept {
    return recovery_time_[node];
  }

  [[nodiscard]] bool any_link_down() const noexcept { return !links_.all_up(); }

  [[nodiscard]] bool link_down(NodeId src, NodeId dst) const noexcept {
    return links_.is_down(src, dst);
  }

  /// Flips the per-send corruption coin. Consumes RNG state only inside the
  /// corruption window, so runs that never reach the window stay identical
  /// to corruption-free ones.
  [[nodiscard]] bool maybe_corrupt(Time now);

  /// Splits the corruption stream into one sub-stream per sending node
  /// (windowed-parallel execution: the shared stream's draw order would
  /// depend on lane interleaving). Call once, before the run starts; a
  /// no-op when corruption is disabled. Stream i is corrupt_rng_.fork(i),
  /// forked in node order, so the layout depends only on the seed.
  void fork_corruption_streams(std::uint32_t n);

  /// Per-sender flavor of maybe_corrupt for windowed-parallel runs; draws
  /// from `src`'s sub-stream (requires fork_corruption_streams first).
  /// Thread-safe across lanes because each lane only sends for its own
  /// nodes and therefore only touches its own sub-streams.
  [[nodiscard]] bool maybe_corrupt_from(Time now, NodeId src);

  /// Applies node-local clock skew/drift to a timer delay. Identity when
  /// the clock section is disabled.
  [[nodiscard]] Time adjust_timer_delay(NodeId node, Time delay) const noexcept;

 private:
  FaultPlan plan_;
  std::vector<std::uint8_t> crashed_;
  std::vector<Time> recovery_time_;
  LinkState links_;

  CorruptionSpec corruption_;
  Time corrupt_start_ = 0;
  Time corrupt_end_ = kNoTime;  ///< kNoTime = open-ended
  Rng corrupt_rng_;
  std::vector<Rng> corrupt_streams_;  ///< per sender; windowed runs only

  bool clock_enabled_ = false;
  std::vector<Time> clock_skew_;      ///< per-node additive skew (µs)
  std::vector<double> clock_drift_;   ///< per-node multiplicative factor
};

}  // namespace bftsim

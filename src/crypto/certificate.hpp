// Quorum and timeout certificates, shared by the HotStuff-family protocols.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "crypto/hash.hpp"

namespace bftsim {

/// A quorum certificate: proof that `quorum` distinct nodes voted for block
/// `block` in view `view`.
struct QuorumCert {
  View view = 0;
  Value block = kBottom;  ///< block id the votes certify
  std::vector<NodeId> signers;

  [[nodiscard]] bool valid(std::uint32_t quorum) const noexcept {
    if (signers.size() < quorum) return false;
    // Certificates assembled from vote trackers carry ascending signer
    // lists, so distinctness is checkable in place; the copy + sort only
    // runs for unsorted lists (e.g. attacker-forged certificates).
    if (std::is_sorted(signers.begin(), signers.end())) {
      return std::adjacent_find(signers.begin(), signers.end()) == signers.end();
    }
    std::vector<NodeId> s = signers;
    std::sort(s.begin(), s.end());
    return std::adjacent_find(s.begin(), s.end()) == s.end();  // distinct
  }

  [[nodiscard]] std::uint64_t digest() const noexcept {
    std::uint64_t h = hash_words({view, block});
    for (const NodeId id : signers) h = hash_combine(h, id);
    return h;
  }

  /// The genesis certificate (view 0, genesis block) that bootstraps chains.
  [[nodiscard]] static QuorumCert genesis() { return QuorumCert{0, 0, {}}; }
};

/// A timeout certificate (LibraBFT): proof that `quorum` distinct nodes
/// timed out in view `view`.
struct TimeoutCert {
  View view = 0;
  std::vector<NodeId> signers;

  [[nodiscard]] bool valid(std::uint32_t quorum) const noexcept {
    if (signers.size() < quorum) return false;
    if (std::is_sorted(signers.begin(), signers.end())) {
      return std::adjacent_find(signers.begin(), signers.end()) == signers.end();
    }
    std::vector<NodeId> s = signers;
    std::sort(s.begin(), s.end());
    return std::adjacent_find(s.begin(), s.end()) == s.end();
  }

  [[nodiscard]] std::uint64_t digest() const noexcept {
    std::uint64_t h = hash_words({view, 0x5443ULL});
    for (const NodeId id : signers) h = hash_combine(h, id);
    return h;
  }
};

}  // namespace bftsim

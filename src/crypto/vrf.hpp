// Simulated Verifiable Random Function.
//
// Used by ADD+ v2/v3 and Algorand Agreement for unpredictable leader
// election. The model preserves the protocol-visible properties:
//   - determinism: evaluate(node, round) is a fixed function of the run seed;
//   - unpredictability: outputs depend on a per-run secret, so attacker
//     implementations cannot compute a node's credential before that node
//     reveals it in a message (attacks only use revealed credentials);
//   - verifiability: verify() recomputes and checks an evaluation, so honest
//     nodes can reject forged credentials injected by the attacker.
#pragma once

#include <cstdint>

#include "core/types.hpp"
#include "crypto/hash.hpp"

namespace bftsim {

/// Output of a VRF evaluation: a pseudorandom value and its proof.
struct VrfOutput {
  std::uint64_t value = 0;
  std::uint64_t proof = 0;

  friend bool operator==(const VrfOutput&, const VrfOutput&) = default;
};

/// A per-run VRF instance. All nodes share one instance (each node's
/// evaluations are domain-separated by its id, modeling per-node keys).
class Vrf {
 public:
  explicit Vrf(std::uint64_t run_secret) noexcept
      : secret_(mix64(run_secret ^ 0x5652465f53414c54ULL)) {}  // "VRF_SALT"

  /// Evaluates node `node`'s VRF at input `round`.
  [[nodiscard]] VrfOutput evaluate(NodeId node, std::uint64_t round) const noexcept {
    const std::uint64_t value = hash_words({secret_, node, round, 0x76616c75ULL});
    const std::uint64_t proof = hash_words({secret_, node, round, value, 0x70726f6fULL});
    return VrfOutput{value, proof};
  }

  /// Checks that `out` is node `node`'s evaluation at `round`.
  [[nodiscard]] bool verify(NodeId node, std::uint64_t round,
                            const VrfOutput& out) const noexcept {
    return evaluate(node, round) == out;
  }

 private:
  std::uint64_t secret_;
};

}  // namespace bftsim

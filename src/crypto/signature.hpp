// Simulated digital signatures.
//
// A Signature binds (signer, digest) under a per-run secret. The attacker
// module can replay signatures it has observed (contained in intercepted
// payloads) but cannot mint a signature for a message an honest node never
// signed, because attack implementations have no access to the signing
// secret. Honest protocol code verifies signatures on receipt, so payload
// forgeries by the attacker are detected exactly as they would be with real
// cryptography.
#pragma once

#include <cstdint>

#include "core/types.hpp"
#include "crypto/hash.hpp"

namespace bftsim {

/// A (simulated) signature by `signer` over `digest`.
struct Signature {
  NodeId signer = kNoNode;
  std::uint64_t digest = 0;
  std::uint64_t tag = 0;  ///< MAC-like binding under the run secret

  friend bool operator==(const Signature&, const Signature&) = default;
};

/// Per-run signing oracle shared by all nodes (per-node keys are modeled by
/// domain separation on the signer id).
class Signer {
 public:
  explicit Signer(std::uint64_t run_secret) noexcept
      : secret_(mix64(run_secret ^ 0x5349475f53414c54ULL)) {}  // "SIG_SALT"

  [[nodiscard]] Signature sign(NodeId signer, std::uint64_t digest) const noexcept {
    return Signature{signer, digest, hash_words({secret_, signer, digest})};
  }

  [[nodiscard]] bool verify(const Signature& sig) const noexcept {
    return sig.tag == hash_words({secret_, sig.signer, sig.digest});
  }

 private:
  std::uint64_t secret_;
};

}  // namespace bftsim

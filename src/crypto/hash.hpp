// Deterministic non-cryptographic hashing used throughout the simulator:
// payload digests, trace fingerprints, the simulated VRF, and value ids.
//
// These are *models* of cryptographic primitives: within the simulation they
// provide the protocol-visible properties (determinism, collision resistance
// at simulation scale, unpredictability of seeded outputs to components that
// lack the seed) without real cryptography, which the simulated protocols do
// not need (see DESIGN.md, substitution #3).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string_view>

namespace bftsim {

/// 64-bit FNV-1a over a byte string.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Strong 64-bit finalizer (SplitMix64's mixer).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Combines a hash with another value (boost-style, 64-bit).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                                   std::uint64_t v) noexcept {
  return seed ^ (mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Hashes a fixed list of 64-bit words.
[[nodiscard]] constexpr std::uint64_t hash_words(
    std::initializer_list<std::uint64_t> words) noexcept {
  std::uint64_t h = 0x9ae16a3b2f90404fULL;
  for (const std::uint64_t w : words) h = hash_combine(h, w);
  return h;
}

}  // namespace bftsim

#include "workload/workload_spec.hpp"

#include "core/config_check.hpp"

namespace bftsim {

namespace {

using cfgcheck::fail;
using cfgcheck::int_in;
using cfgcheck::number_in;
using cfgcheck::require_keys;

constexpr double kMaxRateRps = 1e9;
constexpr std::int64_t kMaxClients = 1'000'000'000'000;  // millions and beyond
constexpr std::int64_t kMaxWindow = 1'000'000;
constexpr double kMaxThinkMs = 1e7;
constexpr std::int64_t kMaxRequestBytes = 1 << 20;
constexpr std::int64_t kMaxBatch = 1 << 20;
constexpr double kMaxWaitMs = 1e7;

[[nodiscard]] std::string mode_name(WorkloadSpec::Mode mode) {
  switch (mode) {
    case WorkloadSpec::Mode::kOpen: return "open";
    case WorkloadSpec::Mode::kClosed: return "closed";
  }
  return "?";
}

[[nodiscard]] std::string arrival_name(WorkloadSpec::Arrival arrival) {
  switch (arrival) {
    case WorkloadSpec::Arrival::kPoisson: return "poisson";
    case WorkloadSpec::Arrival::kFixed: return "fixed";
  }
  return "?";
}

}  // namespace

void WorkloadSpec::validate(const std::string& path) const {
  if (rate_rps < 0.0 || rate_rps > kMaxRateRps) {
    fail(path + ".rate_rps",
         "must be within [0, " + std::to_string(kMaxRateRps) + "]");
  }
  if (open() && clients > 0) {
    fail(path + ".clients",
         "clients is a closed-loop setting (set \"mode\": \"closed\")");
  }
  if (closed() && rate_rps > 0.0) {
    fail(path + ".rate_rps",
         "rate_rps is an open-loop setting (set \"mode\": \"open\")");
  }
  if (window < 1 || window > kMaxWindow) {
    fail(path + ".window",
         "must be within [1, " + std::to_string(kMaxWindow) + "]");
  }
  if (think_ms < 0.0 || think_ms > kMaxThinkMs) {
    fail(path + ".think_ms",
         "must be within [0, " + std::to_string(kMaxThinkMs) + "]");
  }
  if (max_batch < 1 || max_batch > kMaxBatch) {
    fail(path + ".max_batch",
         "must be within [1, " + std::to_string(kMaxBatch) + "]");
  }
  if (request_bytes < 1 || request_bytes > kMaxRequestBytes) {
    fail(path + ".request_bytes",
         "must be within [1, " + std::to_string(kMaxRequestBytes) + "]");
  }
  // The proposal body field is 32-bit; a full batch must fit.
  const std::uint64_t body = static_cast<std::uint64_t>(max_batch) *
                             static_cast<std::uint64_t>(request_bytes);
  if (body > 0xffffffffULL) {
    fail(path + ".max_batch",
         "max_batch * request_bytes must fit 32 bits (got " +
             std::to_string(body) + " bytes)");
  }
  if (max_wait_ms < 0.0 || max_wait_ms > kMaxWaitMs) {
    fail(path + ".max_wait_ms",
         "must be within [0, " + std::to_string(kMaxWaitMs) + "]");
  }
}

json::Value WorkloadSpec::to_json() const {
  json::Object o;
  o["mode"] = mode_name(mode);
  o["arrival"] = arrival_name(arrival);
  if (open()) {
    o["rate_rps"] = rate_rps;
  } else {
    o["clients"] = static_cast<std::int64_t>(clients);
    o["window"] = static_cast<std::int64_t>(window);
    o["think_ms"] = think_ms;
  }
  o["request_bytes"] = static_cast<std::int64_t>(request_bytes);
  o["max_batch"] = static_cast<std::int64_t>(max_batch);
  o["max_wait_ms"] = max_wait_ms;
  return json::Value{std::move(o)};
}

WorkloadSpec WorkloadSpec::from_json(const json::Value& v,
                                     const std::string& path) {
  require_keys(v, path,
               {"mode", "arrival", "rate_rps", "clients", "window", "think_ms",
                "request_bytes", "max_batch", "max_wait_ms"});
  WorkloadSpec spec;
  const std::string mode = v.get_string("mode", "open");
  if (mode == "open") {
    spec.mode = Mode::kOpen;
  } else if (mode == "closed") {
    spec.mode = Mode::kClosed;
  } else {
    fail(path + ".mode",
         "unknown mode \"" + mode + "\" (expected \"open\" or \"closed\")");
  }
  const std::string arrival = v.get_string("arrival", "poisson");
  if (arrival == "poisson") {
    spec.arrival = Arrival::kPoisson;
  } else if (arrival == "fixed") {
    spec.arrival = Arrival::kFixed;
  } else {
    fail(path + ".arrival", "unknown arrival \"" + arrival +
                                "\" (expected \"poisson\" or \"fixed\")");
  }
  spec.rate_rps =
      number_in(v, path, "rate_rps", spec.rate_rps, 0.0, kMaxRateRps);
  spec.clients = static_cast<std::uint64_t>(
      int_in(v, path, "clients", static_cast<std::int64_t>(spec.clients), 0,
             kMaxClients));
  spec.window = static_cast<std::uint32_t>(
      int_in(v, path, "window", spec.window, 1, kMaxWindow));
  spec.think_ms =
      number_in(v, path, "think_ms", spec.think_ms, 0.0, kMaxThinkMs);
  spec.request_bytes = static_cast<std::uint32_t>(
      int_in(v, path, "request_bytes", spec.request_bytes, 1,
             kMaxRequestBytes));
  spec.max_batch = static_cast<std::uint32_t>(
      int_in(v, path, "max_batch", spec.max_batch, 1, kMaxBatch));
  spec.max_wait_ms =
      number_in(v, path, "max_wait_ms", spec.max_wait_ms, 0.0, kMaxWaitMs);
  spec.validate(path);
  return spec;
}

}  // namespace bftsim

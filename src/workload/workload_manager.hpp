// Runtime state of the client workload generator (one per run).
//
// Client affinity keeps the generator safe under the windowed-parallel
// engine: every node owns an independent arrival stream (open loop: the
// aggregate rate split n ways off a dedicated "wl"-salted RNG fork; closed
// loop: a round-robin share of the client population), and a proposer only
// ever batches requests from its own stream. on_propose therefore touches
// exclusively per-node state and may run concurrently across lanes;
// on_decide and finalize run only in serial contexts (the serial engine's
// decide path, the windowed engine's merge barrier, and end of run).
//
// Pending requests are run-length encoded as (birth, count) groups, so a
// closed-loop population of millions of clients costs O(groups), not
// O(requests): the whole initial window is one group per node, and every
// decided batch resubmits as one group. Open-loop arrivals have distinct
// births and cost one group each, materialized lazily at propose time.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/rng.hpp"
#include "core/types.hpp"
#include "workload/proposal_batch.hpp"
#include "workload/workload_spec.hpp"
#include "workload/workload_stats.hpp"

namespace bftsim {

class WorkloadManager {
 public:
  /// `rng` is the controller's dedicated workload fork; `n` the node count.
  WorkloadManager(const WorkloadSpec& spec, std::uint32_t n, Rng rng);

  [[nodiscard]] const WorkloadSpec& spec() const noexcept { return spec_; }
  /// Closed-loop resubmission depends on decision order, so closed-loop
  /// runs must execute serially (the controller falls back with a warning).
  [[nodiscard]] bool serial_only() const noexcept { return spec_.closed(); }

  /// Called by node `node` when minting a fresh proposal for `slot`.
  /// Returns either a batch of its pending requests (value = batch digest)
  /// or, when nothing is ready, the protocol's own `fresh` value with an
  /// empty body. Lane-safe: touches only `node`'s state.
  [[nodiscard]] ProposalBatch on_propose(NodeId node, std::uint64_t slot,
                                         Value fresh, Time now);

  /// Called for every decided value, in decision order. Serial-context
  /// only (serial decide path / windowed merge barrier).
  void on_decide(Value value, Time at);

  /// Closes the books at `end` (termination time or horizon): counts
  /// arrivals the run never got to, checks conservation, computes the
  /// latency percentiles. Serial-context only; call once.
  [[nodiscard]] WorkloadStats finalize(Time end);

 private:
  /// One proposed batch; births are kept for latency recording at decide.
  struct Batch {
    Value value = kBottom;
    NodeId proposer = kNoNode;
    Time formed_at = 0;
    bool decided = false;
    std::vector<Time> births;
  };

  /// A run of `count` pending requests all born at `birth`.
  struct PendingGroup {
    Time birth = 0;
    std::uint64_t count = 0;
  };

  struct NodeState {
    Rng rng;
    Time next_arrival = 0;        ///< open loop: next stream arrival
    bool stream_started = false;  ///< open loop: first draw taken?
    std::uint64_t minted = 0;     ///< batches minted (value salt)
    std::uint64_t submitted = 0;
    std::uint64_t pending_count = 0;
    std::uint64_t empty_proposals = 0;
    std::deque<PendingGroup> pending;  ///< sorted by birth
    std::vector<Batch> batches;
    std::size_t published = 0;  ///< batches already in value_index_
  };

  /// Open loop: draws the next interarrival step (>= 1 Time unit).
  [[nodiscard]] Time next_step(NodeState& ns);
  /// Materializes open-loop arrivals with birth <= `upto` into pending.
  void advance_stream(NodeState& ns, Time upto);
  /// Indexes every not-yet-published batch by value (serial-context only).
  void publish_batches();
  void submit(NodeState& ns, Time birth, std::uint64_t count);

  WorkloadSpec spec_;
  double per_node_mean_us_ = 0.0;  ///< open loop: mean interarrival per node
  Time think_ = 0;
  Time max_wait_ = 0;
  std::vector<NodeState> nodes_;

  // Serial-context state (decide path + finalize only).
  std::unordered_map<Value, std::pair<NodeId, std::uint32_t>> value_index_;
  std::vector<double> latencies_ms_;
  std::uint64_t decided_ = 0;
  std::uint64_t duplicate_decides_ = 0;
  std::uint64_t empty_decisions_ = 0;
  std::uint64_t in_flight_ = 0;      ///< closed loop: submitted - decided
  std::uint64_t max_in_flight_ = 0;  ///< closed loop high-water mark
};

}  // namespace bftsim

#include "workload/workload_manager.hpp"

#include <algorithm>
#include <cmath>

#include "core/stats.hpp"
#include "crypto/hash.hpp"

namespace bftsim {

WorkloadManager::WorkloadManager(const WorkloadSpec& spec, std::uint32_t n,
                                 Rng rng)
    : spec_(spec),
      think_(from_ms(spec.think_ms)),
      max_wait_(from_ms(spec.max_wait_ms)) {
  nodes_.resize(n);
  if (spec_.open()) {
    // Aggregate rate split n ways; mean interarrival in microseconds.
    per_node_mean_us_ = static_cast<double>(n) * 1e6 / spec_.rate_rps;
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    NodeState& ns = nodes_[i];
    ns.rng = rng.fork(i);
    if (spec_.open()) {
      ns.next_arrival = next_step(ns);
    } else {
      // Round-robin client share; every client starts with its full
      // window outstanding at t=0.
      const std::uint64_t share =
          spec_.clients / n + (i < spec_.clients % n ? 1 : 0);
      const std::uint64_t outstanding = share * spec_.window;
      if (outstanding > 0) submit(ns, 0, outstanding);
      in_flight_ += outstanding;
    }
  }
  max_in_flight_ = in_flight_;
}

Time WorkloadManager::next_step(NodeState& ns) {
  double sample = per_node_mean_us_;
  if (spec_.arrival == WorkloadSpec::Arrival::kPoisson) {
    sample = ns.rng.exponential(per_node_mean_us_);
  }
  // Clamp to one Time unit so the stream always advances.
  return std::max<Time>(1, static_cast<Time>(std::llround(sample)));
}

void WorkloadManager::submit(NodeState& ns, Time birth, std::uint64_t count) {
  if (!ns.pending.empty() && ns.pending.back().birth == birth) {
    ns.pending.back().count += count;
  } else {
    ns.pending.push_back(PendingGroup{birth, count});
  }
  ns.submitted += count;
  ns.pending_count += count;
}

void WorkloadManager::advance_stream(NodeState& ns, Time upto) {
  if (!spec_.open()) return;
  while (ns.next_arrival <= upto) {
    submit(ns, ns.next_arrival, 1);
    ns.next_arrival += next_step(ns);
  }
}

ProposalBatch WorkloadManager::on_propose(NodeId node, std::uint64_t slot,
                                          Value fresh, Time now) {
  NodeState& ns = nodes_[node];
  advance_stream(ns, now);

  // Count ready requests (born by `now`), scanning at most max_batch worth
  // of groups — pending is sorted by birth.
  const std::uint64_t cap = spec_.max_batch;
  std::uint64_t ready = 0;
  for (const PendingGroup& g : ns.pending) {
    if (g.birth > now || ready >= cap) break;
    ready += g.count;
  }
  ready = std::min(ready, cap);

  std::uint64_t take = 0;
  if (ready >= cap) {
    take = cap;  // a full batch always ships
  } else if (ready > 0 &&
             (max_wait_ == 0 || now - ns.pending.front().birth >= max_wait_)) {
    take = ready;  // partial batch: ship unless still within the wait budget
  }
  if (take == 0) {
    ++ns.empty_proposals;
    return ProposalBatch{fresh, 0, 0};
  }

  Batch b;
  b.proposer = node;
  b.formed_at = now;
  // Unique per (node, mint counter); `fresh` and `slot` tie the digest to
  // the proposal context for trace readability.
  b.value = hash_words({0x776b6c64ULL, fresh, slot, node, ++ns.minted});
  b.births.reserve(static_cast<std::size_t>(take));
  std::uint64_t left = take;
  while (left > 0) {
    PendingGroup& g = ns.pending.front();
    const std::uint64_t k = std::min(left, g.count);
    b.births.insert(b.births.end(), static_cast<std::size_t>(k), g.birth);
    g.count -= k;
    left -= k;
    if (g.count == 0) ns.pending.pop_front();
  }
  ns.pending_count -= take;

  const auto requests = static_cast<std::uint32_t>(take);
  const ProposalBatch out{b.value, requests, requests * spec_.request_bytes};
  ns.batches.push_back(std::move(b));
  return out;
}

void WorkloadManager::publish_batches() {
  for (NodeId node = 0; node < nodes_.size(); ++node) {
    NodeState& ns = nodes_[node];
    for (; ns.published < ns.batches.size(); ++ns.published) {
      value_index_.emplace(
          ns.batches[ns.published].value,
          std::make_pair(node, static_cast<std::uint32_t>(ns.published)));
    }
  }
}

void WorkloadManager::on_decide(Value value, Time at) {
  auto it = value_index_.find(value);
  if (it == value_index_.end()) {
    publish_batches();  // batches formed since the last decision
    it = value_index_.find(value);
  }
  if (it == value_index_.end()) {
    ++empty_decisions_;  // protocol-minted value: proposal carried no batch
    return;
  }
  Batch& b = nodes_[it->second.first].batches[it->second.second];
  if (b.decided) {
    ++duplicate_decides_;  // later replicas confirming an earlier decision
    return;
  }
  b.decided = true;
  for (const Time birth : b.births) latencies_ms_.push_back(to_ms(at - birth));
  decided_ += b.births.size();

  if (spec_.closed()) {
    // Each served client thinks, then submits its next request to the same
    // node (client affinity); in-flight stays at clients * window.
    submit(nodes_[b.proposer], at + think_, b.births.size());
  }
}

WorkloadStats WorkloadManager::finalize(Time end) {
  WorkloadStats s;
  s.enabled = true;
  for (NodeState& ns : nodes_) {
    advance_stream(ns, end);  // arrivals the run never got to propose
    s.submitted += ns.submitted;
    s.pending_end += ns.pending_count;
    s.empty_proposals += ns.empty_proposals;
    for (const Batch& b : ns.batches) {
      ++s.batches;
      s.batched += b.births.size();
      if (!b.decided) s.batched_undecided += b.births.size();
    }
  }
  s.decided = decided_;
  s.empty_decisions = empty_decisions_;
  s.duplicate_decides = duplicate_decides_;
  s.max_in_flight = max_in_flight_;
  s.duration_ms = to_ms(end);
  if (end > 0) s.requests_per_sec = static_cast<double>(decided_) / to_sec(end);

  std::sort(latencies_ms_.begin(), latencies_ms_.end());
  if (!latencies_ms_.empty()) {
    double sum = 0.0;
    for (const double ms : latencies_ms_) sum += ms;
    s.latency_mean_ms = sum / static_cast<double>(latencies_ms_.size());
    s.latency_min_ms = latencies_ms_.front();
    s.latency_max_ms = latencies_ms_.back();
    s.latency_p50_ms = percentile_sorted(latencies_ms_, 0.50);
    s.latency_p99_ms = percentile_sorted(latencies_ms_, 0.99);
    s.latency_p999_ms = percentile_sorted(latencies_ms_, 0.999);
  }
  return s;
}

}  // namespace bftsim

// The result of asking the workload layer for a proposal payload.
//
// Lives in its own tiny header so both protocols/node.hpp (the Context
// API) and workload/workload_manager.hpp can name it without either
// depending on the other.
#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace bftsim {

/// What a proposer should put in its next fresh proposal. Without a
/// workload (or when no request is ready) this is the protocol's own
/// minted value with an empty body — exactly the pre-workload behavior.
struct ProposalBatch {
  Value value = kBottom;          ///< value to propose (batch digest or fresh)
  std::uint32_t requests = 0;     ///< client requests carried by the proposal
  std::uint32_t body_bytes = 0;   ///< wire bytes the batch adds to the payload
};

}  // namespace bftsim

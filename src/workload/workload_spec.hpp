// Configuration of the client workload generator ($.workload).
//
// The simulator's protocols decide slots; the workload layer makes those
// slots carry client requests. Two loop disciplines:
//
//   - open loop: requests arrive at an aggregate rate regardless of how
//     fast the system decides (Poisson or fixed-interval arrivals). The
//     aggregate rate is split evenly across nodes as per-node arrival
//     streams ("client affinity"), which keeps the generator lane-safe
//     under the windowed-parallel engine: a proposer only ever batches
//     requests from its own stream.
//   - closed loop: a fixed client population, each client keeping `window`
//     requests outstanding and thinking `think_ms` between a decision and
//     its next request. Resubmission timing depends on decision order, so
//     closed-loop runs always execute on the serial engine (the controller
//     falls back with a RunWarning, mirroring attacked runs).
//
// Millions of simulated clients cost O(n) state: each node holds one
// aggregated arrival stream / client-count, never per-client objects.
// See docs/WORKLOADS.md for semantics and the determinism argument.
#pragma once

#include <cstdint>
#include <string>

#include "core/json.hpp"

namespace bftsim {

/// Parsed $.workload block; part of SimConfig (held by value, like WanSpec).
/// The default-constructed spec is disabled: a config without $.workload
/// decides empty slots bit-identically to older releases.
struct WorkloadSpec {
  enum class Mode : std::uint8_t { kOpen, kClosed };
  enum class Arrival : std::uint8_t { kPoisson, kFixed };

  Mode mode = Mode::kOpen;
  Arrival arrival = Arrival::kPoisson;

  /// Open loop: aggregate request arrival rate (requests/second) across
  /// the whole system; split evenly over the n per-node streams.
  double rate_rps = 0.0;

  /// Closed loop: simulated client population (aggregated per node,
  /// round-robin) and per-client outstanding-request window.
  std::uint64_t clients = 0;
  std::uint32_t window = 1;
  /// Closed loop: think time between a client's decision and its next
  /// request (milliseconds).
  double think_ms = 0.0;

  /// Wire bytes charged per request in a proposal body.
  std::uint32_t request_bytes = 256;
  /// Batching: at most this many requests per proposal ...
  std::uint32_t max_batch = 256;
  /// ... and, when fewer are pending, propose empty until the oldest
  /// pending request has waited this long (0 = ship whatever is pending).
  double max_wait_ms = 0.0;

  [[nodiscard]] bool open() const noexcept { return mode == Mode::kOpen; }
  [[nodiscard]] bool closed() const noexcept { return mode == Mode::kClosed; }
  /// True when the generator is selected (gates both the controller's
  /// WorkloadManager construction and JSON emission).
  [[nodiscard]] bool enabled() const noexcept {
    return open() ? rate_rps > 0.0 : clients > 0;
  }

  /// Structural / cross-field invariants (positive rate in open mode, a
  /// client population in closed mode, batch byte total within the uint32
  /// body field); throws the canonical path-aware config error.
  void validate(const std::string& path = "$.workload") const;

  [[nodiscard]] json::Value to_json() const;
  /// Strict parse: unknown keys / out-of-range numbers / cross-field
  /// conflicts throw a single-line "config error at $.workload..." naming
  /// the offending path.
  [[nodiscard]] static WorkloadSpec from_json(
      const json::Value& v, const std::string& path = "$.workload");
};

}  // namespace bftsim

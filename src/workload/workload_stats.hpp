// Request-level results of a workload-driven run, attached to RunResult.
//
// The conservation identity pins the bookkeeping:
//
//   submitted == decided + pending_end + batched_undecided
//
// Every request a client submitted is, at run end, exactly one of decided
// (its batch was reported by the protocol), still pending at its origin
// node, or riding a batch that was proposed but never decided (an orphaned
// proposal of a losing proposer or a deposed leader — there is no client
// retransmission). tests/workload asserts this across all protocols.
#pragma once

#include <cstdint>

namespace bftsim {

struct WorkloadStats {
  bool enabled = false;

  std::uint64_t submitted = 0;  ///< requests born within the run
  std::uint64_t decided = 0;    ///< requests whose batch was decided (once)
  std::uint64_t batched = 0;    ///< requests placed into some proposal
  std::uint64_t pending_end = 0;         ///< still queued at a node at end
  std::uint64_t batched_undecided = 0;   ///< batched but never decided
  std::uint64_t batches = 0;             ///< non-empty proposals formed
  std::uint64_t empty_proposals = 0;     ///< proposals minted with no requests
  std::uint64_t empty_decisions = 0;     ///< decided values carrying no batch
  /// Decide reports for a batch that was already decided. Every node
  /// reports each decision, so n-1 re-reports per decided batch are normal;
  /// requests and latency are counted once, at the first report.
  std::uint64_t duplicate_decides = 0;
  /// Closed loop only: high-water mark of client-outstanding requests
  /// (bounded by clients * window). 0 in open-loop runs.
  std::uint64_t max_in_flight = 0;

  double duration_ms = 0.0;       ///< measured span the rate is taken over
  double requests_per_sec = 0.0;  ///< decided / duration

  /// Request latency (birth -> decision) percentiles in milliseconds,
  /// via percentile_sorted's linear-interpolation rule. Zero when no
  /// request was decided.
  double latency_mean_ms = 0.0;
  double latency_min_ms = 0.0;
  double latency_max_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_p999_ms = 0.0;
};

}  // namespace bftsim

// Attack parameter spaces for the adversary strategy search.
//
// Every builtin parameterized attack exposes a discrete grid of parameter
// axes; a candidate strategy is one index per axis, and its attack_params
// JSON is a pure function of those indices. Candidate generation is a pure
// function of (space, search seed, round, index) — the same contract
// generate_scenario gives the fuzzer — so search reports are replayable no
// matter how the evaluations were scheduled.
//
// The spaces are model-aware like the fuzzer's scenario space: partition-
// style attacks (eclipse, adaptive-partition) model temporary asynchrony
// and are only paired with protocols whose network model tolerates it;
// delay-schedule stalls are clamped inside the delay spec's bounds and so
// are safe for every model; protocol-specific strategies (PBFT late
// equivocation) only target their protocol.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/json.hpp"

namespace bftsim::adversary {

/// One discrete parameter axis: a key in attack_params plus the values the
/// search may pick. Numeric values are pre-quantized to 1/8 ms so they
/// round-trip bit-identically through reproducer JSON.
struct ParamAxis {
  std::string key;
  std::vector<json::Value> values;
};

/// The searchable space of one attack against one base configuration.
struct AttackSpace {
  std::string attack;
  std::vector<ParamAxis> axes;

  /// Number of points in the full grid (product of axis sizes).
  [[nodiscard]] std::uint64_t grid_size() const noexcept;
};

/// A candidate strategy: one chosen value index per axis.
using ParamVector = std::vector<std::size_t>;

/// The attack_params object encoded by `pv` (one entry per axis).
[[nodiscard]] json::Value params_of(const AttackSpace& space,
                                    const ParamVector& pv);

/// Candidate `index` of round `round`: a pure function of its arguments
/// (the draw never depends on previously drawn candidates).
[[nodiscard]] ParamVector draw_candidate(const AttackSpace& space,
                                         std::uint64_t seed,
                                         std::uint64_t round,
                                         std::uint64_t index);

/// Deterministic neighbor enumeration for iterated local search: for each
/// axis in order, the -1 then +1 step (when in range). No duplicates, does
/// not include `pv` itself.
[[nodiscard]] std::vector<ParamVector> neighbors(const AttackSpace& space,
                                                 const ParamVector& pv);

/// The attack spaces applicable to `protocol` given the search's base
/// config (axis values scale with base.n / base.lambda_ms / base
/// horizon). Pure function; ordering is fixed.
[[nodiscard]] std::vector<AttackSpace> attack_spaces(
    const std::string& protocol, const SimConfig& base);

}  // namespace bftsim::adversary

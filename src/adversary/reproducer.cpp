#include "adversary/reproducer.hpp"

#include <fstream>
#include <stdexcept>

#include "core/config_check.hpp"
#include "runner/export.hpp"
#include "sim/simulation.hpp"

namespace bftsim::adversary {

namespace {

[[nodiscard]] std::uint64_t parse_hex64(const std::string& s,
                                        const std::string& path) {
  if (s.empty() || s.size() > 16) {
    cfgcheck::fail(path, "expected a hex string of 1..16 digits");
  }
  std::uint64_t value = 0;
  for (const char c : s) {
    value <<= 4;
    if (c >= '0' && c <= '9') value |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') value |= static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') value |= static_cast<std::uint64_t>(c - 'A' + 10);
    else cfgcheck::fail(path, "bad hex digit in \"" + s + "\"");
  }
  return value;
}

}  // namespace

json::Value AdvReproducer::to_json() const {
  json::Object o;
  o["schema"] = kAdvReproducerSchema;
  o["id"] = id;
  o["search_seed"] = search_seed;
  o["protocol"] = protocol;
  o["attack"] = attack;
  o["damage"] = damage.to_json();
  o["attacked_fingerprint"] = fingerprint_to_hex(attacked_fingerprint);
  o["attacked_records"] = attacked_records;
  o["baseline_fingerprint"] = fingerprint_to_hex(baseline_fingerprint);
  o["baseline_records"] = baseline_records;
  o["shrink_steps"] = static_cast<std::uint64_t>(shrink_steps);
  o["shrink_runs"] = static_cast<std::uint64_t>(shrink_runs);
  o["config"] = config.to_json();
  return json::Value{std::move(o)};
}

AdvReproducer AdvReproducer::from_json(const json::Value& v,
                                       const std::string& path) {
  cfgcheck::require_keys(
      v, path,
      {"schema", "id", "search_seed", "protocol", "attack", "damage",
       "attacked_fingerprint", "attacked_records", "baseline_fingerprint",
       "baseline_records", "shrink_steps", "shrink_runs", "config"});
  const std::string schema = v.get_string("schema", "");
  if (schema != kAdvReproducerSchema) {
    cfgcheck::fail(path + ".schema",
                   "expected \"" + std::string(kAdvReproducerSchema) +
                       "\", got \"" + schema + "\"");
  }
  AdvReproducer repro;
  repro.id = v.get_string("id", "");
  repro.search_seed = static_cast<std::uint64_t>(v.get_int("search_seed", 0));
  repro.protocol = v.get_string("protocol", "");
  repro.attack = v.get_string("attack", "");
  const json::Value* dmg = v.as_object().find("damage");
  if (dmg == nullptr) cfgcheck::fail(path + ".damage", "missing");
  repro.damage = DamageReport::from_json(*dmg, path + ".damage");
  repro.attacked_fingerprint =
      parse_hex64(v.get_string("attacked_fingerprint", "0"),
                  path + ".attacked_fingerprint");
  repro.attacked_records =
      static_cast<std::uint64_t>(v.get_int("attacked_records", 0));
  repro.baseline_fingerprint =
      parse_hex64(v.get_string("baseline_fingerprint", "0"),
                  path + ".baseline_fingerprint");
  repro.baseline_records =
      static_cast<std::uint64_t>(v.get_int("baseline_records", 0));
  repro.shrink_steps = static_cast<std::size_t>(v.get_int("shrink_steps", 0));
  repro.shrink_runs = static_cast<std::size_t>(v.get_int("shrink_runs", 0));
  const json::Value* cfg = v.as_object().find("config");
  if (cfg == nullptr) cfgcheck::fail(path + ".config", "missing");
  repro.config = SimConfig::from_json(*cfg);
  if (repro.config.protocol != repro.protocol) {
    cfgcheck::fail(path + ".protocol",
                   "does not match config.protocol \"" +
                       repro.config.protocol + "\"");
  }
  if (repro.config.attack != repro.attack) {
    cfgcheck::fail(path + ".attack",
                   "does not match config.attack \"" + repro.config.attack +
                       "\"");
  }
  return repro;
}

AdvReproducer AdvReproducer::from_file(const std::string& file) {
  return from_json(json::parse_file(file));
}

void AdvReproducer::save(const std::string& file) const {
  std::ofstream out(file);
  if (!out) throw std::runtime_error("cannot write reproducer: " + file);
  out << to_json().dump(2) << '\n';
}

AdvReplayOutcome replay_adv_reproducer(const AdvReproducer& repro) {
  const SimConfig base_cfg = baseline_of(repro.config);
  const RunResult baseline = run_simulation(base_cfg);
  const RunResult attacked = run_simulation(repro.config);

  AdvReplayOutcome outcome;
  outcome.damage = compute_damage(repro.config, baseline, attacked);
  outcome.attacked_fingerprint = attacked.trace_fingerprint;
  outcome.attacked_records = attacked.trace_records;
  outcome.baseline_fingerprint = baseline.trace_fingerprint;
  outcome.baseline_records = baseline.trace_records;
  // Exact equality is intentional: the score is deterministic double
  // arithmetic over run products, and JSON numbers round-trip bit-exactly.
  outcome.score_matches = outcome.damage.score == repro.damage.score;
  outcome.verdict_matches =
      outcome.damage.stalled == repro.damage.stalled &&
      outcome.damage.safety_violated == repro.damage.safety_violated;
  outcome.fingerprints_match =
      attacked.trace_fingerprint == repro.attacked_fingerprint &&
      attacked.trace_records == repro.attacked_records &&
      baseline.trace_fingerprint == repro.baseline_fingerprint &&
      baseline.trace_records == repro.baseline_records;
  return outcome;
}

}  // namespace bftsim::adversary

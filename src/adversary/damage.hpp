// Damage objectives for the adversary strategy search.
//
// A fuzzing campaign asks "did any invariant break?"; the adversary search
// asks the complementary question: "how much *damage* can a strategy do
// while the invariants hold?". Damage is measured by comparing an attacked
// run against the attack-free baseline run of the same configuration (same
// protocol, n, delay model, seed — only `attack`/`attack_params` cleared):
//
//  * liveness stall      — the attacked run failed to reach its decision
//                          target (horizon / event budget / drained queue);
//  * latency degradation — decision latency relative to the baseline;
//  * view-change churn   — extra views/rounds honest nodes were forced
//                          through (the paper's view-synchronization lens);
//  * quorum near-miss    — how much of the commit certificate's sender
//                          slack (distinct vote senders above the quorum
//                          minimum at the first decide) the attack consumed;
//  * safety violation    — an oracle actually fired under attack, which
//                          dominates every other objective.
//
// The composite score is a fixed weighted sum, computed with deterministic
// double arithmetic from run products only — replaying the same two runs
// reproduces the score bit-exactly, which is what lets the search refuse
// non-reproducing candidates.
#pragma once

#include <optional>
#include <string>

#include "core/config.hpp"
#include "core/json.hpp"
#include "sim/result.hpp"

namespace bftsim::adversary {

/// Composite-score weights (documented in docs/ADVERSARY.md).
inline constexpr double kSafetyWeight = 10'000.0;
inline constexpr double kStallWeight = 1'000.0;
inline constexpr double kLatencyWeight = 100.0;
inline constexpr double kChurnWeight = 10.0;
inline constexpr double kNearMissWeight = 25.0;

/// Damage one attacked run did relative to its attack-free baseline.
struct DamageReport {
  bool stalled = false;          ///< attacked run missed its decision target
  bool safety_violated = false;  ///< an invariant oracle fired under attack
  std::string safety_diagnosis;  ///< oracle diagnosis when safety_violated
  double latency_ratio = 0.0;    ///< attacked/baseline decision latency - 1
  double view_churn = 0.0;       ///< extra rounds entered vs baseline
  double quorum_near_miss = 0.0; ///< certificate sender slack consumed
  double score = 0.0;            ///< fixed weighted sum of the above

  /// Compact human-readable summary, e.g. "stall, churn +3" ("none" when
  /// the score is zero). Deterministically formatted.
  [[nodiscard]] std::string describe() const;

  [[nodiscard]] json::Value to_json() const;
  [[nodiscard]] static DamageReport from_json(const json::Value& v,
                                              const std::string& path);
};

/// Certificate sender slack of `result`: distinct senders of the
/// protocol's vote-type messages on the wire by the first honest decide,
/// minus the certificate minimum. nullopt when the protocol has no fixed
/// vote quorum, the run recorded no trace, or no honest node decided.
[[nodiscard]] std::optional<double> quorum_slack(const SimConfig& cfg,
                                                 const RunResult& result);

/// Computes the damage report for `attacked` relative to `baseline`.
/// `attacked_cfg` must be the config that produced the attacked run (the
/// oracle check and the certificate rule need it).
[[nodiscard]] DamageReport compute_damage(const SimConfig& attacked_cfg,
                                          const RunResult& baseline,
                                          const RunResult& attacked);

/// The attack-free twin of an attacked config: same everything, with
/// `attack`/`attack_params` cleared. The baseline run every damage
/// comparison and every reproducer replay uses.
[[nodiscard]] SimConfig baseline_of(SimConfig attacked_cfg);

}  // namespace bftsim::adversary

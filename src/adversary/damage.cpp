#include "adversary/damage.hpp"

#include <cstdio>
#include <unordered_set>

#include "core/config_check.hpp"
#include "explore/oracles.hpp"

namespace bftsim::adversary {

namespace {

void append_metric(std::string& out, const char* label, double value) {
  if (value <= 0.0) return;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s +%.2f", label, value);
  if (!out.empty()) out += ", ";
  out += buf;
}

}  // namespace

std::string DamageReport::describe() const {
  std::string out;
  if (safety_violated) out += "SAFETY";
  if (stalled) {
    if (!out.empty()) out += ", ";
    out += "stall";
  }
  append_metric(out, "latency", latency_ratio);
  append_metric(out, "churn", view_churn);
  append_metric(out, "near-miss", quorum_near_miss);
  return out.empty() ? "none" : out;
}

json::Value DamageReport::to_json() const {
  json::Object o;
  o["stalled"] = stalled;
  o["safety_violated"] = safety_violated;
  o["safety_diagnosis"] = safety_diagnosis;
  o["latency_ratio"] = latency_ratio;
  o["view_churn"] = view_churn;
  o["quorum_near_miss"] = quorum_near_miss;
  o["score"] = score;
  return json::Value{std::move(o)};
}

DamageReport DamageReport::from_json(const json::Value& v,
                                     const std::string& path) {
  cfgcheck::require_keys(v, path,
                         {"stalled", "safety_violated", "safety_diagnosis",
                          "latency_ratio", "view_churn", "quorum_near_miss",
                          "score"});
  DamageReport report;
  report.stalled = v.get_bool("stalled", false);
  report.safety_violated = v.get_bool("safety_violated", false);
  report.safety_diagnosis = v.get_string("safety_diagnosis", "");
  report.latency_ratio = v.get_number("latency_ratio", 0.0);
  report.view_churn = v.get_number("view_churn", 0.0);
  report.quorum_near_miss = v.get_number("quorum_near_miss", 0.0);
  report.score = v.get_number("score", 0.0);
  return report;
}

std::optional<double> quorum_slack(const SimConfig& cfg,
                                   const RunResult& result) {
  const auto rule = explore::certificate_rule(cfg.protocol, cfg.n);
  if (!rule || result.decisions.empty() || result.trace.empty()) {
    return std::nullopt;
  }

  const std::unordered_set<NodeId> honest(result.honest.begin(),
                                          result.honest.end());
  bool found = false;
  Time first_decide = 0;
  for (const Decision& d : result.decisions) {
    if (honest.count(d.node) == 0) continue;
    if (!found || d.at < first_decide) first_decide = d.at;
    found = true;
  }
  if (!found) return std::nullopt;

  std::unordered_set<NodeId> senders;
  for (const TraceRecord& rec : result.trace.records()) {
    if (rec.kind == TraceKind::kSend && rec.at <= first_decide &&
        rec.type == rule->vote_type) {
      senders.insert(rec.a);
    }
  }
  return static_cast<double>(senders.size()) -
         static_cast<double>(rule->min_senders);
}

DamageReport compute_damage(const SimConfig& attacked_cfg,
                            const RunResult& baseline,
                            const RunResult& attacked) {
  DamageReport damage;

  // Safety first: an oracle firing under attack dominates everything.
  // (The liveness oracle only applies to quiescent configs and so can
  // never fire here; stalls are scored separately below.)
  const explore::OracleReport oracles =
      explore::check_oracles(attacked_cfg, attacked);
  if (!oracles.ok) {
    damage.safety_violated = true;
    damage.safety_diagnosis = oracles.to_string();
  }

  damage.stalled = !attacked.terminated;

  if (!damage.stalled && baseline.terminated && baseline.latency_ms() > 0) {
    const double ratio = attacked.latency_ms() / baseline.latency_ms() - 1.0;
    if (ratio > 0) damage.latency_ratio = ratio;
  }

  const double churn = static_cast<double>(attacked.rounds_used()) -
                       static_cast<double>(baseline.rounds_used());
  if (churn > 0) damage.view_churn = churn;

  // Quorum near-miss only applies when the attacked run still decided —
  // a stalled run has no certificate to measure, and the stall term
  // already dominates.
  if (!damage.stalled) {
    const auto base_slack = quorum_slack(attacked_cfg, baseline);
    const auto att_slack = quorum_slack(attacked_cfg, attacked);
    if (base_slack && att_slack && *att_slack < *base_slack) {
      damage.quorum_near_miss = *base_slack - *att_slack;
    }
  }

  damage.score = (damage.safety_violated ? kSafetyWeight : 0.0) +
                 (damage.stalled ? kStallWeight : 0.0) +
                 kLatencyWeight * damage.latency_ratio +
                 kChurnWeight * damage.view_churn +
                 kNearMissWeight * damage.quorum_near_miss;
  return damage;
}

SimConfig baseline_of(SimConfig attacked_cfg) {
  attacked_cfg.attack.clear();
  attacked_cfg.attack_params = json::Value{};
  return attacked_cfg;
}

}  // namespace bftsim::adversary

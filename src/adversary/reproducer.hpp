// Replayable worst-case attack strategies.
//
// Each per-protocol × per-attack worst case the search reports is backed by
// one self-contained JSON document: the attacked SimConfig (its attack-free
// baseline is derived, not stored — same config with `attack` cleared), the
// damage report the search measured, and the trace fingerprints of both
// runs. Replaying re-executes baseline and attacked runs, recomputes the
// damage from their products, and demands bit-exact agreement — same
// fingerprints, same record counts, same composite score under `==` (JSON
// numbers round-trip exactly, so the stored score is the computed one).
// The search itself refuses to report any cell whose reproducer does not
// replay; the corpus under tests/data/adversary_corpus/ is these files.
#pragma once

#include <cstdint>
#include <string>

#include "adversary/damage.hpp"
#include "core/config.hpp"
#include "core/json.hpp"

namespace bftsim::adversary {

/// Schema tag every adversary reproducer document carries.
inline constexpr const char* kAdvReproducerSchema =
    "bftsim-adversary-reproducer-v1";

/// One replayable worst-case strategy for a (protocol, attack) cell.
struct AdvReproducer {
  std::string id;                ///< "advsearch-<seed>/<protocol>/<attack>"
  std::uint64_t search_seed = 0;
  std::string protocol;
  std::string attack;
  SimConfig config;              ///< attacked config; baseline is derived
  DamageReport damage;           ///< damage measured by the search
  std::uint64_t attacked_fingerprint = 0;
  std::uint64_t attacked_records = 0;
  std::uint64_t baseline_fingerprint = 0;
  std::uint64_t baseline_records = 0;
  std::size_t shrink_steps = 0;  ///< accepted shrinking transformations
  std::size_t shrink_runs = 0;   ///< simulations the shrinker executed

  [[nodiscard]] json::Value to_json() const;
  /// Strict parse; throws std::invalid_argument / json::Error naming the
  /// offending path. `path` roots error messages (default "$").
  [[nodiscard]] static AdvReproducer from_json(const json::Value& v,
                                               const std::string& path = "$");
  [[nodiscard]] static AdvReproducer from_file(const std::string& file);
  void save(const std::string& file) const;
};

/// Outcome of replaying an adversary reproducer.
struct AdvReplayOutcome {
  DamageReport damage;  ///< damage recomputed from the replayed runs
  std::uint64_t attacked_fingerprint = 0;
  std::uint64_t attacked_records = 0;
  std::uint64_t baseline_fingerprint = 0;
  std::uint64_t baseline_records = 0;
  bool score_matches = false;        ///< recomputed score == recorded (exact)
  bool verdict_matches = false;      ///< stalled/safety flags match
  bool fingerprints_match = false;   ///< both traces bit-identical

  [[nodiscard]] bool ok() const noexcept {
    return score_matches && verdict_matches && fingerprints_match;
  }
};

/// Re-executes the reproducer's baseline and attacked runs and compares
/// damage score, verdict flags, and both trace fingerprints against the
/// recorded ones.
[[nodiscard]] AdvReplayOutcome replay_adv_reproducer(const AdvReproducer& repro);

}  // namespace bftsim::adversary

#include "adversary/space.hpp"

#include "core/rng.hpp"
#include "crypto/hash.hpp"
#include "explore/scenario.hpp"
#include "protocols/registry.hpp"

namespace bftsim::adversary {

namespace {

using explore::quantize_eighth_ms;

[[nodiscard]] json::Value ms(double value) {
  return json::Value{quantize_eighth_ms(value)};
}

[[nodiscard]] ParamAxis mode_axis(const char* a, const char* b) {
  return ParamAxis{"mode", {json::Value{std::string(a)}, json::Value{std::string(b)}}};
}

/// The message types worth re-timing per protocol: the proposal that
/// drives progress and the votes that form certificates.
[[nodiscard]] std::vector<std::string> delay_targets(
    const std::string& protocol) {
  if (protocol == "pbft" || protocol == "pbft-canary") {
    return {"pbft/pre-prepare", "pbft/prepare", "pbft/commit"};
  }
  if (protocol == "hotstuff-ns" || protocol == "librabft") {
    return {"hotstuff/proposal", "hotstuff/vote"};
  }
  if (protocol == "sync-hotstuff") return {"sync-hs/proposal", "sync-hs/vote"};
  if (protocol == "tendermint") {
    return {"tendermint/proposal", "tendermint/prevote",
            "tendermint/precommit"};
  }
  if (protocol == "algorand") {
    return {"algorand/proposal", "algorand/soft-vote", "algorand/cert-vote"};
  }
  if (protocol == "asyncba") return {"asyncba/init", "asyncba/echo"};
  if (protocol == "addv1" || protocol == "addv2" || protocol == "addv3") {
    return {"add/propose", "add/vote"};
  }
  return {};
}

}  // namespace

std::uint64_t AttackSpace::grid_size() const noexcept {
  std::uint64_t size = 1;
  for (const ParamAxis& axis : axes) size *= axis.values.size();
  return size;
}

json::Value params_of(const AttackSpace& space, const ParamVector& pv) {
  json::Object params;
  for (std::size_t i = 0; i < space.axes.size(); ++i) {
    params[space.axes[i].key] = space.axes[i].values[pv[i]];
  }
  return json::Value{std::move(params)};
}

ParamVector draw_candidate(const AttackSpace& space, std::uint64_t seed,
                           std::uint64_t round, std::uint64_t index) {
  // The stream depends only on (attack, seed, round, index): candidate i
  // of round r is the same no matter what ran before it or where.
  Rng rng(hash_words(
      {0x616476ULL /* "adv" */, fnv1a64(space.attack), seed, round, index}));
  ParamVector pv(space.axes.size());
  for (std::size_t i = 0; i < space.axes.size(); ++i) {
    pv[i] = static_cast<std::size_t>(rng.next_below(space.axes[i].values.size()));
  }
  return pv;
}

std::vector<ParamVector> neighbors(const AttackSpace& space,
                                   const ParamVector& pv) {
  std::vector<ParamVector> out;
  for (std::size_t i = 0; i < space.axes.size(); ++i) {
    if (pv[i] > 0) {
      ParamVector step = pv;
      --step[i];
      out.push_back(std::move(step));
    }
    if (pv[i] + 1 < space.axes[i].values.size()) {
      ParamVector step = pv;
      ++step[i];
      out.push_back(std::move(step));
    }
  }
  return out;
}

std::vector<AttackSpace> attack_spaces(const std::string& protocol,
                                       const SimConfig& base) {
  const double lambda = base.lambda_ms;
  const double horizon = base.max_time_ms;
  const auto n = static_cast<std::int64_t>(base.n);
  const ProtocolInfo& info = ProtocolRegistry::instance().get(protocol);
  const bool partition_tolerant = info.model != NetModel::kSync;

  std::vector<AttackSpace> spaces;

  if (partition_tolerant) {
    AttackSpace partition;
    partition.attack = "partition";
    partition.axes = {
        ParamAxis{"subnets", {json::Value{std::int64_t{2}}, json::Value{std::int64_t{3}}}},
        ParamAxis{"resolve_ms",
                  {ms(10 * lambda), ms(25 * lambda), ms(0.8 * horizon)}},
        mode_axis("drop", "delay"),
    };
    spaces.push_back(std::move(partition));

    AttackSpace adaptive;
    adaptive.attack = "adaptive-partition";
    adaptive.axes = {
        ParamAxis{"subnets", {json::Value{std::int64_t{2}}, json::Value{std::int64_t{3}}}},
        ParamAxis{"period_ms", {ms(lambda / 2), ms(lambda), ms(2 * lambda)}},
        ParamAxis{"resolve_ms",
                  {ms(10 * lambda), ms(25 * lambda), ms(0.8 * horizon)}},
        mode_axis("drop", "delay"),
    };
    spaces.push_back(std::move(adaptive));

    AttackSpace eclipse;
    eclipse.attack = "eclipse";
    eclipse.axes = {
        ParamAxis{"victim",
                  {json::Value{std::int64_t{0}}, json::Value{std::int64_t{1}},
                   json::Value{n / 2}}},
        ParamAxis{"keep",
                  {json::Value{std::int64_t{0}}, json::Value{std::int64_t{1}},
                   json::Value{std::int64_t{3}}}},
        ParamAxis{"start_ms", {ms(0), ms(lambda), ms(4 * lambda)}},
        ParamAxis{"duration_ms",
                  {ms(5 * lambda), ms(15 * lambda), ms(horizon)}},
        mode_axis("drop", "delay"),
    };
    spaces.push_back(std::move(eclipse));
  }

  const std::vector<std::string> targets = delay_targets(protocol);
  if (!targets.empty()) {
    AttackSpace delay;
    delay.attack = "delay-schedule";
    ParamAxis type_axis{"type", {}};
    for (const std::string& t : targets) type_axis.values.emplace_back(t);
    delay.axes = {
        std::move(type_axis),
        mode_axis("rush", "stall"),
        ParamAxis{"amount_ms", {ms(lambda / 4), ms(lambda), ms(4 * lambda)}},
        ParamAxis{"duration_ms", {ms(10 * lambda), ms(horizon)}},
    };
    spaces.push_back(std::move(delay));
  }

  AttackSpace flood;
  flood.attack = "flood";
  flood.axes = {
      ParamAxis{"copies",
                {json::Value{std::int64_t{1}}, json::Value{std::int64_t{2}},
                 json::Value{std::int64_t{4}}}},
      ParamAxis{"spread_ms", {ms(0.125), ms(lambda / 8)}},
      ParamAxis{"duration_ms", {ms(10 * lambda), ms(horizon)}},
  };
  spaces.push_back(std::move(flood));

  if (protocol == "pbft" || protocol == "pbft-canary") {
    AttackSpace late;
    late.attack = "pbft-late-equivocation";
    late.axes = {
        ParamAxis{"view",
                  {json::Value{std::int64_t{0}}, json::Value{std::int64_t{1}},
                   json::Value{std::int64_t{2}}}},
        ParamAxis{"strike_ms", {ms(lambda / 2), ms(2 * lambda), ms(5 * lambda)}},
    };
    spaces.push_back(std::move(late));
  }

  return spaces;
}

}  // namespace bftsim::adversary

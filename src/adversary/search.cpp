#include "adversary/search.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <utility>

#include "core/thread_pool.hpp"
#include "explore/shrink.hpp"
#include "protocols/registry.hpp"
#include "sim/simulation.hpp"

namespace bftsim::adversary {

namespace {

/// One evaluated candidate: its lattice point and the run products needed
/// to rank it and (for the incumbent) to seed the reproducer.
struct Eval {
  ParamVector pv;
  DamageReport damage;
  std::uint64_t attacked_fingerprint = 0;
  std::uint64_t attacked_records = 0;
  bool failed = false;
};

[[nodiscard]] SimConfig attacked_config(const SimConfig& base,
                                        const AttackSpace& space,
                                        const ParamVector& pv) {
  SimConfig cfg = base;
  cfg.attack = space.attack;
  cfg.attack_params = params_of(space, pv);
  return cfg;
}

/// Products of the shrink predicate's accepted probe, captured on the side
/// (shrink_config only tracks configs).
struct AcceptedProbe {
  DamageReport damage;
  std::uint64_t attacked_fingerprint = 0;
  std::uint64_t attacked_records = 0;
  std::uint64_t baseline_fingerprint = 0;
  std::uint64_t baseline_records = 0;
};

}  // namespace

SimConfig search_base_config(const std::string& protocol,
                             const SearchOptions& options) {
  SimConfig cfg;
  cfg.protocol = protocol;
  cfg.n = options.n;
  cfg.lambda_ms = options.lambda_ms;
  cfg.delay = DelaySpec::normal(250.0, 50.0);
  // Same rule as the fuzzer's scenario generator: a synchronous-model
  // protocol is only safe when the network honors its λ bound, so an
  // unbounded delay tail would measure a synchrony violation, not damage.
  const ProtocolInfo& info = ProtocolRegistry::instance().get(protocol);
  if (info.model == NetModel::kSync) cfg.delay.max_ms = cfg.lambda_ms;
  cfg.seed = options.seed;
  cfg.max_time_ms = 600'000.0;
  cfg.record_trace = true;
  return options.watchdog.apply(std::move(cfg));
}

json::Value SearchReport::to_json() const {
  json::Object o;
  o["schema"] = "bftsim-adversary-search-v1";
  o["seed"] = seed;
  json::Array cells;
  for (const WorstCase& w : worst) {
    json::Object c;
    c["protocol"] = w.protocol;
    c["attack"] = w.attack;
    c["params"] = w.params;
    c["damage"] = w.damage.to_json();
    c["evaluations"] = w.evaluations;
    if (w.has_reproducer) c["reproducer"] = w.reproducer.to_json();
    cells.emplace_back(json::Value{std::move(c)});
  }
  o["worst"] = json::Value{std::move(cells)};
  json::Array refusals;
  for (const std::string& r : refused) refusals.emplace_back(r);
  o["refused"] = json::Value{std::move(refusals)};
  return json::Value{std::move(o)};
}

std::string SearchReport::table() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line, "%-14s %-22s %10s  %s\n", "protocol",
                "attack", "score", "damage");
  out += line;
  out += std::string(78, '-') + '\n';
  for (const WorstCase& w : worst) {
    std::snprintf(line, sizeof line, "%-14s %-22s %10.2f  %s\n",
                  w.protocol.c_str(), w.attack.c_str(), w.damage.score,
                  w.damage.describe().c_str());
    out += line;
    if (w.has_reproducer) {
      out += "  params: " + w.params.dump() + '\n';
    }
  }
  for (const std::string& r : refused) out += "REFUSED " + r + '\n';
  return out;
}

SearchReport run_search(const SearchOptions& options) {
  ThreadPool pool(options.jobs == 0 ? ThreadPool::default_workers()
                                    : options.jobs);

  SearchReport report;
  report.seed = options.seed;

  for (const std::string& protocol : options.protocols) {
    const SimConfig base = search_base_config(protocol, options);
    // One shared baseline per protocol: every candidate of every cell is
    // scored against the same attack-free run (it IS baseline_of(candidate)
    // for unshrunk candidates, since only attack/attack_params differ).
    const RunResult baseline = run_simulation(base);

    for (const AttackSpace& space : attack_spaces(protocol, base)) {
      const std::string cell = protocol + "/" + space.attack;
      std::set<ParamVector> seen;
      Eval incumbent;
      bool have_incumbent = false;
      std::uint64_t evaluations = 0;

      // Evaluates a candidate batch on the pool; slots fold up in index
      // order (strict > keeps the first maximum), so the incumbent is
      // independent of scheduling.
      const auto run_batch = [&](const std::vector<ParamVector>& batch) {
        std::vector<ParamVector> fresh;
        for (const ParamVector& pv : batch) {
          if (seen.insert(pv).second) fresh.push_back(pv);
        }
        std::vector<Eval> slots(fresh.size());
        parallel_for(pool, fresh.size(), [&](std::size_t i) {
          slots[i].pv = fresh[i];
          try {
            const SimConfig cfg = attacked_config(base, space, fresh[i]);
            const RunResult result = run_simulation(cfg);
            slots[i].damage = compute_damage(cfg, baseline, result);
            slots[i].attacked_fingerprint = result.trace_fingerprint;
            slots[i].attacked_records = result.trace_records;
          } catch (const std::exception&) {
            slots[i].failed = true;
          }
        });
        evaluations += fresh.size();
        for (Eval& slot : slots) {
          if (slot.failed) continue;
          if (!have_incumbent || slot.damage.score > incumbent.damage.score) {
            incumbent = std::move(slot);
            have_incumbent = true;
          }
        }
      };

      // Round 0: seeded grid. Rounds 1..R: the incumbent's lattice
      // neighbors plus fresh seeded draws (restarts keep the local search
      // from anchoring on a weak round-0 sample).
      std::vector<ParamVector> batch;
      for (std::uint64_t i = 0; i < options.grid; ++i) {
        batch.push_back(draw_candidate(space, options.seed, 0, i));
      }
      run_batch(batch);
      for (std::uint64_t round = 1; round <= options.rounds; ++round) {
        if (!have_incumbent) break;
        batch = neighbors(space, incumbent.pv);
        for (std::uint64_t i = 0; i < options.grid / 2; ++i) {
          batch.push_back(draw_candidate(space, options.seed, round, i));
        }
        run_batch(batch);
      }

      if (!have_incumbent) {
        report.refused.push_back(cell + ": no candidate evaluated cleanly");
        continue;
      }

      WorstCase worst;
      worst.protocol = protocol;
      worst.attack = space.attack;
      worst.params = params_of(space, incumbent.pv);
      worst.damage = incumbent.damage;
      worst.evaluations = evaluations;

      if (incumbent.damage.score > 0.0) {
        // Shrink the winning config while its score stays at least the
        // winning score. Every probe recomputes its own baseline (shrink
        // transformations change n / delay / horizon, so the shared one no
        // longer matches).
        const SimConfig worst_cfg = attacked_config(base, space, incumbent.pv);
        const double target = incumbent.damage.score;
        AcceptedProbe accepted;
        explore::ShrinkPolicy policy;
        policy.keep_attack = true;
        policy.skip_horizon = incumbent.damage.stalled;
        policy.max_probes = options.shrink_runs;
        const explore::ConfigShrink shrunk = explore::shrink_config(
            worst_cfg,
            [&](const SimConfig& candidate) {
              const RunResult b = run_simulation(baseline_of(candidate));
              const RunResult a = run_simulation(candidate);
              const DamageReport d = compute_damage(candidate, b, a);
              if (d.score < target) return false;
              accepted = AcceptedProbe{d, a.trace_fingerprint, a.trace_records,
                                       b.trace_fingerprint, b.trace_records};
              return true;
            },
            policy);

        AdvReproducer repro;
        repro.id = "advsearch-" + std::to_string(options.seed) + "/" + cell;
        repro.search_seed = options.seed;
        repro.protocol = protocol;
        repro.attack = space.attack;
        repro.config = shrunk.config;
        repro.shrink_steps = shrunk.steps;
        repro.shrink_runs = shrunk.probes * 2;  // two simulations per probe
        if (shrunk.steps > 0) {
          repro.damage = accepted.damage;
          repro.attacked_fingerprint = accepted.attacked_fingerprint;
          repro.attacked_records = accepted.attacked_records;
          repro.baseline_fingerprint = accepted.baseline_fingerprint;
          repro.baseline_records = accepted.baseline_records;
        } else {
          repro.damage = incumbent.damage;
          repro.attacked_fingerprint = incumbent.attacked_fingerprint;
          repro.attacked_records = incumbent.attacked_records;
          repro.baseline_fingerprint = baseline.trace_fingerprint;
          repro.baseline_records = baseline.trace_records;
        }

        // The gate the issue demands: a worst case only counts when its
        // reproducer replays with the exact recorded score. Anything else
        // means a determinism bug and must be surfaced, not tabulated.
        const AdvReplayOutcome replay = replay_adv_reproducer(repro);
        if (!replay.ok()) {
          report.refused.push_back(
              cell + ": reproducer replay diverged (score " +
              json::Value{replay.damage.score}.dump() + " vs recorded " +
              json::Value{repro.damage.score}.dump() + ")");
          continue;
        }

        worst.params = repro.config.attack_params;
        worst.damage = repro.damage;
        worst.has_reproducer = true;
        worst.reproducer = std::move(repro);
      }

      report.worst.push_back(std::move(worst));
    }
  }

  std::stable_sort(report.worst.begin(), report.worst.end(),
                   [](const WorstCase& a, const WorstCase& b) {
                     if (a.damage.score != b.damage.score) {
                       return a.damage.score > b.damage.score;
                     }
                     if (a.protocol != b.protocol) return a.protocol < b.protocol;
                     return a.attack < b.attack;
                   });
  return report;
}

}  // namespace bftsim::adversary

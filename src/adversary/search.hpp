// Deterministic worst-case attack discovery.
//
// For every (protocol, attack space) cell the search runs a seeded grid of
// candidate strategies followed by iterated local search around the
// incumbent (neighbors on the parameter lattice plus fresh seeded draws),
// scores each candidate with the damage objectives against the protocol's
// attack-free baseline run, shrinks the per-cell worst case through the
// ddmin core into a replayable reproducer, and replays that reproducer
// before counting it: any cell whose replay does not reproduce the damage
// score bit-exactly is refused and excluded from the table.
//
// Determinism contract: the whole SearchReport — candidates, scores,
// incumbents, shrunk configs, fingerprints, ranking — is a pure function
// of (options minus jobs). Candidate batches fan out across a thread pool
// but land in per-index slots and fold up in index order (first maximum
// wins ties), cells run sequentially, and shrinking is serial, so reports
// are byte-identical for every `jobs` value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "adversary/damage.hpp"
#include "adversary/reproducer.hpp"
#include "adversary/space.hpp"
#include "core/json.hpp"
#include "runner/runner.hpp"

namespace bftsim::adversary {

struct SearchOptions {
  /// Protocols to attack. The default set covers the view-based BFT
  /// family the damage objectives are sharpest for.
  std::vector<std::string> protocols = {"pbft", "hotstuff-ns", "librabft",
                                        "sync-hotstuff", "tendermint"};
  std::uint32_t n = 8;              ///< nodes per run
  double lambda_ms = 1000.0;        ///< protocol delay bound λ
  std::uint64_t seed = 1;           ///< search seed (also the run seed)
  std::uint64_t grid = 12;          ///< round-0 seeded draws per attack space
  std::uint64_t rounds = 2;         ///< local-search rounds after round 0
  std::size_t jobs = 0;             ///< 0 = ThreadPool::default_workers()
  /// Budget cap baked into every config BEFORE running, so reproducers are
  /// self-contained (same contract as the fuzzer's campaign watchdog).
  Watchdog watchdog{/*max_events=*/200'000, /*max_time_ms=*/60'000.0};
  std::size_t shrink_runs = 60;     ///< shrink probe budget per worst case
};

/// The worst strategy found for one (protocol, attack) cell.
struct WorstCase {
  std::string protocol;
  std::string attack;
  json::Value params;            ///< attack_params of the worst candidate
  DamageReport damage;           ///< damage of the (shrunk) worst case
  std::uint64_t evaluations = 0; ///< candidate evaluations spent on the cell
  bool has_reproducer = false;   ///< false when the cell's best score is 0
  AdvReproducer reproducer;      ///< replayable worst case (when nonzero)
};

/// Full outcome of one search.
struct SearchReport {
  std::uint64_t seed = 0;
  std::vector<WorstCase> worst;      ///< ranked by score desc, then name
  std::vector<std::string> refused;  ///< "protocol/attack: reason" entries

  [[nodiscard]] json::Value to_json() const;
  /// The ranked per-protocol × per-attack resilience table as fixed-width
  /// text. Deterministically formatted; byte-identical across `jobs`.
  [[nodiscard]] std::string table() const;
};

/// The base (attack-free) configuration the search attacks for `protocol`:
/// options' n/λ/seed, the repo's default N(250,50) delay (clamped at λ for
/// synchronous-model protocols), trace recording on, watchdog applied.
[[nodiscard]] SimConfig search_base_config(const std::string& protocol,
                                           const SearchOptions& options);

/// Runs the search.
[[nodiscard]] SearchReport run_search(const SearchOptions& options);

}  // namespace bftsim::adversary

#include "obs/profile.hpp"

#include <utility>

namespace bftsim::obs {

std::string_view to_string(ProfileComponent c) noexcept {
  switch (c) {
    case ProfileComponent::kEventPop: return "event_pop";
    case ProfileComponent::kDelaySample: return "delay_sample";
    case ProfileComponent::kAttackerHook: return "attacker_hook";
    case ProfileComponent::kOnMessage: return "on_message";
    case ProfileComponent::kOnTimer: return "on_timer";
    case ProfileComponent::kFaultHook: return "fault_hook";
    case ProfileComponent::kCount: break;
  }
  return "?";
}

json::Value ProfileBreakdown::to_json() const {
  json::Object o;
  for (std::size_t i = 0; i < kProfileComponentCount; ++i) {
    if (calls[i] == 0) continue;
    json::Object row;
    row["calls"] = static_cast<double>(calls[i]);
    row["total_ns"] = static_cast<double>(total_ns[i]);
    o[std::string(to_string(static_cast<ProfileComponent>(i)))] =
        json::Value{std::move(row)};
  }
  return json::Value{std::move(o)};
}

}  // namespace bftsim::obs

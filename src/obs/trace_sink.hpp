// Trace sinks: where the controller's trace records go.
//
// The historical behavior — accumulate every TraceRecord in an in-memory
// Trace attached to RunResult — is one implementation (MemoryTraceSink).
// The streaming sinks write each record to disk as it happens, either as
// JSON Lines (one object per record, greppable) or as a compact binary
// format (~5x smaller, for million-event runs), so the run never holds the
// whole trace in RAM. Every sink maintains the same order-sensitive
// fingerprint an in-memory Trace would produce, which is what makes
// determinism checks ("same seed => same fingerprint") format-independent.
//
// TraceReader reads either on-disk format back into TraceRecords, one
// record at a time; tools/trace_inspect is the CLI over it.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/trace.hpp"
#include "obs/obs_config.hpp"

namespace bftsim::obs {

/// Destination for the trace records of one run. on_record() is the single
/// seam the controller emits through; implementations only decide storage.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Accepts the next trace record (accounting + storage).
  void on_record(const TraceRecord& rec) {
    fingerprint_ = hash_combine(fingerprint_, rec.fingerprint());
    ++count_;
    write(rec);
  }

  /// Completes any buffered output. Called once at run end; throws
  /// std::runtime_error when the sink's storage failed.
  virtual void flush() {}

  /// Order-sensitive fingerprint over every record seen so far; equals
  /// Trace::fingerprint() of the same record sequence.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept { return fingerprint_; }

  /// Number of records seen so far.
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

 protected:
  virtual void write(const TraceRecord& rec) = 0;

 private:
  std::uint64_t fingerprint_ = kTraceFingerprintSeed;
  std::uint64_t count_ = 0;
};

/// Appends records to a caller-owned Trace (the historical in-memory path).
class MemoryTraceSink final : public TraceSink {
 public:
  explicit MemoryTraceSink(Trace& target) : target_(target) {}

 protected:
  void write(const TraceRecord& rec) override { target_.add(rec); }

 private:
  Trace& target_;
};

/// Streams one JSON object per record ("\n"-delimited) to a file. Keys are
/// fixed and ordered; digest/value are hex strings so the full 64 bits
/// round-trip through the double-based JSON layer.
class JsonlTraceSink final : public TraceSink {
 public:
  /// Throws std::runtime_error when `path` cannot be opened for writing.
  explicit JsonlTraceSink(const std::string& path);

  void flush() override;

 protected:
  void write(const TraceRecord& rec) override;

 private:
  std::string path_;
  std::ofstream out_;
  std::string line_;  ///< reused per-record formatting buffer
};

/// Streams the compact binary trace format: an 8-byte magic header, then
/// self-delimiting frames — payload-type strings are interned once and
/// records refer to them by index, so a record is 45 bytes regardless of
/// type-string length.
class BinaryTraceSink final : public TraceSink {
 public:
  /// Throws std::runtime_error when `path` cannot be opened for writing.
  explicit BinaryTraceSink(const std::string& path);

  void flush() override;

 protected:
  void write(const TraceRecord& rec) override;

 private:
  [[nodiscard]] std::uint32_t intern(const std::string& type);

  std::string path_;
  std::ofstream out_;
  std::vector<std::string> strings_;  ///< index = on-wire string id
};

/// Builds the sink selected by `obs` for a run whose in-memory trace (when
/// the memory sink is selected) lives in `memory_target`. Throws
/// std::runtime_error when a streaming sink cannot open its output file.
[[nodiscard]] std::unique_ptr<TraceSink> make_trace_sink(const ObsConfig& obs,
                                                         Trace& memory_target);

/// Reads a trace file in either streaming format, one record at a time.
/// The format is auto-detected from the file's first bytes.
class TraceReader {
 public:
  /// Throws std::runtime_error when the file cannot be opened or is in
  /// neither trace format.
  explicit TraceReader(const std::string& path);

  /// Reads the next record into `out`. Returns false at end of file;
  /// throws std::runtime_error on a malformed record.
  [[nodiscard]] bool next(TraceRecord& out);

  /// The detected on-disk format (kJsonl or kBinary).
  [[nodiscard]] TraceSinkKind format() const noexcept { return format_; }

 private:
  [[nodiscard]] bool next_jsonl(TraceRecord& out);
  [[nodiscard]] bool next_binary(TraceRecord& out);

  std::string path_;
  std::ifstream in_;
  TraceSinkKind format_ = TraceSinkKind::kJsonl;
  std::vector<std::string> strings_;  ///< binary string table, by id
  std::uint64_t record_index_ = 0;    ///< for error messages
};

/// Convenience: reads a whole trace file into an in-memory Trace.
[[nodiscard]] Trace read_trace_file(const std::string& path);

}  // namespace bftsim::obs

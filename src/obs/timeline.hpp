// Run timeline: periodic samples of engine state over simulated time.
//
// The collector is driven inline from the controller's run loop: whenever
// the virtual clock crosses the next tick boundary, the controller snapshots
// counters the engine already maintains (queue depth, pending timers,
// cumulative message counts, per-node views). Sampling therefore never
// schedules events and never consumes randomness — a run with the timeline
// on is bit-identical to the same run with it off.
#pragma once

#include <cstdint>
#include <vector>

#include "core/json.hpp"
#include "core/types.hpp"

namespace bftsim::obs {

/// One snapshot of engine state at simulated time `at`.
struct TimelineSample {
  Time at = 0;
  std::uint64_t events_processed = 0;
  std::uint64_t queue_depth = 0;        ///< live entries in the event queue
  std::uint64_t in_flight_messages = 0; ///< scheduled deliveries not yet popped
  std::uint64_t timers_pending = 0;     ///< armed, uncancelled timers
  std::uint64_t messages_sent = 0;      ///< cumulative
  std::uint64_t messages_delivered = 0; ///< cumulative
  View min_view = 0;                    ///< lowest per-node view
  View max_view = 0;                    ///< highest per-node view
  std::vector<View> node_views;         ///< per-node views (optional)

  [[nodiscard]] json::Value to_json() const;
};

/// Collects TimelineSamples at a fixed simulated-time period.
class Timeline {
 public:
  /// `tick` is the sampling period in simulated time units (> 0);
  /// `record_views` controls whether samples keep the per-node view vector.
  Timeline(Time tick, bool record_views);

  /// Earliest time at which the next sample is due. The controller samples
  /// when the clock reaches or passes this.
  [[nodiscard]] Time next_sample_at() const noexcept { return next_at_; }

  /// True when samples should carry the per-node view vector.
  [[nodiscard]] bool record_views() const noexcept { return record_views_; }

  /// Records a sample and advances the next due time past `sample.at`.
  void add(TimelineSample sample);

  /// Records the final state of a finished run (no tick advance); replaces
  /// the last sample when one already landed at the same instant.
  void add_final(TimelineSample sample);

  [[nodiscard]] const std::vector<TimelineSample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] Time tick() const noexcept { return tick_; }

  [[nodiscard]] json::Value to_json() const;

 private:
  Time tick_ = 0;
  Time next_at_ = 0;
  bool record_views_ = true;
  std::vector<TimelineSample> samples_;
};

}  // namespace bftsim::obs

#include "obs/obs_config.hpp"

#include <stdexcept>

#include "core/config_check.hpp"

namespace bftsim {

namespace {

using cfgcheck::fail;
using cfgcheck::number_in;
using cfgcheck::require_keys;

[[nodiscard]] TraceSinkKind sink_from_name(const std::string& name,
                                           const std::string& path) {
  if (name == "memory") return TraceSinkKind::kMemory;
  if (name == "jsonl") return TraceSinkKind::kJsonl;
  if (name == "binary") return TraceSinkKind::kBinary;
  fail(path + ".sink", "unknown trace sink \"" + name + "\"");
}

}  // namespace

std::string_view to_string(TraceSinkKind kind) noexcept {
  switch (kind) {
    case TraceSinkKind::kMemory: return "memory";
    case TraceSinkKind::kJsonl: return "jsonl";
    case TraceSinkKind::kBinary: return "binary";
  }
  return "?";
}

void ObsConfig::validate() const {
  if (streaming() && trace_path.empty()) {
    throw std::invalid_argument(
        "config error at $.obs.trace_path: required for streaming sinks");
  }
  if (timeline_tick_ms < 0.0) {
    throw std::invalid_argument(
        "config error at $.obs.timeline_tick_ms: must be non-negative");
  }
}

json::Value ObsConfig::to_json() const {
  json::Object o;
  o["sink"] = std::string(to_string(sink));
  if (!trace_path.empty()) o["trace_path"] = trace_path;
  o["timeline_tick_ms"] = timeline_tick_ms;
  o["timeline_views"] = timeline_views;
  return json::Value{std::move(o)};
}

ObsConfig ObsConfig::from_json(const json::Value& v, const std::string& path) {
  require_keys(v, path,
               {"sink", "trace_path", "timeline_tick_ms", "timeline_views"});
  ObsConfig obs;
  obs.sink = sink_from_name(v.get_string("sink", "memory"), path);
  obs.trace_path = v.get_string("trace_path", obs.trace_path);
  obs.timeline_tick_ms =
      number_in(v, path, "timeline_tick_ms", obs.timeline_tick_ms, 0.0, 1e12);
  obs.timeline_views = v.get_bool("timeline_views", obs.timeline_views);
  if (obs.streaming() && obs.trace_path.empty()) {
    fail(path + ".trace_path", "required for streaming sinks");
  }
  return obs;
}

}  // namespace bftsim

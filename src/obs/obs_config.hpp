// Observability configuration: which trace sink a run writes through,
// where streaming sinks put their output, and whether the run-timeline
// collector samples engine state (queue depth, in-flight messages, timer
// population, per-node views) at a fixed simulated-time tick.
//
// Everything here is off by default and costs nothing when off: with the
// defaults a run behaves exactly like the pre-observability engine (the
// in-memory Trace, gated on record_trace), which is what keeps the
// recorded goldens replayable. See docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/json.hpp"

namespace bftsim {

/// Where trace records go when record_trace is set.
enum class TraceSinkKind : std::uint8_t {
  kMemory,  ///< accumulate in RunResult::trace (historical behavior)
  kJsonl,   ///< stream one JSON object per record to obs.trace_path
  kBinary,  ///< stream the compact binary format to obs.trace_path
};

/// Human-readable name of a sink kind ("memory", "jsonl", "binary").
[[nodiscard]] std::string_view to_string(TraceSinkKind kind) noexcept;

/// Observability knobs of one run. Carried inside SimConfig as `obs`.
struct ObsConfig {
  TraceSinkKind sink = TraceSinkKind::kMemory;
  /// Output file for the streaming sinks; must be set when sink != memory.
  std::string trace_path;

  /// Timeline sampling period in simulated milliseconds; 0 disables the
  /// collector. Sampling reads existing engine counters only — it never
  /// schedules events or consumes randomness, so enabling it does not
  /// change a run's trace or metrics.
  double timeline_tick_ms = 0.0;
  /// Include the per-node view vector in every timeline sample (cheap for
  /// protocol-scale n; disable for very large fleets).
  bool timeline_views = true;

  [[nodiscard]] bool streaming() const noexcept {
    return sink != TraceSinkKind::kMemory;
  }
  [[nodiscard]] bool timeline_enabled() const noexcept {
    return timeline_tick_ms > 0.0;
  }
  /// True when any non-default observability feature is on.
  [[nodiscard]] bool enabled() const noexcept {
    return streaming() || timeline_enabled() || !timeline_views;
  }

  /// Throws std::invalid_argument when inconsistent (streaming sink with
  /// no trace_path).
  void validate() const;

  [[nodiscard]] json::Value to_json() const;
  /// Strict parse: unknown keys / bad values throw a single-line error
  /// naming the JSON path (rooted at `path`).
  [[nodiscard]] static ObsConfig from_json(const json::Value& v,
                                           const std::string& path = "$.obs");
};

}  // namespace bftsim

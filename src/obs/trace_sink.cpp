// Streaming trace sink implementations and the format-autodetecting
// reader. Both on-disk formats are record-streams with no trailing footer,
// so a crashed run leaves a readable prefix; the fingerprint lives in the
// sink (and in RunResult), not in the file.
#include "obs/trace_sink.hpp"

#include <cstdio>
#include <stdexcept>

#include "core/json.hpp"

namespace bftsim::obs {

namespace {

// Binary format: 8-byte magic, then self-delimiting frames.
constexpr char kBinaryMagic[8] = {'B', 'F', 'T', 'R', 'A', 'C', 'E', '\x01'};
constexpr std::uint8_t kFrameRecord = 0x01;
constexpr std::uint8_t kFrameString = 0x02;
constexpr std::uint32_t kMaxTypeStringLen = 1u << 16;

void append_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

[[nodiscard]] bool read_u8(std::istream& in, std::uint8_t& v) {
  const int c = in.get();
  if (c == std::char_traits<char>::eof()) return false;
  v = static_cast<std::uint8_t>(c);
  return true;
}

[[nodiscard]] bool read_u32(std::istream& in, std::uint32_t& v) {
  std::uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    std::uint8_t byte = 0;
    if (!read_u8(in, byte)) return false;
    out |= static_cast<std::uint32_t>(byte) << (8 * i);
  }
  v = out;
  return true;
}

[[nodiscard]] bool read_u64(std::istream& in, std::uint64_t& v) {
  std::uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    std::uint8_t byte = 0;
    if (!read_u8(in, byte)) return false;
    out |= static_cast<std::uint64_t>(byte) << (8 * i);
  }
  v = out;
  return true;
}

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_hex64(std::string& out, std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "\"%016llx\"",
                static_cast<unsigned long long>(v));
  out += buf;
}

[[nodiscard]] TraceKind kind_from_name(const std::string& name,
                                       const std::string& where) {
  for (const TraceKind kind :
       {TraceKind::kSend, TraceKind::kDeliver, TraceKind::kDrop,
        TraceKind::kTimerFire, TraceKind::kDecide, TraceKind::kViewChange,
        TraceKind::kCorrupt}) {
    if (name == to_string(kind)) return kind;
  }
  throw std::runtime_error(where + ": unknown trace kind \"" + name + "\"");
}

[[nodiscard]] std::uint64_t parse_hex64(const std::string& s,
                                        const std::string& where) {
  if (s.empty() || s.size() > 16) {
    throw std::runtime_error(where + ": bad hex field \"" + s + "\"");
  }
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      throw std::runtime_error(where + ": bad hex field \"" + s + "\"");
    }
  }
  return v;
}

[[nodiscard]] std::ofstream open_for_write(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("trace sink: cannot open " + path);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// JsonlTraceSink
// ---------------------------------------------------------------------------

JsonlTraceSink::JsonlTraceSink(const std::string& path)
    : path_(path), out_(open_for_write(path)) {}

void JsonlTraceSink::write(const TraceRecord& rec) {
  line_.clear();
  line_ += "{\"kind\":";
  append_json_string(line_, to_string(rec.kind));
  line_ += ",\"at\":";
  line_ += std::to_string(rec.at);
  line_ += ",\"a\":";
  line_ += std::to_string(rec.a);
  line_ += ",\"b\":";
  line_ += std::to_string(rec.b);
  line_ += ",\"type\":";
  append_json_string(line_, rec.type);
  line_ += ",\"digest\":";
  append_hex64(line_, rec.digest);
  line_ += ",\"msg\":";
  line_ += std::to_string(rec.msg_id);
  line_ += ",\"view\":";
  line_ += std::to_string(rec.view);
  line_ += ",\"value\":";
  append_hex64(line_, rec.value);
  line_ += "}\n";
  out_.write(line_.data(), static_cast<std::streamsize>(line_.size()));
}

void JsonlTraceSink::flush() {
  out_.flush();
  if (!out_) throw std::runtime_error("trace sink: write failed: " + path_);
}

// ---------------------------------------------------------------------------
// BinaryTraceSink
// ---------------------------------------------------------------------------

BinaryTraceSink::BinaryTraceSink(const std::string& path)
    : path_(path), out_(open_for_write(path)) {
  out_.write(kBinaryMagic, sizeof kBinaryMagic);
}

std::uint32_t BinaryTraceSink::intern(const std::string& type) {
  // Linear scan: a run uses a handful of distinct payload types, and the
  // hit is almost always among the first few entries.
  for (std::uint32_t i = 0; i < strings_.size(); ++i) {
    if (strings_[i] == type) return i;
  }
  const auto id = static_cast<std::uint32_t>(strings_.size());
  strings_.push_back(type);
  std::string frame;
  append_u8(frame, kFrameString);
  append_u32(frame, id);
  append_u32(frame, static_cast<std::uint32_t>(type.size()));
  frame += type;
  out_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  return id;
}

void BinaryTraceSink::write(const TraceRecord& rec) {
  const std::uint32_t type_id = intern(rec.type);
  std::string frame;
  frame.reserve(54);
  append_u8(frame, kFrameRecord);
  append_u8(frame, static_cast<std::uint8_t>(rec.kind));
  append_u64(frame, static_cast<std::uint64_t>(rec.at));
  append_u32(frame, rec.a);
  append_u32(frame, rec.b);
  append_u32(frame, type_id);
  append_u64(frame, rec.digest);
  append_u64(frame, rec.msg_id);
  append_u64(frame, rec.view);
  append_u64(frame, rec.value);
  out_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
}

void BinaryTraceSink::flush() {
  out_.flush();
  if (!out_) throw std::runtime_error("trace sink: write failed: " + path_);
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

std::unique_ptr<TraceSink> make_trace_sink(const ObsConfig& obs,
                                           Trace& memory_target) {
  switch (obs.sink) {
    case TraceSinkKind::kMemory:
      return std::make_unique<MemoryTraceSink>(memory_target);
    case TraceSinkKind::kJsonl:
      return std::make_unique<JsonlTraceSink>(obs.trace_path);
    case TraceSinkKind::kBinary:
      return std::make_unique<BinaryTraceSink>(obs.trace_path);
  }
  throw std::runtime_error("trace sink: unknown sink kind");
}

// ---------------------------------------------------------------------------
// TraceReader
// ---------------------------------------------------------------------------

TraceReader::TraceReader(const std::string& path)
    : path_(path), in_(path, std::ios::binary) {
  if (!in_) throw std::runtime_error("trace reader: cannot open " + path);
  char magic[sizeof kBinaryMagic] = {};
  in_.read(magic, sizeof magic);
  if (in_.gcount() == sizeof magic &&
      std::char_traits<char>::compare(magic, kBinaryMagic, sizeof magic) == 0) {
    format_ = TraceSinkKind::kBinary;
    return;
  }
  // Not the binary magic: treat as JSONL and restart from the beginning.
  in_.clear();
  in_.seekg(0);
  format_ = TraceSinkKind::kJsonl;
}

bool TraceReader::next(TraceRecord& out) {
  const bool ok = format_ == TraceSinkKind::kBinary ? next_binary(out)
                                                    : next_jsonl(out);
  if (ok) ++record_index_;
  return ok;
}

bool TraceReader::next_jsonl(TraceRecord& out) {
  std::string line;
  for (;;) {
    if (!std::getline(in_, line)) return false;
    if (!line.empty()) break;  // tolerate blank lines
  }
  const std::string where =
      path_ + ": record " + std::to_string(record_index_);
  json::Value v;
  try {
    v = json::parse(line);
  } catch (const json::Error& e) {
    throw std::runtime_error(where + ": " + e.what());
  }
  if (!v.is_object()) throw std::runtime_error(where + ": not an object");
  out = TraceRecord{};
  out.kind = kind_from_name(v.get_string("kind", ""), where);
  out.at = static_cast<Time>(v.get_int("at", 0));
  out.a = static_cast<NodeId>(
      static_cast<std::uint32_t>(v.get_int("a", kNoNode)));
  out.b = static_cast<NodeId>(
      static_cast<std::uint32_t>(v.get_int("b", kNoNode)));
  out.type = v.get_string("type", "");
  out.digest = parse_hex64(v.get_string("digest", "0"), where);
  out.msg_id = static_cast<std::uint64_t>(v.get_int("msg", 0));
  out.view = static_cast<View>(v.get_int("view", 0));
  out.value = parse_hex64(v.get_string("value", "0"), where);
  return true;
}

bool TraceReader::next_binary(TraceRecord& out) {
  const std::string where =
      path_ + ": record " + std::to_string(record_index_);
  for (;;) {
    std::uint8_t tag = 0;
    if (!read_u8(in_, tag)) return false;  // clean EOF
    if (tag == kFrameString) {
      std::uint32_t id = 0;
      std::uint32_t len = 0;
      if (!read_u32(in_, id) || !read_u32(in_, len)) {
        throw std::runtime_error(where + ": truncated string frame");
      }
      if (id != strings_.size() || len > kMaxTypeStringLen) {
        throw std::runtime_error(where + ": corrupt string table");
      }
      std::string s(len, '\0');
      in_.read(s.data(), static_cast<std::streamsize>(len));
      if (static_cast<std::uint32_t>(in_.gcount()) != len) {
        throw std::runtime_error(where + ": truncated string frame");
      }
      strings_.push_back(std::move(s));
      continue;
    }
    if (tag != kFrameRecord) {
      throw std::runtime_error(where + ": unknown frame tag");
    }
    std::uint8_t kind = 0;
    std::uint64_t at = 0;
    std::uint32_t a = 0, b = 0, type_id = 0;
    std::uint64_t digest = 0, msg_id = 0, view = 0, value = 0;
    if (!read_u8(in_, kind) || !read_u64(in_, at) || !read_u32(in_, a) ||
        !read_u32(in_, b) || !read_u32(in_, type_id) ||
        !read_u64(in_, digest) || !read_u64(in_, msg_id) ||
        !read_u64(in_, view) || !read_u64(in_, value)) {
      throw std::runtime_error(where + ": truncated record");
    }
    if (kind > static_cast<std::uint8_t>(TraceKind::kCorrupt)) {
      throw std::runtime_error(where + ": bad record kind");
    }
    if (type_id >= strings_.size()) {
      throw std::runtime_error(where + ": dangling string id");
    }
    out = TraceRecord{};
    out.kind = static_cast<TraceKind>(kind);
    out.at = static_cast<Time>(at);
    out.a = a;
    out.b = b;
    out.type = strings_[type_id];
    out.digest = digest;
    out.msg_id = msg_id;
    out.view = view;
    out.value = value;
    return true;
  }
}

Trace read_trace_file(const std::string& path) {
  TraceReader reader(path);
  Trace trace;
  TraceRecord rec;
  while (reader.next(rec)) trace.add(std::move(rec));
  return trace;
}

}  // namespace bftsim::obs

#include "obs/timeline.hpp"

#include <stdexcept>
#include <utility>

namespace bftsim::obs {

json::Value TimelineSample::to_json() const {
  json::Object o;
  o["at_us"] = static_cast<double>(at);
  o["events_processed"] = static_cast<double>(events_processed);
  o["queue_depth"] = static_cast<double>(queue_depth);
  o["in_flight_messages"] = static_cast<double>(in_flight_messages);
  o["timers_pending"] = static_cast<double>(timers_pending);
  o["messages_sent"] = static_cast<double>(messages_sent);
  o["messages_delivered"] = static_cast<double>(messages_delivered);
  o["min_view"] = static_cast<double>(min_view);
  o["max_view"] = static_cast<double>(max_view);
  if (!node_views.empty()) {
    json::Array views;
    views.reserve(node_views.size());
    for (const View v : node_views) views.push_back(static_cast<double>(v));
    o["node_views"] = std::move(views);
  }
  return json::Value{std::move(o)};
}

Timeline::Timeline(Time tick, bool record_views)
    : tick_(tick), next_at_(tick), record_views_(record_views) {
  if (tick <= 0) throw std::invalid_argument("timeline tick must be positive");
}

void Timeline::add(TimelineSample sample) {
  // Advance past the sample's instant so a burst of events at one time
  // yields one sample, and quiet stretches are skipped in O(1).
  next_at_ = (sample.at / tick_ + 1) * tick_;
  samples_.push_back(std::move(sample));
}

void Timeline::add_final(TimelineSample sample) {
  // A tick sample can land at the same instant the run ends; the final
  // state supersedes it rather than duplicating the timestamp.
  if (!samples_.empty() && samples_.back().at == sample.at) {
    samples_.back() = std::move(sample);
    return;
  }
  samples_.push_back(std::move(sample));
}

json::Value Timeline::to_json() const {
  json::Object o;
  o["tick_us"] = static_cast<double>(tick_);
  json::Array rows;
  rows.reserve(samples_.size());
  for (const auto& s : samples_) rows.push_back(s.to_json());
  o["samples"] = std::move(rows);
  return json::Value{std::move(o)};
}

}  // namespace bftsim::obs

// Lightweight profiling scopes for the engine hot path.
//
// A ProfileScope measures wall time spent inside one engine component
// (event pop, delay sampling, attacker hooks, protocol handlers, fault
// hooks) and accumulates it into a ProfileBreakdown carried on RunResult.
//
// The whole facility compiles to nothing unless the build sets
// BFTSIM_PROFILING (cmake -DBFTSIM_PROFILING=ON): the instrumentation
// macro expands to a no-op statement, so the default build's hot path is
// byte-for-byte the uninstrumented one. Profiling measures real time and
// is for finding where a run spends cycles — it never affects simulated
// time or determinism.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string_view>

#include "core/json.hpp"

namespace bftsim::obs {

/// Engine components the hot path is broken down into.
enum class ProfileComponent : std::uint8_t {
  kEventPop,      ///< event-queue pop + bookkeeping
  kDelaySample,   ///< network delay sampling
  kAttackerHook,  ///< attacker on_send/on_deliver interception
  kOnMessage,     ///< protocol on_message handlers
  kOnTimer,       ///< protocol on_timer handlers
  kFaultHook,     ///< fault-layer hooks
  kCount,
};

inline constexpr std::size_t kProfileComponentCount =
    static_cast<std::size_t>(ProfileComponent::kCount);

/// Human-readable name of a profile component.
[[nodiscard]] std::string_view to_string(ProfileComponent c) noexcept;

/// Per-component accumulated wall time and call counts for one run (or,
/// after merge(), for a set of runs).
struct ProfileBreakdown {
  std::array<std::uint64_t, kProfileComponentCount> total_ns{};
  std::array<std::uint64_t, kProfileComponentCount> calls{};

  void record(ProfileComponent c, std::uint64_t ns) noexcept {
    const auto i = static_cast<std::size_t>(c);
    total_ns[i] += ns;
    ++calls[i];
  }

  /// True when nothing has been recorded (profiling off or unused).
  [[nodiscard]] bool empty() const noexcept {
    for (const auto n : calls) {
      if (n != 0) return false;
    }
    return true;
  }

  void merge(const ProfileBreakdown& other) noexcept {
    for (std::size_t i = 0; i < kProfileComponentCount; ++i) {
      total_ns[i] += other.total_ns[i];
      calls[i] += other.calls[i];
    }
  }

  [[nodiscard]] json::Value to_json() const;
};

/// RAII timer: measures its own lifetime and records it into a breakdown.
class ProfileScope {
 public:
  ProfileScope(ProfileBreakdown& breakdown, ProfileComponent component) noexcept
      : breakdown_(breakdown),
        component_(component),
        start_(std::chrono::steady_clock::now()) {}

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

  ~ProfileScope() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    breakdown_.record(
        component_,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
  }

 private:
  ProfileBreakdown& breakdown_;
  ProfileComponent component_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bftsim::obs

// Instrumentation seam. The default build defines it away entirely so the
// hot path carries no profiling cost (not even a branch).
#if defined(BFTSIM_PROFILING)
#define BFTSIM_PROFILE_CONCAT_INNER(a, b) a##b
#define BFTSIM_PROFILE_CONCAT(a, b) BFTSIM_PROFILE_CONCAT_INNER(a, b)
#define BFTSIM_PROFILE_SCOPE(breakdown, component)                      \
  ::bftsim::obs::ProfileScope BFTSIM_PROFILE_CONCAT(profile_scope_,     \
                                                    __LINE__)(          \
      (breakdown), (component))
#else
#define BFTSIM_PROFILE_SCOPE(breakdown, component) ((void)0)
#endif

// The global-attacker API (the attacker module of §III-A5 and §III-C).
//
// Unlike simulators that instantiate individual Byzantine nodes, this
// simulator models an *abstracted global attacker* that every message
// traverses before its delivery event is scheduled. The attacker may
// observe, delay, drop or replace messages, inject new ones, and corrupt
// nodes during execution (adaptive attacks) subject to the corruption
// budget f. Because interception happens before delivery scheduling, every
// attacker is rushing by construction.
//
// Corruption semantics (models the standard adaptive adversary without
// erasures): corrupting a node at time t gives the attacker that node's
// future behavior — messages *sent after t* can be dropped/forged freely
// and incoming messages are swallowed — but messages the node sent while
// still honest are already in flight and will be delivered. ADD+ v3's
// prepare round defeats the rushing-adaptive attack precisely because of
// this distinction (see src/protocols/add/).
#pragma once

#include <cstdint>

#include "core/event.hpp"
#include "core/rng.hpp"
#include "core/types.hpp"
#include "crypto/signature.hpp"
#include "net/message.hpp"

namespace bftsim {

/// A message traversing the attacker. The attacker may rewrite `delay`
/// (timing attacks) or `msg.payload` (modification attacks).
struct MessageInFlight {
  Message msg;
  Time delay = 0;  ///< network-assigned delay; attacker may alter
};

/// Attacker's verdict for one intercepted message.
enum class Disposition : std::uint8_t { kDeliver, kDrop };

/// The attacker's handle to the simulator, implemented by the controller.
class AttackerContext {
 public:
  virtual ~AttackerContext() = default;

  [[nodiscard]] virtual std::uint32_t n() const noexcept = 0;
  /// Corruption budget (maximum number of Byzantine nodes).
  [[nodiscard]] virtual std::uint32_t f() const noexcept = 0;
  [[nodiscard]] virtual Time now() const noexcept = 0;

  /// Injects a forged/duplicated message, delivered after `delay`.
  virtual void inject(Message msg, Time delay) = 0;

  /// Injects a *duplicate* of an observed message (flooding attacks).
  /// Identical to inject() on the wire; the distinction only feeds the
  /// per-run attacker activity counters, so the default forwards.
  virtual void inject_duplicate(Message msg, Time delay) {
    inject(std::move(msg), delay);
  }

  /// Adaptively corrupts `node`. Returns false (and does nothing) when the
  /// budget f is exhausted or the node is already corrupt.
  virtual bool corrupt(NodeId node) = 0;
  [[nodiscard]] virtual bool is_corrupt(NodeId node) const noexcept = 0;
  [[nodiscard]] virtual std::uint32_t corrupted_count() const noexcept = 0;

  /// Signs `digest` with `node`'s key. Corrupting a node yields its key
  /// material, so this succeeds only for corrupt nodes; for honest nodes an
  /// invalid signature is returned (honest receivers will reject it), which
  /// models unforgeability.
  [[nodiscard]] virtual Signature sign_as(NodeId node, std::uint64_t digest) = 0;

  /// Registers an attacker time event.
  virtual TimerId set_timer(Time delay, std::uint64_t tag) = 0;

  /// Attacker's private randomness stream.
  [[nodiscard]] virtual Rng& rng() noexcept = 0;
};

/// Base class for attack implementations (the paper's two-function
/// interface: attack() and onTimeEvent()).
class Attacker {
 public:
  Attacker() = default;
  Attacker(const Attacker&) = delete;
  Attacker& operator=(const Attacker&) = delete;
  virtual ~Attacker() = default;

  /// Called once at simulated time 0.
  virtual void on_start(AttackerContext& /*ctx*/) {}

  /// Called for every message after the network assigned its delay and
  /// before its delivery event is scheduled (rushing by construction).
  virtual Disposition attack(MessageInFlight& in_flight, AttackerContext& ctx) = 0;

  /// Called when an attacker-registered time event fires.
  virtual void on_timer(const TimerEvent& /*ev*/, AttackerContext& /*ctx*/) {}

  /// True when attack() is a guaranteed no-op (delivers every message
  /// unmodified and never touches the context). Lets the controller skip
  /// materializing a Message per transmission on attack-free runs, and
  /// gates the windowed-parallel driver (which cannot order a global
  /// attacker's observations deterministically across lanes).
  [[nodiscard]] virtual bool is_passive() const noexcept { return false; }
};

/// The no-op attacker used when no attack scenario is configured.
class NullAttacker final : public Attacker {
 public:
  Disposition attack(MessageInFlight&, AttackerContext&) override {
    return Disposition::kDeliver;
  }
  bool is_passive() const noexcept override { return true; }
};

}  // namespace bftsim

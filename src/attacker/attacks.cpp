#include "attacker/attacks.hpp"

#include "attacker/registry.hpp"

#include <stdexcept>

#include "core/log.hpp"
#include "protocols/add/add.hpp"
#include "protocols/pbft/pbft.hpp"
#include "protocols/synchotstuff/synchotstuff.hpp"

namespace bftsim {

// --- partition ---------------------------------------------------------------

PartitionAttack::PartitionAttack(std::uint32_t subnets, Time resolve_at,
                                 bool drop_mode)
    : subnets_(subnets == 0 ? 2 : subnets),
      resolve_at_(resolve_at),
      drop_mode_(drop_mode) {}

Disposition PartitionAttack::attack(MessageInFlight& in_flight,
                                    AttackerContext& ctx) {
  if (ctx.now() >= resolve_at_) return Disposition::kDeliver;
  const Message& msg = in_flight.msg;
  if (group_of(msg.src) == group_of(msg.dst)) return Disposition::kDeliver;
  if (drop_mode_) return Disposition::kDrop;
  // Delay mode: hold the message back until the partition resolves.
  in_flight.delay += resolve_at_ - ctx.now();
  return Disposition::kDeliver;
}

// --- ADD+ static -------------------------------------------------------------

AddStaticAttack::AddStaticAttack(bool deterministic_leaders)
    : deterministic_leaders_(deterministic_leaders) {}

void AddStaticAttack::on_start(AttackerContext& ctx) {
  const std::uint32_t budget = ctx.f();
  if (deterministic_leaders_) {
    // ADD+ v1's leader of iteration k is k mod n: fail-stop the first f
    // leaders before the protocol starts.
    for (NodeId node = 0; node < budget; ++node) ctx.corrupt(node);
    return;
  }
  // VRF election (v2/v3): the schedule is unpredictable; pick f nodes at
  // random and hope they get elected.
  std::vector<NodeId> ids(ctx.n());
  for (NodeId i = 0; i < ctx.n(); ++i) ids[i] = i;
  for (std::uint32_t i = 0; i + 1 < ctx.n(); ++i) {
    const auto j = i + static_cast<std::uint32_t>(ctx.rng().next_below(ctx.n() - i));
    std::swap(ids[i], ids[j]);
  }
  for (std::uint32_t i = 0; i < budget && i < ids.size(); ++i) ctx.corrupt(ids[i]);
}

Disposition AddStaticAttack::attack(MessageInFlight& in_flight,
                                    AttackerContext& ctx) {
  // Corrupt nodes are silenced entirely (they were Byzantine from t = 0).
  return ctx.is_corrupt(in_flight.msg.src) ? Disposition::kDrop
                                           : Disposition::kDeliver;
}

// --- ADD+ rushing adaptive ----------------------------------------------------

AddAdaptiveAttack::AddAdaptiveAttack(Time lambda, int iteration_rounds)
    : lambda_(lambda),
      iteration_duration_(lambda * iteration_rounds) {}

void AddAdaptiveAttack::on_start(AttackerContext& ctx) {
  // Strike each iteration half a round after the credentials are revealed:
  // late enough to have observed every reveal, early enough to silence the
  // winner's *next* round (v2's proposal). For v3 the reveal and the
  // proposal are the same message, so the strike always comes too late —
  // exactly the property the prepare round buys.
  ctx.set_timer(lambda_ / 2, 0);
}

Disposition AddAdaptiveAttack::attack(MessageInFlight& in_flight,
                                      AttackerContext& ctx) {
  const Message& msg = in_flight.msg;
  // Rushing observation: learn credentials before they are delivered.
  if (const auto* elect = msg.as<add::AddElect>()) {
    const auto it = observed_min_.find(elect->iter);
    if (it == observed_min_.end() || elect->credential.value < it->second.first) {
      observed_min_[elect->iter] = {elect->credential.value, msg.src};
    }
  } else if (const auto* prop = msg.as<add::AddPropose>()) {
    if (prop->has_credential) {
      const auto it = observed_min_.find(prop->iter);
      if (it == observed_min_.end() || prop->credential.value < it->second.first) {
        observed_min_[prop->iter] = {prop->credential.value, msg.src};
      }
    }
  }
  // Corrupt senders are silenced going forward; their pre-corruption
  // messages were already scheduled and are unaffected.
  return ctx.is_corrupt(msg.src) ? Disposition::kDrop : Disposition::kDeliver;
}

void AddAdaptiveAttack::on_timer(const TimerEvent& ev, AttackerContext& ctx) {
  const std::uint64_t iter = ev.tag;
  const auto it = observed_min_.find(iter);
  if (it != observed_min_.end() && !ctx.is_corrupt(it->second.second)) {
    ctx.corrupt(it->second.second);  // may fail once the budget is spent
  }
  // Re-arm for the next iteration's reveal.
  const Time next_strike =
      static_cast<Time>(iter + 1) * iteration_duration_ + lambda_ / 2;
  ctx.set_timer(next_strike - ctx.now(), iter + 1);
}

// --- PBFT equivocation ----------------------------------------------------------

void PbftEquivocationAttack::on_start(AttackerContext& ctx) {
  if (!ctx.corrupt(victim_)) return;  // no budget: attack degenerates to noop
  // Two conflicting proposals for (view 0, seq 0), both genuinely signed
  // with the corrupted leader's key.
  const Value value_a = hash_words({0xE0ULL, 0ULL});
  const Value value_b = hash_words({0xE1ULL, 1ULL});
  for (NodeId dst = 0; dst < ctx.n(); ++dst) {
    if (dst == victim_) continue;
    const Value value = dst % 2 == 0 ? value_a : value_b;
    const Signature sig =
        ctx.sign_as(victim_, hash_words({0x5050ULL, 0ULL, 0ULL, value}));
    Message msg;
    msg.src = victim_;
    msg.dst = dst;
    msg.payload = make_payload<pbft::PrePrepare>(0, 0, value, sig);
    ctx.inject(std::move(msg), /*delay=*/from_ms(1.0) + Time{dst});
  }
}

Disposition PbftEquivocationAttack::attack(MessageInFlight& in_flight,
                                           AttackerContext& ctx) {
  // The victim's honest behaviour is suppressed; the injected equivocating
  // proposals replace it.
  return ctx.is_corrupt(in_flight.msg.src) ? Disposition::kDrop
                                           : Disposition::kDeliver;
}

// --- Sync HotStuff equivocation ---------------------------------------------------

void SyncHotStuffEquivocationAttack::on_start(AttackerContext& ctx) {
  if (!ctx.corrupt(victim_)) return;
  const Value value_a = hash_words({0xEAULL, 0ULL});
  const Value value_b = hash_words({0xEBULL, 1ULL});
  for (NodeId dst = 0; dst < ctx.n(); ++dst) {
    if (dst == victim_) continue;
    const Value value = dst % 2 == 0 ? value_a : value_b;
    const Signature sig =
        ctx.sign_as(victim_, hash_words({0x5348ULL, 0ULL, 0ULL, value}));
    Message msg;
    msg.src = victim_;
    msg.dst = dst;
    msg.payload = make_payload<synchotstuff::ShsProposal>(0, 0, value, sig);
    ctx.inject(std::move(msg), from_ms(1.0) + Time{dst});
  }
}

Disposition SyncHotStuffEquivocationAttack::attack(MessageInFlight& in_flight,
                                                   AttackerContext& ctx) {
  return ctx.is_corrupt(in_flight.msg.src) ? Disposition::kDrop
                                           : Disposition::kDeliver;
}

// --- registry + factory -------------------------------------------------------

AttackRegistry& AttackRegistry::instance() {
  static AttackRegistry registry = [] {
    AttackRegistry r;
    register_builtin_attacks(r);
    return r;
  }();
  return registry;
}

void AttackRegistry::add(std::string name, AttackFactory factory) {
  if (contains(name)) {
    throw std::invalid_argument("attack already registered: " + name);
  }
  attacks_.emplace_back(std::move(name), std::move(factory));
}

bool AttackRegistry::contains(const std::string& name) const noexcept {
  for (const auto& [registered, factory] : attacks_) {
    if (registered == name) return true;
  }
  return false;
}

std::unique_ptr<Attacker> AttackRegistry::make(const std::string& name,
                                               const SimConfig& cfg) const {
  for (const auto& [registered, factory] : attacks_) {
    if (registered == name) return factory(cfg);
  }
  throw std::invalid_argument("unknown attack: " + name);
}

std::vector<std::string> AttackRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(attacks_.size());
  for (const auto& [name, factory] : attacks_) out.push_back(name);
  return out;
}

void register_builtin_attacks(AttackRegistry& registry) {
  if (registry.contains("partition")) return;  // already registered

  const auto get_num = [](const SimConfig& cfg, const std::string& key,
                          double fallback) {
    return cfg.attack_params.is_object() ? cfg.attack_params.get_number(key, fallback)
                                         : fallback;
  };
  const auto get_str = [](const SimConfig& cfg, const std::string& key,
                          const std::string& fallback) {
    return cfg.attack_params.is_object() ? cfg.attack_params.get_string(key, fallback)
                                         : fallback;
  };

  registry.add("partition", [=](const SimConfig& cfg) -> std::unique_ptr<Attacker> {
    const auto subnets = static_cast<std::uint32_t>(get_num(cfg, "subnets", 2));
    const Time resolve_at = from_ms(get_num(cfg, "resolve_ms", 30'000.0));
    const bool drop_mode = get_str(cfg, "mode", "drop") == "drop";
    return std::make_unique<PartitionAttack>(subnets, resolve_at, drop_mode);
  });
  registry.add("add-static", [](const SimConfig& cfg) -> std::unique_ptr<Attacker> {
    return std::make_unique<AddStaticAttack>(cfg.protocol == "addv1");
  });
  registry.add("add-adaptive", [](const SimConfig& cfg) -> std::unique_ptr<Attacker> {
    const int rounds = cfg.protocol == "addv2" ? 4 : 3;
    return std::make_unique<AddAdaptiveAttack>(from_ms(cfg.lambda_ms), rounds);
  });
  registry.add("pbft-equivocation", [](const SimConfig&) {
    return std::make_unique<PbftEquivocationAttack>();
  });
  registry.add("sync-hotstuff-equivocation", [](const SimConfig&) {
    return std::make_unique<SyncHotStuffEquivocationAttack>();
  });
}

std::unique_ptr<Attacker> make_attacker(const SimConfig& cfg) {
  if (cfg.attack.empty() || cfg.attack == "none") {
    return std::make_unique<NullAttacker>();
  }
  return AttackRegistry::instance().make(cfg.attack, cfg);
}

}  // namespace bftsim

#include "attacker/attacks.hpp"

#include "attacker/registry.hpp"

#include <stdexcept>

#include "core/log.hpp"
#include "protocols/add/add.hpp"
#include "protocols/pbft/pbft.hpp"
#include "protocols/synchotstuff/synchotstuff.hpp"

namespace bftsim {

// --- partition ---------------------------------------------------------------

PartitionAttack::PartitionAttack(std::uint32_t subnets, Time resolve_at,
                                 bool drop_mode)
    : subnets_(subnets == 0 ? 2 : subnets),
      resolve_at_(resolve_at),
      drop_mode_(drop_mode) {}

Disposition PartitionAttack::attack(MessageInFlight& in_flight,
                                    AttackerContext& ctx) {
  if (ctx.now() >= resolve_at_) return Disposition::kDeliver;
  const Message& msg = in_flight.msg;
  if (group_of(msg.src) == group_of(msg.dst)) return Disposition::kDeliver;
  if (drop_mode_) return Disposition::kDrop;
  // Delay mode: hold the message back until the partition resolves.
  in_flight.delay += resolve_at_ - ctx.now();
  return Disposition::kDeliver;
}

// --- ADD+ static -------------------------------------------------------------

AddStaticAttack::AddStaticAttack(bool deterministic_leaders)
    : deterministic_leaders_(deterministic_leaders) {}

void AddStaticAttack::on_start(AttackerContext& ctx) {
  const std::uint32_t budget = ctx.f();
  if (deterministic_leaders_) {
    // ADD+ v1's leader of iteration k is k mod n: fail-stop the first f
    // leaders before the protocol starts.
    for (NodeId node = 0; node < budget; ++node) ctx.corrupt(node);
    return;
  }
  // VRF election (v2/v3): the schedule is unpredictable; pick f nodes at
  // random and hope they get elected.
  std::vector<NodeId> ids(ctx.n());
  for (NodeId i = 0; i < ctx.n(); ++i) ids[i] = i;
  for (std::uint32_t i = 0; i + 1 < ctx.n(); ++i) {
    const auto j = i + static_cast<std::uint32_t>(ctx.rng().next_below(ctx.n() - i));
    std::swap(ids[i], ids[j]);
  }
  for (std::uint32_t i = 0; i < budget && i < ids.size(); ++i) ctx.corrupt(ids[i]);
}

Disposition AddStaticAttack::attack(MessageInFlight& in_flight,
                                    AttackerContext& ctx) {
  // Corrupt nodes are silenced entirely (they were Byzantine from t = 0).
  return ctx.is_corrupt(in_flight.msg.src) ? Disposition::kDrop
                                           : Disposition::kDeliver;
}

// --- ADD+ rushing adaptive ----------------------------------------------------

AddAdaptiveAttack::AddAdaptiveAttack(Time lambda, int iteration_rounds)
    : lambda_(lambda),
      iteration_duration_(lambda * iteration_rounds) {}

void AddAdaptiveAttack::on_start(AttackerContext& ctx) {
  // Strike each iteration half a round after the credentials are revealed:
  // late enough to have observed every reveal, early enough to silence the
  // winner's *next* round (v2's proposal). For v3 the reveal and the
  // proposal are the same message, so the strike always comes too late —
  // exactly the property the prepare round buys.
  ctx.set_timer(lambda_ / 2, 0);
}

Disposition AddAdaptiveAttack::attack(MessageInFlight& in_flight,
                                      AttackerContext& ctx) {
  const Message& msg = in_flight.msg;
  // Rushing observation: learn credentials before they are delivered.
  if (const auto* elect = msg.as<add::AddElect>()) {
    const auto it = observed_min_.find(elect->iter);
    if (it == observed_min_.end() || elect->credential.value < it->second.first) {
      observed_min_[elect->iter] = {elect->credential.value, msg.src};
    }
  } else if (const auto* prop = msg.as<add::AddPropose>()) {
    if (prop->has_credential) {
      const auto it = observed_min_.find(prop->iter);
      if (it == observed_min_.end() || prop->credential.value < it->second.first) {
        observed_min_[prop->iter] = {prop->credential.value, msg.src};
      }
    }
  }
  // Corrupt senders are silenced going forward; their pre-corruption
  // messages were already scheduled and are unaffected.
  return ctx.is_corrupt(msg.src) ? Disposition::kDrop : Disposition::kDeliver;
}

void AddAdaptiveAttack::on_timer(const TimerEvent& ev, AttackerContext& ctx) {
  const std::uint64_t iter = ev.tag;
  const auto it = observed_min_.find(iter);
  if (it != observed_min_.end() && !ctx.is_corrupt(it->second.second)) {
    ctx.corrupt(it->second.second);  // may fail once the budget is spent
  }
  // Re-arm for the next iteration's reveal.
  const Time next_strike =
      static_cast<Time>(iter + 1) * iteration_duration_ + lambda_ / 2;
  ctx.set_timer(next_strike - ctx.now(), iter + 1);
}

// --- PBFT equivocation ----------------------------------------------------------

void PbftEquivocationAttack::on_start(AttackerContext& ctx) {
  if (!ctx.corrupt(victim_)) return;  // no budget: attack degenerates to noop
  // Two conflicting proposals for (view 0, seq 0), both genuinely signed
  // with the corrupted leader's key.
  const Value value_a = hash_words({0xE0ULL, 0ULL});
  const Value value_b = hash_words({0xE1ULL, 1ULL});
  for (NodeId dst = 0; dst < ctx.n(); ++dst) {
    if (dst == victim_) continue;
    const Value value = dst % 2 == 0 ? value_a : value_b;
    const Signature sig =
        ctx.sign_as(victim_, hash_words({0x5050ULL, 0ULL, 0ULL, value}));
    Message msg;
    msg.src = victim_;
    msg.dst = dst;
    msg.payload = make_payload<pbft::PrePrepare>(0, 0, value, sig);
    ctx.inject(std::move(msg), /*delay=*/from_ms(1.0) + Time{dst});
  }
}

Disposition PbftEquivocationAttack::attack(MessageInFlight& in_flight,
                                           AttackerContext& ctx) {
  // The victim's honest behaviour is suppressed; the injected equivocating
  // proposals replace it.
  return ctx.is_corrupt(in_flight.msg.src) ? Disposition::kDrop
                                           : Disposition::kDeliver;
}

// --- Sync HotStuff equivocation ---------------------------------------------------

void SyncHotStuffEquivocationAttack::on_start(AttackerContext& ctx) {
  if (!ctx.corrupt(victim_)) return;
  const Value value_a = hash_words({0xEAULL, 0ULL});
  const Value value_b = hash_words({0xEBULL, 1ULL});
  for (NodeId dst = 0; dst < ctx.n(); ++dst) {
    if (dst == victim_) continue;
    const Value value = dst % 2 == 0 ? value_a : value_b;
    const Signature sig =
        ctx.sign_as(victim_, hash_words({0x5348ULL, 0ULL, 0ULL, value}));
    Message msg;
    msg.src = victim_;
    msg.dst = dst;
    msg.payload = make_payload<synchotstuff::ShsProposal>(0, 0, value, sig);
    ctx.inject(std::move(msg), from_ms(1.0) + Time{dst});
  }
}

Disposition SyncHotStuffEquivocationAttack::attack(MessageInFlight& in_flight,
                                                   AttackerContext& ctx) {
  return ctx.is_corrupt(in_flight.msg.src) ? Disposition::kDrop
                                           : Disposition::kDeliver;
}

// --- eclipse -----------------------------------------------------------------

EclipseAttack::EclipseAttack(NodeId victim, std::uint32_t keep, Time start,
                             Time end, bool drop_mode)
    : victim_(victim),
      keep_(keep),
      start_(start),
      end_(end),
      drop_mode_(drop_mode) {}

Disposition EclipseAttack::attack(MessageInFlight& in_flight,
                                  AttackerContext& ctx) {
  const Time now = ctx.now();
  if (now < start_ || now >= end_) return Disposition::kDeliver;
  const Message& msg = in_flight.msg;
  const bool src_victim = msg.src == victim_;
  const bool dst_victim = msg.dst == victim_;
  if (src_victim == dst_victim) return Disposition::kDeliver;  // neither side
  const NodeId peer = src_victim ? msg.dst : msg.src;
  if (allowed(peer)) return Disposition::kDeliver;
  if (drop_mode_) return Disposition::kDrop;
  // Delay mode: the message surfaces when the eclipse lifts.
  in_flight.delay += end_ - now;
  return Disposition::kDeliver;
}

// --- adaptive partition ------------------------------------------------------

AdaptivePartitionAttack::AdaptivePartitionAttack(std::uint32_t subnets,
                                                 Time period, Time resolve,
                                                 bool drop_mode)
    : subnets_(subnets < 2 ? 2 : subnets),
      period_(period < 1 ? 1 : period),
      resolve_(resolve),
      drop_mode_(drop_mode) {}

void AdaptivePartitionAttack::on_start(AttackerContext& ctx) {
  if (period_ < resolve_) ctx.set_timer(period_, 1);
}

Disposition AdaptivePartitionAttack::attack(MessageInFlight& in_flight,
                                            AttackerContext& ctx) {
  if (ctx.now() >= resolve_) return Disposition::kDeliver;
  const Message& msg = in_flight.msg;
  if (group_of(msg.src) == group_of(msg.dst)) return Disposition::kDeliver;
  if (drop_mode_) return Disposition::kDrop;
  in_flight.delay += resolve_ - ctx.now();
  return Disposition::kDeliver;
}

void AdaptivePartitionAttack::on_timer(const TimerEvent& ev,
                                       AttackerContext& ctx) {
  // Re-cut: re-draw every node's group from (node, epoch). The epoch equals
  // the timer tag, so the cut sequence is a pure function of (period, resolve).
  epoch_ = ev.tag;
  const Time next = static_cast<Time>(ev.tag + 1) * period_;
  if (next < resolve_) ctx.set_timer(next - ctx.now(), ev.tag + 1);
}

// --- targeted delay scheduling -----------------------------------------------

DelayScheduleAttack::DelayScheduleAttack(std::string type, bool stall,
                                         Time amount, Time start, Time end,
                                         Time min_delay, Time max_delay)
    : type_(std::move(type)),
      stall_(stall),
      amount_(amount),
      start_(start),
      end_(end),
      min_delay_(min_delay),
      max_delay_(max_delay) {}

Disposition DelayScheduleAttack::attack(MessageInFlight& in_flight,
                                        AttackerContext& ctx) {
  const Time now = ctx.now();
  if (now < start_ || now >= end_) return Disposition::kDeliver;
  if (in_flight.msg.payload->type() != type_) return Disposition::kDeliver;
  if (stall_) {
    // Stay within the network model's bounds: never push past the delay
    // spec's max clamp (when one exists). A sample may already sit at the
    // bound, in which case the stall is a no-op.
    Time target = in_flight.delay + amount_;
    if (max_delay_ > 0 && target > max_delay_) target = max_delay_;
    if (target > in_flight.delay) in_flight.delay = target;
  } else {
    // Rush: the attacker controls scheduling down to the model's min bound.
    Time target = in_flight.delay - amount_;
    if (target < min_delay_) target = min_delay_;
    if (target < 0) target = 0;
    if (target < in_flight.delay) in_flight.delay = target;
  }
  return Disposition::kDeliver;
}

// --- flooding ----------------------------------------------------------------

FloodingAttack::FloodingAttack(std::uint32_t copies, Time spread, Time start,
                               Time end)
    : copies_(copies), spread_(spread < 1 ? 1 : spread), start_(start), end_(end) {}

Disposition FloodingAttack::attack(MessageInFlight& in_flight,
                                   AttackerContext& ctx) {
  const Time now = ctx.now();
  if (now < start_ || now >= end_) return Disposition::kDeliver;
  // Injected messages do not re-traverse the attacker, so duplicating every
  // observed message cannot feed back on itself.
  for (std::uint32_t c = 1; c <= copies_; ++c) {
    Message dup;
    dup.src = in_flight.msg.src;
    dup.dst = in_flight.msg.dst;
    dup.payload = in_flight.msg.payload;
    ctx.inject_duplicate(std::move(dup),
                         in_flight.delay + static_cast<Time>(c) * spread_);
  }
  return Disposition::kDeliver;
}

// --- PBFT late equivocation --------------------------------------------------

PbftLateEquivocationAttack::PbftLateEquivocationAttack(View view, Time strike)
    : view_(view), strike_(strike) {}

void PbftLateEquivocationAttack::on_start(AttackerContext& ctx) {
  ctx.set_timer(strike_, 0);
}

Disposition PbftLateEquivocationAttack::attack(MessageInFlight& in_flight,
                                               AttackerContext& ctx) {
  // Nodes captured at strike time are silenced from then on; everything
  // they sent while honest is already in flight and still delivered.
  return ctx.is_corrupt(in_flight.msg.src) ? Disposition::kDrop
                                           : Disposition::kDeliver;
}

void PbftLateEquivocationAttack::on_timer(const TimerEvent&,
                                          AttackerContext& ctx) {
  const NodeId victim = static_cast<NodeId>(view_ % ctx.n());
  if (!ctx.corrupt(victim)) return;  // budget spent: attack degenerates
  const Value value_a = hash_words({0xECULL, view_, 0ULL});
  const Value value_b = hash_words({0xEDULL, view_, 1ULL});
  for (NodeId dst = 0; dst < ctx.n(); ++dst) {
    if (dst == victim) continue;
    const Value value = dst % 2 == 0 ? value_a : value_b;
    const Signature sig =
        ctx.sign_as(victim, hash_words({0x5050ULL, view_, 0ULL, value}));
    Message msg;
    msg.src = victim;
    msg.dst = dst;
    msg.payload = make_payload<pbft::PrePrepare>(view_, 0, value, sig);
    ctx.inject(std::move(msg), from_ms(1.0) + Time{dst});
  }
}

// --- registry + factory -------------------------------------------------------

AttackRegistry& AttackRegistry::instance() {
  static AttackRegistry registry = [] {
    AttackRegistry r;
    register_builtin_attacks(r);
    return r;
  }();
  return registry;
}

void AttackRegistry::add(std::string name, AttackFactory factory) {
  if (contains(name)) {
    throw std::invalid_argument("attack already registered: " + name);
  }
  attacks_.emplace_back(std::move(name), std::move(factory));
}

bool AttackRegistry::contains(const std::string& name) const noexcept {
  for (const auto& [registered, factory] : attacks_) {
    if (registered == name) return true;
  }
  return false;
}

std::unique_ptr<Attacker> AttackRegistry::make(const std::string& name,
                                               const SimConfig& cfg) const {
  for (const auto& [registered, factory] : attacks_) {
    if (registered == name) return factory(cfg);
  }
  throw std::invalid_argument("unknown attack: " + name);
}

std::vector<std::string> AttackRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(attacks_.size());
  for (const auto& [name, factory] : attacks_) out.push_back(name);
  return out;
}

void register_builtin_attacks(AttackRegistry& registry) {
  if (registry.contains("partition")) return;  // already registered

  const auto get_num = [](const SimConfig& cfg, const std::string& key,
                          double fallback) {
    return cfg.attack_params.is_object() ? cfg.attack_params.get_number(key, fallback)
                                         : fallback;
  };
  const auto get_str = [](const SimConfig& cfg, const std::string& key,
                          const std::string& fallback) {
    return cfg.attack_params.is_object() ? cfg.attack_params.get_string(key, fallback)
                                         : fallback;
  };

  registry.add("partition", [=](const SimConfig& cfg) -> std::unique_ptr<Attacker> {
    const auto subnets = static_cast<std::uint32_t>(get_num(cfg, "subnets", 2));
    const Time resolve_at = from_ms(get_num(cfg, "resolve_ms", 30'000.0));
    const bool drop_mode = get_str(cfg, "mode", "drop") == "drop";
    return std::make_unique<PartitionAttack>(subnets, resolve_at, drop_mode);
  });
  registry.add("add-static", [](const SimConfig& cfg) -> std::unique_ptr<Attacker> {
    return std::make_unique<AddStaticAttack>(cfg.protocol == "addv1");
  });
  registry.add("add-adaptive", [](const SimConfig& cfg) -> std::unique_ptr<Attacker> {
    const int rounds = cfg.protocol == "addv2" ? 4 : 3;
    return std::make_unique<AddAdaptiveAttack>(from_ms(cfg.lambda_ms), rounds);
  });
  registry.add("pbft-equivocation", [](const SimConfig&) {
    return std::make_unique<PbftEquivocationAttack>();
  });
  registry.add("sync-hotstuff-equivocation", [](const SimConfig&) {
    return std::make_unique<SyncHotStuffEquivocationAttack>();
  });
  registry.add("eclipse", [=](const SimConfig& cfg) -> std::unique_ptr<Attacker> {
    const auto victim = static_cast<NodeId>(
        static_cast<std::uint64_t>(get_num(cfg, "victim", 0)) % cfg.n);
    const auto keep = static_cast<std::uint32_t>(get_num(cfg, "keep", 0));
    const Time start = from_ms(get_num(cfg, "start_ms", 0.0));
    const Time duration = from_ms(get_num(cfg, "duration_ms", 30'000.0));
    const bool drop_mode = get_str(cfg, "mode", "drop") == "drop";
    return std::make_unique<EclipseAttack>(victim, keep, start,
                                           start + duration, drop_mode);
  });
  registry.add("adaptive-partition",
               [=](const SimConfig& cfg) -> std::unique_ptr<Attacker> {
    const auto subnets = static_cast<std::uint32_t>(get_num(cfg, "subnets", 2));
    const Time period = from_ms(get_num(cfg, "period_ms", cfg.lambda_ms));
    const Time resolve = from_ms(get_num(cfg, "resolve_ms", 30'000.0));
    const bool drop_mode = get_str(cfg, "mode", "drop") == "drop";
    return std::make_unique<AdaptivePartitionAttack>(subnets, period, resolve,
                                                     drop_mode);
  });
  registry.add("delay-schedule",
               [=](const SimConfig& cfg) -> std::unique_ptr<Attacker> {
    std::string type = get_str(cfg, "type", "");
    const bool stall = get_str(cfg, "mode", "stall") == "stall";
    const Time amount = from_ms(get_num(cfg, "amount_ms", cfg.lambda_ms));
    const Time start = from_ms(get_num(cfg, "start_ms", 0.0));
    const Time duration =
        from_ms(get_num(cfg, "duration_ms", cfg.max_time_ms));
    // The model's bounds, inside which the attacker may re-time freely.
    const Time min_delay = from_ms(cfg.delay.min_ms);
    const Time max_delay =
        cfg.delay.max_ms > 0 ? from_ms(cfg.delay.max_ms) : Time{0};
    return std::make_unique<DelayScheduleAttack>(std::move(type), stall, amount,
                                                 start, start + duration,
                                                 min_delay, max_delay);
  });
  registry.add("flood", [=](const SimConfig& cfg) -> std::unique_ptr<Attacker> {
    auto copies = static_cast<std::uint32_t>(get_num(cfg, "copies", 1));
    if (copies > 8) copies = 8;  // bound the amplification factor
    const Time spread = from_ms(get_num(cfg, "spread_ms", 1.0));
    const Time start = from_ms(get_num(cfg, "start_ms", 0.0));
    const Time duration = from_ms(get_num(cfg, "duration_ms", 30'000.0));
    return std::make_unique<FloodingAttack>(copies, spread, start,
                                            start + duration);
  });
  registry.add("pbft-late-equivocation",
               [=](const SimConfig& cfg) -> std::unique_ptr<Attacker> {
    const auto view = static_cast<View>(get_num(cfg, "view", 0));
    const Time strike = from_ms(get_num(cfg, "strike_ms", cfg.lambda_ms));
    return std::make_unique<PbftLateEquivocationAttack>(view, strike);
  });
}

std::unique_ptr<Attacker> make_attacker(const SimConfig& cfg) {
  if (cfg.attack.empty() || cfg.attack == "none") {
    return std::make_unique<NullAttacker>();
  }
  return AttackRegistry::instance().make(cfg.attack, cfg);
}

}  // namespace bftsim

// The builtin attack scenarios (§III-C, Table II) and the attacker factory.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "attacker/attacker.hpp"
#include "core/config.hpp"

namespace bftsim {

/// Network partition attack (as described for Algorand): splits the nodes
/// into `subnets` groups (node id mod subnets); until `resolve_ms`,
/// cross-subnet messages are dropped ("drop" mode) or held back and
/// released at resolution time ("delay" mode, the default).
class PartitionAttack final : public Attacker {
 public:
  PartitionAttack(std::uint32_t subnets, Time resolve_at, bool drop_mode);

  Disposition attack(MessageInFlight& in_flight, AttackerContext& ctx) override;

  [[nodiscard]] Time resolve_at() const noexcept { return resolve_at_; }

 private:
  [[nodiscard]] std::uint32_t group_of(NodeId id) const noexcept {
    return id % subnets_;
  }

  std::uint32_t subnets_;
  Time resolve_at_;
  bool drop_mode_;
};

/// Static attack on ADD+: the Byzantine set is fixed before execution.
/// Against ADD+ v1 the attacker exploits the deterministic round-robin
/// schedule and picks exactly the first f leaders; against v2/v3 (VRF
/// leader election) it can only pick f nodes at random.
class AddStaticAttack final : public Attacker {
 public:
  explicit AddStaticAttack(bool deterministic_leaders);

  void on_start(AttackerContext& ctx) override;
  Disposition attack(MessageInFlight& in_flight, AttackerContext& ctx) override;

 private:
  bool deterministic_leaders_;
};

/// Rushing adaptive attack on ADD+ v2/v3: observes the VRF credentials
/// revealed in each iteration (rushing — every message crosses the
/// attacker before delivery) and corrupts the winning leader mid-protocol
/// (adaptive), up to the budget f. Corruption respects causality: messages
/// the victim sent while honest are already in flight and still delivered.
class AddAdaptiveAttack final : public Attacker {
 public:
  /// `iteration_rounds` is the victim protocol's rounds per iteration
  /// (4 for ADD+ v2, 3 for v3); λ comes from the run config.
  AddAdaptiveAttack(Time lambda, int iteration_rounds);

  void on_start(AttackerContext& ctx) override;
  Disposition attack(MessageInFlight& in_flight, AttackerContext& ctx) override;
  void on_timer(const TimerEvent& ev, AttackerContext& ctx) override;

 private:
  Time lambda_;
  Time iteration_duration_;
  /// Minimum credential observed per iteration: (credential, node).
  std::map<std::uint64_t, std::pair<std::uint64_t, NodeId>> observed_min_;
};

/// Equivocation attack on PBFT: corrupts the first leader before the run
/// and, in its stead, injects *conflicting* pre-prepare proposals — one
/// value to even-numbered nodes, another to odd-numbered ones — signed with
/// the corrupted leader's key. A correct PBFT keeps safety (neither value
/// can gather 2f+1 prepares) and restores liveness through a view change.
/// Demonstrates the attacker capabilities no other builtin uses: payload
/// forging, message injection, and key material from corruption.
class PbftEquivocationAttack final : public Attacker {
 public:
  void on_start(AttackerContext& ctx) override;
  Disposition attack(MessageInFlight& in_flight, AttackerContext& ctx) override;

 private:
  NodeId victim_ = 0;  ///< leader of view 0
};

/// Equivocation attack on Sync HotStuff: the corrupted first leader sends
/// conflicting height-0 proposals to the two halves of the network. The
/// protocol's 2Δ commit rule plus proposal echoing must detect the
/// conflict before any replica's commit timer fires, cancel the commits,
/// and blame the leader into a view change — safety holds, one view is
/// lost. (This is the detection mechanism Momose's force-locking attack
/// targets with finer timing; here we exercise the defense.)
class SyncHotStuffEquivocationAttack final : public Attacker {
 public:
  void on_start(AttackerContext& ctx) override;
  Disposition attack(MessageInFlight& in_flight, AttackerContext& ctx) override;

 private:
  NodeId victim_ = 0;  ///< leader of view 0
};

/// Creates the attacker configured by `cfg` ("" => NullAttacker).
/// Throws std::invalid_argument for unknown attack names.
[[nodiscard]] std::unique_ptr<Attacker> make_attacker(const SimConfig& cfg);

}  // namespace bftsim

// The builtin attack scenarios (§III-C, Table II) and the attacker factory.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "attacker/attacker.hpp"
#include "core/config.hpp"
#include "crypto/hash.hpp"

namespace bftsim {

/// Network partition attack (as described for Algorand): splits the nodes
/// into `subnets` groups (node id mod subnets); until `resolve_ms`,
/// cross-subnet messages are dropped ("drop" mode) or held back and
/// released at resolution time ("delay" mode, the default).
class PartitionAttack final : public Attacker {
 public:
  PartitionAttack(std::uint32_t subnets, Time resolve_at, bool drop_mode);

  Disposition attack(MessageInFlight& in_flight, AttackerContext& ctx) override;

  [[nodiscard]] Time resolve_at() const noexcept { return resolve_at_; }

 private:
  [[nodiscard]] std::uint32_t group_of(NodeId id) const noexcept {
    return id % subnets_;
  }

  std::uint32_t subnets_;
  Time resolve_at_;
  bool drop_mode_;
};

/// Static attack on ADD+: the Byzantine set is fixed before execution.
/// Against ADD+ v1 the attacker exploits the deterministic round-robin
/// schedule and picks exactly the first f leaders; against v2/v3 (VRF
/// leader election) it can only pick f nodes at random.
class AddStaticAttack final : public Attacker {
 public:
  explicit AddStaticAttack(bool deterministic_leaders);

  void on_start(AttackerContext& ctx) override;
  Disposition attack(MessageInFlight& in_flight, AttackerContext& ctx) override;

 private:
  bool deterministic_leaders_;
};

/// Rushing adaptive attack on ADD+ v2/v3: observes the VRF credentials
/// revealed in each iteration (rushing — every message crosses the
/// attacker before delivery) and corrupts the winning leader mid-protocol
/// (adaptive), up to the budget f. Corruption respects causality: messages
/// the victim sent while honest are already in flight and still delivered.
class AddAdaptiveAttack final : public Attacker {
 public:
  /// `iteration_rounds` is the victim protocol's rounds per iteration
  /// (4 for ADD+ v2, 3 for v3); λ comes from the run config.
  AddAdaptiveAttack(Time lambda, int iteration_rounds);

  void on_start(AttackerContext& ctx) override;
  Disposition attack(MessageInFlight& in_flight, AttackerContext& ctx) override;
  void on_timer(const TimerEvent& ev, AttackerContext& ctx) override;

 private:
  Time lambda_;
  Time iteration_duration_;
  /// Minimum credential observed per iteration: (credential, node).
  std::map<std::uint64_t, std::pair<std::uint64_t, NodeId>> observed_min_;
};

/// Equivocation attack on PBFT: corrupts the first leader before the run
/// and, in its stead, injects *conflicting* pre-prepare proposals — one
/// value to even-numbered nodes, another to odd-numbered ones — signed with
/// the corrupted leader's key. A correct PBFT keeps safety (neither value
/// can gather 2f+1 prepares) and restores liveness through a view change.
/// Demonstrates the attacker capabilities no other builtin uses: payload
/// forging, message injection, and key material from corruption.
class PbftEquivocationAttack final : public Attacker {
 public:
  void on_start(AttackerContext& ctx) override;
  Disposition attack(MessageInFlight& in_flight, AttackerContext& ctx) override;

 private:
  NodeId victim_ = 0;  ///< leader of view 0
};

/// Equivocation attack on Sync HotStuff: the corrupted first leader sends
/// conflicting height-0 proposals to the two halves of the network. The
/// protocol's 2Δ commit rule plus proposal echoing must detect the
/// conflict before any replica's commit timer fires, cancel the commits,
/// and blame the leader into a view change — safety holds, one view is
/// lost. (This is the detection mechanism Momose's force-locking attack
/// targets with finer timing; here we exercise the defense.)
class SyncHotStuffEquivocationAttack final : public Attacker {
 public:
  void on_start(AttackerContext& ctx) override;
  Disposition attack(MessageInFlight& in_flight, AttackerContext& ctx) override;

 private:
  NodeId victim_ = 0;  ///< leader of view 0
};

/// Eclipse attack: isolates one victim node from all but an attacker-chosen
/// peer set during [start, start + duration). Traffic between the victim
/// and any peer outside the allowed set is dropped ("drop" mode) or held
/// back until the window closes ("delay" mode). The allowed peers are the
/// `keep` lowest node ids other than the victim, so the whole attack is a
/// pure function of its parameter vector {victim, keep, start_ms,
/// duration_ms, mode}.
class EclipseAttack final : public Attacker {
 public:
  EclipseAttack(NodeId victim, std::uint32_t keep, Time start, Time end,
                bool drop_mode);

  Disposition attack(MessageInFlight& in_flight, AttackerContext& ctx) override;

 private:
  [[nodiscard]] bool allowed(NodeId peer) const noexcept {
    // Rank of `peer` among the non-victim ids; the first `keep` stay linked.
    return (peer < victim_ ? peer : peer - 1) < keep_;
  }

  NodeId victim_;
  std::uint32_t keep_;
  Time start_;
  Time end_;
  bool drop_mode_;
};

/// The rotating group assignment used by AdaptivePartitionAttack, exposed
/// for tests. Epoch 0 is the static cut (id mod subnets); every later
/// epoch re-draws the cut by hashing (id, epoch), so the *equivalence
/// classes* change between epochs — a pair separated by one cut shares a
/// group under a later one. (A uniform label shift like (id + epoch) mod
/// subnets would relabel the groups without ever changing the cut.)
[[nodiscard]] constexpr std::uint32_t adaptive_partition_group(
    NodeId id, std::uint64_t epoch, std::uint32_t subnets) noexcept {
  if (epoch == 0) return id % subnets;
  return static_cast<std::uint32_t>(
      hash_words({0x61647074ULL /* "adpt" */, id, epoch}) % subnets);
}

/// Adaptive partition: re-cuts the network at attacker time events. The
/// group assignment starts as the static cut (node mod subnets) and is
/// re-drawn every `period` by hashing (node, epoch), so the set of
/// separated pairs changes each epoch and the cut chases rotating leaders;
/// cross-group traffic is dropped or held until the attack resolves at
/// `resolve`. Parameter vector: {subnets, period_ms, resolve_ms, mode}.
class AdaptivePartitionAttack final : public Attacker {
 public:
  AdaptivePartitionAttack(std::uint32_t subnets, Time period, Time resolve,
                          bool drop_mode);

  void on_start(AttackerContext& ctx) override;
  Disposition attack(MessageInFlight& in_flight, AttackerContext& ctx) override;
  void on_timer(const TimerEvent& ev, AttackerContext& ctx) override;

 private:
  [[nodiscard]] std::uint32_t group_of(NodeId id) const noexcept {
    return adaptive_partition_group(id, epoch_, subnets_);
  }

  std::uint32_t subnets_;
  Time period_;
  Time resolve_;
  bool drop_mode_;
  std::uint64_t epoch_ = 0;
};

/// Targeted delay scheduling: rushes or stalls messages of one payload type
/// during [start, start + duration), staying within the network model's
/// bounds — a stall never pushes the delay beyond the delay spec's max_ms
/// clamp (when one is configured) and a rush never pulls it below min_ms.
/// Parameter vector: {type, mode, amount_ms, start_ms, duration_ms}.
class DelayScheduleAttack final : public Attacker {
 public:
  DelayScheduleAttack(std::string type, bool stall, Time amount, Time start,
                      Time end, Time min_delay, Time max_delay);

  Disposition attack(MessageInFlight& in_flight, AttackerContext& ctx) override;

 private:
  std::string type_;
  bool stall_;
  Time amount_;
  Time start_;
  Time end_;
  Time min_delay_;
  Time max_delay_;  ///< 0 = the model is unbounded; stalls are then uncapped
};

/// Flooding: injects `copies` duplicates of every observed message during
/// [start, start + duration), spaced `spread` apart after the original's
/// delivery. Duplicates are genuine re-deliveries (same payload, fresh
/// message ids), stressing handler idempotence and the event budget.
/// Parameter vector: {copies, spread_ms, start_ms, duration_ms}.
class FloodingAttack final : public Attacker {
 public:
  FloodingAttack(std::uint32_t copies, Time spread, Time start, Time end);

  Disposition attack(MessageInFlight& in_flight, AttackerContext& ctx) override;

 private:
  std::uint32_t copies_;
  Time spread_;
  Time start_;
  Time end_;
};

/// Late equivocation on PBFT: waits until `strike`, corrupts the leader of
/// view `view` (round-robin: view mod n) and injects conflicting
/// pre-prepares for that view to the two halves of the network, signed with
/// the captured key. Unlike PbftEquivocationAttack (which strikes at t=0,
/// before the honest pre-prepare exists) this probes the window *after*
/// honest progress started. Parameter vector: {view, strike_ms}.
class PbftLateEquivocationAttack final : public Attacker {
 public:
  PbftLateEquivocationAttack(View view, Time strike);

  void on_start(AttackerContext& ctx) override;
  Disposition attack(MessageInFlight& in_flight, AttackerContext& ctx) override;
  void on_timer(const TimerEvent& ev, AttackerContext& ctx) override;

 private:
  View view_;
  Time strike_;
};

/// Creates the attacker configured by `cfg` ("" => NullAttacker).
/// Throws std::invalid_argument for unknown attack names.
[[nodiscard]] std::unique_ptr<Attacker> make_attacker(const SimConfig& cfg);

}  // namespace bftsim

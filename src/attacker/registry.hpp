// Attack registry: maps attack names to factories so configurations can
// select attack scenarios by name, and users can register custom attacks
// exactly like the builtin ones (§III-C).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "attacker/attacker.hpp"
#include "core/config.hpp"

namespace bftsim {

using AttackFactory = std::function<std::unique_ptr<Attacker>(const SimConfig&)>;

class AttackRegistry {
 public:
  /// The singleton registry, with all builtin attacks registered.
  [[nodiscard]] static AttackRegistry& instance();

  /// Registers an attack; throws std::invalid_argument on duplicate name.
  void add(std::string name, AttackFactory factory);

  [[nodiscard]] bool contains(const std::string& name) const noexcept;

  /// Creates the named attack; throws std::invalid_argument when unknown.
  [[nodiscard]] std::unique_ptr<Attacker> make(const std::string& name,
                                               const SimConfig& cfg) const;

  /// Names of all registered attacks, in registration order.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  AttackRegistry() = default;
  std::vector<std::pair<std::string, AttackFactory>> attacks_;
};

/// Registers the builtin attacks (idempotent).
void register_builtin_attacks(AttackRegistry& registry);

}  // namespace bftsim

// Serializers turning runner outputs (RunResult, Aggregate, RunManifest)
// into json::Value trees, plus the pretty-printing file writer. Key order
// is deliberate — the json layer preserves insertion order, so exported
// files diff cleanly across runs.
#include "runner/export.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace bftsim {

json::Value summary_to_json(const Summary& summary) {
  json::Object o;
  o["count"] = static_cast<std::int64_t>(summary.count);
  o["mean"] = summary.mean;
  o["stddev"] = summary.stddev;
  o["min"] = summary.min;
  o["max"] = summary.max;
  o["median"] = summary.median;
  o["p90"] = summary.p90;
  o["p99"] = summary.p99;
  return json::Value{std::move(o)};
}

json::Value workload_to_json(const WorkloadStats& wl) {
  json::Object o;
  o["submitted"] = static_cast<std::int64_t>(wl.submitted);
  o["decided"] = static_cast<std::int64_t>(wl.decided);
  o["batched"] = static_cast<std::int64_t>(wl.batched);
  o["pending_end"] = static_cast<std::int64_t>(wl.pending_end);
  o["batched_undecided"] = static_cast<std::int64_t>(wl.batched_undecided);
  o["batches"] = static_cast<std::int64_t>(wl.batches);
  o["empty_proposals"] = static_cast<std::int64_t>(wl.empty_proposals);
  o["empty_decisions"] = static_cast<std::int64_t>(wl.empty_decisions);
  o["duplicate_decides"] = static_cast<std::int64_t>(wl.duplicate_decides);
  o["max_in_flight"] = static_cast<std::int64_t>(wl.max_in_flight);
  o["duration_ms"] = wl.duration_ms;
  o["requests_per_sec"] = wl.requests_per_sec;
  o["latency_mean_ms"] = wl.latency_mean_ms;
  o["latency_min_ms"] = wl.latency_min_ms;
  o["latency_max_ms"] = wl.latency_max_ms;
  o["latency_p50_ms"] = wl.latency_p50_ms;
  o["latency_p99_ms"] = wl.latency_p99_ms;
  o["latency_p999_ms"] = wl.latency_p999_ms;
  return json::Value{std::move(o)};
}

json::Value result_to_json(const RunResult& result, bool include_views) {
  json::Object o;
  o["terminated"] = result.terminated;
  o["termination_reason"] = std::string(to_string(result.termination_reason));
  o["termination_ms"] = result.terminated ? json::Value{to_ms(result.termination_time)}
                                          : json::Value{nullptr};
  o["decisions_target"] = static_cast<std::int64_t>(result.decisions_target);
  o["per_decision_latency_ms"] = result.per_decision_latency_ms();
  o["messages_sent"] = static_cast<std::int64_t>(result.messages_sent);
  o["bytes_sent"] = static_cast<std::int64_t>(result.bytes_sent);
  o["messages_delivered"] = static_cast<std::int64_t>(result.messages_delivered);
  o["messages_dropped"] = static_cast<std::int64_t>(result.messages_dropped);
  o["messages_injected"] = static_cast<std::int64_t>(result.messages_injected);
  o["messages_corrupted"] = static_cast<std::int64_t>(result.messages_corrupted);
  o["events_processed"] = static_cast<std::int64_t>(result.events_processed);
  o["rounds_used"] = static_cast<std::int64_t>(result.rounds_used());
  o["wall_seconds"] = result.wall_seconds;
  o["safety_consistent"] = result.decisions_consistent();
  if (result.trace_records > 0) {
    o["trace_records"] = static_cast<std::int64_t>(result.trace_records);
    o["trace_fingerprint"] = fingerprint_to_hex(result.trace_fingerprint);
  }
  // Attacker activity and warnings only appear when present, so exports of
  // attack-free, warning-free runs stay byte-identical to previous releases.
  if (result.attacker_dropped != 0 || result.attacker_delayed != 0 ||
      result.attacker_modified != 0 || result.attacker_duplicated != 0) {
    json::Object atk;
    atk["dropped"] = static_cast<std::int64_t>(result.attacker_dropped);
    atk["delayed"] = static_cast<std::int64_t>(result.attacker_delayed);
    atk["modified"] = static_cast<std::int64_t>(result.attacker_modified);
    atk["duplicated"] = static_cast<std::int64_t>(result.attacker_duplicated);
    o["attacker_activity"] = json::Value{std::move(atk)};
  }
  // Same rule for the WAN gossip counters: present only for gossip runs.
  if (result.gossip_relayed != 0 || result.gossip_duplicates != 0) {
    json::Object gossip;
    gossip["relayed"] = static_cast<std::int64_t>(result.gossip_relayed);
    gossip["duplicates"] = static_cast<std::int64_t>(result.gossip_duplicates);
    o["gossip"] = json::Value{std::move(gossip)};
  }
  // Request-level workload results: present only when the run carried a
  // client workload, so workload-off exports stay byte-identical.
  if (result.workload.enabled) {
    o["workload"] = workload_to_json(result.workload);
  }
  if (!result.warnings.empty()) {
    json::Array warnings;
    for (const RunWarning& w : result.warnings) {
      json::Object wo;
      wo["code"] = w.code;
      wo["detail"] = w.detail;
      warnings.push_back(json::Value{std::move(wo)});
    }
    o["warnings"] = json::Value{std::move(warnings)};
  }

  json::Array decisions;
  for (const Decision& d : result.decisions) {
    json::Object dec;
    dec["node"] = static_cast<std::int64_t>(d.node);
    dec["at_ms"] = to_ms(d.at);
    dec["height"] = static_cast<std::int64_t>(d.height);
    dec["value"] = static_cast<std::int64_t>(static_cast<std::uint32_t>(d.value));
    decisions.push_back(json::Value{std::move(dec)});
  }
  o["decisions"] = json::Value{std::move(decisions)};

  json::Array ids;
  for (const NodeId id : result.failstopped) ids.emplace_back(static_cast<std::int64_t>(id));
  o["failstopped"] = json::Value{std::move(ids)};
  json::Array corrupted;
  for (const NodeId id : result.corrupted) corrupted.emplace_back(static_cast<std::int64_t>(id));
  o["corrupted"] = json::Value{std::move(corrupted)};

  if (include_views) {
    json::Array views;
    for (const ViewRecord& v : result.views) {
      json::Object rec;
      rec["node"] = static_cast<std::int64_t>(v.node);
      rec["at_ms"] = to_ms(v.at);
      rec["view"] = static_cast<std::int64_t>(v.view);
      views.push_back(json::Value{std::move(rec)});
    }
    o["views"] = json::Value{std::move(views)};
  }
  if (!result.timeline.empty()) {
    o["timeline"] = timeline_to_json(result.timeline, result.timeline_tick);
  }
  if (!result.profile.empty()) o["profile"] = result.profile.to_json();
  return json::Value{std::move(o)};
}

std::string fingerprint_to_hex(std::uint64_t fingerprint) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return std::string(buf);
}

json::Value timeline_to_json(const std::vector<obs::TimelineSample>& samples,
                             Time tick) {
  json::Object o;
  o["tick_us"] = static_cast<std::int64_t>(tick);
  json::Array rows;
  rows.reserve(samples.size());
  for (const obs::TimelineSample& s : samples) rows.push_back(s.to_json());
  o["samples"] = json::Value{std::move(rows)};
  return json::Value{std::move(o)};
}

json::Value aggregate_to_json(const Aggregate& aggregate) {
  json::Object o;
  o["runs"] = static_cast<std::int64_t>(aggregate.runs);
  o["timeouts"] = static_cast<std::int64_t>(aggregate.timeouts);
  o["latency_ms"] = summary_to_json(aggregate.latency_ms);
  o["per_decision_latency_ms"] = summary_to_json(aggregate.per_decision_latency_ms);
  o["messages"] = summary_to_json(aggregate.messages);
  o["per_decision_messages"] = summary_to_json(aggregate.per_decision_messages);
  o["events"] = summary_to_json(aggregate.events);
  // Gated like the per-run block: workload-free aggregates keep their
  // previous byte-identical shape.
  if (aggregate.workload_runs > 0) {
    json::Object wl;
    wl["runs"] = static_cast<std::int64_t>(aggregate.workload_runs);
    wl["submitted"] = static_cast<std::int64_t>(aggregate.workload_submitted);
    wl["decided"] = static_cast<std::int64_t>(aggregate.workload_decided);
    wl["requests_per_sec"] = summary_to_json(aggregate.workload_rps);
    wl["latency_p50_ms"] = summary_to_json(aggregate.workload_p50_ms);
    wl["latency_p99_ms"] = summary_to_json(aggregate.workload_p99_ms);
    wl["latency_p999_ms"] = summary_to_json(aggregate.workload_p999_ms);
    o["workload"] = json::Value{std::move(wl)};
  }
  o["wall_seconds_total"] = aggregate.wall_seconds_total;
  return json::Value{std::move(o)};
}

json::Value run_failure_to_json(const RunFailure& failure) {
  json::Object o;
  o["point"] = static_cast<std::int64_t>(failure.point);
  o["repeat"] = static_cast<std::int64_t>(failure.repeat);
  o["seed"] = static_cast<std::int64_t>(failure.seed);
  o["label"] = failure.label;
  o["error"] = failure.error;
  o["suppressed_failures"] = static_cast<std::int64_t>(failure.suppressed);
  o["config"] = failure.config.to_json();
  return json::Value{std::move(o)};
}

json::Value termination_tally_to_json(const TerminationTally& tally) {
  json::Object o;
  o["decided"] = static_cast<std::int64_t>(tally.decided);
  o["horizon"] = static_cast<std::int64_t>(tally.horizon);
  o["event_budget"] = static_cast<std::int64_t>(tally.event_budget);
  o["queue_drained"] = static_cast<std::int64_t>(tally.queue_drained);
  o["failed"] = static_cast<std::int64_t>(tally.failed);
  return json::Value{std::move(o)};
}

json::Value sweep_outcome_to_json(const SweepOutcome& outcome) {
  json::Object o;
  json::Array points;
  points.reserve(outcome.points.size());
  for (const PointOutcome& point : outcome.points) {
    json::Object p;
    p["aggregate"] = aggregate_to_json(point.aggregate);
    p["termination"] = termination_tally_to_json(point.tally);
    points.push_back(json::Value{std::move(p)});
  }
  o["points"] = json::Value{std::move(points)};
  json::Array failures;
  failures.reserve(outcome.failures.size());
  for (const RunFailure& failure : outcome.failures) {
    failures.push_back(run_failure_to_json(failure));
  }
  o["failures"] = json::Value{std::move(failures)};
  o["ok"] = outcome.ok();
  return json::Value{std::move(o)};
}

json::Value manifest_to_json(const RunManifest& manifest) {
  json::Object o;
  o["name"] = manifest.name;
  o["protocol"] = manifest.config.protocol;
  o["n"] = static_cast<std::int64_t>(manifest.config.n);
  o["lambda_ms"] = manifest.config.lambda_ms;
  o["delay"] = manifest.config.delay.describe();
  o["seed_begin"] = static_cast<std::int64_t>(manifest.config.seed);
  o["seed_end"] =
      static_cast<std::int64_t>(manifest.config.seed + manifest.repeats);
  o["repeats"] = static_cast<std::int64_t>(manifest.repeats);
  o["jobs"] = static_cast<std::int64_t>(manifest.jobs);
  o["wall_seconds"] = manifest.wall_seconds;
  o["config"] = manifest.config.to_json();
  return json::Value{std::move(o)};
}

json::Value experiment_to_json(const RunManifest& manifest,
                               const Aggregate& aggregate) {
  json::Object o;
  o["manifest"] = manifest_to_json(manifest);
  o["aggregate"] = aggregate_to_json(aggregate);
  return json::Value{std::move(o)};
}

json::Value experiment_to_json(const RunManifest& manifest,
                               const Aggregate& aggregate,
                               const std::vector<RunResult>& runs) {
  json::Value v = experiment_to_json(manifest, aggregate);
  json::Array run_array;
  run_array.reserve(runs.size());
  for (const RunResult& run : runs) run_array.push_back(result_to_json(run));
  v.as_object()["runs"] = json::Value{std::move(run_array)};
  return v;
}

void write_json_file(const std::string& path, const json::Value& value) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << value.dump(2) << '\n';
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace bftsim

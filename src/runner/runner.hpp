// Repeated-trial experiment driver: runs a configuration R times with
// derived seeds, aggregates the paper's metrics (mean and standard
// deviation of time usage and message usage, §IV), and prints aligned
// tables for the figure-reproduction benches.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/stats.hpp"
#include "sim/result.hpp"

namespace bftsim {

/// Aggregated outcome of repeated runs of one configuration.
///
/// Timed-out runs (those that hit the horizon without reaching the decision
/// target) count toward `runs` and `timeouts` and are included in the raw
/// volume summaries (`messages`, `events`) — the work they generated is
/// real. They are excluded from every per-decision and latency summary
/// (`latency_ms`, `per_decision_latency_ms`, `per_decision_messages`): a
/// run that never reached its target has no meaningful per-decision rate.
/// `timeouts > 0` therefore flags that the raw and per-decision summaries
/// cover different run subsets (their `count` fields show which).
struct Aggregate {
  std::size_t runs = 0;
  std::size_t timeouts = 0;  ///< runs that hit the horizon without deciding

  Summary latency_ms;               ///< time to full termination
  Summary per_decision_latency_ms;  ///< termination time / decisions target
  Summary messages;                 ///< total protocol messages
  Summary per_decision_messages;
  Summary events;
  double wall_seconds_total = 0.0;

  /// Request-level workload aggregates, populated only when runs carried a
  /// client workload (`workload_runs > 0`, see $.workload). Every
  /// workload-enabled run contributes — including timed-out ones, whose
  /// stats are finalized at the horizon and are just as real.
  std::size_t workload_runs = 0;
  std::uint64_t workload_submitted = 0;  ///< total across workload runs
  std::uint64_t workload_decided = 0;    ///< total across workload runs
  Summary workload_rps;      ///< decided requests per simulated second
  Summary workload_p50_ms;   ///< per-run request-latency p50
  Summary workload_p99_ms;   ///< per-run request-latency p99
  Summary workload_p999_ms;  ///< per-run request-latency p99.9

  /// Simulated seconds per decision, mean (negative when nothing decided).
  [[nodiscard]] double mean_latency_sec() const noexcept {
    return per_decision_latency_ms.mean / 1e3;
  }
};

/// True when `a` and `b` agree on every deterministic field — run/timeout
/// counts and all five summaries, compared exactly. Wall-clock totals are
/// ignored (host timing is the one nondeterministic output). This is the
/// serial-vs-parallel determinism check used by tests and benches.
[[nodiscard]] bool equivalent(const Aggregate& a, const Aggregate& b) noexcept;

/// Runs `base` `repeats` times (seeds base.seed, base.seed+1, ...) and
/// aggregates. Runs that fail to terminate count as timeouts; see the
/// Aggregate comment for which summaries include them.
[[nodiscard]] Aggregate run_repeated(const SimConfig& base, std::size_t repeats);

/// Parallel run_repeated: fans the `repeats` independent (config, seed)
/// runs across `jobs` worker threads (0 = ThreadPool::default_workers()).
/// Each run's seed is a pure function of its repeat index (base.seed + i,
/// computed inside the task — scheduling cannot perturb it), results are
/// aggregated in repeat order, and every run owns its own
/// Simulation/RNG/Metrics, so the returned Aggregate is `equivalent()` to
/// the serial one for any job count.
[[nodiscard]] Aggregate run_repeated_parallel(const SimConfig& base,
                                              std::size_t repeats,
                                              std::size_t jobs);

/// Runs every configuration in `points` `repeats` times, fanning all
/// (point, seed) pairs across one shared pool of `jobs` workers (0 =
/// default), and returns one Aggregate per point, in input order. Each
/// entry is `equivalent()` to `run_repeated(points[i], repeats)`.
[[nodiscard]] std::vector<Aggregate> run_sweep(const std::vector<SimConfig>& points,
                                               std::size_t repeats,
                                               std::size_t jobs);

/// Budget caps a guarded sweep applies to every run so a divergent
/// configuration terminates (with a recorded reason) instead of hanging
/// the sweep. Zero fields keep the config's own budget; nonzero fields
/// only ever tighten it.
struct Watchdog {
  std::uint64_t max_events = 0;  ///< cap on cfg.max_events (0 = keep)
  double max_time_ms = 0.0;      ///< cap on cfg.max_time_ms (0 = keep)

  [[nodiscard]] SimConfig apply(SimConfig cfg) const;
};

/// One run of a guarded sweep that threw instead of returning a result.
/// Carries the exact configuration (with the derived per-repeat seed), so
/// the failure is reproducible with a single run_simulation call.
struct RunFailure {
  std::size_t point = 0;   ///< index into the sweep's `points`
  std::size_t repeat = 0;  ///< repeat index within the point
  std::uint64_t seed = 0;  ///< derived seed of the failing run
  /// Human-readable identifier of the failing run: the caller-provided
  /// point label (e.g. a fuzz campaign's "campaign-7/scenario-42") plus
  /// the repeat suffix; "point-<p>/repeat-<i>" when no labels were given.
  /// Present so a failure surfaced from a big sweep names its scenario
  /// instead of only its flat index.
  std::string label;
  std::string error;       ///< exception message
  SimConfig config;        ///< full failing config (seed already applied)
  /// Further failures discarded alongside this one. Only nonzero on
  /// infrastructure-level failures (ThreadPool::wait_idle rethrows the
  /// first captured exception; this records how many more it swallowed).
  std::size_t suppressed = 0;
};

/// Per-point census of how runs ended (see TerminationReason).
struct TerminationTally {
  std::size_t decided = 0;
  std::size_t horizon = 0;
  std::size_t event_budget = 0;
  std::size_t queue_drained = 0;
  std::size_t failed = 0;  ///< runs that threw (see SweepOutcome::failures)
};

/// One point of a guarded sweep: the Aggregate covers only the runs that
/// completed (failed runs are excluded from every summary), the tally
/// covers all of them.
struct PointOutcome {
  Aggregate aggregate;
  TerminationTally tally;
};

/// Outcome of run_sweep_guarded: per-point results plus every failure,
/// ordered by (point, repeat).
struct SweepOutcome {
  std::vector<PointOutcome> points;
  std::vector<RunFailure> failures;

  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
};

/// Crash-safe run_sweep: each run executes under a try/catch, so one
/// throwing configuration produces a RunFailure record (config + seed
/// included) while the rest of the sweep completes. `watchdog` budgets are
/// applied to every run. With no failures, each point's Aggregate is
/// `equivalent()` to the corresponding run_sweep entry (given the same
/// effective budgets).
///
/// `labels`, when non-empty, must have one entry per point; each failure's
/// `label` is then "<labels[point]>/repeat-<i>". An empty vector falls
/// back to "point-<p>/repeat-<i>". A size mismatch throws
/// std::invalid_argument before anything runs.
[[nodiscard]] SweepOutcome run_sweep_guarded(const std::vector<SimConfig>& points,
                                             std::size_t repeats, std::size_t jobs,
                                             const Watchdog& watchdog = {},
                                             const std::vector<std::string>& labels = {});

/// Convenience: configure `protocol` with the registry's measurement
/// count (10 decisions for pipelined protocols, else 1), per §IV.
[[nodiscard]] SimConfig experiment_config(const std::string& protocol,
                                          std::uint32_t n, double lambda_ms,
                                          const DelaySpec& delay);

/// Fixed-width table printer for bench output.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int width = 14);
  void print_header(std::ostream& os) const;
  void print_row(std::ostream& os, const std::vector<std::string>& cells) const;

  /// Formats "mean ± stddev" with the given unit suffix.
  [[nodiscard]] static std::string cell(double mean, double stddev,
                                        const std::string& unit = "");
  [[nodiscard]] static std::string cell(double value, const std::string& unit = "");

 private:
  std::vector<std::string> headers_;
  int width_;
};

}  // namespace bftsim

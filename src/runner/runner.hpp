// Repeated-trial experiment driver: runs a configuration R times with
// derived seeds, aggregates the paper's metrics (mean and standard
// deviation of time usage and message usage, §IV), and prints aligned
// tables for the figure-reproduction benches.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/stats.hpp"
#include "sim/result.hpp"

namespace bftsim {

/// Aggregated outcome of repeated runs of one configuration.
struct Aggregate {
  std::size_t runs = 0;
  std::size_t timeouts = 0;  ///< runs that hit the horizon without deciding

  Summary latency_ms;               ///< time to full termination
  Summary per_decision_latency_ms;  ///< termination time / decisions target
  Summary messages;                 ///< total protocol messages
  Summary per_decision_messages;
  Summary events;
  double wall_seconds_total = 0.0;

  /// Simulated seconds per decision, mean (negative when nothing decided).
  [[nodiscard]] double mean_latency_sec() const noexcept {
    return per_decision_latency_ms.mean / 1e3;
  }
};

/// Runs `base` `repeats` times (seeds base.seed, base.seed+1, ...) and
/// aggregates. Runs that fail to terminate count as timeouts and are
/// excluded from the latency summaries (message counts still included).
[[nodiscard]] Aggregate run_repeated(const SimConfig& base, std::size_t repeats);

/// Convenience: configure `protocol` with the registry's measurement
/// count (10 decisions for pipelined protocols, else 1), per §IV.
[[nodiscard]] SimConfig experiment_config(const std::string& protocol,
                                          std::uint32_t n, double lambda_ms,
                                          const DelaySpec& delay);

/// Fixed-width table printer for bench output.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int width = 14);
  void print_header(std::ostream& os) const;
  void print_row(std::ostream& os, const std::vector<std::string>& cells) const;

  /// Formats "mean ± stddev" with the given unit suffix.
  [[nodiscard]] static std::string cell(double mean, double stddev,
                                        const std::string& unit = "");
  [[nodiscard]] static std::string cell(double value, const std::string& unit = "");

 private:
  std::vector<std::string> headers_;
  int width_;
};

}  // namespace bftsim

// Repeated-trial experiment driver: runs a configuration R times with
// derived seeds, aggregates the paper's metrics (mean and standard
// deviation of time usage and message usage, §IV), and prints aligned
// tables for the figure-reproduction benches.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/stats.hpp"
#include "sim/result.hpp"

namespace bftsim {

/// Aggregated outcome of repeated runs of one configuration.
///
/// Timed-out runs (those that hit the horizon without reaching the decision
/// target) count toward `runs` and `timeouts` and are included in the raw
/// volume summaries (`messages`, `events`) — the work they generated is
/// real. They are excluded from every per-decision and latency summary
/// (`latency_ms`, `per_decision_latency_ms`, `per_decision_messages`): a
/// run that never reached its target has no meaningful per-decision rate.
/// `timeouts > 0` therefore flags that the raw and per-decision summaries
/// cover different run subsets (their `count` fields show which).
struct Aggregate {
  std::size_t runs = 0;
  std::size_t timeouts = 0;  ///< runs that hit the horizon without deciding

  Summary latency_ms;               ///< time to full termination
  Summary per_decision_latency_ms;  ///< termination time / decisions target
  Summary messages;                 ///< total protocol messages
  Summary per_decision_messages;
  Summary events;
  double wall_seconds_total = 0.0;

  /// Simulated seconds per decision, mean (negative when nothing decided).
  [[nodiscard]] double mean_latency_sec() const noexcept {
    return per_decision_latency_ms.mean / 1e3;
  }
};

/// True when `a` and `b` agree on every deterministic field — run/timeout
/// counts and all five summaries, compared exactly. Wall-clock totals are
/// ignored (host timing is the one nondeterministic output). This is the
/// serial-vs-parallel determinism check used by tests and benches.
[[nodiscard]] bool equivalent(const Aggregate& a, const Aggregate& b) noexcept;

/// Runs `base` `repeats` times (seeds base.seed, base.seed+1, ...) and
/// aggregates. Runs that fail to terminate count as timeouts; see the
/// Aggregate comment for which summaries include them.
[[nodiscard]] Aggregate run_repeated(const SimConfig& base, std::size_t repeats);

/// Parallel run_repeated: fans the `repeats` independent (config, seed)
/// runs across `jobs` worker threads (0 = ThreadPool::default_workers()).
/// Seeds are derived up front and results aggregated in submission order,
/// and every run owns its own Simulation/RNG/Metrics, so the returned
/// Aggregate is `equivalent()` to the serial one for any job count.
[[nodiscard]] Aggregate run_repeated_parallel(const SimConfig& base,
                                              std::size_t repeats,
                                              std::size_t jobs);

/// Runs every configuration in `points` `repeats` times, fanning all
/// (point, seed) pairs across one shared pool of `jobs` workers (0 =
/// default), and returns one Aggregate per point, in input order. Each
/// entry is `equivalent()` to `run_repeated(points[i], repeats)`.
[[nodiscard]] std::vector<Aggregate> run_sweep(const std::vector<SimConfig>& points,
                                               std::size_t repeats,
                                               std::size_t jobs);

/// Convenience: configure `protocol` with the registry's measurement
/// count (10 decisions for pipelined protocols, else 1), per §IV.
[[nodiscard]] SimConfig experiment_config(const std::string& protocol,
                                          std::uint32_t n, double lambda_ms,
                                          const DelaySpec& delay);

/// Fixed-width table printer for bench output.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int width = 14);
  void print_header(std::ostream& os) const;
  void print_row(std::ostream& os, const std::vector<std::string>& cells) const;

  /// Formats "mean ± stddev" with the given unit suffix.
  [[nodiscard]] static std::string cell(double mean, double stddev,
                                        const std::string& unit = "");
  [[nodiscard]] static std::string cell(double value, const std::string& unit = "");

 private:
  std::vector<std::string> headers_;
  int width_;
};

}  // namespace bftsim

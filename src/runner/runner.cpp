// Implementation of the repeated-trial experiment driver. The serial and
// parallel paths share one batch executor and one aggregation routine:
// each run's seed is a pure function of its repeat index (base.seed + i,
// computed inside the task), per-run results land in a slot indexed by
// repeat number, and summaries are computed from that vector in order —
// which is what makes run_repeated_parallel() bit-identical to
// run_repeated() regardless of worker count or scheduling.
#include "runner/runner.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "core/thread_pool.hpp"
#include "protocols/registry.hpp"
#include "sim/simulation.hpp"

namespace bftsim {

namespace {

/// Executes `repeats` runs of `base` with seeds base.seed + i. With more
/// than one job the runs are fanned across a pool; result order is by
/// repeat index either way.
std::vector<RunResult> run_batch(const SimConfig& base, std::size_t repeats,
                                 std::size_t jobs) {
  std::vector<RunResult> results(repeats);
  const auto one_run = [&base, &results](std::size_t i) {
    SimConfig cfg = base;
    cfg.seed = base.seed + i;
    results[i] = run_simulation(cfg);
  };
  if (jobs == 1) {
    for (std::size_t i = 0; i < repeats; ++i) one_run(i);
  } else {
    ThreadPool pool(jobs == 0 ? ThreadPool::default_workers() : jobs);
    parallel_for(pool, repeats, one_run);
  }
  return results;
}

/// Folds per-run results (in repeat order) into an Aggregate. See the
/// Aggregate comment for the timed-out-run inclusion rule.
Aggregate aggregate_results(const std::vector<RunResult>& results) {
  Aggregate agg;
  std::vector<double> latency;
  std::vector<double> per_dec_latency;
  std::vector<double> messages;
  std::vector<double> per_dec_messages;
  std::vector<double> events;
  std::vector<double> wl_rps;
  std::vector<double> wl_p50;
  std::vector<double> wl_p99;
  std::vector<double> wl_p999;

  for (const RunResult& result : results) {
    ++agg.runs;
    agg.wall_seconds_total += result.wall_seconds;
    messages.push_back(static_cast<double>(result.messages_sent));
    events.push_back(static_cast<double>(result.events_processed));
    if (result.workload.enabled) {
      ++agg.workload_runs;
      agg.workload_submitted += result.workload.submitted;
      agg.workload_decided += result.workload.decided;
      wl_rps.push_back(result.workload.requests_per_sec);
      wl_p50.push_back(result.workload.latency_p50_ms);
      wl_p99.push_back(result.workload.latency_p99_ms);
      wl_p999.push_back(result.workload.latency_p999_ms);
    }
    if (!result.terminated) {
      ++agg.timeouts;
      continue;
    }
    latency.push_back(result.latency_ms());
    per_dec_latency.push_back(result.per_decision_latency_ms());
    per_dec_messages.push_back(result.per_decision_messages());
  }

  agg.latency_ms = summarize(std::move(latency));
  agg.per_decision_latency_ms = summarize(std::move(per_dec_latency));
  agg.messages = summarize(std::move(messages));
  agg.per_decision_messages = summarize(std::move(per_dec_messages));
  agg.events = summarize(std::move(events));
  agg.workload_rps = summarize(std::move(wl_rps));
  agg.workload_p50_ms = summarize(std::move(wl_p50));
  agg.workload_p99_ms = summarize(std::move(wl_p99));
  agg.workload_p999_ms = summarize(std::move(wl_p999));
  return agg;
}

bool summaries_equal(const Summary& a, const Summary& b) noexcept {
  return a.count == b.count && a.mean == b.mean && a.stddev == b.stddev &&
         a.min == b.min && a.max == b.max && a.median == b.median &&
         a.p90 == b.p90 && a.p99 == b.p99;
}

}  // namespace

bool equivalent(const Aggregate& a, const Aggregate& b) noexcept {
  return a.runs == b.runs && a.timeouts == b.timeouts &&
         summaries_equal(a.latency_ms, b.latency_ms) &&
         summaries_equal(a.per_decision_latency_ms, b.per_decision_latency_ms) &&
         summaries_equal(a.messages, b.messages) &&
         summaries_equal(a.per_decision_messages, b.per_decision_messages) &&
         summaries_equal(a.events, b.events) &&
         a.workload_runs == b.workload_runs &&
         a.workload_submitted == b.workload_submitted &&
         a.workload_decided == b.workload_decided &&
         summaries_equal(a.workload_rps, b.workload_rps) &&
         summaries_equal(a.workload_p50_ms, b.workload_p50_ms) &&
         summaries_equal(a.workload_p99_ms, b.workload_p99_ms) &&
         summaries_equal(a.workload_p999_ms, b.workload_p999_ms);
}

Aggregate run_repeated(const SimConfig& base, std::size_t repeats) {
  return aggregate_results(run_batch(base, repeats, 1));
}

Aggregate run_repeated_parallel(const SimConfig& base, std::size_t repeats,
                                std::size_t jobs) {
  return aggregate_results(run_batch(base, repeats, jobs));
}

SimConfig Watchdog::apply(SimConfig cfg) const {
  if (max_events > 0) cfg.max_events = std::min(cfg.max_events, max_events);
  if (max_time_ms > 0) cfg.max_time_ms = std::min(cfg.max_time_ms, max_time_ms);
  return cfg;
}

SweepOutcome run_sweep_guarded(const std::vector<SimConfig>& points,
                               std::size_t repeats, std::size_t jobs,
                               const Watchdog& watchdog,
                               const std::vector<std::string>& labels) {
  if (!labels.empty() && labels.size() != points.size()) {
    throw std::invalid_argument(
        "run_sweep_guarded: " + std::to_string(labels.size()) +
        " labels for " + std::to_string(points.size()) + " points");
  }
  const auto point_label = [&labels](std::size_t p) {
    return labels.empty() ? "point-" + std::to_string(p) : labels[p];
  };
  struct Slot {
    RunResult result;
    std::string error;
    bool failed = false;
  };
  std::vector<std::vector<Slot>> slots(points.size());
  for (std::vector<Slot>& point_slots : slots) point_slots.resize(repeats);

  // Same flat (point, repeat) fan-out as run_sweep, but nothing a run
  // throws escapes its slot: the sweep always completes and failures are
  // reported as data.
  ThreadPool pool(jobs == 0 ? ThreadPool::default_workers() : jobs);
  for (std::size_t flat = 0; flat < points.size() * repeats; ++flat) {
    pool.submit([&points, &slots, &watchdog, repeats, flat] {
      const std::size_t p = flat / repeats;
      const std::size_t i = flat % repeats;
      Slot& slot = slots[p][i];
      try {
        SimConfig cfg = watchdog.apply(points[p]);
        cfg.seed = points[p].seed + i;
        slot.result = run_simulation(cfg);
      } catch (const std::exception& e) {
        slot.failed = true;
        slot.error = e.what();
      } catch (...) {
        slot.failed = true;
        slot.error = "unknown exception";
      }
    });
  }

  SweepOutcome outcome;
  // The per-slot try/catch above absorbs everything a run can throw, so an
  // exception out of wait_idle means the sweep infrastructure itself failed
  // (e.g. out-of-memory recording a slot error). Record it as a failure —
  // including how many further exceptions wait_idle discarded with it —
  // rather than losing the whole sweep.
  try {
    pool.wait_idle();
  } catch (const std::exception& e) {
    RunFailure failure;
    failure.label = "sweep";
    failure.error = std::string("sweep infrastructure failure: ") + e.what();
    failure.config = points.empty() ? SimConfig{} : watchdog.apply(points[0]);
    failure.seed = failure.config.seed;
    failure.suppressed = pool.last_suppressed_failures();
    outcome.failures.push_back(std::move(failure));
  }
  outcome.points.reserve(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    PointOutcome point;
    std::vector<RunResult> completed;
    completed.reserve(repeats);
    for (std::size_t i = 0; i < repeats; ++i) {
      const Slot& slot = slots[p][i];
      if (slot.failed) {
        ++point.tally.failed;
        RunFailure failure;
        failure.point = p;
        failure.repeat = i;
        failure.seed = points[p].seed + i;
        failure.label = point_label(p) + "/repeat-" + std::to_string(i);
        failure.error = slot.error;
        failure.config = watchdog.apply(points[p]);
        failure.config.seed = failure.seed;
        outcome.failures.push_back(std::move(failure));
        continue;
      }
      switch (slot.result.termination_reason) {
        case TerminationReason::kDecided: ++point.tally.decided; break;
        case TerminationReason::kHorizon: ++point.tally.horizon; break;
        case TerminationReason::kEventBudget: ++point.tally.event_budget; break;
        case TerminationReason::kQueueDrained: ++point.tally.queue_drained; break;
      }
      completed.push_back(slot.result);
    }
    point.aggregate = aggregate_results(completed);
    outcome.points.push_back(std::move(point));
  }
  return outcome;
}

std::vector<Aggregate> run_sweep(const std::vector<SimConfig>& points,
                                 std::size_t repeats, std::size_t jobs) {
  std::vector<std::vector<RunResult>> results(points.size());
  for (std::vector<RunResult>& point_results : results) {
    point_results.resize(repeats);
  }

  // One flat task per (point, repeat) pair over one shared pool, so a
  // point with slow runs cannot serialize the whole sweep behind it.
  ThreadPool pool(jobs == 0 ? ThreadPool::default_workers() : jobs);
  parallel_for(pool, points.size() * repeats,
               [&points, &results, repeats](std::size_t flat) {
                 const std::size_t p = flat / repeats;
                 const std::size_t i = flat % repeats;
                 SimConfig cfg = points[p];
                 cfg.seed = points[p].seed + i;
                 results[p][i] = run_simulation(cfg);
               });

  std::vector<Aggregate> aggregates;
  aggregates.reserve(points.size());
  for (const std::vector<RunResult>& point_results : results) {
    aggregates.push_back(aggregate_results(point_results));
  }
  return aggregates;
}

SimConfig experiment_config(const std::string& protocol, std::uint32_t n,
                            double lambda_ms, const DelaySpec& delay) {
  SimConfig cfg;
  cfg.protocol = protocol;
  cfg.n = n;
  cfg.lambda_ms = lambda_ms;
  cfg.delay = delay;
  cfg.decisions = ProtocolRegistry::instance().get(protocol).measured_decisions;
  return cfg;
}

Table::Table(std::vector<std::string> headers, int width)
    : headers_(std::move(headers)), width_(width) {}

void Table::print_header(std::ostream& os) const {
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    os << std::setw(i == 0 ? 16 : width_) << std::left << headers_[i];
  }
  os << '\n';
  os << std::string(16 + width_ * (headers_.size() - 1), '-') << '\n';
}

void Table::print_row(std::ostream& os, const std::vector<std::string>& cells) const {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    os << std::setw(i == 0 ? 16 : width_) << std::left << cells[i];
  }
  os << '\n';
}

std::string Table::cell(double mean, double stddev, const std::string& unit) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(mean < 10 ? 2 : 0) << mean << "±"
     << std::setprecision(stddev < 10 ? 1 : 0) << stddev << unit;
  return os.str();
}

std::string Table::cell(double value, const std::string& unit) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(value < 10 ? 2 : 0) << value << unit;
  return os.str();
}

}  // namespace bftsim

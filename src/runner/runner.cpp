#include "runner/runner.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "protocols/registry.hpp"
#include "sim/simulation.hpp"

namespace bftsim {

Aggregate run_repeated(const SimConfig& base, std::size_t repeats) {
  Aggregate agg;
  std::vector<double> latency;
  std::vector<double> per_dec_latency;
  std::vector<double> messages;
  std::vector<double> per_dec_messages;
  std::vector<double> events;

  for (std::size_t i = 0; i < repeats; ++i) {
    SimConfig cfg = base;
    cfg.seed = base.seed + i;
    const RunResult result = run_simulation(cfg);
    ++agg.runs;
    agg.wall_seconds_total += result.wall_seconds;
    messages.push_back(static_cast<double>(result.messages_sent));
    per_dec_messages.push_back(result.per_decision_messages());
    events.push_back(static_cast<double>(result.events_processed));
    if (!result.terminated) {
      ++agg.timeouts;
      continue;
    }
    latency.push_back(result.latency_ms());
    per_dec_latency.push_back(result.per_decision_latency_ms());
  }

  agg.latency_ms = summarize(std::move(latency));
  agg.per_decision_latency_ms = summarize(std::move(per_dec_latency));
  agg.messages = summarize(std::move(messages));
  agg.per_decision_messages = summarize(std::move(per_dec_messages));
  agg.events = summarize(std::move(events));
  return agg;
}

SimConfig experiment_config(const std::string& protocol, std::uint32_t n,
                            double lambda_ms, const DelaySpec& delay) {
  SimConfig cfg;
  cfg.protocol = protocol;
  cfg.n = n;
  cfg.lambda_ms = lambda_ms;
  cfg.delay = delay;
  cfg.decisions = ProtocolRegistry::instance().get(protocol).measured_decisions;
  return cfg;
}

Table::Table(std::vector<std::string> headers, int width)
    : headers_(std::move(headers)), width_(width) {}

void Table::print_header(std::ostream& os) const {
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    os << std::setw(i == 0 ? 16 : width_) << std::left << headers_[i];
  }
  os << '\n';
  os << std::string(16 + width_ * (headers_.size() - 1), '-') << '\n';
}

void Table::print_row(std::ostream& os, const std::vector<std::string>& cells) const {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    os << std::setw(i == 0 ? 16 : width_) << std::left << cells[i];
  }
  os << '\n';
}

std::string Table::cell(double mean, double stddev, const std::string& unit) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(mean < 10 ? 2 : 0) << mean << "±"
     << std::setprecision(stddev < 10 ? 1 : 0) << stddev << unit;
  return os.str();
}

std::string Table::cell(double value, const std::string& unit) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(value < 10 ? 2 : 0) << value << unit;
  return os.str();
}

}  // namespace bftsim

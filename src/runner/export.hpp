// JSON export of run results, aggregates, and experiment manifests, for
// plotting pipelines and archival of experiment outputs (the BENCH_*.json
// trajectory: every bench binary can emit its numbers machine-readably).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/json.hpp"
#include "runner/runner.hpp"
#include "sim/result.hpp"

namespace bftsim {

/// Identifying metadata of one experiment batch: what was run, with which
/// seeds, on how many workers, and how long the batch took on the host.
/// Serialized next to every exported Aggregate so a result file is
/// self-describing and reproducible.
struct RunManifest {
  std::string name;     ///< experiment / sweep-point label (e.g. "fig3/pbft")
  SimConfig config;     ///< base configuration; config.seed is the first seed
  std::size_t repeats = 0;  ///< seeds config.seed .. config.seed + repeats - 1
  std::size_t jobs = 1;     ///< worker threads the batch ran on
  double wall_seconds = 0.0;  ///< host wall-clock for the whole batch
};

/// Serializes a manifest (protocol, n, λ, delay spec, seed range, worker
/// count, wall-clock, and the full config for exact reproduction).
[[nodiscard]] json::Value manifest_to_json(const RunManifest& manifest);

/// Serializes one experiment: `{"manifest": ..., "aggregate": ...}`.
[[nodiscard]] json::Value experiment_to_json(const RunManifest& manifest,
                                             const Aggregate& aggregate);

/// As above, plus a `"runs"` array with every per-run result.
[[nodiscard]] json::Value experiment_to_json(const RunManifest& manifest,
                                             const Aggregate& aggregate,
                                             const std::vector<RunResult>& runs);

/// Serializes one run's outcome (metrics, decisions, optional views).
/// `include_views` controls the potentially large view trajectory.
[[nodiscard]] json::Value result_to_json(const RunResult& result,
                                         bool include_views = false);

/// Serializes an aggregate (mean/stddev/min/max/percentiles per metric).
[[nodiscard]] json::Value aggregate_to_json(const Aggregate& aggregate);

/// Serializes one run's request-level workload stats (conservation
/// counters, throughput, latency percentiles).
[[nodiscard]] json::Value workload_to_json(const WorkloadStats& wl);

/// Renders a trace fingerprint as the canonical 16-hex-digit string used
/// across exports, trace files and tools/trace_inspect.
[[nodiscard]] std::string fingerprint_to_hex(std::uint64_t fingerprint);

/// Serializes a run timeline: `{"tick_us": ..., "samples": [...]}`.
[[nodiscard]] json::Value timeline_to_json(
    const std::vector<obs::TimelineSample>& samples, Time tick);

/// Serializes a Summary.
[[nodiscard]] json::Value summary_to_json(const Summary& summary);

/// Serializes one guarded-sweep failure (point/repeat/seed/error + the
/// full failing config, so the record alone reproduces the failure).
[[nodiscard]] json::Value run_failure_to_json(const RunFailure& failure);

/// Serializes a per-point termination census.
[[nodiscard]] json::Value termination_tally_to_json(const TerminationTally& tally);

/// Serializes a full guarded-sweep outcome: per-point aggregates and
/// tallies, the failure list, and an `"ok"` flag.
[[nodiscard]] json::Value sweep_outcome_to_json(const SweepOutcome& outcome);

/// Writes `value` to `path` pretty-printed; throws std::runtime_error on
/// I/O failure.
void write_json_file(const std::string& path, const json::Value& value);

}  // namespace bftsim

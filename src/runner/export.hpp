// JSON export of run results and aggregates, for plotting pipelines and
// archival of experiment outputs.
#pragma once

#include <string>

#include "core/json.hpp"
#include "runner/runner.hpp"
#include "sim/result.hpp"

namespace bftsim {

/// Serializes one run's outcome (metrics, decisions, optional views).
/// `include_views` controls the potentially large view trajectory.
[[nodiscard]] json::Value result_to_json(const RunResult& result,
                                         bool include_views = false);

/// Serializes an aggregate (mean/stddev/min/max/percentiles per metric).
[[nodiscard]] json::Value aggregate_to_json(const Aggregate& aggregate);

/// Serializes a Summary.
[[nodiscard]] json::Value summary_to_json(const Summary& summary);

/// Writes `value` to `path` pretty-printed; throws std::runtime_error on
/// I/O failure.
void write_json_file(const std::string& path, const json::Value& value);

}  // namespace bftsim

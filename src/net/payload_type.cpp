#include "net/payload_type.hpp"

#include <stdexcept>
#include <string>

namespace bftsim {

PayloadTypeRegistry& PayloadTypeRegistry::instance() {
  static PayloadTypeRegistry registry = [] {
    PayloadTypeRegistry r;
    register_builtin_payload_types(r);
    return r;
  }();
  return registry;
}

void PayloadTypeRegistry::add(PayloadType id, std::string_view name) {
  const std::size_t index = to_index(id);
  if (index >= names_.size()) names_.resize(index + 1);
  if (!names_[index].empty() && names_[index] != name) {
    throw std::invalid_argument("payload type id " + std::to_string(index) +
                                " already registered as " + names_[index]);
  }
  names_[index] = std::string(name);
}

std::string PayloadTypeRegistry::name(PayloadType id) const {
  const std::size_t index = to_index(id);
  if (index < names_.size() && !names_[index].empty()) return names_[index];
  return "payload-type-" + std::to_string(index);
}

bool PayloadTypeRegistry::contains(PayloadType id) const noexcept {
  const std::size_t index = to_index(id);
  return index < names_.size() && !names_[index].empty();
}

std::size_t PayloadTypeRegistry::index_limit() const noexcept {
  return names_.size();
}

void register_builtin_payload_types(PayloadTypeRegistry& registry) {
  if (registry.contains(PayloadType::kPbftPrePrepare)) return;  // already done

  registry.add(PayloadType::kPbftPrePrepare, "pbft/pre-prepare");
  registry.add(PayloadType::kPbftPrepare, "pbft/prepare");
  registry.add(PayloadType::kPbftCommit, "pbft/commit");
  registry.add(PayloadType::kPbftViewChange, "pbft/view-change");
  registry.add(PayloadType::kPbftNewView, "pbft/new-view");

  registry.add(PayloadType::kHotStuffProposal, "hotstuff/proposal");
  registry.add(PayloadType::kHotStuffVote, "hotstuff/vote");
  registry.add(PayloadType::kHotStuffBlockRequest, "hotstuff/block-req");
  registry.add(PayloadType::kHotStuffBlockResponse, "hotstuff/block-resp");

  registry.add(PayloadType::kLibraTimeout, "librabft/timeout");
  registry.add(PayloadType::kLibraTimeoutCertificate, "librabft/tc");

  registry.add(PayloadType::kTendermintProposal, "tendermint/proposal");
  registry.add(PayloadType::kTendermintPrevote, "tendermint/prevote");
  registry.add(PayloadType::kTendermintPrecommit, "tendermint/precommit");

  registry.add(PayloadType::kSyncHotStuffProposal, "sync-hs/proposal");
  registry.add(PayloadType::kSyncHotStuffVote, "sync-hs/vote");
  registry.add(PayloadType::kSyncHotStuffBlame, "sync-hs/blame");

  registry.add(PayloadType::kAddElect, "add/elect");
  registry.add(PayloadType::kAddPropose, "add/propose");
  registry.add(PayloadType::kAddPrepare, "add/prepare");
  registry.add(PayloadType::kAddVote, "add/vote");
  registry.add(PayloadType::kAddCommit, "add/commit");

  registry.add(PayloadType::kAlgorandProposal, "algorand/proposal");
  registry.add(PayloadType::kAlgorandSoftVote, "algorand/soft-vote");
  registry.add(PayloadType::kAlgorandCertVote, "algorand/cert-vote");
  registry.add(PayloadType::kAlgorandNextVote, "algorand/next-vote");

  registry.add(PayloadType::kBrachaInit, "asyncba/init");
  registry.add(PayloadType::kBrachaEcho, "asyncba/echo");
  registry.add(PayloadType::kBrachaReady, "asyncba/ready");
}

}  // namespace bftsim

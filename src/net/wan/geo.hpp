// Bundled inter-region RTT tables for the WAN transport backend.
//
// The tables are named so a config can select one with a single string
// ("matrix": "geo8") instead of pasting a full matrix. Values are
// round-trip times in milliseconds between cloud-style regions, rounded
// from public inter-region latency surveys; the simulator charges half the
// RTT as the one-way propagation base (see docs/NETWORKING.md).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace bftsim::wan {

/// A named RTT matrix: `rtt_ms[i * regions.size() + j]` is the round-trip
/// time between regions i and j, symmetric, with a small intra-region value
/// on the diagonal.
struct GeoTable {
  std::string_view name;
  std::vector<std::string_view> regions;
  std::vector<double> rtt_ms;  ///< row-major, regions.size() squared
};

/// Returns the bundled table named `name`, or nullptr when unknown.
[[nodiscard]] const GeoTable* find_geo_table(std::string_view name);

/// Names of every bundled table, for error messages ("geo8").
[[nodiscard]] std::string bundled_table_names();

/// Index of `region` within `table`, or npos when the table has no such
/// region.
[[nodiscard]] std::size_t region_index(const GeoTable& table,
                                       std::string_view region);

}  // namespace bftsim::wan

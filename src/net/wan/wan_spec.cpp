#include "net/wan/wan_spec.hpp"

#include <algorithm>

#include "core/config_check.hpp"
#include "net/wan/geo.hpp"

namespace bftsim {

namespace {

using cfgcheck::fail;
using cfgcheck::int_in;
using cfgcheck::number_in;
using cfgcheck::require_keys;

constexpr double kMaxRttMs = 1e7;
constexpr double kMaxMbps = 1e6;
constexpr std::int64_t kMaxFanout = 1024;

[[nodiscard]] std::string backend_name(WanSpec::Backend backend) {
  switch (backend) {
    case WanSpec::Backend::kDirect: return "direct";
    case WanSpec::Backend::kGossip: return "gossip";
  }
  return "?";
}

/// Selects rows/columns of a bundled table. An empty `wanted` list keeps
/// the whole table; names are checked one by one so the error points at
/// the exact list entry.
void select_from_table(const wan::GeoTable& table,
                       const std::vector<std::string>& wanted,
                       const std::string& path, WanSpec& spec) {
  std::vector<std::size_t> indices;
  if (wanted.empty()) {
    indices.resize(table.regions.size());
    for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
    spec.regions.reserve(indices.size());
    for (const std::string_view r : table.regions) spec.regions.emplace_back(r);
  } else {
    indices.reserve(wanted.size());
    for (std::size_t i = 0; i < wanted.size(); ++i) {
      const std::size_t index = wan::region_index(table, wanted[i]);
      if (index == static_cast<std::size_t>(-1)) {
        fail(path + ".rtt.regions[" + std::to_string(i) + "]",
             "unknown region \"" + wanted[i] + "\" in matrix \"" +
                 std::string(table.name) + "\"");
      }
      indices.push_back(index);
    }
    spec.regions = wanted;
  }
  const std::size_t k = indices.size();
  spec.rtt_ms.resize(k * k);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      spec.rtt_ms[i * k + j] =
          table.rtt_ms[indices[i] * table.regions.size() + indices[j]];
    }
  }
}

[[nodiscard]] std::vector<std::string> parse_region_names(
    const json::Value& v, const std::string& path) {
  if (!v.is_array()) fail(path, "must be an array of region names");
  std::vector<std::string> names;
  const json::Array& arr = v.as_array();
  names.reserve(arr.size());
  for (std::size_t i = 0; i < arr.size(); ++i) {
    if (!arr[i].is_string()) {
      fail(path + "[" + std::to_string(i) + "]", "must be a string");
    }
    names.push_back(arr[i].as_string());
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      if (names[i] == names[j]) {
        fail(path + "[" + std::to_string(j) + "]",
             "duplicate region \"" + names[j] + "\"");
      }
    }
  }
  return names;
}

void parse_rtt(const json::Value& v, const std::string& path, WanSpec& spec) {
  require_keys(v, path, {"matrix", "regions", "rtt_ms"});
  const json::Object& o = v.as_object();
  const json::Value* matrix = o.find("matrix");
  const json::Value* regions = o.find("regions");
  const json::Value* rtt = o.find("rtt_ms");

  if (matrix != nullptr && rtt != nullptr) {
    fail(path, "give either a bundled \"matrix\" name or a custom \"rtt_ms\" "
               "table, not both");
  }
  if (matrix != nullptr) {
    const std::string& name = matrix->as_string();
    const wan::GeoTable* table = wan::find_geo_table(name);
    if (table == nullptr) {
      fail(path + ".matrix", "unknown matrix \"" + name + "\" (bundled: " +
                                 wan::bundled_table_names() + ")");
    }
    std::vector<std::string> wanted;
    if (regions != nullptr) {
      wanted = parse_region_names(*regions, path + ".regions");
      if (wanted.empty()) fail(path + ".regions", "must name at least one region");
    }
    select_from_table(*table, wanted, "$.net", spec);
    return;
  }
  if (rtt == nullptr || regions == nullptr) {
    fail(path, "a custom table needs both \"regions\" and \"rtt_ms\"");
  }
  spec.regions = parse_region_names(*regions, path + ".regions");
  if (spec.regions.empty()) fail(path + ".regions", "must name at least one region");

  if (!rtt->is_array()) fail(path + ".rtt_ms", "must be an array of rows");
  const json::Array& rows = rtt->as_array();
  const std::size_t k = spec.regions.size();
  if (rows.size() != k) {
    fail(path + ".rtt_ms",
         "matrix must be square over the " + std::to_string(k) + " region(s): got " +
             std::to_string(rows.size()) + " row(s)");
  }
  spec.rtt_ms.reserve(k * k);
  for (std::size_t i = 0; i < k; ++i) {
    if (!rows[i].is_array() || rows[i].as_array().size() != k) {
      fail(path + ".rtt_ms[" + std::to_string(i) + "]",
           "matrix must be square: row needs exactly " + std::to_string(k) +
               " entries");
    }
    const json::Array& row = rows[i].as_array();
    for (std::size_t j = 0; j < k; ++j) {
      if (!row[j].is_number()) {
        fail(path + ".rtt_ms[" + std::to_string(i) + "][" + std::to_string(j) + "]",
             "must be a number (milliseconds)");
      }
      const double ms = row[j].as_number();
      if (ms < 0.0 || ms > kMaxRttMs) {
        fail(path + ".rtt_ms[" + std::to_string(i) + "][" + std::to_string(j) + "]",
             "must be within [0, " + std::to_string(kMaxRttMs) + "]");
      }
      spec.rtt_ms.push_back(ms);
    }
  }
}

}  // namespace

double WanSpec::min_one_way_ms() const noexcept {
  if (!has_matrix()) return 0.0;
  const double lo = *std::min_element(rtt_ms.begin(), rtt_ms.end());
  return lo / 2.0;
}

void WanSpec::validate(const std::string& path) const {
  if (rtt_ms.size() != regions.size() * regions.size()) {
    fail(path + ".rtt_ms", "matrix must be square over the " +
                               std::to_string(regions.size()) + " region(s)");
  }
  for (const double ms : rtt_ms) {
    if (ms < 0.0 || ms > kMaxRttMs) {
      fail(path + ".rtt_ms", "entries must be within [0, " +
                                 std::to_string(kMaxRttMs) + "]");
    }
  }
  if (uplink_mbps < 0.0 || uplink_mbps > kMaxMbps) {
    fail(path + ".uplink_mbps",
         "must be within [0, " + std::to_string(kMaxMbps) + "]");
  }
  if (downlink_mbps < 0.0 || downlink_mbps > kMaxMbps) {
    fail(path + ".downlink_mbps",
         "must be within [0, " + std::to_string(kMaxMbps) + "]");
  }
  if (fanout < 1 || fanout > kMaxFanout) {
    fail(path + ".fanout", "must be within [1, " + std::to_string(kMaxFanout) + "]");
  }
}

json::Value WanSpec::to_json() const {
  json::Object o;
  o["backend"] = backend_name(backend);
  if (has_matrix()) {
    // Always emitted in the self-contained custom form, so a re-parsed
    // config never depends on which tables this build bundles.
    json::Object rtt;
    json::Array names;
    for (const std::string& r : regions) names.emplace_back(r);
    rtt["regions"] = json::Value{std::move(names)};
    json::Array rows;
    const std::size_t k = regions.size();
    for (std::size_t i = 0; i < k; ++i) {
      json::Array row;
      for (std::size_t j = 0; j < k; ++j) row.emplace_back(rtt_ms[i * k + j]);
      rows.push_back(json::Value{std::move(row)});
    }
    rtt["rtt_ms"] = json::Value{std::move(rows)};
    o["rtt"] = json::Value{std::move(rtt)};
  }
  o["uplink_mbps"] = uplink_mbps;
  o["downlink_mbps"] = downlink_mbps;
  if (gossip()) o["fanout"] = static_cast<std::int64_t>(fanout);
  return json::Value{std::move(o)};
}

WanSpec WanSpec::from_json(const json::Value& v, const std::string& path) {
  require_keys(v, path,
               {"backend", "rtt", "uplink_mbps", "downlink_mbps", "fanout"});
  WanSpec spec;
  const std::string backend = v.get_string("backend", "direct");
  if (backend == "direct") {
    spec.backend = Backend::kDirect;
  } else if (backend == "gossip") {
    spec.backend = Backend::kGossip;
  } else {
    fail(path + ".backend", "unknown backend \"" + backend +
                                "\" (expected \"direct\" or \"gossip\")");
  }
  if (const json::Value* rtt = v.as_object().find("rtt")) {
    parse_rtt(*rtt, path + ".rtt", spec);
  }
  spec.uplink_mbps =
      number_in(v, path, "uplink_mbps", spec.uplink_mbps, 0.0, kMaxMbps);
  spec.downlink_mbps =
      number_in(v, path, "downlink_mbps", spec.downlink_mbps, 0.0, kMaxMbps);
  spec.fanout = static_cast<std::uint32_t>(
      int_in(v, path, "fanout", spec.fanout, 1, kMaxFanout));
  spec.validate(path);
  return spec;
}

}  // namespace bftsim

#include "net/wan/wan_model.hpp"

#include <algorithm>
#include <limits>

namespace bftsim {

WanModel::WanModel(const WanSpec& spec, std::uint32_t n, Rng overlay_rng)
    : spec_(spec), region_n_(spec.region_count()) {
  if (region_n_ > 0) {
    base_us_.resize(static_cast<std::size_t>(region_n_) * region_n_);
    min_base_us_ = std::numeric_limits<Time>::max();
    for (std::size_t i = 0; i < base_us_.size(); ++i) {
      base_us_[i] = from_ms(spec_.rtt_ms[i] / 2.0);
      min_base_us_ = std::min(min_base_us_, base_us_[i]);
    }
  }
  if (spec_.bandwidth_enabled()) {
    if (spec_.uplink_mbps > 0.0) up_free_.assign(n, 0);
    if (spec_.downlink_mbps > 0.0) down_free_.assign(n, 0);
  }
  if (spec_.gossip()) {
    // Fixed directed overlay: node v always links to its ring successor
    // (connectivity over any live subset that forms a contiguous arc, and a
    // deterministic backbone regardless of fanout), plus fanout-1 distinct
    // seeded random peers. Draw order is fixed, so the overlay is a pure
    // function of (run seed, n, fanout).
    peers_.resize(n);
    for (NodeId v = 0; v < n; ++v) {
      std::vector<NodeId>& out = peers_[v];
      if (n <= 1) continue;
      if (spec_.fanout >= n - 1) {
        out.reserve(n - 1);
        for (NodeId u = 0; u < n; ++u) {
          if (u != v) out.push_back(u);
        }
        continue;
      }
      out.reserve(spec_.fanout);
      out.push_back((v + 1) % n);
      while (out.size() < spec_.fanout) {
        const auto u = static_cast<NodeId>(overlay_rng.next_below(n));
        if (u == v) continue;
        if (std::find(out.begin(), out.end(), u) != out.end()) continue;
        out.push_back(u);
      }
    }
  }
}

Time WanModel::delivery_time(NodeId src, NodeId dst, std::size_t bytes,
                             Time depart, Time prop) noexcept {
  Time arrive;
  if (up_free_.empty()) {
    arrive = depart + prop;
  } else {
    // The sender's NIC serializes messages one at a time in send order: the
    // transmission starts when both the message and the uplink are ready.
    const Time start = std::max(up_free_[src], depart);
    up_free_[src] = start + serialize_time(bytes, spec_.uplink_mbps);
    arrive = up_free_[src] + prop;
  }
  if (down_free_.empty()) return arrive;
  // Same FIFO approximation on the receiver side: a message queues behind
  // whatever the downlink is still draining when its last bit arrives.
  const Time start = std::max(down_free_[dst], arrive);
  down_free_[dst] = start + serialize_time(bytes, spec_.downlink_mbps);
  return down_free_[dst];
}

}  // namespace bftsim

// Configuration of the topology-aware WAN transport backend ($.net).
//
// The paper's network module draws every delay from one distribution and
// the geo topology extension (net/topology.hpp) applies a single
// cross-region transform. The WAN backend replaces both with three
// independently selectable pieces:
//
//   - a per-(src-region, dst-region) propagation base from a named RTT
//     matrix — a bundled real-world table ("geo8") or a user-supplied one;
//   - per-node up/downlink bandwidth: message-size serialization delay and
//     FIFO queue buildup approximated at message granularity;
//   - gossip dissemination: broadcasts fan out to k peers over a seeded
//     deterministic overlay instead of directly to all n-1 destinations.
//
// $.net and $.topology are mutually exclusive (SimConfig::validate). See
// docs/NETWORKING.md for the full semantics and the determinism argument.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/json.hpp"
#include "core/types.hpp"

namespace bftsim {

/// Parsed $.net block; part of SimConfig (held by value, like FaultConfig).
/// The default-constructed spec is disabled: a config without $.net runs
/// the classic direct-broadcast network bit-identically to older releases.
struct WanSpec {
  enum class Backend : std::uint8_t { kDirect, kGossip };

  Backend backend = Backend::kDirect;

  /// Region names; empty = no RTT matrix. Nodes map to regions round-robin
  /// (node id mod regions.size()), like TopologySpec, so quorums always
  /// span regions.
  std::vector<std::string> regions;
  /// Row-major RTT matrix in milliseconds, regions.size() squared; the
  /// one-way propagation base charged per message is rtt/2.
  std::vector<double> rtt_ms;

  double uplink_mbps = 0.0;    ///< per-node uplink rate; 0 = unlimited
  double downlink_mbps = 0.0;  ///< per-node downlink rate; 0 = unlimited

  /// Gossip fan-out degree: every (re)transmission goes to this many
  /// overlay peers. Only meaningful with backend == kGossip.
  std::uint32_t fanout = 3;

  [[nodiscard]] bool has_matrix() const noexcept { return !regions.empty(); }
  [[nodiscard]] bool bandwidth_enabled() const noexcept {
    return uplink_mbps > 0.0 || downlink_mbps > 0.0;
  }
  [[nodiscard]] bool gossip() const noexcept {
    return backend == Backend::kGossip;
  }
  /// True when any piece of the WAN backend is selected (gates both the
  /// controller's WanModel construction and JSON emission).
  [[nodiscard]] bool enabled() const noexcept {
    return gossip() || has_matrix() || bandwidth_enabled();
  }

  [[nodiscard]] std::uint32_t region_count() const noexcept {
    return static_cast<std::uint32_t>(regions.size());
  }
  [[nodiscard]] std::uint32_t region_of(NodeId node) const noexcept {
    return regions.empty()
               ? 0
               : node % static_cast<std::uint32_t>(regions.size());
  }
  /// RTT between region indices (ms); requires has_matrix().
  [[nodiscard]] double rtt(std::uint32_t i, std::uint32_t j) const noexcept {
    return rtt_ms[static_cast<std::size_t>(i) * regions.size() + j];
  }
  /// Smallest one-way propagation base over all region pairs (ms); 0 when
  /// no matrix is configured. The windowed engine's lookahead adds this to
  /// the delay distribution's infimum.
  [[nodiscard]] double min_one_way_ms() const noexcept;

  /// Structural invariants (square matrix, non-negative entries, fanout
  /// >= 1); throws the canonical path-aware config error. from_json always
  /// leaves a valid spec; this re-checks programmatically built ones.
  void validate(const std::string& path = "$.net") const;

  [[nodiscard]] json::Value to_json() const;
  /// Strict parse: unknown keys / unknown region or matrix names /
  /// non-square matrices / negative rates throw a single-line
  /// "config error at $.net..." naming the offending path.
  [[nodiscard]] static WanSpec from_json(const json::Value& v,
                                         const std::string& path = "$.net");
};

}  // namespace bftsim

#include "net/wan/geo.hpp"

namespace bftsim::wan {

namespace {

// Eight-region WAN: two North American, two European, three Asia-Pacific
// and one South American region. Symmetric RTTs in milliseconds; the 2 ms
// diagonal models the intra-region hop between availability zones.
const GeoTable kGeo8 = {
    "geo8",
    {"us-east", "us-west", "eu-west", "eu-central", "ap-south", "ap-northeast",
     "ap-southeast", "sa-east"},
    {
        2,   65,  75,  85,  190, 170, 210, 115,  // us-east
        65,  2,   135, 145, 220, 110, 175, 175,  // us-west
        75,  135, 2,   25,  110, 210, 160, 185,  // eu-west
        85,  145, 25,  2,   105, 225, 155, 200,  // eu-central
        190, 220, 110, 105, 2,   120, 60,  300,  // ap-south
        170, 110, 210, 225, 120, 2,   70,  255,  // ap-northeast
        210, 175, 160, 155, 60,  70,  2,   320,  // ap-southeast
        115, 175, 185, 200, 300, 255, 320, 2,    // sa-east
    },
};

}  // namespace

const GeoTable* find_geo_table(std::string_view name) {
  if (name == kGeo8.name) return &kGeo8;
  return nullptr;
}

std::string bundled_table_names() { return std::string(kGeo8.name); }

std::size_t region_index(const GeoTable& table, std::string_view region) {
  for (std::size_t i = 0; i < table.regions.size(); ++i) {
    if (table.regions[i] == region) return i;
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace bftsim::wan

// Runtime state of the WAN transport backend (one instance per run).
//
// Three concerns, all deterministic:
//
//   - propagation: base_delay(src, dst) = half the configured RTT between
//     the nodes' regions, a pure function of the node pair — it consumes no
//     randomness, which is what keeps matrix-only runs valid under the
//     windowed-parallel engine's per-node RNG streams;
//   - bandwidth: delivery_time() charges message-size serialization on the
//     sender's uplink and the receiver's downlink, each modeled as a FIFO
//     next-free-time scalar, so back-to-back sends queue behind each other
//     at message granularity (no packet events). Stateful and
//     order-dependent, hence serial-engine-only (SimConfig::validate);
//   - gossip overlay: peers_of(v) is a fixed k-regular-ish directed overlay
//     (ring edge + fanout-1 seeded random peers) built at construction as a
//     pure function of the overlay RNG stream. The ring edge guarantees
//     connectivity over live nodes, so dissemination cannot strand a node
//     by overlay bad luck.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "core/types.hpp"
#include "net/wan/wan_spec.hpp"

namespace bftsim {

class WanModel {
 public:
  /// `overlay_rng` seeds the gossip overlay; it is only drawn from when the
  /// spec selects the gossip backend, and the controller only forks it when
  /// the spec is enabled at all (golden bit-identity for classic runs).
  WanModel(const WanSpec& spec, std::uint32_t n, Rng overlay_rng);
  WanModel(const WanModel&) = delete;
  WanModel& operator=(const WanModel&) = delete;

  [[nodiscard]] const WanSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] bool gossip() const noexcept { return spec_.gossip(); }
  [[nodiscard]] bool bandwidth_enabled() const noexcept {
    return spec_.bandwidth_enabled();
  }

  /// One-way propagation base between the nodes' regions (rtt/2), in Time
  /// units; 0 without a matrix. Pure function of (src, dst).
  [[nodiscard]] Time base_delay(NodeId src, NodeId dst) const noexcept {
    if (base_us_.empty()) return 0;
    return base_us_[static_cast<std::size_t>(region_of(src)) * region_n_ +
                    region_of(dst)];
  }

  /// Smallest base_delay over all region pairs — the windowed lookahead's
  /// WAN term.
  [[nodiscard]] Time min_base_delay() const noexcept { return min_base_us_; }

  [[nodiscard]] std::uint32_t region_of(NodeId node) const noexcept {
    return region_n_ == 0 ? 0 : node % region_n_;
  }

  /// Absolute delivery time of a message of `bytes` wire bytes departing
  /// `src` for `dst` no earlier than `depart`, with the full propagation
  /// delay `prop` (sampled draw + base_delay, >= 0) already computed by the
  /// caller. Advances the uplink/downlink next-free scalars when bandwidth
  /// is enabled — call exactly once per scheduled transmission, in send
  /// order; without bandwidth it is the pure depart + prop.
  [[nodiscard]] Time delivery_time(NodeId src, NodeId dst, std::size_t bytes,
                                   Time depart, Time prop) noexcept;

  /// Gossip overlay out-neighbors of `v` (empty unless gossip backend).
  [[nodiscard]] const std::vector<NodeId>& peers_of(NodeId v) const noexcept {
    return peers_[v];
  }

 private:
  /// Serialization time of `bytes` at `mbps` in Time units (microseconds):
  /// bytes * 8 bits / (mbps * 1e6 bits/s) = bytes * 8 / mbps microseconds.
  [[nodiscard]] static Time serialize_time(std::size_t bytes,
                                           double mbps) noexcept {
    if (mbps <= 0.0) return 0;
    return static_cast<Time>(static_cast<double>(bytes) * 8.0 / mbps);
  }

  WanSpec spec_;
  std::uint32_t region_n_ = 0;
  std::vector<Time> base_us_;  ///< one-way per region pair, row-major
  Time min_base_us_ = 0;
  std::vector<Time> up_free_;    ///< per-node uplink next-free time
  std::vector<Time> down_free_;  ///< per-node downlink next-free time
  std::vector<std::vector<NodeId>> peers_;
};

}  // namespace bftsim

// Pairwise link up/down state for the fault layer.
//
// A flat n*n counter matrix: a link flap window increments both directions
// on its down transition and decrements them on its up transition, so
// overlapping windows (which the fault plan merges anyway) would still nest
// correctly. The hot-path query is one array load — the same cost profile
// as the topology adjustment that already sits on the send path.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace bftsim {

/// Tracks which node pairs currently have their link down.
class LinkState {
 public:
  explicit LinkState(std::uint32_t n) : n_(n), down_(static_cast<std::size_t>(n) * n, 0) {}

  void set_down(NodeId a, NodeId b) noexcept {
    ++down_[index(a, b)];
    ++down_[index(b, a)];
    ++down_links_;
  }

  void set_up(NodeId a, NodeId b) noexcept {
    if (down_[index(a, b)] > 0) {
      --down_[index(a, b)];
      --down_[index(b, a)];
      --down_links_;
    }
  }

  [[nodiscard]] bool is_down(NodeId src, NodeId dst) const noexcept {
    return src < n_ && dst < n_ && down_[index(src, dst)] != 0;
  }

  /// True when no link is currently down (lets the send path skip the
  /// per-destination matrix load outside flap windows).
  [[nodiscard]] bool all_up() const noexcept { return down_links_ == 0; }

 private:
  [[nodiscard]] std::size_t index(NodeId src, NodeId dst) const noexcept {
    return static_cast<std::size_t>(src) * n_ + dst;
  }

  std::uint32_t n_;
  std::vector<std::uint16_t> down_;
  std::size_t down_links_ = 0;
};

}  // namespace bftsim

// Payload type tags: stable small-integer ids for every message kind.
//
// The hot-path message dispatch (Node::on_message) switches on these tags
// instead of walking dynamic_cast chains; Message::as<T>() checks the tag
// and static_casts (with a debug-build dynamic_cast assert). Ids are
// stable across runs and registered alongside the protocol registry, so
// metrics can count message kinds with a flat array increment instead of
// a per-send string allocation and map lookup.
//
// Custom protocols pick ids at or above kUserBase and may register a
// human-readable name; see examples/custom_protocol.cpp.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace bftsim {

/// Stable id per message kind. Builtin protocols enumerate below
/// kBuiltinSentinel; user protocols start at kUserBase.
enum class PayloadType : std::uint16_t {
  kUnknown = 0,  ///< untagged payload: as<T>() falls back to dynamic_cast

  // PBFT.
  kPbftPrePrepare,
  kPbftPrepare,
  kPbftCommit,
  kPbftViewChange,
  kPbftNewView,

  // Chained HotStuff core (shared by hotstuff-ns and librabft).
  kHotStuffProposal,
  kHotStuffVote,
  kHotStuffBlockRequest,
  kHotStuffBlockResponse,

  // LibraBFT pacemaker.
  kLibraTimeout,
  kLibraTimeoutCertificate,

  // Tendermint.
  kTendermintProposal,
  kTendermintPrevote,
  kTendermintPrecommit,

  // Sync HotStuff.
  kSyncHotStuffProposal,
  kSyncHotStuffVote,
  kSyncHotStuffBlame,

  // ADD+ variants.
  kAddElect,
  kAddPropose,
  kAddPrepare,
  kAddVote,
  kAddCommit,

  // Algorand.
  kAlgorandProposal,
  kAlgorandSoftVote,
  kAlgorandCertVote,
  kAlgorandNextVote,

  // Bracha async BA.
  kBrachaInit,
  kBrachaEcho,
  kBrachaReady,

  kBuiltinSentinel,  ///< one past the last builtin id

  /// First id available to user-defined protocols.
  kUserBase = 64,
};

[[nodiscard]] constexpr std::uint16_t to_index(PayloadType t) noexcept {
  return static_cast<std::uint16_t>(t);
}

/// Maps payload type ids to their human-readable names (the same strings
/// the payloads' virtual type() returns). Builtins are registered on first
/// access; custom protocols register theirs next to their ProtocolRegistry
/// entry.
class PayloadTypeRegistry {
 public:
  /// The singleton registry, with all builtin types registered.
  [[nodiscard]] static PayloadTypeRegistry& instance();

  /// Registers a type id; throws std::invalid_argument when the id is
  /// already registered under a different name.
  void add(PayloadType id, std::string_view name);

  /// Name for `id`; "payload-type-<id>" when unregistered.
  [[nodiscard]] std::string name(PayloadType id) const;

  [[nodiscard]] bool contains(PayloadType id) const noexcept;

  /// Largest registered index + 1 (sizing hint for per-type count arrays).
  [[nodiscard]] std::size_t index_limit() const noexcept;

 private:
  PayloadTypeRegistry() = default;
  std::vector<std::string> names_;  ///< indexed by to_index(id); "" = absent
};

/// Registers names for every builtin payload type (idempotent).
void register_builtin_payload_types(PayloadTypeRegistry& registry);

}  // namespace bftsim

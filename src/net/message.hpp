// Protocol message model.
//
// A Message is an envelope (source, destination, send time, unique id)
// around an immutable, shared Payload. Protocols define their own payload
// types by deriving from Payload; the attacker module may replace a
// message's payload (modification attack) but never mutates a payload in
// place, since payloads are shared between the fan-out copies of a
// broadcast.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "core/types.hpp"

namespace bftsim {

/// Base class for all protocol message payloads.
///
/// `type()` is a stable, human-readable tag used by traces, the validator
/// and attackers; `digest()` is a deterministic fingerprint of the payload
/// contents used for trace hashing and cross-validation.
class Payload {
 public:
  Payload() = default;
  Payload(const Payload&) = default;
  Payload& operator=(const Payload&) = default;
  virtual ~Payload() = default;

  [[nodiscard]] virtual std::string_view type() const noexcept = 0;
  [[nodiscard]] virtual std::uint64_t digest() const noexcept = 0;

  /// Estimated wire size in bytes, used by the packet-level baseline
  /// simulator to fragment messages. Message-level simulation ignores it.
  [[nodiscard]] virtual std::size_t wire_size() const noexcept { return 128; }
};

using PayloadPtr = std::shared_ptr<const Payload>;

/// Convenience factory: `make_payload<VoteMsg>(view, value)`.
template <typename T, typename... Args>
[[nodiscard]] PayloadPtr make_payload(Args&&... args) {
  return std::make_shared<const T>(std::forward<Args>(args)...);
}

/// A message in the simulated network.
struct Message {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  Time send_time = 0;
  std::uint64_t id = 0;  ///< unique per transmission, assigned by the network
  PayloadPtr payload;

  /// Downcasts the payload to a concrete type; returns nullptr on mismatch.
  template <typename T>
  [[nodiscard]] const T* as() const noexcept {
    return dynamic_cast<const T*>(payload.get());
  }
};

}  // namespace bftsim

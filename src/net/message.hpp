// Protocol message model.
//
// A Message is an envelope (source, destination, send time, unique id)
// around an immutable, shared Payload. Protocols define their own payload
// types by deriving from Payload; the attacker module may replace a
// message's payload (modification attack) but never mutates a payload in
// place, since payloads are shared between the fan-out copies of a
// broadcast.
//
// Every payload carries a PayloadType tag (a stable small integer set at
// construction, see net/payload_type.hpp). Dispatch switches on the tag —
// `Message::type_id()` / `Message::is()` — and `as<T>()` is a tag-checked
// static_cast, so the per-message hot path never touches RTTI. Payload
// classes without a `kType` member (untagged user payloads) keep the old
// dynamic_cast behavior.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <string_view>
#include <type_traits>

#include "core/types.hpp"
#include "net/payload_type.hpp"

namespace bftsim {

/// Base class for all protocol message payloads.
///
/// `type()` is a stable, human-readable tag used by traces, the validator
/// and attackers; `digest()` is a deterministic fingerprint of the payload
/// contents used for trace hashing and cross-validation. `type_id()` is
/// the non-virtual dispatch tag; derived classes pass their PayloadType up
/// through the constructor (and conventionally expose it as a static
/// `kType` member so Message::as<T>() can check it).
class Payload {
 public:
  Payload() = default;
  explicit Payload(PayloadType type_id) noexcept : type_id_(type_id) {}
  Payload(const Payload&) = default;
  Payload& operator=(const Payload&) = default;
  virtual ~Payload() = default;

  [[nodiscard]] PayloadType type_id() const noexcept { return type_id_; }

  [[nodiscard]] virtual std::string_view type() const noexcept = 0;
  [[nodiscard]] virtual std::uint64_t digest() const noexcept = 0;

  /// Estimated wire size in bytes, used by the packet-level baseline
  /// simulator to fragment messages. Message-level simulation ignores it.
  [[nodiscard]] virtual std::size_t wire_size() const noexcept { return 128; }

 private:
  PayloadType type_id_ = PayloadType::kUnknown;
};

using PayloadPtr = std::shared_ptr<const Payload>;

/// Convenience factory: `make_payload<VoteMsg>(view, value)`.
template <typename T, typename... Args>
[[nodiscard]] PayloadPtr make_payload(Args&&... args) {
  return std::make_shared<const T>(std::forward<Args>(args)...);
}

/// True when payload class T declares its dispatch tag.
template <typename T>
concept TaggedPayload = requires {
  { T::kType } -> std::convertible_to<PayloadType>;
};

/// A message in the simulated network.
struct Message {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  Time send_time = 0;
  std::uint64_t id = 0;  ///< unique per transmission, assigned by the network
  PayloadPtr payload;

  /// Dispatch tag of the payload (kUnknown when empty or untagged).
  [[nodiscard]] PayloadType type_id() const noexcept {
    return payload != nullptr ? payload->type_id() : PayloadType::kUnknown;
  }

  /// True when the payload carries tag `t`.
  [[nodiscard]] bool is(PayloadType t) const noexcept { return type_id() == t; }

  /// Downcasts the payload to a concrete type; returns nullptr on mismatch.
  /// Tag-checked static_cast for tagged payloads (the debug assert catches
  /// a kType that lies about the dynamic type); dynamic_cast otherwise.
  template <typename T>
  [[nodiscard]] const T* as() const noexcept {
    if constexpr (TaggedPayload<T>) {
      if (payload == nullptr || payload->type_id() != T::kType) return nullptr;
      assert(dynamic_cast<const T*>(payload.get()) != nullptr &&
             "payload kType does not match its dynamic type");
      return static_cast<const T*>(payload.get());
    } else {
      return dynamic_cast<const T*>(payload.get());
    }
  }
};

}  // namespace bftsim

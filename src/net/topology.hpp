// Network topology model.
//
// The paper's network module samples every delay from one distribution;
// real deployments are geo-distributed: messages inside a region are fast,
// messages between regions pay a WAN penalty. This extension keeps the
// one-distribution base and applies a per-pair transformation:
//
//   delay(src, dst) = sampled * cross_factor + cross_extra    (cross-region)
//   delay(src, dst) = sampled                                  (same region)
//
// Regions are assigned round-robin (node id mod regions), so quorums
// always span regions — the interesting case for consensus. Disabled by
// default (regions <= 1).
#pragma once

#include <cstdint>

#include "core/config.hpp"
#include "core/config_check.hpp"
#include "core/types.hpp"

namespace bftsim {

/// Geo-distribution spec; part of SimConfig.
struct TopologySpec {
  std::uint32_t regions = 1;    ///< 1 = flat network (disabled)
  double cross_factor = 1.0;    ///< multiplier on cross-region delays
  double cross_extra_ms = 0.0;  ///< additive cross-region penalty

  [[nodiscard]] bool enabled() const noexcept { return regions > 1; }

  [[nodiscard]] std::uint32_t region_of(NodeId node) const noexcept {
    return regions == 0 ? 0 : node % regions;
  }

  /// Applies the cross-region transformation to a sampled delay.
  [[nodiscard]] Time adjust(Time sampled, NodeId src, NodeId dst) const noexcept {
    if (!enabled() || region_of(src) == region_of(dst)) return sampled;
    const double scaled =
        static_cast<double>(sampled) * cross_factor + cross_extra_ms * 1000.0;
    return static_cast<Time>(scaled);
  }

  [[nodiscard]] json::Value to_json() const {
    json::Object o;
    o["regions"] = static_cast<std::int64_t>(regions);
    o["cross_factor"] = cross_factor;
    o["cross_extra_ms"] = cross_extra_ms;
    return json::Value{std::move(o)};
  }

  /// Strict parse: unknown keys and out-of-range values throw a single-line
  /// error naming the JSON path (rooted at `path`).
  [[nodiscard]] static TopologySpec from_json(const json::Value& v,
                                              const std::string& path = "$.topology") {
    cfgcheck::require_keys(v, path, {"regions", "cross_factor", "cross_extra_ms"});
    TopologySpec spec;
    spec.regions = static_cast<std::uint32_t>(
        cfgcheck::int_in(v, path, "regions", spec.regions, 1, 1'000'000));
    spec.cross_factor =
        cfgcheck::number_in(v, path, "cross_factor", spec.cross_factor, 0.0, 1e6);
    spec.cross_extra_ms =
        cfgcheck::number_in(v, path, "cross_extra_ms", spec.cross_extra_ms, 0.0, 1e9);
    return spec;
  }
};

}  // namespace bftsim

// Message-delay sampling.
//
// The network module assigns each message a delay sampled from a
// configurable distribution (§III-A4): constant, uniform, normal (the
// paper's N(mu, sigma)) or exponential (Poisson-process inter-arrivals).
// Clamping bounds let a user emulate the common network models:
//   - synchronous:            max_ms <= the protocol's lambda,
//   - partially synchronous:  max_ms set but unknown to the protocol,
//   - asynchronous:           no max_ms (unbounded tail).
#pragma once

#include "core/config.hpp"
#include "core/rng.hpp"
#include "core/types.hpp"

namespace bftsim {

/// Samples message delays according to a DelaySpec.
class DelaySampler {
 public:
  explicit DelaySampler(const DelaySpec& spec) noexcept : spec_(spec) {}

  /// Draws one delay; always >= spec.min_ms (and <= spec.max_ms if set).
  [[nodiscard]] Time sample(Rng& rng) const noexcept {
    double ms = 0.0;
    switch (spec_.kind) {
      case DelaySpec::Kind::kConstant: ms = spec_.a; break;
      case DelaySpec::Kind::kUniform: ms = rng.uniform(spec_.a, spec_.b); break;
      case DelaySpec::Kind::kNormal: ms = rng.normal(spec_.a, spec_.b); break;
      case DelaySpec::Kind::kExponential: ms = rng.exponential(spec_.a); break;
    }
    if (ms < spec_.min_ms) ms = spec_.min_ms;
    if (spec_.max_ms > 0.0 && ms > spec_.max_ms) ms = spec_.max_ms;
    return from_ms(ms);
  }

  [[nodiscard]] const DelaySpec& spec() const noexcept { return spec_; }

 private:
  DelaySpec spec_;
};

}  // namespace bftsim

// In-flight message envelopes.
//
// A scheduled delivery used to embed a full Message in its event: 40 bytes
// of header plus a shared_ptr copy (two atomic refcount operations) per
// destination, n-1 times per broadcast. At n=4096 the in-flight event
// population is the memory ceiling of a run (docs/SCALING.md). An Envelope
// intern-s the per-*transmission* state once — payload, send time, source,
// the id of the first fan-out copy — and every delivery event carries only
// an 8-byte handle {store index, destination}. Broadcast fan-out ids are
// derived from (base_id, dst) with the same arithmetic the serial send
// loop used, so materialized Messages are bit-identical to the pre-envelope
// engine.
//
// Lifetime is reference-counted by scheduled deliveries: `remaining` is the
// number of delivery events still pointing at the envelope; the release
// that drops it to zero clears the payload and makes the slot recyclable.
// The count is atomic because the windowed-parallel driver (sim/windowed)
// retires envelopes from destination lanes while the owning lane keeps
// creating new ones; the serial engine pays one uncontended relaxed
// decrement per delivery.
//
// The store is chunked and pointer-stable: the chunk table is reserved up
// front and never reallocates, so concurrent readers of already-published
// envelopes never race a growing owner (publication happens-before is
// provided by the windowed driver's barrier; see docs/PARALLELISM.md).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "net/message.hpp"

namespace bftsim {

/// One in-flight transmission (a unicast send, a self-delivery, an injected
/// message, or an entire broadcast fan-out sharing one payload).
struct Envelope {
  PayloadPtr payload;
  Time send_time = 0;
  /// Message id of the transmission; for a broadcast, the id of the first
  /// fan-out copy (destination ids are derived, see message_id()).
  std::uint64_t base_id = 0;
  NodeId src = kNoNode;
  /// True for a broadcast fan-out envelope: per-destination ids are
  /// base_id + the destination's position in the src-skipping fan-out loop.
  bool broadcast = false;
  /// Nonzero marks a gossip transmission (WAN backend): the id of the
  /// disseminated broadcast, used for duplicate suppression and relaying.
  /// Serial engine only, so no atomicity concerns.
  std::uint64_t gossip_id = 0;
  /// Scheduled deliveries still referencing this envelope.
  std::atomic<std::int32_t> remaining{0};

  [[nodiscard]] std::uint64_t message_id(NodeId dst) const noexcept {
    return broadcast ? base_id + (dst < src ? dst : dst - 1u) : base_id;
  }
};

/// Slab of envelopes with slot recycling. Indices are dense uint32 handles;
/// the chunk table never reallocates (pointer- and table-stable), which is
/// what lets windowed-parallel lanes read published envelopes while the
/// owning lane allocates new ones.
class EnvelopeStore {
 public:
  static constexpr std::uint32_t kChunkShift = 10;  ///< 1024 envelopes/chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;
  /// 16 Mi envelopes: far above any in-flight population a run can hold in
  /// memory (each live envelope anchors at least one queued event).
  static constexpr std::uint32_t kMaxChunks = 1u << 14;

  EnvelopeStore() { chunks_.reserve(kMaxChunks); }
  EnvelopeStore(const EnvelopeStore&) = delete;
  EnvelopeStore& operator=(const EnvelopeStore&) = delete;

  /// Allocates an envelope with `remaining` scheduled deliveries expected.
  [[nodiscard]] std::uint32_t create(PayloadPtr payload, Time send_time,
                                     std::uint64_t base_id, NodeId src,
                                     bool broadcast, std::int32_t remaining) {
    std::uint32_t index;
    if (!free_.empty()) {
      index = free_.back();
      free_.pop_back();
    } else {
      index = next_;
      if ((index >> kChunkShift) == chunks_.size()) {
        if (chunks_.size() == kMaxChunks) {
          throw std::runtime_error(
              "EnvelopeStore: more than 16Mi envelopes in flight");
        }
        chunks_.push_back(std::make_unique<Envelope[]>(kChunkSize));
      }
      ++next_;
    }
    Envelope& e = slot(index);
    e.payload = std::move(payload);
    e.send_time = send_time;
    e.base_id = base_id;
    e.src = src;
    e.broadcast = broadcast;
    e.gossip_id = 0;
    e.remaining.store(remaining, std::memory_order_relaxed);
    live_.fetch_add(1, std::memory_order_relaxed);
    return index;
  }

  [[nodiscard]] Envelope& get(std::uint32_t index) noexcept {
    return slot(index);
  }
  [[nodiscard]] const Envelope& get(std::uint32_t index) const noexcept {
    return const_cast<EnvelopeStore*>(this)->slot(index);
  }

  /// Registers `k` additional scheduled deliveries. Owner-thread only, and
  /// only before the corresponding events are published to other lanes.
  void add_pending(std::uint32_t index, std::int32_t k) noexcept {
    Envelope& e = slot(index);
    e.remaining.store(e.remaining.load(std::memory_order_relaxed) + k,
                      std::memory_order_relaxed);
  }

  /// Rebuilds the Message a delivery event stands for.
  [[nodiscard]] Message materialize(std::uint32_t index, NodeId dst) const {
    const Envelope& e = get(index);
    Message msg;
    msg.src = e.src;
    msg.dst = dst;
    msg.send_time = e.send_time;
    msg.id = e.message_id(dst);
    msg.payload = e.payload;
    return msg;
  }

  /// Drops one delivery reference; recycles the slot when it was the last.
  /// Single-threaded (serial engine / owning lane) flavor.
  void release(std::uint32_t index) {
    if (drop_ref(index)) recycle(index);
  }

  /// Drops one delivery reference from a non-owning thread. On the last
  /// reference the payload is cleared and true is returned — the caller
  /// must hand `index` back to the owner (recycle()) at a barrier.
  [[nodiscard]] bool release_remote(std::uint32_t index) {
    return drop_ref(index);
  }

  /// Returns a fully-released slot to the free list. Owner-thread only.
  void recycle(std::uint32_t index) { free_.push_back(index); }

  /// Envelopes currently allocated (live), a scaling/test hook.
  [[nodiscard]] std::size_t live() const noexcept {
    return live_.load(std::memory_order_relaxed);
  }
  /// Slots ever allocated (high-water mark of the slab).
  [[nodiscard]] std::size_t capacity_used() const noexcept { return next_; }

 private:
  [[nodiscard]] Envelope& slot(std::uint32_t index) noexcept {
    assert((index >> kChunkShift) < chunks_.size());
    return chunks_[index >> kChunkShift][index & kChunkMask];
  }

  /// Decrements `remaining`; on zero clears the payload and returns true.
  [[nodiscard]] bool drop_ref(std::uint32_t index) {
    Envelope& e = slot(index);
    if (e.remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) return false;
    e.payload.reset();
    live_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  std::vector<std::unique_ptr<Envelope[]>> chunks_;
  std::vector<std::uint32_t> free_;
  std::uint32_t next_ = 0;
  /// Atomic because remote lanes decrement via release_remote(); everything
  /// else about the store is owner-thread-only.
  std::atomic<std::size_t> live_{0};
};

}  // namespace bftsim

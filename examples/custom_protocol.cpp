// Custom protocol + custom attack, end to end — the extensibility the
// paper advertises (§III-A3, §III-A5): a protocol is one class with
// on_message / on_timer callbacks reporting through the context, an attack
// is one class observing every message in flight. This example implements
//
//   "majority-gossip": a leaderless one-shot agreement toy. Every node
//   broadcasts its input; after hearing n-f inputs it adopts the majority
//   and broadcasts a confirmation; n-f matching confirmations decide. (Not
//   a real BFT protocol — it is the smallest thing that exercises the
//   whole API surface.)
//
//   "jitter-amplifier": an attacker that doubles the network delay of
//   every cross-node message, demonstrating timing attacks.
//
// Both are registered under names and selected through an ordinary
// SimConfig, exactly like the builtins.
#include <cstdio>
#include <map>

#include "attacker/registry.hpp"
#include "protocols/registry.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace bftsim;

// Custom payloads pick dispatch tags at or above kUserBase; registering a
// name next to the protocol keeps per-type metrics readable.
struct GossipValue final : Payload {
  static constexpr PayloadType kType = PayloadType::kUserBase;
  Value value;
  explicit GossipValue(Value v) : Payload(kType), value(v) {}
  std::string_view type() const noexcept override { return "gossip/value"; }
  std::uint64_t digest() const noexcept override { return hash_words({value}); }
};

struct GossipConfirm final : Payload {
  static constexpr PayloadType kType =
      static_cast<PayloadType>(to_index(PayloadType::kUserBase) + 1);
  Value value;
  explicit GossipConfirm(Value v) : Payload(kType), value(v) {}
  std::string_view type() const noexcept override { return "gossip/confirm"; }
  std::uint64_t digest() const noexcept override {
    return hash_words({value, 0xC0ULL});
  }
};

class MajorityGossipNode final : public Node {
 public:
  void on_start(Context& ctx) override {
    // Inputs: node id parity, so the majority is well defined.
    const Value input = ctx.id() % 2;
    ctx.broadcast(make_payload<GossipValue>(input));
    // Safety net: if gossip stalls, re-broadcast after 4λ.
    ctx.set_timer(4 * ctx.lambda(), 0);
  }

  void on_message(const Message& msg, Context& ctx) override {
    const std::uint32_t quorum = ctx.n() - ctx.f();
    if (const auto* value = msg.as<GossipValue>()) {
      if (!values_.emplace(msg.src, value->value).second) return;
      if (values_.size() == quorum && !confirmed_) {
        confirmed_ = true;
        std::size_t ones = 0;
        for (const auto& [node, v] : values_) ones += v;
        adopted_ = ones * 2 >= values_.size() ? 1 : 0;
        ctx.broadcast(make_payload<GossipConfirm>(adopted_));
      }
    } else if (const auto* confirm = msg.as<GossipConfirm>()) {
      if (++confirms_[confirm->value] >= quorum && !decided_) {
        decided_ = true;
        ctx.report_decision(confirm->value);
      }
    }
  }

  void on_timer(const TimerEvent&, Context& ctx) override {
    if (decided_) return;
    ctx.broadcast(make_payload<GossipValue>(ctx.id() % 2));
    if (confirmed_) ctx.broadcast(make_payload<GossipConfirm>(adopted_));
    ctx.set_timer(4 * ctx.lambda(), 0);
  }

 private:
  std::map<NodeId, Value> values_;
  std::map<Value, std::uint32_t> confirms_;
  bool confirmed_ = false;
  bool decided_ = false;
  Value adopted_ = 0;
};

class JitterAmplifier final : public Attacker {
 public:
  Disposition attack(MessageInFlight& in_flight, AttackerContext&) override {
    in_flight.delay *= 2;  // timing attack: everything is twice as slow
    return Disposition::kDeliver;
  }
};

void register_extensions() {
  PayloadTypeRegistry::instance().add(GossipValue::kType, "gossip/value");
  PayloadTypeRegistry::instance().add(GossipConfirm::kType, "gossip/confirm");
  ProtocolRegistry::instance().add(
      {"majority-gossip", NetModel::kPartialSync, byzantine_third, 1,
       [](NodeId, const SimConfig&) -> std::unique_ptr<Node> {
         return std::make_unique<MajorityGossipNode>();
       }});
  AttackRegistry::instance().add("jitter-amplifier", [](const SimConfig&) {
    return std::make_unique<JitterAmplifier>();
  });
}

void run_and_print(const char* label, const SimConfig& cfg) {
  const RunResult result = run_simulation(cfg);
  if (!result.terminated) {
    std::printf("%-38s -> did not terminate\n", label);
    return;
  }
  std::printf("%-38s -> decided %llu in %.0f ms, %llu messages\n", label,
              static_cast<unsigned long long>(result.decisions.front().value),
              result.latency_ms(),
              static_cast<unsigned long long>(result.messages_sent));
}

}  // namespace

int main() {
  register_extensions();

  SimConfig cfg;
  cfg.protocol = "majority-gossip";
  cfg.n = 16;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.seed = 7;

  std::printf("== custom protocol through the standard pipeline ==\n");
  run_and_print("majority-gossip (clean)", cfg);

  SimConfig slow = cfg;
  slow.attack = "jitter-amplifier";
  run_and_print("majority-gossip + jitter-amplifier", slow);

  SimConfig faulty = cfg;
  faulty.honest = 11;
  run_and_print("majority-gossip (5 fail-stops)", faulty);

  // The custom protocol coexists with the builtins in one registry.
  std::printf("\nregistered protocols now:");
  for (const std::string& name : ProtocolRegistry::instance().names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");
  return 0;
}

// Quickstart: configure a simulation, run every builtin protocol once, and
// print the two paper metrics (time usage and message usage).
//
// Usage: quickstart [protocol] [n] [lambda_ms] [seed]
//   With no arguments, runs all eight protocols at the paper's defaults
//   (n = 16, λ = 1000 ms, delays ~ N(250, 50)).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "protocols/registry.hpp"
#include "sim/simulation.hpp"

int main(int argc, char** argv) {
  using namespace bftsim;

  SimConfig base;
  base.n = 16;
  base.lambda_ms = 1000;
  base.delay = DelaySpec::normal(250, 50);
  base.seed = 42;

  std::vector<std::string> protocols;
  if (argc > 1) {
    protocols.emplace_back(argv[1]);
  } else {
    protocols = ProtocolRegistry::instance().names();
  }
  if (argc > 2) base.n = static_cast<std::uint32_t>(std::atoi(argv[2]));
  if (argc > 3) base.lambda_ms = std::atof(argv[3]);
  if (argc > 4) base.seed = static_cast<std::uint64_t>(std::atoll(argv[4]));

  std::printf("%-12s %-22s %10s %10s %10s %9s\n", "protocol", "model",
              "latency", "msgs/dec", "events", "wall");
  for (const std::string& name : protocols) {
    const ProtocolInfo& info = ProtocolRegistry::instance().get(name);
    SimConfig cfg = base;
    cfg.protocol = name;
    cfg.decisions = info.measured_decisions;

    const RunResult result = run_simulation(cfg);
    if (!result.terminated) {
      std::printf("%-12s %-22s %10s\n", name.c_str(),
                  std::string(to_string(info.model)).c_str(), "TIMEOUT");
      continue;
    }
    std::printf("%-12s %-22s %8.0fms %10.0f %10llu %7.2fms\n", name.c_str(),
                std::string(to_string(info.model)).c_str(),
                result.per_decision_latency_ms(), result.per_decision_messages(),
                static_cast<unsigned long long>(result.events_processed),
                result.wall_seconds * 1e3);
    if (!result.decisions_consistent()) {
      std::printf("  !! SAFETY VIOLATION: honest nodes decided different values\n");
      return 1;
    }
  }
  return 0;
}

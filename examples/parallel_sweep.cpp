// Parallel sweep: the multi-core experiment API end to end — build a list
// of sweep points (here: PBFT vs HotStuff+NS across three delay
// environments), fan every (point, seed) run across a worker pool with
// run_sweep(), verify the aggregates match a serial rerun exactly, and
// export everything as one JSON document.
//
// Usage: parallel_sweep [repeats] [--jobs N] [--json PATH]
//   Defaults: 20 repeats, one worker per hardware core, no JSON file.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/thread_pool.hpp"
#include "runner/export.hpp"
#include "runner/runner.hpp"

int main(int argc, char** argv) {
  using namespace bftsim;

  std::size_t repeats = 20;
  std::size_t jobs = ThreadPool::default_workers();
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (const long value = std::strtol(argv[i], nullptr, 10); value > 0) {
      repeats = static_cast<std::size_t>(value);
    }
  }
  if (!json_path.empty()) {
    // Fail fast instead of aborting after the sweep when the path is bad.
    std::FILE* probe = std::fopen(json_path.c_str(), "a");
    if (probe == nullptr) {
      std::fprintf(stderr, "error: cannot write --json path %s\n",
                   json_path.c_str());
      return 2;
    }
    std::fclose(probe);
  }

  const std::vector<std::string> protocols{"pbft", "hotstuff-ns"};
  const std::vector<DelaySpec> environments{DelaySpec::normal(250, 50),
                                            DelaySpec::normal(500, 100),
                                            DelaySpec::normal(1000, 300)};

  std::vector<SimConfig> points;
  std::vector<std::string> labels;
  for (const std::string& protocol : protocols) {
    for (const DelaySpec& env : environments) {
      points.push_back(experiment_config(protocol, 16, 1000, env));
      labels.push_back(protocol + "/" + env.describe());
    }
  }

  std::printf("sweeping %zu points x %zu repeats on %zu workers...\n",
              points.size(), repeats, jobs);
  const auto start = std::chrono::steady_clock::now();
  const std::vector<Aggregate> aggregates = run_sweep(points, repeats, jobs);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  Table table{{"point", "latency", "msgs/dec", "timeouts"}, 14};
  table.print_header(std::cout);
  json::Array results;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Aggregate& agg = aggregates[i];
    table.print_row(std::cout,
                    {labels[i],
                     Table::cell(agg.per_decision_latency_ms.mean / 1e3,
                                 agg.per_decision_latency_ms.stddev / 1e3, "s"),
                     Table::cell(agg.per_decision_messages.mean, ""),
                     std::to_string(agg.timeouts)});

    RunManifest manifest;
    manifest.name = "parallel_sweep/" + labels[i];
    manifest.config = points[i];
    manifest.repeats = repeats;
    manifest.jobs = jobs;
    manifest.wall_seconds = wall;
    results.push_back(experiment_to_json(manifest, agg));
  }
  std::printf("sweep wall-clock: %.2f s\n", wall);

  // Determinism spot check: the first point, rerun serially, must
  // aggregate to exactly the same numbers.
  if (!equivalent(aggregates[0], run_repeated(points[0], repeats))) {
    std::printf("!! parallel aggregate differs from serial rerun\n");
    return 1;
  }
  std::printf("determinism check: parallel == serial rerun\n");

  if (!json_path.empty()) {
    json::Object doc;
    doc["bench"] = "parallel_sweep";
    doc["jobs"] = static_cast<std::int64_t>(jobs);
    doc["results"] = json::Value{std::move(results)};
    write_json_file(json_path, json::Value{std::move(doc)});
    std::printf("results written to %s\n", json_path.c_str());
  }
  return 0;
}

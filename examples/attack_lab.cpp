// Attack lab: runs every builtin attack scenario against the protocols it
// targets and reports the damage — the simulator's core use case (§III-C):
// comparing BFT protocols' performance while under attack.
//
// Usage: attack_lab [runs_per_cell]   (default 20)
#include <cstdio>
#include <cstdlib>

#include "runner/runner.hpp"

namespace {

using namespace bftsim;

void report(const char* label, const SimConfig& cfg, std::size_t repeats) {
  const Aggregate agg = run_repeated(cfg, repeats);
  if (agg.latency_ms.count == 0) {
    std::printf("  %-44s -> no run terminated within %.0fs\n", label,
                cfg.max_time_ms / 1e3);
    return;
  }
  std::printf("  %-44s -> %6.2fs ± %.2fs   (%zu/%zu terminated)\n", label,
              agg.latency_ms.mean / 1e3, agg.latency_ms.stddev / 1e3,
              agg.runs - agg.timeouts, agg.runs);
}

SimConfig with_attack(SimConfig cfg, const std::string& attack,
                      json::Value params = {}) {
  cfg.attack = attack;
  cfg.attack_params = std::move(params);
  return cfg;
}

json::Value partition_params(double resolve_ms) {
  json::Object obj;
  obj["resolve_ms"] = resolve_ms;
  obj["mode"] = "drop";
  return json::Value{std::move(obj)};
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t repeats =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 20;

  std::printf("== bftsim attack lab (n=16, %zu runs per line) ==\n", repeats);

  std::printf("\n-- fail-stop: 5 of 16 nodes never start (config-level attack) --\n");
  for (const char* protocol : {"pbft", "hotstuff-ns", "librabft", "asyncba"}) {
    SimConfig cfg = experiment_config(protocol, 16, 1000, DelaySpec::normal(250, 50));
    report((std::string(protocol) + " (clean)").c_str(), cfg, repeats);
    cfg.honest = 11;
    report((std::string(protocol) + " (5 fail-stop)").c_str(), cfg, repeats);
  }

  std::printf("\n-- partition attack: two subnets, heals at t=20s --\n");
  for (const char* protocol : {"algorand", "pbft", "hotstuff-ns", "librabft"}) {
    SimConfig cfg = experiment_config(protocol, 16, 1000, DelaySpec::normal(250, 50));
    cfg.decisions = 1;
    report(protocol, with_attack(cfg, "partition", partition_params(20'000)),
           repeats);
  }

  std::printf("\n-- ADD+ attacks: static vs rushing-adaptive (f = 7) --\n");
  for (const char* variant : {"addv1", "addv2", "addv3"}) {
    SimConfig cfg = experiment_config(variant, 16, 1000, DelaySpec::normal(250, 50));
    report((std::string(variant) + " (clean)").c_str(), cfg, repeats);
    report((std::string(variant) + " + static").c_str(),
           with_attack(cfg, "add-static"), repeats);
    report((std::string(variant) + " + adaptive").c_str(),
           with_attack(cfg, "add-adaptive"), repeats);
  }

  std::printf("\nReading guide: addv1 collapses under the static attack (its\n"
              "leader schedule is public), addv2 under the adaptive attack\n"
              "(credentials revealed before proposing), addv3 shrugs both off.\n");
  return 0;
}

// View-synchronization study (§IV-D): quantifies how long the view-based
// pacemakers spend out of sync, across timeout configurations. For every
// run the per-node view trajectories are reduced to
//   - outage time: total simulated time during which some two live nodes
//     were in different views, and
//   - max spread: the largest view gap observed.
// HotStuff+NS (naive, message-free pacemaker) accumulates far more outage
// than LibraBFT (timeout certificates) as λ shrinks or faults appear.
//
// Usage: view_sync_study [runs]   (default 20)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "sim/simulation.hpp"

namespace {

using namespace bftsim;

struct SyncStats {
  double outage_ms = 0.0;  ///< time with nodes in differing views
  View max_spread = 0;
};

/// Replays the recorded view changes as a sweep over event times.
SyncStats analyze(const RunResult& result, std::uint32_t n) {
  SyncStats stats;
  std::map<NodeId, View> current;
  std::vector<bool> dead(n, false);
  for (const NodeId node : result.failstopped) dead[node] = true;

  Time last_at = 0;
  bool last_synced = true;
  for (const ViewRecord& rec : result.views) {
    if (!last_synced) stats.outage_ms += to_ms(rec.at - last_at);
    current[rec.node] = rec.view;

    View lo = ~View{0};
    View hi = 0;
    for (NodeId node = 0; node < n; ++node) {
      if (dead[node]) continue;
      const auto it = current.find(node);
      const View v = it == current.end() ? 0 : it->second;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    stats.max_spread = std::max(stats.max_spread, hi - lo);
    last_synced = lo == hi;
    last_at = rec.at;
  }
  return stats;
}

void study(const char* protocol, double lambda_ms, std::uint32_t failstops,
           std::size_t runs) {
  double outage = 0.0;
  View worst = 0;
  double latency = 0.0;
  std::size_t finished = 0;
  for (std::size_t i = 0; i < runs; ++i) {
    SimConfig cfg;
    cfg.protocol = protocol;
    cfg.n = 16;
    cfg.honest = 16 - failstops;
    cfg.lambda_ms = lambda_ms;
    cfg.delay = failstops > 0 ? DelaySpec::normal(1000, 300)
                              : DelaySpec::normal(250, 50);
    cfg.seed = 100 + i;
    cfg.decisions = 10;
    cfg.record_views = true;
    cfg.max_time_ms = 600'000;

    const RunResult result = run_simulation(cfg);
    const SyncStats stats = analyze(result, cfg.n);
    outage += stats.outage_ms;
    worst = std::max(worst, stats.max_spread);
    if (result.terminated) {
      latency += result.per_decision_latency_ms();
      ++finished;
    }
  }
  std::printf("  %-13s λ=%-5.0f f=%u -> outage %8.0f ms/run, max spread %2llu, "
              "%5.0f ms/decision (%zu/%zu finished)\n",
              protocol, lambda_ms, failstops, outage / runs,
              static_cast<unsigned long long>(worst),
              finished > 0 ? latency / finished : -1.0, finished, runs);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t runs =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 20;

  std::printf("== view-synchronization study (n=16, %zu runs per line) ==\n\n", runs);

  std::printf("-- underestimated timeouts, healthy network N(250,50) --\n");
  for (const double lambda : {150.0, 250.0, 500.0, 1000.0}) {
    study("hotstuff-ns", lambda, 0, runs);
    study("librabft", lambda, 0, runs);
  }

  std::printf("\n-- fail-stopped leaders, slow network N(1000,300) --\n");
  for (const std::uint32_t f : {2u, 4u}) {
    study("hotstuff-ns", 1000, f, runs);
    study("librabft", 1000, f, runs);
  }
  return 0;
}

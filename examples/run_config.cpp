// Runs a simulation described by a JSON configuration file — the paper's
// "a user needs only to write a configuration file" workflow (§III-A).
//
// Usage: run_config <config.json> [config2.json ...]
// Sample configurations live in examples/configs/.
#include <cstdio>

#include "protocols/registry.hpp"
#include "sim/simulation.hpp"

int main(int argc, char** argv) {
  using namespace bftsim;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <config.json> [more.json ...]\n"
                 "sample configs: examples/configs/*.json\n",
                 argv[0]);
    return 2;
  }

  for (int i = 1; i < argc; ++i) {
    SimConfig cfg;
    try {
      cfg = SimConfig::from_file(argv[i]);
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "%s: %s\n", argv[i], ex.what());
      return 1;
    }

    const ProtocolInfo& info = ProtocolRegistry::instance().get(cfg.protocol);
    std::printf("== %s ==\n", argv[i]);
    std::printf("protocol %s (%s), n=%u, live=%u, lambda=%.0fms, delay=%s, "
                "attack=%s, seed=%llu\n",
                cfg.protocol.c_str(), std::string(to_string(info.model)).c_str(),
                cfg.n, cfg.live_nodes(), cfg.lambda_ms,
                cfg.delay.describe().c_str(),
                cfg.attack.empty() ? "none" : cfg.attack.c_str(),
                static_cast<unsigned long long>(cfg.seed));

    const RunResult result = run_simulation(cfg);
    if (!result.terminated) {
      std::printf("-> DID NOT TERMINATE within %.0fs (%llu events)\n\n",
                  cfg.max_time_ms / 1e3,
                  static_cast<unsigned long long>(result.events_processed));
      continue;
    }
    std::printf("-> terminated in %.1f ms (%.1f ms/decision)\n",
                result.latency_ms(), result.per_decision_latency_ms());
    std::printf("   messages: %llu sent, %llu delivered, %llu dropped\n",
                static_cast<unsigned long long>(result.messages_sent),
                static_cast<unsigned long long>(result.messages_delivered),
                static_cast<unsigned long long>(result.messages_dropped));
    std::printf("   events: %llu, safety: %s, wall: %.2f ms\n\n",
                static_cast<unsigned long long>(result.events_processed),
                result.decisions_consistent() ? "consistent" : "VIOLATED",
                result.wall_seconds * 1e3);
  }
  return 0;
}

#include "protocols/hotstuff/hotstuff_ns.hpp"

#include <gtest/gtest.h>

#include "protocols/hotstuff/core.hpp"
#include "sim/simulation.hpp"

namespace bftsim {
namespace {

SimConfig hs_config(std::uint32_t n = 16, std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.protocol = "hotstuff-ns";
  cfg.n = n;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.seed = seed;
  cfg.decisions = 10;
  cfg.max_time_ms = 600'000;
  return cfg;
}

TEST(HotStuffCoreTest, GenesisBootstraps) {
  hotstuff::Core core{0};
  EXPECT_TRUE(core.has(hotstuff::kGenesisId));
  EXPECT_EQ(core.high_qc().view, 0u);
  EXPECT_EQ(core.locked_qc().view, 0u);
  EXPECT_EQ(core.committed_height(), 0u);
}

TEST(HotStuffCoreTest, SafeToVoteRules) {
  hotstuff::Core core{0};
  hotstuff::Block b;
  b.id = 1;
  b.parent = hotstuff::kGenesisId;
  b.view = 1;
  b.height = 1;
  b.justify = QuorumCert{0, hotstuff::kGenesisId, {}};
  core.store(b);
  // Extends the locked (genesis) block: safe.
  EXPECT_TRUE(core.safe_to_vote(b));

  hotstuff::Block orphan;
  orphan.id = 2;
  orphan.parent = 999;  // unknown parent, does not extend the lock
  orphan.view = 1;
  orphan.justify = QuorumCert{0, 999, {}};
  core.store(orphan);
  EXPECT_FALSE(core.safe_to_vote(orphan));
}

TEST(HotStuffCoreTest, VoteAggregationFormsQuorumCertOnce) {
  // A standalone check of add_vote needs a Context; run it through the
  // simulation instead: 10 decisions require QCs to form continuously,
  // asserted by the integration tests below. Here check missing_ancestor.
  hotstuff::Core core{0};
  hotstuff::Block child;
  child.id = 10;
  child.parent = 5;  // unknown
  child.view = 2;
  child.height = 2;
  core.store(child);
  EXPECT_TRUE(core.missing_ancestor(child));
}

TEST(HotStuffNsTest, PipelineDecidesTenValues) {
  const RunResult result = run_simulation(hs_config());
  ASSERT_TRUE(result.terminated);
  EXPECT_TRUE(result.decisions_consistent());
  // Pipelining: ~one decision per view after warm-up; per-decision latency
  // clearly below PBFT's three-phase time.
  EXPECT_LT(result.per_decision_latency_ms(), 1000);
}

TEST(HotStuffNsTest, LinearMessageComplexity) {
  const RunResult small = run_simulation(hs_config(8));
  const RunResult large = run_simulation(hs_config(16));
  const double ratio = static_cast<double>(large.messages_sent) /
                       static_cast<double>(small.messages_sent);
  // Proposal broadcast + one vote per node: linear in n (ratio ~2, not ~4).
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 2.8);
}

TEST(HotStuffNsTest, DecisionHeightsAreSequential) {
  const RunResult result = run_simulation(hs_config(7));
  ASSERT_TRUE(result.terminated);
  for (const NodeId node : result.honest) {
    std::uint64_t next = 0;
    for (const Decision& d : result.decisions) {
      if (d.node == node) EXPECT_EQ(d.height, next++);
    }
    EXPECT_GE(next, 10u);
  }
}

TEST(HotStuffNsTest, ToleratesFailstops) {
  SimConfig cfg = hs_config();
  cfg.honest = 12;
  cfg.decisions = 3;
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  EXPECT_TRUE(result.decisions_consistent());
}

TEST(HotStuffNsTest, ViewsAreRecorded) {
  const RunResult result = run_simulation(hs_config(4));
  ASSERT_FALSE(result.views.empty());
  // Views per node are non-decreasing.
  std::map<NodeId, View> last;
  for (const ViewRecord& v : result.views) {
    const auto it = last.find(v.node);
    if (it != last.end()) EXPECT_GE(v.view, it->second);
    last[v.node] = v.view;
  }
}

TEST(HotStuffNsTest, UnderestimatedLambdaDegradesButStaysSafe) {
  SimConfig good = hs_config(16, 5);
  SimConfig bad = hs_config(16, 5);
  bad.lambda_ms = 150;
  const RunResult g = run_simulation(good);
  const RunResult b = run_simulation(bad);
  ASSERT_TRUE(g.terminated);
  ASSERT_TRUE(b.terminated);
  EXPECT_TRUE(b.decisions_consistent());
  // More timer churn under the underestimated timeout.
  EXPECT_GT(b.timers_fired, g.timers_fired);
}

class HotStuffSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {};

TEST_P(HotStuffSweep, AgreementAndTermination) {
  const auto [n, seed] = GetParam();
  SimConfig cfg = hs_config(n, seed);
  cfg.decisions = 5;
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  EXPECT_TRUE(result.decisions_consistent());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HotStuffSweep,
    ::testing::Combine(::testing::Values(4u, 7u, 16u, 32u),
                       ::testing::Values(1ull, 2ull, 3ull)));

}  // namespace
}  // namespace bftsim

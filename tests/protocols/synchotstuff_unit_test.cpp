// White-box unit tests of the Sync HotStuff node: the 2Δ commit timer,
// equivocation detection via echoed proposals, blame/quit-view mechanics
// and the view-change resync from the committed frontier.
#include "protocols/synchotstuff/synchotstuff.hpp"

#include <gtest/gtest.h>

#include "common/mock_context.hpp"

namespace bftsim::synchotstuff {
namespace {

using bftsim::testing::MockContext;

constexpr std::uint32_t kN = 5;  // f = 2, quorum = f+1 = 3
constexpr std::uint32_t kF = 2;
constexpr Time kLambda = from_ms(1000);

SimConfig config() {
  SimConfig cfg;
  cfg.protocol = "sync-hotstuff";
  cfg.n = kN;
  cfg.lambda_ms = 1000;
  return cfg;
}

struct Fixture {
  explicit Fixture(NodeId id = 1) : ctx(id, kN, kF, kLambda), node(id, config()) {
    node.on_start(ctx);
    ctx.clear_sent();
  }

  std::shared_ptr<const ShsProposal> proposal(NodeId leader, std::uint64_t height,
                                              View view, Value value) {
    return std::make_shared<const ShsProposal>(
        height, view, value,
        ctx.signer().sign(leader, hash_words({0x5348ULL, height, view, value})));
  }
  std::shared_ptr<const ShsBlame> blame(NodeId src, View view) {
    return std::make_shared<const ShsBlame>(
        view, ctx.signer().sign(src, hash_words({0x5342ULL, view})));
  }

  MockContext ctx;
  SyncHotStuffNode node;
};

TEST(SyncHsUnitTest, VotesAndArmsCommitTimer) {
  Fixture fx;
  fx.ctx.deliver(fx.node, 0, fx.proposal(0, 0, 0, 42));
  EXPECT_EQ(fx.ctx.sent_of<ShsVote>().size(), 1u);
  // Commit timer 2Δ + echo of the proposal were produced.
  bool has_commit_timer = false;
  for (const auto& timer : fx.ctx.timers) {
    if (timer.delay == SyncHotStuffNode::kCommitFactor * kLambda) {
      has_commit_timer = true;
    }
  }
  EXPECT_TRUE(has_commit_timer);
  EXPECT_EQ(fx.ctx.sent_of<ShsProposal>().size(), 1u);  // the echo
}

TEST(SyncHsUnitTest, CommitTimerCommitsWithoutEquivocation) {
  Fixture fx;
  fx.ctx.deliver(fx.node, 0, fx.proposal(0, 0, 0, 42));
  const auto timer = fx.ctx.timers.back();  // the 2Δ commit timer
  fx.ctx.advance_to(timer.delay);
  fx.ctx.fire(fx.node, timer);
  ASSERT_EQ(fx.ctx.decisions.size(), 1u);
  EXPECT_EQ(fx.ctx.decisions[0], 42u);
}

TEST(SyncHsUnitTest, EquivocationCancelsCommitAndBlames) {
  Fixture fx;
  fx.ctx.deliver(fx.node, 0, fx.proposal(0, 0, 0, 42));
  const auto commit_timer = fx.ctx.timers.back();
  // The conflicting proposal arrives (via echo from node 3).
  fx.ctx.deliver(fx.node, 3, fx.proposal(0, 0, 0, 99));
  EXPECT_EQ(fx.ctx.sent_of<ShsBlame>().size(), 1u);
  EXPECT_FALSE(fx.ctx.cancelled.empty());
  // Even if the (cancelled) timer were mistakenly fired, nothing commits.
  fx.ctx.advance_to(commit_timer.delay);
  fx.ctx.fire(fx.node, commit_timer);
  EXPECT_TRUE(fx.ctx.decisions.empty());
}

TEST(SyncHsUnitTest, ForeignSignatureCannotEquivocate) {
  Fixture fx;
  fx.ctx.deliver(fx.node, 0, fx.proposal(0, 0, 0, 42));
  // A proposal "from the leader" signed by someone else is discarded.
  auto forged = std::make_shared<const ShsProposal>(
      0, 0, Value{99},
      fx.ctx.signer().sign(3, hash_words({0x5348ULL, 0ULL, 0ULL, 99ULL})));
  fx.ctx.deliver(fx.node, 3, forged);
  EXPECT_TRUE(fx.ctx.sent_of<ShsBlame>().empty());
}

TEST(SyncHsUnitTest, BlameTimerFiresAfterThreeDelta) {
  Fixture fx;
  const auto blame_timer = fx.ctx.timers.front();
  EXPECT_EQ(blame_timer.delay, SyncHotStuffNode::kBlameFactor * kLambda);
  fx.ctx.advance_to(blame_timer.delay);
  fx.ctx.fire(fx.node, blame_timer);
  EXPECT_EQ(fx.ctx.sent_of<ShsBlame>().size(), 1u);
}

TEST(SyncHsUnitTest, BlameQuorumEntersNextView) {
  Fixture fx;
  fx.ctx.deliver(fx.node, 0, fx.blame(0, 0));
  fx.ctx.deliver(fx.node, 2, fx.blame(2, 0));
  EXPECT_EQ(fx.ctx.views.back(), 0u);
  fx.ctx.deliver(fx.node, 3, fx.blame(3, 0));  // f+1 = 3
  EXPECT_EQ(fx.ctx.views.back(), 1u);
  // New leader (view 1 = this node) proposes from the committed frontier.
  const auto proposals = fx.ctx.sent_of<ShsProposal>();
  ASSERT_EQ(proposals.size(), 1u);
  EXPECT_EQ(proposals[0]->height, 0u);
  EXPECT_EQ(proposals[0]->view, 1u);
}

TEST(SyncHsUnitTest, ViewChangeDiscardsUncommittedPrefix) {
  Fixture fx;
  // Vote height 0 (uncommitted), then a blame quorum forces view 1.
  fx.ctx.deliver(fx.node, 0, fx.proposal(0, 0, 0, 42));
  for (const NodeId src : {0u, 2u, 3u}) {
    fx.ctx.deliver(fx.node, src, fx.blame(src, 0));
  }
  fx.ctx.clear_sent();
  // In view 1 this node leads and re-proposes height 0 — the provisional
  // height-0 block from view 0 was discarded, and the node re-votes.
  fx.ctx.deliver(fx.node, 1, fx.proposal(1, 0, 1, 77));
  EXPECT_EQ(fx.ctx.sent_of<ShsVote>().size(), 1u);
  const auto timer = fx.ctx.timers.back();
  fx.ctx.advance_to(fx.ctx.now() + timer.delay);
  fx.ctx.fire(fx.node, timer);
  ASSERT_EQ(fx.ctx.decisions.size(), 1u);
  EXPECT_EQ(fx.ctx.decisions[0], 77u);  // the view-1 value, not 42
}

TEST(SyncHsUnitTest, VoteQuorumLetsLeaderPipelineNextHeight) {
  Fixture fx{0};  // node 0 leads view 0
  // It proposed height 0 at start; feed it f+1 votes for that block.
  fx.ctx.deliver(fx.node, 0, fx.proposal(0, 0, 0, 0));  // self proposal echo:
  // (the mock does not self-deliver broadcasts, so deliver it explicitly
  // to make the node vote and advance next_height_)
  auto vote = [&](NodeId src, Value v) {
    return std::make_shared<const ShsVote>(
        0, 0, v, fx.ctx.signer().sign(src, hash_words({0x5356ULL, 0ULL, 0ULL,
                                                       static_cast<Value>(v)})));
  };
  const Value value = fx.ctx.sent_of<ShsVote>().empty()
                          ? 0
                          : fx.ctx.sent_of<ShsVote>()[0]->value;
  fx.ctx.clear_sent();
  fx.ctx.deliver(fx.node, 1, vote(1, value));
  fx.ctx.deliver(fx.node, 2, vote(2, value));
  fx.ctx.deliver(fx.node, 3, vote(3, value));
  const auto proposals = fx.ctx.sent_of<ShsProposal>();
  ASSERT_EQ(proposals.size(), 1u);
  EXPECT_EQ(proposals[0]->height, 1u);  // pipelined next height
}

}  // namespace
}  // namespace bftsim::synchotstuff

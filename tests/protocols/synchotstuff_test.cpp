#include "protocols/synchotstuff/synchotstuff.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace bftsim {
namespace {

SimConfig shs_config(std::uint32_t n = 16, std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.protocol = "sync-hotstuff";
  cfg.n = n;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.seed = seed;
  cfg.max_time_ms = 300'000;
  return cfg;
}

TEST(SyncHotStuffTest, FirstCommitWaitsTwoDelta) {
  const RunResult result = run_simulation(shs_config());
  ASSERT_TRUE(result.terminated);
  EXPECT_TRUE(result.decisions_consistent());
  // Proposal + vote (~0.5 s) then the 2Δ = 2 s commit timer.
  EXPECT_GT(result.latency_ms(), 2000);
  EXPECT_LT(result.latency_ms(), 3500);
}

TEST(SyncHotStuffTest, PipelinedCommitsArriveFasterThanFirst) {
  SimConfig cfg = shs_config();
  cfg.decisions = 5;
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  // 5 decisions cost far less than 5x the first (certificates pipeline).
  EXPECT_LT(result.latency_ms(), 2.5 * run_simulation(shs_config()).latency_ms());
}

TEST(SyncHotStuffTest, CommitLatencyScalesWithLambda) {
  SimConfig big = shs_config();
  big.lambda_ms = 3000;  // 2Δ = 6 s
  const RunResult fast = run_simulation(shs_config());
  const RunResult slow = run_simulation(big);
  ASSERT_TRUE(slow.terminated);
  EXPECT_GT(slow.latency_ms() - fast.latency_ms(), 3500);
}

TEST(SyncHotStuffTest, HonestMajorityResilience) {
  SimConfig cfg = shs_config();
  cfg.honest = 9;  // f = 7 tolerated
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  EXPECT_TRUE(result.decisions_consistent());
}

TEST(SyncHotStuffTest, BlamesSilentLeaderIntoViewChange) {
  // Force the view-0 leader dead across seeds until one hits node 0; the
  // run must still decide via the blame / quit-view path.
  bool exercised = false;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    SimConfig cfg = shs_config(16, seed);
    cfg.honest = 12;
    const RunResult result = run_simulation(cfg);
    ASSERT_TRUE(result.terminated) << "seed " << seed;
    EXPECT_TRUE(result.decisions_consistent()) << "seed " << seed;
    for (const NodeId dead : result.failstopped) {
      if (dead == 0) {
        exercised = true;
        // Blame timer (3Δ) + new view + 2Δ commit: clearly slower.
        EXPECT_GT(result.latency_ms(), 4500) << "seed " << seed;
      }
    }
  }
  EXPECT_TRUE(exercised) << "no seed fail-stopped the first leader";
}

TEST(SyncHotStuffEquivocationTest, DetectionPreservesSafety) {
  SimConfig cfg = shs_config(16, 2);
  cfg.attack = "sync-hotstuff-equivocation";
  const RunResult attacked = run_simulation(cfg);
  ASSERT_TRUE(attacked.terminated);
  // The conflicting proposals must never commit on both sides.
  EXPECT_TRUE(attacked.decisions_consistent());
  EXPECT_EQ(attacked.corrupted.size(), 1u);
  // One view is lost to the blame round.
  const RunResult clean = run_simulation(shs_config(16, 2));
  EXPECT_GT(attacked.latency_ms(), clean.latency_ms());
}

TEST(SyncHotStuffEquivocationTest, InjectedProposalsCarryValidSignatures) {
  SimConfig cfg = shs_config(16, 2);
  cfg.attack = "sync-hotstuff-equivocation";
  cfg.record_trace = true;
  const RunResult result = run_simulation(cfg);
  // The attack's proposals were accepted (nodes voted), proving the
  // corrupted key produced verifiable signatures.
  EXPECT_GT(result.messages_injected, 0u);
  bool saw_vote = false;
  for (const TraceRecord& rec : result.trace.records()) {
    if (rec.kind == TraceKind::kSend && rec.type == "sync-hs/vote" &&
        rec.at < from_ms(1000)) {
      saw_vote = true;
    }
  }
  EXPECT_TRUE(saw_vote);
}

class SyncHotStuffSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {};

TEST_P(SyncHotStuffSweep, AgreementAndTermination) {
  const auto [n, seed] = GetParam();
  SimConfig cfg = shs_config(n, seed);
  cfg.decisions = 3;
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  EXPECT_TRUE(result.decisions_consistent());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SyncHotStuffSweep,
    ::testing::Combine(::testing::Values(5u, 9u, 16u, 31u),
                       ::testing::Values(1ull, 2ull, 3ull)));

}  // namespace
}  // namespace bftsim

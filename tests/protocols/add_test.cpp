#include "protocols/add/add.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace bftsim {
namespace {

SimConfig add_config(const std::string& variant, std::uint64_t seed = 1,
                     std::uint32_t n = 16) {
  SimConfig cfg;
  cfg.protocol = variant;
  cfg.n = n;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.seed = seed;
  cfg.max_time_ms = 300'000;
  return cfg;
}

TEST(AddTest, AllVariantsDecideQuickly) {
  for (const char* variant : {"addv1", "addv2", "addv3"}) {
    const RunResult result = run_simulation(add_config(variant));
    ASSERT_TRUE(result.terminated) << variant;
    EXPECT_TRUE(result.decisions_consistent()) << variant;
    // First iteration succeeds: a handful of λ-long rounds.
    EXPECT_LT(result.latency_ms(), 5 * 1000.0) << variant;
  }
}

TEST(AddTest, V2PaysOneExtraRoundForElection) {
  const RunResult v1 = run_simulation(add_config("addv1"));
  const RunResult v2 = run_simulation(add_config("addv2"));
  ASSERT_TRUE(v1.terminated);
  ASSERT_TRUE(v2.terminated);
  EXPECT_NEAR(v2.latency_ms() - v1.latency_ms(), 1000.0, 300.0);
}

TEST(AddTest, LatencyScalesWithLambda) {
  SimConfig big = add_config("addv1");
  big.lambda_ms = 3000;
  const RunResult fast = run_simulation(add_config("addv1"));
  const RunResult slow = run_simulation(big);
  ASSERT_TRUE(slow.terminated);
  EXPECT_GT(slow.latency_ms(), 2.0 * fast.latency_ms());
}

TEST(AddTest, HonestMajorityFaultThreshold) {
  // ADD+ tolerates f < n/2: with n = 16 up to 7 fail-stopped nodes.
  SimConfig cfg = add_config("addv1");
  cfg.honest = 9;
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  EXPECT_TRUE(result.decisions_consistent());
}

// --- Fig. 8 left: static attack ------------------------------------------------

TEST(AddAttackTest, StaticAttackDelaysV1ByFIterations) {
  SimConfig cfg = add_config("addv1");
  cfg.attack = "add-static";
  const RunResult attacked = run_simulation(cfg);
  const RunResult clean = run_simulation(add_config("addv1"));
  ASSERT_TRUE(attacked.terminated);
  // f = 7 leaders fail-stopped: iterations 0..6 are silent (3λ each).
  EXPECT_GT(attacked.latency_ms(), clean.latency_ms() + 7 * 3 * 1000.0 - 2000.0);
  EXPECT_TRUE(attacked.decisions_consistent());
}

TEST(AddAttackTest, StaticAttackBarelyAffectsV2AndV3) {
  for (const char* variant : {"addv2", "addv3"}) {
    SimConfig cfg = add_config(variant);
    cfg.attack = "add-static";
    const RunResult attacked = run_simulation(cfg);
    const RunResult clean = run_simulation(add_config(variant));
    ASSERT_TRUE(attacked.terminated) << variant;
    // VRF election: random corruption rarely hits consecutive leaders.
    // Expected slowdown is a small constant number of iterations.
    EXPECT_LT(attacked.latency_ms(), clean.latency_ms() + 3 * 4 * 1000.0)
        << variant;
  }
}

// --- Fig. 8 right: rushing adaptive attack --------------------------------------

TEST(AddAttackTest, AdaptiveAttackCripplesV2) {
  SimConfig cfg = add_config("addv2");
  cfg.attack = "add-adaptive";
  const RunResult attacked = run_simulation(cfg);
  const RunResult clean = run_simulation(add_config("addv2"));
  ASSERT_TRUE(attacked.terminated);
  // The attacker corrupts each revealed leader until the budget (f = 7)
  // is spent: at least ~7 wasted iterations of 4λ.
  EXPECT_GT(attacked.latency_ms(), clean.latency_ms() + 7 * 4 * 1000.0 - 2000.0);
}

TEST(AddAttackTest, PrepareRoundMakesV3Immune) {
  SimConfig cfg = add_config("addv3");
  cfg.attack = "add-adaptive";
  const RunResult attacked = run_simulation(cfg);
  const RunResult clean = run_simulation(add_config("addv3"));
  ASSERT_TRUE(attacked.terminated);
  // Corruption always arrives after the winning proposal is in flight.
  EXPECT_LT(attacked.latency_ms(), clean.latency_ms() + 1000.0);
  EXPECT_TRUE(attacked.decisions_consistent());
}

TEST(AddAttackTest, AdaptiveCorruptionsRespectBudget) {
  SimConfig cfg = add_config("addv2");
  cfg.attack = "add-adaptive";
  const RunResult result = run_simulation(cfg);
  EXPECT_LE(result.corrupted.size(), 7u);  // f = (16-1)/2
  EXPECT_GE(result.corrupted.size(), 5u);  // the attack did engage
}

class AddSweep : public ::testing::TestWithParam<
                     std::tuple<std::string, std::uint32_t, std::uint64_t>> {};

TEST_P(AddSweep, AgreementAndTermination) {
  const auto& [variant, n, seed] = GetParam();
  const RunResult result = run_simulation(add_config(variant, seed, n));
  ASSERT_TRUE(result.terminated);
  EXPECT_TRUE(result.decisions_consistent());
  EXPECT_EQ(result.decisions.size(), n);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AddSweep,
    ::testing::Combine(::testing::Values("addv1", "addv2", "addv3"),
                       ::testing::Values(5u, 9u, 16u),
                       ::testing::Values(1ull, 2ull)));

}  // namespace
}  // namespace bftsim

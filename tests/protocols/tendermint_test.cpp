#include "protocols/tendermint/tendermint.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace bftsim {
namespace {

SimConfig tm_config(std::uint32_t n = 16, std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.protocol = "tendermint";
  cfg.n = n;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.seed = seed;
  cfg.max_time_ms = 300'000;
  return cfg;
}

TEST(TendermintTest, DecidesFirstHeightInRoundZero) {
  const RunResult result = run_simulation(tm_config());
  ASSERT_TRUE(result.terminated);
  EXPECT_TRUE(result.decisions_consistent());
  // propose + prevote + precommit: three one-way hops, like PBFT.
  EXPECT_GT(result.latency_ms(), 400);
  EXPECT_LT(result.latency_ms(), 2000);
}

TEST(TendermintTest, MultipleHeightsRotateProposers) {
  SimConfig cfg = tm_config();
  cfg.decisions = 4;
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  EXPECT_TRUE(result.decisions_consistent());
  // Values are minted per (height, round, proposer); consecutive heights
  // use different proposers, so decided values must differ.
  Value prev = kBottom;
  for (const Decision& d : result.decisions) {
    if (d.node != result.honest.front()) continue;
    EXPECT_NE(d.value, prev);
    prev = d.value;
  }
}

TEST(TendermintTest, SilentProposersCostLinearlyGrowingRounds) {
  SimConfig cfg = tm_config(16, 3);
  cfg.honest = 11;  // f = 5: some rounds have dead proposers
  cfg.decisions = 2;
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  EXPECT_TRUE(result.decisions_consistent());
}

TEST(TendermintTest, NilPrevoteQuorumShortcutsTheRound) {
  // With a dead proposer everyone prevotes nil after timeout_propose; the
  // nil quorum lets replicas precommit nil without waiting a second
  // timeout, so a full dead round costs about one timeout, not three.
  SimConfig cfg = tm_config(16, 5);
  cfg.honest = 11;
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  // Never slower than a few rounds even when leaders are dead.
  EXPECT_LT(result.latency_ms(), 30'000);
}

TEST(TendermintTest, ResponsiveToOverestimatedLambda) {
  SimConfig fast = tm_config();
  SimConfig slow = tm_config();
  slow.lambda_ms = 3000;
  const RunResult a = run_simulation(fast);
  const RunResult b = run_simulation(slow);
  ASSERT_TRUE(a.terminated);
  ASSERT_TRUE(b.terminated);
  EXPECT_EQ(a.termination_time, b.termination_time);  // no timeout fired
}

TEST(TendermintTest, LocksPreventConflictingDecisions) {
  // Sweep seeds with maximum fail-stop load: rounds churn, locks engage,
  // and agreement must hold every time.
  for (const std::uint64_t seed : {7ull, 8ull, 9ull, 10ull, 11ull}) {
    SimConfig cfg = tm_config(16, seed);
    cfg.honest = 11;
    cfg.decisions = 2;
    const RunResult result = run_simulation(cfg);
    ASSERT_TRUE(result.terminated) << "seed " << seed;
    EXPECT_TRUE(result.decisions_consistent()) << "seed " << seed;
  }
}

class TendermintSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {};

TEST_P(TendermintSweep, AgreementAndTermination) {
  const auto [n, seed] = GetParam();
  SimConfig cfg = tm_config(n, seed);
  cfg.decisions = 2;
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  EXPECT_TRUE(result.decisions_consistent());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TendermintSweep,
    ::testing::Combine(::testing::Values(4u, 7u, 16u, 32u),
                       ::testing::Values(1ull, 2ull, 3ull)));

}  // namespace
}  // namespace bftsim

// White-box unit tests of the Tendermint node: step transitions, nil
// voting, locking rules and round advancement.
#include "protocols/tendermint/tendermint.hpp"

#include <gtest/gtest.h>

#include "common/mock_context.hpp"

namespace bftsim::tendermint {
namespace {

using bftsim::testing::MockContext;

constexpr std::uint32_t kN = 4;  // f = 1, quorum = 3
constexpr Time kLambda = from_ms(1000);

SimConfig config() {
  SimConfig cfg;
  cfg.protocol = "tendermint";
  cfg.n = kN;
  cfg.lambda_ms = 1000;
  return cfg;
}

struct Fixture {
  explicit Fixture(NodeId id = 1) : ctx(id, kN, 1, kLambda), node(id, config()) {
    node.on_start(ctx);
  }

  std::shared_ptr<const TmProposal> proposal(NodeId proposer, std::uint64_t round,
                                             Value value,
                                             std::int64_t valid_round = -1) {
    return std::make_shared<const TmProposal>(
        0, round, value, valid_round,
        ctx.signer().sign(proposer,
                          hash_words({0x5450ULL, 0ULL, round, value,
                                      static_cast<std::uint64_t>(valid_round)})));
  }
  std::shared_ptr<const TmPrevote> prevote(NodeId voter, std::uint64_t round,
                                           Value value) {
    return std::make_shared<const TmPrevote>(
        0, round, value,
        ctx.signer().sign(voter, hash_words({0x5456ULL, 0ULL, round, value})));
  }
  std::shared_ptr<const TmPrecommit> precommit(NodeId voter, std::uint64_t round,
                                               Value value) {
    return std::make_shared<const TmPrecommit>(
        0, round, value,
        ctx.signer().sign(voter, hash_words({0x5443ULL, 0ULL, round, value})));
  }

  MockContext ctx;
  TendermintNode node;
};

TEST(TendermintUnitTest, ProposerOfHeightZeroRoundZeroProposes) {
  Fixture fx{0};  // proposer(h=0, r=0) = 0
  const auto proposals = fx.ctx.sent_of<TmProposal>();
  ASSERT_EQ(proposals.size(), 1u);
  EXPECT_EQ(proposals[0]->round, 0u);
  EXPECT_EQ(proposals[0]->valid_round, -1);
}

TEST(TendermintUnitTest, FollowerPrevotesValidProposal) {
  Fixture fx;
  fx.ctx.deliver(fx.node, 0, fx.proposal(0, 0, 42));
  const auto prevotes = fx.ctx.sent_of<TmPrevote>();
  ASSERT_EQ(prevotes.size(), 1u);
  EXPECT_EQ(prevotes[0]->value, 42u);
}

TEST(TendermintUnitTest, RejectsProposalFromWrongProposer) {
  Fixture fx;
  fx.ctx.deliver(fx.node, 2, fx.proposal(2, 0, 42));  // proposer(0,0) = 0
  EXPECT_TRUE(fx.ctx.sent_of<TmPrevote>().empty());
}

TEST(TendermintUnitTest, ProposeTimeoutPrevotesNil) {
  Fixture fx;
  ASSERT_FALSE(fx.ctx.timers.empty());
  const auto timer = fx.ctx.timers[0];
  EXPECT_EQ(timer.delay, TendermintNode::kInitialFactor * kLambda);
  fx.ctx.advance_to(timer.delay);
  fx.ctx.fire(fx.node, timer);
  const auto prevotes = fx.ctx.sent_of<TmPrevote>();
  ASSERT_EQ(prevotes.size(), 1u);
  EXPECT_EQ(prevotes[0]->value, kBottom);
}

TEST(TendermintUnitTest, TimeoutsGrowLinearlyWithRound) {
  Fixture fx;
  // Drive round 0 to a nil finish: nil prevote quorum, then nil precommit
  // quorum advances to round 1 whose propose timeout is initial + Δ/2.
  fx.ctx.advance_to(fx.ctx.timers[0].delay);
  fx.ctx.fire(fx.node, fx.ctx.timers[0]);  // prevote nil
  for (const NodeId src : {0u, 2u, 3u}) {
    fx.ctx.deliver(fx.node, src, fx.prevote(src, 0, kBottom));
  }
  for (const NodeId src : {0u, 2u, 3u}) {
    fx.ctx.deliver(fx.node, src, fx.precommit(src, 0, kBottom));
  }
  // Round 1's propose timer is the most recent one.
  const auto timer = fx.ctx.timers.back();
  EXPECT_EQ(timer.delay,
            TendermintNode::kInitialFactor * kLambda + kLambda / 2);
}

TEST(TendermintUnitTest, PrevoteQuorumTriggersPrecommitAndLock) {
  Fixture fx;
  fx.ctx.deliver(fx.node, 0, fx.proposal(0, 0, 42));
  for (const NodeId src : {0u, 2u, 3u}) {
    fx.ctx.deliver(fx.node, src, fx.prevote(src, 0, 42));
  }
  const auto precommits = fx.ctx.sent_of<TmPrecommit>();
  ASSERT_EQ(precommits.size(), 1u);
  EXPECT_EQ(precommits[0]->value, 42u);
}

TEST(TendermintUnitTest, LockedNodePrevotesNilAgainstFreshConflict) {
  Fixture fx;
  // Lock on 42 in round 0.
  fx.ctx.deliver(fx.node, 0, fx.proposal(0, 0, 42));
  for (const NodeId src : {0u, 2u, 3u}) {
    fx.ctx.deliver(fx.node, src, fx.prevote(src, 0, 42));
  }
  // Move to round 1 via mixed precommits (no decision).
  for (const NodeId src : {0u, 2u, 3u}) {
    fx.ctx.deliver(fx.node, src, fx.precommit(src, 0, kBottom));
  }
  fx.ctx.clear_sent();
  // Round 1's proposer (h+r = 1 -> node 1 itself? proposer(0,1)=1). Use a
  // fresh conflicting proposal from the right proposer for round 2 = node 2.
  for (const NodeId src : {0u, 2u, 3u}) {
    fx.ctx.deliver(fx.node, src, fx.precommit(src, 1, kBottom));
  }
  fx.ctx.clear_sent();
  fx.ctx.deliver(fx.node, 2, fx.proposal(2, 2, 99));  // fresh, conflicts lock
  const auto prevotes = fx.ctx.sent_of<TmPrevote>();
  ASSERT_EQ(prevotes.size(), 1u);
  EXPECT_EQ(prevotes[0]->value, kBottom);  // refuses: locked on 42
}

TEST(TendermintUnitTest, DecidesOnPrecommitQuorum) {
  Fixture fx;
  for (const NodeId src : {0u, 2u, 3u}) {
    fx.ctx.deliver(fx.node, src, fx.precommit(src, 0, 42));
  }
  ASSERT_EQ(fx.ctx.decisions.size(), 1u);
  EXPECT_EQ(fx.ctx.decisions[0], 42u);
  // Next height started: a fresh propose timer was armed.
  EXPECT_GE(fx.ctx.timers.size(), 2u);
}

TEST(TendermintUnitTest, MessagesFromOtherHeightsIgnored) {
  Fixture fx;
  auto foreign = std::make_shared<const TmPrecommit>(
      5, 0, 42,
      fx.ctx.signer().sign(0, hash_words({0x5443ULL, 5ULL, 0ULL, 42ULL})));
  fx.ctx.deliver(fx.node, 0, foreign);
  auto foreign2 = std::make_shared<const TmPrecommit>(
      5, 0, 42,
      fx.ctx.signer().sign(2, hash_words({0x5443ULL, 5ULL, 0ULL, 42ULL})));
  fx.ctx.deliver(fx.node, 2, foreign2);
  auto foreign3 = std::make_shared<const TmPrecommit>(
      5, 0, 42,
      fx.ctx.signer().sign(3, hash_words({0x5443ULL, 5ULL, 0ULL, 42ULL})));
  fx.ctx.deliver(fx.node, 3, foreign3);
  EXPECT_TRUE(fx.ctx.decisions.empty());
}

}  // namespace
}  // namespace bftsim::tendermint

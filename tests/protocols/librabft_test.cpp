#include "protocols/librabft/librabft.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace bftsim {
namespace {

SimConfig libra_config(std::uint32_t n = 16, std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.protocol = "librabft";
  cfg.n = n;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.seed = seed;
  cfg.decisions = 10;
  cfg.max_time_ms = 600'000;
  return cfg;
}

TEST(LibraBftTest, PipelineDecidesTenValues) {
  const RunResult result = run_simulation(libra_config());
  ASSERT_TRUE(result.terminated);
  EXPECT_TRUE(result.decisions_consistent());
  EXPECT_LT(result.per_decision_latency_ms(), 1000);
}

TEST(LibraBftTest, HappyPathMatchesHotStuffShape) {
  // Without timeouts LibraBFT and HotStuff+NS run the same chained core;
  // message counts per decision should be nearly identical.
  SimConfig hs = libra_config();
  hs.protocol = "hotstuff-ns";
  const RunResult libra = run_simulation(libra_config());
  const RunResult hotstuff = run_simulation(hs);
  ASSERT_TRUE(libra.terminated);
  ASSERT_TRUE(hotstuff.terminated);
  EXPECT_NEAR(libra.per_decision_messages(), hotstuff.per_decision_messages(),
              hotstuff.per_decision_messages() * 0.25);
}

TEST(LibraBftTest, UnderestimatedLambdaStaysStable) {
  // The TC pacemaker re-synchronizes views with messages: per-decision
  // latency under λ = 150 stays within ~2.5x of the well-configured run
  // (this is Fig. 5's LibraBFT line being flat).
  SimConfig good = libra_config(16, 3);
  SimConfig bad = libra_config(16, 3);
  bad.lambda_ms = 150;
  const RunResult g = run_simulation(good);
  const RunResult b = run_simulation(bad);
  ASSERT_TRUE(g.terminated);
  ASSERT_TRUE(b.terminated);
  EXPECT_LT(b.per_decision_latency_ms(), 2.5 * g.per_decision_latency_ms());
  // ...but it pays for stability with extra timeout/TC messages.
  EXPECT_GT(b.messages_sent, g.messages_sent);
}

TEST(LibraBftTest, TimeoutCertificatesFormUnderFailstops) {
  SimConfig cfg = libra_config(16, 2);
  cfg.honest = 11;
  cfg.decisions = 3;
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  EXPECT_TRUE(result.decisions_consistent());
  // Dead leaders force timeouts; timeout messages must appear.
  EXPECT_GT(result.messages_sent, 0u);
}

TEST(LibraBftTest, TimeoutCertRequiresQuorum) {
  TimeoutCert tc;
  tc.view = 4;
  for (NodeId i = 0; i < 10; ++i) tc.signers.push_back(i);
  EXPECT_FALSE(tc.valid(11));
  tc.signers.push_back(10);
  EXPECT_TRUE(tc.valid(11));
}

class LibraSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {};

TEST_P(LibraSweep, AgreementAndTermination) {
  const auto [n, seed] = GetParam();
  SimConfig cfg = libra_config(n, seed);
  cfg.decisions = 5;
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  EXPECT_TRUE(result.decisions_consistent());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LibraSweep,
    ::testing::Combine(::testing::Values(4u, 7u, 16u, 32u),
                       ::testing::Values(1ull, 2ull, 3ull)));

}  // namespace
}  // namespace bftsim

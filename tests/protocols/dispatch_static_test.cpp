// Enforces the tag-dispatch contract on the protocol sources: on_message
// chains must switch on Message::type_id() / use the tag-checked as<T>(),
// never RTTI. A dynamic_cast creeping back into src/protocols would silently
// reintroduce the per-delivery RTTI cost this PR removed, so the absence is
// asserted here rather than left to review.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#ifndef BFTSIM_REPO_ROOT
#error "BFTSIM_REPO_ROOT must point at the repository checkout"
#endif

namespace {

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(DispatchStaticTest, NoDynamicCastInProtocolSources) {
  const std::filesystem::path root =
      std::filesystem::path(BFTSIM_REPO_ROOT) / "src" / "protocols";
  ASSERT_TRUE(std::filesystem::is_directory(root));
  std::size_t scanned = 0;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::filesystem::path& path = entry.path();
    const std::string ext = path.extension().string();
    if (ext != ".hpp" && ext != ".cpp") continue;
    ++scanned;
    const std::string contents = read_file(path);
    EXPECT_EQ(contents.find("dynamic_cast"), std::string::npos)
        << "RTTI dispatch in " << path.string()
        << " — use PayloadType tags (Message::is / as<T>) instead";
  }
  // Sanity: the scan actually saw the protocol tree (all eight protocols).
  EXPECT_GE(scanned, 16u);
}

}  // namespace

// White-box unit tests of Bracha async BA: reliable-broadcast thresholds
// (echo quorum, ready amplification, accept), and the three-step round
// logic including the locking and coin fallbacks.
#include "protocols/asyncba/asyncba.hpp"

#include <gtest/gtest.h>

#include "common/mock_context.hpp"

namespace bftsim::asyncba {
namespace {

using bftsim::testing::MockContext;

constexpr std::uint32_t kN = 7;  // f = 2: echo quorum = (7+2)/2+1 = 5,
constexpr std::uint32_t kF = 2;  // ready amplify = 3, accept = 5, step = 5
constexpr Time kLambda = from_ms(1000);

SimConfig config(const char* input = "ones") {
  SimConfig cfg;
  cfg.protocol = "asyncba";
  cfg.n = kN;
  cfg.lambda_ms = 1000;
  json::Object params;
  params["input"] = input;
  cfg.protocol_params = json::Value{std::move(params)};
  return cfg;
}

struct Fixture {
  explicit Fixture(const char* input = "ones")
      : ctx(0, kN, kF, kLambda), node(0, config(input)) {
    node.on_start(ctx);
    ctx.clear_sent();
  }

  void deliver_init(NodeId src, std::uint64_t round, std::uint8_t step, Value v) {
    ctx.deliver(node, src, std::make_shared<const BrachaInit>(round, step, v));
  }
  void deliver_echo(NodeId src, NodeId origin, Value v, std::uint64_t round = 1,
                    std::uint8_t step = 1) {
    ctx.deliver(node, src,
                std::make_shared<const BrachaEcho>(round, step, origin, v));
  }
  void deliver_ready(NodeId src, NodeId origin, Value v, std::uint64_t round = 1,
                     std::uint8_t step = 1) {
    ctx.deliver(node, src,
                std::make_shared<const BrachaReady>(round, step, origin, v));
  }

  MockContext ctx;
  AsyncBaNode node;
};

TEST(AsyncBaUnitTest, BroadcastsInitOnStart) {
  MockContext ctx(0, kN, kF, kLambda);
  AsyncBaNode node(0, config());
  node.on_start(ctx);
  const auto inits = ctx.sent_of<BrachaInit>();
  ASSERT_EQ(inits.size(), 1u);
  EXPECT_EQ(inits[0]->round, 1u);
  EXPECT_EQ(inits[0]->step, 1u);
  EXPECT_EQ(inits[0]->value, 1u);  // "ones" input
}

TEST(AsyncBaUnitTest, InputModes) {
  MockContext ctx(3, kN, kF, kLambda);
  AsyncBaNode zeros(3, config("zeros"));
  zeros.on_start(ctx);
  EXPECT_EQ(ctx.sent_of<BrachaInit>()[0]->value, 0u);
  ctx.clear_sent();
  AsyncBaNode split(3, config("split"));
  split.on_start(ctx);
  EXPECT_EQ(ctx.sent_of<BrachaInit>()[0]->value, 1u);  // id 3 is odd
}

TEST(AsyncBaUnitTest, EchoesFirstInitOnly) {
  Fixture fx;
  fx.deliver_init(2, 1, 1, 1);
  ASSERT_EQ(fx.ctx.sent_of<BrachaEcho>().size(), 1u);
  EXPECT_EQ(fx.ctx.sent_of<BrachaEcho>()[0]->origin, 2u);
  // A conflicting second init from the same origin is not echoed.
  fx.deliver_init(2, 1, 1, 0);
  EXPECT_EQ(fx.ctx.sent_of<BrachaEcho>().size(), 1u);
}

TEST(AsyncBaUnitTest, ReadyAtEchoQuorumExactly) {
  Fixture fx;
  for (const NodeId src : {1u, 2u, 3u, 4u}) fx.deliver_echo(src, 6, 1);
  EXPECT_TRUE(fx.ctx.sent_of<BrachaReady>().empty());
  fx.deliver_echo(5, 6, 1);  // 5th distinct echo = (n+f)/2 + 1
  EXPECT_EQ(fx.ctx.sent_of<BrachaReady>().size(), 1u);
}

TEST(AsyncBaUnitTest, ReadyAmplificationAtFPlusOne) {
  Fixture fx;
  fx.deliver_ready(1, 6, 1);
  fx.deliver_ready(2, 6, 1);
  EXPECT_TRUE(fx.ctx.sent_of<BrachaReady>().empty());
  fx.deliver_ready(3, 6, 1);  // f + 1 = 3 readies: join the broadcast
  EXPECT_EQ(fx.ctx.sent_of<BrachaReady>().size(), 1u);
}

TEST(AsyncBaUnitTest, SplitEchoesNeverReachQuorum) {
  Fixture fx;
  // 4 echoes for value 1, 3 for value 0 — neither reaches 5.
  for (const NodeId src : {1u, 2u, 3u, 4u}) fx.deliver_echo(src, 6, 1);
  for (const NodeId src : {5u, 0u, 6u}) fx.deliver_echo(src, 6, 0);
  EXPECT_TRUE(fx.ctx.sent_of<BrachaReady>().empty());
}

TEST(AsyncBaUnitTest, StepAdvancesWhenEnoughOriginsAccepted) {
  Fixture fx;
  // Accept n - f = 5 distinct origins' step-1 broadcasts (2f+1 = 5 readies
  // each); the node must then process step 1 and init step 2.
  for (const NodeId origin : {0u, 1u, 2u, 3u, 4u}) {
    for (const NodeId src : {0u, 1u, 2u, 3u, 4u}) {
      fx.deliver_ready(src, origin, 1);
    }
  }
  const auto inits = fx.ctx.sent_of<BrachaInit>();
  ASSERT_FALSE(inits.empty());
  EXPECT_EQ(inits.back()->step, 2u);
  EXPECT_EQ(inits.back()->value, 1u);  // majority of accepted values
}

TEST(AsyncBaUnitTest, DecidesInStepThreeWithStrongQuorum) {
  Fixture fx;
  // Drive steps 1 and 2 with unanimous value 1, then step 3.
  for (std::uint8_t step = 1; step <= 3; ++step) {
    for (const NodeId origin : {0u, 1u, 2u, 3u, 4u}) {
      for (const NodeId src : {0u, 1u, 2u, 3u, 4u}) {
        fx.deliver_ready(src, origin, 1, 1, step);
      }
    }
  }
  ASSERT_EQ(fx.ctx.decisions.size(), 1u);
  EXPECT_EQ(fx.ctx.decisions[0], 1u);
  // After deciding, the node moves on to round 2 (it keeps participating).
  const auto inits = fx.ctx.sent_of<BrachaInit>();
  EXPECT_EQ(inits.back()->round, 2u);
}

TEST(AsyncBaUnitTest, BottomStep3LocksWithoutDeciding) {
  Fixture fx;
  // Steps 1-2 processed with mixed content so step 2 emits ⊥...
  for (std::uint8_t step = 1; step <= 2; ++step) {
    for (const NodeId origin : {0u, 1u, 2u, 3u, 4u}) {
      for (const NodeId src : {0u, 1u, 2u, 3u, 4u}) {
        // step 1: 3 origins say 1, 2 say 0 -> majority 1 but no lock later
        const Value v = step == 1 ? (origin < 3 ? 1 : 0) : kBottom;
        fx.deliver_ready(src, origin, v, 1, step);
      }
    }
  }
  // Step 3 sees only f+1 = 3 non-bottom values: adopt, do not decide.
  for (const NodeId origin : {0u, 1u, 2u, 3u, 4u}) {
    const Value v = origin < 3 ? 1 : kBottom;
    for (const NodeId src : {0u, 1u, 2u, 3u, 4u}) {
      fx.deliver_ready(src, origin, v, 1, 3);
    }
  }
  EXPECT_TRUE(fx.ctx.decisions.empty());
  const auto inits = fx.ctx.sent_of<BrachaInit>();
  ASSERT_FALSE(inits.empty());
  EXPECT_EQ(inits.back()->round, 2u);
  EXPECT_EQ(inits.back()->value, 1u);  // adopted the f+1 value
}

TEST(AsyncBaUnitTest, RetransmitTimerRebroadcastsCurrentStep) {
  Fixture fx;
  ASSERT_FALSE(fx.ctx.timers.empty());
  EXPECT_EQ(fx.ctx.timers[0].delay, AsyncBaNode::kRetransmitFactor * kLambda);
  fx.deliver_init(2, 1, 1, 1);  // we echoed origin 2
  fx.ctx.clear_sent();
  fx.ctx.advance_to(fx.ctx.timers[0].delay);
  fx.ctx.fire(fx.node, fx.ctx.timers[0]);
  EXPECT_EQ(fx.ctx.sent_of<BrachaInit>().size(), 1u);   // own init again
  EXPECT_EQ(fx.ctx.sent_of<BrachaEcho>().size(), 1u);   // echo for origin 2
  ASSERT_EQ(fx.ctx.timers.size(), 2u);                  // re-armed
}

}  // namespace
}  // namespace bftsim::asyncba

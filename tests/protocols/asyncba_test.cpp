#include "protocols/asyncba/asyncba.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace bftsim {
namespace {

SimConfig ba_config(const std::string& input = "ones", std::uint32_t n = 16,
                    std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.protocol = "asyncba";
  cfg.n = n;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.seed = seed;
  cfg.max_time_ms = 300'000;
  json::Object params;
  params["input"] = input;
  cfg.protocol_params = json::Value{std::move(params)};
  return cfg;
}

TEST(AsyncBaTest, UnanimousOnesDecideOne) {
  const RunResult result = run_simulation(ba_config("ones"));
  ASSERT_TRUE(result.terminated);
  for (const Decision& d : result.decisions) EXPECT_EQ(d.value, 1u);
}

TEST(AsyncBaTest, UnanimousZerosDecideZero) {
  // Validity: if all honest nodes propose v, the decision is v.
  const RunResult result = run_simulation(ba_config("zeros"));
  ASSERT_TRUE(result.terminated);
  for (const Decision& d : result.decisions) EXPECT_EQ(d.value, 0u);
}

TEST(AsyncBaTest, SplitInputsStillAgree) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    const RunResult result = run_simulation(ba_config("split", 16, seed));
    ASSERT_TRUE(result.terminated) << "seed " << seed;
    EXPECT_TRUE(result.decisions_consistent()) << "seed " << seed;
    for (const Decision& d : result.decisions) EXPECT_LE(d.value, 1u);
  }
}

TEST(AsyncBaTest, RandomInputsAgreeAcrossSeeds) {
  for (const std::uint64_t seed : {10ull, 11ull, 12ull}) {
    const RunResult result = run_simulation(ba_config("random", 10, seed));
    ASSERT_TRUE(result.terminated) << "seed " << seed;
    EXPECT_TRUE(result.decisions_consistent()) << "seed " << seed;
  }
}

TEST(AsyncBaTest, IgnoresLambdaEntirely) {
  // Async BA has no timeouts: changing λ cannot change the decision time
  // (Fig. 4's flat line). Retransmission timers exist but fire after the
  // happy-path decision.
  SimConfig a = ba_config();
  a.lambda_ms = 1000;
  SimConfig b = ba_config();
  b.lambda_ms = 3000;
  const RunResult ra = run_simulation(a);
  const RunResult rb = run_simulation(b);
  ASSERT_TRUE(ra.terminated);
  ASSERT_TRUE(rb.terminated);
  EXPECT_EQ(ra.termination_time, rb.termination_time);
}

TEST(AsyncBaTest, ToleratesMaxFailstops) {
  SimConfig cfg = ba_config("ones");
  cfg.honest = 11;  // f = 5
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  EXPECT_TRUE(result.decisions_consistent());
}

TEST(AsyncBaTest, MessageHeavyByDesign) {
  // n parallel reliable broadcasts cost O(n^3) messages per step; at n=16
  // a run is tens of thousands of messages — the Fig. 3b outlier.
  const RunResult result = run_simulation(ba_config());
  ASSERT_TRUE(result.terminated);
  EXPECT_GT(result.messages_sent, 10'000u);
}

class AsyncBaSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {};

TEST_P(AsyncBaSweep, AgreementAndTermination) {
  const auto [n, seed] = GetParam();
  const RunResult result = run_simulation(ba_config("split", n, seed));
  ASSERT_TRUE(result.terminated);
  EXPECT_TRUE(result.decisions_consistent());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AsyncBaSweep,
    ::testing::Combine(::testing::Values(4u, 7u, 10u, 16u),
                       ::testing::Values(1ull, 2ull)));

}  // namespace
}  // namespace bftsim

// White-box unit tests of the PBFT node: each test drives one replica
// through a precise message schedule with MockContext and asserts the
// exact outputs — quorum edges, equivocation handling, signature checks,
// view-change triggers.
#include "protocols/pbft/pbft.hpp"

#include <gtest/gtest.h>

#include "common/mock_context.hpp"

namespace bftsim::pbft {
namespace {

using bftsim::testing::MockContext;

constexpr std::uint32_t kN = 4;   // f = 1, quorum = 3
constexpr std::uint32_t kF = 1;
constexpr Time kLambda = from_ms(1000);

struct Fixture {
  Fixture(NodeId id = 1) : ctx(id, kN, kF, kLambda), node(id, config()) {
    node.on_start(ctx);
  }

  static SimConfig config() {
    SimConfig cfg;
    cfg.protocol = "pbft";
    cfg.n = kN;
    cfg.lambda_ms = 1000;
    return cfg;
  }

  std::shared_ptr<const PrePrepare> pre_prepare(NodeId leader, View view,
                                                std::uint64_t seq, Value value) {
    return std::make_shared<const PrePrepare>(
        view, seq, value,
        ctx.signer().sign(leader, hash_words({0x5050ULL, view, seq, value})));
  }
  std::shared_ptr<const Prepare> prepare(NodeId voter, View view,
                                         std::uint64_t seq, Value value) {
    return std::make_shared<const Prepare>(
        view, seq, value,
        ctx.signer().sign(voter, hash_words({0x5052ULL, view, seq, value})));
  }
  std::shared_ptr<const Commit> commit(NodeId voter, View view,
                                       std::uint64_t seq, Value value) {
    return std::make_shared<const Commit>(
        view, seq, value,
        ctx.signer().sign(voter, hash_words({0x434dULL, view, seq, value})));
  }

  MockContext ctx;
  PbftNode node;
};

TEST(PbftUnitTest, FollowerEchoesPrePrepareWithPrepare) {
  Fixture fx;
  fx.ctx.deliver(fx.node, 0, fx.pre_prepare(0, 0, 0, 42));
  const auto prepares = fx.ctx.sent_of<Prepare>();
  ASSERT_EQ(prepares.size(), 1u);
  EXPECT_EQ(prepares[0]->view, 0u);
  EXPECT_EQ(prepares[0]->seq, 0u);
  EXPECT_EQ(prepares[0]->value, 42u);
}

TEST(PbftUnitTest, RejectsPrePrepareFromNonLeader) {
  Fixture fx;
  fx.ctx.deliver(fx.node, 2, fx.pre_prepare(2, 0, 0, 42));  // leader of v0 is 0
  EXPECT_TRUE(fx.ctx.sent_of<Prepare>().empty());
}

TEST(PbftUnitTest, RejectsBadSignature) {
  Fixture fx;
  auto forged = std::make_shared<const PrePrepare>(
      0, 0, 42, Signature{0, hash_words({0x5050ULL, 0ULL, 0ULL, 42ULL}), 0xBAD});
  fx.ctx.deliver(fx.node, 0, std::move(forged));
  EXPECT_TRUE(fx.ctx.sent_of<Prepare>().empty());
}

TEST(PbftUnitTest, IgnoresEquivocatingSecondPrePrepare) {
  Fixture fx;
  fx.ctx.deliver(fx.node, 0, fx.pre_prepare(0, 0, 0, 42));
  fx.ctx.clear_sent();
  fx.ctx.deliver(fx.node, 0, fx.pre_prepare(0, 0, 0, 43));  // conflicting
  EXPECT_TRUE(fx.ctx.sent_of<Prepare>().empty());
}

TEST(PbftUnitTest, CommitsExactlyAtPrepareQuorum) {
  Fixture fx;
  fx.ctx.deliver(fx.node, 0, fx.pre_prepare(0, 0, 0, 42));  // + own prepare is
  // broadcast but not self-counted by the mock, so feed three peers.
  fx.ctx.deliver(fx.node, 0, fx.prepare(0, 0, 0, 42));
  EXPECT_TRUE(fx.ctx.sent_of<Commit>().empty());
  fx.ctx.deliver(fx.node, 2, fx.prepare(2, 0, 0, 42));
  EXPECT_TRUE(fx.ctx.sent_of<Commit>().empty());  // 2 < quorum 3
  fx.ctx.deliver(fx.node, 3, fx.prepare(3, 0, 0, 42));
  EXPECT_EQ(fx.ctx.sent_of<Commit>().size(), 1u);  // exactly at the edge
}

TEST(PbftUnitTest, MixedValuePreparesDoNotReachQuorum) {
  Fixture fx;
  fx.ctx.deliver(fx.node, 0, fx.pre_prepare(0, 0, 0, 42));
  fx.ctx.deliver(fx.node, 0, fx.prepare(0, 0, 0, 42));
  fx.ctx.deliver(fx.node, 2, fx.prepare(2, 0, 0, 99));  // different value
  fx.ctx.deliver(fx.node, 3, fx.prepare(3, 0, 0, 99));
  EXPECT_TRUE(fx.ctx.sent_of<Commit>().empty());
}

TEST(PbftUnitTest, DuplicatePreparesFromOneVoterCountOnce) {
  Fixture fx;
  fx.ctx.deliver(fx.node, 0, fx.pre_prepare(0, 0, 0, 42));
  fx.ctx.deliver(fx.node, 0, fx.prepare(0, 0, 0, 42));
  fx.ctx.deliver(fx.node, 0, fx.prepare(0, 0, 0, 42));
  fx.ctx.deliver(fx.node, 0, fx.prepare(0, 0, 0, 42));
  EXPECT_TRUE(fx.ctx.sent_of<Commit>().empty());
}

TEST(PbftUnitTest, DecidesOnCommitQuorumAndProposesNothingAsFollower) {
  Fixture fx;
  fx.ctx.deliver(fx.node, 0, fx.commit(0, 0, 0, 42));
  fx.ctx.deliver(fx.node, 2, fx.commit(2, 0, 0, 42));
  EXPECT_TRUE(fx.ctx.decisions.empty());
  fx.ctx.deliver(fx.node, 3, fx.commit(3, 0, 0, 42));
  ASSERT_EQ(fx.ctx.decisions.size(), 1u);
  EXPECT_EQ(fx.ctx.decisions[0], 42u);
  EXPECT_TRUE(fx.ctx.sent_of<PrePrepare>().empty());  // node 1 is a follower
}

TEST(PbftUnitTest, CommitCertificateWorksAcrossViews) {
  // A laggard in view 0 accepts a 2f+1 commit certificate from view 3.
  Fixture fx;
  fx.ctx.deliver(fx.node, 0, fx.commit(0, 3, 0, 7));
  fx.ctx.deliver(fx.node, 2, fx.commit(2, 3, 0, 7));
  fx.ctx.deliver(fx.node, 3, fx.commit(3, 3, 0, 7));
  ASSERT_EQ(fx.ctx.decisions.size(), 1u);
  EXPECT_EQ(fx.ctx.decisions[0], 7u);
}

TEST(PbftUnitTest, LeaderProposesOnStart) {
  Fixture fx{0};  // node 0 leads view 0
  const auto proposals = fx.ctx.sent_of<PrePrepare>();
  ASSERT_EQ(proposals.size(), 1u);
  EXPECT_EQ(proposals[0]->view, 0u);
  EXPECT_EQ(proposals[0]->seq, 0u);
}

TEST(PbftUnitTest, ViewTimerTriggersViewChangeBroadcast) {
  Fixture fx;
  ASSERT_FALSE(fx.ctx.timers.empty());
  const auto timer = fx.ctx.timers.front();
  EXPECT_EQ(timer.delay, PbftNode::kTimeoutFactor * kLambda);
  fx.ctx.advance_to(timer.delay);
  fx.ctx.fire(fx.node, timer);
  const auto vcs = fx.ctx.sent_of<ViewChange>();
  ASSERT_EQ(vcs.size(), 1u);
  EXPECT_EQ(vcs[0]->new_view, 1u);
  EXPECT_FALSE(vcs[0]->has_prepared);
}

TEST(PbftUnitTest, ViewChangeCarriesPreparedValue) {
  Fixture fx;
  fx.ctx.deliver(fx.node, 0, fx.pre_prepare(0, 0, 0, 42));
  fx.ctx.deliver(fx.node, 0, fx.prepare(0, 0, 0, 42));
  fx.ctx.deliver(fx.node, 2, fx.prepare(2, 0, 0, 42));
  fx.ctx.deliver(fx.node, 3, fx.prepare(3, 0, 0, 42));  // prepared now
  const auto timer = fx.ctx.timers.front();
  fx.ctx.advance_to(timer.delay);
  fx.ctx.fire(fx.node, timer);
  const auto vcs = fx.ctx.sent_of<ViewChange>();
  ASSERT_EQ(vcs.size(), 1u);
  EXPECT_TRUE(vcs[0]->has_prepared);
  EXPECT_EQ(vcs[0]->prepared_value, 42u);
}

TEST(PbftUnitTest, NewLeaderCompletesViewChangeAtQuorum) {
  Fixture fx;  // node 1 leads view 1
  auto vc = [&](NodeId from) {
    return std::make_shared<const ViewChange>(
        1, 0, false, 0, kBottom,
        fx.ctx.signer().sign(
            from, hash_words({0x5643ULL, 1ULL, 0ULL, 0ULL, 0ULL, kBottom})));
  };
  fx.ctx.deliver(fx.node, 0, vc(0));
  fx.ctx.deliver(fx.node, 2, vc(2));
  EXPECT_TRUE(fx.ctx.sent_of<NewView>().empty());
  fx.ctx.deliver(fx.node, 3, vc(3));
  EXPECT_EQ(fx.ctx.sent_of<NewView>().size(), 1u);
}

TEST(PbftUnitTest, StaleSequencesIgnoredAfterDecision) {
  Fixture fx;
  fx.ctx.deliver(fx.node, 0, fx.commit(0, 0, 0, 42));
  fx.ctx.deliver(fx.node, 2, fx.commit(2, 0, 0, 42));
  fx.ctx.deliver(fx.node, 3, fx.commit(3, 0, 0, 42));
  fx.ctx.clear_sent();
  // Pre-prepare for the already-decided sequence is ignored.
  fx.ctx.deliver(fx.node, 0, fx.pre_prepare(0, 0, 0, 77));
  EXPECT_TRUE(fx.ctx.sent_of<Prepare>().empty());
}

}  // namespace
}  // namespace bftsim::pbft

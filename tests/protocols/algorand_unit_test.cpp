// White-box unit tests of Algorand Agreement: period/step timing,
// credential-based leader filtering, vote quorums and period advancement.
#include "protocols/algorand/algorand.hpp"

#include <gtest/gtest.h>

#include "common/mock_context.hpp"

namespace bftsim::algorand {
namespace {

using bftsim::testing::MockContext;

constexpr std::uint32_t kN = 7;  // f = 2, quorum = 2f+1 = 5
constexpr std::uint32_t kF = 2;
constexpr Time kLambda = from_ms(1000);

SimConfig config() {
  SimConfig cfg;
  cfg.protocol = "algorand";
  cfg.n = kN;
  cfg.lambda_ms = 1000;
  return cfg;
}

struct Fixture {
  Fixture() : ctx(0, kN, kF, kLambda), node(0, config()) {
    node.on_start(ctx);
  }

  void deliver_proposal(NodeId src, std::uint64_t period, Value value) {
    ctx.deliver(node, src,
                std::make_shared<const AlgoProposal>(
                    period, value, ctx.vrf().evaluate(src, period)));
  }
  void deliver_soft(NodeId src, std::uint64_t period, Value value) {
    ctx.deliver(node, src, std::make_shared<const AlgoSoftVote>(period, value));
  }
  void deliver_cert(NodeId src, std::uint64_t period, Value value) {
    ctx.deliver(node, src, std::make_shared<const AlgoCertVote>(period, value));
  }
  void deliver_next(NodeId src, std::uint64_t period, Value value) {
    ctx.deliver(node, src, std::make_shared<const AlgoNextVote>(period, value));
  }

  MockContext ctx;
  AlgorandNode node;
};

TEST(AlgorandUnitTest, ProposesWithCredentialOnStart) {
  Fixture fx;
  const auto proposals = fx.ctx.sent_of<AlgoProposal>();
  ASSERT_EQ(proposals.size(), 1u);
  EXPECT_EQ(proposals[0]->period, 1u);
  EXPECT_TRUE(fx.ctx.vrf().verify(0, 1, proposals[0]->credential));
  // Soft-vote timer at 2λ, next-vote timer at 4λ.
  ASSERT_GE(fx.ctx.timers.size(), 2u);
  EXPECT_EQ(fx.ctx.timers[0].delay, 2 * kLambda);
  EXPECT_EQ(fx.ctx.timers[1].delay, 4 * kLambda);
}

TEST(AlgorandUnitTest, SoftVotesForMinimumCredentialProposal) {
  Fixture fx;
  fx.deliver_proposal(3, 1, 333);
  fx.deliver_proposal(5, 1, 555);
  const Value expected =
      fx.ctx.vrf().evaluate(3, 1).value < fx.ctx.vrf().evaluate(5, 1).value
          ? 333
          : 555;
  fx.ctx.advance_to(2 * kLambda);
  fx.ctx.fire(fx.node, fx.ctx.timers[0]);
  const auto softs = fx.ctx.sent_of<AlgoSoftVote>();
  ASSERT_EQ(softs.size(), 1u);
  EXPECT_EQ(softs[0]->value, expected);
}

TEST(AlgorandUnitTest, ForgedCredentialCannotWinElection) {
  Fixture fx;
  fx.deliver_proposal(3, 1, 333);
  VrfOutput forged = fx.ctx.vrf().evaluate(5, 1);
  forged.value = 0;  // forged minimum
  fx.ctx.deliver(fx.node, 5,
                 std::make_shared<const AlgoProposal>(1, Value{555}, forged));
  fx.ctx.advance_to(2 * kLambda);
  fx.ctx.fire(fx.node, fx.ctx.timers[0]);
  const auto softs = fx.ctx.sent_of<AlgoSoftVote>();
  ASSERT_EQ(softs.size(), 1u);
  EXPECT_EQ(softs[0]->value, 333u);  // the forgery was discarded
}

TEST(AlgorandUnitTest, CertVotesOnSoftQuorum) {
  Fixture fx;
  for (const NodeId src : {1u, 2u, 3u, 4u}) fx.deliver_soft(src, 1, 99);
  EXPECT_TRUE(fx.ctx.sent_of<AlgoCertVote>().empty());
  fx.deliver_soft(5, 1, 99);  // 2f+1 = 5
  EXPECT_EQ(fx.ctx.sent_of<AlgoCertVote>().size(), 1u);
}

TEST(AlgorandUnitTest, DecidesOnCertQuorumOnce) {
  Fixture fx;
  for (const NodeId src : {1u, 2u, 3u, 4u, 5u}) fx.deliver_cert(src, 1, 42);
  ASSERT_EQ(fx.ctx.decisions.size(), 1u);
  EXPECT_EQ(fx.ctx.decisions[0], 42u);
  fx.deliver_cert(6, 1, 42);
  EXPECT_EQ(fx.ctx.decisions.size(), 1u);
}

TEST(AlgorandUnitTest, NextVoteQuorumEntersNextPeriodWithValue) {
  Fixture fx;
  for (const NodeId src : {1u, 2u, 3u, 4u, 5u}) fx.deliver_next(src, 1, 77);
  // Entered period 2 with starting value 77: the new proposal carries it.
  const auto proposals = fx.ctx.sent_of<AlgoProposal>();
  ASSERT_GE(proposals.size(), 2u);
  EXPECT_EQ(proposals.back()->period, 2u);
  EXPECT_EQ(proposals.back()->value, 77u);
}

TEST(AlgorandUnitTest, BottomNextVotesStartFreshPeriod) {
  Fixture fx;
  for (const NodeId src : {1u, 2u, 3u, 4u, 5u}) fx.deliver_next(src, 1, kBottom);
  const auto proposals = fx.ctx.sent_of<AlgoProposal>();
  ASSERT_GE(proposals.size(), 2u);
  EXPECT_EQ(proposals.back()->period, 2u);
  EXPECT_NE(proposals.back()->value, kBottom);  // fresh mint, not ⊥
}

TEST(AlgorandUnitTest, NextVoteAfterCertCarriesTheCertValue) {
  Fixture fx;
  for (const NodeId src : {1u, 2u, 3u, 4u, 5u}) fx.deliver_soft(src, 1, 99);
  ASSERT_EQ(fx.ctx.sent_of<AlgoCertVote>().size(), 1u);
  fx.ctx.advance_to(4 * kLambda);
  fx.ctx.fire(fx.node, fx.ctx.timers[1]);  // next-vote timer
  const auto nexts = fx.ctx.sent_of<AlgoNextVote>();
  ASSERT_EQ(nexts.size(), 1u);
  EXPECT_EQ(nexts[0]->value, 99u);
}

TEST(AlgorandUnitTest, RetransmissionKeepsPeriodAlive) {
  Fixture fx;
  fx.deliver_proposal(3, 1, 333);  // someone's proposal to soft-vote for
  fx.ctx.advance_to(2 * kLambda);
  fx.ctx.fire(fx.node, fx.ctx.timers[0]);  // soft vote
  fx.ctx.advance_to(4 * kLambda);
  fx.ctx.fire(fx.node, fx.ctx.timers[1]);  // next vote + repeat timer armed
  fx.ctx.clear_sent();
  const auto repeat = fx.ctx.timers.back();
  fx.ctx.advance_to(6 * kLambda);
  fx.ctx.fire(fx.node, repeat);
  // The retransmission re-sends proposal, soft vote and next vote.
  EXPECT_EQ(fx.ctx.sent_of<AlgoProposal>().size(), 1u);
  EXPECT_EQ(fx.ctx.sent_of<AlgoSoftVote>().size(), 1u);
  EXPECT_EQ(fx.ctx.sent_of<AlgoNextVote>().size(), 1u);
}

TEST(AlgorandUnitTest, StaleTimersFromOldPeriodsAreIgnored) {
  Fixture fx;
  const auto old_soft = fx.ctx.timers[0];
  for (const NodeId src : {1u, 2u, 3u, 4u, 5u}) fx.deliver_next(src, 1, 77);
  fx.ctx.clear_sent();
  fx.ctx.advance_to(2 * kLambda);
  fx.ctx.fire(fx.node, old_soft);  // period-1 timer in period 2
  EXPECT_TRUE(fx.ctx.sent_of<AlgoSoftVote>().empty());
}

}  // namespace
}  // namespace bftsim::algorand

// White-box unit tests of the LibraBFT pacemaker: timeout broadcasting,
// TC formation and certificate-driven view jumps — the behaviours that
// differentiate it from HotStuff+NS in Figs. 5 and 6.
#include "protocols/librabft/librabft.hpp"

#include <gtest/gtest.h>

#include "common/mock_context.hpp"

namespace bftsim::librabft {
namespace {

using bftsim::testing::MockContext;
using hotstuff::Proposal;
using hotstuff::Vote;

constexpr std::uint32_t kN = 4;  // f = 1, quorum = 3
constexpr Time kLambda = from_ms(1000);

SimConfig config() {
  SimConfig cfg;
  cfg.protocol = "librabft";
  cfg.n = kN;
  cfg.lambda_ms = 1000;
  return cfg;
}

std::shared_ptr<const TimeoutMsg> timeout_from(const MockContext& ctx, NodeId src,
                                               View view) {
  return std::make_shared<const TimeoutMsg>(
      view, ctx.signer().sign(src, hash_words({0x544fULL, view})));
}

TEST(LibraUnitTest, LocalTimeoutBroadcastsTimeoutMessage) {
  MockContext ctx(3, kN, 1, kLambda);
  LibraBftNode node(3, config());
  node.on_start(ctx);
  ASSERT_FALSE(ctx.timers.empty());
  EXPECT_EQ(ctx.timers[0].delay, LibraBftNode::kBaseFactor * kLambda);
  ctx.advance_to(ctx.timers[0].delay);
  ctx.fire(node, ctx.timers[0]);
  const auto timeouts = ctx.sent_of<TimeoutMsg>();
  ASSERT_EQ(timeouts.size(), 1u);
  EXPECT_EQ(timeouts[0]->view, 1u);
}

TEST(LibraUnitTest, BackoffDoublesUpToCap) {
  MockContext ctx(3, kN, 1, kLambda);
  LibraBftNode node(3, config());
  node.on_start(ctx);
  // Fire the view timer repeatedly; each rearm doubles until the cap.
  std::vector<Time> delays{ctx.timers[0].delay};
  for (int i = 0; i < 4; ++i) {
    const auto timer = ctx.timers.back();
    ctx.advance_to(ctx.now() + timer.delay);
    ctx.fire(node, timer);
    delays.push_back(ctx.timers.back().delay);
  }
  EXPECT_EQ(delays[0], 2 * kLambda);
  EXPECT_EQ(delays[1], 4 * kLambda);
  EXPECT_EQ(delays[2], 8 * kLambda);
  EXPECT_EQ(delays[3], 8 * kLambda);  // capped at kMaxBackoff = 2 doublings
  EXPECT_EQ(delays[4], 8 * kLambda);
}

TEST(LibraUnitTest, TimeoutQuorumFormsTcAndAdvances) {
  MockContext ctx(3, kN, 1, kLambda);
  LibraBftNode node(3, config());
  node.on_start(ctx);
  ctx.clear_sent();
  ctx.deliver(node, 0, timeout_from(ctx, 0, 1));
  ctx.deliver(node, 1, timeout_from(ctx, 1, 1));
  EXPECT_TRUE(ctx.sent_of<TcMsg>().empty());
  ctx.deliver(node, 2, timeout_from(ctx, 2, 1));  // quorum n - f = 3
  const auto tcs = ctx.sent_of<TcMsg>();
  ASSERT_EQ(tcs.size(), 1u);
  EXPECT_EQ(tcs[0]->tc.view, 1u);
  EXPECT_TRUE(tcs[0]->tc.valid(3));
  // The node itself advanced to view 2 (recorded).
  ASSERT_GE(ctx.views.size(), 2u);
  EXPECT_EQ(ctx.views.back(), 2u);
}

TEST(LibraUnitTest, ReceivedTcJumpsStragglerForward) {
  MockContext ctx(3, kN, 1, kLambda);
  LibraBftNode node(3, config());
  node.on_start(ctx);
  TimeoutCert tc;
  tc.view = 7;
  tc.signers = {0, 1, 2};
  ctx.deliver(node, 0, std::make_shared<const TcMsg>(tc));
  EXPECT_EQ(ctx.views.back(), 8u);  // jumped straight past views 2..7
}

TEST(LibraUnitTest, InvalidTcIsIgnored)
{
  MockContext ctx(3, kN, 1, kLambda);
  LibraBftNode node(3, config());
  node.on_start(ctx);
  TimeoutCert tc;
  tc.view = 7;
  tc.signers = {0, 0, 1};  // duplicate signers
  ctx.deliver(node, 0, std::make_shared<const TcMsg>(tc));
  EXPECT_EQ(ctx.views.back(), 1u);  // unmoved
}

TEST(LibraUnitTest, StaleTimeoutsAreIgnored) {
  MockContext ctx(3, kN, 1, kLambda);
  LibraBftNode node(3, config());
  node.on_start(ctx);
  TimeoutCert tc;
  tc.view = 4;
  tc.signers = {0, 1, 2};
  ctx.deliver(node, 0, std::make_shared<const TcMsg>(tc));  // now in view 5
  ctx.clear_sent();
  // Timeouts for view 1 can no longer form anything relevant.
  ctx.deliver(node, 0, timeout_from(ctx, 0, 1));
  ctx.deliver(node, 1, timeout_from(ctx, 1, 1));
  ctx.deliver(node, 2, timeout_from(ctx, 2, 1));
  EXPECT_TRUE(ctx.sent_of<TcMsg>().empty());
  EXPECT_EQ(ctx.views.back(), 5u);
}

TEST(LibraUnitTest, LeaderOfNewViewProposesAfterTc) {
  MockContext ctx(2, kN, 1, kLambda);  // leader(view 2) = 2
  LibraBftNode node(2, config());
  node.on_start(ctx);
  ctx.clear_sent();
  TimeoutCert tc;
  tc.view = 1;
  tc.signers = {0, 1, 3};
  ctx.deliver(node, 0, std::make_shared<const TcMsg>(tc));
  const auto proposals = ctx.sent_of<Proposal>();
  ASSERT_EQ(proposals.size(), 1u);
  EXPECT_EQ(proposals[0]->block.view, 2u);
}

}  // namespace
}  // namespace bftsim::librabft

#include "protocols/registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace bftsim {
namespace {

TEST(RegistryTest, AllEightBuiltinsRegistered) {
  auto& reg = ProtocolRegistry::instance();
  for (const char* name : {"addv1", "addv2", "addv3", "algorand", "asyncba",
                           "pbft", "hotstuff-ns", "librabft"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
  }
}

TEST(RegistryTest, NetworkModelsMatchTableOne) {
  auto& reg = ProtocolRegistry::instance();
  EXPECT_EQ(reg.get("addv1").model, NetModel::kSync);
  EXPECT_EQ(reg.get("addv2").model, NetModel::kSync);
  EXPECT_EQ(reg.get("addv3").model, NetModel::kSync);
  EXPECT_EQ(reg.get("algorand").model, NetModel::kSync);
  EXPECT_EQ(reg.get("asyncba").model, NetModel::kAsync);
  EXPECT_EQ(reg.get("pbft").model, NetModel::kPartialSync);
  EXPECT_EQ(reg.get("hotstuff-ns").model, NetModel::kPartialSync);
  EXPECT_EQ(reg.get("librabft").model, NetModel::kPartialSync);
}

TEST(RegistryTest, FaultThresholds) {
  auto& reg = ProtocolRegistry::instance();
  EXPECT_EQ(reg.get("pbft").fault_threshold(16), 5u);    // f < n/3
  EXPECT_EQ(reg.get("addv1").fault_threshold(16), 7u);   // f < n/2
  EXPECT_EQ(reg.get("pbft").fault_threshold(4), 1u);
  EXPECT_EQ(reg.get("addv1").fault_threshold(3), 1u);
}

TEST(RegistryTest, PipelinedProtocolsMeasureTenDecisions) {
  auto& reg = ProtocolRegistry::instance();
  EXPECT_EQ(reg.get("hotstuff-ns").measured_decisions, 10u);
  EXPECT_EQ(reg.get("librabft").measured_decisions, 10u);
  EXPECT_EQ(reg.get("pbft").measured_decisions, 1u);
  EXPECT_EQ(reg.get("algorand").measured_decisions, 1u);
}

TEST(RegistryTest, UnknownProtocolThrows) {
  EXPECT_THROW((void)ProtocolRegistry::instance().get("nope"),
               std::invalid_argument);
  EXPECT_FALSE(ProtocolRegistry::instance().contains("nope"));
}

TEST(RegistryTest, DuplicateRegistrationThrows) {
  auto& reg = ProtocolRegistry::instance();
  ProtocolInfo dup = reg.get("pbft");
  EXPECT_THROW(reg.add(dup), std::invalid_argument);
}

TEST(RegistryTest, FactoriesProduceNodes) {
  auto& reg = ProtocolRegistry::instance();
  SimConfig cfg;
  for (const std::string& name : {std::string("pbft"), std::string("addv3")}) {
    cfg.protocol = name;
    const auto node = reg.get(name).create(0, cfg);
    EXPECT_NE(node, nullptr) << name;
  }
}

TEST(RegistryTest, NamesListedInRegistrationOrder) {
  const auto names = ProtocolRegistry::instance().names();
  ASSERT_GE(names.size(), 8u);
  EXPECT_EQ(names[0], "addv1");
  EXPECT_EQ(names[5], "pbft");
}

TEST(RegistryTest, NetModelNames) {
  EXPECT_EQ(to_string(NetModel::kSync), "synchronous");
  EXPECT_EQ(to_string(NetModel::kPartialSync), "partially-synchronous");
  EXPECT_EQ(to_string(NetModel::kAsync), "asynchronous");
}

}  // namespace
}  // namespace bftsim

#include "protocols/pbft/pbft.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace bftsim {
namespace {

SimConfig pbft_config(std::uint32_t n = 16, std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.protocol = "pbft";
  cfg.n = n;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.seed = seed;
  cfg.max_time_ms = 120'000;
  return cfg;
}

TEST(PbftTest, DecidesOneValue) {
  const RunResult result = run_simulation(pbft_config());
  ASSERT_TRUE(result.terminated);
  EXPECT_TRUE(result.decisions_consistent());
  // Three one-way hops at ~250 ms each: decision lands well under 2 s.
  EXPECT_GT(result.latency_ms(), 400);
  EXPECT_LT(result.latency_ms(), 2000);
}

TEST(PbftTest, RunsMultipleSequencesInOrder) {
  SimConfig cfg = pbft_config();
  cfg.decisions = 5;
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  EXPECT_TRUE(result.decisions_consistent());
  for (const NodeId node : result.honest) {
    std::uint64_t next_height = 0;
    for (const Decision& d : result.decisions) {
      if (d.node != node) continue;
      EXPECT_EQ(d.height, next_height++);
    }
    EXPECT_EQ(next_height, 5u);
  }
}

TEST(PbftTest, MessageComplexityIsQuadratic) {
  const RunResult small = run_simulation(pbft_config(8));
  const RunResult large = run_simulation(pbft_config(16));
  // prepare/commit phases are all-to-all: growth should be ~4x from n=8
  // to n=16 (give or take protocol chatter).
  const double ratio = static_cast<double>(large.messages_sent) /
                       static_cast<double>(small.messages_sent);
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 6.0);
}

TEST(PbftTest, ToleratesMaxFailstops) {
  SimConfig cfg = pbft_config(16);
  cfg.honest = 11;  // f = 5
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  EXPECT_TRUE(result.decisions_consistent());
}

TEST(PbftTest, ViewChangesOnDeadLeadersStillDecide) {
  // With 5 of 16 fail-stopped across several seeds, dead leaders force
  // view changes; the run must still decide and stay consistent.
  for (const std::uint64_t seed : {3ull, 4ull, 5ull, 6ull}) {
    SimConfig cfg = pbft_config(16, seed);
    cfg.honest = 11;
    cfg.decisions = 2;
    const RunResult result = run_simulation(cfg);
    ASSERT_TRUE(result.terminated) << "seed " << seed;
    EXPECT_TRUE(result.decisions_consistent()) << "seed " << seed;
  }
}

TEST(PbftTest, UnderestimatedLambdaStillLive) {
  SimConfig cfg = pbft_config();
  cfg.lambda_ms = 150;  // base timeout below the real three-hop latency
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  EXPECT_TRUE(result.decisions_consistent());
}

TEST(PbftTest, ResponsivenessUnaffectedByLargeLambda) {
  SimConfig slow = pbft_config();
  slow.lambda_ms = 3000;
  SimConfig fast = pbft_config();
  fast.lambda_ms = 1000;
  const RunResult a = run_simulation(slow);
  const RunResult b = run_simulation(fast);
  ASSERT_TRUE(a.terminated);
  ASSERT_TRUE(b.terminated);
  // Identical seeds: the decision path is timeout-free, so latency is
  // identical regardless of λ (responsiveness, Fig. 4).
  EXPECT_EQ(a.termination_time, b.termination_time);
}

TEST(PbftTest, RecordsViewZeroOnStart) {
  SimConfig cfg = pbft_config(4);
  const RunResult result = run_simulation(cfg);
  std::size_t view0 = 0;
  for (const ViewRecord& v : result.views) view0 += v.view == 0 ? 1 : 0;
  EXPECT_EQ(view0, 4u);
}

class PbftSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {};

TEST_P(PbftSweep, AgreementAndTermination) {
  const auto [n, seed] = GetParam();
  SimConfig cfg = pbft_config(n, seed);
  cfg.decisions = 2;
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  EXPECT_TRUE(result.decisions_consistent());
  EXPECT_EQ(result.decisions.size(), 2u * n);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PbftSweep,
    ::testing::Combine(::testing::Values(4u, 7u, 10u, 16u, 31u),
                       ::testing::Values(1ull, 2ull, 3ull)));

}  // namespace
}  // namespace bftsim

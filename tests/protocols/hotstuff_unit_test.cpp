// White-box unit tests of the chained-HotStuff core and the HotStuff+NS
// node: vote rules, QC formation edges, the three-chain commit rule, and
// catch-up, driven message by message through MockContext.
#include "protocols/hotstuff/core.hpp"

#include <gtest/gtest.h>

#include "common/mock_context.hpp"
#include "protocols/hotstuff/hotstuff_ns.hpp"

namespace bftsim::hotstuff {
namespace {

using bftsim::testing::MockContext;

constexpr std::uint32_t kN = 4;  // f = 1, QC quorum = n - f = 3
constexpr Time kLambda = from_ms(1000);

Block make_block(Value id, Value parent, View view, std::uint64_t height,
                 QuorumCert justify) {
  Block b;
  b.id = id;
  b.parent = parent;
  b.view = view;
  b.value = id * 1000;
  b.height = height;
  b.justify = std::move(justify);
  return b;
}

QuorumCert qc_for(View view, Value block) {
  QuorumCert qc;
  qc.view = view;
  qc.block = block;
  qc.signers = {0, 1, 2};
  return qc;
}

struct ChainFixture {
  ChainFixture() : ctx(0, kN, 1, kLambda), core(0) {
    // genesis <- b1(v1) <- b2(v2) <- b3(v3)
    b1 = make_block(1, kGenesisId, 1, 1, QuorumCert{0, kGenesisId, {}});
    b2 = make_block(2, 1, 2, 2, qc_for(1, 1));
    b3 = make_block(3, 2, 3, 3, qc_for(2, 2));
    core.store(b1);
    core.store(b2);
    core.store(b3);
  }

  MockContext ctx;
  Core core;
  Block b1, b2, b3;
};

TEST(HotStuffCoreUnitTest, ThreeChainCommitsTheTail) {
  ChainFixture fx;
  fx.core.process_qc(qc_for(3, 3), fx.ctx);  // QC(b3): 1-2-3 consecutive
  ASSERT_EQ(fx.ctx.decisions.size(), 1u);
  EXPECT_EQ(fx.ctx.decisions[0], fx.b1.value);
  EXPECT_EQ(fx.core.committed_height(), 1u);
  EXPECT_EQ(fx.core.last_committed_view(), 1u);
}

TEST(HotStuffCoreUnitTest, NonConsecutiveViewsDoNotCommit) {
  MockContext ctx(0, kN, 1, kLambda);
  Core core(0);
  const Block b1 = make_block(1, kGenesisId, 1, 1, QuorumCert{0, kGenesisId, {}});
  const Block b2 = make_block(2, 1, 3, 2, qc_for(1, 1));  // view gap 1 -> 3
  const Block b3 = make_block(3, 2, 4, 3, qc_for(3, 2));
  core.store(b1);
  core.store(b2);
  core.store(b3);
  core.process_qc(qc_for(4, 3), ctx);
  EXPECT_TRUE(ctx.decisions.empty());  // 4-3 consecutive but 3-1 not
}

TEST(HotStuffCoreUnitTest, CommitReportsAncestorsInOrder) {
  ChainFixture fx;
  const Block b4 = make_block(4, 3, 4, 4, qc_for(3, 3));
  const Block b5 = make_block(5, 4, 5, 5, qc_for(4, 4));
  fx.core.store(b4);
  fx.core.store(b5);
  fx.core.process_qc(qc_for(5, 5), fx.ctx);  // commits b1, b2, b3 at once
  ASSERT_EQ(fx.ctx.decisions.size(), 3u);
  EXPECT_EQ(fx.ctx.decisions[0], fx.b1.value);
  EXPECT_EQ(fx.ctx.decisions[1], fx.b2.value);
  EXPECT_EQ(fx.ctx.decisions[2], fx.b3.value);
}

TEST(HotStuffCoreUnitTest, InvalidQcIsRejected) {
  ChainFixture fx;
  QuorumCert bad = qc_for(3, 3);
  bad.signers = {0, 0, 1};  // duplicate signer
  EXPECT_FALSE(fx.core.process_qc(bad, fx.ctx));
  EXPECT_TRUE(fx.ctx.decisions.empty());
  bad = qc_for(3, 3);
  bad.signers = {0, 1};  // below quorum
  EXPECT_FALSE(fx.core.process_qc(bad, fx.ctx));
}

TEST(HotStuffCoreUnitTest, HighQcIsMonotone) {
  ChainFixture fx;
  EXPECT_TRUE(fx.core.process_qc(qc_for(2, 2), fx.ctx));
  EXPECT_EQ(fx.core.high_qc().view, 2u);
  EXPECT_FALSE(fx.core.process_qc(qc_for(1, 1), fx.ctx));  // no regression
  EXPECT_EQ(fx.core.high_qc().view, 2u);
}

TEST(HotStuffCoreUnitTest, LockFollowsTwoChain) {
  ChainFixture fx;
  fx.core.process_qc(qc_for(3, 3), fx.ctx);
  // QC(b3): b3.justify certifies b2 => locked on b2's certificate.
  EXPECT_EQ(fx.core.locked_qc().view, 2u);
  EXPECT_EQ(fx.core.locked_qc().block, 2u);
}

TEST(HotStuffCoreUnitTest, SafeToVoteBranches) {
  ChainFixture fx;
  fx.core.process_qc(qc_for(3, 3), fx.ctx);  // locked on b2 (view 2)

  // Safety branch: extends the locked block.
  const Block extending = make_block(9, 3, 9, 4, qc_for(2, 2));
  fx.core.store(extending);
  EXPECT_TRUE(fx.core.safe_to_vote(extending));

  // Liveness branch: conflicting chain but newer justify.
  const Block fork = make_block(10, kGenesisId, 10, 1, qc_for(3, 3));
  fx.core.store(fork);
  EXPECT_TRUE(fx.core.safe_to_vote(fork));

  // Neither: conflicting chain with an old justify.
  const Block unsafe = make_block(11, kGenesisId, 11, 1,
                                  QuorumCert{0, kGenesisId, {}});
  fx.core.store(unsafe);
  EXPECT_FALSE(fx.core.safe_to_vote(unsafe));
}

TEST(HotStuffCoreUnitTest, AddVoteFormsQcExactlyOnce) {
  ChainFixture fx;
  EXPECT_FALSE(fx.core.add_vote(3, 3, 0, fx.ctx).has_value());
  EXPECT_FALSE(fx.core.add_vote(3, 3, 1, fx.ctx).has_value());
  const auto qc = fx.core.add_vote(3, 3, 2, fx.ctx);  // third distinct voter
  ASSERT_TRUE(qc.has_value());
  EXPECT_EQ(qc->view, 3u);
  EXPECT_EQ(qc->block, 3u);
  EXPECT_TRUE(qc->valid(3));
  // A fourth vote does not mint a second certificate.
  EXPECT_FALSE(fx.core.add_vote(3, 3, 3, fx.ctx).has_value());
}

TEST(HotStuffCoreUnitTest, DuplicateVotesDoNotFormQc) {
  ChainFixture fx;
  EXPECT_FALSE(fx.core.add_vote(3, 3, 0, fx.ctx).has_value());
  EXPECT_FALSE(fx.core.add_vote(3, 3, 0, fx.ctx).has_value());
  EXPECT_FALSE(fx.core.add_vote(3, 3, 0, fx.ctx).has_value());
}

TEST(HotStuffCoreUnitTest, MissingAncestorDetectionAndCatchup) {
  MockContext ctx(0, kN, 1, kLambda);
  Core core(0);
  const Block b1 = make_block(1, kGenesisId, 1, 1, QuorumCert{0, kGenesisId, {}});
  const Block b2 = make_block(2, 1, 2, 2, qc_for(1, 1));
  const Block b3 = make_block(3, 2, 3, 3, qc_for(2, 2));
  core.store(b3);  // b1, b2 missing
  EXPECT_TRUE(core.missing_ancestor(b3));

  core.request_block(b3.parent, /*from=*/2, ctx);
  ASSERT_EQ(ctx.sent_of<BlockRequest>().size(), 1u);
  EXPECT_EQ(ctx.sent_of<BlockRequest>()[0]->block_id, 2u);
  // Requests are deduplicated.
  core.request_block(b3.parent, 2, ctx);
  EXPECT_EQ(ctx.sent_of<BlockRequest>().size(), 1u);

  // The response fills the gap and releases the pending commit.
  core.process_qc(qc_for(3, 3), ctx);  // cannot commit yet (gap)
  EXPECT_TRUE(ctx.decisions.empty());
  Message response;
  response.src = 2;
  response.dst = 0;
  response.payload = make_payload<BlockResponse>(std::vector<Block>{b2, b1});
  EXPECT_TRUE(core.handle_catchup(response, ctx));
  EXPECT_FALSE(core.missing_ancestor(b3));
  ASSERT_EQ(ctx.decisions.size(), 1u);  // b1 committed after the fill
}

TEST(HotStuffCoreUnitTest, CatchupResponderServesChain) {
  ChainFixture fx;
  Message request;
  request.src = 3;
  request.dst = 0;
  request.payload = make_payload<BlockRequest>(Value{3});
  EXPECT_TRUE(fx.core.handle_catchup(request, fx.ctx));
  const auto responses = fx.ctx.sent_of<BlockResponse>();
  ASSERT_EQ(responses.size(), 1u);
  ASSERT_EQ(responses[0]->blocks.size(), 3u);  // b3, b2, b1 (genesis excluded)
  EXPECT_EQ(responses[0]->blocks[0].id, 3u);
  EXPECT_EQ(responses[0]->blocks[2].id, 1u);
}

// --- HotStuff+NS node-level unit tests ------------------------------------------

TEST(HotStuffNsUnitTest, LeaderOfViewOneProposesOnStart) {
  SimConfig cfg;
  cfg.protocol = "hotstuff-ns";
  cfg.n = kN;
  cfg.lambda_ms = 1000;
  MockContext ctx(1, kN, 1, kLambda);  // leader(1) = 1 % 4 = 1
  HotStuffNsNode node(1, cfg);
  node.on_start(ctx);
  ASSERT_EQ(ctx.sent_of<Proposal>().size(), 1u);
  EXPECT_EQ(ctx.sent_of<Proposal>()[0]->block.view, 1u);
  ASSERT_FALSE(ctx.timers.empty());
  EXPECT_EQ(ctx.timers[0].delay, HotStuffNsNode::kBaseFactor * kLambda);
}

TEST(HotStuffNsUnitTest, FollowerVotesToNextLeader) {
  SimConfig cfg;
  cfg.protocol = "hotstuff-ns";
  cfg.n = kN;
  cfg.lambda_ms = 1000;
  MockContext leader_ctx(1, kN, 1, kLambda);
  HotStuffNsNode leader(1, cfg);
  leader.on_start(leader_ctx);
  const auto proposal = leader_ctx.sent;  // grab the signed proposal payload

  MockContext ctx(3, kN, 1, kLambda);
  HotStuffNsNode follower(3, cfg);
  follower.on_start(ctx);
  ctx.clear_sent();
  ASSERT_FALSE(proposal.empty());
  Message msg;
  msg.src = 1;
  msg.dst = 3;
  msg.payload = proposal.front().payload;
  follower.on_message(msg, ctx);

  ASSERT_EQ(ctx.sent.size(), 1u);
  EXPECT_EQ(ctx.sent[0].dst, 2u);  // leader(view 2) = 2
  EXPECT_NE(dynamic_cast<const Vote*>(ctx.sent[0].payload.get()), nullptr);
}

TEST(HotStuffNsUnitTest, FollowerRejectsForgedProposal) {
  SimConfig cfg;
  cfg.protocol = "hotstuff-ns";
  cfg.n = kN;
  cfg.lambda_ms = 1000;
  MockContext ctx(3, kN, 1, kLambda);
  HotStuffNsNode follower(3, cfg);
  follower.on_start(ctx);
  ctx.clear_sent();

  Block b;
  b.id = 99;
  b.parent = kGenesisId;
  b.view = 1;
  b.height = 1;
  b.justify = QuorumCert{0, kGenesisId, {}};
  Message msg;
  msg.src = 1;
  msg.dst = 3;
  msg.payload = make_payload<Proposal>(b, Signature{1, b.digest(), 0xBAD});
  follower.on_message(msg, ctx);
  EXPECT_TRUE(ctx.sent.empty());
}

}  // namespace
}  // namespace bftsim::hotstuff

// White-box unit tests of the ADD+ node: lock-step round scheduling,
// leader determination per variant, vote/commit quorum edges, and the
// credential mechanics the Fig. 8 attacks revolve around.
#include "protocols/add/add.hpp"

#include <gtest/gtest.h>

#include "common/mock_context.hpp"

namespace bftsim::add {
namespace {

using bftsim::testing::MockContext;

constexpr std::uint32_t kN = 5;  // f = 2, quorum = f+1 = 3
constexpr std::uint32_t kF = 2;
constexpr Time kLambda = from_ms(1000);

SimConfig config() {
  SimConfig cfg;
  cfg.protocol = "addv1";
  cfg.n = kN;
  cfg.lambda_ms = 1000;
  return cfg;
}

TEST(AddUnitTest, V1LeaderProposesInRoundZero) {
  MockContext ctx(0, kN, kF, kLambda);  // leader(iter 0) = 0
  AddNode node(0, Variant::kV1, config());
  node.on_start(ctx);
  EXPECT_EQ(ctx.sent_of<AddPropose>().size(), 1u);
}

TEST(AddUnitTest, V1FollowerStaysQuietInRoundZero) {
  MockContext ctx(1, kN, kF, kLambda);
  AddNode node(1, Variant::kV1, config());
  node.on_start(ctx);
  EXPECT_TRUE(ctx.sent.empty());
  // Lock-step rounds scheduled: 0..3 at multiples of λ.
  ASSERT_GE(ctx.timers.size(), 4u);
  EXPECT_EQ(ctx.timers[1].delay, kLambda);
  EXPECT_EQ(ctx.timers[3].delay, 3 * kLambda);
}

TEST(AddUnitTest, V1FollowerVotesForLeaderProposalAtRoundOne) {
  MockContext ctx(1, kN, kF, kLambda);
  AddNode node(1, Variant::kV1, config());
  node.on_start(ctx);
  ctx.deliver(node, 0, std::make_shared<const AddPropose>(0, Value{77}));
  ctx.advance_to(kLambda);
  ctx.fire(node, ctx.timers[1]);  // vote round
  const auto votes = ctx.sent_of<AddVote>();
  ASSERT_EQ(votes.size(), 1u);
  EXPECT_EQ(votes[0]->value, 77u);
}

TEST(AddUnitTest, V1NoVoteWithoutProposal) {
  MockContext ctx(1, kN, kF, kLambda);
  AddNode node(1, Variant::kV1, config());
  node.on_start(ctx);
  ctx.advance_to(kLambda);
  ctx.fire(node, ctx.timers[1]);
  EXPECT_TRUE(ctx.sent_of<AddVote>().empty());
}

TEST(AddUnitTest, V1IgnoresProposalFromNonLeader) {
  MockContext ctx(1, kN, kF, kLambda);
  AddNode node(1, Variant::kV1, config());
  node.on_start(ctx);
  ctx.deliver(node, 3, std::make_shared<const AddPropose>(0, Value{77}));
  ctx.advance_to(kLambda);
  ctx.fire(node, ctx.timers[1]);
  EXPECT_TRUE(ctx.sent_of<AddVote>().empty());
}

TEST(AddUnitTest, CommitBroadcastExactlyAtVoteQuorum) {
  MockContext ctx(1, kN, kF, kLambda);
  AddNode node(1, Variant::kV1, config());
  node.on_start(ctx);
  ctx.deliver(node, 0, std::make_shared<const AddVote>(0, Value{5}));
  ctx.deliver(node, 2, std::make_shared<const AddVote>(0, Value{5}));
  EXPECT_TRUE(ctx.sent_of<AddCommit>().empty());
  ctx.deliver(node, 3, std::make_shared<const AddVote>(0, Value{5}));  // f+1 = 3
  EXPECT_EQ(ctx.sent_of<AddCommit>().size(), 1u);
}

TEST(AddUnitTest, DecidesAtCommitQuorumOnce) {
  MockContext ctx(1, kN, kF, kLambda);
  AddNode node(1, Variant::kV1, config());
  node.on_start(ctx);
  for (const NodeId src : {0u, 2u, 3u}) {
    ctx.deliver(node, src, std::make_shared<const AddCommit>(0, Value{9}));
  }
  ASSERT_EQ(ctx.decisions.size(), 1u);
  EXPECT_EQ(ctx.decisions[0], 9u);
  // Further commits change nothing.
  ctx.deliver(node, 4, std::make_shared<const AddCommit>(0, Value{9}));
  EXPECT_EQ(ctx.decisions.size(), 1u);
}

TEST(AddUnitTest, V2BroadcastsElectCredentialAtIterationStart) {
  MockContext ctx(2, kN, kF, kLambda);
  AddNode node(2, Variant::kV2, config());
  node.on_start(ctx);
  const auto elects = ctx.sent_of<AddElect>();
  ASSERT_EQ(elects.size(), 1u);
  EXPECT_TRUE(ctx.vrf().verify(2, 0, elects[0]->credential));
}

TEST(AddUnitTest, V2MinCredentialWinnerProposes) {
  // Find the minimum credential among nodes 0..4 for iteration 0, then
  // drive that node: after the elect round it must propose.
  MockContext probe(0, kN, kF, kLambda);
  NodeId winner = 0;
  std::uint64_t best = ~0ULL;
  for (NodeId i = 0; i < kN; ++i) {
    const auto out = probe.vrf().evaluate(i, 0);
    if (out.value < best) {
      best = out.value;
      winner = i;
    }
  }

  MockContext ctx(winner, kN, kF, kLambda);
  AddNode node(winner, Variant::kV2, config());
  node.on_start(ctx);
  for (NodeId i = 0; i < kN; ++i) {
    if (i == winner) continue;
    ctx.deliver(node, i,
                std::make_shared<const AddElect>(0, ctx.vrf().evaluate(i, 0)));
  }
  // Deliver own elect (broadcast includes self in the real run).
  ctx.deliver(node, winner,
              std::make_shared<const AddElect>(0, ctx.vrf().evaluate(winner, 0)));
  ctx.advance_to(kLambda);
  ctx.fire(node, ctx.timers[1]);  // propose round
  EXPECT_EQ(ctx.sent_of<AddPropose>().size(), 1u);
}

TEST(AddUnitTest, V2RejectsForgedCredential) {
  MockContext ctx(1, kN, kF, kLambda);
  AddNode node(1, Variant::kV2, config());
  node.on_start(ctx);
  VrfOutput forged = ctx.vrf().evaluate(3, 0);
  forged.value = 0;  // claim the minimum
  ctx.deliver(node, 3, std::make_shared<const AddElect>(0, forged));
  // Node 3's forged minimum must not be elected: when the proposal round
  // comes, a proposal from 3 is not accepted as the leader's.
  ctx.deliver(node, 3, std::make_shared<const AddPropose>(0, Value{66}));
  ctx.advance_to(2 * kLambda);
  ctx.fire(node, ctx.timers[2]);  // vote round
  EXPECT_TRUE(ctx.sent_of<AddVote>().empty());
}

TEST(AddUnitTest, V3ProposesWithCredentialAttached) {
  MockContext ctx(4, kN, kF, kLambda);
  AddNode node(4, Variant::kV3, config());
  node.on_start(ctx);
  const auto proposals = ctx.sent_of<AddPropose>();
  ASSERT_EQ(proposals.size(), 1u);
  EXPECT_TRUE(proposals[0]->has_credential);
  EXPECT_TRUE(ctx.vrf().verify(4, 0, proposals[0]->credential));
}

TEST(AddUnitTest, V3PreparesMinCredentialProposal) {
  MockContext ctx(1, kN, kF, kLambda);
  AddNode node(1, Variant::kV3, config());
  node.on_start(ctx);
  // Two competing proposals with genuine credentials.
  ctx.deliver(node, 2,
              std::make_shared<const AddPropose>(0, Value{22},
                                                 ctx.vrf().evaluate(2, 0)));
  ctx.deliver(node, 3,
              std::make_shared<const AddPropose>(0, Value{33},
                                                 ctx.vrf().evaluate(3, 0)));
  const Value expected = ctx.vrf().evaluate(2, 0).value <
                                 ctx.vrf().evaluate(3, 0).value
                             ? 22
                             : 33;
  ctx.advance_to(kLambda);
  ctx.fire(node, ctx.timers[1]);  // prepare round
  const auto prepares = ctx.sent_of<AddPrepare>();
  ASSERT_EQ(prepares.size(), 1u);
  EXPECT_EQ(prepares[0]->value, expected);
}

TEST(AddUnitTest, LockedNodeRefusesConflictingVote) {
  MockContext ctx(1, kN, kF, kLambda);
  AddNode node(1, Variant::kV1, config());
  node.on_start(ctx);
  // Lock on value 5 via a vote quorum (commit broadcast sets the lock).
  for (const NodeId src : {0u, 2u, 3u}) {
    ctx.deliver(node, src, std::make_shared<const AddVote>(0, Value{5}));
  }
  ASSERT_EQ(ctx.sent_of<AddCommit>().size(), 1u);
  ctx.clear_sent();
  // Iteration 1 (leader = node 1 itself: 1 % 5): it must re-propose the
  // locked value, not a fresh one.
  ctx.advance_to(3 * kLambda);
  ctx.fire(node, ctx.timers[3]);  // iteration end -> enter iteration 1
  const auto proposals = ctx.sent_of<AddPropose>();
  ASSERT_EQ(proposals.size(), 1u);
  EXPECT_EQ(proposals[0]->value, 5u);
}

}  // namespace
}  // namespace bftsim::add

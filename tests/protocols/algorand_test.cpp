#include "protocols/algorand/algorand.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace bftsim {
namespace {

SimConfig algo_config(std::uint32_t n = 16, std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.protocol = "algorand";
  cfg.n = n;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.seed = seed;
  cfg.max_time_ms = 300'000;
  return cfg;
}

TEST(AlgorandTest, DecidesInFirstPeriodUnderGoodNetwork) {
  const RunResult result = run_simulation(algo_config());
  ASSERT_TRUE(result.terminated);
  EXPECT_TRUE(result.decisions_consistent());
  // Soft votes go out at 2λ; cert quorum lands roughly two hops later.
  EXPECT_GT(result.latency_ms(), 2000);
  EXPECT_LT(result.latency_ms(), 4000);
}

TEST(AlgorandTest, LatencyScalesWithLambda) {
  // Synchronous protocol: the 2λ soft-vote wait dominates (Fig. 4).
  SimConfig big = algo_config();
  big.lambda_ms = 3000;
  const RunResult fast = run_simulation(algo_config());
  const RunResult slow = run_simulation(big);
  ASSERT_TRUE(fast.terminated);
  ASSERT_TRUE(slow.terminated);
  EXPECT_GT(slow.latency_ms(), fast.latency_ms() + 3000);
}

TEST(AlgorandTest, PartitionResilient) {
  // The headline property (and why it is the only synchronous protocol in
  // Fig. 6): after the partition heals, certificate-driven periods resume
  // within a few λ.
  SimConfig cfg = algo_config(16, 2);
  cfg.attack = "partition";
  json::Object params;
  params["resolve_ms"] = 15'000.0;
  params["mode"] = "drop";
  cfg.attack_params = json::Value{std::move(params)};
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  EXPECT_TRUE(result.decisions_consistent());
  EXPECT_GT(result.latency_ms(), 15'000);
  EXPECT_LT(result.latency_ms(), 15'000 + 8'000);
}

TEST(AlgorandTest, ToleratesFailstops) {
  SimConfig cfg = algo_config();
  cfg.honest = 11;
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  EXPECT_TRUE(result.decisions_consistent());
}

TEST(AlgorandTest, CredentialForgeryIsRejected) {
  // Verified through the VRF model: a forged credential fails verify() and
  // is ignored by honest nodes; here we check the model-level property.
  const Vrf vrf{123};
  VrfOutput out = vrf.evaluate(0, 1);
  out.value = 0;  // claim the minimum possible credential
  EXPECT_FALSE(vrf.verify(0, 1, out));
}

class AlgorandSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {};

TEST_P(AlgorandSweep, AgreementAndTermination) {
  const auto [n, seed] = GetParam();
  const RunResult result = run_simulation(algo_config(n, seed));
  ASSERT_TRUE(result.terminated);
  EXPECT_TRUE(result.decisions_consistent());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AlgorandSweep,
    ::testing::Combine(::testing::Values(4u, 7u, 16u, 32u),
                       ::testing::Values(1ull, 2ull, 3ull)));

}  // namespace
}  // namespace bftsim

#include "runner/runner.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace bftsim {
namespace {

TEST(RunnerTest, ExperimentConfigUsesRegistryMeasurement) {
  const SimConfig pipelined =
      experiment_config("hotstuff-ns", 16, 1000, DelaySpec::normal(250, 50));
  EXPECT_EQ(pipelined.decisions, 10u);
  const SimConfig single =
      experiment_config("pbft", 16, 1000, DelaySpec::normal(250, 50));
  EXPECT_EQ(single.decisions, 1u);
  EXPECT_EQ(single.n, 16u);
  EXPECT_DOUBLE_EQ(single.lambda_ms, 1000.0);
}

TEST(RunnerTest, AggregatesRepeatedRuns) {
  SimConfig cfg = experiment_config("pbft", 8, 1000, DelaySpec::normal(250, 50));
  cfg.seed = 1;
  const Aggregate agg = run_repeated(cfg, 10);
  EXPECT_EQ(agg.runs, 10u);
  EXPECT_EQ(agg.timeouts, 0u);
  EXPECT_EQ(agg.latency_ms.count, 10u);
  EXPECT_GT(agg.latency_ms.mean, 400.0);
  EXPECT_LT(agg.latency_ms.mean, 2000.0);
  EXPECT_GT(agg.latency_ms.stddev, 0.0);  // different seeds => different runs
  EXPECT_GT(agg.messages.mean, 0.0);
  EXPECT_GT(agg.wall_seconds_total, 0.0);
}

TEST(RunnerTest, SeedsVaryAcrossRepeats) {
  SimConfig cfg = experiment_config("pbft", 8, 1000, DelaySpec::normal(250, 50));
  const Aggregate agg = run_repeated(cfg, 5);
  // With distinct seeds min and max latency differ.
  EXPECT_NE(agg.latency_ms.min, agg.latency_ms.max);
}

TEST(RunnerTest, TimeoutsAreCountedAndExcluded) {
  SimConfig cfg = experiment_config("pbft", 16, 1000, DelaySpec::normal(250, 50));
  cfg.max_time_ms = 0.5;  // nothing can decide in half a millisecond
  const Aggregate agg = run_repeated(cfg, 3);
  EXPECT_EQ(agg.timeouts, 3u);
  EXPECT_EQ(agg.latency_ms.count, 0u);
  EXPECT_EQ(agg.messages.count, 3u);  // message counts still recorded
}

TEST(RunnerTest, TableFormatsRows) {
  Table table{{"protocol", "latency", "msgs"}, 12};
  std::ostringstream os;
  table.print_header(os);
  table.print_row(os, {"pbft", Table::cell(805.0, 12.0, "ms"), Table::cell(525.0)});
  const std::string out = os.str();
  EXPECT_NE(out.find("protocol"), std::string::npos);
  EXPECT_NE(out.find("pbft"), std::string::npos);
  EXPECT_NE(out.find("805"), std::string::npos);
  EXPECT_NE(out.find("±"), std::string::npos);
}

TEST(RunnerTest, CellFormatting) {
  EXPECT_EQ(Table::cell(1.234, ""), "1.23");
  EXPECT_EQ(Table::cell(123.4, "ms"), "123ms");
  EXPECT_EQ(Table::cell(5.0, 0.5, "s"), "5.00±0.5s");
}

}  // namespace
}  // namespace bftsim

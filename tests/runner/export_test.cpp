#include "runner/export.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "sim/simulation.hpp"

namespace bftsim {
namespace {

RunResult sample_run(bool record_views = false) {
  SimConfig cfg;
  cfg.protocol = "pbft";
  cfg.n = 8;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.seed = 5;
  cfg.record_views = record_views;
  return run_simulation(cfg);
}

TEST(ExportTest, ResultJsonCarriesTheMetrics) {
  const RunResult result = sample_run();
  const json::Value v = result_to_json(result);
  EXPECT_TRUE(v.get_bool("terminated", false));
  EXPECT_TRUE(v.get_bool("safety_consistent", false));
  EXPECT_NEAR(v.get_number("termination_ms", 0), result.latency_ms(), 1e-9);
  EXPECT_EQ(v.get_int("messages_sent", 0),
            static_cast<std::int64_t>(result.messages_sent));
  EXPECT_GT(v.get_int("bytes_sent", 0), 0);
  EXPECT_EQ(v.as_object().at("decisions").as_array().size(),
            result.decisions.size());
  EXPECT_FALSE(v.as_object().contains("views"));
}

TEST(ExportTest, ViewsIncludedOnRequest) {
  const RunResult result = sample_run(true);
  const json::Value v = result_to_json(result, /*include_views=*/true);
  ASSERT_TRUE(v.as_object().contains("views"));
  EXPECT_EQ(v.as_object().at("views").as_array().size(), result.views.size());
}

TEST(ExportTest, NonTerminatedRunHasNullTermination) {
  SimConfig cfg;
  cfg.protocol = "pbft";
  cfg.n = 8;
  cfg.max_time_ms = 1;  // nothing decides in 1 ms
  const json::Value v = result_to_json(run_simulation(cfg));
  EXPECT_FALSE(v.get_bool("terminated", true));
  EXPECT_TRUE(v.as_object().at("termination_ms").is_null());
}

TEST(ExportTest, JsonIsReparsable) {
  const json::Value v = result_to_json(sample_run());
  const json::Value again = json::parse(v.dump(2));
  EXPECT_EQ(again.dump(), v.dump());
}

TEST(ExportTest, AggregateJson) {
  SimConfig cfg;
  cfg.protocol = "pbft";
  cfg.n = 8;
  cfg.delay = DelaySpec::normal(250, 50);
  const Aggregate agg = run_repeated(cfg, 4);
  const json::Value v = aggregate_to_json(agg);
  EXPECT_EQ(v.get_int("runs", 0), 4);
  EXPECT_EQ(v.get_int("timeouts", -1), 0);
  const json::Value& latency = v.as_object().at("latency_ms");
  EXPECT_EQ(latency.get_int("count", 0), 4);
  EXPECT_GT(latency.get_number("mean", 0), 0.0);
  EXPECT_LE(latency.get_number("min", 0), latency.get_number("max", 1e18));
}

TEST(ExportTest, ManifestJsonDescribesTheBatch) {
  RunManifest manifest;
  manifest.name = "fig3/pbft";
  manifest.config = SimConfig{};
  manifest.config.protocol = "pbft";
  manifest.config.n = 16;
  manifest.config.lambda_ms = 1000;
  manifest.config.seed = 5;
  manifest.repeats = 100;
  manifest.jobs = 4;
  manifest.wall_seconds = 1.5;

  const json::Value v = manifest_to_json(manifest);
  EXPECT_EQ(v.get_string("name", ""), "fig3/pbft");
  EXPECT_EQ(v.get_string("protocol", ""), "pbft");
  EXPECT_EQ(v.get_int("n", 0), 16);
  EXPECT_DOUBLE_EQ(v.get_number("lambda_ms", 0), 1000.0);
  EXPECT_EQ(v.get_int("seed_begin", 0), 5);
  EXPECT_EQ(v.get_int("seed_end", 0), 105);  // half-open: seed + repeats
  EXPECT_EQ(v.get_int("repeats", 0), 100);
  EXPECT_EQ(v.get_int("jobs", 0), 4);
  EXPECT_DOUBLE_EQ(v.get_number("wall_seconds", 0), 1.5);
  EXPECT_FALSE(v.get_string("delay", "").empty());
  // The embedded config must reproduce the run exactly.
  const json::Value& cfg = v.as_object().at("config");
  EXPECT_EQ(SimConfig::from_json(cfg).protocol, "pbft");
  EXPECT_EQ(SimConfig::from_json(cfg).seed, 5u);
}

TEST(ExportTest, ExperimentJsonBundlesManifestAndAggregate) {
  SimConfig cfg;
  cfg.protocol = "pbft";
  cfg.n = 8;
  cfg.delay = DelaySpec::normal(250, 50);
  const Aggregate agg = run_repeated(cfg, 3);

  RunManifest manifest;
  manifest.name = "test/pbft";
  manifest.config = cfg;
  manifest.repeats = 3;
  manifest.jobs = 2;

  const json::Value v = experiment_to_json(manifest, agg);
  EXPECT_EQ(v.as_object().at("manifest").get_string("name", ""), "test/pbft");
  EXPECT_EQ(v.as_object().at("aggregate").get_int("runs", 0), 3);
  EXPECT_FALSE(v.as_object().contains("runs"));

  // The per-run overload appends every RunResult.
  std::vector<RunResult> runs{sample_run(), sample_run()};
  const json::Value with_runs = experiment_to_json(manifest, agg, runs);
  ASSERT_TRUE(with_runs.as_object().contains("runs"));
  EXPECT_EQ(with_runs.as_object().at("runs").as_array().size(), 2u);
  // And the whole document survives a parse round-trip.
  EXPECT_EQ(json::parse(with_runs.dump(2)).dump(), with_runs.dump());
}

TEST(ExportTest, WriteJsonFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/bftsim_export_test.json";
  const json::Value v = result_to_json(sample_run());
  write_json_file(path, v);
  const json::Value back = json::parse_file(path);
  EXPECT_EQ(back.dump(), v.dump());
  std::remove(path.c_str());
}

TEST(ExportTest, WriteJsonFileFailsOnBadPath) {
  EXPECT_THROW(write_json_file("/no/such/dir/x.json", json::Value{1}),
               std::runtime_error);
}

}  // namespace
}  // namespace bftsim

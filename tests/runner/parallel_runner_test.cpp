// Determinism contract of the parallel experiment runner: fanning runs
// across workers must not change any aggregate number (wall clock aside).
#include <gtest/gtest.h>

#include <stdexcept>

#include "runner/runner.hpp"

namespace bftsim {
namespace {

void expect_summaries_equal(const Summary& a, const Summary& b,
                            const char* what) {
  EXPECT_EQ(a.count, b.count) << what;
  EXPECT_EQ(a.mean, b.mean) << what;      // exact: same inputs, same order
  EXPECT_EQ(a.stddev, b.stddev) << what;
  EXPECT_EQ(a.min, b.min) << what;
  EXPECT_EQ(a.max, b.max) << what;
  EXPECT_EQ(a.median, b.median) << what;
  EXPECT_EQ(a.p90, b.p90) << what;
  EXPECT_EQ(a.p99, b.p99) << what;
}

void expect_aggregates_identical(const Aggregate& a, const Aggregate& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.timeouts, b.timeouts);
  expect_summaries_equal(a.latency_ms, b.latency_ms, "latency_ms");
  expect_summaries_equal(a.per_decision_latency_ms, b.per_decision_latency_ms,
                         "per_decision_latency_ms");
  expect_summaries_equal(a.messages, b.messages, "messages");
  expect_summaries_equal(a.per_decision_messages, b.per_decision_messages,
                         "per_decision_messages");
  expect_summaries_equal(a.events, b.events, "events");
  EXPECT_TRUE(equivalent(a, b));
}

TEST(ParallelRunnerTest, IdenticalAggregatesAcrossJobCounts) {
  SimConfig cfg = experiment_config("pbft", 8, 1000, DelaySpec::normal(250, 50));
  cfg.seed = 7;
  const Aggregate serial = run_repeated(cfg, 12);
  for (const std::size_t jobs : {1u, 2u, 4u}) {
    const Aggregate parallel = run_repeated_parallel(cfg, 12, jobs);
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    expect_aggregates_identical(serial, parallel);
  }
}

TEST(ParallelRunnerTest, IdenticalForPipelinedProtocol) {
  SimConfig cfg =
      experiment_config("hotstuff-ns", 8, 1000, DelaySpec::normal(250, 50));
  cfg.seed = 3;
  expect_aggregates_identical(run_repeated(cfg, 8),
                              run_repeated_parallel(cfg, 8, 4));
}

TEST(ParallelRunnerTest, IdenticalWhenRunsTimeOut) {
  SimConfig cfg = experiment_config("pbft", 8, 1000, DelaySpec::normal(250, 50));
  cfg.max_time_ms = 0.5;  // nothing decides: every run times out
  const Aggregate serial = run_repeated(cfg, 6);
  const Aggregate parallel = run_repeated_parallel(cfg, 6, 3);
  EXPECT_EQ(serial.timeouts, 6u);
  expect_aggregates_identical(serial, parallel);
}

TEST(ParallelRunnerTest, ParallelRunIsRepeatable) {
  SimConfig cfg = experiment_config("pbft", 8, 1000, DelaySpec::normal(250, 50));
  expect_aggregates_identical(run_repeated_parallel(cfg, 10, 4),
                              run_repeated_parallel(cfg, 10, 4));
}

TEST(ParallelRunnerTest, InvalidConfigPropagatesFromWorkers) {
  SimConfig cfg;
  cfg.protocol = "no-such-protocol";
  EXPECT_THROW((void)run_repeated_parallel(cfg, 4, 2), std::invalid_argument);
}

TEST(ParallelRunnerTest, SweepMatchesPerPointRunRepeated) {
  std::vector<SimConfig> points;
  points.push_back(experiment_config("pbft", 8, 1000, DelaySpec::normal(250, 50)));
  points.push_back(
      experiment_config("hotstuff-ns", 8, 1000, DelaySpec::normal(250, 50)));
  points.push_back(
      experiment_config("pbft", 8, 1000, DelaySpec::normal(500, 100)));
  points[2].seed = 11;

  const std::vector<Aggregate> sweep = run_sweep(points, 6, 4);
  ASSERT_EQ(sweep.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    SCOPED_TRACE("point " + std::to_string(i));
    expect_aggregates_identical(run_repeated(points[i], 6), sweep[i]);
  }
}

TEST(ParallelRunnerTest, TimedOutRunsExcludedFromPerDecisionMessages) {
  // The documented Aggregate rule: timeouts stay in the raw volume
  // summaries but out of every per-decision summary.
  SimConfig cfg = experiment_config("pbft", 8, 1000, DelaySpec::normal(250, 50));
  cfg.max_time_ms = 0.5;
  const Aggregate agg = run_repeated(cfg, 3);
  EXPECT_EQ(agg.timeouts, 3u);
  EXPECT_EQ(agg.messages.count, 3u);            // raw volume: included
  EXPECT_EQ(agg.events.count, 3u);              // raw volume: included
  EXPECT_EQ(agg.per_decision_messages.count, 0u);  // per-decision: excluded
  EXPECT_EQ(agg.per_decision_latency_ms.count, 0u);
  EXPECT_EQ(agg.latency_ms.count, 0u);
}

TEST(ParallelRunnerTest, EquivalentIgnoresWallClock) {
  SimConfig cfg = experiment_config("pbft", 8, 1000, DelaySpec::normal(250, 50));
  Aggregate a = run_repeated(cfg, 3);
  Aggregate b = a;
  b.wall_seconds_total = a.wall_seconds_total + 123.0;
  EXPECT_TRUE(equivalent(a, b));
  b.runs += 1;
  EXPECT_FALSE(equivalent(a, b));
}

}  // namespace
}  // namespace bftsim

// run_sweep_guarded: per-run exception isolation (RunFailure records with
// config + seed), watchdog budgets (termination_reason tallies), and
// equivalence with run_sweep when nothing fails.
#include <gtest/gtest.h>

#include "runner/export.hpp"
#include "runner/runner.hpp"

namespace bftsim {
namespace {

SimConfig small_config(const std::string& protocol, std::uint64_t seed) {
  SimConfig cfg;
  cfg.protocol = protocol;
  cfg.n = 4;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.seed = seed;
  cfg.decisions = 1;
  cfg.max_time_ms = 60'000;
  return cfg;
}

TEST(GuardedSweep, ThrowingPointBecomesRunFailureAndSweepCompletes) {
  std::vector<SimConfig> points;
  points.push_back(small_config("pbft", 1));
  points.push_back(small_config("no-such-protocol", 7));  // every run throws
  points.push_back(small_config("hotstuff-ns", 3));

  const SweepOutcome outcome = run_sweep_guarded(points, 2, 2);
  ASSERT_EQ(outcome.points.size(), 3u);
  EXPECT_FALSE(outcome.ok());

  // The healthy points completed normally.
  EXPECT_EQ(outcome.points[0].aggregate.runs, 2u);
  EXPECT_EQ(outcome.points[0].tally.decided, 2u);
  EXPECT_EQ(outcome.points[2].aggregate.runs, 2u);
  EXPECT_EQ(outcome.points[2].tally.decided, 2u);

  // The bad point produced one structured failure per repeat, with the
  // exact failing config and derived seed, ordered by (point, repeat).
  EXPECT_EQ(outcome.points[1].aggregate.runs, 0u);
  EXPECT_EQ(outcome.points[1].tally.failed, 2u);
  ASSERT_EQ(outcome.failures.size(), 2u);
  EXPECT_EQ(outcome.failures[0].point, 1u);
  EXPECT_EQ(outcome.failures[0].repeat, 0u);
  EXPECT_EQ(outcome.failures[0].seed, 7u);
  EXPECT_EQ(outcome.failures[0].config.protocol, "no-such-protocol");
  EXPECT_EQ(outcome.failures[0].config.seed, 7u);
  EXPECT_FALSE(outcome.failures[0].error.empty());
  EXPECT_EQ(outcome.failures[1].repeat, 1u);
  EXPECT_EQ(outcome.failures[1].seed, 8u);
}

TEST(GuardedSweep, WatchdogEventBudgetRecordsTerminationReason) {
  // A budget far below what one decision needs: every run must stop with
  // the event-budget reason instead of running to the horizon.
  std::vector<SimConfig> points{small_config("pbft", 1)};
  Watchdog watchdog;
  watchdog.max_events = 10;

  const SweepOutcome outcome = run_sweep_guarded(points, 3, 1, watchdog);
  ASSERT_EQ(outcome.points.size(), 1u);
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.points[0].tally.event_budget, 3u);
  EXPECT_EQ(outcome.points[0].tally.decided, 0u);
  EXPECT_EQ(outcome.points[0].aggregate.runs, 3u);
  EXPECT_EQ(outcome.points[0].aggregate.timeouts, 3u);
}

TEST(GuardedSweep, WatchdogTimeBudgetRecordsHorizon) {
  std::vector<SimConfig> points{small_config("pbft", 1)};
  Watchdog watchdog;
  watchdog.max_time_ms = 1.0;  // tighter than any decision

  const SweepOutcome outcome = run_sweep_guarded(points, 2, 1, watchdog);
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.points[0].tally.horizon, 2u);
}

TEST(GuardedSweep, WatchdogOnlyTightens) {
  SimConfig cfg = small_config("pbft", 1);
  cfg.max_events = 100;
  Watchdog loose;
  loose.max_events = 1'000'000;
  loose.max_time_ms = 1e9;
  const SimConfig capped = loose.apply(cfg);
  EXPECT_EQ(capped.max_events, 100u);
  EXPECT_EQ(capped.max_time_ms, cfg.max_time_ms);
}

TEST(GuardedSweep, CleanSweepMatchesRunSweep) {
  std::vector<SimConfig> points;
  points.push_back(small_config("pbft", 1));
  points.push_back(small_config("hotstuff-ns", 5));

  const std::vector<Aggregate> plain = run_sweep(points, 3, 2);
  const SweepOutcome guarded = run_sweep_guarded(points, 3, 2);
  ASSERT_TRUE(guarded.ok());
  ASSERT_EQ(guarded.points.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_TRUE(equivalent(plain[i], guarded.points[i].aggregate)) << "point " << i;
    EXPECT_EQ(guarded.points[i].tally.decided, 3u);
  }
}

TEST(GuardedSweep, FailuresCarryDefaultPointRepeatLabels) {
  std::vector<SimConfig> points;
  points.push_back(small_config("pbft", 1));
  points.push_back(small_config("no-such-protocol", 7));

  const SweepOutcome outcome = run_sweep_guarded(points, 2, 1);
  ASSERT_EQ(outcome.failures.size(), 2u);
  EXPECT_EQ(outcome.failures[0].label, "point-1/repeat-0");
  EXPECT_EQ(outcome.failures[1].label, "point-1/repeat-1");
}

TEST(GuardedSweep, CallerLabelsNameTheFailingScenario) {
  std::vector<SimConfig> points;
  points.push_back(small_config("pbft", 1));
  points.push_back(small_config("no-such-protocol", 7));
  const std::vector<std::string> labels{"campaign-7/scenario-0",
                                       "campaign-7/scenario-1"};

  const SweepOutcome outcome = run_sweep_guarded(points, 2, 1, {}, labels);
  ASSERT_EQ(outcome.failures.size(), 2u);
  EXPECT_EQ(outcome.failures[0].label, "campaign-7/scenario-1/repeat-0");
  EXPECT_EQ(outcome.failures[1].label, "campaign-7/scenario-1/repeat-1");

  // The label survives export, so sweep reports name scenarios too.
  const json::Value v = sweep_outcome_to_json(outcome);
  const auto& failure = v.as_object().at("failures").as_array()[0].as_object();
  EXPECT_EQ(failure.at("label").as_string(), "campaign-7/scenario-1/repeat-0");
}

TEST(GuardedSweep, MismatchedLabelCountThrowsBeforeRunning) {
  std::vector<SimConfig> points;
  points.push_back(small_config("pbft", 1));
  points.push_back(small_config("pbft", 2));
  EXPECT_THROW(
      (void)run_sweep_guarded(points, 1, 1, {}, {"only-one-label"}),
      std::invalid_argument);
}

TEST(GuardedSweep, OutcomeSerializesWithFailuresAndTallies) {
  std::vector<SimConfig> points;
  points.push_back(small_config("pbft", 1));
  points.push_back(small_config("no-such-protocol", 2));

  const SweepOutcome outcome = run_sweep_guarded(points, 1, 1);
  const json::Value v = sweep_outcome_to_json(outcome);
  EXPECT_FALSE(v.as_object().at("ok").as_bool());
  EXPECT_EQ(v.as_object().at("points").as_array().size(), 2u);
  const auto& failures = v.as_object().at("failures").as_array();
  ASSERT_EQ(failures.size(), 1u);
  const auto& failure = failures[0].as_object();
  EXPECT_EQ(failure.at("seed").as_int(), 2);
  EXPECT_EQ(failure.at("config").as_object().at("protocol").as_string(),
            "no-such-protocol");
}

}  // namespace
}  // namespace bftsim

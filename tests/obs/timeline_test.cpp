// Timeline-collector tests: sampling is off by default, deterministic,
// and — critically — never perturbs the run it samples.
#include "obs/timeline.hpp"

#include <gtest/gtest.h>

#include "core/config.hpp"
#include "sim/simulation.hpp"

namespace bftsim {
namespace {

SimConfig timeline_config(double tick_ms) {
  SimConfig cfg;
  cfg.protocol = "pbft";
  cfg.n = 4;
  cfg.seed = 5;
  cfg.decisions = 3;
  cfg.obs.timeline_tick_ms = tick_ms;
  return cfg;
}

TEST(TimelineTest, OffByDefault) {
  SimConfig cfg = timeline_config(0.0);
  const RunResult result = run_simulation(cfg);
  EXPECT_TRUE(result.timeline.empty());
  EXPECT_EQ(result.timeline_tick, 0);
}

TEST(TimelineTest, SamplingDoesNotPerturbTheRun) {
  SimConfig off = timeline_config(0.0);
  off.record_trace = true;
  SimConfig on = timeline_config(10.0);
  on.record_trace = true;

  const RunResult base = run_simulation(off);
  const RunResult sampled = run_simulation(on);

  // Identical engine behavior: same events, messages, termination, trace.
  EXPECT_EQ(sampled.events_processed, base.events_processed);
  EXPECT_EQ(sampled.messages_sent, base.messages_sent);
  EXPECT_EQ(sampled.messages_delivered, base.messages_delivered);
  EXPECT_EQ(sampled.termination_time, base.termination_time);
  EXPECT_EQ(sampled.trace_fingerprint, base.trace_fingerprint);
  EXPECT_FALSE(sampled.timeline.empty());
}

TEST(TimelineTest, SamplesAreDeterministicAndOrdered) {
  SimConfig cfg = timeline_config(25.0);
  const RunResult a = run_simulation(cfg);
  const RunResult b = run_simulation(cfg);

  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  ASSERT_FALSE(a.timeline.empty());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].at, b.timeline[i].at);
    EXPECT_EQ(a.timeline[i].events_processed, b.timeline[i].events_processed);
    EXPECT_EQ(a.timeline[i].queue_depth, b.timeline[i].queue_depth);
  }
  for (std::size_t i = 1; i < a.timeline.size(); ++i) {
    EXPECT_LT(a.timeline[i - 1].at, a.timeline[i].at);
    EXPECT_LE(a.timeline[i - 1].events_processed,
              a.timeline[i].events_processed);
  }
}

TEST(TimelineTest, SampleValuesAreInternallyConsistent) {
  SimConfig cfg = timeline_config(10.0);
  const RunResult result = run_simulation(cfg);
  ASSERT_FALSE(result.timeline.empty());
  EXPECT_EQ(result.timeline_tick, from_ms(10.0));
  for (const obs::TimelineSample& s : result.timeline) {
    EXPECT_LE(s.in_flight_messages + s.timers_pending, s.queue_depth);
    EXPECT_LE(s.messages_delivered, s.messages_sent);
    EXPECT_LE(s.min_view, s.max_view);
    ASSERT_EQ(s.node_views.size(), cfg.n);  // timeline_views defaults on
    for (const View v : s.node_views) {
      EXPECT_GE(v, s.min_view);
      EXPECT_LE(v, s.max_view);
    }
  }
  // The final-state sample reports the whole run's event count.
  EXPECT_EQ(result.timeline.back().events_processed, result.events_processed);
}

TEST(TimelineTest, ViewVectorCanBeDisabled) {
  SimConfig cfg = timeline_config(10.0);
  cfg.obs.timeline_views = false;
  const RunResult result = run_simulation(cfg);
  ASSERT_FALSE(result.timeline.empty());
  for (const obs::TimelineSample& s : result.timeline) {
    EXPECT_TRUE(s.node_views.empty());
  }
}

TEST(TimelineTest, TickBoundsSampleCount) {
  // One sample per elapsed tick at most (plus the final-state sample).
  SimConfig cfg = timeline_config(1.0);
  const RunResult result = run_simulation(cfg);
  ASSERT_FALSE(result.timeline.empty());
  ASSERT_TRUE(result.terminated);
  const auto max_samples =
      static_cast<std::size_t>(to_ms(result.termination_time) / 1.0) + 2;
  EXPECT_LE(result.timeline.size(), max_samples);
}

TEST(TimelineTest, ToJsonSchema) {
  obs::Timeline timeline(from_ms(5.0), true);
  obs::TimelineSample s;
  s.at = from_ms(5.0);
  s.events_processed = 10;
  s.queue_depth = 4;
  s.in_flight_messages = 3;
  s.timers_pending = 1;
  s.messages_sent = 7;
  s.messages_delivered = 5;
  s.min_view = 0;
  s.max_view = 1;
  s.node_views = {0, 1, 1};
  timeline.add(s);

  const json::Value v = timeline.to_json();
  EXPECT_EQ(v.get_int("tick_us", -1), from_ms(5.0));
  const json::Value* samples = v.as_object().find("samples");
  ASSERT_NE(samples, nullptr);
  ASSERT_EQ(samples->as_array().size(), 1u);
  const json::Value& row = samples->as_array()[0];
  EXPECT_EQ(row.get_int("at_us", -1), from_ms(5.0));
  EXPECT_EQ(row.get_int("events_processed", -1), 10);
  EXPECT_EQ(row.get_int("queue_depth", -1), 4);
  EXPECT_EQ(row.get_int("in_flight_messages", -1), 3);
  EXPECT_EQ(row.get_int("timers_pending", -1), 1);
  EXPECT_EQ(row.get_int("min_view", -1), 0);
  EXPECT_EQ(row.get_int("max_view", -1), 1);
  const json::Value* views = row.as_object().find("node_views");
  ASSERT_NE(views, nullptr);
  EXPECT_EQ(views->as_array().size(), 3u);
}

TEST(TimelineTest, AddAdvancesNextSampleTime) {
  obs::Timeline timeline(100, true);
  EXPECT_EQ(timeline.next_sample_at(), 100);
  obs::TimelineSample s;
  s.at = 250;  // clock jumped over two ticks
  timeline.add(s);
  EXPECT_EQ(timeline.next_sample_at(), 300);
}

TEST(TimelineTest, FinalSampleReplacesDuplicateInstant) {
  obs::Timeline timeline(100, true);
  obs::TimelineSample s;
  s.at = 150;
  s.events_processed = 10;
  timeline.add(s);
  s.events_processed = 12;
  timeline.add_final(s);  // same instant: final state supersedes
  ASSERT_EQ(timeline.samples().size(), 1u);
  EXPECT_EQ(timeline.samples()[0].events_processed, 12u);
  s.at = 170;
  timeline.add_final(s);
  EXPECT_EQ(timeline.samples().size(), 2u);
}

TEST(TimelineTest, RejectsNonPositiveTick) {
  EXPECT_THROW(obs::Timeline(0, true), std::invalid_argument);
  EXPECT_THROW(obs::Timeline(-5, true), std::invalid_argument);
}

}  // namespace
}  // namespace bftsim

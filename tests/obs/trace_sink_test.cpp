// Trace-sink tests: every sink backend must observe the same record
// sequence the in-memory Trace would hold, with the same fingerprint, and
// the streaming formats must round-trip records exactly.
#include "obs/trace_sink.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/config.hpp"
#include "core/trace.hpp"
#include "sim/simulation.hpp"

namespace bftsim {
namespace {

std::string temp_path(const std::string& name) {
  // PID-qualified: ctest runs each test in its own process, possibly in
  // parallel, and the parameterized suites would otherwise collide on
  // identically named files in the shared temp directory.
  return ::testing::TempDir() + std::to_string(::getpid()) + "_" + name;
}

SimConfig traced_config(std::uint64_t seed = 11) {
  SimConfig cfg;
  cfg.protocol = "pbft";
  cfg.n = 4;
  cfg.seed = seed;
  cfg.decisions = 2;
  cfg.record_trace = true;
  return cfg;
}

TraceRecord sample_record(TraceKind kind, Time at) {
  TraceRecord rec;
  rec.kind = kind;
  rec.at = at;
  rec.a = 1;
  rec.b = 2;
  rec.type = "prepare";
  rec.digest = 0xdeadbeefcafef00dULL;
  rec.msg_id = 42;
  rec.view = 3;
  rec.value = 0xffffffffffffffffULL;  // full 64 bits must survive JSONL
  return rec;
}

TEST(TraceSinkTest, MemorySinkMatchesLegacyTrace) {
  Trace direct;
  Trace sunk;
  obs::MemoryTraceSink sink(sunk);
  for (int i = 0; i < 5; ++i) {
    const TraceRecord rec = sample_record(TraceKind::kSend, i * 10);
    direct.add(rec);
    sink.on_record(rec);
  }
  ASSERT_EQ(sunk.size(), direct.size());
  EXPECT_EQ(sunk.fingerprint(), direct.fingerprint());
  EXPECT_EQ(sink.fingerprint(), direct.fingerprint());
  EXPECT_EQ(sink.count(), direct.size());
}

TEST(TraceSinkTest, EmptySinkFingerprintMatchesEmptyTrace) {
  Trace empty;
  obs::MemoryTraceSink sink(empty);
  EXPECT_EQ(sink.fingerprint(), empty.fingerprint());
  EXPECT_EQ(sink.fingerprint(), kTraceFingerprintSeed);
}

class TraceSinkFormatTest
    : public ::testing::TestWithParam<TraceSinkKind> {};

TEST_P(TraceSinkFormatTest, RoundTripsRecordsExactly) {
  const std::string path = temp_path("roundtrip.trace");
  Trace original;
  {
    ObsConfig obs;
    obs.sink = GetParam();
    obs.trace_path = path;
    Trace unused;
    auto sink = obs::make_trace_sink(obs, unused);
    const TraceKind kinds[] = {TraceKind::kSend, TraceKind::kDeliver,
                               TraceKind::kDrop, TraceKind::kDecide,
                               TraceKind::kViewChange, TraceKind::kCorrupt};
    Time at = 0;
    for (const TraceKind kind : kinds) {
      TraceRecord rec = sample_record(kind, at += 7);
      if (kind == TraceKind::kDecide) rec.type.clear();
      original.add(rec);
      sink->on_record(rec);
    }
    // A "quoted \"type\"" exercises JSONL escaping.
    TraceRecord tricky = sample_record(TraceKind::kSend, at += 7);
    tricky.type = "with \"quotes\" and \\slashes\\";
    original.add(tricky);
    sink->on_record(tricky);
    sink->flush();
    EXPECT_EQ(sink->fingerprint(), original.fingerprint());
    EXPECT_EQ(sink->count(), original.size());
  }

  obs::TraceReader reader(path);
  EXPECT_EQ(reader.format(), GetParam());
  const Trace loaded = obs::read_trace_file(path);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.fingerprint(), original.fingerprint());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    const TraceRecord& a = original.records()[i];
    const TraceRecord& b = loaded.records()[i];
    EXPECT_EQ(a.kind, b.kind) << "record " << i;
    EXPECT_EQ(a.at, b.at) << "record " << i;
    EXPECT_EQ(a.a, b.a) << "record " << i;
    EXPECT_EQ(a.b, b.b) << "record " << i;
    EXPECT_EQ(a.type, b.type) << "record " << i;
    EXPECT_EQ(a.digest, b.digest) << "record " << i;
    EXPECT_EQ(a.msg_id, b.msg_id) << "record " << i;
    EXPECT_EQ(a.view, b.view) << "record " << i;
    EXPECT_EQ(a.value, b.value) << "record " << i;
  }
}

TEST_P(TraceSinkFormatTest, StreamedRunMatchesMemoryRun) {
  SimConfig memory_cfg = traced_config();
  const RunResult memory_run = run_simulation(memory_cfg);
  ASSERT_GT(memory_run.trace.size(), 0u);
  EXPECT_EQ(memory_run.trace_fingerprint, memory_run.trace.fingerprint());
  EXPECT_EQ(memory_run.trace_records, memory_run.trace.size());

  const std::string path = temp_path("streamed.trace");
  SimConfig streamed_cfg = traced_config();
  streamed_cfg.obs.sink = GetParam();
  streamed_cfg.obs.trace_path = path;
  const RunResult streamed_run = run_simulation(streamed_cfg);

  // Streaming must not change the run, only where the trace goes.
  EXPECT_EQ(streamed_run.events_processed, memory_run.events_processed);
  EXPECT_EQ(streamed_run.messages_sent, memory_run.messages_sent);
  EXPECT_EQ(streamed_run.trace_fingerprint, memory_run.trace_fingerprint);
  EXPECT_EQ(streamed_run.trace_records, memory_run.trace_records);
  EXPECT_TRUE(streamed_run.trace.empty());  // nothing held in RAM

  const Trace loaded = obs::read_trace_file(path);
  EXPECT_EQ(loaded.size(), memory_run.trace.size());
  EXPECT_EQ(loaded.fingerprint(), memory_run.trace.fingerprint());
}

TEST_P(TraceSinkFormatTest, DeterminismSameSeedSameFingerprint) {
  const std::string path_a = temp_path("det_a.trace");
  const std::string path_b = temp_path("det_b.trace");
  SimConfig cfg = traced_config(29);
  cfg.obs.sink = GetParam();

  cfg.obs.trace_path = path_a;
  const RunResult a = run_simulation(cfg);
  cfg.obs.trace_path = path_b;
  const RunResult b = run_simulation(cfg);

  EXPECT_EQ(a.trace_fingerprint, b.trace_fingerprint);
  EXPECT_EQ(a.trace_records, b.trace_records);
  EXPECT_EQ(obs::read_trace_file(path_a).fingerprint(),
            obs::read_trace_file(path_b).fingerprint());
}

INSTANTIATE_TEST_SUITE_P(Formats, TraceSinkFormatTest,
                         ::testing::Values(TraceSinkKind::kJsonl,
                                           TraceSinkKind::kBinary),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(TraceSinkTest, StreamingSinkImpliesTracing) {
  // A streaming sink produces a trace file even when record_trace is off:
  // selecting jsonl/binary is an explicit request for a trace.
  const std::string path = temp_path("implied.trace");
  SimConfig cfg = traced_config();
  cfg.record_trace = false;
  cfg.obs.sink = TraceSinkKind::kJsonl;
  cfg.obs.trace_path = path;
  const RunResult result = run_simulation(cfg);
  EXPECT_GT(result.trace_records, 0u);
  EXPECT_GT(obs::read_trace_file(path).size(), 0u);
}

TEST(TraceSinkTest, UnopenablePathThrows) {
  EXPECT_THROW(obs::JsonlTraceSink("/nonexistent-dir/x.jsonl"),
               std::runtime_error);
  EXPECT_THROW(obs::BinaryTraceSink("/nonexistent-dir/x.trace"),
               std::runtime_error);
  EXPECT_THROW(obs::TraceReader("/nonexistent-dir/x.trace"),
               std::runtime_error);
}

TEST(TraceReaderTest, MalformedJsonlReportsRecordIndex) {
  const std::string path = temp_path("bad.jsonl");
  {
    std::ofstream out(path);
    out << R"({"kind":"send","at":1,"a":0,"b":1,"type":"x","digest":"00000000000000ff","msg":1,"view":0,"value":"0"})"
        << "\n";
    out << "this is not json\n";
  }
  obs::TraceReader reader(path);
  TraceRecord rec;
  ASSERT_TRUE(reader.next(rec));
  EXPECT_EQ(rec.digest, 0xffu);
  try {
    (void)reader.next(rec);
    FAIL() << "expected malformed record to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("record 1"), std::string::npos)
        << e.what();
  }
}

// --- Malformed-input battery -----------------------------------------------
// Hand-assembled binary files exercise each corruption the reader guards
// against; every error must name the file and the index of the record at
// which decoding stopped, so a corrupt multi-gigabyte trace is diagnosable.

constexpr char kMagic[8] = {'B', 'F', 'T', 'R', 'A', 'C', 'E', '\x01'};

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

/// A string-interning frame: tag 0x02, id, length, bytes.
void put_string_frame(std::string& out, std::uint32_t id,
                      const std::string& s) {
  out.push_back('\x02');
  put_u32(out, id);
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

/// A record frame: tag 0x01, kind, at, a, b, type_id, digest, msg, view, value.
void put_record_frame(std::string& out, std::uint8_t kind,
                      std::uint32_t type_id) {
  out.push_back('\x01');
  out.push_back(static_cast<char>(kind));
  put_u64(out, 100);     // at
  put_u32(out, 0);       // a
  put_u32(out, 1);       // b
  put_u32(out, type_id);
  put_u64(out, 0);       // digest
  put_u64(out, 7);       // msg
  put_u64(out, 0);       // view
  put_u64(out, 0);       // value
}

std::string write_binary(const std::string& name, const std::string& body) {
  const std::string path = temp_path(name);
  std::ofstream out(path, std::ios::binary);
  out.write(kMagic, sizeof kMagic);
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  return path;
}

/// Reads records until the reader throws; returns the message, failing the
/// test when no error surfaces.
std::string read_until_error(const std::string& path) {
  obs::TraceReader reader(path);
  TraceRecord rec;
  try {
    while (reader.next(rec)) {
    }
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  ADD_FAILURE() << path << ": expected a decode error";
  return {};
}

TEST(TraceReaderTest, TruncatedStringFrameReportsRecordIndex) {
  std::string body;
  put_string_frame(body, 0, "pbft/prepare");
  put_record_frame(body, 0, 0);
  body += '\x02';      // a second string frame...
  put_u32(body, 1);    // ...with its length header cut off
  const std::string msg =
      read_until_error(write_binary("trunc_string.trace", body));
  EXPECT_NE(msg.find("record 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("truncated string frame"), std::string::npos) << msg;
}

TEST(TraceReaderTest, OutOfOrderStringTableReportsCorruption) {
  std::string body;
  put_string_frame(body, 3, "skipped-ids");  // ids must be dense from 0
  const std::string msg =
      read_until_error(write_binary("bad_table.trace", body));
  EXPECT_NE(msg.find("record 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("corrupt string table"), std::string::npos) << msg;
}

TEST(TraceReaderTest, DanglingStringIdReportsRecordIndex) {
  std::string body;
  put_string_frame(body, 0, "pbft/prepare");
  put_record_frame(body, 0, 0);
  put_record_frame(body, 0, 9);  // references a string never interned
  const std::string msg =
      read_until_error(write_binary("dangling_id.trace", body));
  EXPECT_NE(msg.find("record 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("dangling string id"), std::string::npos) << msg;
}

TEST(TraceReaderTest, BadRecordKindReportsRecordIndex) {
  std::string body;
  put_string_frame(body, 0, "x");
  put_record_frame(body, 0xee, 0);
  const std::string msg =
      read_until_error(write_binary("bad_kind.trace", body));
  EXPECT_NE(msg.find("record 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("bad record kind"), std::string::npos) << msg;
}

TEST(TraceReaderTest, UnknownFrameTagReportsRecordIndex) {
  std::string body;
  put_string_frame(body, 0, "x");
  put_record_frame(body, 0, 0);
  body += '\x7f';  // neither a record nor a string frame
  const std::string msg =
      read_until_error(write_binary("bad_tag.trace", body));
  EXPECT_NE(msg.find("record 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("unknown frame tag"), std::string::npos) << msg;
}

TEST(TraceReaderTest, JsonlNonObjectLineReportsRecordIndex) {
  const std::string path = temp_path("non_object.jsonl");
  {
    std::ofstream out(path);
    out << R"({"kind":"send","at":1,"a":0,"b":1,"type":"x","digest":"0","msg":1,"view":0,"value":"0"})"
        << "\n[1,2,3]\n";
  }
  const std::string msg = read_until_error(path);
  EXPECT_NE(msg.find("record 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("not an object"), std::string::npos) << msg;
}

TEST(TraceReaderTest, JsonlUnknownKindReportsRecordIndex) {
  const std::string path = temp_path("bad_kind.jsonl");
  {
    std::ofstream out(path);
    out << R"({"kind":"teleport","at":1,"a":0,"b":1,"type":"x","digest":"0","msg":1,"view":0,"value":"0"})"
        << "\n";
  }
  const std::string msg = read_until_error(path);
  EXPECT_NE(msg.find("record 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("unknown trace kind"), std::string::npos) << msg;
}

TEST(TraceReaderTest, JsonlBadHexFieldReportsRecordIndex) {
  const std::string path = temp_path("bad_hex.jsonl");
  {
    std::ofstream out(path);
    out << R"({"kind":"send","at":1,"a":0,"b":1,"type":"x","digest":"xyzzy","msg":1,"view":0,"value":"0"})"
        << "\n";
  }
  const std::string msg = read_until_error(path);
  EXPECT_NE(msg.find("record 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("bad hex field"), std::string::npos) << msg;
}

TEST(TraceReaderTest, TruncatedBinaryThrows) {
  const std::string src = temp_path("trunc_src.trace");
  {
    obs::BinaryTraceSink sink(src);
    sink.on_record(sample_record(TraceKind::kSend, 1));
    sink.on_record(sample_record(TraceKind::kDeliver, 2));
    sink.flush();
  }
  std::ifstream in(src, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  const std::string dst = temp_path("trunc_dst.trace");
  {
    std::ofstream out(dst, std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() - 10));  // cut mid-record
  }
  obs::TraceReader reader(dst);
  TraceRecord rec;
  ASSERT_TRUE(reader.next(rec));
  EXPECT_THROW((void)reader.next(rec), std::runtime_error);
}

TEST(ObsConfigTest, DefaultsAreDisabled) {
  const ObsConfig obs;
  EXPECT_FALSE(obs.enabled());
  EXPECT_FALSE(obs.streaming());
  EXPECT_FALSE(obs.timeline_enabled());
}

TEST(ObsConfigTest, ParsesAndRoundTrips) {
  const json::Value v = json::parse(
      R"({"sink":"binary","trace_path":"/tmp/x.trace","timeline_tick_ms":5.0,)"
      R"("timeline_views":false})");
  const ObsConfig obs = ObsConfig::from_json(v);
  EXPECT_EQ(obs.sink, TraceSinkKind::kBinary);
  EXPECT_EQ(obs.trace_path, "/tmp/x.trace");
  EXPECT_DOUBLE_EQ(obs.timeline_tick_ms, 5.0);
  EXPECT_FALSE(obs.timeline_views);
  const ObsConfig again = ObsConfig::from_json(obs.to_json());
  EXPECT_EQ(again.sink, obs.sink);
  EXPECT_EQ(again.trace_path, obs.trace_path);
}

TEST(ObsConfigTest, RejectsUnknownSinkWithPath) {
  const json::Value v = json::parse(R"({"sink":"parquet"})");
  try {
    (void)ObsConfig::from_json(v);
    FAIL() << "expected parse failure";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("$.obs.sink"), std::string::npos)
        << e.what();
  }
}

TEST(ObsConfigTest, RejectsStreamingWithoutPath) {
  const json::Value v = json::parse(R"({"sink":"jsonl"})");
  try {
    (void)ObsConfig::from_json(v);
    FAIL() << "expected parse failure";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("$.obs.trace_path"),
              std::string::npos)
        << e.what();
  }
}

TEST(ObsConfigTest, RejectsUnknownKeys) {
  const json::Value v = json::parse(R"({"sink":"memory","sinks":"typo"})");
  EXPECT_THROW((void)ObsConfig::from_json(v), std::invalid_argument);
}

TEST(ObsConfigTest, SimConfigCarriesObsBlock) {
  const json::Value v = json::parse(
      R"({"protocol":"pbft","n":4,)"
      R"("obs":{"sink":"jsonl","trace_path":"/tmp/t.jsonl"}})");
  const SimConfig cfg = SimConfig::from_json(v);
  EXPECT_TRUE(cfg.obs.streaming());
  const json::Value out = cfg.to_json();
  ASSERT_NE(out.as_object().find("obs"), nullptr);
}

}  // namespace
}  // namespace bftsim

// ProfileBreakdown unit tests. Whether scopes actually record depends on
// the BFTSIM_PROFILING compile option; the aggregation types behave the
// same either way, and the default build must report an empty breakdown.
#include "obs/profile.hpp"

#include <gtest/gtest.h>

#include "core/config.hpp"
#include "sim/simulation.hpp"

namespace bftsim {
namespace {

using obs::ProfileBreakdown;
using obs::ProfileComponent;

TEST(ProfileTest, StartsEmpty) {
  const ProfileBreakdown breakdown;
  EXPECT_TRUE(breakdown.empty());
  for (const auto ns : breakdown.total_ns) EXPECT_EQ(ns, 0u);
  for (const auto calls : breakdown.calls) EXPECT_EQ(calls, 0u);
}

TEST(ProfileTest, RecordAccumulates) {
  ProfileBreakdown breakdown;
  breakdown.record(ProfileComponent::kOnMessage, 100);
  breakdown.record(ProfileComponent::kOnMessage, 50);
  breakdown.record(ProfileComponent::kEventPop, 7);
  EXPECT_FALSE(breakdown.empty());
  const auto msg = static_cast<std::size_t>(ProfileComponent::kOnMessage);
  const auto pop = static_cast<std::size_t>(ProfileComponent::kEventPop);
  EXPECT_EQ(breakdown.total_ns[msg], 150u);
  EXPECT_EQ(breakdown.calls[msg], 2u);
  EXPECT_EQ(breakdown.total_ns[pop], 7u);
  EXPECT_EQ(breakdown.calls[pop], 1u);
}

TEST(ProfileTest, ScopeRecordsOneCall) {
  ProfileBreakdown breakdown;
  {
    const obs::ProfileScope scope(breakdown, ProfileComponent::kOnTimer);
  }
  const auto i = static_cast<std::size_t>(ProfileComponent::kOnTimer);
  EXPECT_EQ(breakdown.calls[i], 1u);
}

TEST(ProfileTest, MergeAddsComponentwise) {
  ProfileBreakdown a;
  ProfileBreakdown b;
  a.record(ProfileComponent::kDelaySample, 10);
  b.record(ProfileComponent::kDelaySample, 5);
  b.record(ProfileComponent::kFaultHook, 3);
  a.merge(b);
  const auto delay = static_cast<std::size_t>(ProfileComponent::kDelaySample);
  const auto fault = static_cast<std::size_t>(ProfileComponent::kFaultHook);
  EXPECT_EQ(a.total_ns[delay], 15u);
  EXPECT_EQ(a.calls[delay], 2u);
  EXPECT_EQ(a.total_ns[fault], 3u);
  EXPECT_EQ(a.calls[fault], 1u);
}

TEST(ProfileTest, ComponentNames) {
  EXPECT_EQ(to_string(ProfileComponent::kEventPop), "event_pop");
  EXPECT_EQ(to_string(ProfileComponent::kDelaySample), "delay_sample");
  EXPECT_EQ(to_string(ProfileComponent::kAttackerHook), "attacker_hook");
  EXPECT_EQ(to_string(ProfileComponent::kOnMessage), "on_message");
  EXPECT_EQ(to_string(ProfileComponent::kOnTimer), "on_timer");
  EXPECT_EQ(to_string(ProfileComponent::kFaultHook), "fault_hook");
}

TEST(ProfileTest, ToJsonSkipsUnusedComponents) {
  ProfileBreakdown breakdown;
  breakdown.record(ProfileComponent::kOnMessage, 42);
  const json::Value v = breakdown.to_json();
  const json::Value* row = v.as_object().find("on_message");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->get_int("calls", -1), 1);
  EXPECT_EQ(row->get_int("total_ns", -1), 42);
  EXPECT_EQ(v.as_object().find("event_pop"), nullptr);
}

TEST(ProfileTest, RunResultProfileMatchesBuildMode) {
  SimConfig cfg;
  cfg.protocol = "pbft";
  cfg.n = 4;
  cfg.seed = 3;
  cfg.decisions = 1;
  const RunResult result = run_simulation(cfg);
#if defined(BFTSIM_PROFILING)
  EXPECT_FALSE(result.profile.empty());
  const auto pop = static_cast<std::size_t>(ProfileComponent::kEventPop);
  EXPECT_GT(result.profile.calls[pop], 0u);
#else
  EXPECT_TRUE(result.profile.empty());
#endif
}

}  // namespace
}  // namespace bftsim

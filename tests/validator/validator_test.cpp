#include "validator/validator.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace bftsim {
namespace {

SimConfig traced_config(const std::string& protocol, std::uint64_t seed = 1,
                        std::uint32_t decisions = 1) {
  SimConfig cfg;
  cfg.protocol = protocol;
  cfg.n = 16;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.seed = seed;
  cfg.decisions = decisions;
  cfg.record_trace = true;
  cfg.max_time_ms = 300'000;
  return cfg;
}

TEST(ValidatorTest, PbftReplayMatches) {
  const SimConfig cfg = traced_config("pbft");
  const RunResult truth = run_simulation(cfg);
  ASSERT_TRUE(truth.terminated);
  const ValidationResult v = validate_against_trace(cfg, truth.trace);
  EXPECT_TRUE(v.ok) << v.to_string();
  EXPECT_TRUE(v.decisions_match);
  EXPECT_EQ(v.leftover_deliveries, 0u);
  EXPECT_EQ(v.digest_mismatches, 0u);
  EXPECT_GT(v.replayed, 0u);
}

TEST(ValidatorTest, MultiDecisionReplayMatches) {
  const SimConfig cfg = traced_config("pbft", 4, 3);
  const RunResult truth = run_simulation(cfg);
  ASSERT_TRUE(truth.terminated);
  const ValidationResult v = validate_against_trace(cfg, truth.trace);
  EXPECT_TRUE(v.ok) << v.to_string();
}

TEST(ValidatorTest, EveryProtocolReplays) {
  for (const char* protocol : {"addv1", "addv2", "addv3", "algorand", "asyncba",
                               "pbft", "hotstuff-ns", "librabft"}) {
    const SimConfig cfg = traced_config(protocol, 2);
    const RunResult truth = run_simulation(cfg);
    ASSERT_TRUE(truth.terminated) << protocol;
    const ValidationResult v = validate_against_trace(cfg, truth.trace);
    EXPECT_TRUE(v.ok) << protocol << ": " << v.to_string();
  }
}

TEST(ValidatorTest, ReplayReproducesDropOnlyAttacks) {
  // Fail-stop and partition only drop/delay messages, so their traces
  // replay exactly (§III-D scope).
  SimConfig cfg = traced_config("pbft", 7);
  cfg.honest = 12;
  const RunResult truth = run_simulation(cfg);
  ASSERT_TRUE(truth.terminated);
  const ValidationResult v = validate_against_trace(cfg, truth.trace);
  EXPECT_TRUE(v.ok) << v.to_string();

  SimConfig part = traced_config("librabft", 8);
  part.attack = "partition";
  json::Object params;
  params["resolve_ms"] = 8000.0;
  params["mode"] = "drop";
  part.attack_params = json::Value{std::move(params)};
  const RunResult ptruth = run_simulation(part);
  ASSERT_TRUE(ptruth.terminated);
  const ValidationResult pv = validate_against_trace(part, ptruth.trace);
  EXPECT_TRUE(pv.ok) << pv.to_string();
}

TEST(ValidatorTest, DetectsTamperedDecision) {
  const SimConfig cfg = traced_config("pbft");
  const RunResult truth = run_simulation(cfg);
  Trace tampered = truth.trace;
  Trace rebuilt;
  for (TraceRecord rec : tampered.records()) {
    if (rec.kind == TraceKind::kDecide) rec.value ^= 1;  // flip the outcome
    rebuilt.add(rec);
  }
  const ValidationResult v = validate_against_trace(cfg, rebuilt);
  EXPECT_FALSE(v.ok);
  EXPECT_FALSE(v.decisions_match);
}

TEST(ValidatorTest, DetectsTamperedPayloads) {
  const SimConfig cfg = traced_config("pbft");
  const RunResult truth = run_simulation(cfg);
  Trace rebuilt;
  for (TraceRecord rec : truth.trace.records()) {
    if (rec.kind == TraceKind::kDeliver && rec.a != rec.b) rec.digest ^= 1;
    rebuilt.add(rec);
  }
  const ValidationResult v = validate_against_trace(cfg, rebuilt);
  EXPECT_GT(v.digest_mismatches, 0u);
  EXPECT_FALSE(v.ok);
}

TEST(ValidatorTest, DetectsForeignTrace) {
  // A trace recorded from a different protocol cannot replay: no digest
  // matches and the recorded deliveries are left over.
  const SimConfig cfg_pbft = traced_config("pbft", 1);
  const SimConfig cfg_libra = traced_config("librabft", 1);
  const RunResult truth = run_simulation(cfg_libra);
  const ValidationResult v = validate_against_trace(cfg_pbft, truth.trace);
  EXPECT_FALSE(v.ok) << v.to_string();
  EXPECT_GT(v.leftover_deliveries, 0u);
}

TEST(ValidatorTest, ResultToStringIsInformative) {
  ValidationResult r;
  r.ok = false;
  r.decisions_match = false;
  r.diagnosis = "test";
  const std::string s = r.to_string();
  EXPECT_NE(s.find("MISMATCH"), std::string::npos);
  EXPECT_NE(s.find("DIFFER"), std::string::npos);
  EXPECT_NE(s.find("test"), std::string::npos);
}

}  // namespace
}  // namespace bftsim

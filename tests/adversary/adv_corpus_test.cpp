// Adversary-corpus regression: every checked-in worst-case reproducer must
// replay with its recorded damage score, verdict and trace fingerprints,
// bit-exactly. Drift here means the engine, an attack, or a damage
// objective changed behavior — the resilience table is stale either way.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "adversary/reproducer.hpp"
#include "core/json.hpp"

namespace bftsim::adversary {
namespace {

std::vector<std::string> corpus_files() {
  const std::string dir =
      std::string(BFTSIM_REPO_ROOT) + "/tests/data/adversary_corpus";
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".json") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(AdversaryCorpus, EveryWorstCaseReplaysExactly) {
  const std::vector<std::string> files = corpus_files();
  ASSERT_FALSE(files.empty()) << "adversary corpus is missing";
  for (const std::string& file : files) {
    const AdvReproducer repro = AdvReproducer::from_file(file);
    const AdvReplayOutcome outcome = replay_adv_reproducer(repro);
    EXPECT_TRUE(outcome.score_matches)
        << file << ": score " << outcome.damage.score << " vs recorded "
        << repro.damage.score;
    EXPECT_TRUE(outcome.verdict_matches) << file;
    EXPECT_TRUE(outcome.fingerprints_match)
        << file << ": attacked " << outcome.attacked_fingerprint << "/"
        << outcome.attacked_records << " vs recorded "
        << repro.attacked_fingerprint << "/" << repro.attacked_records;
  }
}

TEST(AdversaryCorpus, CoversMultipleProtocolsAndAttacks) {
  // The corpus ships the search's full default table: several protocols,
  // several attack families, so the replay gate keeps exercising all of
  // the damage objectives from checked-in data.
  std::vector<std::string> protocols, attacks;
  for (const std::string& file : corpus_files()) {
    const AdvReproducer repro = AdvReproducer::from_file(file);
    protocols.push_back(repro.protocol);
    attacks.push_back(repro.attack);
    EXPECT_GT(repro.damage.score, 0.0) << file;  // zero-damage cells ship none
  }
  std::sort(protocols.begin(), protocols.end());
  protocols.erase(std::unique(protocols.begin(), protocols.end()),
                  protocols.end());
  std::sort(attacks.begin(), attacks.end());
  attacks.erase(std::unique(attacks.begin(), attacks.end()), attacks.end());
  EXPECT_GE(protocols.size(), 3u);
  EXPECT_GE(attacks.size(), 3u);
}

TEST(AdversaryCorpus, MislabeledReproducersAreRejected) {
  // The top-level protocol/attack labels feed the table and file names;
  // a hand-edited document whose label disagrees with the embedded config
  // would silently replay something else, so both cross-checks must fail
  // the parse.
  const std::vector<std::string> files = corpus_files();
  ASSERT_FALSE(files.empty());
  json::Value protocol_flip = json::parse_file(files.front());
  protocol_flip.as_object()["protocol"] = json::Value{std::string("asyncba")};
  EXPECT_THROW(AdvReproducer::from_json(protocol_flip), std::invalid_argument);
  json::Value attack_flip = json::parse_file(files.front());
  attack_flip.as_object()["attack"] = json::Value{std::string("flood")};
  EXPECT_THROW(AdvReproducer::from_json(attack_flip), std::invalid_argument);
}

}  // namespace
}  // namespace bftsim::adversary

// Parameter-space tests: the searchable attack grids must be model-aware
// (no partition-style attacks against synchronous-model protocols), and
// candidate generation must be a pure, in-range function of
// (space, seed, round, index) — the determinism the search report relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "adversary/space.hpp"

namespace bftsim::adversary {
namespace {

SimConfig base(const std::string& protocol) {
  SimConfig cfg;
  cfg.protocol = protocol;
  cfg.n = 8;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.max_time_ms = 60'000;
  return cfg;
}

std::vector<std::string> attack_names(const std::string& protocol) {
  std::vector<std::string> names;
  for (const AttackSpace& s : attack_spaces(protocol, base(protocol))) {
    names.push_back(s.attack);
  }
  return names;
}

bool has(const std::vector<std::string>& names, const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

TEST(SpaceTest, PartitionStyleAttacksAreModelAware) {
  const std::vector<std::string> pbft = attack_names("pbft");
  EXPECT_TRUE(has(pbft, "partition"));
  EXPECT_TRUE(has(pbft, "adaptive-partition"));
  EXPECT_TRUE(has(pbft, "eclipse"));
  // Synchronous model: sustained partitions would break the model's
  // assumption, not the protocol — they are excluded, bounded delay
  // scheduling and flooding remain.
  const std::vector<std::string> shs = attack_names("sync-hotstuff");
  EXPECT_FALSE(has(shs, "partition"));
  EXPECT_FALSE(has(shs, "adaptive-partition"));
  EXPECT_FALSE(has(shs, "eclipse"));
  EXPECT_TRUE(has(shs, "delay-schedule"));
  EXPECT_TRUE(has(shs, "flood"));
}

TEST(SpaceTest, ProtocolSpecificAttacksStayWithTheirProtocol) {
  EXPECT_TRUE(has(attack_names("pbft"), "pbft-late-equivocation"));
  EXPECT_FALSE(has(attack_names("hotstuff-ns"), "pbft-late-equivocation"));
  EXPECT_FALSE(has(attack_names("tendermint"), "pbft-late-equivocation"));
}

TEST(SpaceTest, GridSizeIsTheAxisProduct) {
  for (const AttackSpace& s : attack_spaces("pbft", base("pbft"))) {
    std::uint64_t product = 1;
    for (const ParamAxis& axis : s.axes) product *= axis.values.size();
    EXPECT_EQ(s.grid_size(), product) << s.attack;
    EXPECT_GT(product, 1u) << s.attack;  // something to search
  }
}

TEST(SpaceTest, ParamsOfEncodesOneEntryPerAxis) {
  const AttackSpace space = attack_spaces("pbft", base("pbft")).front();
  const ParamVector pv(space.axes.size(), 0);
  const json::Value params = params_of(space, pv);
  ASSERT_TRUE(params.is_object());
  ASSERT_EQ(params.as_object().size(), space.axes.size());
  for (const ParamAxis& axis : space.axes) {
    EXPECT_NE(params.as_object().find(axis.key), nullptr) << axis.key;
  }
}

TEST(SpaceTest, DrawCandidateIsPureAndInRange) {
  for (const AttackSpace& space : attack_spaces("pbft", base("pbft"))) {
    std::set<ParamVector> distinct;
    for (std::uint64_t i = 0; i < 16; ++i) {
      const ParamVector pv = draw_candidate(space, 42, 1, i);
      ASSERT_EQ(pv.size(), space.axes.size());
      for (std::size_t a = 0; a < pv.size(); ++a) {
        EXPECT_LT(pv[a], space.axes[a].values.size());
      }
      EXPECT_EQ(pv, draw_candidate(space, 42, 1, i));  // pure
      distinct.insert(pv);
    }
    EXPECT_GT(distinct.size(), 1u) << space.attack;  // draws do vary
  }
}

TEST(SpaceTest, DrawsDependOnSeedAndRound) {
  const AttackSpace space = attack_spaces("pbft", base("pbft")).front();
  std::vector<ParamVector> by_seed, by_round;
  for (std::uint64_t i = 0; i < 8; ++i) {
    by_seed.push_back(draw_candidate(space, 1, 0, i));
    by_round.push_back(draw_candidate(space, 1, 1, i));
  }
  std::vector<ParamVector> other_seed;
  for (std::uint64_t i = 0; i < 8; ++i) {
    other_seed.push_back(draw_candidate(space, 2, 0, i));
  }
  EXPECT_NE(by_seed, other_seed);
  EXPECT_NE(by_seed, by_round);
}

TEST(SpaceTest, NeighborsStepEachAxisOnce) {
  const AttackSpace space = attack_spaces("pbft", base("pbft")).front();
  // Interior point: every axis with >= 3 values contributes -1 and +1.
  ParamVector pv;
  for (const ParamAxis& axis : space.axes) {
    pv.push_back(axis.values.size() / 2);
  }
  const std::vector<ParamVector> steps = neighbors(space, pv);
  std::size_t expected = 0;
  for (std::size_t a = 0; a < space.axes.size(); ++a) {
    if (pv[a] > 0) ++expected;
    if (pv[a] + 1 < space.axes[a].values.size()) ++expected;
  }
  EXPECT_EQ(steps.size(), expected);
  for (const ParamVector& s : steps) {
    EXPECT_NE(s, pv);
    std::size_t moved = 0;
    for (std::size_t a = 0; a < s.size(); ++a) {
      if (s[a] != pv[a]) {
        ++moved;
        EXPECT_EQ(std::max(s[a], pv[a]) - std::min(s[a], pv[a]), 1u);
      }
    }
    EXPECT_EQ(moved, 1u);  // exactly one axis stepped by one
  }
}

}  // namespace
}  // namespace bftsim::adversary

// Damage-oracle tests: the objectives that rank adversary-search
// candidates must be zero on identical runs, dominated by stalls and
// safety violations, and reproduce bit-exactly through a JSON round trip
// (the search's replay gate compares scores with ==).
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "adversary/damage.hpp"
#include "sim/simulation.hpp"

namespace bftsim::adversary {
namespace {

SimConfig pbft_config(std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.protocol = "pbft";
  cfg.n = 16;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.seed = seed;
  cfg.max_time_ms = 300'000;
  cfg.record_trace = true;
  return cfg;
}

TEST(DamageTest, AttackFreeRunScoresZeroAgainstItself) {
  const SimConfig cfg = pbft_config();
  const RunResult result = run_simulation(cfg);
  const DamageReport damage = compute_damage(cfg, result, result);
  EXPECT_FALSE(damage.stalled);
  EXPECT_FALSE(damage.safety_violated);
  EXPECT_EQ(damage.score, 0.0);
  EXPECT_EQ(damage.describe(), "none");
}

TEST(DamageTest, StallDominatesLatencyAndChurn) {
  // Stalling every commit by 8s pushes the decision (~2.5s attack-free,
  // ~10.5s attacked) past the 6s horizon: a liveness stall, the watchdog
  // cuts the run off.
  SimConfig cfg = pbft_config();
  cfg.max_time_ms = 6'000;
  const RunResult baseline = run_simulation(baseline_of(cfg));
  cfg.attack = "delay-schedule";
  json::Object p;
  p["type"] = "pbft/commit";
  p["mode"] = "stall";
  p["amount_ms"] = 8'000;
  p["duration_ms"] = 60'000;
  cfg.attack_params = json::Value{std::move(p)};
  const RunResult attacked = run_simulation(cfg);
  ASSERT_FALSE(attacked.terminated);
  const DamageReport damage = compute_damage(cfg, baseline, attacked);
  EXPECT_TRUE(damage.stalled);
  EXPECT_GE(damage.score, kStallWeight);
  EXPECT_NE(damage.describe().find("stall"), std::string::npos);
}

TEST(DamageTest, LatencyDegradationIsMeasuredAgainstTheBaseline) {
  SimConfig cfg = pbft_config(2);
  const RunResult baseline = run_simulation(baseline_of(cfg));
  cfg.attack = "partition";
  json::Object p;
  p["subnets"] = 2;
  p["resolve_ms"] = 15'000;
  p["mode"] = "drop";
  cfg.attack_params = json::Value{std::move(p)};
  const RunResult attacked = run_simulation(cfg);
  ASSERT_TRUE(attacked.terminated);
  const DamageReport damage = compute_damage(cfg, baseline, attacked);
  EXPECT_FALSE(damage.stalled);
  EXPECT_GT(damage.latency_ratio, 1.0);  // >2x the attack-free latency
  EXPECT_GE(damage.score, kLatencyWeight * damage.latency_ratio);
}

TEST(DamageTest, QuorumSlackCountsCertificateSenders) {
  // Attack-free pbft n=16: all 16 nodes send commits, the certificate
  // needs 2f+1 = 11, so the slack at the first decide is at most 5 and
  // at least 0 — and it must be present for a traced, decided run.
  const SimConfig cfg = pbft_config();
  const RunResult result = run_simulation(cfg);
  const std::optional<double> slack = quorum_slack(cfg, result);
  ASSERT_TRUE(slack.has_value());
  EXPECT_GE(*slack, 0.0);
  EXPECT_LE(*slack, 5.0);
}

TEST(DamageTest, QuorumSlackNeedsATrace) {
  SimConfig cfg = pbft_config();
  cfg.record_trace = false;
  const RunResult result = run_simulation(cfg);
  EXPECT_FALSE(quorum_slack(cfg, result).has_value());
}

TEST(DamageTest, JsonRoundTripIsExact) {
  SimConfig cfg = pbft_config(3);
  const RunResult baseline = run_simulation(baseline_of(cfg));
  cfg.attack = "delay-schedule";
  json::Object p;
  p["type"] = "pbft/prepare";
  p["mode"] = "stall";
  p["amount_ms"] = 1'500;
  p["duration_ms"] = 30'000;
  cfg.attack_params = json::Value{std::move(p)};
  const RunResult attacked = run_simulation(cfg);
  const DamageReport damage = compute_damage(cfg, baseline, attacked);

  const std::string dumped = damage.to_json().dump();
  const DamageReport back =
      DamageReport::from_json(json::parse(dumped), "$.damage");
  EXPECT_EQ(back.stalled, damage.stalled);
  EXPECT_EQ(back.safety_violated, damage.safety_violated);
  EXPECT_EQ(back.latency_ratio, damage.latency_ratio);  // bit-exact doubles
  EXPECT_EQ(back.view_churn, damage.view_churn);
  EXPECT_EQ(back.quorum_near_miss, damage.quorum_near_miss);
  EXPECT_EQ(back.score, damage.score);
}

TEST(DamageTest, BaselineOfOnlyClearsTheAttack) {
  SimConfig cfg = pbft_config(9);
  cfg.attack = "flood";
  json::Object p;
  p["copies"] = 2;
  cfg.attack_params = json::Value{std::move(p)};
  const SimConfig base = baseline_of(cfg);
  EXPECT_TRUE(base.attack.empty());
  EXPECT_TRUE(base.attack_params.is_null());
  EXPECT_EQ(base.protocol, cfg.protocol);
  EXPECT_EQ(base.n, cfg.n);
  EXPECT_EQ(base.seed, cfg.seed);
  EXPECT_EQ(base.max_time_ms, cfg.max_time_ms);
}

}  // namespace
}  // namespace bftsim::adversary

// End-to-end tests for the adversary search driver: jobs-independent
// byte-identical reports, nonzero damage against pbft, and reproducers
// that replay exactly (the search's own gate, re-checked from the outside).
#include <gtest/gtest.h>

#include <string>

#include "adversary/search.hpp"

namespace bftsim::adversary {
namespace {

SearchOptions mini_options(std::uint64_t seed = 5) {
  SearchOptions options;
  options.protocols = {"pbft"};
  options.n = 8;
  options.seed = seed;
  options.grid = 4;
  options.rounds = 1;
  options.shrink_runs = 8;
  options.watchdog = Watchdog{100'000, 30'000.0};
  return options;
}

TEST(SearchTest, ReportIsByteIdenticalAcrossJobs) {
  SearchOptions serial = mini_options();
  serial.jobs = 1;
  SearchOptions wide = mini_options();
  wide.jobs = 4;
  const SearchReport a = run_search(serial);
  const SearchReport b = run_search(wide);
  EXPECT_EQ(a.to_json().dump(2), b.to_json().dump(2));
  EXPECT_EQ(a.table(), b.table());
}

TEST(SearchTest, FindsDamageAgainstPbftWithVerifiedReproducers) {
  const SearchReport report = run_search(mini_options());
  EXPECT_TRUE(report.refused.empty());
  ASSERT_FALSE(report.worst.empty());
  // Ranked: the top cell carries the highest score, and at least one cell
  // did real damage.
  EXPECT_GT(report.worst.front().damage.score, 0.0);
  for (std::size_t i = 1; i < report.worst.size(); ++i) {
    EXPECT_LE(report.worst[i].damage.score, report.worst[i - 1].damage.score);
  }
  for (const WorstCase& w : report.worst) {
    EXPECT_EQ(w.has_reproducer, w.damage.score > 0.0) << w.attack;
    EXPECT_GT(w.evaluations, 0u) << w.attack;
  }
}

TEST(SearchTest, ReproducersSurviveAJsonRoundTrip) {
  const SearchReport report = run_search(mini_options(7));
  const WorstCase* top = nullptr;
  for (const WorstCase& w : report.worst) {
    if (w.has_reproducer) {
      top = &w;
      break;
    }
  }
  ASSERT_NE(top, nullptr);
  const std::string dumped = top->reproducer.to_json().dump(2);
  const AdvReproducer back =
      AdvReproducer::from_json(json::parse(dumped), "$.roundtrip");
  EXPECT_EQ(back.id, top->reproducer.id);
  EXPECT_EQ(back.damage.score, top->reproducer.damage.score);
  const AdvReplayOutcome outcome = replay_adv_reproducer(back);
  EXPECT_TRUE(outcome.ok())
      << "score " << outcome.damage.score << " vs recorded "
      << back.damage.score;
}

TEST(SearchTest, BaseConfigHonorsTheSyncModelAndWatchdog) {
  const SearchOptions options = mini_options();
  const SimConfig pbft = search_base_config("pbft", options);
  EXPECT_EQ(pbft.delay.max_ms, 0.0);  // partial synchrony: unbounded tail
  EXPECT_EQ(pbft.max_time_ms, 30'000.0);
  EXPECT_EQ(pbft.max_events, 100'000u);
  EXPECT_TRUE(pbft.record_trace);
  const SimConfig shs = search_base_config("sync-hotstuff", options);
  EXPECT_EQ(shs.delay.max_ms, shs.lambda_ms);  // λ-bounded network
}

}  // namespace
}  // namespace bftsim::adversary

// Counterexample shrinking: deterministic, budget-respecting, and free of
// the config-aliasing hazard that json::Value's shared-object copies invite.
#include "explore/shrink.hpp"

#include <gtest/gtest.h>

#include "explore/canary.hpp"
#include "explore/scenario.hpp"
#include "runner/runner.hpp"
#include "sim/simulation.hpp"

namespace bftsim::explore {
namespace {

/// A canary scenario known to violate `oracle`, capped exactly as the
/// campaign engine caps it before shrinking.
SimConfig failing_config(std::uint64_t index) {
  register_fuzz_canary();
  const Watchdog watchdog{2'000'000, 0.0};
  return watchdog.apply(generate_scenario(ScenarioSpace::canary(), 1, index).config);
}

TEST(Shrink, ReducesTheScenarioAndPreservesTheViolation) {
  const SimConfig failing = failing_config(3);  // certificate violation
  const ShrinkResult result =
      shrink_scenario(failing, Oracle::kCertificate);
  EXPECT_GT(result.steps, 0u);
  EXPECT_GE(result.runs, result.steps + 1);  // + the reference probe
  EXPECT_LT(result.config.max_time_ms, failing.max_time_ms);
  ASSERT_FALSE(result.report.ok);
  EXPECT_EQ(result.report.violated, Oracle::kCertificate);

  // The shrunk config independently reproduces verdict and fingerprint.
  const RunResult rerun = run_simulation(result.config);
  const OracleReport verdict = check_oracles(result.config, rerun);
  ASSERT_FALSE(verdict.ok);
  EXPECT_EQ(verdict.violated, Oracle::kCertificate);
  EXPECT_EQ(rerun.trace_fingerprint, result.trace_fingerprint);
  EXPECT_EQ(rerun.trace_records, result.trace_records);
}

TEST(Shrink, IsDeterministic) {
  const SimConfig failing = failing_config(3);
  const ShrinkResult a = shrink_scenario(failing, Oracle::kCertificate);
  const ShrinkResult b = shrink_scenario(failing, Oracle::kCertificate);
  EXPECT_EQ(a.config.to_json().dump(), b.config.to_json().dump());
  EXPECT_EQ(a.trace_fingerprint, b.trace_fingerprint);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.runs, b.runs);
}

TEST(Shrink, DoesNotMutateTheInputConfig) {
  // Regression: json::Value copies share their underlying object, so a
  // candidate that edited attack_params in place would silently rewrite
  // the input (and the current best) even when the candidate is rejected.
  // Scenario 28 carries a partition attack whose resolve_ms the shrinker
  // halves, which is exactly the transformation that used to alias.
  const SimConfig failing = failing_config(28);  // agreement violation
  ASSERT_EQ(failing.attack, "partition");
  const std::string before = failing.to_json().dump();
  const ShrinkResult result = shrink_scenario(failing, Oracle::kAgreement);
  EXPECT_EQ(failing.to_json().dump(), before)
      << "shrink_scenario mutated its input";
  // The accepted shrink really did halve the partition's resolve window.
  ASSERT_TRUE(result.config.attack_params.is_object());
  EXPECT_LT(result.config.attack_params.get_number("resolve_ms", 1e18),
            failing.attack_params.get_number("resolve_ms", 0.0));
}

TEST(Shrink, RespectsTheRunBudget) {
  const SimConfig failing = failing_config(3);
  ShrinkOptions options;
  options.max_runs = 3;
  const ShrinkResult result =
      shrink_scenario(failing, Oracle::kCertificate, options);
  EXPECT_LE(result.runs, 3u);
  ASSERT_FALSE(result.report.ok);
  EXPECT_EQ(result.report.violated, Oracle::kCertificate);
}

TEST(Shrink, NonViolatingInputThrows) {
  SimConfig healthy;
  healthy.protocol = "pbft";
  healthy.n = 4;
  healthy.lambda_ms = 1000;
  healthy.delay = DelaySpec::normal(250, 50);
  healthy.seed = 1;
  healthy.decisions = 1;
  healthy.max_time_ms = 60'000;
  healthy.record_trace = true;
  EXPECT_THROW((void)shrink_scenario(healthy, Oracle::kAgreement),
               std::invalid_argument);
}

}  // namespace
}  // namespace bftsim::explore

// Fuzz-corpus regression: every checked-in reproducer must replay with its
// recorded verdict and a bit-identical trace fingerprint. A failure here
// means either a behavior change in the engine (fingerprint drift) or a
// fixed/regressed protocol bug (verdict drift) — both demand a look.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "explore/reproducer.hpp"

namespace bftsim::explore {
namespace {

std::vector<std::string> corpus_files() {
  const std::string dir =
      std::string(BFTSIM_REPO_ROOT) + "/tests/data/fuzz_corpus";
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".json") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(FuzzCorpus, EveryReproducerReplaysExactly) {
  const std::vector<std::string> files = corpus_files();
  ASSERT_FALSE(files.empty()) << "fuzz corpus is missing";
  for (const std::string& file : files) {
    const Reproducer repro = Reproducer::from_file(file);
    const ReplayOutcome outcome = replay_reproducer(repro);
    EXPECT_TRUE(outcome.verdict_matches)
        << file << ": expected " << to_string(repro.oracle)
        << ", got " << outcome.report.to_string();
    EXPECT_TRUE(outcome.fingerprint_matches)
        << file << ": fingerprint/record-count drift ("
        << outcome.trace_fingerprint << "/" << outcome.trace_records
        << " vs recorded " << repro.trace_fingerprint << "/"
        << repro.trace_records << ")";
  }
}

TEST(FuzzCorpus, CoversBothSafetyOracleKinds) {
  // The corpus intentionally keeps at least one agreement violation and
  // one certificate violation, so both oracle code paths stay regression-
  // tested from checked-in data.
  std::set<Oracle> seen;
  for (const std::string& file : corpus_files()) {
    seen.insert(Reproducer::from_file(file).oracle);
  }
  EXPECT_TRUE(seen.count(Oracle::kAgreement));
  EXPECT_TRUE(seen.count(Oracle::kCertificate));
}

}  // namespace
}  // namespace bftsim::explore

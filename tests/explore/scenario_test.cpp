// Scenario generation: a pure, order-independent function of
// (space, campaign seed, index) whose every sampled parameter survives the
// double-backed JSON layer exactly.
#include "explore/scenario.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/json.hpp"
#include "explore/canary.hpp"
#include "protocols/registry.hpp"

namespace bftsim::explore {
namespace {

TEST(Quantize, ProducesDyadicValuesThatRoundTripThroughJson) {
  EXPECT_DOUBLE_EQ(quantize_eighth_ms(0.3), 0.25);
  EXPECT_DOUBLE_EQ(quantize_eighth_ms(100.0), 100.0);
  EXPECT_DOUBLE_EQ(quantize_eighth_ms(349.7), 349.75);
  for (const double ms : {0.125, 17.375, 4'096.625, 599'999.875}) {
    EXPECT_DOUBLE_EQ(quantize_eighth_ms(ms), ms) << ms << " is a fixed point";
    json::Object o;
    o["v"] = ms;
    const json::Value back = json::parse(json::Value{std::move(o)}.dump());
    EXPECT_EQ(back.as_object().at("v").as_number(), ms);
  }
}

TEST(ScenarioGeneration, IsDeterministicAndOrderIndependent) {
  const ScenarioSpace space = ScenarioSpace::defaults();
  // Forward, backward, and standalone generation of the same index must
  // agree on every byte of the config.
  for (const std::uint64_t index : {0ull, 7ull, 41ull}) {
    const Scenario a = generate_scenario(space, 3, index);
    const Scenario b = generate_scenario(space, 3, index);
    EXPECT_EQ(a.config.to_json().dump(), b.config.to_json().dump());
    EXPECT_EQ(a.id(), b.id());
  }
  std::vector<std::string> forward;
  for (std::uint64_t i = 0; i < 10; ++i) {
    forward.push_back(generate_scenario(space, 5, i).config.to_json().dump());
  }
  for (std::uint64_t i = 10; i-- > 0;) {
    EXPECT_EQ(generate_scenario(space, 5, i).config.to_json().dump(),
              forward[i])
        << "scenario " << i << " depends on generation order";
  }
}

TEST(ScenarioGeneration, DistinctCoordinatesGiveDistinctRuns) {
  const ScenarioSpace space = ScenarioSpace::defaults();
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 40; ++i) {
    seeds.insert(generate_scenario(space, 1, i).config.seed);
  }
  // Run seeds are 53-bit draws; a collision among 40 would be astronomical.
  EXPECT_EQ(seeds.size(), 40u);
  EXPECT_NE(generate_scenario(space, 1, 0).config.seed,
            generate_scenario(space, 2, 0).config.seed);
}

TEST(ScenarioGeneration, ConfigsValidateAndAlwaysRecordTraces) {
  const ScenarioSpace space = ScenarioSpace::defaults();
  for (std::uint64_t i = 0; i < 60; ++i) {
    const Scenario s = generate_scenario(space, 11, i);
    EXPECT_NO_THROW(s.config.validate()) << s.id();
    EXPECT_TRUE(s.config.record_trace) << s.id();
    // Seeds below 2^53 survive the double-backed JSON layer exactly.
    EXPECT_LT(s.config.seed, 1ull << 53) << s.id();
  }
}

TEST(ScenarioGeneration, SyncProtocolsGetDelaysClampedAtLambda) {
  ScenarioSpace space = ScenarioSpace::defaults();
  space.protocols = {"sync-hotstuff"};
  for (std::uint64_t i = 0; i < 20; ++i) {
    const SimConfig& cfg = generate_scenario(space, 2, i).config;
    EXPECT_DOUBLE_EQ(cfg.delay.max_ms, cfg.lambda_ms) << "scenario " << i;
    EXPECT_TRUE(cfg.attack != "partition")
        << "a partition is asynchrony; sync protocols must never draw it";
  }
}

TEST(ScenarioGeneration, OneShotProtocolsNeverGetMultiDecisionTargets) {
  ScenarioSpace space = ScenarioSpace::defaults();
  space.protocols = {"pbft"};
  for (std::uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(generate_scenario(space, 4, i).config.decisions, 1u);
  }
  space.protocols = {"hotstuff-ns"};
  bool saw_multi = false;
  for (std::uint64_t i = 0; i < 20; ++i) {
    saw_multi |= generate_scenario(space, 4, i).config.decisions > 1;
  }
  EXPECT_TRUE(saw_multi) << "pipelined protocols should draw targets > 1";
}

TEST(ScenarioGeneration, CanarySpaceSelectsOnlyTheCanary) {
  register_fuzz_canary();
  const ScenarioSpace space = ScenarioSpace::canary();
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(generate_scenario(space, 1, i).config.protocol, kCanaryProtocol);
  }
}

TEST(ScenarioGeneration, EmptyProtocolListThrows) {
  ScenarioSpace space = ScenarioSpace::defaults();
  space.protocols.clear();
  EXPECT_THROW((void)generate_scenario(space, 1, 0), std::invalid_argument);
}

TEST(ScenarioId, NamesCampaignAndIndex) {
  Scenario s;
  s.campaign_seed = 7;
  s.index = 42;
  EXPECT_EQ(s.id(), "campaign-7/scenario-42");
}

TEST(ScenarioSpaceJson, RoundTrips) {
  ScenarioSpace space = ScenarioSpace::defaults();
  space.node_counts = {4, 7};
  space.attack_rate = 0.25;
  space.max_time_ms = 30'000.0;
  const ScenarioSpace back = ScenarioSpace::from_json(space.to_json(), "$");
  EXPECT_EQ(back.to_json().dump(), space.to_json().dump());
  // The round-tripped space generates identical scenarios.
  EXPECT_EQ(generate_scenario(back, 9, 3).config.to_json().dump(),
            generate_scenario(space, 9, 3).config.to_json().dump());
}

TEST(ScenarioSpaceJson, RejectsBadInputWithPath) {
  const auto expect_error = [](const char* text, const char* needle) {
    try {
      (void)ScenarioSpace::from_json(json::parse(text), "$.space");
      FAIL() << "expected rejection of " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error(R"({"protocols":[]})", "$.space.protocols");
  expect_error(R"({"node_counts":[2]})", "$.space.node_counts");
  expect_error(R"({"attack_rate":1.5})", "$.space.attack_rate");
  expect_error(R"({"lambdas":[500]})", "$.space");  // unknown key
}

}  // namespace
}  // namespace bftsim::explore

// Campaign engine, end to end: the canary campaign must find and shrink
// the planted quorum bug, real protocols must come back clean, and the
// whole report must be byte-identical for every job count.
#include "explore/campaign.hpp"

#include <gtest/gtest.h>

#include "core/json.hpp"
#include "explore/canary.hpp"

namespace bftsim::explore {
namespace {

CampaignOptions canary_options(std::uint64_t scenarios) {
  CampaignOptions options;
  options.space = ScenarioSpace::canary();
  options.seed = 1;
  options.scenario_count = scenarios;
  options.jobs = 2;
  return options;
}

TEST(Campaign, CanaryCampaignFindsAndShrinksThePlantedBug) {
  const CampaignReport report = run_campaign(canary_options(6));
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(report.crashes.empty());
  ASSERT_EQ(report.findings.size(), 2u);  // seed 1 violates at indices 3, 5
  EXPECT_EQ(report.findings[0].index, 3u);
  EXPECT_EQ(report.findings[1].index, 5u);

  for (const CampaignFinding& finding : report.findings) {
    EXPECT_EQ(finding.reproducer.oracle, Oracle::kCertificate);
    EXPECT_GT(finding.reproducer.shrink_steps, 0u);
    EXPECT_FALSE(finding.reproducer.diagnosis.empty());
    // Every reproducer a campaign emits replays bit-identically.
    const ReplayOutcome outcome = replay_reproducer(finding.reproducer);
    EXPECT_TRUE(outcome.ok())
        << finding.reproducer.scenario_id << ": "
        << outcome.report.to_string();
  }
}

TEST(Campaign, ReportIsByteIdenticalAcrossJobCounts) {
  CampaignOptions serial = canary_options(6);
  serial.jobs = 1;
  CampaignOptions wide = canary_options(6);
  wide.jobs = 4;
  EXPECT_EQ(run_campaign(serial).to_json().dump(2),
            run_campaign(wide).to_json().dump(2));
}

TEST(Campaign, RealProtocolsComeBackClean) {
  CampaignOptions options;
  options.seed = 2;
  options.scenario_count = 8;
  options.jobs = 4;
  const CampaignReport report = run_campaign(options);
  EXPECT_TRUE(report.clean()) << report.to_json().dump(2);
  EXPECT_EQ(report.tally.decided + report.tally.horizon +
                report.tally.event_budget + report.tally.queue_drained,
            8u);
}

TEST(Campaign, ReportJsonCarriesSchemaAndFindings) {
  const json::Value doc = run_campaign(canary_options(4)).to_json();
  const json::Object& o = doc.as_object();
  EXPECT_EQ(o.at("schema").as_string(), "bftsim-fuzz-campaign-v1");
  EXPECT_EQ(o.at("seed").as_int(), 1);
  EXPECT_EQ(o.at("scenarios").as_int(), 4);
  ASSERT_EQ(o.at("findings").as_array().size(), 1u);  // index 3
  const json::Object& finding = o.at("findings").as_array()[0].as_object();
  EXPECT_EQ(finding.at("index").as_int(), 3);
  EXPECT_EQ(finding.at("reproducer").as_object().at("schema").as_string(),
            "bftsim-fuzz-reproducer-v1");
}

TEST(CampaignOptions, FromJsonParsesTheExploreClause) {
  const json::Value v = json::parse(
      R"({"seed":9,"scenarios":25,"max_events":50000,"shrink_runs":12,)"
      R"("space":{"protocols":["pbft"],"attack_rate":0.1}})");
  const CampaignOptions options = CampaignOptions::from_json(v, "$.explore");
  EXPECT_EQ(options.seed, 9u);
  EXPECT_EQ(options.scenario_count, 25u);
  EXPECT_EQ(options.watchdog.max_events, 50'000u);
  EXPECT_EQ(options.shrink.max_runs, 12u);
  ASSERT_EQ(options.space.protocols.size(), 1u);
  EXPECT_EQ(options.space.protocols[0], "pbft");
  EXPECT_DOUBLE_EQ(options.space.attack_rate, 0.1);
}

TEST(CampaignOptions, FromJsonRejectsUnknownKeys) {
  const json::Value v = json::parse(R"({"seeds":9})");
  try {
    (void)CampaignOptions::from_json(v, "$.explore");
    FAIL() << "expected rejection";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("$.explore"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace bftsim::explore

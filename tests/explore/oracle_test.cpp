// Invariant oracles: names, the certificate-rule table, and end-to-end
// verdicts on real runs (clean, timed-out-quiescent, and canary).
#include "explore/oracles.hpp"

#include <gtest/gtest.h>

#include "explore/canary.hpp"
#include "explore/scenario.hpp"
#include "sim/simulation.hpp"

namespace bftsim::explore {
namespace {

SimConfig quiet_config(const std::string& protocol, std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.protocol = protocol;
  cfg.n = 4;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.seed = seed;
  cfg.decisions = 1;
  cfg.max_time_ms = 60'000;
  cfg.record_trace = true;
  return cfg;
}

TEST(OracleNames, RoundTripThroughStrings) {
  for (const Oracle oracle :
       {Oracle::kAgreement, Oracle::kValidity, Oracle::kCompleteness,
        Oracle::kCertificate, Oracle::kLiveness}) {
    EXPECT_EQ(oracle_from_string(to_string(oracle)), oracle);
  }
  EXPECT_THROW((void)oracle_from_string("totality"), std::invalid_argument);
}

TEST(CertificateRules, MatchEachProtocolsCommitQuorum) {
  // n = 4 => f = 1 for the one-third-resilient protocols.
  const auto pbft = certificate_rule("pbft", 4);
  ASSERT_TRUE(pbft.has_value());
  EXPECT_EQ(pbft->vote_type, "pbft/commit");
  EXPECT_EQ(pbft->min_senders, 3u);  // 2f + 1

  const auto tendermint = certificate_rule("tendermint", 7);
  ASSERT_TRUE(tendermint.has_value());
  EXPECT_EQ(tendermint->vote_type, "tendermint/precommit");
  EXPECT_EQ(tendermint->min_senders, 5u);  // f = 2

  // Leader-collected votes: the leader's own vote never hits the wire.
  const auto hotstuff = certificate_rule("hotstuff-ns", 4);
  ASSERT_TRUE(hotstuff.has_value());
  EXPECT_EQ(hotstuff->vote_type, "hotstuff/vote");
  EXPECT_EQ(hotstuff->min_senders, 2u);  // 2f

  // No fixed vote quorum drives these protocols' decides.
  EXPECT_FALSE(certificate_rule("addv1", 4).has_value());
  EXPECT_FALSE(certificate_rule("algorand", 16).has_value());
  EXPECT_FALSE(certificate_rule("asyncba", 4).has_value());
}

TEST(Quiescence, OnlyUndisturbedScenariosQualify) {
  SimConfig cfg = quiet_config("pbft");
  EXPECT_TRUE(is_quiescent(cfg));

  SimConfig attacked = cfg;
  attacked.attack = "partition";
  EXPECT_FALSE(is_quiescent(attacked));

  SimConfig crashed = cfg;
  crashed.faults.crashes.push_back({0, 100.0, 500.0});
  EXPECT_FALSE(is_quiescent(crashed));

  SimConfig failstopped = cfg;
  failstopped.honest = 3;
  EXPECT_FALSE(is_quiescent(failstopped));
}

TEST(Oracles, CleanRunPassesEveryOracle) {
  const SimConfig cfg = quiet_config("pbft");
  const OracleReport report = check_oracles(cfg, run_simulation(cfg));
  EXPECT_TRUE(report.ok) << report.to_string();
  EXPECT_EQ(report.to_string(), "ok");
}

TEST(Oracles, QuiescentTimeoutViolatesLiveness) {
  SimConfig cfg = quiet_config("pbft");
  cfg.max_time_ms = 1.0;  // tighter than any decision
  const OracleReport report = check_oracles(cfg, run_simulation(cfg));
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.violated, Oracle::kLiveness);
  EXPECT_NE(report.diagnosis.find("quiescent"), std::string::npos);
}

TEST(Oracles, DisturbedTimeoutIsNotALivenessViolation) {
  // The liveness oracle only speaks about quiescent scenarios; a crashed
  // node legitimately excuses a timeout.
  SimConfig cfg = quiet_config("pbft");
  cfg.max_time_ms = 1.0;
  cfg.faults.crashes.push_back({0, 0.0, 500.0});
  const OracleReport report = check_oracles(cfg, run_simulation(cfg));
  EXPECT_TRUE(report.ok) << report.to_string();
}

TEST(Oracles, CanaryDecideWithoutQuorumViolatesCertificate) {
  register_fuzz_canary();
  // Campaign-1/scenario-3 of the canary space: a fault-free run where the
  // weakened 2f quorum decides before a full certificate exists.
  const Scenario scenario = generate_scenario(ScenarioSpace::canary(), 1, 3);
  const OracleReport report =
      check_oracles(scenario.config, run_simulation(scenario.config));
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.violated, Oracle::kCertificate);
  EXPECT_NE(report.diagnosis.find("pbft/commit"), std::string::npos)
      << report.diagnosis;
}

TEST(Oracles, HealthyPbftSatisfiesTheCertificateRuleItsCanaryBreaks) {
  // Same environment, sound quorum: the rule must not flag real PBFT.
  register_fuzz_canary();
  SimConfig cfg = generate_scenario(ScenarioSpace::canary(), 1, 3).config;
  cfg.protocol = "pbft";
  const OracleReport report = check_oracles(cfg, run_simulation(cfg));
  EXPECT_TRUE(report.ok) << report.to_string();
}

}  // namespace
}  // namespace bftsim::explore

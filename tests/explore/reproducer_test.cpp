// Reproducers: strict JSON round-tripping and bit-identical replay.
#include "explore/reproducer.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include "explore/canary.hpp"
#include "explore/scenario.hpp"
#include "explore/shrink.hpp"
#include "runner/runner.hpp"

namespace bftsim::explore {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + std::to_string(::getpid()) + "_" + name;
}

/// A real reproducer, produced the way the campaign engine produces them:
/// generate the known-violating canary scenario, cap it, shrink it.
Reproducer make_reproducer() {
  register_fuzz_canary();
  const Scenario scenario = generate_scenario(ScenarioSpace::canary(), 1, 3);
  const Watchdog watchdog{2'000'000, 0.0};
  const ShrinkResult shrunk = shrink_scenario(watchdog.apply(scenario.config),
                                              Oracle::kCertificate);
  Reproducer repro;
  repro.scenario_id = scenario.id();
  repro.campaign_seed = scenario.campaign_seed;
  repro.index = scenario.index;
  repro.oracle = shrunk.report.violated;
  repro.diagnosis = shrunk.report.diagnosis;
  repro.config = shrunk.config;
  repro.trace_fingerprint = shrunk.trace_fingerprint;
  repro.trace_records = shrunk.trace_records;
  repro.shrink_steps = shrunk.steps;
  repro.shrink_runs = shrunk.runs;
  return repro;
}

TEST(Reproducer, JsonRoundTripsExactly) {
  const Reproducer repro = make_reproducer();
  const Reproducer back = Reproducer::from_json(repro.to_json());
  EXPECT_EQ(back.to_json().dump(2), repro.to_json().dump(2));
  EXPECT_EQ(back.scenario_id, repro.scenario_id);
  EXPECT_EQ(back.oracle, repro.oracle);
  EXPECT_EQ(back.trace_fingerprint, repro.trace_fingerprint);
  EXPECT_EQ(back.config.seed, repro.config.seed);
  EXPECT_EQ(back.config.to_json().dump(), repro.config.to_json().dump());
}

TEST(Reproducer, SaveAndLoadThroughAFile) {
  const Reproducer repro = make_reproducer();
  const std::string path = temp_path("repro.json");
  repro.save(path);
  const Reproducer loaded = Reproducer::from_file(path);
  EXPECT_EQ(loaded.to_json().dump(2), repro.to_json().dump(2));
}

TEST(Reproducer, ReplayMatchesVerdictAndFingerprint) {
  const Reproducer repro = make_reproducer();
  const ReplayOutcome outcome = replay_reproducer(repro);
  EXPECT_TRUE(outcome.verdict_matches) << outcome.report.to_string();
  EXPECT_TRUE(outcome.fingerprint_matches)
      << outcome.trace_fingerprint << " != " << repro.trace_fingerprint;
  EXPECT_TRUE(outcome.ok());
}

TEST(Reproducer, ReplayDetectsAForgedFingerprint) {
  Reproducer repro = make_reproducer();
  repro.trace_fingerprint ^= 1;  // a single-bit divergence must be caught
  const ReplayOutcome outcome = replay_reproducer(repro);
  EXPECT_TRUE(outcome.verdict_matches);
  EXPECT_FALSE(outcome.fingerprint_matches);
  EXPECT_FALSE(outcome.ok());
}

TEST(Reproducer, ReplayDetectsAForgedVerdict) {
  Reproducer repro = make_reproducer();
  repro.oracle = Oracle::kAgreement;  // recorded certificate violation
  const ReplayOutcome outcome = replay_reproducer(repro);
  EXPECT_FALSE(outcome.verdict_matches);
  EXPECT_FALSE(outcome.ok());
}

TEST(Reproducer, RejectsWrongSchemaWithPath) {
  json::Value doc = make_reproducer().to_json();
  doc.as_object()["schema"] = "bftsim-fuzz-reproducer-v0";
  try {
    (void)Reproducer::from_json(doc, "$");
    FAIL() << "expected schema rejection";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("schema"), std::string::npos)
        << e.what();
  }
}

TEST(Reproducer, RejectsUnknownOracleName) {
  json::Value doc = make_reproducer().to_json();
  doc.as_object()["oracle"] = "totality";
  EXPECT_THROW((void)Reproducer::from_json(doc), std::invalid_argument);
}

}  // namespace
}  // namespace bftsim::explore

#include "protocols/common/quorum.hpp"

#include <gtest/gtest.h>

#include <string>

namespace bftsim {
namespace {

TEST(QuorumTrackerTest, CountsDistinctVoters) {
  QuorumTracker<int> tracker;
  EXPECT_TRUE(tracker.add(1, 10));
  EXPECT_TRUE(tracker.add(1, 11));
  EXPECT_FALSE(tracker.add(1, 10));  // duplicate
  EXPECT_EQ(tracker.count(1), 2u);
  EXPECT_EQ(tracker.count(2), 0u);
}

TEST(QuorumTrackerTest, ReachedThreshold) {
  QuorumTracker<std::string> tracker;
  tracker.add("key", 0);
  tracker.add("key", 1);
  EXPECT_FALSE(tracker.reached("key", 3));
  tracker.add("key", 2);
  EXPECT_TRUE(tracker.reached("key", 3));
  EXPECT_TRUE(tracker.reached("key", 2));
}

TEST(QuorumTrackerTest, AddReachesFiresExactlyOnce) {
  QuorumTracker<int> tracker;
  EXPECT_FALSE(tracker.add_reaches(5, 0, 3));
  EXPECT_FALSE(tracker.add_reaches(5, 1, 3));
  EXPECT_TRUE(tracker.add_reaches(5, 2, 3));   // crossing the threshold
  EXPECT_FALSE(tracker.add_reaches(5, 3, 3));  // already reached
  EXPECT_FALSE(tracker.add_reaches(5, 2, 3));  // duplicate after reach
}

TEST(QuorumTrackerTest, KeysAreIndependent) {
  QuorumTracker<std::pair<int, int>> tracker;
  tracker.add({1, 1}, 0);
  tracker.add({1, 2}, 0);
  EXPECT_EQ(tracker.count({1, 1}), 1u);
  EXPECT_EQ(tracker.count({1, 2}), 1u);
  EXPECT_EQ(tracker.count({2, 1}), 0u);
}

TEST(QuorumTrackerTest, VotersSetIsAccurate) {
  QuorumTracker<int> tracker;
  tracker.add(9, 4);
  tracker.add(9, 2);
  tracker.add(9, 4);
  const auto& voters = tracker.voters(9);
  EXPECT_EQ(voters.size(), 2u);
  EXPECT_TRUE(voters.contains(2));
  EXPECT_TRUE(voters.contains(4));
  EXPECT_TRUE(tracker.voters(8).empty());
}

TEST(QuorumTrackerTest, ClearResets) {
  QuorumTracker<int> tracker;
  tracker.add(1, 1);
  tracker.clear();
  EXPECT_EQ(tracker.count(1), 0u);
}

TEST(OnceSetTest, MarkFiresOnce) {
  OnceSet<int> once;
  EXPECT_FALSE(once.contains(1));
  EXPECT_TRUE(once.mark(1));
  EXPECT_FALSE(once.mark(1));
  EXPECT_TRUE(once.contains(1));
  EXPECT_TRUE(once.mark(2));
}

TEST(OnceSetTest, CompositeKeys) {
  OnceSet<std::pair<std::uint64_t, std::uint8_t>> once;
  EXPECT_TRUE(once.mark({1, 2}));
  EXPECT_FALSE(once.mark({1, 2}));
  EXPECT_TRUE(once.mark({1, 3}));
  EXPECT_TRUE(once.mark({2, 2}));
}

}  // namespace
}  // namespace bftsim

#include "protocols/common/quorum.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace bftsim {
namespace {

TEST(VoterSetTest, InsertContainsAndDuplicates) {
  VoterSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_TRUE(set.insert(5));
  EXPECT_FALSE(set.insert(5));
  EXPECT_TRUE(set.insert(0));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_FALSE(set.empty());
  EXPECT_TRUE(set.contains(0));
  EXPECT_TRUE(set.contains(5));
  EXPECT_FALSE(set.contains(1));
  EXPECT_FALSE(set.contains(10'000));  // beyond any allocated word
}

TEST(VoterSetTest, WordBoundaryIds) {
  // 63/64/65 straddle the first word boundary of the bitmap; 4095 is the
  // last id of a full n=4096 membership.
  VoterSet set;
  for (const NodeId id : {63u, 64u, 65u, 127u, 128u, 4095u}) {
    EXPECT_TRUE(set.insert(id)) << id;
    EXPECT_FALSE(set.insert(id)) << id;
    EXPECT_TRUE(set.contains(id)) << id;
  }
  EXPECT_EQ(set.size(), 6u);
  EXPECT_FALSE(set.contains(62));
  EXPECT_FALSE(set.contains(66));
  EXPECT_FALSE(set.contains(4094));
}

TEST(VoterSetTest, IteratesAscendingRegardlessOfInsertOrder) {
  // Certificate signer lists are built via assign(begin, end) and must be
  // ascending whatever order the votes arrived in.
  VoterSet set;
  for (const NodeId id : {300u, 7u, 64u, 0u, 4095u, 63u, 128u}) set.insert(id);
  std::vector<NodeId> out(set.begin(), set.end());
  const std::vector<NodeId> expected{0, 7, 63, 64, 128, 300, 4095};
  EXPECT_EQ(out, expected);
}

TEST(VoterSetTest, EmptyIteration) {
  VoterSet set;
  EXPECT_EQ(set.begin(), set.end());
  std::vector<NodeId> out(set.begin(), set.end());
  EXPECT_TRUE(out.empty());
}

TEST(VoterSetTest, DenseMembership) {
  VoterSet set;
  for (NodeId id = 0; id < 1000; ++id) EXPECT_TRUE(set.insert(id));
  EXPECT_EQ(set.size(), 1000u);
  NodeId expected = 0;
  for (const NodeId id : set) EXPECT_EQ(id, expected++);
  EXPECT_EQ(expected, 1000u);
}

TEST(QuorumTrackerTest, CountsDistinctVoters) {
  QuorumTracker<int> tracker;
  EXPECT_TRUE(tracker.add(1, 10));
  EXPECT_TRUE(tracker.add(1, 11));
  EXPECT_FALSE(tracker.add(1, 10));  // duplicate
  EXPECT_EQ(tracker.count(1), 2u);
  EXPECT_EQ(tracker.count(2), 0u);
}

TEST(QuorumTrackerTest, ReachedThreshold) {
  QuorumTracker<std::string> tracker;
  tracker.add("key", 0);
  tracker.add("key", 1);
  EXPECT_FALSE(tracker.reached("key", 3));
  tracker.add("key", 2);
  EXPECT_TRUE(tracker.reached("key", 3));
  EXPECT_TRUE(tracker.reached("key", 2));
}

TEST(QuorumTrackerTest, AddReachesFiresExactlyOnce) {
  QuorumTracker<int> tracker;
  EXPECT_FALSE(tracker.add_reaches(5, 0, 3));
  EXPECT_FALSE(tracker.add_reaches(5, 1, 3));
  EXPECT_TRUE(tracker.add_reaches(5, 2, 3));   // crossing the threshold
  EXPECT_FALSE(tracker.add_reaches(5, 3, 3));  // already reached
  EXPECT_FALSE(tracker.add_reaches(5, 2, 3));  // duplicate after reach
}

TEST(QuorumTrackerTest, KeysAreIndependent) {
  QuorumTracker<std::pair<int, int>> tracker;
  tracker.add({1, 1}, 0);
  tracker.add({1, 2}, 0);
  EXPECT_EQ(tracker.count({1, 1}), 1u);
  EXPECT_EQ(tracker.count({1, 2}), 1u);
  EXPECT_EQ(tracker.count({2, 1}), 0u);
}

TEST(QuorumTrackerTest, VotersSetIsAccurate) {
  QuorumTracker<int> tracker;
  tracker.add(9, 4);
  tracker.add(9, 2);
  tracker.add(9, 4);
  const auto& voters = tracker.voters(9);
  EXPECT_EQ(voters.size(), 2u);
  EXPECT_TRUE(voters.contains(2));
  EXPECT_TRUE(voters.contains(4));
  EXPECT_TRUE(tracker.voters(8).empty());
}

TEST(QuorumTrackerTest, ClearResets) {
  QuorumTracker<int> tracker;
  tracker.add(1, 1);
  tracker.clear();
  EXPECT_EQ(tracker.count(1), 0u);
}

TEST(OnceSetTest, MarkFiresOnce) {
  OnceSet<int> once;
  EXPECT_FALSE(once.contains(1));
  EXPECT_TRUE(once.mark(1));
  EXPECT_FALSE(once.mark(1));
  EXPECT_TRUE(once.contains(1));
  EXPECT_TRUE(once.mark(2));
}

TEST(OnceSetTest, CompositeKeys) {
  OnceSet<std::pair<std::uint64_t, std::uint8_t>> once;
  EXPECT_TRUE(once.mark({1, 2}));
  EXPECT_FALSE(once.mark({1, 2}));
  EXPECT_TRUE(once.mark({1, 3}));
  EXPECT_TRUE(once.mark({2, 2}));
}

}  // namespace
}  // namespace bftsim
